// Benchmarks regenerating every table and figure of the paper, plus
// microbenchmarks of the underlying engine. Each figure panel has one
// bench that runs a representative sweep point at a reduced statistical
// budget (the full-budget sweeps live behind `qfarith fig3` / `fig4`);
// the benchmark REPORTS the success rate as a custom metric so `go test
// -bench` output doubles as a small-scale reproduction table.
package qfarith_test

import (
	"fmt"
	"runtime/debug"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/backend"
	"qfarith/internal/experiment"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
	"qfarith/internal/qint"
	"qfarith/internal/sim"
	"qfarith/internal/transpile"
)

// benchBudget keeps bench iterations affordable on one core.
var benchBudget = experiment.Budget{Instances: 4, Shots: 512, Trajectories: 8}

// --------------------------------------------------------------- Table I

// BenchmarkTable1GateCounts regenerates Table I (both operations, all
// depths) per iteration and validates the counts against the paper.
func BenchmarkTable1GateCounts(b *testing.B) {
	want := map[string][2]int{
		"qfa-1": {163, 98}, "qfa-2": {199, 122}, "qfa-3": {229, 142},
		"qfa-4": {253, 158}, "qfa-7": {289, 182},
		"qfm-1": {1032, 744}, "qfm-2": {1248, 936}, "qfm-full": {1464, 1128},
	}
	for i := 0; i < b.N; i++ {
		for _, d := range []int{1, 2, 3, 4, 7} {
			c := arith.NewQFA(7, 8, arith.Config{Depth: d, AddCut: arith.FullAdd})
			one, two := transpile.PaperCounts(c)
			k := fmt.Sprintf("qfa-%d", d)
			if w := want[k]; one != w[0] || two != w[1] {
				b.Fatalf("%s: (%d,%d) != %v", k, one, two, w)
			}
		}
		for _, d := range []int{1, 2, qft.Full} {
			c := arith.NewQFM(4, 4, arith.Config{Depth: d, AddCut: arith.FullAdd})
			one, two := transpile.PaperCounts(c)
			k := fmt.Sprintf("qfm-%d", d)
			if d == qft.Full {
				k = "qfm-full"
			}
			if w := want[k]; one != w[0] || two != w[1] {
				b.Fatalf("%s: (%d,%d) != %v", k, one, two, w)
			}
		}
	}
}

// --------------------------------------------------------------- figures

// figPoint runs one representative point of a figure panel: the
// "current hardware" rate on that panel's axis (0.2% for 1q, 1.0% for
// 2q) at AQFT depth 3 for addition and depth 2 for multiplication.
func figPoint(b *testing.B, geo experiment.Geometry, axis experiment.ErrorAxis, ox, oy int) {
	depth := 3
	if geo.Op == experiment.OpMul {
		depth = 2
	}
	model := noise.PaperModel(0.002, 0)
	if axis == experiment.Axis2Q {
		model = noise.PaperModel(0, 0.010)
	}
	var last experiment.PointResult
	for i := 0; i < b.N; i++ {
		cfg := experiment.PointConfig{
			Geometry: geo, Depth: depth, Model: model,
			OrderX: ox, OrderY: oy,
			Instances:    benchBudget.Instances,
			Shots:        benchBudget.Shots,
			Trajectories: benchBudget.Trajectories,
			RowSeed:      77, PointSeed: uint64(i) + 1,
		}
		last = experiment.RunPoint(cfg)
	}
	b.ReportMetric(last.Stats.SuccessRate, "success%")
	b.ReportMetric(float64(last.Native2q), "cx_gates")
}

// Fig. 3 — QFA success rates (panels a–f).
func BenchmarkFig3a_QFA_1q_11(b *testing.B) {
	figPoint(b, experiment.PaperAddGeometry(), experiment.Axis1Q, 1, 1)
}
func BenchmarkFig3b_QFA_2q_11(b *testing.B) {
	figPoint(b, experiment.PaperAddGeometry(), experiment.Axis2Q, 1, 1)
}
func BenchmarkFig3c_QFA_1q_12(b *testing.B) {
	figPoint(b, experiment.PaperAddGeometry(), experiment.Axis1Q, 1, 2)
}
func BenchmarkFig3d_QFA_2q_12(b *testing.B) {
	figPoint(b, experiment.PaperAddGeometry(), experiment.Axis2Q, 1, 2)
}
func BenchmarkFig3e_QFA_1q_22(b *testing.B) {
	figPoint(b, experiment.PaperAddGeometry(), experiment.Axis1Q, 2, 2)
}
func BenchmarkFig3f_QFA_2q_22(b *testing.B) {
	figPoint(b, experiment.PaperAddGeometry(), experiment.Axis2Q, 2, 2)
}

// Fig. 4 — QFM success rates (panels a–f).
func BenchmarkFig4a_QFM_1q_11(b *testing.B) {
	figPoint(b, experiment.PaperMulGeometry(), experiment.Axis1Q, 1, 1)
}
func BenchmarkFig4b_QFM_2q_11(b *testing.B) {
	figPoint(b, experiment.PaperMulGeometry(), experiment.Axis2Q, 1, 1)
}
func BenchmarkFig4c_QFM_1q_12(b *testing.B) {
	figPoint(b, experiment.PaperMulGeometry(), experiment.Axis1Q, 1, 2)
}
func BenchmarkFig4d_QFM_2q_12(b *testing.B) {
	figPoint(b, experiment.PaperMulGeometry(), experiment.Axis2Q, 1, 2)
}
func BenchmarkFig4e_QFM_1q_22(b *testing.B) {
	figPoint(b, experiment.PaperMulGeometry(), experiment.Axis1Q, 2, 2)
}
func BenchmarkFig4f_QFM_2q_22(b *testing.B) {
	figPoint(b, experiment.PaperMulGeometry(), experiment.Axis2Q, 2, 2)
}

// BenchmarkAblateAddCut is the E6 ablation: QFA with the addition-step
// rotation cutoff the paper defers to future work.
func BenchmarkAblateAddCut(b *testing.B) {
	var last experiment.PointResult
	for i := 0; i < b.N; i++ {
		cfg := experiment.PointConfig{
			Geometry: experiment.PaperAddGeometry(),
			Depth:    qft.Full,
			Model:    noise.PaperModel(0, 0.01),
			OrderX:   2, OrderY: 2,
			Instances:    benchBudget.Instances,
			Shots:        benchBudget.Shots,
			Trajectories: benchBudget.Trajectories,
			RowSeed:      7, PointSeed: uint64(i) + 1,
		}
		last = experiment.RunPointCfg(cfg, arith.Config{Depth: qft.Full, AddCut: 3})
	}
	b.ReportMetric(last.Stats.SuccessRate, "success%")
}

// ------------------------------------------------------ transpile cache

// BenchmarkPanelTranspileCache measures the circuit-construction cost of
// a fig3-shaped panel (7 rates x 5 depths over the paper QFA geometry).
// Every rate column reuses the same five circuits, so the runner's
// transpile cache collapses 35 transpile calls to 5; the two
// sub-benchmarks quantify that saving.
func BenchmarkPanelTranspileCache(b *testing.B) {
	geo := experiment.PaperAddGeometry()
	rates := 7
	depths := []int{1, 2, 3, 4, qft.Full}
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := 0; r < rates; r++ {
				for _, d := range depths {
					if geo.BuildCircuit(d) == nil {
						b.Fatal("nil circuit")
					}
				}
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache := backend.NewTranspileCache()
			for r := 0; r < rates; r++ {
				for _, d := range depths {
					key := backend.CircuitKey{
						Family: geo.Op.String(),
						XBits:  geo.XBits, YBits: geo.YBits,
						Depth: d, AddCut: arith.FullAdd,
					}
					res := cache.Get(key, func() *transpile.Result { return geo.BuildCircuit(d) })
					if res == nil {
						b.Fatal("nil circuit")
					}
				}
			}
			if hits, misses := cache.Stats(); misses != len(depths) || hits != rates*len(depths)-len(depths) {
				b.Fatalf("cache stats (%d hits, %d misses) off-plan", hits, misses)
			}
		}
	})
}

// ----------------------------------------------------------- microbench

func BenchmarkQFTApply8(b *testing.B) {
	c := qft.New(8, qft.Full)
	st := sim.NewState(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ApplyCircuit(c)
	}
}

func BenchmarkQFAApplyPaperGeometry(b *testing.B) {
	c := arith.NewQFA(7, 8, arith.DefaultConfig())
	st := sim.NewState(15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ApplyCircuit(c)
	}
}

func BenchmarkQFMApplyPaperGeometry(b *testing.B) {
	c := arith.NewQFM(4, 4, arith.DefaultConfig())
	st := sim.NewState(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ApplyCircuit(c)
	}
}

func BenchmarkNoisyTrajectoryQFA(b *testing.B) {
	res := experiment.PaperAddGeometry().BuildCircuit(qft.Full)
	engine := noise.NewEngine(res, noise.PaperModel(0.002, 0.01))
	st := sim.NewState(15)
	rng := sim.NewSampler(1, 2).Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events := engine.SampleConditional(rng)
		st.SetBasis(0)
		engine.RunTrajectory(st, events)
	}
}

func BenchmarkNoisyTrajectoryQFM(b *testing.B) {
	res := experiment.PaperMulGeometry().BuildCircuit(qft.Full)
	engine := noise.NewEngine(res, noise.PaperModel(0.002, 0.01))
	st := sim.NewState(16)
	rng := sim.NewSampler(3, 4).Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events := engine.SampleConditional(rng)
		st.SetBasis(0)
		engine.RunTrajectory(st, events)
	}
}

// BenchmarkTrajectoryMixture is the trajectory-engine hot path as the
// experiment layer drives it: one MixtureInto call per iteration (ideal
// stratum + K conditional trajectories) on the paper geometries at the
// current-hardware noise point. ReportAllocs makes steady-state scratch
// allocations visible: divide allocs/op by K+1 for the per-trajectory
// figure the fast-path work targets at zero.
func BenchmarkTrajectoryMixture(b *testing.B) {
	bench := func(b *testing.B, geo experiment.Geometry, depth, traj int) {
		res := geo.BuildCircuit(depth)
		engine := noise.NewEngine(res, noise.PaperModel(0.002, 0.01))
		st := sim.NewState(geo.TotalQubits)
		initial := make([]complex128, st.Dim())
		initial[0] = 1
		out := make([]float64, 1<<uint(len(geo.OutReg)))
		rng := sim.NewSampler(21, 42).Rand()
		opts := noise.MixtureOpts{Trajectories: traj, Measure: geo.OutReg}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			engine.MixtureInto(out, st, initial, opts, rng)
		}
	}
	b.Run("qfa-d3-k32", func(b *testing.B) {
		bench(b, experiment.PaperAddGeometry(), 3, 32)
	})
	b.Run("qfa-full-k32", func(b *testing.B) {
		bench(b, experiment.PaperAddGeometry(), qft.Full, 32)
	})
	b.Run("qfm-d2-k32", func(b *testing.B) {
		bench(b, experiment.PaperMulGeometry(), 2, 32)
	})
	b.Run("qfm-full-k32", func(b *testing.B) {
		bench(b, experiment.PaperMulGeometry(), qft.Full, 32)
	})
}

// BenchmarkTrajectoryMixtureSteadyState is BenchmarkTrajectoryMixture's
// qfa-d3 case with the GC disabled for the timed region: without
// collections emptying the sync.Pools mid-run, the warm per-trajectory
// loop must report exactly 0 allocs/op (any nonzero value here is a
// scratch-reuse regression; TestMixtureSteadyStateZeroAlloc enforces the
// same contract as a test).
func BenchmarkTrajectoryMixtureSteadyState(b *testing.B) {
	geo := experiment.PaperAddGeometry()
	res := geo.BuildCircuit(3)
	engine := noise.NewEngine(res, noise.PaperModel(0.002, 0.01))
	st := sim.NewState(geo.TotalQubits)
	initial := make([]complex128, st.Dim())
	initial[0] = 1
	out := make([]float64, 1<<uint(len(geo.OutReg)))
	rng := sim.NewSampler(21, 42).Rand()
	opts := noise.MixtureOpts{Trajectories: 32, Measure: geo.OutReg}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	engine.MixtureInto(out, st, initial, opts, rng) // warm the pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.MixtureInto(out, st, initial, opts, rng)
	}
}

// BenchmarkTrajectoryMixtureBatch is the batched-engine counterpart of
// BenchmarkTrajectoryMixtureSteadyState: the same qfa-d3 K=32 mixture
// through MixtureBatchInto at several batch widths (batch=1 delegates to
// the scalar engine and serves as the in-harness baseline). The ≥1.3×
// batched-vs-scalar acceptance of the SoA engine is measured here; see
// results/bench_batched_engine.md.
func BenchmarkTrajectoryMixtureBatch(b *testing.B) {
	geo := experiment.PaperAddGeometry()
	res := geo.BuildCircuit(3)
	engine := noise.NewEngine(res, noise.PaperModel(0.002, 0.01))
	st := sim.NewState(geo.TotalQubits)
	initial := make([]complex128, st.Dim())
	initial[0] = 1
	out := make([]float64, 1<<uint(len(geo.OutReg)))
	opts := noise.MixtureOpts{Trajectories: 32, Measure: geo.OutReg}
	for _, batch := range []int{1, 2, 3, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("qfa-d3-k32-b%d", batch), func(b *testing.B) {
			rng := sim.NewSampler(21, 42).Rand()
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			engine.MixtureBatchInto(out, st, initial, opts, rng, batch) // warm the pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.MixtureBatchInto(out, st, initial, opts, rng, batch)
			}
		})
	}
}

func BenchmarkTranspileQFM(b *testing.B) {
	c := arith.NewQFM(4, 4, arith.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		transpile.Transpile(c)
	}
}

func BenchmarkStatePrepare8(b *testing.B) {
	q := qint.NewUniform(8, 7, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qint.Prepare(q)
	}
}

// BenchmarkSampler2048Shots is the production shot-sampling stage as
// runInstance drives it: warm scratch, guide-table resolution, counts
// written in place. The hard acceptance here is 0 B/op and 0 allocs/op
// at steady state (GC off so the pool cannot drain mid-run).
func BenchmarkSampler2048Shots(b *testing.B) {
	probs := make([]float64, 256)
	for i := range probs {
		probs[i] = 1.0 / 256
	}
	s := sim.NewSampler(9, 10)
	sc := sim.GetSampleScratch()
	defer sim.PutSampleScratch(sc)
	out := make([]int, len(probs))
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	s.CountsInto(sc, probs, 2048, out) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CountsInto(sc, probs, 2048, out)
	}
}

// BenchmarkSamplerMerge races the three bin-resolution strategies on
// the same 256-bin / 2048-shot workload: the legacy per-shot binary
// search (reference), the sorted-uniform merge, and the guide-table
// stage the production tail uses. All three produce bit-identical
// histograms; the numbers here justify which one runInstance runs.
func BenchmarkSamplerMerge(b *testing.B) {
	probs := make([]float64, 256)
	for i := range probs {
		probs[i] = 1.0 / 256
	}
	const shots = 2048
	b.Run("reference-binsearch", func(b *testing.B) {
		s := sim.NewSampler(9, 10)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Counts(probs, shots)
		}
	})
	b.Run("merge", func(b *testing.B) {
		s := sim.NewSampler(9, 10)
		sc := sim.GetSampleScratch()
		defer sim.PutSampleScratch(sc)
		out := make([]int, len(probs))
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		s.CountsMergeInto(sc, probs, shots, out)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.CountsMergeInto(sc, probs, shots, out)
		}
	})
	b.Run("guide", func(b *testing.B) {
		s := sim.NewSampler(9, 10)
		sc := sim.GetSampleScratch()
		defer sim.PutSampleScratch(sc)
		out := make([]int, len(probs))
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		s.CountsInto(sc, probs, shots, out)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.CountsInto(sc, probs, shots, out)
		}
	})
}

// BenchmarkInstanceTail measures the complete post-backend instance
// tail — reseed, 2048 shots, score, fidelity — through the experiment
// layer's pooled scratch, i.e. exactly what each operand instance pays
// after its trajectory mixture returns. Must be 0 allocs/op warm.
func BenchmarkInstanceTail(b *testing.B) {
	cfg := experiment.PointConfig{
		Geometry: experiment.PaperAddGeometry(),
		OrderX:   1, OrderY: 2,
		Shots:   2048,
		RowSeed: 77, PointSeed: 41,
	}
	dist := make([]float64, 1<<uint(len(cfg.Geometry.OutReg)))
	for i := range dist {
		dist[i] = 1 / float64(len(dist))
	}
	xs, ys := cfg.InstanceOperands(0)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	cfg.SampleAndScore(0, xs, ys, dist, dist) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.SampleAndScore(0, xs, ys, dist, dist)
	}
}
