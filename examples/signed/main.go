// Signed: tour of the two's-complement arithmetic façade. A Fourier
// subtractor computes (y − x) mod 2^w, which under two's complement is
// simultaneously the signed difference — the same circuit serves both
// readings, only the decoding changes. The signed multiplier needs a
// genuine sign correction, demonstrated on every sign combination, and
// a subtract-undoes-add round trip shows QFS is exactly QFA's inverse.
// Every claim is asserted, so the example doubles as an executable
// spec of the signed operand encoding.
package main

import (
	"fmt"

	"qfarith"
)

func main() {
	// Signed subtraction: 3 − 5 = −2, encoded as 14 on a 4-bit register.
	x := qfarith.Basis(4, 5)
	y := qfarith.Basis(4, 3)
	res := qfarith.Sub(x, y, qfarith.WithSeed(1))
	top := res.TopOutcomes(1)[0]
	fmt.Printf("3 - 5 = raw %d = signed %d (success=%v)\n",
		top, qfarith.SignedOutcome(top, 4), res.Success)
	if !res.Success || qfarith.SignedOutcome(top, 4) != -2 {
		panic("signed subtraction: expected -2")
	}

	// A superposed minuend subtracts branchwise: (|2> + |−3>) − 1.
	ys := qfarith.Uniform(4, 2, 13) // 13 encodes −3
	sup := qfarith.Sub(qfarith.Basis(4, 1), ys, qfarith.WithSeed(2))
	fmt.Printf("(|2> + |-3>) - 1: outcomes %v (signed %d, %d)\n",
		sup.TopOutcomes(2),
		qfarith.SignedOutcome(sup.TopOutcomes(2)[0], 4),
		qfarith.SignedOutcome(sup.TopOutcomes(2)[1], 4))
	if !sup.Success {
		panic("superposed signed subtraction failed")
	}

	// Signed multiplication across every sign combination. The product
	// register is x.Width+y.Width bits, read back through SignedOutcome.
	fmt.Println("\nsigned 3-bit x 3-bit multiplication:")
	for _, c := range []struct{ a, b int }{{3, 2}, {-3, 2}, {3, -2}, {-3, -2}, {-4, -4}} {
		xa := qfarith.Basis(3, encode(c.a, 3))
		yb := qfarith.Basis(3, encode(c.b, 3))
		r := qfarith.SignedMul(xa, yb, qfarith.WithSeed(3))
		got := qfarith.SignedOutcome(r.TopOutcomes(1)[0], 6)
		fmt.Printf("  %2d x %2d = %3d (success=%v)\n", c.a, c.b, got, r.Success)
		if !r.Success || got != c.a*c.b {
			panic(fmt.Sprintf("signed product %d x %d: got %d", c.a, c.b, got))
		}
	}

	// Round trip: adding x and then subtracting x restores y exactly —
	// QFS is QFA's inverse, the identity behind the roundtrip scorer.
	add := qfarith.Add(qfarith.Basis(4, 6), qfarith.Basis(4, 11), qfarith.WithSeed(4))
	sum := add.TopOutcomes(1)[0]
	back := qfarith.Sub(qfarith.Basis(4, 6), qfarith.Basis(4, sum), qfarith.WithSeed(5))
	fmt.Printf("\nround trip: 11 + 6 = %d, then - 6 = %d\n", sum, back.TopOutcomes(1)[0])
	if back.TopOutcomes(1)[0] != 11 {
		panic("subtract did not undo add")
	}

	// Under noise the signed workloads degrade exactly like their
	// unsigned counterparts — same circuits up to phase signs.
	noisy := qfarith.Sub(x, y,
		qfarith.WithNoise(0.005, 0.01),
		qfarith.WithTrajectories(64),
		qfarith.WithSeed(6))
	fmt.Printf("\nnoisy 3 - 5: success=%v margin=%d (native gates: %d 1q + %d 2q)\n",
		noisy.Success, noisy.Margin, noisy.Gates.Native1q, noisy.Gates.Native2q)

	fmt.Println("\nall signed-arithmetic assertions passed")
}

// encode maps a signed value onto its two's-complement register value,
// mirroring qint.FromSigned for the example's small operands.
func encode(v, w int) int {
	if v < 0 {
		return v + 1<<uint(w)
	}
	return v
}
