// Superposed: the paper's motivating capability — one circuit execution
// adds (or multiplies) ALL superposed operand pairs in parallel. This
// example runs the paper's 2:2 configuration, shows the four
// simultaneous sums, and applies the Sec. 4 success metric under
// increasing 2q gate noise to expose the superposition-order penalty.
package main

import (
	"fmt"
	"sort"

	"qfarith"
)

func main() {
	// Two order-2 qintegers: x ∈ {19, 100}, y ∈ {7, 200}.
	x := qfarith.Uniform(7, 19, 100)
	y := qfarith.Uniform(8, 7, 200)

	fmt.Println("2:2 Quantum Fourier Addition — one run, four sums")
	fmt.Println("x ∈ {19, 100}, y ∈ {7, 200}")

	res := qfarith.Add(x, y, qfarith.WithSeed(11))
	expected := sortedKeys(res.Expected)
	fmt.Printf("expected sums (mod 256): %v\n\n", expected)

	fmt.Println("noiseless shot histogram over the four correct outputs:")
	for _, v := range expected {
		fmt.Printf("  %3d: %4d shots (%.1f%%)\n", v, res.Counts[v], 100*float64(res.Counts[v])/2048)
	}

	fmt.Println("\nsuccess vs 2q error rate (paper Fig. 3f regime, depth 3):")
	fmt.Printf("%-10s %-10s %-14s %-12s\n", "λ2q", "success", "margin(shots)", "worst correct")
	for _, p2 := range []float64{0, 0.003, 0.007, 0.010, 0.015, 0.020} {
		r := qfarith.Add(x, y,
			qfarith.WithSeed(11),
			qfarith.WithDepth(3),
			qfarith.WithNoise(0, p2),
			qfarith.WithTrajectories(96))
		worst := 1 << 30
		for v := range r.Expected {
			if r.Counts[v] < worst {
				worst = r.Counts[v]
			}
		}
		fmt.Printf("%-10.3f %-10v %-14d %-12d\n", p2, r.Success, r.Margin, worst)
	}

	fmt.Println("\n2:2 multiplication (4-bit operands): x ∈ {3, 11}, y ∈ {5, 14}")
	mx := qfarith.Uniform(4, 3, 11)
	my := qfarith.Uniform(4, 5, 14)
	mres := qfarith.Mul(mx, my, qfarith.WithSeed(12))
	fmt.Printf("expected products: %v — success=%v\n", sortedKeys(mres.Expected), mres.Success)
	noisy := qfarith.Mul(mx, my,
		qfarith.WithSeed(12),
		qfarith.WithNoise(0, 0.01),
		qfarith.WithTrajectories(48))
	fmt.Printf("at λ2=1%% the QFM's %d CX gates leave w0≈0: success=%v, margin=%d\n",
		noisy.Gates.Native2q, noisy.Success, noisy.Margin)
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
