// Noisytrace: anatomy of a single noisy arithmetic instance. For one
// fixed 1:2 addition this renders the full shot histogram as the 2q
// error rate rises, showing how probability mass leaks from the two
// correct sums into a diffuse background until the success metric tips
// over — the microscopic picture behind every point in the paper's
// figures.
package main

import (
	"fmt"
	"strings"

	"qfarith"
)

func main() {
	x := qfarith.Basis(7, 77)
	y := qfarith.Uniform(8, 30, 141)
	fmt.Println("1:2 addition x=77, y ∈ {30, 141}; correct sums {107, 218}")

	for _, p2 := range []float64{0, 0.005, 0.015, 0.040} {
		res := qfarith.Add(x, y,
			qfarith.WithSeed(99),
			qfarith.WithDepth(3),
			qfarith.WithNoise(0.002, p2),
			qfarith.WithTrajectories(96))
		fmt.Printf("\n--- λ1=0.2%%, λ2=%.1f%% — success=%v margin=%d ---\n",
			p2*100, res.Success, res.Margin)
		fmt.Printf("    clean-shot probability w0-driven mass on correct outputs: %.1f%%\n",
			100*(res.Probs[107]+res.Probs[218]))
		top := res.TopOutcomes(6)
		for _, v := range top {
			tag := " "
			if res.Expected[v] {
				tag = "*"
			}
			bar := strings.Repeat("█", res.Counts[v]/12)
			fmt.Printf("  %s %3d │%s %d\n", tag, v, bar, res.Counts[v])
		}
		incorrectMass := 0
		for v, c := range res.Counts {
			if !res.Expected[v] {
				incorrectMass += c
			}
		}
		fmt.Printf("    diffuse incorrect mass: %d/2048 shots over %d outcomes\n",
			incorrectMass, countNonzeroIncorrect(res))
	}
}

func countNonzeroIncorrect(res qfarith.Result) int {
	n := 0
	for v, c := range res.Counts {
		if c > 0 && !res.Expected[v] {
			n++
		}
	}
	return n
}
