// Modular: the paper's §1/§5 pointer to modular arithmetic made
// concrete. Builds the Beauregard-style constant adder modulo N from
// this library's Fourier adders and uses it to evaluate a weighted sum
// (k·x) mod N over a superposed x — the weighted-sum primitive the paper
// motivates for optimization and machine-learning workloads — and to
// walk a modular-exponentiation ladder classically controlled the way a
// Shor circuit would.
package main

import (
	"fmt"
	"math/rand/v2"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/sim"
)

func main() {
	const N = 13
	fmt.Printf("modular arithmetic over N = %d (Beauregard constant adders)\n\n", N)

	// --- (y + a) mod N for one branch, exhaustively checked ---
	w := 5 // n+1 qubits with 2^4 >= 13
	a := uint64(9)
	c := circuit.New(w + 1)
	arith.ModAddConstGates(c, a, N, arith.Range(0, w), w, arith.DefaultConfig())
	fmt.Printf("(y + %d) mod %d on a %d-qubit register (+1 ancilla):\n", a, N, w)
	for _, y := range []int{0, 4, 11, 12} {
		st := sim.NewState(w + 1)
		st.SetBasis(y)
		st.ApplyCircuit(c)
		best := argmax(st)
		fmt.Printf("  %2d -> %2d (ancilla %d)\n", y, best&(1<<w-1), best>>w)
	}

	// --- weighted sum (k·x) mod N over a superposed x ---
	k := uint64(5)
	xw, zw := 3, 5
	mc := circuit.New(xw + zw + 1)
	x := arith.Range(0, xw)
	z := arith.Range(xw, zw)
	arith.ModMulAddConstGates(mc, k, N, x, z, xw+zw, arith.DefaultConfig())

	st := sim.NewState(xw + zw + 1)
	amps := make([]complex128, st.Dim())
	inputs := []int{2, 3, 7}
	for _, xv := range inputs {
		amps[xv] = complex(1, 0)
	}
	st.SetAmplitudes(amps)
	st.ApplyCircuit(mc)
	fmt.Printf("\n(%d·x) mod %d for x superposed over %v — one circuit run:\n", k, N, inputs)
	probs := st.RegisterProbs(z)
	for v, p := range probs {
		if p > 1e-6 {
			fmt.Printf("  z = %2d with probability %.3f\n", v, p)
		}
	}

	// --- modular exponentiation ladder: 7^e mod 13 ---
	base := uint64(7)
	fmt.Printf("\nrepeated-squaring ladder for %d^e mod %d (the Shor building block):\n", base, N)
	val := uint64(1)
	for e := 1; e <= 6; e++ {
		val = val * base % N
		quantum := quantumConstMulMod(base, uint64(e), N)
		status := "ok"
		if uint64(quantum) != val {
			status = "MISMATCH"
		}
		fmt.Printf("  %d^%d mod %d = %2d (quantum multiply-add chain: %2d) %s\n",
			base, e, N, val, quantum, status)
	}
	_ = rand.IntN // keep math/rand/v2 linked for variations
}

// quantumConstMulMod evaluates base^e mod n by chaining e quantum
// constant multiply-adds z' = (k·z) mod N through fresh registers,
// reading each intermediate out of the simulator.
func quantumConstMulMod(base, e, n uint64) int {
	val := 1
	for i := uint64(0); i < e; i++ {
		xw, zw := 4, 5
		c := circuit.New(xw + zw + 1)
		x := arith.Range(0, xw)
		z := arith.Range(xw, zw)
		arith.ModMulAddConstGates(c, base, n, x, z, xw+zw, arith.DefaultConfig())
		st := sim.NewState(xw + zw + 1)
		st.SetBasis(val) // x register holds the running value, z = 0
		st.ApplyCircuit(c)
		out := argmax(st)
		val = (out >> uint(xw)) & (1<<uint(zw) - 1)
	}
	return val
}

func argmax(st *sim.State) int {
	best, bestP := 0, 0.0
	for i := 0; i < st.Dim(); i++ {
		if p := st.Probability(i); p > bestP {
			best, bestP = i, p
		}
	}
	return best
}
