// Depthsweep: the paper's central question — which AQFT approximation
// depth is optimal at a given machine noise level? This example sweeps
// depth 1..full for the QFA at several 2q error rates and reports the
// winner, illustrating Barenco's d ≈ log2(n) heuristic and the paper's
// observation that the optimum shifts with noise.
package main

import (
	"fmt"
	"math/rand/v2"

	"qfarith"
)

const (
	instances = 12
	shots     = 1024
)

func main() {
	fmt.Println("optimal AQFT depth for 8-qubit 1:2 Fourier addition")
	fmt.Printf("(%d random instances per point, %d shots each; log2(8) = 3)\n\n", instances, shots)
	depths := []int{1, 2, 3, 4, 5, 6, qfarith.FullDepth}

	fmt.Printf("%-8s", "λ2q\\d")
	for _, d := range depths {
		fmt.Printf("%8s", label(d))
	}
	fmt.Printf("%10s\n", "best")

	for _, p2 := range []float64{0, 0.005, 0.010, 0.020, 0.030} {
		fmt.Printf("%-8.3f", p2)
		best, bestRate := 0, -1.0
		for _, d := range depths {
			rate := successRate(d, p2)
			fmt.Printf("%7.0f%%", rate)
			if rate > bestRate {
				bestRate, best = rate, d
			}
		}
		fmt.Printf("%10s\n", label(best))
	}
	fmt.Println("\nreading: depth 1 hurts even noiselessly (the encoding turns")
	fmt.Println("nonlinear); at high noise shallow depths win back ground by")
	fmt.Println("shedding noisy gates — the paper's Fig. 3 trade-off.")
}

func label(d int) string {
	if d == qfarith.FullDepth {
		return "full"
	}
	return fmt.Sprintf("%d", d)
}

func successRate(depth int, p2 float64) float64 {
	rng := rand.New(rand.NewPCG(42, uint64(depth)<<32|uint64(p2*1e6)))
	wins := 0
	for i := 0; i < instances; i++ {
		x := qfarith.Basis(7, rng.IntN(128))
		y1 := rng.IntN(256)
		y2 := (y1 + 1 + rng.IntN(255)) % 256
		y := qfarith.Uniform(8, y1, y2)
		res := qfarith.Add(x, y,
			qfarith.WithSeed(uint64(i)+1),
			qfarith.WithDepth(depth),
			qfarith.WithNoise(0, p2),
			qfarith.WithShots(shots),
			qfarith.WithTrajectories(24),
			qfarith.WithBackend("trajectory"))
		if res.Success {
			wins++
		}
	}
	return 100 * float64(wins) / instances
}
