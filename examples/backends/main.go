// Backends: tour of the pluggable execution-backend layer. One small
// noisy Fourier addition is evaluated by every backend in the registry
// — discovered through backend.Names(), not hardcoded, so backends
// added later show up here automatically. The two trajectory engines
// (scalar and SoA-batched) are then pinned against each other: for
// equal seeds their distributions must match bit for bit at every
// batch width. The second half runs a panel sweep through a shared
// Runner and cancels it mid-grid, demonstrating that one bounded
// worker pool serves point- and instance-level parallelism and unwinds
// cleanly on cancellation.
package main

import (
	"context"
	"fmt"
	"math"

	"qfarith/internal/backend"
	"qfarith/internal/experiment"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
)

func main() {
	fmt.Println("available backends:", backend.Names())
	fmt.Println()

	// One 1:2 addition instance on a 3+4-qubit adder (7 qubits — small
	// enough for the exact density backend).
	geo := experiment.AddGeometry(3, 4)
	res := geo.BuildCircuit(qft.Full)
	x, y := 5, 11
	initial := make([]complex128, 1<<uint(geo.TotalQubits))
	initial[x|y<<3] = 1
	want := (x + y) & 15
	spec := backend.PointSpec{
		Circuit: res,
		Model:   noise.PaperModel(0.002, 0.01),
		Initial: initial,
		Measure: geo.OutReg,
		Seed1:   42, Seed2: 43,
	}

	// Exact channel output first, as the reference column.
	exactB, err := backend.New("density")
	if err != nil {
		panic(err)
	}
	exact, diag, err := exactB.Run(context.Background(), spec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("QFA %d+%d under λ1=0.2%% λ2=1%% (w0 = %.3f)\n", x, y, diag.NoErrorProb)
	fmt.Printf("%-24s %12s %14s\n", "backend", "P(correct)", "L1 vs exact")

	// Every registered backend on the same point, discovered by name.
	spec.Trajectories = 4096
	for _, name := range backend.Names() {
		b, err := backend.New(name)
		if err != nil {
			panic(err)
		}
		dist, _, err := b.Run(context.Background(), spec)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-24s %12.4f %14.4f\n", name, dist[want], l1(dist, exact))
	}

	// The Monte Carlo estimate converges onto the exact output as the
	// trajectory budget grows.
	fmt.Println()
	trajB, _ := backend.New("trajectory")
	for _, k := range []int{16, 256, 4096} {
		spec.Trajectories = k
		dist, _, err := trajB.Run(context.Background(), spec)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-24s %12.4f %14.4f\n",
			fmt.Sprintf("trajectory (K=%d)", k), dist[want], l1(dist, exact))
	}
	fmt.Printf("%-24s %12.4f %14s\n", "density (exact)", exact[want], "—")

	// The batched engine is not "close to" the scalar engine — it is the
	// same computation. Assert bit-identity at several batch widths.
	spec.Trajectories = 512
	ref, _, err := trajB.Run(context.Background(), spec)
	if err != nil {
		panic(err)
	}
	for _, lanes := range []int{0, 1, 4, 8} {
		bb, _ := backend.New("trajectory-batch")
		bb.(backend.BatchSizer).SetBatchLanes(lanes)
		dist, _, err := bb.Run(context.Background(), spec)
		if err != nil {
			panic(err)
		}
		for i := range dist {
			if math.Float64bits(dist[i]) != math.Float64bits(ref[i]) {
				panic(fmt.Sprintf("trajectory-batch (lanes=%d) diverged from trajectory at outcome %d: %g vs %g",
					lanes, i, dist[i], ref[i]))
			}
		}
	}
	fmt.Println("\ntrajectory-batch == trajectory bit-for-bit at lanes 0 (auto), 1, 4, 8")

	// A cancellable panel sweep on a shared Runner: cancel after the
	// third completed point and show the sweep stops mid-grid.
	fmt.Println("\ncancelling a panel sweep mid-grid:")
	runner := backend.NewRunner(backend.NewTrajectoryBackend(), 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pc := experiment.PanelConfig{
		Geometry: geo, Axis: experiment.Axis2Q,
		OrderX: 1, OrderY: 2,
		Rates:  []float64{0, 0.005, 0.01, 0.02},
		Depths: []int{1, 2, qft.Full},
		Budget: experiment.Budget{Instances: 6, Shots: 256, Trajectories: 8},
		Seed:   7,
	}
	completed := 0
	_, err = experiment.RunPanelCtx(ctx, runner, pc, func(p experiment.Progress) {
		completed = p.Done
		if p.Done == 3 {
			cancel()
		}
	})
	hits, misses := runner.Cache().Stats()
	fmt.Printf("  %d/%d points finished before cancel, error: %v\n", completed, 12, err)
	fmt.Printf("  transpile cache at cancel: %d built, %d reused\n", misses, hits)
}

func l1(a, b backend.Distribution) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}
