// Shorperiod: the application the paper's introduction leads with —
// Shor's algorithm — assembled from this library's pieces: the textbook
// QFT (with swap layer) for the phase-estimation register, modular
// arithmetic semantics for the work register, and the simulator's
// measurement machinery. Finds the multiplicative order r of a mod N
// (here 7 mod 15, r = 4), the quantum core of factoring 15.
//
// This example applies the controlled modular multiplications as
// controlled permutations at the simulator level (U_a|y> = |a·y mod N>
// is a basis permutation), which keeps the 12-qubit run instant. The
// fully gate-level construction — Beauregard controlled modular
// multiplication from Fourier adders, Toffoli-hoisted double controls,
// controlled register swaps — lives in arith.NewOrderFinding and is
// exercised by TestOrderFindingGateLevel; at the end this program runs
// it too and checks both routes agree.
package main

import (
	"fmt"
	"math"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/qft"
	"qfarith/internal/sim"
)

const (
	a = 7  // base
	n = 15 // modulus to "factor"
	t = 8  // phase-estimation qubits: resolution 1/256
	w = 4  // work register: holds values mod 15
)

func main() {
	fmt.Printf("order finding: r with %d^r ≡ 1 (mod %d)\n", a, n)
	fmt.Printf("phase register %d qubits, work register %d qubits\n\n", t, w)

	// Registers: phase on qubits 0..t-1, work on t..t+w-1.
	st := sim.NewState(t + w)
	st.SetBasis(1 << t) // phase |0...0>, work |1>

	// Hadamard wall on the phase register.
	for q := 0; q < t; q++ {
		st.H(q)
	}

	// Controlled-U^(2^k): U_a is the permutation y -> a*y mod n on the
	// work register (identity off the residue range), controlled by
	// phase qubit k. a^(2^k) mod n is precomputed classically, as in
	// every Shor implementation.
	for k := 0; k < t; k++ {
		mult := int(arith.PowMod(a, 1<<uint(k), n))
		applyControlledModMul(st, k, mult)
	}

	// Inverse textbook QFT on the phase register.
	c := circuit.New(t + w)
	arith.TextbookQFTGates(c, arith.Range(0, t), qft.Full)
	st.ApplyCircuit(c.Inverse())

	// Read the phase distribution; peaks sit at multiples of 2^t/r.
	probs := st.RegisterProbs(arith.Range(0, t))
	fmt.Println("phase-register peaks (probability > 2%):")
	type peak struct {
		v int
		p float64
	}
	var peaks []peak
	for v, p := range probs {
		if p > 0.02 {
			peaks = append(peaks, peak{v, p})
		}
	}
	for _, pk := range peaks {
		phase := float64(pk.v) / math.Pow(2, t)
		num, den := continuedFraction(phase, n)
		fmt.Printf("  %3d/256  P=%.3f  ≈ %d/%d\n", pk.v, pk.p, num, den)
	}

	// Recover r as the lcm of the denominators.
	r := 1
	for _, pk := range peaks {
		_, den := continuedFraction(float64(pk.v)/math.Pow(2, t), n)
		if den > 0 {
			r = lcm(r, den)
		}
	}
	fmt.Printf("\nrecovered order r = %d;  %d^%d mod %d = %d\n", r, a, r, n, arith.PowMod(a, uint64(r), n))
	if r%2 == 0 {
		g1 := gcd(int(arith.PowMod(a, uint64(r/2), n))-1, n)
		g2 := gcd(int(arith.PowMod(a, uint64(r/2), n))+1, n)
		fmt.Printf("factors of %d from gcd(a^(r/2)±1, N): %d, %d\n", n, g1, g2)
	}

	// Cross-check against the fully gate-level circuit (4 phase bits).
	gc, lay := arith.NewOrderFinding(a, n, 4, arith.DefaultConfig())
	gst := sim.NewState(lay.Total)
	gst.ApplyCircuit(gc)
	gp := gst.RegisterProbs(lay.Phase)
	fmt.Printf("\ngate-level circuit (%d qubits, %d gates) phase peaks:", lay.Total, len(gc.Ops))
	for v, p := range gp {
		if p > 0.02 {
			fmt.Printf(" %d/16 (%.2f)", v, p)
		}
	}
	fmt.Println()
	_ = gate.CX
}

// applyControlledModMul applies |c>|y> -> |c>|m·y mod n> when c=1 and y
// is a valid residue, directly permuting amplitudes.
func applyControlledModMul(st *sim.State, ctrl, m int) {
	amps := st.Amps()
	next := make([]complex128, len(amps))
	for idx, amp := range amps {
		if amp == 0 {
			next[idx] += 0
			continue
		}
		if (idx>>uint(ctrl))&1 == 0 {
			next[idx] += amp
			continue
		}
		y := idx >> t
		if y >= n {
			next[idx] += amp
			continue
		}
		ny := (y * m) % n
		nidx := idx&(1<<t-1) | ny<<t
		next[nidx] += amp
	}
	copy(amps, next)
}

// continuedFraction returns the best rational approximation p/q of x
// with q < maxDen (the classical post-processing step of Shor).
func continuedFraction(x float64, maxDen int) (int, int) {
	p0, q0, p1, q1 := 0, 1, 1, 0
	v := x
	for i := 0; i < 32; i++ {
		ai := int(math.Floor(v))
		p2 := ai*p1 + p0
		q2 := ai*q1 + q0
		if q2 >= maxDen {
			break
		}
		p0, q0, p1, q1 = p1, q1, p2, q2
		frac := v - float64(ai)
		if frac < 1e-9 {
			break
		}
		v = 1 / frac
	}
	return p1, q1
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
