// Quickstart: add and multiply integers on a simulated quantum computer
// using Quantum Fourier arithmetic, first noiselessly and then with the
// gate-error rates of current superconducting hardware.
package main

import (
	"fmt"

	"qfarith"
)

func main() {
	// --- noiseless addition: 100 + 27 on a 7-bit addend, 8-bit sum ---
	x := qfarith.Basis(7, 100)
	y := qfarith.Basis(8, 27)
	res := qfarith.Add(x, y, qfarith.WithSeed(1))
	fmt.Printf("100 + 27 -> top outcome %d (success=%v)\n", res.TopOutcomes(1)[0], res.Success)

	// --- noiseless multiplication: 12 x 13 on 4-bit operands ---
	res = qfarith.Mul(qfarith.Basis(4, 12), qfarith.Basis(4, 13), qfarith.WithSeed(1))
	fmt.Printf("12 x 13 -> top outcome %d (success=%v)\n", res.TopOutcomes(1)[0], res.Success)

	// --- subtraction: 27 - 100 wraps in two's complement ---
	res = qfarith.Sub(qfarith.Basis(7, 100), qfarith.Basis(8, 27), qfarith.WithSeed(1))
	fmt.Printf("27 - 100 -> top outcome %d (= -73 mod 256, success=%v)\n",
		res.TopOutcomes(1)[0], res.Success)

	// --- the same addition at IBM-like noise (0.2%% 1q, 1%% 2q) ---
	res = qfarith.Add(x, y,
		qfarith.WithSeed(1),
		qfarith.WithNoise(0.002, 0.01),
		qfarith.WithTrajectories(64))
	fmt.Printf("\nnoisy 100 + 27 (λ1=0.2%%, λ2=1%%): success=%v, margin=%d shots\n",
		res.Success, res.Margin)
	fmt.Printf("correct outcome kept %.1f%% of %d shots\n",
		100*float64(res.Counts[127])/2048, 2048)

	// --- circuit structure: Table I at a glance ---
	info := qfarith.DescribeAdder(7, 8, 3)
	fmt.Printf("\nQFA(n=8) at AQFT depth 3: %d qubits, %d 1q + %d 2q gates (Table I: 229 + 142)\n",
		info.Qubits, info.Gates.Paper1q, info.Gates.Paper2q)
}
