// Fullnoise: the paper's future-work regime — gate errors, thermal
// relaxation (T1/T2), and readout error simulated TOGETHER, then readout
// mitigation applied. Runs a 1:1 Fourier addition through the composite
// noise engine and shows how each error source eats into the correct
// outcome's probability, and how much calibration-matrix mitigation
// claws back.
package main

import (
	"fmt"
	"math/rand/v2"

	"qfarith/internal/arith"
	"qfarith/internal/experiment"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
	"qfarith/internal/sim"
)

func main() {
	geo := experiment.AddGeometry(4, 5)
	res := geo.BuildCircuit(qft.Full)
	x, y := 9, 20
	want := (x + y) & 31
	initial := make([]complex128, 1<<uint(geo.TotalQubits))
	initial[x|y<<4] = 1

	fmt.Printf("4+5-qubit Fourier addition %d + %d = %d under composite noise\n", x, y, want)
	fmt.Printf("(gate depolarizing λ1=0.1%% λ2=0.5%%; T1=20µs T2=15µs; readout flip 3%%)\n\n")

	gates := noise.PaperModel(0.001, 0.005)
	thermal := noise.ThermalParams{T1: 20e-6, T2: 15e-6, Gate1qTime: 35e-9, Gate2qTime: 300e-9}
	const readout = 0.03
	const trajectories = 160

	configs := []struct {
		name    string
		model   noise.Model
		thermal noise.ThermalParams
		ro      float64
	}{
		{"noiseless", noise.Noiseless, noise.ThermalParams{}, 0},
		{"gate errors only", gates, noise.ThermalParams{}, 0},
		{"thermal only", noise.Noiseless, thermal, 0},
		{"readout only", noise.Noiseless, noise.ThermalParams{}, readout},
		{"everything", gates, thermal, readout},
	}

	var composite []float64
	for _, cfg := range configs {
		fe := noise.NewFullEngine(res, cfg.model, cfg.thermal, cfg.ro)
		st := sim.NewState(geo.TotalQubits)
		rng := rand.New(rand.NewPCG(7, 8))
		dist := fe.EstimateDist(st, initial, geo.OutReg, trajectories, rng)
		fmt.Printf("%-18s P(correct) = %.3f\n", cfg.name, dist[want])
		if cfg.name == "everything" {
			composite = dist
		}
	}

	mitigated, err := noise.MitigateReadout(composite, readout)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nafter readout mitigation (calibration-matrix inverse):\n")
	fmt.Printf("%-18s P(correct) = %.3f  (was %.3f)\n", "everything", mitigated[want], composite[want])
	fmt.Println("\nmitigation removes the classical readout layer exactly; the")
	fmt.Println("residual gap to the gate-errors-only row is the quantum damage")
	fmt.Println("(depolarizing + relaxation) that no measurement-side fix recovers.")
	_ = arith.FullAdd
}
