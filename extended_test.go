package qfarith_test

import (
	"testing"

	"qfarith"
)

func TestDiv(t *testing.T) {
	res := qfarith.Div(qfarith.Basis(4, 14), 3, 3, qfarith.WithSeed(2))
	if !res.Success {
		t.Fatal("14 ÷ 3 failed")
	}
	// Outcome layout: remainder in low 5 bits, quotient above.
	want := 14%3 | (14/3)<<5
	if res.TopOutcomes(1)[0] != want {
		t.Fatalf("top outcome %d, want %d", res.TopOutcomes(1)[0], want)
	}
}

func TestDivSuperposed(t *testing.T) {
	res := qfarith.Div(qfarith.Uniform(4, 7, 13), 5, 2, qfarith.WithSeed(3))
	if !res.Success || len(res.Expected) != 2 {
		t.Fatalf("superposed division: success=%v expected=%v", res.Success, res.Expected)
	}
}

func TestDivPanicsWhenQuotientOverflows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for overflowing quotient")
		}
	}()
	qfarith.Div(qfarith.Basis(4, 15), 1, 2)
}

func TestSignedMul(t *testing.T) {
	// -3 × 5 = -15 on 4x4 bits.
	x := qfarith.Basis(4, 13) // -3 in 4-bit two's complement
	y := qfarith.Basis(4, 5)
	res := qfarith.SignedMul(x, y, qfarith.WithSeed(4))
	if !res.Success {
		t.Fatal("signed multiply failed")
	}
	raw := res.TopOutcomes(1)[0]
	if got := qfarith.SignedOutcome(raw, 8); got != -15 {
		t.Fatalf("signed outcome %d, want -15", got)
	}
}

func TestSignedMulNegativeTimesNegative(t *testing.T) {
	x := qfarith.Basis(3, 6) // -2
	y := qfarith.Basis(3, 5) // -3
	res := qfarith.SignedMul(x, y, qfarith.WithSeed(5))
	raw := res.TopOutcomes(1)[0]
	if got := qfarith.SignedOutcome(raw, 6); got != 6 {
		t.Fatalf("(-2)(-3) = %d, want 6", got)
	}
}

func TestModAdd(t *testing.T) {
	res := qfarith.ModAdd(qfarith.Basis(4, 9), 7, 13, qfarith.WithSeed(6))
	if !res.Success || !res.Expected[(9+7)%13] {
		t.Fatalf("modular add: success=%v expected=%v", res.Success, res.Expected)
	}
}

func TestModAddSuperposed(t *testing.T) {
	res := qfarith.ModAdd(qfarith.Uniform(4, 2, 11), 4, 13, qfarith.WithSeed(7))
	if !res.Success || !res.Expected[6] || !res.Expected[2] {
		t.Fatalf("superposed modular add: %v", res.Expected)
	}
}

func TestModAddRejectsNonResidue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-residue operand")
		}
	}()
	qfarith.ModAdd(qfarith.Basis(4, 14), 1, 13)
}

func TestFidelityExposed(t *testing.T) {
	if f := qfarith.Fidelity([]float64{1, 0}, []float64{1, 0}); f != 1 {
		t.Errorf("identical fidelity %g", f)
	}
	if f := qfarith.Fidelity([]float64{1, 0}, []float64{0, 1}); f != 0 {
		t.Errorf("disjoint fidelity %g", f)
	}
}

func TestDivUnderNoiseDegrades(t *testing.T) {
	clean := qfarith.Div(qfarith.Basis(4, 13), 3, 3, qfarith.WithSeed(8))
	noisy := qfarith.Div(qfarith.Basis(4, 13), 3, 3, qfarith.WithSeed(8),
		qfarith.WithNoise(0.002, 0.01), qfarith.WithTrajectories(24))
	want := 13%3 | (13/3)<<5
	if noisy.Counts[want] >= clean.Counts[want] {
		t.Errorf("noise did not reduce correct counts: %d vs %d",
			noisy.Counts[want], clean.Counts[want])
	}
}
