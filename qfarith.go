// Package qfarith is a Go library for Quantum Fourier arithmetic under
// tunable gate noise, reproducing "Performance Evaluations of Noisy
// Approximate Quantum Fourier Arithmetic" (Basili et al., IPPS 2022).
//
// It provides Draper-style Quantum Fourier Addition (QFA), weighted-sum
// Quantum Fourier Multiplication (QFM), the approximate QFT (AQFT) with
// a tunable rotation depth, transpilation to the IBM native basis
// {id, x, rz, sx, cx}, depolarizing gate-noise models sampled as Pauli
// trajectories, and the paper's success metric.
//
// The root package is a convenience façade over the internal engine:
//
//	x := qfarith.Uniform(7, 19, 100)       // order-2 qinteger
//	y := qfarith.Basis(8, 7)               // order-1 qinteger
//	res := qfarith.Add(x, y,
//	    qfarith.WithDepth(3),
//	    qfarith.WithNoise(0.002, 0.01))
//	fmt.Println(res.Success, res.TopOutcomes(4))
package qfarith

import (
	"context"
	"fmt"

	"qfarith/internal/arith"
	"qfarith/internal/backend"
	"qfarith/internal/experiment"
	"qfarith/internal/metrics"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
	"qfarith/internal/qint"
	"qfarith/internal/sim"
	"qfarith/internal/transpile"
)

// QInt is a quantum integer: a superposition of integer states on a
// fixed-width register. See Basis, Uniform and Superposition.
type QInt = qint.QInt

// Term is one integer component of a QInt.
type Term = qint.Term

// FullDepth requests the exact (untruncated) QFT.
const FullDepth = qft.Full

// Basis returns the order-1 qinteger |value> on width qubits.
func Basis(width, value int) QInt { return qint.NewBasis(width, value) }

// Uniform returns an evenly-weighted superposition of the given distinct
// values on width qubits — the paper's order-k operand states.
func Uniform(width int, values ...int) QInt { return qint.NewUniform(width, values...) }

// Superposition returns a qinteger with explicit complex amplitudes
// (normalized).
func Superposition(width int, terms []Term) QInt { return qint.New(width, terms) }

// Options configure an arithmetic simulation.
type Options struct {
	// Depth is the AQFT approximation depth (default FullDepth).
	Depth int
	// OneQubitError and TwoQubitError are the depolarizing rates λ1, λ2
	// attached to native 1q gates and CX gates (default 0: noiseless).
	OneQubitError float64
	TwoQubitError float64
	// NoiseOnRZ mirrors the paper's convention of counting RZ among the
	// noisy 1q gates (default true whenever OneQubitError > 0).
	NoiseOnRZ *bool
	// Shots per instance (default 2048, the paper's setting).
	Shots int
	// Trajectories bounds the Monte Carlo estimate of the noisy output
	// distribution (default 64; use Shots for exact per-shot semantics).
	Trajectories int
	// Seed makes the run reproducible (default 1).
	Seed uint64
	// Backend selects an execution backend from internal/backend's
	// registry ("trajectory", "density"). Empty keeps the legacy inline
	// trajectory path, which predates the backend layer and whose RNG
	// stream existing callers may depend on.
	Backend string
}

// Option mutates Options.
type Option func(*Options)

// WithDepth sets the AQFT approximation depth.
func WithDepth(d int) Option { return func(o *Options) { o.Depth = d } }

// WithNoise sets the 1q and 2q depolarizing error rates (fractions, e.g.
// 0.01 for 1%).
func WithNoise(p1q, p2q float64) Option {
	return func(o *Options) { o.OneQubitError, o.TwoQubitError = p1q, p2q }
}

// WithShots sets the measurement shot count.
func WithShots(n int) Option { return func(o *Options) { o.Shots = n } }

// WithTrajectories sets the Monte Carlo trajectory count.
func WithTrajectories(k int) Option { return func(o *Options) { o.Trajectories = k } }

// WithSeed sets the RNG seed.
func WithSeed(s uint64) Option { return func(o *Options) { o.Seed = s } }

// WithHardwareRZ disables noise on RZ gates, modeling IBM's virtual
// (error-free) RZ instead of the paper's all-1q-gates convention.
func WithHardwareRZ() Option {
	f := false
	return func(o *Options) { o.NoiseOnRZ = &f }
}

// WithBackend routes execution through the named pluggable backend:
// "trajectory" for the stratified Pauli-trajectory mixture engine,
// "density" for exact density-matrix channel evolution (registers up to
// 10 qubits). Panics on an unknown name, like the other construction
// errors of this facade. Note the trajectory backend draws its shot
// samples from a stream independent of the mixture RNG, so results
// differ bit-wise (not statistically) from the default inline path.
func WithBackend(name string) Option { return func(o *Options) { o.Backend = name } }

func buildOptions(opts []Option) Options {
	o := Options{Depth: FullDepth, Shots: 2048, Trajectories: 64, Seed: 1}
	for _, f := range opts {
		f(&o)
	}
	if o.Depth < 1 {
		o.Depth = 1
	}
	if o.Shots < 1 {
		o.Shots = 1
	}
	if o.Trajectories < 1 {
		o.Trajectories = 1
	}
	return o
}

func (o Options) model() noise.Model {
	m := noise.Model{OneQubit: o.OneQubitError, TwoQubit: o.TwoQubitError, NoiseOnRZ: true}
	if o.NoiseOnRZ != nil {
		m.NoiseOnRZ = *o.NoiseOnRZ
	}
	return m
}

// Result reports one simulated arithmetic instance.
type Result struct {
	// OutputBits is the measured register width; outcomes are integers
	// in [0, 2^OutputBits).
	OutputBits int
	// Probs is the simulated output distribution (noise included).
	Probs []float64
	// Counts is the sampled shot histogram.
	Counts []int
	// Expected is the set of correct outputs given the operands.
	Expected map[int]bool
	// Success and Margin apply the paper's metric to Counts.
	Success bool
	Margin  int
	// Gate counts of the simulated circuit (paper Table I convention
	// and fully native).
	Gates GateCounts
}

// GateCounts summarizes circuit size.
type GateCounts struct {
	Paper1q, Paper2q   int
	Native1q, Native2q int
}

// TopOutcomes returns the k most frequent outcomes of the shot histogram.
func (r Result) TopOutcomes(k int) []int { return metrics.TopOutcomes(r.Counts, k) }

// Add simulates Quantum Fourier Addition of x into a y-sized register:
// the returned outcomes are (x + y) mod 2^y.Width. The x register must
// not be wider than y's.
func Add(x, y QInt, opts ...Option) Result {
	if x.Width > y.Width {
		panic(fmt.Sprintf("qfarith: addend width %d exceeds sum register width %d", x.Width, y.Width))
	}
	o := buildOptions(opts)
	geo := experiment.AddGeometry(x.Width, y.Width)
	res := geo.BuildCircuit(o.Depth)
	initial := qint.Product(x, y)
	expected := metrics.CorrectSums(x.Values(), y.Values(), y.Width)
	return runResult(o, geo, res, initial, expected)
}

// Sub simulates Fourier subtraction: outcomes are (y - x) mod 2^y.Width.
func Sub(x, y QInt, opts ...Option) Result {
	if x.Width > y.Width {
		panic(fmt.Sprintf("qfarith: subtrahend width %d exceeds register width %d", x.Width, y.Width))
	}
	o := buildOptions(opts)
	geo := experiment.AddGeometry(x.Width, y.Width)
	c := newSubCircuit(geo, o.Depth)
	res := transpile.Transpile(c)
	initial := qint.Product(x, y)
	mask := 1<<uint(y.Width) - 1
	expected := make(map[int]bool)
	for _, xv := range x.Values() {
		for _, yv := range y.Values() {
			expected[(yv-xv)&mask] = true
		}
	}
	return runResult(o, geo, res, initial, expected)
}

// Mul simulates Quantum Fourier Multiplication: outcomes are x·y on a
// product register of x.Width+y.Width qubits.
func Mul(x, y QInt, opts ...Option) Result {
	o := buildOptions(opts)
	geo := experiment.MulGeometry(x.Width, y.Width)
	res := geo.BuildCircuit(o.Depth)
	z := qint.NewBasis(x.Width+y.Width, 0)
	initial := qint.Product(z, y, x)
	expected := metrics.CorrectProducts(x.Values(), y.Values(), x.Width+y.Width)
	return runResult(o, geo, res, initial, expected)
}

func newSubCircuit(geo experiment.Geometry, depth int) *circuitAlias {
	c := circuitNew(geo.TotalQubits)
	arith.SubGates(c, geo.XReg, geo.YReg, arith.Config{Depth: depth, AddCut: arith.FullAdd})
	return c
}

func runResult(o Options, geo experiment.Geometry, res *transpile.Result, initial []complex128, expected map[int]bool) Result {
	var dist []float64
	var sampler *sim.Sampler
	if o.Backend != "" {
		b, err := backend.New(o.Backend)
		if err != nil {
			panic("qfarith: " + err.Error())
		}
		d, _, err := b.Run(context.Background(), backend.PointSpec{
			Circuit:      res,
			Model:        o.model(),
			Initial:      initial,
			Measure:      geo.OutReg,
			Trajectories: o.Trajectories,
			Seed1:        o.Seed,
			Seed2:        o.Seed ^ 0x6a09e667f3bcc909,
		})
		if err != nil {
			panic("qfarith: " + err.Error())
		}
		dist = d
		sampler = sim.NewSampler(o.Seed^0x9e3779b97f4a7c15, o.Seed)
	} else {
		// Legacy inline path: the mixture RNG and the shot sampler share
		// one stream; kept verbatim so seeded results stay stable.
		engine := noise.NewEngine(res, o.model())
		st := sim.NewState(geo.TotalQubits)
		dist = make([]float64, 1<<uint(geo.OutBits))
		sampler = sim.NewSampler(o.Seed, o.Seed^0x6a09e667f3bcc909)
		engine.MixtureInto(dist, st, initial, noise.MixtureOpts{
			Trajectories: o.Trajectories,
			Measure:      geo.OutReg,
		}, sampler.Rand())
	}
	counts := sampler.Counts(dist, o.Shots)
	score := metrics.Score(counts, expected)
	n1, n2 := res.CountByArity()
	src := circuitNew(res.NumQubits)
	src.Ops = append(src.Ops, res.Source...)
	p1, p2 := transpile.PaperCounts(src)
	return Result{
		OutputBits: geo.OutBits,
		Probs:      dist,
		Counts:     counts,
		Expected:   expected,
		Success:    score.Success,
		Margin:     score.Margin,
		Gates:      GateCounts{Paper1q: p1, Paper2q: p2, Native1q: n1, Native2q: n2},
	}
}
