package qfarith_test

import (
	"fmt"
	"sort"

	"qfarith"
)

// Example demonstrates the basic add-two-integers flow.
func Example() {
	res := qfarith.Add(qfarith.Basis(7, 100), qfarith.Basis(8, 27))
	fmt.Println(res.TopOutcomes(1)[0], res.Success)
	// Output: 127 true
}

// ExampleAdd_superposed shows the paper's headline capability: one
// circuit execution computes all superposed sums in parallel.
func ExampleAdd_superposed() {
	x := qfarith.Uniform(7, 10, 20)
	y := qfarith.Uniform(8, 1, 2)
	res := qfarith.Add(x, y)
	sums := make([]int, 0, len(res.Expected))
	for v := range res.Expected {
		sums = append(sums, v)
	}
	sort.Ints(sums)
	fmt.Println(sums, res.Success)
	// Output: [11 12 21 22] true
}

// ExampleMul computes a product on the simulated device.
func ExampleMul() {
	res := qfarith.Mul(qfarith.Basis(4, 12), qfarith.Basis(4, 13))
	fmt.Println(res.TopOutcomes(1)[0])
	// Output: 156
}

// ExampleSub shows two's-complement wraparound.
func ExampleSub() {
	res := qfarith.Sub(qfarith.Basis(7, 100), qfarith.Basis(8, 27))
	fmt.Println(res.TopOutcomes(1)[0]) // 27-100 = -73 ≡ 183 (mod 256)
	// Output: 183
}

// ExampleDescribeAdder inspects circuit structure without simulating.
func ExampleDescribeAdder() {
	info := qfarith.DescribeAdder(7, 8, 3)
	fmt.Println(info.Gates.Paper1q, info.Gates.Paper2q)
	// Output: 229 142
}

// ExampleWithNoise runs the paper's current-hardware noise point.
func ExampleWithNoise() {
	res := qfarith.Add(qfarith.Basis(7, 100), qfarith.Basis(8, 27),
		qfarith.WithNoise(0.002, 0.01),
		qfarith.WithDepth(3),
		qfarith.WithSeed(42),
		qfarith.WithTrajectories(32))
	fmt.Println(res.Success)
	// Output: true
}
