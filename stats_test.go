package qfarith_test

import (
	"testing"

	"qfarith"
)

// TestStatsAdvances checks the façade's telemetry view: simulating
// noisy arithmetic must advance the trajectory counter. The registry
// is process-global and shared with every other test, so only deltas
// are asserted.
func TestStatsAdvances(t *testing.T) {
	before := qfarith.Stats()
	x := qfarith.Uniform(3, 1, 2)
	y := qfarith.Basis(4, 3)
	res := qfarith.Add(x, y, qfarith.WithNoise(0.002, 0.01))
	if len(res.Counts) == 0 {
		t.Fatal("Add returned no shot histogram")
	}
	after := qfarith.Stats()
	if after.Trajectories <= before.Trajectories {
		t.Errorf("Trajectories did not advance: %d -> %d", before.Trajectories, after.Trajectories)
	}
}
