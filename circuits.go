package qfarith

import (
	"time"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/compile"
	"qfarith/internal/qft"
	"qfarith/internal/transpile"
)

// circuitAlias/circuitNew keep the façade free of a direct exported
// dependency on the internal circuit type while reusing it internally.
type circuitAlias = circuit.Circuit

func circuitNew(n int) *circuitAlias { return circuit.New(n) }

// PassStat summarizes what one compilation pass did to the circuit; the
// exported mirror of the internal compile pipeline's per-pass stats.
type PassStat struct {
	// Pass is the pass name ("decompose", "fuse", ...).
	Pass string
	// Ops/OneQ/TwoQ/Depth report the gate list before and after the pass.
	OpsBefore, OpsAfter     int
	OneQBefore, OneQAfter   int
	TwoQBefore, TwoQAfter   int
	DepthBefore, DepthAfter int
	// Wall is the pass's compilation wall time.
	Wall time.Duration
	// Segments is the fused-plan segment count (fuse pass only).
	Segments int
	// Swaps is the number of SWAPs inserted (route pass only).
	Swaps int
}

// CircuitInfo describes a constructed arithmetic circuit without
// exposing the internal IR.
type CircuitInfo struct {
	Qubits int
	Ops    int
	// Depth is the logical circuit depth (ASAP layering over the source
	// gate list, before transpilation) — not the AQFT approximation
	// depth. NativeDepth is the depth after lowering to the IBM native
	// basis {id, x, rz, sx, cx}: the depth the noise model actually sees,
	// always ≥ Depth since every decomposition only adds gates.
	Depth       int
	NativeDepth int
	Gates       GateCounts
	Listing     string // OpenQASM-like gate listing
	AQFTFull    bool   // whether the AQFT depth left the transform exact
	// Passes reports the compilation pipeline's per-pass statistics, in
	// execution order (the default decompose+fuse pipeline).
	Passes []PassStat
}

func describe(c *circuitAlias, aqftDepth, regWidth int) CircuitInfo {
	p, err := compile.New(compile.Config{})
	if err != nil {
		panic("qfarith: " + err.Error())
	}
	art, err := p.Compile(c)
	if err != nil {
		panic("qfarith: " + err.Error())
	}
	n1, n2 := art.Result.CountByArity()
	p1, p2 := transpile.PaperCounts(c)
	passes := make([]PassStat, len(art.Stats))
	for i, st := range art.Stats {
		passes[i] = PassStat{
			Pass:      st.Pass,
			OpsBefore: st.OpsBefore, OpsAfter: st.OpsAfter,
			OneQBefore: st.OneQBefore, OneQAfter: st.OneQAfter,
			TwoQBefore: st.TwoQBefore, TwoQAfter: st.TwoQAfter,
			DepthBefore: st.DepthBefore, DepthAfter: st.DepthAfter,
			Wall:     st.Wall,
			Segments: st.Segments,
			Swaps:    st.Swaps,
		}
	}
	return CircuitInfo{
		Qubits:      c.NumQubits,
		Ops:         len(c.Ops),
		Depth:       art.SourceDepth,
		NativeDepth: art.NativeDepth,
		Gates:       GateCounts{Paper1q: p1, Paper2q: p2, Native1q: n1, Native2q: n2},
		Listing:     c.String(),
		AQFTFull:    qft.IsFull(aqftDepth, regWidth),
		Passes:      passes,
	}
}

// DescribeAdder reports the structure of the QFA circuit for an
// xbits-wide addend and ybits-wide sum register at the given AQFT depth.
func DescribeAdder(xbits, ybits, depth int) CircuitInfo {
	c := arith.NewQFA(xbits, ybits, arith.Config{Depth: depth, AddCut: arith.FullAdd})
	return describe(c, depth, ybits)
}

// DescribeMultiplier reports the structure of the QFM circuit for n- and
// m-qubit multiplicands at the given AQFT depth.
func DescribeMultiplier(n, m, depth int) CircuitInfo {
	c := arith.NewQFM(n, m, arith.Config{Depth: depth, AddCut: arith.FullAdd})
	return describe(c, depth, m+1)
}

// DescribeQFT reports the structure of the w-qubit AQFT at depth d.
func DescribeQFT(w, d int) CircuitInfo {
	return describe(qft.New(w, d), d, w)
}
