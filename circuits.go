package qfarith

import (
	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/qft"
	"qfarith/internal/transpile"
)

// circuitAlias/circuitNew keep the façade free of a direct exported
// dependency on the internal circuit type while reusing it internally.
type circuitAlias = circuit.Circuit

func circuitNew(n int) *circuitAlias { return circuit.New(n) }

// CircuitInfo describes a constructed arithmetic circuit without
// exposing the internal IR.
type CircuitInfo struct {
	Qubits   int
	Ops      int
	Depth    int // circuit depth (ASAP layering), not the AQFT depth
	Gates    GateCounts
	Listing  string // OpenQASM-like gate listing
	AQFTFull bool   // whether the AQFT depth left the transform exact
}

func describe(c *circuitAlias, aqftDepth, regWidth int) CircuitInfo {
	r := transpile.Transpile(c)
	n1, n2 := r.CountByArity()
	p1, p2 := transpile.PaperCounts(c)
	return CircuitInfo{
		Qubits:   c.NumQubits,
		Ops:      len(c.Ops),
		Depth:    c.Depth(),
		Gates:    GateCounts{Paper1q: p1, Paper2q: p2, Native1q: n1, Native2q: n2},
		Listing:  c.String(),
		AQFTFull: qft.IsFull(aqftDepth, regWidth),
	}
}

// DescribeAdder reports the structure of the QFA circuit for an
// xbits-wide addend and ybits-wide sum register at the given AQFT depth.
func DescribeAdder(xbits, ybits, depth int) CircuitInfo {
	c := arith.NewQFA(xbits, ybits, arith.Config{Depth: depth, AddCut: arith.FullAdd})
	return describe(c, depth, ybits)
}

// DescribeMultiplier reports the structure of the QFM circuit for n- and
// m-qubit multiplicands at the given AQFT depth.
func DescribeMultiplier(n, m, depth int) CircuitInfo {
	c := arith.NewQFM(n, m, arith.Config{Depth: depth, AddCut: arith.FullAdd})
	return describe(c, depth, m+1)
}

// DescribeQFT reports the structure of the w-qubit AQFT at depth d.
func DescribeQFT(w, d int) CircuitInfo {
	return describe(qft.New(w, d), d, w)
}
