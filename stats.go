package qfarith

import "qfarith/internal/telemetry"

// SweepStats summarizes the process-wide execution telemetry the
// engine records while points run: work volume (points, shots,
// trajectories), cache effectiveness, and point latency. It is the
// façade counterpart of CircuitInfo — a read-only view over the
// default telemetry registry, cheap enough to poll from a progress
// loop. Counts are cumulative for the process; take deltas to rate
// them.
type SweepStats struct {
	// PointsFresh counts sweep points computed in this process;
	// PointsRestored counts points restored from checkpoint logs.
	PointsFresh    uint64
	PointsRestored uint64
	// Shots is the total number of measurement shots sampled.
	Shots uint64
	// Trajectories counts conditional noise trajectories simulated.
	Trajectories uint64
	// CacheHits and CacheMisses aggregate every execution-layer cache
	// (transpile and engine caches, all pipelines).
	CacheHits   uint64
	CacheMisses uint64
	// PointP50 and PointP99 are windowed point-latency quantiles in
	// seconds (0 until a point completes).
	PointP50 float64
	PointP99 float64
}

// Stats reads the current SweepStats from the default telemetry
// registry.
func Stats() SweepStats {
	snap := telemetry.Default().Snapshot()
	var s SweepStats
	for _, c := range snap.Counters {
		switch c.Name {
		case "qfarith_points_total":
			switch c.Labels["kind"] {
			case "fresh":
				s.PointsFresh += c.Value
			case "restored":
				s.PointsRestored += c.Value
			}
		case "qfarith_shots_total":
			s.Shots += c.Value
		case "qfarith_trajectories_total":
			s.Trajectories += c.Value
		case "qfarith_cache_events_total":
			switch c.Labels["result"] {
			case "hit":
				s.CacheHits += c.Value
			case "miss":
				s.CacheMisses += c.Value
			}
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == "qfarith_point_seconds" {
			s.PointP50, s.PointP99 = h.P50, h.P99
		}
	}
	return s
}
