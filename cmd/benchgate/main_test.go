package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: qfarith
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkTable1GateCounts             	       1	    271733 ns/op	  216920 B/op	    1565 allocs/op
BenchmarkFig3a_QFA_1q_11              	       1	  43295162 ns/op	       142.0 cx_gates	       100.0 success%	 3317216 B/op	     208 allocs/op
BenchmarkQFTApply8                    	       1	     17656 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMemColumns                 	       1	     12345 ns/op
PASS
ok  	qfarith	2.037s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(got))
	}
	tbl := got["BenchmarkTable1GateCounts"]
	if tbl.bytes != 216920 || tbl.allocs != 1565 || !tbl.hasMem {
		t.Errorf("Table1 = %+v, want bytes=216920 allocs=1565", tbl)
	}
	// Custom metrics (cx_gates, success%) must not disturb the parse.
	fig := got["BenchmarkFig3a_QFA_1q_11"]
	if fig.bytes != 3317216 || fig.allocs != 208 {
		t.Errorf("Fig3a = %+v, want bytes=3317216 allocs=208", fig)
	}
	if zero := got["BenchmarkQFTApply8"]; zero.bytes != 0 || zero.allocs != 0 || !zero.hasMem {
		t.Errorf("QFTApply8 = %+v, want zeroed mem columns present", zero)
	}
	if nm := got["BenchmarkNoMemColumns"]; nm.hasMem {
		t.Errorf("NoMemColumns parsed as having mem columns: %+v", nm)
	}
}

func TestParseBenchBadValue(t *testing.T) {
	if _, err := parseBench(strings.NewReader("BenchmarkX 1 oops B/op\n")); err == nil {
		t.Fatal("want error for unparsable value")
	}
}

func defaultTol() tolerances {
	return tolerances{bytesSlack: 0.15, bytesAbs: 4096, allocsSlack: 0.10, allocsAbs: 4}
}

func bench(name string, bytes, allocs float64) map[string]benchResult {
	return map[string]benchResult{name: {name: name, bytes: bytes, allocs: allocs, hasMem: true}}
}

func TestGateWithinTolerancePasses(t *testing.T) {
	base := bench("BenchmarkA", 1000, 100)
	cur := bench("BenchmarkA", 1100, 104) // +10% bytes, +4 allocs
	failures, _ := gate(base, cur, defaultTol())
	if len(failures) != 0 {
		t.Errorf("unexpected failures: %v", failures)
	}
}

func TestGateAllocRegressionFails(t *testing.T) {
	base := bench("BenchmarkA", 1000, 100)
	cur := bench("BenchmarkA", 1000, 130) // +30% allocs
	failures, _ := gate(base, cur, defaultTol())
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Errorf("failures = %v, want one allocs/op failure", failures)
	}
}

func TestGateBytesRegressionFails(t *testing.T) {
	base := bench("BenchmarkA", 100000, 10)
	cur := bench("BenchmarkA", 130000, 10) // +30% bytes
	failures, _ := gate(base, cur, defaultTol())
	if len(failures) != 1 || !strings.Contains(failures[0], "B/op") {
		t.Errorf("failures = %v, want one B/op failure", failures)
	}
}

func TestGateZeroBaselineAbsoluteHeadroom(t *testing.T) {
	// A zero-alloc benchmark may jitter by the absolute headroom (pool
	// warm-up) but not beyond.
	base := bench("BenchmarkZero", 0, 0)
	ok := bench("BenchmarkZero", 4096, 4)
	if failures, _ := gate(base, ok, defaultTol()); len(failures) != 0 {
		t.Errorf("within absolute headroom, got failures: %v", failures)
	}
	bad := bench("BenchmarkZero", 5000, 5)
	if failures, _ := gate(base, bad, defaultTol()); len(failures) != 2 {
		t.Errorf("beyond absolute headroom, failures = %v, want 2", failures)
	}
}

func TestGateMissingAndAddedBenchmarks(t *testing.T) {
	base := bench("BenchmarkOld", 10, 1)
	cur := bench("BenchmarkNew", 10, 1)
	failures, _ := gate(base, cur, defaultTol())
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want missing+added", failures)
	}
	if !strings.Contains(failures[0], "missing") || !strings.Contains(failures[1], "not in the baseline") {
		t.Errorf("unexpected failure wording: %v", failures)
	}
}

func TestGateImprovementIsAdvisory(t *testing.T) {
	base := bench("BenchmarkA", 1000, 100)
	cur := bench("BenchmarkA", 500, 10)
	failures, notes := gate(base, cur, defaultTol())
	if len(failures) != 0 {
		t.Errorf("improvement failed the gate: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "improved") {
		t.Errorf("notes = %v, want one improvement note", notes)
	}
}
