// Command benchgate turns `go test -bench` output into a hard CI gate
// on allocation metrics. Timing (ns/op) on shared CI runners is too
// noisy to gate, but B/op and allocs/op are deterministic modulo
// sync.Pool warm-up, so regressions there are real code changes — a
// hot path that started allocating — and benchgate fails the build on
// them.
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . > bench_ci.txt
//	go run ./cmd/benchgate -baseline results/bench_baseline.txt -current bench_ci.txt
//
// Intentional changes regenerate the committed baseline:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . | \
//	    go run ./cmd/benchgate -baseline results/bench_baseline.txt -update-bench-baseline
//
// Custom benchmark metrics (cx_gates, success%, ns/op) are carried
// through to the regenerated baseline but never gated. Small tolerances
// absorb sync.Pool and map-growth jitter at -benchtime=1x; they are
// tunable with -allocs-slack/-allocs-abs/-bytes-slack/-bytes-abs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult holds the gated metrics of one benchmark line.
type benchResult struct {
	name   string
	bytes  float64 // B/op
	allocs float64 // allocs/op
	// hasMem distinguishes a benchmark run without -benchmem (no
	// allocation columns) from one that reported zero.
	hasMem bool
}

// parseBench extracts benchmark results from `go test -bench` output.
// Non-benchmark lines (goos/goarch headers, PASS, ok) and metrics other
// than B/op and allocs/op are skipped.
func parseBench(r io.Reader) (map[string]benchResult, error) {
	out := make(map[string]benchResult)
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(buf), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		res := benchResult{name: fields[0]}
		// fields[1] is the iteration count; the rest are "value unit"
		// pairs. A trailing unpaired field (shouldn't happen) is ignored.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value %q on line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "B/op":
				res.bytes = v
				res.hasMem = true
			case "allocs/op":
				res.allocs = v
				res.hasMem = true
			}
		}
		out[res.name] = res
	}
	return out, nil
}

// tolerances bound how far a metric may drift above its baseline
// before the gate fails: cur > base*(1+slack) + abs.
type tolerances struct {
	bytesSlack, bytesAbs   float64
	allocsSlack, allocsAbs float64
}

// gate compares current against baseline and returns the failure
// messages (empty = pass) and advisory notes.
func gate(baseline, current map[string]benchResult, tol tolerances) (failures, notes []string) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from the current run (renamed or deleted? regenerate the baseline)", name))
			continue
		}
		if !base.hasMem || !cur.hasMem {
			continue
		}
		if limit := base.bytes*(1+tol.bytesSlack) + tol.bytesAbs; cur.bytes > limit {
			failures = append(failures, fmt.Sprintf("%s: B/op %.0f > %.0f (baseline %.0f +%.0f%% +%.0f)",
				name, cur.bytes, limit, base.bytes, tol.bytesSlack*100, tol.bytesAbs))
		}
		if limit := base.allocs*(1+tol.allocsSlack) + tol.allocsAbs; cur.allocs > limit {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f > %.0f (baseline %.0f +%.0f%% +%.0f)",
				name, cur.allocs, limit, base.allocs, tol.allocsSlack*100, tol.allocsAbs))
		}
		// Meaningful improvements are worth locking in before they rot.
		if base.allocs > 0 && cur.allocs < base.allocs/2 {
			notes = append(notes, fmt.Sprintf("%s: allocs/op improved %.0f -> %.0f — consider regenerating the baseline to lock it in",
				name, base.allocs, cur.allocs))
		}
	}
	var added []string
	for name := range current {
		if _, ok := baseline[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		failures = append(failures, fmt.Sprintf("%s: not in the baseline — regenerate it to cover the new benchmark", name))
	}
	return failures, notes
}

func main() {
	baselinePath := flag.String("baseline", "results/bench_baseline.txt", "committed baseline bench output")
	currentPath := flag.String("current", "", "current bench output (default: stdin)")
	update := flag.Bool("update-bench-baseline", false, "overwrite the baseline with the current run instead of gating")
	bytesSlack := flag.Float64("bytes-slack", 0.15, "relative B/op headroom")
	bytesAbs := flag.Float64("bytes-abs", 4096, "absolute B/op headroom")
	allocsSlack := flag.Float64("allocs-slack", 0.10, "relative allocs/op headroom")
	allocsAbs := flag.Float64("allocs-abs", 4, "absolute allocs/op headroom")
	flag.Parse()

	var curReader io.Reader = os.Stdin
	var rawCurrent []byte
	if *currentPath != "" {
		b, err := os.ReadFile(*currentPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rawCurrent = b
	} else {
		b, err := io.ReadAll(curReader)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rawCurrent = b
	}
	current, err := parseBench(strings.NewReader(string(rawCurrent)))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: current run contains no benchmark lines")
		os.Exit(1)
	}

	if *update {
		if err := os.WriteFile(*baselinePath, rawCurrent, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: baseline %s regenerated (%d benchmarks)\n", *baselinePath, len(current))
		return
	}

	bf, err := os.Open(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	baseline, err := parseBench(bf)
	bf.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	failures, notes := gate(baseline, current, tolerances{
		bytesSlack: *bytesSlack, bytesAbs: *bytesAbs,
		allocsSlack: *allocsSlack, allocsAbs: *allocsAbs,
	})
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		fmt.Fprintf(os.Stderr, "benchgate: %d allocation regression(s); intentional changes regenerate the baseline with -update-bench-baseline\n", len(failures))
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within allocation tolerances\n", len(baseline))
}
