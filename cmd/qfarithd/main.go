// Command qfarithd is the job-scheduling simulation daemon: it serves
// the sweep experiments of arXiv:2112.09349 over an HTTP/JSON API
// instead of a one-shot CLI invocation.
//
//	qfarithd -addr localhost:8080 -data ./qfarithd-data
//
//	# submit a quick fig3 sweep
//	curl -s -X POST localhost:8080/api/v1/jobs \
//	  -d '{"command":"fig3","budget":"quick","seed":777}'
//	# follow progress until the stream closes
//	curl -sN localhost:8080/api/v1/jobs/job-000001/events
//	# fetch an artifact
//	curl -s localhost:8080/api/v1/jobs/job-000001/artifacts/fig3_2q_11.csv
//
// Jobs run through the same backend/experiment/runstore machinery as
// the qfarith CLI into ordinary run directories under -data, so a
// fixed-seed job's CSVs are byte-identical to the same sweep run via
// the CLI, and an interrupted job's directory resumes with `qfarith
// <command> ... -rundir DIR -resume`.
//
// SIGTERM/SIGINT triggers a graceful drain: queued jobs are cancelled,
// running jobs are interrupted after their checkpoint logs have
// absorbed every completed point, and the process exits 0 once the
// drain completes (non-zero if -drain-timeout expires first).
//
// The telemetry/debug surface (/metrics, /debug/vars, /debug/pprof/) is
// mounted on the API listener by default — one port, no conflict. Pass
// -telemetry-addr to bind it separately; passing the API address there
// is recognized and collapses back to the shared listener instead of
// failing to bind.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qfarith/internal/backend"
	"qfarith/internal/server"
	"qfarith/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("qfarithd", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "API listen address")
	data := fs.String("data", "qfarithd-data", "directory holding one run directory per job")
	backendName := fs.String("backend", backend.DefaultName, "execution backend for all jobs")
	workers := fs.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 0, "trajectories per SoA batch (batching backends; 0 = auto)")
	jobs := fs.Int("jobs", 1, "jobs executing concurrently")
	maxQueue := fs.Int("max-queue", 64, "queued-job capacity; submissions beyond it get HTTP 429")
	maxRetries := fs.Int("max-retries", 2, "re-queues per job on transient failures (-1 disables)")
	drainTimeout := fs.Duration("drain-timeout", 60*time.Second, "grace period for the SIGTERM drain")
	telemetryAddr := fs.String("telemetry-addr", "",
		"separate debug/metrics listen address (empty or equal to -addr: share the API listener)")
	fs.Parse(args)

	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("qfarithd: ")

	cfg := server.Config{
		DataDir: *data, Backend: *backendName,
		Workers: *workers, BatchLanes: *batch,
		Jobs: *jobs, MaxQueue: *maxQueue, MaxRetries: *maxRetries,
	}
	shared := *telemetryAddr == "" || *telemetryAddr == *addr
	if shared {
		cfg.TelemetryMux = telemetry.NewMux(nil)
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Print(err)
		return 1
	}

	var debug *telemetry.Server
	if !shared {
		debug, err = telemetry.Serve(*telemetryAddr, nil)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer debug.Close()
		log.Printf("telemetry on http://%s/metrics", debug.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	// The parseable ready line scripts (and the daemon-e2e CI job) wait
	// for; everything else logs to stderr.
	fmt.Printf("qfarithd listening on %s (data %s, backend %s)\n", ln.Addr(), *data, *backendName)
	log.Printf("listening on %s", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		log.Printf("serve: %v", err)
		return 1
	case got := <-sig:
		log.Printf("received %s; draining (timeout %s)", got, *drainTimeout)
	}

	// Graceful drain: cancel queued jobs, interrupt running ones after
	// their checkpoints flush, then close the listener. Status/artifact
	// requests keep working until the very end so clients can watch the
	// drain conclude.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain: %v", err)
		hs.Close()
		return 1
	}
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
		hs.Close()
	}
	log.Printf("drained in %s; run directories are resumable", time.Since(start).Round(time.Millisecond))
	return 0
}
