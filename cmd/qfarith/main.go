// Command qfarith regenerates the paper's evaluation artifacts:
//
//	qfarith table1                  — Table I gate counts
//	qfarith fig3 [flags]            — Fig. 3 QFA success-rate sweeps
//	qfarith fig4 [flags]            — Fig. 4 QFM success-rate sweeps
//	qfarith fig3-signed [flags]     — QFS (signed subtraction) noise panels
//	qfarith fig4-signed [flags]     — signed QFM noise panels
//	qfarith claim-2q [flags]        — the conclusions' 1:2 vs 2:2 2q-rate claim
//	qfarith ablate-addcut [flags]   — approximate addition-step ablation (E6)
//	qfarith ablate-routing [flags]  — qubit-connectivity ablation (E7)
//	qfarith scaling [flags]         — register-width scaling (E10)
//	qfarith shor [flags]            — noisy gate-level order finding (E11)
//	qfarith report [files]          — summarize recorded panel CSVs (E5)
//	qfarith thermal [flags]         — composite gate+thermal+readout noise (E9)
//	qfarith qasm [flags]            — OpenQASM 2.0 export
//	qfarith demo                    — one noisy instance, counts histogram
//
// Sweep flags: -budget quick|standard|full (or -instances/-shots/-traj to
// override), -out DIR for CSV output, -seed N.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"qfarith/internal/arith"
	"qfarith/internal/backend"
	"qfarith/internal/compile"
	"qfarith/internal/experiment"
	"qfarith/internal/metrics"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
	"qfarith/internal/runstore"
	"qfarith/internal/sim"
	"qfarith/internal/transpile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "table1":
		runTable1()
	case "fig3":
		runFigure(args, experiment.PaperAddGeometry(), experiment.AddDepths, "fig3")
	case "fig4":
		runFigure(args, experiment.PaperMulGeometry(), experiment.MulDepths, "fig4")
	case "fig3-signed":
		runFigure(args, experiment.PaperSubGeometry(), experiment.AddDepths, "fig3-signed")
	case "fig4-signed":
		runFigure(args, experiment.PaperSignedMulGeometry(), experiment.MulDepths, "fig4-signed")
	case "claim-2q":
		runClaim2Q(args)
	case "ablate-addcut":
		runAblateAddCut(args)
	case "demo":
		runDemo()
	case "qasm":
		runQASM(args)
	case "thermal":
		runThermal(args)
	case "ablate-routing":
		runAblateRouting(args)
	case "report":
		runReport(args)
	case "scaling":
		runScaling(args)
	case "shor":
		runShor(args)
	case "merge-runs":
		runMergeRuns(args)
	default:
		usage()
		exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qfarith <table1|fig3|fig4|fig3-signed|fig4-signed|claim-2q|ablate-addcut|ablate-routing|scaling|shor|merge-runs|report|demo|qasm|thermal> [flags]")
}

// ---------------------------------------------------------------- table1

func runTable1() {
	fmt.Println("Table I — Arithmetic Circuit Gate Counts (paper counting convention)")
	fmt.Println()
	fmt.Println("QFA (n=8: 7-qubit addend, 8-qubit sum register)")
	fmt.Printf("%-8s %8s %8s %14s %14s\n", "depth", "1q", "2q", "native-1q", "native-2q")
	for _, d := range []int{1, 2, 3, 4, 7} {
		c := arith.NewQFA(7, 8, arith.Config{Depth: d, AddCut: arith.FullAdd})
		one, two := transpile.PaperCounts(c)
		r := transpile.Transpile(c)
		n1, n2 := r.CountByArity()
		label := fmt.Sprintf("%d", d)
		if d == 7 {
			label = "7 (full)"
		}
		fmt.Printf("%-8s %8d %8d %14d %14d\n", label, one, two, n1, n2)
	}
	fmt.Println()
	fmt.Println("QFM (n=4: 4x4 multiplicands, 8-qubit product register)")
	fmt.Printf("%-8s %8s %8s %14s %14s\n", "depth", "1q", "2q", "native-1q", "native-2q")
	for _, d := range []int{1, 2, qft.Full} {
		c := arith.NewQFM(4, 4, arith.Config{Depth: d, AddCut: arith.FullAdd})
		one, two := transpile.PaperCounts(c)
		r := transpile.Transpile(c)
		n1, n2 := r.CountByArity()
		label := fmt.Sprintf("%d", d)
		if d == qft.Full {
			label = "full"
		}
		fmt.Printf("%-8s %8d %8d %14d %14d\n", label, one, two, n1, n2)
	}
	fmt.Println()
	fmt.Println("paper reference — QFA 1q: 163/199/229/253/289, 2q: 98/122/142/158/182")
	fmt.Println("                  QFM 1q: 1032/1248/1464,      2q: 744/936/1128")
}

// ---------------------------------------------------------------- sweeps

type sweepFlags struct {
	budget    experiment.Budget
	outDir    string
	seed      uint64
	rates1q   []float64
	rates2q   []float64
	axes      []experiment.ErrorAxis
	orderSets [][2]int
	backend   string
	workers   int
	batch     int
	rundir    string
	resume    bool
	shard     experiment.Shard
	pipeline  compile.Config
	scorers   []string
	prof      profiler
	telem     telemetryFlags
}

// runner builds the shared execution runner the sweep submits to: the
// selected backend behind one bounded worker pool.
func (sf sweepFlags) runner() *backend.Runner {
	return newRunnerOrExit(sf.backend, sf.workers, sf.batch)
}

func newRunnerOrExit(backendName string, workers, batch int) *backend.Runner {
	b, err := backend.New(backendName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	if batch > 0 {
		bs, ok := b.(backend.BatchSizer)
		if !ok {
			fmt.Fprintf(os.Stderr, "-batch requires a batching backend (have %q; use -backend trajectory-batch)\n", backendName)
			exit(2)
		}
		bs.SetBatchLanes(batch)
	}
	return backend.NewRunner(b, workers)
}

// sweepContext returns a context cancelled by Ctrl-C / SIGTERM, so a
// long sweep stops mid-grid cleanly instead of being killed.
func sweepContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

// exitSweepErr reports a sweep error and leaves through exit(), so
// profiles flush and checkpoint logs close; interruption exits with the
// conventional 130 status.
func exitSweepErr(err error, run *runstore.Run) {
	if errors.Is(err, context.Canceled) {
		if run != nil {
			fmt.Fprintf(os.Stderr, "interrupted — completed points checkpointed in %s; rerun with -rundir %s -resume\n",
				run.Dir(), run.Dir())
		} else {
			fmt.Fprintln(os.Stderr, "interrupted — sweep cancelled mid-grid, partial results discarded (use -rundir for durable runs)")
		}
		exit(130)
	}
	fmt.Fprintln(os.Stderr, err)
	exit(1)
}

// spec assembles the sweep's hashed identity. The struct itself lives
// in internal/experiment (SweepSpec) because the qfarithd job API
// builds the very same value: equal specs mean equal config hashes,
// which is what lets the CLI resume a daemon-created run directory.
func (sf sweepFlags) spec(command string, geo experiment.Geometry, depths []int) experiment.SweepSpec {
	return experiment.SweepSpec{
		Command: command, Geometry: geo, Depths: depths,
		Axes: sf.axes, Orders: sf.orderSets,
		Rates1Q: sf.rates1q, Rates2Q: sf.rates2q,
		Instances: sf.budget.Instances, Shots: sf.budget.Shots,
		Traj: sf.budget.Trajectories,
		Seed: sf.seed, Backend: sf.backend,
		Pipeline: sf.pipeline.Hash(),
		Scorers:  sf.scorers,
	}
}

// openRun creates (or, with -resume, reopens and hash-verifies) the
// sweep's durable run directory and registers its checkpoint log with
// the exit path. Returns nil when -rundir is unset. keys is the full
// grid's checkpoint-key list (all shards record the same full list);
// it and the sweep spec are written as sidecars so merge-runs can
// detect gaps and regenerate final CSVs without re-deriving the grid.
func (sf sweepFlags) openRun(command string, spec any, keys []string) *runstore.Run {
	if sf.rundir == "" {
		if sf.resume {
			fmt.Fprintln(os.Stderr, "-resume requires -rundir")
			exit(2)
		}
		if sf.shard.Enabled() {
			fmt.Fprintln(os.Stderr, "-shard requires -rundir (shard outputs are merged from run directories)")
			exit(2)
		}
		return nil
	}
	hash, err := runstore.HashConfig(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	var run *runstore.Run
	if sf.resume {
		run, err = runstore.Resume(sf.rundir, hash)
		if err == nil && run.Manifest().Shard != sf.shard.String() {
			fmt.Fprintf(os.Stderr, "run %s was started as shard %q, current -shard is %q (refusing to change the partition mid-run)\n",
				run.Dir(), run.Manifest().Shard, sf.shard.String())
			exit(1)
		}
	} else {
		run, err = runstore.Create(sf.rundir, runstore.Manifest{
			Command: command, ConfigHash: hash, Seed: sf.seed,
			Backend: sf.backend, Pipeline: sf.pipeline.Hash(),
			GitDescribe: runstore.GitDescribe("."),
			StartTime:   time.Now().UTC(),
			Shard:       sf.shard.String(),
		})
		if err == nil {
			if serr := runstore.WriteSpec(run.Dir(), spec); serr != nil {
				fmt.Fprintln(os.Stderr, serr)
				exit(1)
			}
			if serr := runstore.WriteExpectedKeys(run.Dir(), keys); serr != nil {
				fmt.Fprintln(os.Stderr, serr)
				exit(1)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	onExit(func() { run.Close() })
	if sf.shard.Enabled() {
		telemetryShard(sf.shard)
	}
	switch {
	case sf.resume && sf.shard.Enabled():
		fmt.Printf("resuming shard %s run %s: %d checkpointed points restored\n", sf.shard, run.Dir(), run.Restored())
	case sf.resume:
		fmt.Printf("resuming run %s: %d checkpointed points restored\n", run.Dir(), run.Restored())
	case sf.shard.Enabled():
		fmt.Printf("run dir %s (config %s, shard %s of the grid)\n", run.Dir(), hash, sf.shard)
	default:
		fmt.Printf("run dir %s (config %s)\n", run.Dir(), hash)
	}
	return run
}

func parseSweepFlags(args []string, name string) sweepFlags {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	budgetName := fs.String("budget", "standard", "quick|standard|full")
	instances := fs.Int("instances", 0, "override instance count")
	shots := fs.Int("shots", 0, "override shots per instance")
	traj := fs.Int("traj", 0, "override conditional trajectories per instance")
	out := fs.String("out", "results", "output directory for CSV files")
	seed := fs.Uint64("seed", 20260704, "base RNG seed")
	axis := fs.String("axis", "both", "1q|2q|both")
	orders := fs.String("orders", "1:1,1:2,2:2", "comma-separated operand orders")
	rates := fs.String("rates", "", "override error-rate grid, comma-separated percentages (e.g. 1,2,3,5)")
	backendName := fs.String("backend", backend.DefaultName,
		"execution backend: "+strings.Join(backend.Names(), "|"))
	workers := fs.Int("workers", 0, "worker-pool size shared across points and instances (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 0, "trajectories simulated per SoA batch (trajectory-batch backend; 0 = auto-size to cache)")
	rundir := fs.String("rundir", "", "durable run directory: manifest + per-point checkpoint log; artifacts land here")
	resume := fs.Bool("resume", false, "resume the run in -rundir, skipping checkpointed points")
	shardStr := fs.String("shard", "", "run shard i/N of the grid (e.g. 0/3): only points whose key hashes to i mod N; requires -rundir, merge with merge-runs")
	sampler := fs.String("sampler", experiment.SamplerMode(),
		"shot-sampling stage: fast|legacy (bit-identical; legacy kept for equivalence checks)")
	scorers := fs.String("scorers", "margin",
		"success metrics, comma-separated (registered: "+strings.Join(metrics.ScorerNames(), ",")+"); margin is always on, extras append CSV columns")
	var cf compileFlags
	cf.register(fs)
	var prof profiler
	prof.register(fs)
	var telem telemetryFlags
	telem.register(fs)
	fs.Parse(args)
	if *resume && *rundir == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -rundir")
		exit(2)
	}
	shard, err := experiment.ParseShard(*shardStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	if shard.Enabled() && *rundir == "" {
		fmt.Fprintln(os.Stderr, "-shard requires -rundir (shard outputs are merged from run directories)")
		exit(2)
	}
	if err := experiment.SetSamplerMode(*sampler); err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	extraScorers := parseScorers(*scorers)
	pcfg := cf.config()

	var b experiment.Budget
	switch *budgetName {
	case "quick":
		b = experiment.Quick
	case "standard":
		b = experiment.Standard
	case "full":
		b = experiment.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown budget %q\n", *budgetName)
		exit(2)
	}
	if *instances > 0 {
		b.Instances = *instances
	}
	if *shots > 0 {
		b.Shots = *shots
	}
	if *traj > 0 {
		b.Trajectories = *traj
	}

	b.Workers = *workers
	sf := sweepFlags{budget: b, outDir: *out, seed: *seed,
		rates1q: experiment.PaperRates1Q, rates2q: experiment.PaperRates2Q,
		backend: *backendName, workers: *workers, batch: *batch,
		rundir: *rundir, resume: *resume, shard: shard,
		pipeline: pcfg, scorers: extraScorers, prof: prof, telem: telem}
	if *rates != "" {
		var grid []float64
		for _, tok := range strings.Split(*rates, ",") {
			var pct float64
			if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%g", &pct); err != nil {
				fmt.Fprintf(os.Stderr, "bad rate %q\n", tok)
				exit(2)
			}
			grid = append(grid, pct/100)
		}
		sf.rates1q, sf.rates2q = grid, grid
	}
	switch *axis {
	case "1q":
		sf.axes = []experiment.ErrorAxis{experiment.Axis1Q}
	case "2q":
		sf.axes = []experiment.ErrorAxis{experiment.Axis2Q}
	case "both":
		sf.axes = []experiment.ErrorAxis{experiment.Axis1Q, experiment.Axis2Q}
	default:
		fmt.Fprintf(os.Stderr, "unknown axis %q\n", *axis)
		exit(2)
	}
	for _, tok := range strings.Split(*orders, ",") {
		var ox, oy int
		if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%d:%d", &ox, &oy); err != nil {
			fmt.Fprintf(os.Stderr, "bad orders token %q\n", tok)
			exit(2)
		}
		sf.orderSets = append(sf.orderSets, [2]int{ox, oy})
	}
	return sf
}

// parseScorers validates the -scorers flag value: a comma-separated
// list of registered scorer names. The paper's margin scoring is always
// on (its six columns are the frozen CSV schema), so "margin" is
// stripped; what remains — deduplicated, order preserved — is the extra
// scorer list threaded into every PointConfig. An empty result keeps
// the sweep on the historical margin-only path, byte for byte.
func parseScorers(s string) []string {
	var extras []string
	seen := map[string]bool{}
	for _, tok := range strings.Split(s, ",") {
		name := strings.TrimSpace(tok)
		if name == "" || name == "margin" || seen[name] {
			continue
		}
		if _, ok := metrics.LookupScorer(name); !ok {
			fmt.Fprintf(os.Stderr, "unknown scorer %q (registered: %s)\n",
				name, strings.Join(metrics.ScorerNames(), ","))
			exit(2)
		}
		seen[name] = true
		extras = append(extras, name)
	}
	return extras
}

// compileFlags registers the compilation-pipeline flags shared by every
// circuit-running subcommand (sweeps, scaling, ablate-routing).
type compileFlags struct {
	passes   *string
	coupling *string
	debug    *bool
}

func (cf *compileFlags) register(fs *flag.FlagSet) {
	cf.passes = fs.String("passes", compile.DefaultString(),
		"compilation pass list, comma-separated (known: "+strings.Join(compile.KnownPasses(), ",")+")")
	cf.coupling = fs.String("coupling", "",
		"coupling map for the route pass: linear:N, grid:RxC, heavyhex27")
	cf.debug = fs.Bool("compile-debug", false,
		"verify statevector equivalence after every compilation pass (small registers only)")
}

// config validates the flags into a compile.Config, exiting on an
// invalid pipeline so errors surface before any sweeping starts.
func (cf *compileFlags) config() compile.Config {
	cfg := compile.Config{
		Passes:   compile.ParsePasses(*cf.passes),
		Coupling: *cf.coupling,
		Debug:    *cf.debug,
	}
	if _, err := compile.New(cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	return cfg
}

// printPassStats renders the per-pass compilation summary, summed over
// every distinct circuit the sweep compiled.
func printPassStats(c *backend.TranspileCache) {
	stats := c.PassStats()
	if len(stats) == 0 {
		return
	}
	fmt.Println("compilation passes (summed over compiled circuits):")
	fmt.Printf("  %-18s %8s %8s %8s %8s %8s %8s %8s %10s\n",
		"pass", "ops", "ops'", "1q", "1q'", "2q", "2q'", "depthΔ", "wall")
	for _, st := range stats {
		extra := ""
		if st.Segments > 0 {
			extra = fmt.Sprintf("  segments=%d", st.Segments)
		}
		if st.Swaps > 0 {
			extra += fmt.Sprintf("  swaps=%d", st.Swaps)
		}
		fmt.Printf("  %-18s %8d %8d %8d %8d %8d %8d %8d %10s%s\n",
			st.Pass, st.OpsBefore, st.OpsAfter, st.OneQBefore, st.OneQAfter,
			st.TwoQBefore, st.TwoQAfter, st.DepthAfter-st.DepthBefore,
			st.Wall.Round(time.Microsecond), extra)
	}
}

func runFigure(args []string, geo experiment.Geometry, depths []int, name string) {
	sf := parseSweepFlags(args, name)
	defer sf.prof.start()()
	// The panel set — and with it the full grid's checkpoint keys — is
	// fixed before anything runs, so the key list can be recorded for
	// merge-time gap detection and shard ownership filtering. The
	// enumeration is shared with merge-runs and the qfarithd executor
	// (experiment.SweepSpec.Panels), so every consumer agrees on panel
	// labels, grid keys, and seeds.
	spec := sf.spec(name, geo, depths)
	panels, allKeys := spec.Panels(sf.pipeline, sf.budget.Workers)
	run := sf.openRun(name, spec, allKeys)
	artifactDir := sf.outDir
	if run != nil {
		artifactDir = run.Dir()
	}
	if err := os.MkdirAll(artifactDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	snapDir := ""
	if run != nil {
		snapDir = run.Dir()
	}
	defer sf.telem.start(snapDir)()
	ctx, stop := sweepContext()
	defer stop()
	runner := sf.runner()
	fmt.Printf("backend=%s workers=%d\n", runner.Backend().Name(), runner.Workers())
	start := time.Now()
	tracker := newSweepTracker(len(sf.shard.OwnedKeys(allKeys)))
	defer tracker.stop()
	for _, pj := range panels {
		label, pc := pj.Label, pj.Config
		owned := len(sf.shard.OwnedKeys(pc.Keys(label)))
		if sf.shard.Enabled() {
			fmt.Printf("== panel %s (%d rates x %d depths; shard %s owns %d) ==\n",
				label, len(pc.Rates), len(pc.Depths), sf.shard, owned)
		} else {
			fmt.Printf("== panel %s (%d rates x %d depths) ==\n", label, len(pc.Rates), len(pc.Depths))
		}
		progress := func(p experiment.Progress) {
			tracker.observe(p)
			if p.FromCheckpoint {
				// openRun already announced the restored total; a line
				// per restored cell would just scroll the terminal.
				return
			}
			fmt.Printf("  [%s %3d/%d] rate=%.2f%% d=%-4s -> %.1f%% success (elapsed %s)\n",
				label, p.Done, p.Total, pointRate(p.Point)*100,
				experiment.DepthLabel(p.Point.Config.Depth, 8),
				p.Point.Stats.SuccessRate, time.Since(start).Round(time.Second))
		}
		var res experiment.PanelResult
		var err error
		if run != nil {
			res, err = experiment.RunPanelShardCheckpointCtx(ctx, runner, pc, label, sf.shard, run, progress)
		} else {
			res, err = experiment.RunPanelCtx(ctx, runner, pc, progress)
		}
		if err != nil {
			exitSweepErr(err, run)
		}
		if sf.shard.Enabled() {
			// A shard's grid is partial by construction: writing a CSV
			// with zero rows for unowned cells would only mislead.
			// merge-runs regenerates the full CSVs from the union.
			continue
		}
		path := filepath.Join(artifactDir, label+".csv")
		if err := runstore.WriteArtifact(path, []byte(res.CSV())); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		fmt.Println(res.Table())
		fmt.Println(res.Plot())
	}
	if sf.shard.Enabled() {
		fmt.Printf("shard %s complete: %d points checkpointed in %s; merge with `qfarith merge-runs -out MERGED %s ...`\n",
			sf.shard, len(sf.shard.OwnedKeys(allKeys)), run.Dir(), run.Dir())
	}
	hits, misses := runner.Cache().Stats()
	fmt.Printf("transpile cache: %d built, %d reused\n", misses, hits)
	printPassStats(runner.Cache())
	if tb, ok := runner.Backend().(backend.EngineCacheStatser); ok {
		eh, em, ev := tb.EngineCacheStats()
		fmt.Printf("engine cache: %d built, %d reused, %d evicted\n", em, eh, ev)
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Second))
}

func pointRate(r experiment.PointResult) float64 {
	if r.Config.Model.TwoQubit > 0 {
		return r.Config.Model.TwoQubit
	}
	return r.Config.Model.OneQubit
}

// ---------------------------------------------------------------- claim-2q

// runClaim2Q reproduces the conclusions' quantitative claim: at the
// optimal depth, moving from 1:2 to 2:2 addition costs >50% accuracy at
// the current 2q error rate (1.0%) but only a few percent at the
// improved rate (0.7%).
func runClaim2Q(args []string) {
	sf := parseSweepFlags(args, "claim-2q")
	defer sf.prof.start()()
	if sf.shard.Enabled() {
		fmt.Fprintln(os.Stderr, "claim-2q does not support -shard (its summary needs the full grid); shard fig3/fig4/scaling/ablate-routing instead")
		exit(2)
	}
	geo := experiment.PaperAddGeometry()
	rates := []float64{0.007, 0.010}
	sf.rates1q, sf.rates2q = rates, rates
	sf.orderSets = [][2]int{{1, 2}, {2, 2}}
	var allKeys []string
	for _, orders := range sf.orderSets {
		pc := experiment.PanelConfig{Rates: rates, Depths: experiment.AddDepths}
		allKeys = append(allKeys, pc.Keys(fmt.Sprintf("claim2q_%d%d", orders[0], orders[1]))...)
	}
	run := sf.openRun("claim-2q", sf.spec("claim-2q", geo, experiment.AddDepths), allKeys)
	snapDir := ""
	if run != nil {
		snapDir = run.Dir()
	}
	defer sf.telem.start(snapDir)()
	ctx, stop := sweepContext()
	defer stop()
	runner := sf.runner()
	fmt.Println("E4 — superposition-order penalty vs 2q error rate (QFA n=8)")
	for _, orders := range sf.orderSets {
		pc := experiment.PanelConfig{
			Geometry: geo, Axis: experiment.Axis2Q,
			OrderX: orders[0], OrderY: orders[1],
			Rates: rates, Depths: experiment.AddDepths,
			Budget: sf.budget, Seed: sf.seed,
			Pipeline: sf.pipeline,
			Scorers:  sf.scorers,
		}
		var res experiment.PanelResult
		var err error
		if run != nil {
			label := fmt.Sprintf("claim2q_%d%d", orders[0], orders[1])
			res, err = experiment.RunPanelCheckpointCtx(ctx, runner, pc, label, run, nil)
		} else {
			res, err = experiment.RunPanelCtx(ctx, runner, pc, nil)
		}
		if err != nil {
			exitSweepErr(err, run)
		}
		for i, rate := range rates {
			best := 0.0
			bestD := 0
			for j, d := range experiment.AddDepths {
				if s := res.Points[i][j].Stats.SuccessRate; s > best {
					best, bestD = s, d
				}
			}
			fmt.Printf("  %d:%d at P2q=%.1f%%: best %.1f%% at depth %s\n",
				orders[0], orders[1], rate*100, best,
				experiment.DepthLabel(bestD, 8))
		}
	}
}

// ---------------------------------------------------------------- ablation

// runAblateAddCut sweeps the addition-step rotation cutoff the paper
// defers to future work (E6): full QFT, varying AddCut, at the
// current-hardware noise point.
func runAblateAddCut(args []string) {
	sf := parseSweepFlags(args, "ablate-addcut")
	defer sf.prof.start()()
	if sf.shard.Enabled() {
		fmt.Fprintln(os.Stderr, "ablate-addcut does not support -shard")
		exit(2)
	}
	defer sf.telem.start("")()
	ctx, stop := sweepContext()
	defer stop()
	runner := sf.runner()
	geo := experiment.PaperAddGeometry()
	fmt.Println("E6 — approximate addition-step ablation (QFA n=8, full AQFT, 2:2)")
	fmt.Printf("%-10s %12s %12s %12s\n", "addCut", "2q gates", "success@0%", "success@1%2q")
	for _, cut := range []int{1, 2, 3, 4, 6, 8} {
		acfg := arith.Config{Depth: qft.Full, AddCut: cut}
		var succ [2]float64
		var twoQ int
		for i, rate := range []float64{0, 0.01} {
			model := noise.Noiseless
			if rate > 0 {
				model = noise.PaperModel(0, rate)
			}
			pc := experiment.PointConfig{
				Geometry: geo, Depth: qft.Full, Model: model,
				OrderX: 2, OrderY: 2,
				Instances: sf.budget.Instances, Shots: sf.budget.Shots,
				Trajectories: sf.budget.Trajectories,
				RowSeed:      splitMix(sf.seed, 0x22), PointSeed: splitMix(sf.seed, uint64(cut)<<8|uint64(i)),
				Pipeline: sf.pipeline,
			}
			r, err := experiment.RunPointCfgCtx(ctx, runner, pc, acfg)
			if err != nil {
				exitSweepErr(err, nil)
			}
			succ[i] = r.Stats.SuccessRate
			twoQ = r.Paper2q
		}
		label := fmt.Sprintf("%d", cut)
		if cut >= 8 {
			label = "full"
		}
		fmt.Printf("%-10s %12d %11.1f%% %11.1f%%\n", label, twoQ, succ[0], succ[1])
	}
}

func splitMix(base, idx uint64) uint64 {
	z := base + 0x9e3779b97f4a7c15*(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ---------------------------------------------------------------- demo

func runDemo() {
	fmt.Println("demo — one 2:2 QFA instance at current-hardware noise (λ1=0.2%, λ2=1%)")
	geo := experiment.PaperAddGeometry()
	res := geo.BuildCircuit(3)
	engine := noise.NewEngine(res, noise.PaperModel(0.002, 0.01))
	st := sim.NewState(geo.TotalQubits)
	initial := make([]complex128, st.Dim())
	xs, ys := []int{19, 100}, []int{7, 200}
	amp := complex(0.5, 0)
	for _, x := range xs {
		for _, y := range ys {
			initial[x|y<<7] = amp
		}
	}
	dist := make([]float64, 256)
	rng := sim.NewSampler(12345, 678)
	engine.MixtureInto(dist, st, initial, noise.MixtureOpts{Trajectories: 64, Measure: geo.OutReg}, rng.Rand())
	counts := rng.Counts(dist, 2048)
	correct := metrics.CorrectSums(xs, ys, 8)
	fmt.Printf("addends x∈%v, y∈%v; correct sums: %v\n", xs, ys, keys(correct))
	fmt.Println("top outputs:")
	for _, v := range metrics.TopOutcomes(counts, 8) {
		tag := " "
		if correct[v] {
			tag = "*"
		}
		fmt.Printf("  %s %3d: %4d counts  %s\n", tag, v, counts[v], strings.Repeat("#", counts[v]/16))
	}
	score := metrics.Score(counts, correct)
	fmt.Printf("instance success: %v (margin %d counts)\n", score.Success, score.Margin)
}

func keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
