package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"qfarith/internal/compile"
	"qfarith/internal/experiment"
	"qfarith/internal/runstore"
)

// runMergeRuns implements the merge-runs subcommand: union the
// checkpoint logs of shard run directories into one run directory,
// verify they belong to the same sweep (config hash), report benign
// overlaps and grid gaps, and — when the shards carry a fig3/fig4
// sweep spec — regenerate the final CSVs, byte-identical to what an
// unsharded run of the same configuration writes.
//
//	qfarith merge-runs -out merged runs/shard0 runs/shard1 runs/shard2
func runMergeRuns(args []string) {
	fs := flag.NewFlagSet("merge-runs", flag.ExitOnError)
	out := fs.String("out", "", "destination run directory for the merged run (must not already hold a run)")
	fs.Parse(args)
	srcs := fs.Args()
	if *out == "" || len(srcs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: qfarith merge-runs -out DIR SHARD_DIR [SHARD_DIR...]")
		exit(2)
	}

	report, err := runstore.MergeRuns(*out, srcs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	fmt.Printf("merged %d shard(s) into %s: %d points", len(report.Shards), *out, report.Points)
	if report.Overlaps > 0 {
		fmt.Printf(", %d overlapping key(s) with identical payloads", report.Overlaps)
	}
	fmt.Println()
	if len(report.Gaps) > 0 {
		fmt.Printf("WARNING: %d grid point(s) missing from the union:\n", len(report.Gaps))
		for i, key := range report.Gaps {
			if i == 10 {
				fmt.Printf("  ... and %d more\n", len(report.Gaps)-10)
				break
			}
			fmt.Printf("  %s\n", key)
		}
		fmt.Printf("run the missing shard(s), or resume the merged run to compute the gaps:\n  qfarith <command> <same flags> -rundir %s -resume\n", *out)
		exit(1)
	}

	// Final-CSV regeneration needs the recorded sweep spec; run
	// directories created before spec sidecars existed merge fine but
	// re-render through a resume instead.
	var spec experiment.SweepSpec
	ok, err := runstore.ReadSpec(*out, &spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	if !ok {
		fmt.Printf("no sweep spec recorded; re-render outputs by resuming:\n  qfarith <command> <same flags> -rundir %s -resume\n", *out)
		return
	}
	switch spec.Command {
	case "fig3", "fig4", "fig3-signed", "fig4-signed":
		// Figure-style sweeps record enough spec to regenerate their
		// panel CSVs directly from the merged checkpoints.
	default:
		fmt.Printf("merged %s run; re-render its output by resuming:\n  qfarith %s <same flags> -rundir %s -resume\n", spec.Command, spec.Command, *out)
		return
	}
	run, err := runstore.Resume(*out, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	onExit(func() { run.Close() })
	// CSV regeneration never runs panels, so the pipeline config and
	// worker bound are irrelevant — zero values select the shared
	// enumeration's defaults.
	panels, _ := spec.Panels(compile.Config{}, 0)
	for _, pj := range panels {
		res, err := experiment.PanelFromCheckpoints(pj.Config, pj.Label, run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		path := filepath.Join(*out, pj.Label+".csv")
		if err := runstore.WriteArtifact(path, []byte(res.CSV())); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
