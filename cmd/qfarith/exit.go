package main

import (
	"os"
	"sync"
)

// Every command path leaves the process through exit(), never os.Exit
// directly: cleanups registered with onExit (CPU/heap profile flushing,
// checkpoint-log closing) run first, LIFO, so a SIGINT mid-sweep still
// produces complete profiles and a durable checkpoint log instead of
// truncated files.
var atExit struct {
	mu  sync.Mutex
	fns []func()
}

// onExit registers fn to run before the process exits through exit().
// Cleanups must be idempotent when they also run on the normal defer
// path (see profiler.start).
func onExit(fn func()) {
	atExit.mu.Lock()
	atExit.fns = append(atExit.fns, fn)
	atExit.mu.Unlock()
}

// exit runs the registered cleanups in reverse registration order and
// terminates with code.
func exit(code int) {
	atExit.mu.Lock()
	fns := atExit.fns
	atExit.fns = nil
	atExit.mu.Unlock()
	for i := len(fns) - 1; i >= 0; i-- {
		fns[i]()
	}
	os.Exit(code)
}
