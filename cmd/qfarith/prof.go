package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// profiler adds -cpuprofile/-memprofile to a command's flag set and
// manages the profile lifetimes, so any sweep or study command can be
// profiled directly (go tool pprof <file>) without rebuilding it as a
// benchmark harness.
type profiler struct {
	cpu *string
	mem *string
}

// register installs the profiling flags on fs.
func (p *profiler) register(fs *flag.FlagSet) {
	p.cpu = fs.String("cpuprofile", "", "write a CPU profile to this file")
	p.mem = fs.String("memprofile", "", "write an allocation profile to this file on exit")
}

// start begins CPU profiling if requested and returns the stop function
// to defer: it flushes the CPU profile and writes the heap profile.
// The stop function is idempotent and is also registered with onExit,
// so an early exit() — a SIGINT-cancelled sweep, a sweep error — still
// flushes complete profiles instead of leaving truncated files.
// Exits with status 1 if a profile file cannot be created, since a
// requested-but-lost profile would silently waste the whole run.
func (p *profiler) start() func() {
	var cpuFile *os.File
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		cpuFile = f
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
				fmt.Printf("cpu profile written to %s\n", *p.cpu)
			}
			if *p.mem != "" {
				f, err := os.Create(*p.mem)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return
				}
				runtime.GC() // settle the heap so the profile shows live data
				if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
				f.Close()
				fmt.Printf("alloc profile written to %s\n", *p.mem)
			}
		})
	}
	onExit(stop)
	return stop
}
