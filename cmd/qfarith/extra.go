package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"

	"qfarith/internal/arith"
	"qfarith/internal/backend"
	"qfarith/internal/circuit"
	"qfarith/internal/compile"
	"qfarith/internal/experiment"
	"qfarith/internal/layout"
	"qfarith/internal/noise"
	"qfarith/internal/qasm"
	"qfarith/internal/qft"
	"qfarith/internal/sim"
	"qfarith/internal/transpile"
)

// runQASM dumps an arithmetic circuit as OpenQASM 2.0 for inspection or
// execution on other stacks (e.g. the Qiskit pipeline the paper used).
func runQASM(args []string) {
	fs := flag.NewFlagSet("qasm", flag.ExitOnError)
	op := fs.String("op", "qfa", "qfa|qfm|qft")
	depth := fs.Int("depth", 0, "AQFT depth (0 = full)")
	xbits := fs.Int("x", 7, "addend/multiplier width")
	ybits := fs.Int("y", 8, "sum-register/multiplicand width")
	native := fs.Bool("native", false, "transpile to the IBM basis {id,x,rz,sx,cx} first")
	// -native exports always ran the peephole cleanup, so its passes are
	// the default here (unlike sweeps, where optimization is opt-in).
	passes := fs.String("passes", strings.Join([]string{
		compile.PassDecompose, compile.PassCancelInverses,
		compile.PassFoldAngles, compile.PassPruneZeroAngle,
	}, ","), "compilation pass list for -native, comma-separated")
	compileDebug := fs.Bool("compile-debug", false, "verify statevector equivalence after every compilation pass")
	fs.Parse(args)
	d := *depth
	if d <= 0 {
		d = qft.Full
	}
	cfg := arith.Config{Depth: d, AddCut: arith.FullAdd}
	var c *circuitT
	switch *op {
	case "qfa":
		c = arith.NewQFA(*xbits, *ybits, cfg)
	case "qfm":
		c = arith.NewQFM(*xbits, *ybits, cfg)
	case "qft":
		c = qft.New(*ybits, d)
	default:
		fmt.Fprintf(os.Stderr, "unknown op %q\n", *op)
		exit(2)
	}
	if *native {
		c = compileForExport(c, compile.Config{
			Passes: compile.ParsePasses(*passes), Debug: *compileDebug,
		})
	}
	fmt.Print(qasm.Export(c))
}

// runThermal demonstrates the composite-noise engine (paper future
// work): 1:1 QFA under gate + thermal + readout noise.
func runThermal(args []string) {
	fs := flag.NewFlagSet("thermal", flag.ExitOnError)
	t1 := fs.Float64("t1", 100e-6, "T1 relaxation time (s)")
	t2 := fs.Float64("t2", 80e-6, "T2 dephasing time (s)")
	readout := fs.Float64("readout", 0.02, "per-bit readout flip probability")
	traj := fs.Int("traj", 120, "trajectories")
	var prof profiler
	prof.register(fs)
	var telem telemetryFlags
	telem.register(fs)
	fs.Parse(args)
	defer prof.start()()
	defer telem.start("")()

	geo := experiment.PaperAddGeometry()
	res := geo.BuildCircuit(3)
	x, y := 77, 30
	want := (x + y) & 255
	initial := make([]complex128, 1<<uint(geo.TotalQubits))
	initial[x|y<<7] = 1
	thermal := noise.ThermalParams{T1: *t1, T2: *t2, Gate1qTime: 35e-9, Gate2qTime: 300e-9}
	fe := noise.NewFullEngine(res, noise.PaperModel(0.002, 0.01), thermal, *readout)
	st := sim.NewState(geo.TotalQubits)
	rng := rand.New(rand.NewPCG(5, 6))
	dist := fe.EstimateDist(st, initial, geo.OutReg, *traj, rng)
	mit, err := noise.MitigateReadout(dist, *readout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	fmt.Printf("QFA(n=8) %d+%d under gate+thermal+readout noise (T1=%.0fµs T2=%.0fµs ro=%.1f%%)\n",
		x, y, *t1*1e6, *t2*1e6, *readout*100)
	fmt.Printf("  P(correct)            = %.3f\n", dist[want])
	fmt.Printf("  after readout mitig.  = %.3f\n", mit[want])
	fmt.Printf("  (gate errors alone leave ≈ w0 = %.3f of clean shots)\n",
		noiseW0(geo, 3))
}

func noiseW0(geo experiment.Geometry, depth int) float64 {
	res := geo.BuildCircuit(depth)
	return noise.NewEngine(res, noise.PaperModel(0.002, 0.01)).NoErrorProb()
}

// runAblateRouting is experiment E7: how much success rate does the
// paper's complete-connectivity idealization hide? Compares the QFA at
// fixed noise on the ideal all-to-all layout against the same circuit
// routed onto realistic topologies.
func runAblateRouting(args []string) {
	fs := flag.NewFlagSet("ablate-routing", flag.ExitOnError)
	instances := fs.Int("instances", 30, "instances per point")
	traj := fs.Int("traj", 24, "trajectories per instance")
	p2 := fs.Float64("p2", 0.005, "2q depolarizing rate")
	backendName := fs.String("backend", backend.DefaultName,
		"execution backend: "+strings.Join(backend.Names(), "|"))
	workers := fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 0, "trajectories per SoA batch (trajectory-batch backend; 0 = auto)")
	rundir := fs.String("rundir", "", "durable run directory (per-topology checkpoints)")
	resume := fs.Bool("resume", false, "resume the run in -rundir, skipping checkpointed topologies")
	shardStr := fs.String("shard", "", "run shard i/N of the topologies (requires -rundir, merge with merge-runs)")
	scorerList := fs.String("scorers", "margin", "success metrics, comma-separated; margin is always on")
	var cf compileFlags
	cf.register(fs)
	var prof profiler
	prof.register(fs)
	var telem telemetryFlags
	telem.register(fs)
	fs.Parse(args)
	defer prof.start()()
	shard, err := experiment.ParseShard(*shardStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	ctx, stop := sweepContext()
	defer stop()
	runner := newRunnerOrExit(*backendName, *workers, *batch)

	geo := experiment.PaperAddGeometry()
	cfg := experiment.PointConfig{
		Geometry: geo, Depth: 3,
		Model:  noise.PaperModel(0.002, *p2),
		OrderX: 1, OrderY: 2,
		Instances: *instances, Shots: 2048, Trajectories: *traj,
		RowSeed: 1001, PointSeed: 1002,
		Pipeline: cf.config(),
		Scorers:  parseScorers(*scorerList),
	}
	topos := []struct {
		name string
		cm   *layout.CouplingMap
	}{
		{"heavy-hex (Falcon 27)", layout.HeavyHexFalcon27()},
		{"grid 3x5", layout.Grid(3, 5)},
		{"linear chain", layout.Linear(15)},
	}
	keys := []string{"all-to-all"}
	for _, tp := range topos {
		keys = append(keys, tp.name)
	}
	// Routed points are the slowest single points in the suite, so the
	// topology loop checkpoints per topology when -rundir is given.
	sfr := sweepFlags{rundir: *rundir, resume: *resume, backend: *backendName,
		shard: shard, pipeline: cfg.Pipeline}
	run := sfr.openRun("ablate-routing", cfg, keys)
	snapDir := ""
	if run != nil {
		snapDir = run.Dir()
	}
	defer telem.start(snapDir)()
	var ck experiment.CheckpointStore
	if run != nil {
		ck = run
	}
	fmt.Printf("E7 — qubit-connectivity ablation (QFA n=8, d=3, 1:2, λ1=0.2%%, λ2=%.2f%%)\n", *p2*100)
	fmt.Printf("%-22s %10s %10s %12s %12s\n", "topology", "CX", "swaps", "w0", "success")

	var base experiment.PointResult
	haveBase := false
	if shard.Owns("all-to-all") {
		base, err = experiment.RunPointCkptCtx(ctx, runner, cfg, "all-to-all", ck)
		if err != nil {
			exitSweepErr(err, run)
		}
		haveBase = true
		fmt.Printf("%-22s %10d %10s %12.4f %11.1f%%\n", "all-to-all (paper)", base.Native2q, "-", base.NoErrorProb, base.Stats.SuccessRate)
	}
	for _, tp := range topos {
		if !shard.Owns(tp.name) {
			continue
		}
		r, err := experiment.RunRoutedPointCkptCtx(ctx, runner, cfg, tp.cm, tp.name, ck)
		if err != nil {
			exitSweepErr(err, run)
		}
		// Swap counting needs the unrouted baseline, which may belong to
		// another shard; the merged run reports it after a resume.
		swaps := "-"
		if haveBase {
			swaps = fmt.Sprintf("%d", (r.Native2q-base.Native2q)/3)
		}
		fmt.Printf("%-22s %10d %10s %12.4f %11.1f%%\n", tp.name, r.Native2q, swaps, r.NoErrorProb, r.Stats.SuccessRate)
	}
	if shard.Enabled() {
		fmt.Printf("shard %s complete: merge with `qfarith merge-runs -out MERGED %s ...`, then resume the merged run for the full table\n",
			shard, run.Dir())
	}
}

// runScaling is experiment E10, the paper's "extending the study to
// larger n" future-work item: sweep the sum-register width n and track
// how the optimal AQFT depth and the success rate move, at fixed 2q
// error rates (1:2 addition, (n-1)-qubit addend).
func runScaling(args []string) {
	fs := flag.NewFlagSet("scaling", flag.ExitOnError)
	instances := fs.Int("instances", 12, "instances per point")
	traj := fs.Int("traj", 16, "trajectories per instance")
	shots := fs.Int("shots", 2048, "shots per instance")
	widths := fs.String("n", "4,6,8,10", "comma-separated sum-register widths")
	rates := fs.String("rates", "1,2,3", "comma-separated 2q error percentages")
	backendName := fs.String("backend", backend.DefaultName,
		"execution backend: "+strings.Join(backend.Names(), "|")+" (density caps n at 5)")
	workers := fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 0, "trajectories per SoA batch (trajectory-batch backend; 0 = auto)")
	rundir := fs.String("rundir", "", "durable run directory (per-point checkpoints)")
	resume := fs.Bool("resume", false, "resume the run in -rundir, skipping checkpointed points")
	shardStr := fs.String("shard", "", "run shard i/N of the grid (requires -rundir, merge with merge-runs)")
	scorerList := fs.String("scorers", "margin", "success metrics, comma-separated; margin is always on")
	var cf compileFlags
	cf.register(fs)
	var prof profiler
	prof.register(fs)
	var telem telemetryFlags
	telem.register(fs)
	fs.Parse(args)
	defer prof.start()()
	shard, err := experiment.ParseShard(*shardStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	pcfg := cf.config()
	extraScorers := parseScorers(*scorerList)
	ctx, stop := sweepContext()
	defer stop()
	runner := newRunnerOrExit(*backendName, *workers, *batch)

	var ns []int
	for _, tok := range strings.Split(*widths, ",") {
		var n int
		fmt.Sscanf(strings.TrimSpace(tok), "%d", &n)
		ns = append(ns, n)
	}
	var p2s []float64
	for _, tok := range strings.Split(*rates, ",") {
		var p float64
		fmt.Sscanf(strings.TrimSpace(tok), "%g", &p)
		p2s = append(p2s, p/100)
	}
	scalingDepths := func(n int) []int {
		depths := []int{1, 2, 3}
		if n > 4 {
			depths = append(depths, 4)
		}
		return append(depths, qft.Full)
	}
	scalingKey := func(n, rateIdx, depthIdx int) string {
		return fmt.Sprintf("scaling/n%02d/r%02d/d%02d", n, rateIdx, depthIdx)
	}
	// The hashed identity of a scaling sweep mirrors sweepSpec: every
	// field that determines point results, nothing that only schedules.
	type scalingSpec struct {
		Command   string
		Ns        []int
		Rates     []float64
		Instances int
		Shots     int
		Traj      int
		Backend   string
		Pipeline  string
		Scorers   []string `json:",omitempty"`
	}
	spec := scalingSpec{Command: "scaling", Ns: ns, Rates: p2s,
		Instances: *instances, Shots: *shots, Traj: *traj,
		Backend: *backendName, Pipeline: pcfg.Hash(),
		Scorers: extraScorers}
	var keys []string
	for _, n := range ns {
		for ri := range p2s {
			for di := range scalingDepths(n) {
				keys = append(keys, scalingKey(n, ri, di))
			}
		}
	}
	sfr := sweepFlags{rundir: *rundir, resume: *resume, backend: *backendName,
		shard: shard, pipeline: pcfg}
	run := sfr.openRun("scaling", spec, keys)
	snapDir := ""
	if run != nil {
		snapDir = run.Dir()
	}
	defer telem.start(snapDir)()
	var ck experiment.CheckpointStore
	if run != nil {
		ck = run
	}

	fmt.Printf("E10 — register-width scaling (1:2 QFA, %d instances, %d traj)\n", *instances, *traj)
	fmt.Printf("%-4s %-8s %-28s %-10s %-10s\n", "n", "λ2q%", "success by depth 1,2,3,…,full", "best", "log2(n)")
	for _, n := range ns {
		depths := scalingDepths(n)
		for ri, p2 := range p2s {
			var cells []string
			best, bestS := 0, -1.0
			for di, d := range depths {
				key := scalingKey(n, ri, di)
				if !shard.Owns(key) {
					// Owned by another shard: shown after merge + resume.
					cells = append(cells, "·")
					continue
				}
				cfg := experiment.PointConfig{
					Geometry: experiment.AddGeometry(n-1, n),
					Depth:    d,
					Model:    noise.PaperModel(0, p2),
					OrderX:   1, OrderY: 2,
					Instances: *instances, Shots: *shots, Trajectories: *traj,
					RowSeed:   splitMix(77, uint64(n)),
					PointSeed: splitMix(78, uint64(n)<<16|uint64(d)<<8|uint64(p2*1000)),
					Pipeline:  pcfg,
					Scorers:   extraScorers,
				}
				r, err := experiment.RunPointCkptCtx(ctx, runner, cfg, key, ck)
				if err != nil {
					exitSweepErr(err, run)
				}
				cells = append(cells, fmt.Sprintf("%.0f", r.Stats.SuccessRate))
				if r.Stats.SuccessRate > bestS {
					bestS, best = r.Stats.SuccessRate, d
				}
			}
			bestLabel := "-"
			if bestS >= 0 {
				bestLabel = experiment.DepthLabel(best, n)
			}
			fmt.Printf("%-4d %-8.1f %-28s %-10s %-10.1f\n", n, p2*100,
				strings.Join(cells, "/"), bestLabel, math.Log2(float64(n)))
		}
	}
	if shard.Enabled() {
		fmt.Printf("shard %s complete: merge with `qfarith merge-runs -out MERGED %s ...`, then resume the merged run for the full table\n",
			shard, run.Dir())
	}
}

// runShor is experiment E11, the capstone: the complete gate-level
// order-finding circuit (Beauregard controlled modular multiplication
// built from this library's Fourier adders) run under the paper's gate
// noise, reporting how much probability mass survives on the correct
// phase peaks as the error rates grow — Shor's algorithm meeting the
// paper's noise analysis.
func runShor(args []string) {
	fs := flag.NewFlagSet("shor", flag.ExitOnError)
	base := fs.Uint64("a", 7, "base")
	modulus := fs.Uint64("N", 15, "modulus")
	tbits := fs.Int("t", 4, "phase bits")
	traj := fs.Int("traj", 24, "trajectories per point")
	var prof profiler
	prof.register(fs)
	var telem telemetryFlags
	telem.register(fs)
	fs.Parse(args)
	defer prof.start()()
	defer telem.start("")()

	c, lay := arith.NewOrderFinding(*base, *modulus, *tbits, arith.DefaultConfig())
	res := transpile.Transpile(c)
	n1, n2 := res.CountByArity()
	fmt.Printf("E11 — noisy gate-level order finding: a=%d N=%d t=%d\n", *base, *modulus, *tbits)
	fmt.Printf("circuit: %d qubits, %d logical ops, %d native 1q + %d CX\n\n",
		lay.Total, len(c.Ops), n1, n2)

	// Identify the ideal peaks first.
	st := sim.NewState(lay.Total)
	st.ApplyCircuit(c)
	ideal := st.RegisterProbs(lay.Phase)
	peaks := map[int]bool{}
	for v, p := range ideal {
		if p > 1e-6 {
			peaks[v] = true
		}
	}
	fmt.Printf("ideal peaks: %d outcomes carrying all probability\n", len(peaks))
	fmt.Printf("%-14s %-14s %-12s %-12s\n", "λ1q=λ2q/5", "λ2q", "w0", "peak mass")
	initial := make([]complex128, 1<<uint(lay.Total))
	initial[0] = 1
	for _, p2 := range []float64{0, 0.0001, 0.0003, 0.001, 0.003, 0.01} {
		model := noise.Noiseless
		if p2 > 0 {
			model = noise.PaperModel(p2/5, p2)
		}
		engine := noise.NewEngine(res, model)
		dist := make([]float64, 1<<uint(*tbits))
		rng := rand.New(rand.NewPCG(1, uint64(p2*1e9)))
		engine.MixtureInto(dist, st, initial, noise.MixtureOpts{
			Trajectories: *traj, Measure: lay.Phase,
		}, rng)
		mass := 0.0
		for v := range peaks {
			mass += dist[v]
		}
		fmt.Printf("%-14.5f %-14.5f %-12.5f %-12.3f\n", p2/5, p2, engine.NoErrorProb(), mass)
	}
	fmt.Println("\nreading: with thousands of native gates, even rates an order of")
	fmt.Println("magnitude below today's hardware wash out the period peaks — the")
	fmt.Println("scale gap between the paper's 8-qubit adders and useful Shor.")
}

// runReport summarizes previously recorded panel CSVs: the optimal
// depth per error-rate cluster (E5) for every file given (or every
// *.csv under -dir).
func runReport(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	dir := fs.String("dir", "results", "directory of panel CSVs")
	fs.Parse(args)
	files := fs.Args()
	if len(files) == 0 {
		matches, err := filepath.Glob(filepath.Join(*dir, "*.csv"))
		if err != nil || len(matches) == 0 {
			fmt.Fprintf(os.Stderr, "no CSVs found under %s\n", *dir)
			exit(1)
		}
		files = matches
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		rows, err := experiment.ParseCSV(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", f, err)
			continue
		}
		fmt.Printf("== %s ==\n%s\n", filepath.Base(f), experiment.ReportFromCSV(rows))
	}
}

// circuitT aliases the internal circuit type for this command's helpers.
type circuitT = circuit.Circuit

// compileForExport runs c through the given pass pipeline and returns
// the native circuit, exiting on an invalid pipeline or a debug-mode
// verification failure.
func compileForExport(c *circuitT, pcfg compile.Config) *circuitT {
	p, err := compile.New(pcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	art, err := p.Compile(c)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	return art.Result.Circuit()
}
