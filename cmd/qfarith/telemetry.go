package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"qfarith/internal/experiment"
	"qfarith/internal/telemetry"
)

// telemetryFlags adds -telemetry-addr to a command's flag set and
// manages the optional debug server plus the exit-time telemetry.json
// snapshot, so any sweep or study command can be observed live
// (curl host:port/metrics, go tool pprof host:port/debug/pprof/profile)
// without a rebuild.
type telemetryFlags struct {
	addr *string
}

// register installs the telemetry flags on fs.
func (tf *telemetryFlags) register(fs *flag.FlagSet) {
	tf.addr = fs.String("telemetry-addr", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
}

// start launches the debug server when -telemetry-addr is set and
// returns the stop function to defer: it writes a telemetry.json
// snapshot into snapshotDir (skipped when empty, i.e. no -rundir) and
// shuts the server down. Like profiler.start, the stop function is
// idempotent and also registered with onExit, so both the normal
// return path and an early exit() — SIGINT, sweep error — produce the
// snapshot. Exits with status 1 when the requested listen address is
// unusable, since silently running unobserved would defeat the flag.
func (tf *telemetryFlags) start(snapshotDir string) func() {
	var srv *telemetry.Server
	if *tf.addr != "" {
		s, err := telemetry.Serve(*tf.addr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		srv = s
		fmt.Printf("telemetry: http://%s/metrics\n", s.Addr())
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			if snapshotDir != "" {
				path := filepath.Join(snapshotDir, "telemetry.json")
				if err := telemetry.Default().WriteSnapshotFile(path); err != nil {
					fmt.Fprintln(os.Stderr, "telemetry snapshot:", err)
				} else {
					fmt.Printf("telemetry snapshot: %s\n", path)
				}
			}
			if srv != nil {
				srv.Close()
			}
		})
	}
	onExit(stop)
	return stop
}

// telemetryShard publishes the shard identity as gauges, so the
// /metrics endpoints of a fleet of shard workers are distinguishable
// without scraping their command lines.
func telemetryShard(s experiment.Shard) {
	telemetry.Default().Gauge("qfarith_shard_index").Set(int64(s.Index))
	telemetry.Default().Gauge("qfarith_shard_count").Set(int64(s.Count))
}

// trackerInterval paces the periodic sweep progress line.
const trackerInterval = 15 * time.Second

// sweepTracker prints a periodic progress line for a multi-panel
// sweep: points completed (restored checkpoint cells counted
// separately), a fresh-only completion rate with its ETA, and the
// shots/sec throughput read from the telemetry counter. Restored cells
// complete in microseconds, so folding them into the rate would make a
// resumed sweep promise an absurdly near finish; only points actually
// computed in this process feed the rate and ETA.
type sweepTracker struct {
	total int
	start time.Time

	mu       sync.Mutex
	done     int
	fresh    int
	restored int

	lastShots   uint64
	lastShotsAt time.Time

	stopOnce sync.Once
	stopCh   chan struct{}
}

// newSweepTracker starts the progress ticker for a sweep of total grid
// points. Call observe from every panel's progress callback and stop
// when the sweep finishes.
func newSweepTracker(total int) *sweepTracker {
	t := &sweepTracker{
		total:       total,
		start:       time.Now(),
		lastShots:   telemetry.Default().CounterSum("qfarith_shots_total"),
		lastShotsAt: time.Now(),
		stopCh:      make(chan struct{}),
	}
	go t.loop()
	return t
}

// observe records one completed grid cell. Safe for concurrent use.
func (t *sweepTracker) observe(p experiment.Progress) {
	t.mu.Lock()
	t.done++
	if p.FromCheckpoint {
		t.restored++
	} else {
		t.fresh++
	}
	t.mu.Unlock()
}

// stop halts the ticker; idempotent.
func (t *sweepTracker) stop() {
	t.stopOnce.Do(func() { close(t.stopCh) })
}

func (t *sweepTracker) loop() {
	tick := time.NewTicker(trackerInterval)
	defer tick.Stop()
	for {
		select {
		case <-t.stopCh:
			return
		case <-tick.C:
			t.line()
		}
	}
}

// line renders one progress report. The shots/sec figure is the delta
// of the process-wide shots counter over the reporting interval, so it
// reflects current throughput rather than a lifetime average. The
// sample% figure is the shot-sampling stage's cumulative share of
// point wall time (qfarith_sample_seconds over qfarith_point_seconds),
// the number the constant-time sampling stage exists to keep small.
func (t *sweepTracker) line() {
	t.mu.Lock()
	done, fresh, restored := t.done, t.fresh, t.restored
	t.mu.Unlock()
	if done >= t.total {
		return
	}
	now := time.Now()
	shots := telemetry.Default().CounterSum("qfarith_shots_total")
	sps := float64(shots-t.lastShots) / now.Sub(t.lastShotsAt).Seconds()
	t.lastShots, t.lastShotsAt = shots, now

	line := fmt.Sprintf("progress: %d/%d points", done, t.total)
	if restored > 0 {
		line += fmt.Sprintf(" (%d restored)", restored)
	}
	if fresh > 0 {
		rate := float64(fresh) / now.Sub(t.start).Seconds()
		eta := time.Duration(float64(t.total-done) / rate * float64(time.Second))
		line += fmt.Sprintf(" | %.1f pts/min | ETA %s", rate*60, eta.Round(time.Second))
	}
	line += fmt.Sprintf(" | %.0f shots/s", sps)
	if pointSum := telemetry.Default().HistogramSum("qfarith_point_seconds"); pointSum > 0 {
		sampleSum := telemetry.Default().HistogramSum("qfarith_sample_seconds")
		line += fmt.Sprintf(" | sample %.1f%%", 100*sampleSum/pointSum)
		// The additional-scorer stage only accumulates when -scorers
		// requests metrics beyond the default margin path.
		if scoreSum := telemetry.Default().HistogramSum("qfarith_score_seconds"); scoreSum > 0 {
			line += fmt.Sprintf(" | score %.1f%%", 100*scoreSum/pointSum)
		}
	}
	fmt.Println(line)
}
