package layout_test

import (
	"math"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/layout"
	"qfarith/internal/sim"
	"qfarith/internal/testutil"
	"qfarith/internal/transpile"
)

func TestTopologyConstruction(t *testing.T) {
	lin := layout.Linear(5)
	if !lin.Connected(0, 1) || !lin.Connected(3, 4) || lin.Connected(0, 2) {
		t.Error("linear adjacency wrong")
	}
	ring := layout.Ring(5)
	if !ring.Connected(4, 0) {
		t.Error("ring must close the loop")
	}
	grid := layout.Grid(2, 3)
	if !grid.Connected(0, 3) || !grid.Connected(1, 2) || grid.Connected(0, 4) {
		t.Error("grid adjacency wrong")
	}
	hh := layout.HeavyHexFalcon27()
	if hh.NumQubits != 27 || !hh.IsConnected() {
		t.Error("heavy-hex map malformed")
	}
	// Heavy hex has max degree 3.
	for q := 0; q < 27; q++ {
		deg := 0
		for u := 0; u < 27; u++ {
			if hh.Connected(q, u) {
				deg++
			}
		}
		if deg > 3 {
			t.Errorf("heavy-hex qubit %d has degree %d", q, deg)
		}
	}
}

func TestDistances(t *testing.T) {
	lin := layout.Linear(6)
	d := lin.Distances()
	if d[0][5] != 5 || d[2][4] != 2 || d[3][3] != 0 {
		t.Errorf("linear distances wrong: %v", d)
	}
	ring := layout.Ring(6)
	if rd := ring.Distances(); rd[0][5] != 1 || rd[0][3] != 3 {
		t.Errorf("ring distances wrong: %v", rd)
	}
}

func TestRouteAdjacentGatesUnchanged(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.H, 0, 0)
	c.Append(gate.CX, 0, 0, 1)
	c.Append(gate.CX, 0, 1, 2)
	r := layout.Route(c, layout.Linear(3), nil)
	if r.SwapCount != 0 {
		t.Errorf("adjacent-only circuit needed %d swaps", r.SwapCount)
	}
	if len(r.Circuit.Ops) != 3 {
		t.Errorf("routed ops %d, want 3", len(r.Circuit.Ops))
	}
}

func TestRouteInsertsSwapsForDistantPairs(t *testing.T) {
	c := circuit.New(4)
	c.Append(gate.CX, 0, 0, 3)
	r := layout.Route(c, layout.Linear(4), nil)
	if r.SwapCount != 2 {
		t.Errorf("distance-3 CX should need 2 swaps, got %d", r.SwapCount)
	}
	// Every emitted 2q gate must lie on a coupling edge.
	cm := layout.Linear(4)
	for _, op := range r.Circuit.Ops {
		if op.Kind.Arity() == 2 && !cm.Connected(op.Qubits[0], op.Qubits[1]) {
			t.Fatalf("routed gate off-edge: %v", op)
		}
	}
}

// TestRoutedCircuitPreservesSemantics simulates a routed QFA on the
// linear topology and checks the sum appears at the final layout's
// positions.
func TestRoutedCircuitPreservesSemantics(t *testing.T) {
	a, w := 2, 3
	c := arith.NewQFA(a, w, arith.DefaultConfig())
	native := transpile.Transpile(c).Circuit()
	cm := layout.Linear(5)
	r := layout.Route(native, cm, nil)

	for trial := 0; trial < 8; trial++ {
		rng := testutil.NewRand(uint64(trial) + 100)
		x := rng.IntN(1 << a)
		y := rng.IntN(1 << w)
		// Prepare the physical state per the initial layout (identity).
		st := sim.NewState(5)
		st.SetBasis(x | y<<a)
		st.ApplyCircuit(r.Circuit)
		// Read logical qubits at their final physical positions.
		out := 0
		for l := 0; l < 5; l++ {
			probs := st.RegisterProbs([]int{r.FinalLayout[l]})
			if probs[1] > 0.5 {
				out |= 1 << uint(l)
			} else if probs[1] > 1e-9 && probs[1] < 1-1e-9 {
				t.Fatalf("qubit %d not in a basis state (p1=%g)", l, probs[1])
			}
		}
		gotX := out & (1<<a - 1)
		gotY := out >> a
		if gotX != x || gotY != (x+y)&(1<<w-1) {
			t.Fatalf("routed QFA: %d+%d gave (x=%d, y=%d)", x, y, gotX, gotY)
		}
	}
}

func TestRouteWithExplicitInitialLayout(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.CX, 0, 0, 1)
	// Place logical 0 at physical 2, logical 1 at physical 0 on a chain:
	// distance 2 → one swap.
	r := layout.Route(c, layout.Linear(3), []int{2, 0})
	if r.SwapCount != 1 {
		t.Errorf("expected 1 swap, got %d", r.SwapCount)
	}
	if r.InitialLayout[0] != 2 || r.InitialLayout[1] != 0 {
		t.Errorf("initial layout mangled: %v", r.InitialLayout)
	}
}

func TestRouteValidation(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	c := circuit.New(3)
	c.Append(gate.CCP, 1, 0, 1, 2)
	assertPanic("3q gate", func() { layout.Route(c, layout.Linear(3), nil) })
	c2 := circuit.New(4)
	c2.Append(gate.CX, 0, 0, 1)
	assertPanic("too small device", func() { layout.Route(c2, layout.Linear(2), nil) })
	assertPanic("bad layout", func() { layout.Route(c2, layout.Linear(4), []int{0, 0, 1, 2}) })
	assertPanic("disconnected", func() {
		layout.Route(c2, layout.NewCouplingMap(4, [][2]int{{0, 1}, {2, 3}}), nil)
	})
}

// TestQFARoutingOverheadScales quantifies what the paper idealizes away:
// QFT arithmetic's all-to-all rotations are expensive on a chain.
func TestQFARoutingOverheadScales(t *testing.T) {
	c := arith.NewQFA(7, 8, arith.DefaultConfig())
	native := transpile.Transpile(c).Circuit()
	o := layout.RoutingOverhead(native, layout.Linear(15))
	if o.BaseCX != 182 {
		t.Fatalf("base CX %d, want 182 (Table I)", o.BaseCX)
	}
	if o.CXFactor < 1.5 {
		t.Errorf("linear-chain routing factor %.2f suspiciously low", o.CXFactor)
	}
	if o.RoutedCX != o.BaseCX+3*o.Swaps {
		t.Errorf("accounting broken: %d != %d + 3*%d", o.RoutedCX, o.BaseCX, o.Swaps)
	}
	// A grid gets strictly cheaper than the chain.
	og := layout.RoutingOverhead(native, layout.Grid(3, 5))
	if og.RoutedCX >= o.RoutedCX {
		t.Errorf("grid (%d CX) should beat chain (%d CX)", og.RoutedCX, o.RoutedCX)
	}
	if math.IsNaN(o.CXFactor) {
		t.Error("CXFactor NaN")
	}
}
