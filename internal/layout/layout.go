// Package layout models restricted qubit connectivity. The paper
// simulates an idealized device ("complete qubit connectivity ...
// excluding noise associated with qubit-layout and/or swap-gates"); this
// package supplies what that idealization removes: coupling maps for
// real superconducting topologies, a SWAP-inserting router that
// legalizes a circuit for a coupling map, and gate-overhead accounting —
// so the layout cost the paper brackets out can be measured (experiment
// E7).
package layout

import (
	"fmt"
)

// CouplingMap is an undirected connectivity graph over physical qubits.
type CouplingMap struct {
	NumQubits int
	adj       [][]bool
	edges     [][2]int
}

// NewCouplingMap builds a map from an edge list.
func NewCouplingMap(numQubits int, edges [][2]int) *CouplingMap {
	if numQubits <= 0 {
		panic("layout: need at least one qubit")
	}
	cm := &CouplingMap{NumQubits: numQubits}
	cm.adj = make([][]bool, numQubits)
	for i := range cm.adj {
		cm.adj[i] = make([]bool, numQubits)
	}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || b < 0 || a >= numQubits || b >= numQubits || a == b {
			panic(fmt.Sprintf("layout: bad edge %v", e))
		}
		if !cm.adj[a][b] {
			cm.adj[a][b], cm.adj[b][a] = true, true
			cm.edges = append(cm.edges, [2]int{a, b})
		}
	}
	return cm
}

// Linear returns the 1-D chain topology 0-1-2-...-n-1 (the worst
// realistic case for QFT-style all-to-all circuits).
func Linear(n int) *CouplingMap {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return NewCouplingMap(n, edges)
}

// Ring returns the cycle topology.
func Ring(n int) *CouplingMap {
	edges := make([][2]int, 0, n)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	if n > 2 {
		edges = append(edges, [2]int{n - 1, 0})
	}
	return NewCouplingMap(n, edges)
}

// Grid returns the rows x cols lattice topology.
func Grid(rows, cols int) *CouplingMap {
	var edges [][2]int
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{at(r, c), at(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{at(r, c), at(r+1, c)})
			}
		}
	}
	return NewCouplingMap(rows*cols, edges)
}

// HeavyHexFalcon27 returns the 27-qubit heavy-hex coupling map of IBM's
// Falcon processors (e.g. ibmq_mumbai), the architecture generation the
// paper's error-rate anchors describe.
func HeavyHexFalcon27() *CouplingMap {
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 5}, {4, 1}, {5, 8}, {6, 7}, {7, 10},
		{8, 9}, {8, 11}, {10, 12}, {11, 14}, {12, 13}, {12, 15}, {13, 14},
		{14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21}, {19, 20}, {19, 22},
		{21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26},
	}
	return NewCouplingMap(27, edges)
}

// Connected reports whether physical qubits a and b share an edge.
func (cm *CouplingMap) Connected(a, b int) bool { return cm.adj[a][b] }

// Edges returns the (deduplicated) edge list.
func (cm *CouplingMap) Edges() [][2]int { return cm.edges }

// Distances returns the all-pairs shortest-path distance matrix (BFS
// per source; -1 for disconnected pairs).
func (cm *CouplingMap) Distances() [][]int {
	n := cm.NumQubits
	dist := make([][]int, n)
	for s := 0; s < n; s++ {
		d := make([]int, n)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for u := 0; u < n; u++ {
				if cm.adj[v][u] && d[u] < 0 {
					d[u] = d[v] + 1
					queue = append(queue, u)
				}
			}
		}
		dist[s] = d
	}
	return dist
}

// IsConnected reports whether the whole graph is one component.
func (cm *CouplingMap) IsConnected() bool {
	d := cm.Distances()
	for _, v := range d[0] {
		if v < 0 {
			return false
		}
	}
	return true
}
