package layout

import (
	"fmt"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
)

// Routed is a circuit legalized for a coupling map, with the logical-to-
// physical qubit bookkeeping needed to interpret its outputs.
type Routed struct {
	// Circuit acts on physical qubit indices and contains only gates
	// whose 2q interactions lie on coupling-map edges (inserted SWAPs
	// are decomposed into 3 CX).
	Circuit *circuit.Circuit
	// InitialLayout[l] is the physical qubit initially holding logical
	// qubit l; FinalLayout is the same after all routing SWAPs.
	InitialLayout []int
	FinalLayout   []int
	// SwapCount is the number of SWAPs inserted (each costs 3 CX).
	SwapCount int
}

// Route legalizes c (which must already be lowered so every gate touches
// at most two qubits) for the coupling map, inserting SWAPs along
// shortest paths whenever a 2q gate spans non-adjacent physical qubits.
// initial maps logical to physical qubits; nil means identity. The
// routing heuristic moves the first operand toward the second one edge
// at a time — simple, deterministic, and adequate for the gate-overhead
// accounting this package exists for.
func Route(c *circuit.Circuit, cm *CouplingMap, initial []int) *Routed {
	if cm.NumQubits < c.NumQubits {
		panic(fmt.Sprintf("layout: coupling map has %d qubits, circuit needs %d", cm.NumQubits, c.NumQubits))
	}
	if !cm.IsConnected() {
		panic("layout: coupling map must be connected")
	}
	l2p := make([]int, c.NumQubits)
	if initial == nil {
		for i := range l2p {
			l2p[i] = i
		}
	} else {
		if len(initial) != c.NumQubits {
			panic("layout: initial layout size mismatch")
		}
		seen := make(map[int]bool)
		for _, p := range initial {
			if p < 0 || p >= cm.NumQubits || seen[p] {
				panic("layout: initial layout is not an injection into the device")
			}
			seen[p] = true
		}
		copy(l2p, initial)
	}
	p2l := make([]int, cm.NumQubits)
	for i := range p2l {
		p2l[i] = -1
	}
	for l, p := range l2p {
		p2l[p] = l
	}
	dist := cm.Distances()

	out := circuit.New(cm.NumQubits)
	r := &Routed{InitialLayout: append([]int(nil), l2p...)}

	swapPhys := func(a, b int) {
		// Emit SWAP as 3 CX on the edge and update the mapping.
		out.Append(gate.CX, 0, a, b)
		out.Append(gate.CX, 0, b, a)
		out.Append(gate.CX, 0, a, b)
		la, lb := p2l[a], p2l[b]
		p2l[a], p2l[b] = lb, la
		if la >= 0 {
			l2p[la] = b
		}
		if lb >= 0 {
			l2p[lb] = a
		}
		r.SwapCount++
	}

	for _, op := range c.Ops {
		switch op.Kind.Arity() {
		case 1:
			out.Append(op.Kind, op.Theta, l2p[op.Qubits[0]])
		case 2:
			pa, pb := l2p[op.Qubits[0]], l2p[op.Qubits[1]]
			for !cm.Connected(pa, pb) {
				// Step pa one hop closer to pb.
				next := -1
				for u := 0; u < cm.NumQubits; u++ {
					if cm.adj[pa][u] && dist[u][pb] == dist[pa][pb]-1 {
						next = u
						break
					}
				}
				if next < 0 {
					panic("layout: no path found (graph changed?)")
				}
				swapPhys(pa, next)
				pa = next
				pb = l2p[op.Qubits[1]] // may have moved if it was adjacent
			}
			out.Append(op.Kind, op.Theta, pa, pb)
		default:
			panic(fmt.Sprintf("layout: route requires gates of arity <= 2; transpile %s first", op.Kind))
		}
	}
	r.Circuit = out
	r.FinalLayout = append([]int(nil), l2p...)
	return r
}

// Overhead summarizes the routing cost relative to the unrouted circuit.
type Overhead struct {
	BaseCX, RoutedCX int
	Swaps            int
	CXFactor         float64
}

// RoutingOverhead routes c on cm and reports the CX inflation.
func RoutingOverhead(c *circuit.Circuit, cm *CouplingMap) Overhead {
	base := 0
	for _, op := range c.Ops {
		if op.Kind.Arity() == 2 {
			base++
		}
	}
	r := Route(c, cm, nil)
	routed := 0
	for _, op := range r.Circuit.Ops {
		if op.Kind.Arity() == 2 {
			routed++
		}
	}
	o := Overhead{BaseCX: base, RoutedCX: routed, Swaps: r.SwapCount}
	if base > 0 {
		o.CXFactor = float64(routed) / float64(base)
	}
	return o
}
