package qasm_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/layout"
	"qfarith/internal/mat"
	"qfarith/internal/qasm"
	"qfarith/internal/qft"
	"qfarith/internal/testutil"
	"qfarith/internal/transpile"
)

func TestExportBasicStructure(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.H, 0, 0)
	c.Append(gate.CP, math.Pi/4, 0, 1)
	c.Append(gate.CCP, math.Pi/8, 0, 1, 2)
	out := qasm.Export(c)
	for _, want := range []string{
		"OPENQASM 2.0;",
		"qreg q[3];",
		"h q[0];",
		"cp(pi/4) q[0],q[1];",
		"ccp(pi/8) q[0],q[1],q[2];",
		"gate ccp(theta)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// No cch used: no cch definition emitted.
	if strings.Contains(out, "gate cch") {
		t.Error("spurious cch definition")
	}
}

func TestRoundTripPreservesOps(t *testing.T) {
	c := arith.NewQFA(3, 4, arith.Config{Depth: 2, AddCut: arith.FullAdd})
	parsed, err := qasm.ParseString(qasm.Export(c))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumQubits != c.NumQubits || len(parsed.Ops) != len(c.Ops) {
		t.Fatalf("shape changed: %d/%d qubits, %d/%d ops",
			parsed.NumQubits, c.NumQubits, len(parsed.Ops), len(c.Ops))
	}
	for i := range c.Ops {
		a, b := c.Ops[i], parsed.Ops[i]
		if a.Kind != b.Kind || a.Qubits != b.Qubits || math.Abs(a.Theta-b.Theta) > 1e-12 {
			t.Fatalf("op %d: %v != %v", i, a, b)
		}
	}
}

func TestRoundTripUnitaryEquivalence(t *testing.T) {
	// Round-tripped QFM must implement the same unitary.
	c := arith.NewQFM(2, 2, arith.Config{Depth: qft.Full, AddCut: arith.FullAdd})
	parsed, err := qasm.ParseString(qasm.Export(c))
	if err != nil {
		t.Fatal(err)
	}
	want := testutil.CircuitUnitary(c, c.NumQubits)
	got := testutil.CircuitUnitary(parsed, parsed.NumQubits)
	if d := mat.MaxAbsDiff(got, want); d > 1e-9 {
		t.Errorf("round trip changed unitary by %g", d)
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	c := circuit.New(3)
	th := 0.337
	c.Append(gate.I, 0, 0)
	c.Append(gate.X, 0, 0)
	c.Append(gate.Y, 0, 1)
	c.Append(gate.Z, 0, 2)
	c.Append(gate.H, 0, 0)
	c.Append(gate.S, 0, 1)
	c.Append(gate.Sdg, 0, 1)
	c.Append(gate.T, 0, 2)
	c.Append(gate.Tdg, 0, 2)
	c.Append(gate.SX, 0, 0)
	c.Append(gate.SXdg, 0, 0)
	c.Append(gate.RX, th, 1)
	c.Append(gate.RY, -th, 1)
	c.Append(gate.RZ, 2*th, 2)
	c.Append(gate.P, th/3, 0)
	c.Append(gate.CX, 0, 0, 1)
	c.Append(gate.CZ, 0, 1, 2)
	c.Append(gate.CP, th, 2, 0)
	c.Append(gate.CH, 0, 0, 2)
	c.Append(gate.CRY, th, 1, 0)
	c.Append(gate.SWAP, 0, 0, 2)
	c.Append(gate.CCX, 0, 0, 1, 2)
	c.Append(gate.CCP, th, 2, 1, 0)
	c.Append(gate.CCH, 0, 1, 2, 0)
	parsed, err := qasm.ParseString(qasm.Export(c))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Ops) != len(c.Ops) {
		t.Fatalf("op count %d != %d", len(parsed.Ops), len(c.Ops))
	}
	for i := range c.Ops {
		a, b := c.Ops[i], parsed.Ops[i]
		if a.Kind != b.Kind || a.Qubits != b.Qubits || math.Abs(a.Theta-b.Theta) > 1e-12 {
			t.Fatalf("op %d: %v != %v", i, a, b)
		}
	}
}

func TestParseQiskitAliases(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
u1(pi/2) q[0];
cu1(pi/8) q[0],q[1];
`
	c, err := qasm.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ops[0].Kind != gate.P || c.Ops[1].Kind != gate.CP {
		t.Errorf("aliases not mapped: %v", c.Ops)
	}
}

func TestParseAngleForms(t *testing.T) {
	cases := map[string]float64{
		"p(pi) q[0];":       math.Pi,
		"p(-pi) q[0];":      -math.Pi,
		"p(pi/2) q[0];":     math.Pi / 2,
		"p(3*pi/4) q[0];":   3 * math.Pi / 4,
		"p(-5*pi/16) q[0];": -5 * math.Pi / 16,
		"p(0.25) q[0];":     0.25,
		"p(2*pi) q[0];":     2 * math.Pi,
		"p(0) q[0];":        0,
	}
	for line, want := range cases {
		c, err := qasm.ParseString("qreg q[1];\n" + line)
		if err != nil {
			t.Errorf("%s: %v", line, err)
			continue
		}
		if got := c.Ops[0].Theta; math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: theta %g, want %g", line, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"h q[0];",                           // gate before qreg
		"qreg q[2];\nfrobnicate q[0];",      // unknown gate
		"qreg q[2];\ncx q[0];",              // wrong arity
		"qreg q[2];\nh r[0];",               // wrong register
		"qreg q[2];\nh q[5];",               // out of range
		"qreg q[2];\nqreg p[2];",            // double qreg
		"qreg q[2];\nmeasure q[0] -> c[0];", // unsupported
		"qreg q[2];\np() q[0];",             // missing angle
		"qreg q[2];\np(pi/x) q[0];",         // bad angle
		"",                                  // empty program
	}
	for _, src := range cases {
		if _, err := qasm.ParseString(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestAngleRoundTripProperty(t *testing.T) {
	prop := func(milli int32) bool {
		theta := float64(milli) / 1000.0
		c := circuit.New(1)
		c.Append(gate.RZ, theta, 0)
		parsed, err := qasm.ParseString(qasm.Export(c))
		if err != nil {
			return false
		}
		return math.Abs(parsed.Ops[0].Theta-theta) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExportCommentsAndWhitespaceTolerated(t *testing.T) {
	src := `
// a comment
OPENQASM 2.0;
qreg q[2];  // trailing comment

  h q[0];
cx q[0],q[1];
`
	c, err := qasm.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Ops) != 2 {
		t.Errorf("parsed %d ops, want 2", len(c.Ops))
	}
}

func TestExportWithMeasurement(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.H, 0, 0)
	out := qasm.ExportWithMeasurement(c, []int{1, 2})
	for _, want := range []string{"creg m[2];", "measure q[1] -> m[0];", "measure q[2] -> m[1];"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestRoundTripRoutedCircuit exports a routed (coupling-constrained)
// circuit and parses it back: routing SWAPs are emitted as 3 CX, so the
// op stream must survive exactly and the unitary must match.
func TestRoundTripRoutedCircuit(t *testing.T) {
	c := arith.NewQFA(2, 3, arith.Config{Depth: 2, AddCut: arith.FullAdd})
	native := transpile.Transpile(c).Circuit()
	routed := layout.Route(native, layout.Linear(c.NumQubits), nil)
	if routed.SwapCount == 0 {
		t.Fatal("expected the linear chain to force SWAP insertion")
	}
	parsed, err := qasm.ParseString(qasm.Export(routed.Circuit))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumQubits != routed.Circuit.NumQubits || len(parsed.Ops) != len(routed.Circuit.Ops) {
		t.Fatalf("shape changed: %d/%d qubits, %d/%d ops",
			parsed.NumQubits, routed.Circuit.NumQubits, len(parsed.Ops), len(routed.Circuit.Ops))
	}
	for i := range routed.Circuit.Ops {
		a, b := routed.Circuit.Ops[i], parsed.Ops[i]
		if a.Kind != b.Kind || a.Qubits != b.Qubits || math.Abs(a.Theta-b.Theta) > 1e-12 {
			t.Fatalf("op %d: %v != %v", i, a, b)
		}
	}
	want := testutil.CircuitUnitary(routed.Circuit, routed.Circuit.NumQubits)
	got := testutil.CircuitUnitary(parsed, parsed.NumQubits)
	if d := mat.MaxAbsDiff(got, want); d > 1e-9 {
		t.Errorf("round trip changed routed unitary by %g", d)
	}
}

// TestRoundTripExplicitSwap: the swap gate kind itself (as opposed to
// the 3-CX expansion the router emits) must also survive a round trip.
func TestRoundTripExplicitSwap(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.H, 0, 0)
	c.Append(gate.SWAP, 0, 0, 2)
	c.Append(gate.CP, math.Pi/4, 1, 2)
	parsed, err := qasm.ParseString(qasm.Export(c))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Ops) != 3 || parsed.Ops[1].Kind != gate.SWAP || parsed.Ops[1].Qubits != c.Ops[1].Qubits {
		t.Fatalf("swap did not round-trip: %v", parsed.Ops)
	}
}
