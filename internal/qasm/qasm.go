// Package qasm serializes circuits to OpenQASM 2.0 and parses the
// dialect it emits, so circuits built here can be inspected, diffed, or
// executed on other toolchains (including the Qiskit stack the paper
// used), and circuits produced elsewhere can be replayed through this
// simulator.
package qasm

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
)

// Export renders c as an OpenQASM 2.0 program on register q[n]. All gate
// kinds in the library's set are expressible: the nonstandard ones (ccp,
// cch) are emitted as gate definitions at the top of the program.
func Export(c *circuit.Circuit) string {
	var sb strings.Builder
	sb.WriteString("OPENQASM 2.0;\n")
	sb.WriteString("include \"qelib1.inc\";\n")
	// qelib1 lacks ccp/cch/sxdg-free forms; define what we use.
	counts := c.Counts()
	if counts[gate.CCP] > 0 {
		sb.WriteString("gate ccp(theta) a,b,c { cp(theta/2) b,c; cx a,b; cp(-theta/2) b,c; cx a,b; cp(theta/2) a,c; }\n")
	}
	if counts[gate.CCH] > 0 {
		sb.WriteString("gate cch a,b,c { s c; h c; t c; ccx a,b,c; tdg c; h c; sdg c; }\n")
	}
	fmt.Fprintf(&sb, "qreg q[%d];\n", c.NumQubits)
	for _, op := range c.Ops {
		sb.WriteString(formatOp(op))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func formatOp(op circuit.Op) string {
	name := op.Kind.Name()
	var sb strings.Builder
	sb.WriteString(name)
	if op.Kind.Parameterized() {
		fmt.Fprintf(&sb, "(%s)", formatAngle(op.Theta))
	}
	sb.WriteByte(' ')
	for i, q := range op.Active() {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "q[%d]", q)
	}
	sb.WriteByte(';')
	return sb.String()
}

// formatAngle renders common multiples of pi symbolically for
// readability and round-trip fidelity, falling back to full-precision
// decimals.
func formatAngle(theta float64) string {
	if theta == 0 {
		return "0"
	}
	ratio := theta / math.Pi
	for _, den := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		scaled := ratio * float64(den)
		if rounded := math.Round(scaled); math.Abs(scaled-rounded) < 1e-12 && rounded != 0 {
			num := int(rounded)
			switch {
			case num == 1 && den == 1:
				return "pi"
			case num == -1 && den == 1:
				return "-pi"
			case den == 1:
				return fmt.Sprintf("%d*pi", num)
			case num == 1:
				return fmt.Sprintf("pi/%d", den)
			case num == -1:
				return fmt.Sprintf("-pi/%d", den)
			default:
				return fmt.Sprintf("%d*pi/%d", num, den)
			}
		}
	}
	return strconv.FormatFloat(theta, 'g', 17, 64)
}

// ExportWithMeasurement renders c as a complete, directly runnable
// OpenQASM 2.0 program: the circuit followed by a classical register and
// measurement of the given qubits (creg bit i reads measure[i]).
func ExportWithMeasurement(c *circuit.Circuit, measure []int) string {
	var sb strings.Builder
	sb.WriteString(Export(c))
	fmt.Fprintf(&sb, "creg m[%d];\n", len(measure))
	for i, q := range measure {
		fmt.Fprintf(&sb, "measure q[%d] -> m[%d];\n", q, i)
	}
	return sb.String()
}

// Parse reads an OpenQASM 2.0 program in the dialect Export produces
// (single quantum register, gates from this library's set, optional
// gate-definition lines which are recognized and skipped since the
// library knows their semantics). Classical registers, measurement,
// conditionals and custom gates beyond ccp/cch are rejected.
func Parse(r io.Reader) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var c *circuit.Circuit
	regName := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "OPENQASM"):
			continue
		case strings.HasPrefix(line, "include"):
			continue
		case strings.HasPrefix(line, "gate "):
			continue // definitions for ccp/cch; semantics are built in
		case strings.HasPrefix(line, "qreg"):
			name, size, err := parseQreg(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if c != nil {
				return nil, fmt.Errorf("line %d: multiple qreg declarations", lineNo)
			}
			c = circuit.New(size)
			regName = name
		case strings.HasPrefix(line, "creg") || strings.HasPrefix(line, "measure") ||
			strings.HasPrefix(line, "barrier") || strings.HasPrefix(line, "if"):
			return nil, fmt.Errorf("line %d: unsupported statement %q", lineNo, line)
		default:
			if c == nil {
				return nil, fmt.Errorf("line %d: gate before qreg", lineNo)
			}
			op, err := parseOp(line, regName, c.NumQubits)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			c.AppendOp(op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("qasm: no qreg declaration found")
	}
	return c, nil
}

// ParseString is Parse on a string.
func ParseString(s string) (*circuit.Circuit, error) {
	return Parse(strings.NewReader(s))
}

func parseQreg(line string) (string, int, error) {
	rest := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "qreg")), ";")
	open := strings.Index(rest, "[")
	closeIdx := strings.Index(rest, "]")
	if open < 0 || closeIdx < open {
		return "", 0, fmt.Errorf("malformed qreg %q", line)
	}
	name := strings.TrimSpace(rest[:open])
	size, err := strconv.Atoi(rest[open+1 : closeIdx])
	if err != nil || size <= 0 {
		return "", 0, fmt.Errorf("bad register size in %q", line)
	}
	return name, size, nil
}

var kindByName = map[string]gate.Kind{
	"id": gate.I, "x": gate.X, "y": gate.Y, "z": gate.Z, "h": gate.H,
	"s": gate.S, "sdg": gate.Sdg, "t": gate.T, "tdg": gate.Tdg,
	"sx": gate.SX, "sxdg": gate.SXdg, "rx": gate.RX, "ry": gate.RY,
	"rz": gate.RZ, "p": gate.P, "u1": gate.P,
	"cx": gate.CX, "cz": gate.CZ, "cp": gate.CP, "cu1": gate.CP,
	"ch": gate.CH, "cry": gate.CRY, "swap": gate.SWAP,
	"ccx": gate.CCX, "ccp": gate.CCP, "cch": gate.CCH,
}

func parseOp(line, regName string, numQubits int) (circuit.Op, error) {
	line = strings.TrimSuffix(strings.TrimSpace(line), ";")
	// Split "name(args) operands" or "name operands".
	var name, argStr, operandStr string
	if open := strings.Index(line, "("); open >= 0 {
		closeIdx := strings.Index(line, ")")
		if closeIdx < open {
			return circuit.Op{}, fmt.Errorf("unbalanced parens in %q", line)
		}
		name = strings.TrimSpace(line[:open])
		argStr = line[open+1 : closeIdx]
		operandStr = strings.TrimSpace(line[closeIdx+1:])
	} else {
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 {
			return circuit.Op{}, fmt.Errorf("malformed gate line %q", line)
		}
		name, operandStr = fields[0], strings.TrimSpace(fields[1])
	}
	kind, ok := kindByName[name]
	if !ok {
		return circuit.Op{}, fmt.Errorf("unknown gate %q", name)
	}
	theta := 0.0
	if kind.Parameterized() {
		if argStr == "" {
			return circuit.Op{}, fmt.Errorf("gate %s needs an angle", name)
		}
		v, err := parseAngle(argStr)
		if err != nil {
			return circuit.Op{}, err
		}
		theta = v
	}
	var qubits []int
	for _, tok := range strings.Split(operandStr, ",") {
		tok = strings.TrimSpace(tok)
		open := strings.Index(tok, "[")
		closeIdx := strings.Index(tok, "]")
		if open < 0 || closeIdx < open {
			return circuit.Op{}, fmt.Errorf("malformed operand %q", tok)
		}
		if got := strings.TrimSpace(tok[:open]); got != regName {
			return circuit.Op{}, fmt.Errorf("unknown register %q", got)
		}
		q, err := strconv.Atoi(tok[open+1 : closeIdx])
		if err != nil || q < 0 || q >= numQubits {
			return circuit.Op{}, fmt.Errorf("bad qubit index %q", tok)
		}
		qubits = append(qubits, q)
	}
	if len(qubits) != kind.Arity() {
		return circuit.Op{}, fmt.Errorf("gate %s expects %d operands, got %d", name, kind.Arity(), len(qubits))
	}
	return circuit.NewOp(kind, theta, qubits...), nil
}

// parseAngle evaluates the angle grammar Export emits: optional sign,
// [int*]pi[/int], or a plain float.
func parseAngle(s string) (float64, error) {
	s = strings.ReplaceAll(strings.TrimSpace(s), " ", "")
	if s == "" {
		return 0, fmt.Errorf("empty angle")
	}
	sign := 1.0
	if s[0] == '-' {
		sign = -1
		s = s[1:]
	} else if s[0] == '+' {
		s = s[1:]
	}
	if !strings.Contains(s, "pi") {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("bad angle %q", s)
		}
		return sign * v, nil
	}
	num, den := 1.0, 1.0
	rest := s
	if i := strings.Index(rest, "*pi"); i >= 0 {
		v, err := strconv.ParseFloat(rest[:i], 64)
		if err != nil {
			return 0, fmt.Errorf("bad angle numerator in %q", s)
		}
		num = v
		rest = rest[i+3:]
	} else if strings.HasPrefix(rest, "pi") {
		rest = rest[2:]
	} else {
		return 0, fmt.Errorf("bad angle %q", s)
	}
	if strings.HasPrefix(rest, "/") {
		v, err := strconv.ParseFloat(rest[1:], 64)
		if err != nil || v == 0 {
			return 0, fmt.Errorf("bad angle denominator in %q", s)
		}
		den = v
	} else if rest != "" {
		return 0, fmt.Errorf("trailing characters in angle %q", s)
	}
	return sign * num * math.Pi / den, nil
}
