package server

import (
	"strconv"

	"qfarith/internal/telemetry"
)

// Telemetry handles for the daemon. Everything registers on the default
// registry so the shared debug mux (and the telemetry.json snapshot a
// job writes beside its artifacts) sees scheduler and simulation
// metrics side by side.
//
// Label values come from closed sets: priorities are the nine admission
// levels, outcomes the fixed lifecycle verbs, and HTTP routes the
// registered mux patterns.
var (
	metricRunning = telemetry.Default().Gauge("qfarithd_sched_running")
	// metricJobQueueSeconds: admission-to-dispatch wait per job.
	metricJobQueueSeconds = telemetry.Default().Histogram("qfarithd_job_queue_seconds")
	// metricJobRunSeconds: execution wall time per job attempt.
	metricJobRunSeconds = telemetry.Default().Histogram("qfarithd_job_run_seconds")
	// metricDrainSeconds: wall time of graceful drains (gauges are
	// integral in this registry, so sub-second drains need a histogram).
	metricDrainSeconds = telemetry.Default().Histogram("qfarithd_drain_seconds")
)

// queueDepthGauge is the admission-control gauge: one per priority
// level, holding the number of queued jobs at that priority. The
// scheduler's admission check is keyed off the same counts this gauge
// publishes, so the /metrics view and the 429 threshold can never
// disagree.
func queueDepthGauge(priority int) *telemetry.Gauge {
	return telemetry.Default().Gauge("qfarithd_sched_queue_depth",
		telemetry.L("priority", strconv.Itoa(priority)))
}

// jobsTotal counts lifecycle outcomes: submitted, rejected (admission),
// done, failed, cancelled, interrupted, retried.
func jobsTotal(outcome string) *telemetry.Counter {
	return telemetry.Default().Counter("qfarithd_jobs_total",
		telemetry.L("outcome", outcome))
}

// httpRequests counts API traffic by registered route pattern.
func httpRequests(route string) *telemetry.Counter {
	return telemetry.Default().Counter("qfarithd_http_requests_total",
		telemetry.L("route", route))
}
