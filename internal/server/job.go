// Package server is the qfarithd daemon's service layer: an HTTP/JSON
// API for submitting figure sweeps as jobs, a priority scheduler with
// per-client fairness, admission control and bounded retry, SSE
// progress streaming, and run-directory artifact serving.
//
// Jobs execute through the unchanged backend/experiment/runstore
// machinery into ordinary run directories: a job's manifest hashes the
// same experiment.SweepSpec the CLI hashes, so a daemon-created run can
// be resumed by `qfarith <command> ... -rundir DIR -resume`, and a job
// submitted at a fixed seed produces CSVs byte-identical to the same
// sweep run from the command line (the daemon-e2e CI job enforces
// this).
package server

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"qfarith/internal/compile"
	"qfarith/internal/experiment"
	"qfarith/internal/metrics"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	// StateQueued: admitted, waiting for a scheduler worker.
	StateQueued JobState = "queued"
	// StateRunning: executing on a worker.
	StateRunning JobState = "running"
	// StateDone: completed; artifacts are final.
	StateDone JobState = "done"
	// StateFailed: returned a non-retryable error (or exhausted retries).
	StateFailed JobState = "failed"
	// StateCancelled: cancelled by the client, queued or mid-run.
	StateCancelled JobState = "cancelled"
	// StateInterrupted: cut short by daemon drain (SIGTERM); the run
	// directory holds flushed checkpoints and resumes via the CLI or by
	// resubmitting the identical request.
	StateInterrupted JobState = "interrupted"
)

// terminal reports whether a state is final.
func (s JobState) terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateInterrupted:
		return true
	}
	return false
}

// Priority bounds. Higher runs sooner; 0 in a request selects
// DefaultPriority (so an omitted JSON field gets the default).
const (
	MinPriority     = 1
	MaxPriority     = 9
	DefaultPriority = 5
)

// JobRequest is the submit payload of POST /api/v1/jobs. Zero-valued
// fields take the CLI's defaults, so a request carrying only {"command":
// "fig3"} is the daemon rendition of `qfarith fig3`.
type JobRequest struct {
	// Command is a figure sweep: fig3, fig4, fig3-signed, fig4-signed.
	Command string `json:"command"`
	// Budget is quick|standard|full (default standard), overridable
	// field by field below, exactly like the CLI flags.
	Budget       string `json:"budget,omitempty"`
	Instances    int    `json:"instances,omitempty"`
	Shots        int    `json:"shots,omitempty"`
	Trajectories int    `json:"trajectories,omitempty"`
	// Seed is the base RNG seed; 0 selects the CLI's default seed so
	// unadorned requests and unadorned CLI runs agree.
	Seed uint64 `json:"seed,omitempty"`
	// Axis is 1q|2q|both (default both).
	Axis string `json:"axis,omitempty"`
	// Orders is the comma-separated operand-order list (default
	// "1:1,1:2,2:2").
	Orders string `json:"orders,omitempty"`
	// RatesPct overrides both error-rate grids, in percent (the CLI's
	// -rates). Empty keeps the paper grids.
	RatesPct []float64 `json:"rates_pct,omitempty"`
	// Scorers names additional success metrics (the CLI's -scorers).
	Scorers []string `json:"scorers,omitempty"`
	// Priority is 1 (lowest) to 9; 0 selects DefaultPriority.
	Priority int `json:"priority,omitempty"`
	// Client is the fairness identity the scheduler balances across;
	// empty selects "anonymous".
	Client string `json:"client,omitempty"`
}

// defaultSeed mirrors the CLI's -seed default so an unseeded job and an
// unseeded CLI run of the same command hash identically.
const defaultSeed = 20260704

// Spec validates the request into the sweep's hashed identity — the
// exact struct the CLI hashes, with the daemon's backend name filled
// in. Every validation failure is a client error (HTTP 400).
func (r JobRequest) Spec(backendName string) (experiment.SweepSpec, error) {
	geo, depths, ok := experiment.FigureSweep(r.Command)
	if !ok {
		return experiment.SweepSpec{}, fmt.Errorf("unknown command %q (want fig3, fig4, fig3-signed or fig4-signed)", r.Command)
	}
	var b experiment.Budget
	switch r.Budget {
	case "quick":
		b = experiment.Quick
	case "", "standard":
		b = experiment.Standard
	case "full":
		b = experiment.Full
	default:
		return experiment.SweepSpec{}, fmt.Errorf("unknown budget %q (want quick, standard or full)", r.Budget)
	}
	if r.Instances < 0 || r.Shots < 0 || r.Trajectories < 0 {
		return experiment.SweepSpec{}, fmt.Errorf("instances/shots/trajectories must be positive")
	}
	if r.Instances > 0 {
		b.Instances = r.Instances
	}
	if r.Shots > 0 {
		b.Shots = r.Shots
	}
	if r.Trajectories > 0 {
		b.Trajectories = r.Trajectories
	}

	var axes []experiment.ErrorAxis
	switch r.Axis {
	case "1q":
		axes = []experiment.ErrorAxis{experiment.Axis1Q}
	case "2q":
		axes = []experiment.ErrorAxis{experiment.Axis2Q}
	case "", "both":
		axes = []experiment.ErrorAxis{experiment.Axis1Q, experiment.Axis2Q}
	default:
		return experiment.SweepSpec{}, fmt.Errorf("unknown axis %q (want 1q, 2q or both)", r.Axis)
	}

	ordersStr := r.Orders
	if ordersStr == "" {
		ordersStr = "1:1,1:2,2:2"
	}
	var orders [][2]int
	for _, tok := range strings.Split(ordersStr, ",") {
		var ox, oy int
		if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%d:%d", &ox, &oy); err != nil {
			return experiment.SweepSpec{}, fmt.Errorf("bad orders token %q (want e.g. 1:2)", tok)
		}
		if ox < 1 || oy < 1 {
			return experiment.SweepSpec{}, fmt.Errorf("orders must be >= 1, got %d:%d", ox, oy)
		}
		orders = append(orders, [2]int{ox, oy})
	}

	rates1q, rates2q := experiment.PaperRates1Q, experiment.PaperRates2Q
	if len(r.RatesPct) > 0 {
		grid := make([]float64, len(r.RatesPct))
		for i, pct := range r.RatesPct {
			if pct < 0 || pct >= 100 {
				return experiment.SweepSpec{}, fmt.Errorf("rate %g%% out of range", pct)
			}
			grid[i] = pct / 100
		}
		rates1q, rates2q = grid, grid
	}

	var extras []string
	seen := map[string]bool{}
	for _, name := range r.Scorers {
		name = strings.TrimSpace(name)
		if name == "" || name == "margin" || seen[name] {
			continue
		}
		if _, ok := metrics.LookupScorer(name); !ok {
			return experiment.SweepSpec{}, fmt.Errorf("unknown scorer %q (registered: %s)",
				name, strings.Join(metrics.ScorerNames(), ","))
		}
		seen[name] = true
		extras = append(extras, name)
	}

	seed := r.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	return experiment.SweepSpec{
		Command: r.Command, Geometry: geo, Depths: depths,
		Axes: axes, Orders: orders,
		Rates1Q: rates1q, Rates2Q: rates2q,
		Instances: b.Instances, Shots: b.Shots, Traj: b.Trajectories,
		Seed: seed, Backend: backendName,
		Pipeline: compile.Config{}.Hash(),
		Scorers:  extras,
	}, nil
}

// priority resolves the request's effective priority.
func (r JobRequest) priority() (int, error) {
	if r.Priority == 0 {
		return DefaultPriority, nil
	}
	if r.Priority < MinPriority || r.Priority > MaxPriority {
		return 0, fmt.Errorf("priority %d out of range [%d, %d]", r.Priority, MinPriority, MaxPriority)
	}
	return r.Priority, nil
}

// Job is one submitted sweep moving through the scheduler. All mutable
// fields are guarded by mu; the immutable identity fields are set at
// admission and read freely.
type Job struct {
	ID       string
	Client   string
	Priority int
	Request  JobRequest
	Spec     experiment.SweepSpec

	mu        sync.Mutex
	state     JobState
	errMsg    string
	dir       string
	retries   int
	done      int
	fresh     int
	restored  int
	total     int
	submitted time.Time
	started   time.Time
	finished  time.Time

	// Scheduler bookkeeping: FIFO tiebreak, retry attempt count, the
	// running job's context cancel, and whether the client (rather than
	// a drain) asked for cancellation.
	seq           uint64
	attempts      int
	cancelRunning func()
	userCancelled bool

	bc *broadcaster
}

// newJob builds an admitted job in the queued state.
func newJob(id string, req JobRequest, spec experiment.SweepSpec, priority int, now time.Time) *Job {
	client := req.Client
	if client == "" {
		client = "anonymous"
	}
	return &Job{
		ID: id, Client: client, Priority: priority,
		Request: req, Spec: spec,
		state: StateQueued, submitted: now,
		bc: newBroadcaster(),
	}
}

// JobStatus is the API's serialized view of a job.
type JobStatus struct {
	ID       string   `json:"id"`
	Client   string   `json:"client"`
	Priority int      `json:"priority"`
	Command  string   `json:"command"`
	Seed     uint64   `json:"seed"`
	State    JobState `json:"state"`
	Error    string   `json:"error,omitempty"`
	// Dir is the job's run directory — an ordinary runstore run dir,
	// resumable with the CLI's -rundir/-resume.
	Dir     string `json:"dir,omitempty"`
	Retries int    `json:"retries"`
	// Done = Fresh + Restored of Total grid points.
	Done      int       `json:"done"`
	Fresh     int       `json:"fresh"`
	Restored  int       `json:"restored"`
	Total     int       `json:"total"`
	Submitted time.Time `json:"submitted_at"`
	Started   time.Time `json:"started_at"`
	Finished  time.Time `json:"finished_at"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.ID, Client: j.Client, Priority: j.Priority,
		Command: j.Spec.Command, Seed: j.Spec.Seed,
		State: j.state, Error: j.errMsg, Dir: j.dir, Retries: j.retries,
		Done: j.done, Fresh: j.fresh, Restored: j.restored, Total: j.total,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
	}
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setState transitions the job and broadcasts the new status to SSE
// subscribers; terminal states close the event stream.
func (j *Job) setState(state JobState, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	switch state {
	case StateRunning:
		if j.started.IsZero() {
			j.started = time.Now()
		}
	case StateDone, StateFailed, StateCancelled, StateInterrupted:
		j.finished = time.Now()
	}
	j.mu.Unlock()
	j.bc.send(Event{Type: EventState, Data: j.Status()})
	if state.terminal() {
		j.bc.close()
	}
}

// setDir records the job's run directory once the executor created it.
func (j *Job) setDir(dir string) {
	j.mu.Lock()
	j.dir = dir
	j.mu.Unlock()
}

// resetProgress arms the job-level progress counters for one execution
// attempt (a retry re-counts checkpoint-restored cells).
func (j *Job) resetProgress(total int) {
	j.mu.Lock()
	j.total = total
	j.done, j.fresh, j.restored = 0, 0, 0
	j.mu.Unlock()
}

// observe folds one panel progress callback into the job-level counters
// and streams it to SSE subscribers. It must not block: progress
// callbacks run under the panel's bookkeeping lock.
func (j *Job) observe(panel string, p experiment.Progress) {
	j.mu.Lock()
	j.done++
	if p.FromCheckpoint {
		j.restored++
	} else {
		j.fresh++
	}
	ev := ProgressEvent{
		Panel: panel,
		Done:  j.done, Fresh: j.fresh, Restored: j.restored, Total: j.total,
		PanelDone: p.Done, PanelTotal: p.Total,
		RatePct:        pointRatePct(p.Point),
		Depth:          experiment.DepthLabel(p.Point.Config.Depth, 8),
		SuccessPct:     p.Point.Stats.SuccessRate,
		FromCheckpoint: p.FromCheckpoint,
	}
	j.mu.Unlock()
	j.bc.send(Event{Type: EventProgress, Data: ev})
}

// pointRatePct extracts the swept error rate of a completed point, in
// percent (the axis the panel varies is whichever is non-zero).
func pointRatePct(r experiment.PointResult) float64 {
	if r.Config.Model.TwoQubit > 0 {
		return r.Config.Model.TwoQubit * 100
	}
	return r.Config.Model.OneQubit * 100
}

// ProgressEvent is one completed grid cell as streamed over SSE: the
// job-level counters plus the panel-local coordinates of the cell.
type ProgressEvent struct {
	Panel          string  `json:"panel"`
	Done           int     `json:"done"`
	Fresh          int     `json:"fresh"`
	Restored       int     `json:"restored"`
	Total          int     `json:"total"`
	PanelDone      int     `json:"panel_done"`
	PanelTotal     int     `json:"panel_total"`
	RatePct        float64 `json:"rate_pct"`
	Depth          string  `json:"depth"`
	SuccessPct     float64 `json:"success_pct"`
	FromCheckpoint bool    `json:"from_checkpoint,omitempty"`
}
