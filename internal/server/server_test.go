package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qfarith/internal/compile"
	"qfarith/internal/experiment"
	"qfarith/internal/runstore"
	"qfarith/internal/telemetry"
)

// newTestServer builds a Server on a temp data dir wrapped in an
// httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

// submitJob POSTs a request and decodes the created job status.
func submitJob(t *testing.T, ts *httptest.Server, req JobRequest) JobStatus {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, msg)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// getStatus fetches one job's status.
func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State.terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	Type string
	Data string
}

// readSSE consumes a job's event stream until the server closes it.
// subscribed, when non-nil, is closed once the handler has registered
// the subscription (signalled by the guaranteed opening state event).
func readSSE(t *testing.T, ts *httptest.Server, id string, subscribed chan<- struct{}) []sseEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/events")
	if err != nil {
		t.Errorf("events: %v", err)
		return nil
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events content type %q", ct)
		return nil
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.Type != "" {
				events = append(events, cur)
				if subscribed != nil {
					close(subscribed)
					subscribed = nil
				}
			}
			cur = sseEvent{}
		}
	}
	return events
}

// quickAddRequest is a small but real fig3 job: one panel, one rate,
// all five depth columns.
func quickAddRequest(seed uint64) JobRequest {
	return JobRequest{
		Command: "fig3", Budget: "quick",
		Instances: 1, Shots: 32, Trajectories: 1,
		Seed: seed, Axis: "2q", Orders: "1:1",
		RatesPct: []float64{0.5},
	}
}

// TestServerJobByteIdentity is the core daemon invariant at the Go
// level: a job submitted over HTTP must produce a CSV artifact
// byte-identical to the same sweep computed directly through the
// experiment layer and written with runstore.WriteArtifact — i.e. the
// daemon adds scheduling, not physics. The CI daemon-e2e job checks the
// same property against the real CLI binary.
func TestServerJobByteIdentity(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := quickAddRequest(777)

	// Gate execution behind the SSE subscription so the stream
	// observes the complete lifecycle deterministically: drain the
	// stock scheduler and wire one whose executor waits for the test.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.sched.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	s.sched = NewScheduler(1, 64, 0, func(ctx context.Context, j *Job) error {
		<-gate
		return s.exec.Execute(ctx, j)
	})
	defer s.sched.Drain(context.Background())

	st := submitJob(t, ts, req)
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state %s", st.State)
	}
	streamed := make(chan []sseEvent, 1)
	subscribed := make(chan struct{})
	go func() {
		streamed <- readSSE(t, ts, st.ID, subscribed) // runs until the server closes the stream
	}()
	<-subscribed
	close(gate)
	events := <-streamed
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", final.State, final.Error)
	}
	if final.Done != final.Total || final.Total != 5 {
		t.Errorf("progress counters done=%d total=%d, want 5/5", final.Done, final.Total)
	}

	// The SSE stream saw the full lifecycle: states in order, progress
	// for every cell, and a terminal state event last.
	var states []string
	progress := 0
	for _, ev := range events {
		switch ev.Type {
		case EventState:
			var js JobStatus
			if err := json.Unmarshal([]byte(ev.Data), &js); err != nil {
				t.Fatalf("bad state event %q: %v", ev.Data, err)
			}
			states = append(states, string(js.State))
		case EventProgress:
			var pe ProgressEvent
			if err := json.Unmarshal([]byte(ev.Data), &pe); err != nil {
				t.Fatalf("bad progress event %q: %v", ev.Data, err)
			}
			if pe.Total != 5 || pe.Panel != "fig3_2q_11" {
				t.Errorf("progress event %+v", pe)
			}
			progress++
		}
	}
	if len(states) < 2 || states[len(states)-1] != string(StateDone) {
		t.Errorf("state sequence %v, want ...done last", states)
	}
	if progress != 5 {
		t.Errorf("saw %d progress events, want 5", progress)
	}

	// Fetch the artifact over HTTP.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/artifacts/fig3_2q_11.csv")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch: %d %s", resp.StatusCode, got)
	}

	// Compute the same panel directly and write it the way the CLI
	// does.
	spec, err := req.Spec(s.cfg.Backend)
	if err != nil {
		t.Fatal(err)
	}
	panels, _ := spec.Panels(compile.Config{}, 0)
	if len(panels) != 1 {
		t.Fatalf("expected 1 panel, got %d", len(panels))
	}
	res, err := experiment.RunPanelCheckpointCtx(context.Background(), s.exec.Runner, panels[0].Config, panels[0].Label, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := filepath.Join(t.TempDir(), "ref.csv")
	if err := runstore.WriteArtifact(ref, []byte(res.CSV())); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("daemon artifact differs from direct computation:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}

	// The artifact listing shows the CSV as checksum-verified.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	var infos []runstore.ArtifactInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, ai := range infos {
		if ai.Name == "fig3_2q_11.csv" {
			found = ai.Verified
		}
	}
	if !found {
		t.Errorf("artifact listing missing verified fig3_2q_11.csv: %+v", infos)
	}
}

// TestServerCancelMidJob cancels a running job and checks it finalizes
// as cancelled with a resumable run directory: the checkpoint log holds
// every point completed before the cancel, and the config hash still
// matches (the CLI could pick it up with -resume).
func TestServerCancelMidJob(t *testing.T) {
	// A single runner slot serializes the 30 grid points, so a cancel
	// issued after the first progress event reliably lands mid-job.
	s, ts := newTestServer(t, Config{Workers: 1})
	req := JobRequest{
		Command: "fig3", Budget: "quick",
		Instances: 4, Shots: 128, Trajectories: 2,
		Seed: 778, Axis: "2q", Orders: "1:1",
		RatesPct: []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}, // 30 cells
	}
	st := submitJob(t, ts, req)

	// Follow SSE until the first fresh progress event, then cancel.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sawProgress := false
	for sc.Scan() && !sawProgress {
		sawProgress = strings.HasPrefix(sc.Text(), "event: progress")
	}
	resp.Body.Close()
	if !sawProgress {
		t.Fatal("stream ended before any progress")
	}

	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+st.ID, nil)
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", delResp.StatusCode)
	}

	final := waitTerminal(t, ts, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", final.State)
	}
	if final.Dir == "" {
		t.Fatal("cancelled job has no run directory")
	}

	// The run directory must be resumable at the same config hash, with
	// the pre-cancel points in its checkpoint log.
	spec, err := req.Spec(s.cfg.Backend)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := runstore.HashConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	run, err := runstore.Resume(final.Dir, hash)
	if err != nil {
		t.Fatalf("cancelled run dir not resumable: %v", err)
	}
	restored := run.Restored()
	run.Close()
	if restored < 1 {
		t.Fatal("no checkpointed points survived the cancel")
	}
	if restored >= 30 {
		t.Fatalf("restored %d of 30 points; cancel did not land mid-job", restored)
	}
	t.Logf("cancel landed after %d/30 points", restored)
}

// TestServerValidation covers the API's client-error paths.
func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, c := range []struct {
		body string
		want int
	}{
		{`{"command":"fig9"}`, http.StatusBadRequest},
		{`{"command":"fig3","budget":"epic"}`, http.StatusBadRequest},
		{`{"command":"fig3","axis":"3q"}`, http.StatusBadRequest},
		{`{"command":"fig3","orders":"1-2"}`, http.StatusBadRequest},
		{`{"command":"fig3","rates_pct":[120]}`, http.StatusBadRequest},
		{`{"command":"fig3","scorers":["nope"]}`, http.StatusBadRequest},
		{`{"command":"fig3","priority":12}`, http.StatusBadRequest},
		{`{"command":"fig3","unknown_field":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		if got := post(c.body); got != c.want {
			t.Errorf("POST %s = %d, want %d", c.body, got, c.want)
		}
	}

	for _, url := range []string{
		"/api/v1/jobs/job-999999",
		"/api/v1/jobs/job-999999/events",
		"/api/v1/jobs/job-999999/artifacts",
		"/api/v1/jobs/job-999999/artifacts/x.csv",
	} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", url, resp.StatusCode)
		}
	}
}

// TestServerArtifactTraversal checks path-escape attempts are client
// errors, not file reads.
func TestServerArtifactTraversal(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submitJob(t, ts, quickAddRequest(779))
	waitTerminal(t, ts, st.ID)

	for _, name := range []string{"..%2F..%2Fetc%2Fpasswd", "..%5Cmanifest.json", "%2e%2e"} {
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/artifacts/" + name)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("artifact %q = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestServerAdmissionHTTP checks queue capacity surfaces as 429 and
// draining as 503.
func TestServerAdmissionHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxQueue: 1})
	// Swap in a scheduler whose executor blocks, so admission state is
	// fully controlled by the test.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.sched.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s.sched = NewScheduler(1, 1, 0, func(ctx context.Context, j *Job) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	defer s.sched.Drain(context.Background())
	defer close(release)

	st1 := submitJob(t, ts, quickAddRequest(1)) // occupies the worker
	deadline := time.Now().Add(5 * time.Second)
	for getStatus(t, ts, st1.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	submitJob(t, ts, quickAddRequest(2)) // fills the queue

	body, _ := json.Marshal(quickAddRequest(3))
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit at capacity = %d, want 429", resp.StatusCode)
	}

	// Drain: health flips to 503 and submissions are refused with 503.
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	hResp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if hResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", hResp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", resp.StatusCode)
	}
}

// TestServerSharedTelemetryMux is the port-conflict regression test:
// with TelemetryMux set, one listener serves the job API, /metrics and
// /debug/vars together — no second port to collide with.
func TestServerSharedTelemetryMux(t *testing.T) {
	_, ts := newTestServer(t, Config{TelemetryMux: telemetry.NewMux(nil)})

	for path, wantBody := range map[string]string{
		"/metrics":     "qfarithd_sched_running",
		"/debug/vars":  "{",
		"/api/v1/jobs": "[",
		"/healthz":     "ok",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), wantBody) {
			t.Errorf("GET %s missing %q in body", path, wantBody)
		}
	}
}

// TestServerSeparateTelemetry checks the documented two-port mode: the
// API omits the debug surface while a standalone telemetry server
// carries it, and both listeners coexist.
func TestServerSeparateTelemetry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	debug, err := telemetry.Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer debug.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("API /metrics without shared mux = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(fmt.Sprintf("http://%s/metrics", debug.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("standalone /metrics = %d, want 200", resp.StatusCode)
	}
}

// TestServerRestartNumbering checks a restarted daemon continues job
// numbering past directories left by its predecessor instead of
// colliding with them.
func TestServerRestartNumbering(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "job-000007"), 0o755); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{DataDir: dir})
	st := submitJob(t, ts, quickAddRequest(780))
	if st.ID != "job-000008" {
		t.Fatalf("job ID after restart = %s, want job-000008", st.ID)
	}
}
