package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"qfarith/internal/backend"
	"qfarith/internal/runstore"
)

// Config configures a daemon Server.
type Config struct {
	// DataDir holds one runstore run directory per job. Created if
	// absent.
	DataDir string
	// Backend names the execution backend (default backend.DefaultName).
	Backend string
	// Workers bounds the shared simulation worker pool, like the CLI's
	// -workers; 0 = GOMAXPROCS.
	Workers int
	// BatchLanes configures backends with batched execution lanes, like
	// the CLI's -batch; 0 = the backend's default.
	BatchLanes int
	// Jobs is the number of jobs executing concurrently (default 1:
	// panels already parallelize across the worker pool, so concurrent
	// jobs trade per-job latency for queue throughput).
	Jobs int
	// MaxQueue caps queued jobs; submissions beyond it get HTTP 429
	// (default 64).
	MaxQueue int
	// MaxRetries bounds per-job re-queues on transient failures
	// (default 2).
	MaxRetries int
	// TelemetryMux, when set, is mounted on the API listener at /metrics
	// and /debug/ — one port serves both the job API and the debug
	// surface, which is how qfarithd avoids the API-vs-telemetry port
	// conflict. Leave nil when the debug server binds its own address.
	TelemetryMux http.Handler
}

// Server is the qfarithd HTTP API: job submission, status, SSE progress
// streams, artifact serving, and cancellation, backed by the fair-share
// Scheduler and the CLI-identical SweepExecutor.
type Server struct {
	cfg   Config
	sched *Scheduler
	exec  *SweepExecutor
	mux   *http.ServeMux

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing
	nextID int
}

// New builds a Server and starts its scheduler workers.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("server: Config.DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if cfg.Backend == "" {
		cfg.Backend = backend.DefaultName
	}
	if cfg.Jobs < 1 {
		cfg.Jobs = 1
	}
	if cfg.MaxQueue < 1 {
		cfg.MaxQueue = 64
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	b, err := backend.New(cfg.Backend)
	if err != nil {
		return nil, err
	}
	if cfg.BatchLanes > 0 {
		bs, ok := b.(backend.BatchSizer)
		if !ok {
			return nil, fmt.Errorf("server: batch lanes require a batching backend (have %q)", cfg.Backend)
		}
		bs.SetBatchLanes(cfg.BatchLanes)
	}
	runner := backend.NewRunner(b, cfg.Workers)
	s := &Server{
		cfg:  cfg,
		jobs: make(map[string]*Job),
		exec: &SweepExecutor{
			Runner: runner, DataDir: cfg.DataDir,
			Backend: cfg.Backend, Workers: cfg.Workers,
		},
	}
	s.nextID = nextJobNumber(cfg.DataDir)
	s.sched = NewScheduler(cfg.Jobs, cfg.MaxQueue, cfg.MaxRetries, s.exec.Execute)
	s.routes()
	return s, nil
}

// nextJobNumber scans the data directory for job-NNNNNN run dirs left
// by earlier daemon processes and continues the numbering after the
// highest, so a restarted daemon never collides with (or silently
// resumes) an old job's directory.
func nextJobNumber(dataDir string) int {
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		return 1
	}
	next := 1
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "job-%06d", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return next
}

// routes registers the API on a fresh mux using Go 1.22 method+wildcard
// patterns.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifacts", s.handleArtifacts)
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.cfg.TelemetryMux != nil {
		mux.Handle("/metrics", s.cfg.TelemetryMux)
		mux.Handle("/debug/", s.cfg.TelemetryMux)
	}
	s.mux = mux
}

// ServeHTTP implements http.Handler, counting requests by registered
// route pattern (a closed label set) before dispatch.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Handler only resolves the pattern for the metric label; dispatch
	// must go through the mux's own ServeHTTP, which is what binds the
	// {id}/{name} wildcards to r.PathValue.
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		pattern = "unmatched"
	}
	httpRequests(pattern).Inc()
	s.mux.ServeHTTP(w, r)
}

// Drain gracefully stops the scheduler: queued jobs are cancelled,
// running jobs interrupted with their checkpoints flushed. The HTTP
// listener stays usable throughout (status, events, artifacts), so
// clients can observe the drain; submissions get 503.
func (s *Server) Drain(ctx context.Context) error {
	return s.sched.Drain(ctx)
}

// job looks up a submitted job by ID.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit admits a new job: validate the request into a hashed
// SweepSpec, assign an ID, enqueue. 201 with the job status on success;
// 400 on a bad request, 429 at queue capacity, 503 while draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := req.Spec(s.cfg.Backend)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	priority, err := req.priority()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.nextID++
	j := newJob(id, req, spec, priority, time.Now())
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	if err := s.sched.Submit(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		status := http.StatusServiceUnavailable
		if errors.Is(err, ErrQueueFull) {
			status = http.StatusTooManyRequests
		}
		writeError(w, status, "%v", err)
		return
	}
	w.Header().Set("Location", "/api/v1/jobs/"+id)
	writeJSON(w, http.StatusCreated, j.Status())
}

// handleList returns every known job in submission order, optionally
// filtered with ?state= and ?client=.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	stateFilter := r.URL.Query().Get("state")
	clientFilter := r.URL.Query().Get("client")
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		j, ok := s.job(id)
		if !ok {
			continue
		}
		st := j.Status()
		if stateFilter != "" && string(st.State) != stateFilter {
			continue
		}
		if clientFilter != "" && st.Client != clientFilter {
			continue
		}
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStatus returns one job's status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleCancel cancels a queued or running job. 202 when the cancel was
// delivered, 409 when the job is already terminal.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if j.State().terminal() {
		writeError(w, http.StatusConflict, "job already %s", j.State())
		return
	}
	if !s.sched.Cancel(j.ID) && !j.State().terminal() {
		// Not queued, not running, not terminal: the scheduler is
		// between states; report conflict and let the client retry.
		writeError(w, http.StatusConflict, "job is transitioning; retry")
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleEvents streams the job's lifecycle over SSE: an initial state
// event, progress per completed grid cell, and a final state event
// after which the server closes the stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, closed := j.bc.subscribe()
	defer j.bc.unsubscribe(ch)
	// Always open with the current state so late subscribers need no
	// separate status poll.
	if err := writeEvent(w, fl, Event{Type: EventState, Data: j.Status()}); err != nil {
		return
	}
	if closed {
		return
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				// Terminal: the broadcaster closed. Emit the final
				// status directly from the job — guaranteed delivery
				// regardless of buffer pressure — then end the stream.
				_ = writeEvent(w, fl, Event{Type: EventState, Data: j.Status()})
				return
			}
			if err := writeEvent(w, fl, ev); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleArtifacts lists the job's run directory.
func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.Status()
	if st.Dir == "" {
		writeJSON(w, http.StatusOK, []runstore.ArtifactInfo{})
		return
	}
	infos, err := runstore.ListArtifacts(st.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			writeJSON(w, http.StatusOK, []runstore.ArtifactInfo{})
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	sort.Slice(infos, func(i, k int) bool { return infos[i].Name < infos[k].Name })
	writeJSON(w, http.StatusOK, infos)
}

// handleArtifact serves one file out of the job's run directory.
// Artifact names are validated by runstore.OpenArtifact, so traversal
// attempts get 400, not filesystem access.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.Status()
	if st.Dir == "" {
		writeError(w, http.StatusNotFound, "job has no run directory yet")
		return
	}
	f, err := runstore.OpenArtifact(st.Dir, r.PathValue("name"))
	if err != nil {
		switch {
		case errors.Is(err, runstore.ErrBadArtifactName):
			writeError(w, http.StatusBadRequest, "%v", err)
		case os.IsNotExist(err):
			writeError(w, http.StatusNotFound, "no such artifact")
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	http.ServeContent(w, r, fi.Name(), fi.ModTime(), f)
}

// handleHealth reports readiness: 200 while accepting jobs, 503 once
// draining (load balancers and the e2e harness key off this).
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.sched.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
