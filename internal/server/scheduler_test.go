package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"qfarith/internal/experiment"
)

// testJob builds a queued job without going through HTTP.
func testJob(id, client string, priority int) *Job {
	return newJob(id, JobRequest{Client: client},
		experiment.SweepSpec{Command: "fig3"}, priority, time.Now())
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s state = %s, want %s", j.ID, j.State(), want)
}

// TestSchedulerFairness drives a single worker with two competing
// clients and checks the dispatch interleaving: client b, though it
// submitted later, alternates with client a instead of waiting behind
// a's backlog.
func TestSchedulerFairness(t *testing.T) {
	started := make(chan string, 16)
	proceed := make(chan struct{})
	s := NewScheduler(1, 16, 0, func(ctx context.Context, j *Job) error {
		started <- j.ID
		select {
		case <-proceed:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	defer s.Drain(context.Background())

	a1 := testJob("a1", "alice", 5)
	if err := s.Submit(a1); err != nil {
		t.Fatal(err)
	}
	// Wait until a1 occupies the only worker so the rest of the
	// submissions land in the queue and are picked purely by policy.
	if got := <-started; got != "a1" {
		t.Fatalf("first dispatch %s, want a1", got)
	}
	for _, j := range []*Job{
		testJob("a2", "alice", 5), testJob("a3", "alice", 5), testJob("a4", "alice", 5),
		testJob("b1", "bob", 5), testJob("b2", "bob", 5),
	} {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}

	want := []string{"b1", "a2", "b2", "a3", "a4"}
	for _, w := range want {
		proceed <- struct{}{} // release the current job
		got := <-started
		if got != w {
			t.Fatalf("dispatch order: got %s, want %s", got, w)
		}
	}
	proceed <- struct{}{} // let the last job finish
}

// TestSchedulerPriority checks that priority dominates fairness and
// submission order.
func TestSchedulerPriority(t *testing.T) {
	started := make(chan string, 16)
	proceed := make(chan struct{})
	s := NewScheduler(1, 16, 0, func(ctx context.Context, j *Job) error {
		started <- j.ID
		select {
		case <-proceed:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	defer s.Drain(context.Background())

	if err := s.Submit(testJob("blocker", "alice", 5)); err != nil {
		t.Fatal(err)
	}
	<-started
	// Same client, later submission, higher priority: must jump ahead.
	if err := s.Submit(testJob("low", "alice", 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(testJob("high", "alice", 9)); err != nil {
		t.Fatal(err)
	}
	proceed <- struct{}{}
	if got := <-started; got != "high" {
		t.Fatalf("dispatched %s first, want high", got)
	}
	proceed <- struct{}{}
	if got := <-started; got != "low" {
		t.Fatalf("dispatched %s second, want low", got)
	}
	proceed <- struct{}{}
}

// TestSchedulerAdmissionControl fills the queue to capacity and checks
// the next submission is rejected with ErrQueueFull — and admitted
// again once the queue shrinks.
func TestSchedulerAdmissionControl(t *testing.T) {
	started := make(chan string, 16)
	proceed := make(chan struct{})
	s := NewScheduler(1, 2, 0, func(ctx context.Context, j *Job) error {
		started <- j.ID
		select {
		case <-proceed:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	defer s.Drain(context.Background())

	if err := s.Submit(testJob("running", "c", 5)); err != nil {
		t.Fatal(err)
	}
	<-started // occupies the worker; queue is now empty
	if err := s.Submit(testJob("q1", "c", 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(testJob("q2", "c", 5)); err != nil {
		t.Fatal(err)
	}
	if got := s.QueueDepth(); got != 2 {
		t.Fatalf("queue depth = %d, want 2", got)
	}
	if err := s.Submit(testJob("q3", "c", 5)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit at capacity = %v, want ErrQueueFull", err)
	}
	// Drain one slot and admission opens again.
	proceed <- struct{}{}
	<-started
	if err := s.Submit(testJob("q3", "c", 5)); err != nil {
		t.Fatalf("Submit after dequeue = %v, want admitted", err)
	}
	proceed <- struct{}{}
	<-started
	proceed <- struct{}{}
	<-started
	proceed <- struct{}{}
}

// TestSchedulerRetryTransient checks the bounded-retry contract:
// transient failures re-queue up to MaxRetries and then run to
// completion; non-transient failures never retry.
func TestSchedulerRetryTransient(t *testing.T) {
	attempts := 0
	done := make(chan struct{})
	s := NewScheduler(1, 16, 2, func(ctx context.Context, j *Job) error {
		attempts++
		if attempts <= 2 {
			return MarkTransient(fmt.Errorf("flaky io %d", attempts))
		}
		close(done)
		return nil
	})
	defer s.Drain(context.Background())

	j := testJob("flaky", "c", 5)
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	<-done
	waitState(t, j, StateDone)
	if st := j.Status(); st.Retries != 2 {
		t.Errorf("retries = %d, want 2", st.Retries)
	}

	// Exhausted budget: transient failures beyond MaxRetries fail.
	attempts2 := 0
	s2 := NewScheduler(1, 16, 1, func(ctx context.Context, j *Job) error {
		attempts2++
		return MarkTransient(errors.New("always flaky"))
	})
	defer s2.Drain(context.Background())
	j2 := testJob("doomed", "c", 5)
	if err := s2.Submit(j2); err != nil {
		t.Fatal(err)
	}
	waitState(t, j2, StateFailed)
	if attempts2 != 2 {
		t.Errorf("attempts = %d, want 2 (initial + 1 retry)", attempts2)
	}

	// Non-transient errors never retry.
	attempts3 := 0
	s3 := NewScheduler(1, 16, 5, func(ctx context.Context, j *Job) error {
		attempts3++
		return errors.New("hard failure")
	})
	defer s3.Drain(context.Background())
	j3 := testJob("hard", "c", 5)
	if err := s3.Submit(j3); err != nil {
		t.Fatal(err)
	}
	waitState(t, j3, StateFailed)
	if attempts3 != 1 {
		t.Errorf("attempts = %d, want 1", attempts3)
	}
}

// TestSchedulerCancel covers both cancellation paths: a queued job
// finalizes immediately; a running job's context is cancelled and it
// finalizes as cancelled (not interrupted) once the executor unwinds.
func TestSchedulerCancel(t *testing.T) {
	started := make(chan string, 16)
	proceed := make(chan struct{})
	s := NewScheduler(1, 16, 0, func(ctx context.Context, j *Job) error {
		started <- j.ID
		select {
		case <-proceed:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	defer s.Drain(context.Background())

	running := testJob("running", "c", 5)
	queued := testJob("queued", "c", 5)
	if err := s.Submit(running); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.Submit(queued); err != nil {
		t.Fatal(err)
	}

	if !s.Cancel("queued") {
		t.Fatal("Cancel(queued) not found")
	}
	waitState(t, queued, StateCancelled)
	if got := s.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after cancel = %d, want 0", got)
	}

	if !s.Cancel("running") {
		t.Fatal("Cancel(running) not found")
	}
	waitState(t, running, StateCancelled)

	if s.Cancel("running") {
		t.Error("Cancel on a terminal job reported found")
	}
	if s.Cancel("no-such-job") {
		t.Error("Cancel on an unknown job reported found")
	}
}

// TestSchedulerDrain checks the graceful-shutdown contract under -race:
// running jobs are interrupted via their contexts, queued jobs are
// cancelled, the drain blocks until workers exit, and later
// submissions are refused.
func TestSchedulerDrain(t *testing.T) {
	started := make(chan string, 16)
	s := NewScheduler(2, 16, 0, func(ctx context.Context, j *Job) error {
		started <- j.ID
		<-ctx.Done()
		return ctx.Err()
	})

	j1 := testJob("r1", "c", 5)
	j2 := testJob("r2", "c", 5)
	j3 := testJob("q1", "c", 5)
	for _, j := range []*Job{j1, j2, j3} {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	<-started
	<-started // j1, j2 running on the two workers; j3 queued

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	waitState(t, j1, StateInterrupted)
	waitState(t, j2, StateInterrupted)
	waitState(t, j3, StateCancelled)

	if err := s.Submit(testJob("late", "c", 5)); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after drain = %v, want ErrDraining", err)
	}
	if err := s.Drain(ctx); err == nil {
		t.Error("second Drain succeeded, want error")
	}
}
