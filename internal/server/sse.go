package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// SSE event types on the job event stream. Every stream opens with a
// state event, interleaves progress events as grid cells complete, and
// is closed by the server after the final state event of a terminal
// transition (clients can stop reconnect loops on stream end).
const (
	EventState    = "state"
	EventProgress = "progress"
)

// Event is one server-sent event: Type becomes the `event:` field and
// Data is JSON-encoded into `data:`.
type Event struct {
	Type string
	Data any
}

// broadcaster fans job events out to any number of SSE subscribers.
// Sends never block the producer: progress callbacks fire under the
// sweep's bookkeeping lock, so a stalled subscriber must shed events
// rather than stall the simulation. Each subscriber channel is a
// bounded buffer with drop-oldest overflow — a slow reader sees a
// thinned progress stream, and the handler synthesizes the final state
// from the job itself after close, so terminal delivery never depends
// on buffer space.
type broadcaster struct {
	mu     sync.Mutex
	subs   map[chan Event]struct{}
	closed bool
}

const subscriberBuffer = 64

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[chan Event]struct{})}
}

// subscribe registers a new listener. done is true when the stream has
// already closed: the channel is returned closed and drained.
func (b *broadcaster) subscribe() (ch chan Event, done bool) {
	ch = make(chan Event, subscriberBuffer)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(ch)
		return ch, true
	}
	b.subs[ch] = struct{}{}
	return ch, false
}

// unsubscribe removes a listener registered by subscribe. Idempotent;
// safe after close.
func (b *broadcaster) unsubscribe(ch chan Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.subs, ch)
}

// send delivers an event to every subscriber without blocking. When a
// subscriber's buffer is full the oldest buffered event is discarded to
// make room, preferring recent progress over stale.
func (b *broadcaster) send(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
	}
}

// close ends the stream: every subscriber's channel is closed after its
// buffered events, and future subscribers get an already-closed
// channel.
func (b *broadcaster) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
	}
	b.subs = nil
}

// writeEvent frames one SSE event and flushes it to the client.
func writeEvent(w http.ResponseWriter, fl http.Flusher, ev Event) error {
	payload, err := json.Marshal(ev.Data)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, payload); err != nil {
		return err
	}
	fl.Flush()
	return nil
}
