package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Submission errors the API layer maps to HTTP status codes.
var (
	// ErrQueueFull is admission control: the queue is at capacity
	// (HTTP 429). The check is keyed off the same per-priority queued
	// counts the qfarithd_sched_queue_depth gauge publishes.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining rejects submissions during graceful shutdown
	// (HTTP 503).
	ErrDraining = errors.New("server: scheduler draining")
)

// transientError marks an executor failure worth retrying: the job is
// re-queued (bounded by MaxRetries) and the next attempt resumes the
// run directory's checkpoints, so retried work is not recomputed.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient wraps an error so the scheduler retries the job.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// ExecFunc runs one job attempt. A ctx cancellation must propagate out
// as ctx.Err() (wrapped is fine) after flushing checkpoints — the
// scheduler distinguishes cancel/drain from failure by errors.Is(err,
// context.Canceled).
type ExecFunc func(ctx context.Context, j *Job) error

// Scheduler owns the job queue and the worker pool draining it.
//
// Dispatch order is priority first (higher wins), then per-client
// fairness (the client with the fewest dispatched jobs wins), then
// submission order. Selection is a linear scan over the queue under the
// lock: queues here are bounded and human-scale (MaxQueue defaults to
// tens), and a scan keeps the fairness key — a usage counter that
// changes on every dispatch — out of any heap invariant.
type Scheduler struct {
	exec       ExecFunc
	maxQueue   int
	maxRetries int

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*Job
	running  map[string]*Job
	usage    map[string]int // jobs dispatched per client, ever
	seq      uint64
	draining bool

	wg sync.WaitGroup
}

// NewScheduler starts a scheduler with the given worker count (minimum
// 1), queue capacity, and per-job transient retry budget. exec runs
// each attempt.
func NewScheduler(workers, maxQueue, maxRetries int, exec ExecFunc) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if maxQueue < 1 {
		maxQueue = 1
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	s := &Scheduler{
		exec:       exec,
		maxQueue:   maxQueue,
		maxRetries: maxRetries,
		running:    make(map[string]*Job),
		usage:      make(map[string]int),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Submit admits a job into the queue, or rejects it with ErrQueueFull /
// ErrDraining.
func (s *Scheduler) Submit(j *Job) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	if len(s.queue) >= s.maxQueue {
		s.mu.Unlock()
		jobsTotal("rejected").Inc()
		return ErrQueueFull
	}
	s.seq++
	j.mu.Lock()
	j.seq = s.seq
	j.mu.Unlock()
	s.queue = append(s.queue, j)
	queueDepthGauge(j.Priority).Inc()
	s.mu.Unlock()
	jobsTotal("submitted").Inc()
	s.cond.Signal()
	return nil
}

// Cancel cancels a job by ID: a queued job is removed and finalized
// immediately; a running job has its context cancelled and finalizes
// once the executor unwinds (checkpoints flushed). found reports
// whether the job was queued or running here; cancelling an
// already-terminal job is a no-op with found false.
func (s *Scheduler) Cancel(id string) (found bool) {
	s.mu.Lock()
	for i, j := range s.queue {
		if j.ID == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			queueDepthGauge(j.Priority).Dec()
			s.mu.Unlock()
			jobsTotal("cancelled").Inc()
			j.setState(StateCancelled, "cancelled while queued")
			return true
		}
	}
	if j, ok := s.running[id]; ok {
		j.mu.Lock()
		j.userCancelled = true
		cancel := j.cancelRunning
		j.mu.Unlock()
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	}
	s.mu.Unlock()
	return false
}

// QueueDepth returns the current number of queued jobs (all
// priorities).
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Draining reports whether Drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the scheduler down: queued jobs finalize as
// cancelled, running jobs get their contexts cancelled — the executor
// flushes checkpoints and unwinds, leaving resumable run directories —
// and Drain blocks until every worker exits or ctx expires. The drain
// duration is recorded in qfarithd_drain_seconds.
func (s *Scheduler) Drain(ctx context.Context) error {
	start := time.Now()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already draining")
	}
	s.draining = true
	dropped := s.queue
	s.queue = nil
	var cancels []func()
	for _, j := range s.running {
		j.mu.Lock()
		if j.cancelRunning != nil {
			cancels = append(cancels, j.cancelRunning)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	s.cond.Broadcast()

	for _, j := range dropped {
		queueDepthGauge(j.Priority).Dec()
		jobsTotal("cancelled").Inc()
		j.setState(StateCancelled, "daemon draining")
	}
	for _, cancel := range cancels {
		cancel()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		metricDrainSeconds.Observe(time.Since(start).Seconds())
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain timed out: %w", ctx.Err())
	}
}

// pickLocked selects and removes the best queued job: highest priority,
// then least-served client, then earliest submission. Caller holds mu.
func (s *Scheduler) pickLocked() *Job {
	best := -1
	for i, j := range s.queue {
		if best < 0 {
			best = i
			continue
		}
		b := s.queue[best]
		switch {
		case j.Priority != b.Priority:
			if j.Priority > b.Priority {
				best = i
			}
		case s.usage[j.Client] != s.usage[b.Client]:
			if s.usage[j.Client] < s.usage[b.Client] {
				best = i
			}
		case j.seq < b.seq:
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	j := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return j
}

// worker is the dispatch loop: wait for work, pick fairly, execute,
// finalize or re-queue on transient failure.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.draining {
			s.mu.Unlock()
			return
		}
		j := s.pickLocked()
		if j == nil {
			s.mu.Unlock()
			continue
		}
		queueDepthGauge(j.Priority).Dec()
		s.usage[j.Client]++
		s.running[j.ID] = j
		// Install the attempt's cancel before releasing the scheduler
		// lock: Drain and Cancel read it under the same lock, so there
		// is no window where a running job is invisible to them.
		ctx, cancel := context.WithCancel(context.Background())
		j.mu.Lock()
		j.cancelRunning = cancel
		j.mu.Unlock()
		s.mu.Unlock()

		s.runOne(ctx, cancel, j)

		s.mu.Lock()
		delete(s.running, j.ID)
		s.mu.Unlock()
	}
}

// runOne executes a single attempt of j and routes the outcome:
// terminal state, or re-queue for another attempt on transient failure.
func (s *Scheduler) runOne(ctx context.Context, cancel context.CancelFunc, j *Job) {
	defer cancel()
	j.mu.Lock()
	queuedFor := time.Since(j.submitted).Seconds()
	j.mu.Unlock()
	metricJobQueueSeconds.Observe(queuedFor)

	j.setState(StateRunning, "")
	metricRunning.Inc()
	start := time.Now()
	err := s.exec(ctx, j)
	metricJobRunSeconds.Observe(time.Since(start).Seconds())
	metricRunning.Dec()
	j.mu.Lock()
	j.cancelRunning = nil
	userCancelled := j.userCancelled
	j.mu.Unlock()

	switch {
	case err == nil:
		jobsTotal("done").Inc()
		j.setState(StateDone, "")
	case errors.Is(err, context.Canceled):
		if userCancelled {
			jobsTotal("cancelled").Inc()
			j.setState(StateCancelled, "cancelled while running")
		} else {
			// Drain: the run directory keeps its flushed checkpoints
			// and resumes via the CLI or an identical resubmission.
			jobsTotal("interrupted").Inc()
			j.setState(StateInterrupted, "interrupted by daemon drain")
		}
	case IsTransient(err) && s.retry(j):
		// Re-queued; the next attempt resumes from checkpoints.
	default:
		jobsTotal("failed").Inc()
		j.setState(StateFailed, err.Error())
	}
}

// retry re-queues a transiently failed job if its retry budget and the
// scheduler's lifecycle allow; it reports whether the job was
// re-queued.
func (s *Scheduler) retry(j *Job) bool {
	j.mu.Lock()
	if j.attempts >= s.maxRetries {
		j.mu.Unlock()
		return false
	}
	j.attempts++
	j.retries++
	j.mu.Unlock()

	// Broadcast the queued transition before the job becomes pickable:
	// once it is in the queue another worker may dispatch it
	// immediately, and subscribers must never see running→queued out of
	// order.
	j.setState(StateQueued, "")
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		jobsTotal("cancelled").Inc()
		j.setState(StateCancelled, "daemon draining")
		return true
	}
	s.seq++
	j.mu.Lock()
	j.seq = s.seq
	j.mu.Unlock()
	s.queue = append(s.queue, j)
	queueDepthGauge(j.Priority).Inc()
	s.mu.Unlock()
	jobsTotal("retried").Inc()
	s.cond.Signal()
	return true
}
