package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"qfarith/internal/backend"
	"qfarith/internal/compile"
	"qfarith/internal/experiment"
	"qfarith/internal/runstore"
	"qfarith/internal/telemetry"
)

// SweepExecutor runs jobs through the exact machinery the CLI uses:
// SweepSpec.Panels enumerates the grid, RunPanelCheckpointCtx computes
// it against a checkpoint log in an ordinary runstore run directory,
// and runstore.WriteArtifact writes the final CSVs. Nothing in the path
// knows it is running under a daemon, which is what makes an
// HTTP-submitted fixed-seed job byte-identical to the same sweep run
// from the command line — the invariant the daemon-e2e CI job checks.
type SweepExecutor struct {
	// Runner is the shared backend worker pool all jobs execute on.
	Runner *backend.Runner
	// DataDir holds one run directory per job, named by job ID.
	DataDir string
	// Backend is the backend name recorded in manifests (it must be the
	// name Runner was built from, as it is part of the config hash).
	Backend string
	// Workers bounds per-panel instance parallelism, like the CLI's
	// -workers; 0 = GOMAXPROCS.
	Workers int
}

// Execute runs one attempt of j to completion, cancellation, or error.
// The job's run directory is created on the first attempt and resumed —
// hash-verified, checkpoints restored — on retries, so transient
// failures never recompute finished points. A ctx cancellation unwinds
// after the checkpoint log has absorbed every completed point
// (AppendPoint syncs before acknowledging), leaving a directory the CLI
// can resume.
func (e *SweepExecutor) Execute(ctx context.Context, j *Job) error {
	dir := filepath.Join(e.DataDir, j.ID)
	hash, err := runstore.HashConfig(j.Spec)
	if err != nil {
		return err
	}
	panels, allKeys := j.Spec.Panels(compile.Config{}, e.Workers)

	var run *runstore.Run
	if _, statErr := os.Stat(filepath.Join(dir, "manifest.json")); statErr == nil {
		// A previous attempt claimed the directory; resume its
		// checkpoints. Resume re-verifies the config hash, so a stale
		// directory from an unrelated job is an error, not silent reuse.
		run, err = runstore.Resume(dir, hash)
	} else {
		run, err = runstore.Create(dir, runstore.Manifest{
			Command: j.Spec.Command, ConfigHash: hash, Seed: j.Spec.Seed,
			Backend: e.Backend, Pipeline: compile.Config{}.Hash(),
			GitDescribe: runstore.GitDescribe("."),
			StartTime:   time.Now().UTC(),
		})
		if err == nil {
			if serr := runstore.WriteSpec(dir, j.Spec); serr != nil {
				run.Close()
				return serr
			}
			if serr := runstore.WriteExpectedKeys(dir, allKeys); serr != nil {
				run.Close()
				return serr
			}
		}
	}
	if err != nil {
		// Run-directory claims and resumes fail on I/O hiccups and
		// leftover locks as readily as on real corruption; retrying is
		// cheap because nothing has been computed yet.
		return MarkTransient(err)
	}
	j.setDir(dir)
	defer func() {
		run.Close()
		// Snapshot process metrics beside the artifacts, as the CLI's
		// exit path does; best-effort.
		_ = telemetry.Default().WriteSnapshotFile(filepath.Join(dir, "telemetry.json"))
	}()

	j.resetProgress(len(allKeys))

	for _, pj := range panels {
		label := pj.Label
		res, err := experiment.RunPanelCheckpointCtx(ctx, e.Runner, pj.Config, label, run,
			func(p experiment.Progress) { j.observe(label, p) })
		if err != nil {
			return fmt.Errorf("panel %s: %w", label, err)
		}
		if err := runstore.WriteArtifact(filepath.Join(dir, label+".csv"), []byte(res.CSV())); err != nil {
			return MarkTransient(fmt.Errorf("panel %s: %w", label, err))
		}
	}
	return nil
}
