package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentHammer drives every registry operation from
// parallel workers: get-or-create races for the same and distinct
// metrics, counter/gauge/histogram recording, and concurrent readers
// (Prometheus exposition + snapshots) interleaved with writers. Run
// under -race this is the registry's thread-safety contract test; the
// CI race step executes it on every PR.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 16
		iters   = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the workers share one label set (create race on one
			// metric), the rest use per-worker labels (map-growth race).
			lbl := L("worker", "shared")
			if w%2 == 1 {
				lbl = L("worker", fmt.Sprintf("w%d", w))
			}
			for i := 0; i < iters; i++ {
				r.Counter("hammer_events_total", lbl).Inc()
				g := r.Gauge("hammer_inflight", lbl)
				g.Inc()
				r.Histogram("hammer_seconds", lbl).Observe(float64(i%10) / 1000)
				r.Span("hammer_span_seconds", lbl).End()
				g.Dec()
				if i%50 == 0 {
					// Readers interleave with writers.
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
					_ = r.Snapshot()
					_ = r.CounterSum("hammer_events_total")
				}
			}
		}(w)
	}
	wg.Wait()

	if got := r.CounterSum("hammer_events_total"); got != workers*iters {
		t.Errorf("events counted = %d, want %d (lost updates)", got, workers*iters)
	}
	shared := r.Counter("hammer_events_total", L("worker", "shared"))
	if got := shared.Value(); got != workers/2*iters {
		t.Errorf("shared-label counter = %d, want %d", got, workers/2*iters)
	}
	for w := 0; w < workers; w++ {
		if g := r.Gauge("hammer_inflight", L("worker", fmt.Sprintf("w%d", w))); w%2 == 1 && g.Value() != 0 {
			t.Errorf("worker %d gauge = %d after balanced inc/dec, want 0", w, g.Value())
		}
	}
	h := r.Histogram("hammer_seconds", L("worker", "shared"))
	if got := h.Count(); got != workers/2*iters {
		t.Errorf("shared histogram count = %d, want %d", got, workers/2*iters)
	}
}
