package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the opt-in debug HTTP server: Prometheus text on /metrics,
// the expvar JSON tree on /debug/vars, and the standard pprof handlers
// under /debug/pprof/. It binds its own listener and mux — nothing is
// registered on http.DefaultServeMux — so enabling it in one command
// never leaks handlers into another.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// publishExpvar exposes the default registry's snapshot under the
// expvar name "qfarith". expvar panics on duplicate names, so this is
// guarded for the lifetime of the process; a custom registry passed to
// Serve is exposed on its own /debug/vars via its snapshot handler
// regardless.
var publishExpvar = sync.OnceFunc(func() {
	expvar.Publish("qfarith", expvar.Func(func() any {
		return Default().Snapshot()
	}))
})

// NewMux returns the debug mux Serve binds: Prometheus text on
// /metrics, the expvar tree on /debug/vars, and the pprof handlers
// under /debug/pprof/. It is exposed separately so a process that
// already owns an HTTP listener — qfarithd's job API — can mount the
// debug surface on it instead of binding a second port: two servers
// racing for one address was the original port-conflict failure mode
// when the API address and -telemetry-addr coincided. nil selects the
// Default registry.
func NewMux(reg *Registry) *http.ServeMux {
	if reg == nil {
		reg = Default()
	}
	publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug server on addr ("localhost:6060", ":0", ...),
// exposing reg (nil selects the Default registry). The server runs on a
// background goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		reg = Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := NewMux(reg)
	s := &Server{
		reg: reg,
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close immediately shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
