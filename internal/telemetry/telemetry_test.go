package telemetry

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth")
	g.Set(3)
	g.Inc()
	g.Add(-2)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %d, want 2", got)
	}
}

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", L("kind", "x"), L("op", "add"))
	b := r.Counter("test_total", L("op", "add"), L("kind", "x")) // label order must not matter
	if a != b {
		t.Error("same (name, labels) in different order produced distinct counters")
	}
	c := r.Counter("test_total", L("op", "mul"), L("kind", "x"))
	if a == c {
		t.Error("distinct label values aliased to one counter")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_metric")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_metric")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "has-dash", "has space", "quoted\"name"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100) // 0.01 .. 1.00
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Sum(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("sum = %g, want 50.5", got)
	}
	for _, tc := range []struct{ q, want float64 }{{0.50, 0.50}, {0.90, 0.90}, {0.99, 0.99}} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("p%d = %g, want %g", int(tc.q*100), got, tc.want)
		}
	}
}

func TestHistogramWindowSlides(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds")
	// Fill the window with large values, then overwrite with small ones:
	// quantiles must reflect only the recent window.
	for i := 0; i < windowSize; i++ {
		h.Observe(100)
	}
	for i := 0; i < windowSize; i++ {
		h.Observe(0.001)
	}
	if got := h.Quantile(0.99); got != 0.001 {
		t.Errorf("p99 after window slide = %g, want 0.001 (old observations retained)", got)
	}
	if got := h.Count(); got != 2*windowSize {
		t.Errorf("cumulative count = %d, want %d", got, 2*windowSize)
	}
}

func TestEmptyHistogramQuantileIsZero(t *testing.T) {
	r := NewRegistry()
	if got := r.Histogram("test_seconds").Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	r := NewRegistry()
	sp := r.Span("test_span_seconds", L("stage", "unit"))
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d < time.Millisecond {
		t.Errorf("span duration %v, want >= 1ms", d)
	}
	h := r.Histogram("test_span_seconds", L("stage", "unit"))
	if h.Count() != 1 {
		t.Errorf("histogram count = %d, want 1", h.Count())
	}
	if h.Sum() < 0.001 {
		t.Errorf("histogram sum = %g, want >= 0.001", h.Sum())
	}
	var zero Span
	if zero.End() != 0 {
		t.Error("zero span End() should be a no-op returning 0")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_hits_total", L("cache", "transpile")).Add(7)
	r.Gauge("test_inflight").Set(2)
	r.Histogram("test_latency_seconds").Observe(0.003)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_hits_total counter",
		`test_hits_total{cache="transpile"} 7`,
		"# TYPE test_inflight gauge",
		"test_inflight 2",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.005"} 1`,
		`test_latency_seconds_bucket{le="+Inf"} 1`,
		"test_latency_seconds_sum 0.003",
		"test_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets are cumulative: a bound below the observation holds 0.
	if !strings.Contains(out, `test_latency_seconds_bucket{le="0.001"} 0`) {
		t.Errorf("bucket below observation should be 0:\n%s", out)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", L("path", `a\b"c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `test_total{path="a\\b\"c\n"} 1`; !strings.Contains(sb.String(), want) {
		t.Errorf("escaped label missing %q:\n%s", want, sb.String())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_points_total", L("kind", "fresh")).Add(3)
	r.Gauge("test_workers").Set(4)
	h := r.Histogram("test_point_seconds")
	h.Observe(0.5)
	h.Observe(1.5)

	data, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 || snap.Counters[0].Labels["kind"] != "fresh" {
		t.Errorf("counters = %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 4 {
		t.Errorf("gauges = %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	hs := snap.Histograms[0]
	if hs.Count != 2 || hs.Min != 0.5 || hs.Max != 1.5 || hs.P99 != 1.5 {
		t.Errorf("histogram snap = %+v", hs)
	}
	if snap.Timestamp.IsZero() {
		t.Error("snapshot timestamp is zero")
	}
}

func TestWriteSnapshotFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total").Add(9)
	path := filepath.Join(t.TempDir(), "telemetry.json")
	if err := r.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("telemetry.json is not valid JSON: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 9 {
		t.Errorf("round-tripped counters = %+v", snap.Counters)
	}
}

func TestCounterSumAcrossLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_cache_total", L("result", "hit")).Add(10)
	r.Counter("test_cache_total", L("result", "miss")).Add(5)
	r.Counter("test_other_total").Add(99)
	if got := r.CounterSum("test_cache_total"); got != 15 {
		t.Errorf("CounterSum = %d, want 15", got)
	}
	if got := r.CounterSum("test_absent_total"); got != 0 {
		t.Errorf("CounterSum of absent metric = %d, want 0", got)
	}
}

func TestHistogramSumAcrossLabels(t *testing.T) {
	r := NewRegistry()
	r.Histogram("test_stage_seconds", L("stage", "a")).Observe(1.5)
	r.Histogram("test_stage_seconds", L("stage", "a")).Observe(0.5)
	r.Histogram("test_stage_seconds", L("stage", "b")).Observe(3)
	r.Histogram("test_other_seconds").Observe(42)
	if got := r.HistogramSum("test_stage_seconds"); got != 5 {
		t.Errorf("HistogramSum = %g, want 5", got)
	}
	if got := r.HistogramSum("test_absent_seconds"); got != 0 {
		t.Errorf("HistogramSum of absent metric = %g, want 0", got)
	}
}
