package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_events_total").Add(12)
	r.Histogram("served_seconds").Observe(0.02)

	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"served_events_total 12",
		"served_seconds_count 1",
		`served_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["qfarith"]; !ok {
		t.Error("/debug/vars missing the published qfarith registry snapshot")
	}

	// pprof index and a cheap profile endpoint.
	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", nil); err == nil {
		t.Error("Serve on an unusable address should error")
	}
}

func TestServeCloseStopsServing(t *testing.T) {
	s, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	c := &http.Client{Timeout: 2 * time.Second}
	if _, err := c.Get(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
		t.Error("server still serving after Close")
	}
}
