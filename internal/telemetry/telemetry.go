// Package telemetry is a dependency-free metrics layer for the sweep
// and simulation hot paths: atomic counters, gauges, windowed
// histograms with quantile estimates, and labeled timer spans, all
// collected in a Registry that can render itself as Prometheus text
// exposition, as an expvar tree, or as a JSON snapshot.
//
// Design constraints, in priority order:
//
//  1. Zero hot-path cost. Counter.Add and Gauge.Set are single atomic
//     ops; instrumented packages resolve their metric handles once (at
//     package init or construction) so no map lookup or lock sits on a
//     simulation path. Recording allocates nothing.
//  2. No dependencies. Only the standard library, so the lowest layers
//     (internal/sim, internal/noise) can record metrics without a
//     dependency cycle or a vendored client library.
//  3. Bounded label cardinality by convention. Metric identity is
//     (name, sorted labels); every labeled call site must draw label
//     values from a small closed set (backend names, pipeline hashes,
//     "hit"/"miss"). Unbounded values — seeds, point indices, operand
//     values — must never become labels, or the registry grows without
//     limit and /metrics scrapes degrade.
//
// The package-level Default registry is what the instrumented internal
// packages record into; tests that need isolation construct their own
// Registry.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension. Keys and values must come from small
// closed sets (see the package comment's cardinality rule).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, in-flight
// workers). It may go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc and Dec adjust the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// windowSize is how many recent observations a histogram retains for
// exact quantile estimates. Sweep latency distributions are summarized
// over at most this many most-recent points.
const windowSize = 512

// defBounds are the default histogram bucket upper bounds (seconds),
// exponential from 100µs to 500s: wide enough for fsync latencies at
// the bottom and full-budget panel points at the top.
var defBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
}

// Histogram records a distribution of float64 observations (by
// convention, seconds). It keeps cumulative exponential buckets for
// Prometheus exposition plus a sliding window of the most recent
// observations for exact p50/p90/p99 estimates. Observe takes a mutex
// but never allocates after construction, so it is safe on warm paths;
// truly hot loops should aggregate locally and Observe once per batch.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // bucket upper bounds, ascending
	buckets []uint64  // len(bounds)+1; last bucket is +Inf
	count   uint64
	sum     float64
	min     float64
	max     float64
	window  []float64 // ring buffer of recent observations
	wpos    int
	sorted  []float64 // scratch for quantile computation
}

func newHistogram() *Histogram {
	return &Histogram{
		bounds:  defBounds,
		buckets: make([]uint64, len(defBounds)+1),
		window:  make([]float64, 0, windowSize),
		sorted:  make([]float64, 0, windowSize),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.window) < windowSize {
		h.window = append(h.window, v)
	} else {
		h.window[h.wpos] = v
		h.wpos = (h.wpos + 1) % windowSize
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the q-quantile (0 < q <= 1) over the sliding window
// of recent observations — exact over the window, not an interpolation
// from buckets. Returns 0 when nothing has been observed.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	n := len(h.window)
	if n == 0 {
		return 0
	}
	h.sorted = append(h.sorted[:0], h.window...)
	sort.Float64s(h.sorted)
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.sorted[idx]
}

// Span is a started timer that records its duration into a histogram
// when ended. It is a value type: starting and ending a span performs
// no allocation.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins a timer span recording into h.
func StartSpan(h *Histogram) Span { return Span{h: h, start: time.Now()} }

// End records the elapsed seconds into the span's histogram and returns
// the duration. A zero Span is a no-op.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}

// metricKind discriminates the three metric families inside a registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered instrument: a name, its sorted labels, and
// exactly one of the three value types.
type metric struct {
	name   string
	labels []Label // sorted by key
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds a process's metrics, keyed by (name, sorted labels).
// Lookup methods are get-or-create and safe for concurrent use; hold
// the returned handle rather than re-looking it up on a hot path.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // key = identity string
	order   []string           // registration order, for stable output
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the instrumented internal
// packages record into.
func Default() *Registry { return defaultRegistry }

// identity canonicalizes (name, labels) into a map key; labels are
// sorted by key so call-site order never splits a metric.
func identity(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range ls {
		sb.WriteByte('\x00')
		sb.WriteString(l.Key)
		sb.WriteByte('\x01')
		sb.WriteString(l.Value)
	}
	return sb.String(), ls
}

// validName enforces the Prometheus metric/label name charset; catching
// a bad name at registration beats emitting an unscrapable exposition.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) lookup(name string, kind metricKind, labels []Label) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label key %q on %q", l.Key, name))
		}
	}
	id, sorted := identity(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[id]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, labels: sorted, kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = newHistogram()
	}
	r.metrics[id] = m
	r.order = append(r.order, id)
	return m
}

// Counter returns the counter registered under (name, labels), creating
// it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, kindCounter, labels).counter
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, kindGauge, labels).gauge
}

// Histogram returns the histogram registered under (name, labels).
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(name, kindHistogram, labels).hist
}

// Span starts a labeled timer span recording into the named histogram:
//
//	defer reg.Span("qfarith_point_seconds", telemetry.L("panel", name)).End()
func (r *Registry) Span(name string, labels ...Label) Span {
	return StartSpan(r.Histogram(name, labels...))
}

// CounterSum sums the named counter across every label set — the
// aggregate view a summary line wants when the counter is split by a
// label (e.g. cache hits per pipeline).
func (r *Registry) CounterSum(name string) uint64 {
	var sum uint64
	for _, m := range r.snapshotMetrics() {
		if m.kind == kindCounter && m.name == name {
			sum += m.counter.Value()
		}
	}
	return sum
}

// HistogramSum sums the named histogram's observed totals across every
// label set — e.g. total seconds spent in a stage regardless of how the
// stage's spans were labeled.
func (r *Registry) HistogramSum(name string) float64 {
	var sum float64
	for _, m := range r.snapshotMetrics() {
		if m.kind == kindHistogram && m.name == name {
			sum += m.hist.Sum()
		}
	}
	return sum
}

// snapshotMetrics returns the registered metrics in registration order.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.metrics[id])
	}
	return out
}
