package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// This file renders a Registry outward: Prometheus text exposition for
// /metrics, and a JSON snapshot for telemetry.json / expvar.

// escapeLabelValue applies the Prometheus text-format escaping rules to
// a label value (backslash, double-quote, newline).
func escapeLabelValue(v string) string {
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// labelString renders {k="v",...} (empty string for no labels), with an
// optional extra label appended (used for histogram le buckets).
func labelString(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	if extraKey != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, extraKey, extraVal)
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatLe renders a bucket bound for the le label, trimming trailing
// zeros so bounds read naturally ("0.005", not "0.005000").
func formatLe(bound float64) string {
	if math.IsInf(bound, 1) {
		return "+Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", bound), "0"), ".")
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), grouped by metric name with
// one TYPE line per family. Metrics appear in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	typed := map[string]bool{}
	for _, m := range r.snapshotMetrics() {
		if !typed[m.name] {
			typed[m.name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
				return err
			}
		}
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, labelString(m.labels, "", ""), m.counter.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, labelString(m.labels, "", ""), m.gauge.Value()); err != nil {
				return err
			}
		case kindHistogram:
			if err := writePromHistogram(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, m *metric) error {
	h := m.hist
	h.mu.Lock()
	bounds := h.bounds
	buckets := append([]uint64(nil), h.buckets...)
	count := h.count
	sum := h.sum
	h.mu.Unlock()
	cum := uint64(0)
	for i := range buckets {
		cum += buckets[i]
		bound := math.Inf(1)
		if i < len(bounds) {
			bound = bounds[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.name, labelString(m.labels, "le", formatLe(bound)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", m.name, labelString(m.labels, "", ""), sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, labelString(m.labels, "", ""), count)
	return err
}

// CounterSnap is one counter in a Snapshot.
type CounterSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  uint64            `json:"value"`
}

// GaugeSnap is one gauge in a Snapshot.
type GaugeSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// HistogramSnap summarizes one histogram in a Snapshot: cumulative
// count and sum, extrema, and windowed quantiles (seconds).
type HistogramSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	Sum    float64           `json:"sum"`
	Min    float64           `json:"min"`
	Max    float64           `json:"max"`
	P50    float64           `json:"p50"`
	P90    float64           `json:"p90"`
	P99    float64           `json:"p99"`
}

// Snapshot is a point-in-time JSON-serializable view of a registry —
// the schema of the telemetry.json a durable run writes at exit.
type Snapshot struct {
	Timestamp  time.Time       `json:"timestamp"`
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot captures every registered metric. Entries are sorted by
// (name, labels) so snapshots of equal state are byte-identical.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Timestamp:  time.Now().UTC(),
		Counters:   []CounterSnap{},
		Gauges:     []GaugeSnap{},
		Histograms: []HistogramSnap{},
	}
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case kindCounter:
			s.Counters = append(s.Counters, CounterSnap{Name: m.name, Labels: labelMap(m.labels), Value: m.counter.Value()})
		case kindGauge:
			s.Gauges = append(s.Gauges, GaugeSnap{Name: m.name, Labels: labelMap(m.labels), Value: m.gauge.Value()})
		case kindHistogram:
			h := m.hist
			h.mu.Lock()
			hs := HistogramSnap{
				Name: m.name, Labels: labelMap(m.labels),
				Count: h.count, Sum: h.sum,
				P50: h.quantileLocked(0.50), P90: h.quantileLocked(0.90), P99: h.quantileLocked(0.99),
			}
			if h.count > 0 {
				hs.Min, hs.Max = h.min, h.max
			}
			h.mu.Unlock()
			s.Histograms = append(s.Histograms, hs)
		}
	}
	sortSnaps(s.Counters, func(c CounterSnap) string { return c.Name + "\x00" + flatLabels(c.Labels) })
	sortSnaps(s.Gauges, func(g GaugeSnap) string { return g.Name + "\x00" + flatLabels(g.Labels) })
	sortSnaps(s.Histograms, func(h HistogramSnap) string { return h.Name + "\x00" + flatLabels(h.Labels) })
	return s
}

func flatLabels(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(m[k])
		sb.WriteByte(';')
	}
	return sb.String()
}

func sortSnaps[T any](s []T, key func(T) string) {
	sort.Slice(s, func(i, j int) bool { return key(s[i]) < key(s[j]) })
}

// SnapshotJSON renders the registry snapshot as indented JSON.
func (r *Registry) SnapshotJSON() ([]byte, error) {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("telemetry: marshal snapshot: %w", err)
	}
	return append(data, '\n'), nil
}

// WriteSnapshotFile writes the registry snapshot to path as JSON via a
// same-directory temp file and rename, so a reader never observes a
// partial snapshot.
func (r *Registry) WriteSnapshotFile(path string) error {
	data, err := r.SnapshotJSON()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("telemetry: write snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("telemetry: close snapshot: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return fmt.Errorf("telemetry: chmod snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("telemetry: rename snapshot: %w", err)
	}
	return nil
}
