// Package testutil holds shared test helpers: computing the full unitary
// of a circuit by simulating basis states, random state generation, and
// tolerance constants.
package testutil

import (
	"math/rand/v2"

	"qfarith/internal/circuit"
	"qfarith/internal/mat"
	"qfarith/internal/sim"
)

// Tol is the default comparison tolerance for unitary/state checks.
const Tol = 1e-9

// CircuitUnitary computes the dense unitary implemented by c over n
// qubits (n >= c.NumQubits) by applying c to every basis state. Columns
// follow the simulator's index convention (qubit 0 = least significant
// bit).
func CircuitUnitary(c *circuit.Circuit, n int) *mat.Matrix {
	dim := 1 << uint(n)
	u := mat.New(dim, dim)
	for col := 0; col < dim; col++ {
		st := sim.NewState(n)
		st.SetBasis(col)
		st.ApplyCircuit(c)
		for row := 0; row < dim; row++ {
			u.Set(row, col, st.Amps()[row])
		}
	}
	return u
}

// RandomState returns a normalized random n-qubit state drawn from rng.
func RandomState(rng *rand.Rand, n int) *sim.State {
	st := sim.NewState(n)
	amps := make([]complex128, st.Dim())
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	st.SetAmplitudes(amps)
	return st
}

// NewRand returns a deterministic RNG for tests.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}
