package transpile_test

import (
	"math"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/mat"
	"qfarith/internal/qft"
	"qfarith/internal/testutil"
	"qfarith/internal/transpile"
)

// checkEquivalent asserts that the transpiled form of c implements the
// same unitary up to global phase. (The peephole optimizer's own
// equivalence tests live with its passes in internal/compile.)
func checkEquivalent(t *testing.T, c *circuit.Circuit, n int, label string) {
	t.Helper()
	want := testutil.CircuitUnitary(c, n)
	r := transpile.Transpile(c)
	for _, op := range r.Ops {
		if !gate.IsNative(op.Kind) {
			t.Fatalf("%s: non-native gate %s in transpiled output", label, op.Kind)
		}
	}
	got := testutil.CircuitUnitary(r.Circuit(), n)
	if !mat.EqualUpToGlobalPhase(got, want, 1e-9) {
		t.Fatalf("%s: transpiled unitary differs from source", label)
	}
}

func TestSingleGateDecompositions(t *testing.T) {
	th := 2 * math.Pi / 32
	cases := []struct {
		k gate.Kind
		q []int
	}{
		{gate.I, []int{0}}, {gate.X, []int{0}}, {gate.Y, []int{0}},
		{gate.Z, []int{0}}, {gate.H, []int{0}}, {gate.S, []int{0}},
		{gate.Sdg, []int{0}}, {gate.T, []int{0}}, {gate.Tdg, []int{0}},
		{gate.SX, []int{0}}, {gate.SXdg, []int{0}}, {gate.RX, []int{0}},
		{gate.RY, []int{0}}, {gate.RZ, []int{0}}, {gate.P, []int{0}},
		{gate.CX, []int{0, 1}}, {gate.CZ, []int{0, 1}}, {gate.CP, []int{0, 1}},
		{gate.CH, []int{0, 1}}, {gate.CRY, []int{0, 1}}, {gate.SWAP, []int{0, 1}},
		{gate.CCX, []int{0, 1, 2}}, {gate.CCP, []int{0, 1, 2}}, {gate.CCH, []int{0, 1, 2}},
	}
	for _, cse := range cases {
		n := len(cse.q)
		c := circuit.New(n)
		c.Append(cse.k, th, cse.q...)
		checkEquivalent(t, c, n, cse.k.Name())
		// Also with permuted qubit order where arity allows, to catch
		// control/target mixups.
		if n == 2 {
			c2 := circuit.New(2)
			c2.Append(cse.k, th, 1, 0)
			checkEquivalent(t, c2, 2, cse.k.Name()+"(reversed)")
		}
		if n == 3 {
			c3 := circuit.New(3)
			c3.Append(cse.k, th, 2, 0, 1)
			checkEquivalent(t, c3, 3, cse.k.Name()+"(permuted)")
		}
	}
}

func TestTranspiledQFTEquivalent(t *testing.T) {
	for w := 2; w <= 4; w++ {
		for _, d := range []int{1, 2, qft.Full} {
			checkEquivalent(t, qft.New(w, d), w, "qft")
		}
	}
}

func TestTranspiledQFAEquivalent(t *testing.T) {
	c := arith.NewQFA(2, 3, arith.DefaultConfig())
	checkEquivalent(t, c, 5, "qfa")
}

func TestTranspiledCQFAEquivalent(t *testing.T) {
	c := circuit.New(5)
	arith.CQFAGates(c, 4, []int{0}, []int{1, 2, 3}, arith.DefaultConfig())
	checkEquivalent(t, c, 5, "cqfa")
}

func TestSpansCoverAllOps(t *testing.T) {
	c := arith.NewQFA(3, 4, arith.Config{Depth: 2, AddCut: arith.FullAdd})
	r := transpile.Transpile(c)
	if len(r.Spans) != len(c.Ops) || len(r.Source) != len(c.Ops) {
		t.Fatalf("span/source bookkeeping sizes wrong: %d spans for %d ops", len(r.Spans), len(c.Ops))
	}
	pos := 0
	for i, sp := range r.Spans {
		if sp.Start != pos {
			t.Fatalf("span %d starts at %d, want %d (spans must tile the op list)", i, sp.Start, pos)
		}
		if sp.End < sp.Start {
			t.Fatalf("span %d inverted", i)
		}
		pos = sp.End
	}
	if pos != len(r.Ops) {
		t.Fatalf("spans end at %d, ops end at %d", pos, len(r.Ops))
	}
}

func TestNativeGateCountsForCostModelGates(t *testing.T) {
	// The raw native expansions must agree with the Table I cost model
	// for the 2q totals (CX counts are what the cost model pins down).
	cases := []struct {
		k      gate.Kind
		qubits []int
		wantCX int
	}{
		{gate.H, []int{0}, 0},
		{gate.CP, []int{0, 1}, 2},
		{gate.CH, []int{0, 1}, 1},
		{gate.CCP, []int{0, 1, 2}, 8},
	}
	for _, cse := range cases {
		c := circuit.New(len(cse.qubits))
		c.Append(cse.k, math.Pi/7, cse.qubits...)
		r := transpile.Transpile(c)
		cx := 0
		for _, op := range r.Ops {
			if op.Kind == gate.CX {
				cx++
			}
		}
		if cx != cse.wantCX {
			t.Errorf("%s: %d CX, want %d", cse.k, cx, cse.wantCX)
		}
	}
}

// TestTableIQFA reproduces the paper's Table I QFA(n=8) column exactly:
// 7-qubit addend, 8-qubit sum register, full addition step, AQFT depths
// 1, 2, 3, 4 and 7 (full).
func TestTableIQFA(t *testing.T) {
	want1q := map[int]int{1: 163, 2: 199, 3: 229, 4: 253, 7: 289}
	want2q := map[int]int{1: 98, 2: 122, 3: 142, 4: 158, 7: 182}
	for _, d := range []int{1, 2, 3, 4, 7} {
		c := arith.NewQFA(7, 8, arith.Config{Depth: d, AddCut: arith.FullAdd})
		one, two := transpile.PaperCounts(c)
		if one != want1q[d] || two != want2q[d] {
			t.Errorf("QFA d=%d: counts (%d, %d), want (%d, %d)", d, one, two, want1q[d], want2q[d])
		}
	}
}

// TestTableIQFM reproduces the paper's Table I QFM(n=4) column exactly:
// 4x4 multiplier with an 8-qubit product register and four 5-qubit cQFA
// windows, at AQFT depths 1, 2 and full.
func TestTableIQFM(t *testing.T) {
	want1q := map[int]int{1: 1032, 2: 1248, qft.Full: 1464}
	want2q := map[int]int{1: 744, 2: 936, qft.Full: 1128}
	for _, d := range []int{1, 2, qft.Full} {
		c := arith.NewQFM(4, 4, arith.Config{Depth: d, AddCut: arith.FullAdd})
		one, two := transpile.PaperCounts(c)
		if one != want1q[d] || two != want2q[d] {
			t.Errorf("QFM d=%d: counts (%d, %d), want (%d, %d)", d, one, two, want1q[d], want2q[d])
		}
	}
}

func TestPaperCostAllKinds(t *testing.T) {
	// Every kind in the gate set must have a defined paper cost.
	kinds := []gate.Kind{
		gate.I, gate.X, gate.Y, gate.Z, gate.H, gate.S, gate.Sdg, gate.T,
		gate.Tdg, gate.SX, gate.SXdg, gate.RX, gate.RY, gate.RZ, gate.P,
		gate.CX, gate.CZ, gate.CP, gate.CH, gate.CRY, gate.SWAP,
		gate.CCX, gate.CCP, gate.CCH,
	}
	var p transpile.PaperCost
	for _, k := range kinds {
		p.Add(k) // must not panic
	}
	if p.One == 0 || p.Two == 0 {
		t.Error("cost accumulation produced zero totals")
	}
}
