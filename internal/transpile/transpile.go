// Package transpile lowers circuits to the IBM superconducting native
// basis {id, x, rz, sx, cx} the paper targets (Qiskit's basis for the
// noise simulations), tracks which native gates implement which source
// gate (so noise can be injected at physical-gate positions), and
// provides the gate-cost model that reproduces the paper's Table I.
// Cross-gate optimization lives in internal/compile's pass pipeline.
package transpile

import (
	"fmt"
	"math"
	"sync"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
)

// Span locates the native expansion of one source op inside Result.Ops.
type Span struct {
	Start, End int // half-open index range into Result.Ops
}

// Result is a lowered circuit plus the source-op bookkeeping needed to
// interleave noise with logical-gate fast paths.
type Result struct {
	NumQubits int
	Ops       []circuit.Op // native gates only
	Source    []circuit.Op // the original logical ops
	Spans     []Span       // Spans[i] covers Source[i]'s native expansion

	fuseOnce sync.Once
	fused    *FusedProgram
}

// Fused returns the fused execution plan for r's source ops, computing
// it on first use. Results are shared across goroutines by the backend
// transpile cache, so the plan is memoized under a sync.Once.
func (r *Result) Fused() *FusedProgram {
	r.fuseOnce.Do(func() { r.fused = Fuse(r) })
	return r.fused
}

// Counts tallies the native gates by kind.
func (r *Result) Counts() map[gate.Kind]int {
	out := make(map[gate.Kind]int)
	for _, op := range r.Ops {
		out[op.Kind]++
	}
	return out
}

// CountByArity returns the native (1q, 2q) gate totals.
func (r *Result) CountByArity() (one, two int) {
	for _, op := range r.Ops {
		if op.Kind.Arity() == 1 {
			one++
		} else {
			two++
		}
	}
	return
}

// Circuit reassembles the native ops as a standalone circuit.
func (r *Result) Circuit() *circuit.Circuit {
	c := circuit.New(r.NumQubits)
	c.Ops = append(c.Ops, r.Ops...)
	return c
}

// Transpile lowers every op of c to the native basis, preserving the
// unitary up to global phase. No cross-gate optimization is performed so
// Spans stay exact; use Optimize for a peephole-cleaned copy.
func Transpile(c *circuit.Circuit) *Result {
	r := &Result{NumQubits: c.NumQubits}
	for _, op := range c.Ops {
		start := len(r.Ops)
		r.Ops = appendNative(r.Ops, op)
		r.Source = append(r.Source, op)
		r.Spans = append(r.Spans, Span{Start: start, End: len(r.Ops)})
	}
	return r
}

// appendNative appends the native expansion of op to dst.
func appendNative(dst []circuit.Op, op circuit.Op) []circuit.Op {
	q := op.Qubits
	th := op.Theta
	switch op.Kind {
	case gate.I, gate.X, gate.SX, gate.RZ, gate.CX:
		return append(dst, op)
	case gate.P:
		return append(dst, circuit.NewOp(gate.RZ, th, q[0]))
	case gate.Z:
		return append(dst, circuit.NewOp(gate.RZ, math.Pi, q[0]))
	case gate.S:
		return append(dst, circuit.NewOp(gate.RZ, math.Pi/2, q[0]))
	case gate.Sdg:
		return append(dst, circuit.NewOp(gate.RZ, -math.Pi/2, q[0]))
	case gate.T:
		return append(dst, circuit.NewOp(gate.RZ, math.Pi/4, q[0]))
	case gate.Tdg:
		return append(dst, circuit.NewOp(gate.RZ, -math.Pi/4, q[0]))
	case gate.Y:
		// Y ≅ Z·X (up to global phase i): circuit order X then RZ(π).
		return append(dst,
			circuit.NewOp(gate.X, 0, q[0]),
			circuit.NewOp(gate.RZ, math.Pi, q[0]))
	case gate.H:
		// H ≅ RZ(π/2)·SX·RZ(π/2) up to global phase.
		return append(dst,
			circuit.NewOp(gate.RZ, math.Pi/2, q[0]),
			circuit.NewOp(gate.SX, 0, q[0]),
			circuit.NewOp(gate.RZ, math.Pi/2, q[0]))
	case gate.SXdg:
		return append(dst,
			circuit.NewOp(gate.RZ, math.Pi, q[0]),
			circuit.NewOp(gate.SX, 0, q[0]),
			circuit.NewOp(gate.RZ, math.Pi, q[0]))
	case gate.RX:
		// RX(θ) = H·RZ(θ)·H; expand the Hadamards natively.
		dst = appendNative(dst, circuit.NewOp(gate.H, 0, q[0]))
		dst = append(dst, circuit.NewOp(gate.RZ, th, q[0]))
		return appendNative(dst, circuit.NewOp(gate.H, 0, q[0]))
	case gate.RY:
		// RY(θ) = RZ(π/2)∘RX(θ)∘RZ(-π/2) as operators; circuit order
		// RZ(-π/2), RX(θ), RZ(π/2).
		dst = append(dst, circuit.NewOp(gate.RZ, -math.Pi/2, q[0]))
		dst = appendNative(dst, circuit.NewOp(gate.RX, th, q[0]))
		return append(dst, circuit.NewOp(gate.RZ, math.Pi/2, q[0]))
	case gate.CZ:
		dst = appendNative(dst, circuit.NewOp(gate.H, 0, q[1]))
		dst = append(dst, circuit.NewOp(gate.CX, 0, q[0], q[1]))
		return appendNative(dst, circuit.NewOp(gate.H, 0, q[1]))
	case gate.CP:
		// CP(θ) = P(θ/2)a · CX · P(-θ/2)b · CX · P(θ/2)b  (2 CX + 3 RZ).
		return append(dst,
			circuit.NewOp(gate.RZ, th/2, q[0]),
			circuit.NewOp(gate.CX, 0, q[0], q[1]),
			circuit.NewOp(gate.RZ, -th/2, q[1]),
			circuit.NewOp(gate.CX, 0, q[0], q[1]),
			circuit.NewOp(gate.RZ, th/2, q[1]))
	case gate.CH:
		// Qiskit's decomposition: A·CX·A† with A = S·H·T on the target:
		// circuit order s,h,t, cx, tdg,h,sdg  (1 CX + 6 cost-model 1q).
		dst = append(dst, circuit.NewOp(gate.RZ, math.Pi/2, q[1]))
		dst = appendNative(dst, circuit.NewOp(gate.H, 0, q[1]))
		dst = append(dst,
			circuit.NewOp(gate.RZ, math.Pi/4, q[1]),
			circuit.NewOp(gate.CX, 0, q[0], q[1]),
			circuit.NewOp(gate.RZ, -math.Pi/4, q[1]))
		dst = appendNative(dst, circuit.NewOp(gate.H, 0, q[1]))
		return append(dst, circuit.NewOp(gate.RZ, -math.Pi/2, q[1]))
	case gate.CRY:
		// CRY(θ) = RY(θ/2)t · CX · RY(-θ/2)t · CX.
		dst = appendNative(dst, circuit.NewOp(gate.RY, th/2, q[1]))
		dst = append(dst, circuit.NewOp(gate.CX, 0, q[0], q[1]))
		dst = appendNative(dst, circuit.NewOp(gate.RY, -th/2, q[1]))
		return append(dst, circuit.NewOp(gate.CX, 0, q[0], q[1]))
	case gate.SWAP:
		return append(dst,
			circuit.NewOp(gate.CX, 0, q[0], q[1]),
			circuit.NewOp(gate.CX, 0, q[1], q[0]),
			circuit.NewOp(gate.CX, 0, q[0], q[1]))
	case gate.CCP:
		// CCP(θ) = CP(θ/2)(b,t) · CX(a,b) · CP(-θ/2)(b,t) · CX(a,b) ·
		//          CP(θ/2)(a,t)  (8 CX + 9 RZ).
		dst = appendNative(dst, circuit.NewOp(gate.CP, th/2, q[1], q[2]))
		dst = append(dst, circuit.NewOp(gate.CX, 0, q[0], q[1]))
		dst = appendNative(dst, circuit.NewOp(gate.CP, -th/2, q[1], q[2]))
		dst = append(dst, circuit.NewOp(gate.CX, 0, q[0], q[1]))
		return appendNative(dst, circuit.NewOp(gate.CP, th/2, q[0], q[2]))
	case gate.CCX:
		// Canonical 6-CX Toffoli.
		a, b, t := q[0], q[1], q[2]
		dst = appendNative(dst, circuit.NewOp(gate.H, 0, t))
		dst = append(dst, circuit.NewOp(gate.CX, 0, b, t))
		dst = append(dst, circuit.NewOp(gate.RZ, -math.Pi/4, t))
		dst = append(dst, circuit.NewOp(gate.CX, 0, a, t))
		dst = append(dst, circuit.NewOp(gate.RZ, math.Pi/4, t))
		dst = append(dst, circuit.NewOp(gate.CX, 0, b, t))
		dst = append(dst, circuit.NewOp(gate.RZ, -math.Pi/4, t))
		dst = append(dst, circuit.NewOp(gate.CX, 0, a, t))
		dst = append(dst, circuit.NewOp(gate.RZ, math.Pi/4, b))
		dst = append(dst, circuit.NewOp(gate.RZ, math.Pi/4, t))
		dst = appendNative(dst, circuit.NewOp(gate.H, 0, t))
		dst = append(dst, circuit.NewOp(gate.CX, 0, a, b))
		dst = append(dst, circuit.NewOp(gate.RZ, math.Pi/4, a))
		dst = append(dst, circuit.NewOp(gate.RZ, -math.Pi/4, b))
		return append(dst, circuit.NewOp(gate.CX, 0, a, b))
	case gate.CCH:
		// CCH = A(t)·CCX·A†(t) with A = S·H·T, reusing the CH pattern.
		dst = append(dst, circuit.NewOp(gate.RZ, math.Pi/2, q[2]))
		dst = appendNative(dst, circuit.NewOp(gate.H, 0, q[2]))
		dst = append(dst, circuit.NewOp(gate.RZ, math.Pi/4, q[2]))
		dst = appendNative(dst, circuit.NewOp(gate.CCX, 0, q[0], q[1], q[2]))
		dst = append(dst, circuit.NewOp(gate.RZ, -math.Pi/4, q[2]))
		dst = appendNative(dst, circuit.NewOp(gate.H, 0, q[2]))
		return append(dst, circuit.NewOp(gate.RZ, -math.Pi/2, q[2]))
	default:
		panic(fmt.Sprintf("transpile: no native decomposition for %s", op.Kind))
	}
}

// The peephole optimizer that used to live here (Optimize) is now the
// cancel-inverses / fold-angles / prune-zero-angle passes of
// internal/compile, where each rule is independently configurable,
// verifiable, and observable. This package keeps the pure lowering:
// Transpile never optimizes across gates, so Spans stay exact.
