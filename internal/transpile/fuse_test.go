package transpile

import (
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/qft"
)

// TestFuseSegmentsPartitionSource checks the structural invariants the
// trajectory engine relies on: segments tile the source op list exactly,
// SegOfSrc is consistent with the tiling, diagonal segments carry terms
// only for their own source range, and 1q segments really are runs on a
// single qubit.
func TestFuseSegmentsPartitionSource(t *testing.T) {
	circuits := []struct {
		name string
		res  *Result
	}{
		{"qfa-d3", Transpile(arith.NewQFA(3, 4, arith.Config{Depth: 3, AddCut: arith.FullAdd}))},
		{"qfa-full", Transpile(arith.NewQFA(3, 4, arith.Config{Depth: qft.Full, AddCut: arith.FullAdd}))},
		{"qfm-d2", Transpile(arith.NewQFM(3, 3, arith.Config{Depth: 2, AddCut: arith.FullAdd}))},
	}
	for _, c := range circuits {
		fp := c.res.Fused()
		if len(fp.SegOfSrc) != len(c.res.Source) {
			t.Fatalf("%s: SegOfSrc covers %d ops, source has %d", c.name, len(fp.SegOfSrc), len(c.res.Source))
		}
		next := 0
		for si, seg := range fp.Segments {
			if seg.SrcStart != next {
				t.Fatalf("%s: segment %d starts at %d, want %d", c.name, si, seg.SrcStart, next)
			}
			if seg.SrcEnd <= seg.SrcStart {
				t.Fatalf("%s: segment %d is empty", c.name, si)
			}
			for i := seg.SrcStart; i < seg.SrcEnd; i++ {
				if fp.SegOfSrc[i] != si {
					t.Fatalf("%s: SegOfSrc[%d] = %d, want %d", c.name, i, fp.SegOfSrc[i], si)
				}
			}
			switch seg.Kind {
			case SegDiag:
				full := seg.TermsFor(seg.SrcStart, seg.SrcEnd)
				if len(full) != len(seg.Terms) {
					t.Fatalf("%s: segment %d TermsFor(full) drops terms", c.name, si)
				}
				for _, term := range seg.Terms {
					if term.Src < seg.SrcStart || term.Src >= seg.SrcEnd {
						t.Fatalf("%s: segment %d term Src %d outside [%d,%d)",
							c.name, si, term.Src, seg.SrcStart, seg.SrcEnd)
					}
				}
			case Seg1Q:
				if seg.SrcEnd-seg.SrcStart < 2 {
					t.Fatalf("%s: segment %d fuses a single 1q gate", c.name, si)
				}
				for i := seg.SrcStart; i < seg.SrcEnd; i++ {
					op := c.res.Source[i]
					if op.Kind.Arity() != 1 || op.Qubits[0] != seg.Qubit {
						t.Fatalf("%s: segment %d contains %v, not a %d-qubit run",
							c.name, si, op, seg.Qubit)
					}
				}
			}
			next = seg.SrcEnd
		}
		if next != len(c.res.Source) {
			t.Fatalf("%s: segments end at %d, source has %d ops", c.name, next, len(c.res.Source))
		}
	}
}
