package transpile

import (
	"fmt"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
)

// The paper's Table I tallies gates after decomposing the controlled
// rotations to the native basis but counting Hadamards as single 1q
// gates (Qiskit reports 'h' as one gate when it survives as a unit).
// PaperCost captures that convention: it is the cost model under which
// our generated circuits reproduce Table I exactly.
//
//	gate | 1q | 2q(CX)
//	H    |  1 |  0
//	CP   |  3 |  2
//	CH   |  6 |  1
//	CCP  |  9 |  8
//
// Native 1q gates count 1/0 and CX counts 0/1. CCX and CCH use their
// standard decompositions (2 H + 7 RZ + 6 CX, and CCX + 6 extra 1q).
type PaperCost struct{ One, Two int }

// Add accumulates the cost of one more op.
func (p *PaperCost) Add(k gate.Kind) {
	switch k {
	case gate.I, gate.X, gate.Y, gate.Z, gate.S, gate.Sdg, gate.T, gate.Tdg,
		gate.SX, gate.SXdg, gate.RX, gate.RY, gate.RZ, gate.P, gate.H:
		p.One++
	case gate.CX:
		p.Two++
	case gate.CZ:
		p.One += 2
		p.Two++
	case gate.CP:
		p.One += 3
		p.Two += 2
	case gate.CH:
		p.One += 6
		p.Two++
	case gate.CRY:
		p.One += 2
		p.Two += 2
	case gate.SWAP:
		p.Two += 3
	case gate.CCP:
		p.One += 9
		p.Two += 8
	case gate.CCX:
		p.One += 9 // 2 H + 7 RZ in the canonical 6-CX decomposition
		p.Two += 6
	case gate.CCH:
		p.One += 15 // CCX + S,H,T,Tdg,H,Sdg
		p.Two += 6
	default:
		panic(fmt.Sprintf("transpile: no paper cost for %s", k))
	}
}

// PaperCounts returns Table I-convention (1q, 2q) gate counts for c.
func PaperCounts(c *circuit.Circuit) (one, two int) {
	var p PaperCost
	for _, op := range c.Ops {
		p.Add(op.Kind)
	}
	return p.One, p.Two
}
