package transpile

import (
	"fmt"
	"math"
	"math/cmplx"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
)

// The trajectory hot path executes the *source* (logical) ops of a
// Result whenever a stretch of the circuit carries no noise event, so
// that is the op stream worth fusing. QFT arithmetic is dominated by
// runs of diagonal gates — the controlled-phase ladders of Draper's
// adder and the Ruiz-Perez multiplier — and a maximal run of diagonal
// ops can be applied to a statevector in one pass (sim.ApplyDiagTerms)
// instead of one pass per gate. Fusion below is structured so that
// diagonal runs remain bit-exact with op-by-op execution: terms are
// multiplied per amplitude in op order, never pre-combined into a
// single factor.

// SegmentKind classifies a fused-program segment.
type SegmentKind uint8

const (
	// SegOp is a single source op executed through its own kernel.
	SegOp SegmentKind = iota
	// SegDiag is a maximal run of ≥2 diagonal source ops executed as one
	// amplitude pass.
	SegDiag
	// Seg1Q is a run of ≥2 adjacent single-qubit gates on the same qubit
	// collapsed into one 2x2 matrix (pairwise matrix products).
	Seg1Q
)

// Segment is one unit of a FusedProgram: a contiguous range of source
// ops together with the fused form that executes them.
type Segment struct {
	Kind SegmentKind
	// SrcStart, SrcEnd is the half-open source-op range the segment
	// covers; PhysStart, PhysEnd is the matching native-op range.
	SrcStart, SrcEnd   int
	PhysStart, PhysEnd int
	// Terms holds the diagonal phase terms of a SegDiag, in op order,
	// sorted by Src.
	Terms []circuit.DiagTerm
	// Qubit and M describe a Seg1Q: the fused 2x2 unitary
	// (m00,m01,m10,m11) acting on Qubit.
	Qubit int
	M     [4]complex128
}

// TermsFor returns the sub-run of Terms lowered from source ops in
// [lo, hi). Because ApplyDiagTerms multiplies per amplitude in term
// order, applying TermsFor(a,b) then TermsFor(b,c) is bit-exact with
// applying TermsFor(a,c) in one pass — diagonal runs can be split at
// any op boundary (e.g. a noise checkpoint) for free.
func (s *Segment) TermsFor(lo, hi int) []circuit.DiagTerm {
	a, b := 0, len(s.Terms)
	for a < b && s.Terms[a].Src < lo {
		a++
	}
	c := b
	for c > a && s.Terms[c-1].Src >= hi {
		c--
	}
	return s.Terms[a:c]
}

// FusedProgram is the fused execution plan of a Result's source ops.
type FusedProgram struct {
	Segments []Segment
	// SegOfSrc maps a source-op index to the segment containing it.
	SegOfSrc []int
}

// Fuse computes the fused program for r's source ops: maximal runs of
// diagonal gates become SegDiag segments, runs of same-qubit 1q gates
// become Seg1Q segments, and everything else stays a SegOp. Results are
// immutable, so the returned program may be shared; prefer r.Fused(),
// which memoizes it.
func Fuse(r *Result) *FusedProgram {
	n := len(r.Source)
	fp := &FusedProgram{SegOfSrc: make([]int, n)}
	add := func(seg Segment) {
		seg.PhysStart = r.Spans[seg.SrcStart].Start
		seg.PhysEnd = r.Spans[seg.SrcEnd-1].End
		si := len(fp.Segments)
		fp.Segments = append(fp.Segments, seg)
		for i := seg.SrcStart; i < seg.SrcEnd; i++ {
			fp.SegOfSrc[i] = si
		}
	}
	for i := 0; i < n; {
		op := r.Source[i]
		switch {
		case op.Kind.Diagonal() && i+1 < n && r.Source[i+1].Kind.Diagonal():
			j := i
			var terms []circuit.DiagTerm
			for j < n && r.Source[j].Kind.Diagonal() {
				terms = appendDiagTerms(terms, r.Source[j], j)
				j++
			}
			add(Segment{Kind: SegDiag, SrcStart: i, SrcEnd: j, Terms: terms})
			i = j
		case op.Kind.Arity() == 1 && i+1 < n &&
			r.Source[i+1].Kind.Arity() == 1 &&
			r.Source[i+1].Qubits[0] == op.Qubits[0]:
			q := op.Qubits[0]
			m := base2x2(op)
			j := i + 1
			for j < n && r.Source[j].Kind.Arity() == 1 && r.Source[j].Qubits[0] == q {
				m = mul2x2(base2x2(r.Source[j]), m)
				j++
			}
			add(Segment{Kind: Seg1Q, SrcStart: i, SrcEnd: j, Qubit: q, M: m})
			i = j
		default:
			add(Segment{Kind: SegOp, SrcStart: i, SrcEnd: i + 1})
			i++
		}
	}
	return fp
}

// appendDiagTerms lowers one diagonal op into phase terms, matching the
// exact phase factors the specialised sim kernels compute so fused
// execution multiplies each amplitude by bit-identical values.
func appendDiagTerms(dst []circuit.DiagTerm, op circuit.Op, src int) []circuit.DiagTerm {
	bit := func(i int) uint64 { return 1 << uint(op.Qubits[i]) }
	phase := func(mask uint64, theta float64) []circuit.DiagTerm {
		return append(dst, circuit.DiagTerm{
			Sel: mask, Val: mask,
			Phase: cmplx.Exp(complex(0, theta)), Src: src,
		})
	}
	switch op.Kind {
	case gate.I:
		return dst
	case gate.P:
		return phase(bit(0), op.Theta)
	case gate.S:
		return phase(bit(0), math.Pi/2)
	case gate.Sdg:
		return phase(bit(0), -math.Pi/2)
	case gate.T:
		return phase(bit(0), math.Pi/4)
	case gate.Tdg:
		return phase(bit(0), -math.Pi/4)
	case gate.Z:
		// The Z kernel negates; -1 differs from e^{iπ} by the sine
		// rounding error, so use the exact value here.
		return append(dst, circuit.DiagTerm{
			Sel: bit(0), Val: bit(0), Phase: -1, Src: src,
		})
	case gate.RZ:
		// Two complementary terms: every amplitude matches exactly one,
		// preserving the one-multiply-per-amplitude shape of the RZ
		// kernel.
		return append(dst,
			circuit.DiagTerm{Sel: bit(0), Val: 0,
				Phase: cmplx.Exp(complex(0, -op.Theta/2)), Src: src},
			circuit.DiagTerm{Sel: bit(0), Val: bit(0),
				Phase: cmplx.Exp(complex(0, op.Theta/2)), Src: src})
	case gate.CZ:
		// ApplyOp lowers CZ through CPhase(π); match its e^{iπ} factor.
		return phase(bit(0)|bit(1), math.Pi)
	case gate.CP:
		return phase(bit(0)|bit(1), op.Theta)
	case gate.CCP:
		return phase(bit(0)|bit(1)|bit(2), op.Theta)
	default:
		panic(fmt.Sprintf("transpile: %s is not diagonal", op.Kind))
	}
}

// base2x2 returns the 2x2 unitary of a single-qubit op.
func base2x2(op circuit.Op) [4]complex128 {
	m := gate.Base(op.Kind, op.Theta)
	return [4]complex128{m.At(0, 0), m.At(0, 1), m.At(1, 0), m.At(1, 1)}
}

// mul2x2 returns the matrix product b·a — the unitary of "a then b".
func mul2x2(b, a [4]complex128) [4]complex128 {
	return [4]complex128{
		b[0]*a[0] + b[1]*a[2], b[0]*a[1] + b[1]*a[3],
		b[2]*a[0] + b[3]*a[2], b[2]*a[1] + b[3]*a[3],
	}
}
