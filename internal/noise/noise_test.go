package noise_test

import (
	"math"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
	"qfarith/internal/sim"
	"qfarith/internal/testutil"
	"qfarith/internal/transpile"
)

func qfaEngine(d int, m noise.Model) *noise.Engine {
	c := arith.NewQFA(3, 4, arith.Config{Depth: d, AddCut: arith.FullAdd})
	return noise.NewEngine(transpile.Transpile(c), m)
}

func TestNoiselessEngineIsExact(t *testing.T) {
	e := qfaEngine(qft.Full, noise.Noiseless)
	if e.NoErrorProb() != 1 {
		t.Fatalf("noiseless w0 = %g, want 1", e.NoErrorProb())
	}
	if e.NoisyOps() != 0 {
		t.Fatalf("noiseless engine reports %d noisy ops", e.NoisyOps())
	}
	if e.SampleConditional(testutil.NewRand(3)) != nil {
		t.Fatal("noiseless engine produced a conditional trajectory")
	}
}

func TestMixtureNoiselessMatchesIdeal(t *testing.T) {
	e := qfaEngine(qft.Full, noise.Noiseless)
	st := sim.NewState(7)
	initial := make([]complex128, st.Dim())
	x, y := 5, 9
	initial[x|y<<3] = 1
	out := make([]float64, 16)
	rng := testutil.NewRand(1)
	e.MixtureInto(out, st, initial, noise.MixtureOpts{Trajectories: 4, Measure: arith.Range(3, 4)}, rng)
	want := (x + y) & 15
	for v, p := range out {
		expect := 0.0
		if v == want {
			expect = 1.0
		}
		if math.Abs(p-expect) > 1e-9 {
			t.Fatalf("noiseless mixture P(%d) = %g, want %g", v, p, expect)
		}
	}
}

func TestNoErrorProbClosedForm(t *testing.T) {
	m := noise.PaperModel(0.002, 0.01)
	e := qfaEngine(qft.Full, m)
	// Count native gates by class and compare w0 with the closed form.
	var g1, g2 int
	for _, op := range e.Res.Ops {
		switch op.Kind {
		case gate.CX:
			g2++
		case gate.X, gate.SX, gate.RZ, gate.I:
			g1++
		}
	}
	want := math.Pow(1-0.002*3/4, float64(g1)) * math.Pow(1-0.01*15.0/16.0, float64(g2))
	if d := math.Abs(e.NoErrorProb() - want); d > 1e-12 {
		t.Errorf("w0 = %g, want %g (diff %g)", e.NoErrorProb(), want, d)
	}
}

func TestNoiseOnRZFlag(t *testing.T) {
	withRZ := noise.Model{OneQubit: 0.01, NoiseOnRZ: true}
	withoutRZ := noise.Model{OneQubit: 0.01, NoiseOnRZ: false}
	a := qfaEngine(qft.Full, withRZ)
	b := qfaEngine(qft.Full, withoutRZ)
	if a.NoisyOps() <= b.NoisyOps() {
		t.Errorf("NoiseOnRZ should increase noisy op count: %d vs %d", a.NoisyOps(), b.NoisyOps())
	}
	if a.NoErrorProb() >= b.NoErrorProb() {
		t.Errorf("NoiseOnRZ should decrease w0: %g vs %g", a.NoErrorProb(), b.NoErrorProb())
	}
}

func TestConditionalSamplingAlwaysHasEvents(t *testing.T) {
	e := qfaEngine(2, noise.PaperModel(0.001, 0.002))
	rng := testutil.NewRand(42)
	for i := 0; i < 500; i++ {
		ev := e.SampleConditional(rng)
		if len(ev) == 0 {
			t.Fatal("conditional trajectory with no events")
		}
		for j := 1; j < len(ev); j++ {
			if ev[j].PhysIdx <= ev[j-1].PhysIdx {
				t.Fatal("events not strictly ordered")
			}
		}
		for _, e2 := range ev {
			if e2.Pauli == 0 {
				t.Fatal("identity Pauli sampled as an error event")
			}
		}
	}
}

func TestEventRateMatchesChannel(t *testing.T) {
	// Unconditional sampling frequency of errors per op must match the
	// channel probability within Monte Carlo error.
	m := noise.PaperModel(0.02, 0.05)
	e := qfaEngine(qft.Full, m)
	rng := testutil.NewRand(7)
	trials := 3000
	var total int
	for i := 0; i < trials; i++ {
		total += len(e.SampleUnconditional(rng))
	}
	mean := float64(total) / float64(trials)
	want := e.ExpectedErrors()
	if math.Abs(mean-want) > 0.1*want {
		t.Errorf("mean events/shot %g, want ≈ %g", mean, want)
	}
}

// TestTrajectoryEquivalentToNativeRun verifies that the span fast-path
// machinery produces exactly the same state (up to global phase) as a
// plain native-gate simulation with the same Pauli insertions.
func TestTrajectoryEquivalentToNativeRun(t *testing.T) {
	c := arith.NewQFA(2, 3, arith.Config{Depth: 2, AddCut: arith.FullAdd})
	res := transpile.Transpile(c)
	e := noise.NewEngine(res, noise.PaperModel(0.05, 0.1))
	rng := testutil.NewRand(99)
	for trial := 0; trial < 50; trial++ {
		events := e.SampleConditional(rng)
		// Fast-path run.
		st := sim.NewState(5)
		st.SetBasis(trial % 32)
		e.RunTrajectory(st, events)
		// Reference: fully native run with inline Pauli application.
		ref := sim.NewState(5)
		ref.SetBasis(trial % 32)
		ei := 0
		for pi, op := range res.Ops {
			ref.ApplyOp(op)
			for ei < len(events) && events[ei].PhysIdx == pi {
				applyPauliRef(ref, res.Ops[pi], events[ei].Pauli)
				ei++
			}
		}
		if f := fidelity(st, ref); math.Abs(f-1) > 1e-9 {
			t.Fatalf("trial %d: trajectory fast path fidelity %g", trial, f)
		}
	}
}

func applyPauliRef(st *sim.State, op circuit.Op, p uint8) {
	apply1 := func(q int, v uint8) {
		switch v {
		case 1:
			st.X(q)
		case 2:
			st.Y(q)
		case 3:
			st.Z(q)
		}
	}
	if op.Kind == gate.CX {
		apply1(op.Qubits[0], p>>2)
		apply1(op.Qubits[1], p&3)
		return
	}
	apply1(op.Qubits[0], p)
}

func fidelity(a, b *sim.State) float64 {
	var ip complex128
	for i, av := range a.Amps() {
		ip += complexConj(av) * b.Amps()[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

func complexConj(c complex128) complex128 { return complex(real(c), -imag(c)) }

func TestMixtureSumsToOne(t *testing.T) {
	e := qfaEngine(2, noise.PaperModel(0.01, 0.02))
	st := sim.NewState(7)
	initial := make([]complex128, st.Dim())
	initial[3|7<<3] = 1
	out := make([]float64, 16)
	rng := testutil.NewRand(5)
	e.MixtureInto(out, st, initial, noise.MixtureOpts{Trajectories: 8, Measure: arith.Range(3, 4)}, rng)
	var s float64
	for _, p := range out {
		s += p
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("mixture sums to %g", s)
	}
}

func TestMixtureDegradesWithNoise(t *testing.T) {
	// The probability mass on the correct sum should fall as the 2q
	// error rate rises.
	x, y := 3, 9
	want := (x + y) & 15
	prev := 1.1
	for _, p2 := range []float64{0, 0.01, 0.05, 0.2} {
		e := qfaEngine(qft.Full, noise.PaperModel(0, p2))
		st := sim.NewState(7)
		initial := make([]complex128, st.Dim())
		initial[x|y<<3] = 1
		out := make([]float64, 16)
		rng := testutil.NewRand(11)
		e.MixtureInto(out, st, initial, noise.MixtureOpts{Trajectories: 48, Measure: arith.Range(3, 4)}, rng)
		if out[want] >= prev {
			t.Errorf("P(correct) did not fall with noise: %g at λ2=%g (prev %g)", out[want], p2, prev)
		}
		prev = out[want]
	}
	if prev > 0.9 {
		t.Errorf("P(correct) at λ2=0.2 is %g; expected substantial degradation", prev)
	}
}

func TestAvgGateError(t *testing.T) {
	if got := noise.AvgGateError(0.01, 1); math.Abs(got-0.005) > 1e-12 {
		t.Errorf("1q avg error = %g, want 0.005", got)
	}
	if got := noise.AvgGateError(0.01, 2); math.Abs(got-0.0075) > 1e-12 {
		t.Errorf("2q avg error = %g, want 0.0075", got)
	}
}
