package noise_test

import (
	"math"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
	"qfarith/internal/sim"
	"qfarith/internal/testutil"
	"qfarith/internal/transpile"
)

func TestAmplitudeDampingDrivesToGround(t *testing.T) {
	// Repeated damping of a |1> qubit must eventually decay it to |0>,
	// and the ensemble decay rate must match gamma.
	rng := testutil.NewRand(31)
	trials := 2000
	gamma := 0.25
	decayed := 0
	for i := 0; i < trials; i++ {
		st := sim.NewState(1)
		st.SetBasis(1)
		noise.ApplyAmplitudeDamping(st, 0, gamma, rng)
		if st.Probability(0) > 0.5 {
			decayed++
		}
	}
	f := float64(decayed) / float64(trials)
	if math.Abs(f-gamma) > 0.04 {
		t.Errorf("decay frequency %g, want ≈ %g", f, gamma)
	}
}

func TestAmplitudeDampingPreservesGroundState(t *testing.T) {
	rng := testutil.NewRand(32)
	st := sim.NewState(2)
	st.SetBasis(0)
	for i := 0; i < 50; i++ {
		noise.ApplyAmplitudeDamping(st, 0, 0.3, rng)
		noise.ApplyAmplitudeDamping(st, 1, 0.3, rng)
	}
	if p := st.Probability(0); math.Abs(p-1) > 1e-9 {
		t.Errorf("ground state decayed: P(00) = %g", p)
	}
}

func TestAmplitudeDampingEnsembleAverage(t *testing.T) {
	// For the superposition (|0>+|1>)/√2, the ensemble-averaged excited
	// population after one damping step must be (1-γ)/2.
	rng := testutil.NewRand(33)
	gamma := 0.4
	trials := 4000
	var pop float64
	for i := 0; i < trials; i++ {
		st := sim.NewState(1)
		st.Amps()[0] = complex(1/math.Sqrt2, 0)
		st.Amps()[1] = complex(1/math.Sqrt2, 0)
		noise.ApplyAmplitudeDamping(st, 0, gamma, rng)
		pop += st.Probability(1)
	}
	pop /= float64(trials)
	want := (1 - gamma) / 2
	if math.Abs(pop-want) > 0.02 {
		t.Errorf("mean excited population %g, want %g", pop, want)
	}
}

func TestThermalParams(t *testing.T) {
	p := noise.IBMTypicalThermal
	if !p.Enabled() {
		t.Fatal("typical thermal params should be enabled")
	}
	g1 := p.Gamma(p.Gate1qTime)
	g2 := p.Gamma(p.Gate2qTime)
	if g1 <= 0 || g2 <= g1 {
		t.Errorf("gamma ordering wrong: %g, %g", g1, g2)
	}
	// 35ns against T1=100µs: γ ≈ 3.5e-4.
	if math.Abs(g1-3.5e-4) > 5e-5 {
		t.Errorf("1q gamma %g, want ≈ 3.5e-4", g1)
	}
	if pz := p.DephaseProb(p.Gate2qTime); pz <= 0 || pz > 0.01 {
		t.Errorf("dephase prob %g out of expected range", pz)
	}
	var off noise.ThermalParams
	if off.Enabled() || off.Gamma(1e-9) != 0 || off.DephaseProb(1e-9) != 0 {
		t.Error("zero params must disable relaxation")
	}
}

func TestReadoutErrorTransform(t *testing.T) {
	dist := []float64{1, 0, 0, 0} // always reads 00
	flip := 0.1
	out := noise.ApplyReadoutError(dist, flip)
	// P(00) = 0.81, P(01) = P(10) = 0.09, P(11) = 0.01.
	want := []float64{0.81, 0.09, 0.09, 0.01}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("readout[%d] = %g, want %g", i, out[i], want[i])
		}
	}
	// Zero flip is the identity; distribution stays normalized.
	same := noise.ApplyReadoutError(dist, 0)
	for i := range dist {
		if same[i] != dist[i] {
			t.Error("zero flip changed the distribution")
		}
	}
	var s float64
	for _, p := range out {
		s += p
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("readout transform denormalized: %g", s)
	}
}

func TestBitAndPhaseFlip(t *testing.T) {
	rng := testutil.NewRand(44)
	st := sim.NewState(1)
	noise.ApplyBitFlip(st, 0, 1.0, rng) // always flips
	if st.Probability(1) < 1-1e-12 {
		t.Error("bit flip with p=1 did not flip")
	}
	noise.ApplyPhaseFlip(st, 0, 1.0, rng)
	if st.Probability(1) < 1-1e-12 {
		t.Error("phase flip changed populations")
	}
	ref := st.Clone()
	noise.ApplyBitFlip(st, 0, 0, rng)
	noise.ApplyPhaseFlip(st, 0, 0, rng)
	for i := range ref.Amps() {
		if st.Amps()[i] != ref.Amps()[i] {
			t.Error("zero-probability channels acted")
		}
	}
}

func TestFullEngineNoiselessLimit(t *testing.T) {
	// With every channel off, FullEngine must reproduce the exact
	// arithmetic result.
	c := arith.NewQFA(3, 4, arith.DefaultConfig())
	res := transpile.Transpile(c)
	fe := noise.NewFullEngine(res, noise.Noiseless, noise.ThermalParams{}, 0)
	st := sim.NewState(7)
	initial := make([]complex128, st.Dim())
	x, y := 5, 9
	initial[x|y<<3] = 1
	rng := testutil.NewRand(55)
	dist := fe.EstimateDist(st, initial, arith.Range(3, 4), 3, rng)
	if math.Abs(dist[(x+y)&15]-1) > 1e-9 {
		t.Errorf("noiseless FullEngine P(correct) = %g", dist[(x+y)&15])
	}
}

func TestFullEngineCompositeNoiseDegrades(t *testing.T) {
	c := arith.NewQFA(3, 4, arith.Config{Depth: qft.Full, AddCut: arith.FullAdd})
	res := transpile.Transpile(c)
	x, y := 5, 9
	want := (x + y) & 15
	run := func(model noise.Model, th noise.ThermalParams, ro float64) float64 {
		fe := noise.NewFullEngine(res, model, th, ro)
		st := sim.NewState(7)
		initial := make([]complex128, st.Dim())
		initial[x|y<<3] = 1
		rng := testutil.NewRand(66)
		dist := fe.EstimateDist(st, initial, arith.Range(3, 4), 24, rng)
		return dist[want]
	}
	clean := run(noise.Noiseless, noise.ThermalParams{}, 0)
	slowDevice := noise.ThermalParams{T1: 5e-6, T2: 4e-6, Gate1qTime: 35e-9, Gate2qTime: 300e-9}
	thermal := run(noise.Noiseless, slowDevice, 0)
	readout := run(noise.Noiseless, noise.ThermalParams{}, 0.05)
	everything := run(noise.PaperModel(0.005, 0.02), slowDevice, 0.05)
	if thermal >= clean {
		t.Errorf("thermal relaxation did not degrade: %g vs %g", thermal, clean)
	}
	if readout >= clean {
		t.Errorf("readout error did not degrade: %g vs %g", readout, clean)
	}
	if everything >= thermal || everything >= readout {
		t.Errorf("composite noise should be worst: %g vs %g/%g", everything, thermal, readout)
	}
}

func TestCoherentErrorsDegradeDeterministically(t *testing.T) {
	// Coherent over-rotation must produce identical trajectories (it is
	// not sampled) and degrade the arithmetic smoothly with angle.
	c := arith.NewQFA(3, 4, arith.DefaultConfig())
	res := transpile.Transpile(c)
	x, y := 5, 9
	want := (x + y) & 15
	run := func(eps float64) float64 {
		fe := noise.NewFullEngine(res, noise.Noiseless, noise.ThermalParams{}, 0)
		fe.Coherent = noise.CoherentParams{OverRotation1q: eps, OverRotation2q: eps}
		st := sim.NewState(7)
		initial := make([]complex128, st.Dim())
		initial[x|y<<3] = 1
		rng := testutil.NewRand(77)
		dist := fe.EstimateDist(st, initial, arith.Range(3, 4), 2, rng)
		return dist[want]
	}
	p0 := run(0)
	if math.Abs(p0-1) > 1e-9 {
		t.Fatalf("zero over-rotation should be exact: %g", p0)
	}
	small := run(0.01)
	large := run(0.08)
	if small >= 1 || large >= small {
		t.Errorf("coherent error not monotone: 1 -> %g -> %g", small, large)
	}
	// Determinism: two runs agree exactly (no stochastic component).
	if a, b := run(0.05), run(0.05); a != b {
		t.Errorf("coherent-only runs differ: %g vs %g", a, b)
	}
}
