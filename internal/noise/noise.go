// Package noise implements the paper's tunable gate-noise models and a
// stochastic Pauli trajectory engine for simulating them.
//
// The paper attaches depolarizing channels to the 1q and 2q gates of the
// IBM native basis and sweeps the two error rates independently. A
// depolarizing channel is exactly a Pauli mixture, so the density-matrix
// evolution can be sampled as trajectories: each noisy native gate is
// followed, with the channel's branch probabilities, by a uniformly
// random non-identity Pauli on its qubits. Averaging trajectory output
// distributions (with the exact no-error trajectory stratified out)
// converges to the channel's true output distribution.
package noise

import (
	"fmt"
	"math"
	"math/rand/v2"

	"qfarith/internal/gate"
	"qfarith/internal/transpile"
)

// Model describes which native gates are noisy and how much.
type Model struct {
	// OneQubit is the depolarizing parameter λ1 attached to native 1q
	// gates: E(ρ) = (1-λ)ρ + λ I/2, i.e. X, Y, Z each with probability
	// λ1/4. This matches qiskit's depolarizing_error(λ, 1).
	OneQubit float64
	// TwoQubit is the depolarizing parameter λ2 attached to CX gates:
	// each of the 15 non-identity two-qubit Paulis with probability
	// λ2/16 (qiskit's depolarizing_error(λ, 2)).
	TwoQubit float64
	// NoiseOnRZ controls whether λ1 also attaches to RZ and Id gates.
	// On IBM hardware RZ is a virtual, error-free frame change, but the
	// paper's Table I counts every 1q gate — including the rotation
	// phases — toward its 1q totals, matching the common Qiskit noise-
	// model recipe that adds the 1q error to {id, rz, sx, x}. True
	// reproduces the paper; false models hardware-virtual RZ.
	NoiseOnRZ bool
}

// PaperModel returns the paper's noise configuration for given 1q and 2q
// depolarizing error rates (the x-axes of Figs. 3 and 4, as fractions,
// e.g. 0.01 for 1%).
func PaperModel(p1q, p2q float64) Model {
	return Model{OneQubit: p1q, TwoQubit: p2q, NoiseOnRZ: true}
}

// Noiseless is the zero-noise model used for the x-origin reference
// points in the paper's figures.
var Noiseless = Model{}

// errorProb returns the probability that the channel attached to a
// native gate kind inserts a non-identity Pauli, or 0 if the gate is
// noise-free under m.
func (m Model) errorProb(k gate.Kind) float64 {
	switch k {
	case gate.CX:
		return m.TwoQubit * 15.0 / 16.0
	case gate.X, gate.SX:
		return m.OneQubit * 3.0 / 4.0
	case gate.I, gate.RZ:
		if m.NoiseOnRZ {
			return m.OneQubit * 3.0 / 4.0
		}
		return 0
	default:
		panic(fmt.Sprintf("noise: %s is not a native gate", k))
	}
}

// Event is one sampled Pauli insertion: after native op PhysIdx, apply
// Pauli(s) encoded in Pauli — for a 1q gate 1..3 (X, Y, Z); for a CX,
// 1..15 encoding 4*pc + pt over {I,X,Y,Z} with pc on the control and pt
// on the target, not both identity.
type Event struct {
	PhysIdx int
	Pauli   uint8
}

// Engine samples Pauli-insertion trajectories for one transpiled circuit
// under one noise model. It precomputes per-gate error probabilities and
// the first-error distribution so conditional (≥1 error) trajectories
// are drawn exactly without rejection.
type Engine struct {
	Res   *transpile.Result
	Model Model

	probs []float64 // per-native-op error probability
	// cumFirst[i] = P(first error at op ≤ i | ≥1 error), for exact
	// conditional sampling by binary search.
	cumFirst []float64
	w0       float64 // probability of a completely error-free shot
	noisyOps int
	// spanOf[pi] is the source-span index containing native op pi, used
	// to locate the first span a trajectory's events touch.
	spanOf []int
}

// NewEngine prepares trajectory sampling for res under model.
func NewEngine(res *transpile.Result, model Model) *Engine {
	e := &Engine{Res: res, Model: model}
	e.probs = make([]float64, len(res.Ops))
	for i, op := range res.Ops {
		p := model.errorProb(op.Kind)
		e.probs[i] = p
		if p > 0 {
			e.noisyOps++
		}
	}
	// Survival prefix products and the first-error CDF.
	e.w0 = 1
	surv := make([]float64, len(res.Ops)+1)
	surv[0] = 1
	for i, p := range e.probs {
		surv[i+1] = surv[i] * (1 - p)
	}
	e.w0 = surv[len(res.Ops)]
	if e.w0 < 1 {
		e.cumFirst = make([]float64, len(res.Ops))
		acc := 0.0
		norm := 1 - e.w0
		for i, p := range e.probs {
			acc += surv[i] * p / norm
			e.cumFirst[i] = acc
		}
		e.cumFirst[len(res.Ops)-1] = 1
	}
	e.spanOf = make([]int, len(res.Ops))
	for si, sp := range res.Spans {
		for pi := sp.Start; pi < sp.End; pi++ {
			e.spanOf[pi] = si
		}
	}
	return e
}

// NoErrorProb returns w0, the probability that a shot sees no Pauli
// insertion anywhere in the circuit.
func (e *Engine) NoErrorProb() float64 { return e.w0 }

// NoisyOps returns how many native ops carry a nonzero error probability.
func (e *Engine) NoisyOps() int { return e.noisyOps }

// samplePauli draws the Pauli label for an event at op i.
func (e *Engine) samplePauli(i int, rng *rand.Rand) uint8 {
	if e.Res.Ops[i].Kind == gate.CX {
		return uint8(1 + rng.IntN(15))
	}
	return uint8(1 + rng.IntN(3))
}

// SampleConditional draws a trajectory conditioned on at least one error:
// the first error position comes from the exact conditional distribution,
// and every later op errs independently. The returned events are sorted
// by PhysIdx. Returns nil if the model is noiseless.
func (e *Engine) SampleConditional(rng *rand.Rand) []Event {
	if e.w0 >= 1 {
		return nil
	}
	return e.sampleConditionalAppend(make([]Event, 0, 4), rng)
}

// sampleConditionalAppend draws one conditional trajectory with the
// exact RNG consumption of SampleConditional, appending its events to
// dst. The engine must not be noiseless. Used by MixtureInto to gather
// all trajectories into one reusable buffer before simulating.
func (e *Engine) sampleConditionalAppend(dst []Event, rng *rand.Rand) []Event {
	u := rng.Float64()
	first := searchFloat(e.cumFirst, u)
	dst = append(dst, Event{PhysIdx: first, Pauli: e.samplePauli(first, rng)})
	for i := first + 1; i < len(e.probs); i++ {
		if p := e.probs[i]; p > 0 && rng.Float64() < p {
			dst = append(dst, Event{PhysIdx: i, Pauli: e.samplePauli(i, rng)})
		}
	}
	return dst
}

// SampleUnconditional draws a trajectory from the unconditioned channel
// (may be empty, meaning an error-free shot).
func (e *Engine) SampleUnconditional(rng *rand.Rand) []Event {
	var events []Event
	for i, p := range e.probs {
		if p > 0 && rng.Float64() < p {
			events = append(events, Event{PhysIdx: i, Pauli: e.samplePauli(i, rng)})
		}
	}
	return events
}

// ExpectedErrors returns the mean number of Pauli insertions per shot,
// a useful scale indicator (≈ G1·3λ1/4 + G2·15λ2/16).
func (e *Engine) ExpectedErrors() float64 {
	var s float64
	for _, p := range e.probs {
		s += p
	}
	return s
}

func searchFloat(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AvgGateError converts a depolarizing parameter λ on a d-dimensional
// gate (d=2 for 1q, d=4 for 2q) into the average gate error reported by
// randomized benchmarking: ε = λ(d-1)/d. Provided so users can map
// hardware-reported error rates onto Model parameters.
func AvgGateError(lambda float64, numQubits int) float64 {
	d := math.Pow(2, float64(numQubits))
	return lambda * (d - 1) / d
}
