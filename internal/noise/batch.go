package noise

import (
	"math/rand/v2"

	"qfarith/internal/gate"
	"qfarith/internal/sim"
	"qfarith/internal/telemetry"
	"qfarith/internal/transpile"
)

// Batched-mixture telemetry: batches executed, lanes filled into them,
// and distribution shape. The size histogram shows how often the tail
// batch runs short; the fill ratio measures how much of each batch's
// span range every lane participates in (1.0 = all lanes branch at the
// same first-error span, lower = late-branching lanes idle while early
// lanes stream).
var (
	batchCount    = telemetry.Default().Counter("qfarith_mixture_batches_total")
	batchLanes    = telemetry.Default().Counter("qfarith_mixture_batch_lanes_total")
	batchSizeHist = telemetry.Default().Histogram("qfarith_mixture_batch_size")
	batchFillHist = telemetry.Default().Histogram("qfarith_mixture_batch_fill_ratio")
	batchSpecials = telemetry.Default().Counter("qfarith_mixture_batch_lane_segments_total", telemetry.L("kind", "special"))
	batchStreamed = telemetry.Default().Counter("qfarith_mixture_batch_lane_segments_total", telemetry.L("kind", "batched"))
)

// MixtureBatchInto computes exactly what MixtureInto computes — same
// inputs, same RNG draws, bit-identical out — but simulates up to batch
// conditional trajectories at a time through the structure-of-arrays
// BatchState kernels instead of one statevector at a time.
//
// The sampling stage is shared with the scalar path (sampleAndGroup),
// so the per-trajectory RNG draw order of DESIGN.md is preserved by
// construction. Trajectories are taken in first-error-span order (the
// same stable order the scalar checkpointing uses); each batch seeds
// its lanes from the progressively advanced error-free prefix and then
// walks the fused program segment by segment in lockstep:
//
//   - a lane whose pending events stay outside the segment takes the
//     batched kernel path (contiguous runs of such lanes per call);
//   - a lane with an event inside the segment runs that segment alone
//     through runSpanRangeLane, a per-lane mirror of the scalar
//     runSpanRange built entirely from single-lane batched kernel calls
//     (each bit-identical to its scalar counterpart), so the lane never
//     leaves the batch.
//
// Because diagonal segments split bit-exactly at op boundaries and
// applyFusedRange decomposes at segment boundaries internally, the
// per-segment walk performs the same floating-point operations in the
// same order as one scalar pass over the whole trajectory.
//
// batch <= 1 (or k == 1) delegates to the scalar MixtureInto.
func (e *Engine) MixtureBatchInto(out []float64, st *sim.State, initial []complex128, opts MixtureOpts, rng *rand.Rand, batch int) {
	k := opts.Trajectories
	if k < 1 {
		k = 1
	}
	if batch > k {
		batch = k
	}
	if batch <= 1 || k == 1 || e.w0 >= 1 {
		e.MixtureInto(out, st, initial, opts, rng)
		return
	}
	m := 1 << uint(len(opts.Measure))
	if len(out) != m {
		panic("noise: output buffer size mismatch")
	}
	sc := mixPool.Get().(*mixScratch)
	defer mixPool.Put(sc)
	e.sampleAndGroup(sc, k, rng)

	nSpans := len(e.Res.Spans)
	sc.marg = grownFloats(sc.marg, k*m)
	sc.laneStart = grownInts(sc.laneStart, batch)
	sc.evCur = grownInts(sc.evCur, batch)
	sc.evEnd = grownInts(sc.evEnd, batch)
	sc.lprob = grownFloats(sc.lprob, batch*m)

	n := st.NumQubits()
	prefix := sim.GetScratchState(n)
	defer sim.PutScratchState(prefix)
	prefix.SetWorkers(st.Workers())
	prefix.SetAmplitudes(initial)
	bs := sim.GetScratchBatch(n, batch)
	defer sim.PutScratchBatch(bs)

	cur := 0
	for gi := 0; gi < k; gi += batch {
		gj := gi + batch
		if gj > k {
			gj = k
		}
		lanes := gj - gi
		// Seed each lane from the prefix at its own first-error span.
		// sc.order is ascending in first span, so the prefix advances
		// monotonically and splits at exactly the same op boundaries as
		// the scalar checkpointing loop.
		for l := 0; l < lanes; l++ {
			t := sc.order[gi+l]
			if s := sc.first[t]; s > cur {
				e.applyFusedRange(prefix, cur, s)
				cur = s
			}
			bs.SeedLane(l, prefix)
			sc.laneStart[l] = sc.first[t]
			sc.evCur[l] = sc.offs[t]
			sc.evEnd[l] = sc.offs[t+1]
		}
		e.runSpanBatch(bs, sc, lanes)
		bs.RegisterProbsIntoLanes(sc.lprob[:lanes*m], opts.Measure, lanes)
		for l := 0; l < lanes; l++ {
			if sc.evCur[l] != sc.evEnd[l] {
				panic("noise: batched trajectory events out of range")
			}
			t := sc.order[gi+l]
			copy(sc.marg[t*m:(t+1)*m], sc.lprob[l*m:(l+1)*m])
		}

		batchCount.Inc()
		batchLanes.Add(uint64(lanes))
		batchSizeHist.Observe(float64(lanes))
		if span0 := nSpans - sc.laneStart[0]; span0 > 0 {
			active := 0
			for l := 0; l < lanes; l++ {
				active += nSpans - sc.laneStart[l]
			}
			batchFillHist.Observe(float64(active) / float64(lanes*span0))
		}
	}
	e.applyFusedRange(prefix, cur, nSpans)
	sc.ideal = grownFloats(sc.ideal, m)
	prefix.RegisterProbsInto(sc.ideal, opts.Measure)
	if opts.IdealOut != nil {
		copy(opts.IdealOut, sc.ideal)
	}

	// Accumulate exactly as the scalar path does: ideal stratum first,
	// then trajectories 0..K-1 — identical float additions, identical out.
	for i := range out {
		out[i] = 0
	}
	sim.MixInto(out, sc.ideal, e.w0)
	wt := (1 - e.w0) / float64(k)
	for t := 0; t < k; t++ {
		sim.MixInto(out, sc.marg[t*m:(t+1)*m], wt)
	}
}

// runSpanBatch runs the seeded lanes [0, lanes) of bs to the end of the
// circuit. Lane l holds the error-free prefix state at span
// sc.laneStart[l] with pending events sc.events[sc.evCur[l]:sc.evEnd[l]];
// lane starts are ascending, so the lanes participating in any point of
// the walk always form a prefix of the batch.
//
// Non-diagonal segments are processed atomically (a fused 1q matrix
// cannot be split bit-exactly, so a lane with an event inside runs the
// whole segment alone). Diagonal segments — the bulk of Fourier
// arithmetic — split bit-exactly at any span boundary (Segment.TermsFor),
// so they are walked span-granularly: every event-free stretch runs
// batched across all entered lanes, and only the single span carrying a
// lane's event runs on that lane alone.
func (e *Engine) runSpanBatch(bs *sim.BatchState, sc *mixScratch, lanes int) {
	fp := e.Res.Fused()
	nSpans := len(e.Res.Spans)
	var nSpecial, nBatched uint64
	p := 0 // lanes entered so far (prefix [0, p))
	cur := sc.laneStart[0]
	for cur < nSpans {
		seg := &fp.Segments[fp.SegOfSrc[cur]]
		if seg.Kind != transpile.SegDiag {
			// Segment-atomic path: plain lanes take the fused batched
			// kernel, lanes with an event (or entry point) inside run the
			// segment alone via single-lane batched calls.
			for p < lanes && sc.laneStart[p] < seg.SrcEnd {
				p++
			}
			runLo := -1
			for l := 0; l < p; l++ {
				special := sc.laneStart[l] > seg.SrcStart ||
					(sc.evCur[l] < sc.evEnd[l] && e.spanOf[sc.events[sc.evCur[l]].PhysIdx] < seg.SrcEnd)
				if !special {
					if runLo < 0 {
						runLo = l
					}
					continue
				}
				if runLo >= 0 {
					e.applySegBatch(bs, seg, runLo, l)
					nBatched += uint64(l - runLo)
					runLo = -1
				}
				lo := seg.SrcStart
				if sc.laneStart[l] > lo {
					lo = sc.laneStart[l]
					sc.laneStart[l] = seg.SrcStart // lane fully active from here on
				}
				used := e.runSpanRangeLane(bs, sc.events[sc.evCur[l]:sc.evEnd[l]], lo, seg.SrcEnd, l)
				sc.evCur[l] += used
				nSpecial++
			}
			if runLo >= 0 {
				e.applySegBatch(bs, seg, runLo, p)
				nBatched += uint64(p - runLo)
			}
			cur = seg.SrcEnd
			continue
		}
		// Span-granular diagonal walk. Lanes enter exactly at their
		// branch span; per entered lane the term sequence concatenates to
		// the same per-amplitude multiplies as the scalar engine's
		// TermsFor splits, so every lane stays bit-identical.
		segEnd := seg.SrcEnd
		for cur < segEnd {
			for p < lanes && sc.laneStart[p] <= cur {
				p++
			}
			next := segEnd
			if p < lanes && sc.laneStart[p] < next {
				next = sc.laneStart[p]
			}
			evHere := false
			for l := 0; l < p; l++ {
				if sc.evCur[l] < sc.evEnd[l] {
					if s := e.spanOf[sc.events[sc.evCur[l]].PhysIdx]; s == cur {
						evHere = true
					} else if s < next {
						next = s
					}
				}
			}
			if !evHere {
				bs.ApplyDiagTermsBatch(seg.TermsFor(cur, next), 0, p)
				nBatched += uint64(p)
				cur = next
				continue
			}
			// Span cur carries at least one event: those lanes run it
			// alone; contiguous runs of the rest take its terms batched.
			terms := seg.TermsFor(cur, cur+1)
			runLo := -1
			for l := 0; l < p; l++ {
				hasEv := sc.evCur[l] < sc.evEnd[l] && e.spanOf[sc.events[sc.evCur[l]].PhysIdx] == cur
				if !hasEv {
					if runLo < 0 {
						runLo = l
					}
					continue
				}
				if runLo >= 0 {
					bs.ApplyDiagTermsBatch(terms, runLo, l)
					nBatched += uint64(l - runLo)
					runLo = -1
				}
				used := e.runSpanRangeLane(bs, sc.events[sc.evCur[l]:sc.evEnd[l]], cur, cur+1, l)
				sc.evCur[l] += used
				nSpecial++
			}
			if runLo >= 0 {
				bs.ApplyDiagTermsBatch(terms, runLo, p)
				nBatched += uint64(p - runLo)
			}
			cur++
		}
	}
	batchSpecials.Add(nSpecial)
	batchStreamed.Add(nBatched)
}

// runSpanRangeLane is runSpanRange on one lane of a batch: it simulates
// spans [lo, hi) with the given events (sorted by PhysIdx) on lane
// `lane` and returns how many events were consumed. Every kernel call is
// the single-lane batched counterpart of the scalar call runSpanRange
// would make, so the lane's amplitudes stay bit-identical to the scalar
// engine's without ever leaving the structure-of-arrays buffer.
func (e *Engine) runSpanRangeLane(bs *sim.BatchState, events []Event, lo, hi, lane int) int {
	res := e.Res
	ei := 0
	for si := lo; si < hi; {
		next := hi
		if ei < len(events) {
			if s := e.spanOf[events[ei].PhysIdx]; s < hi {
				next = s
			}
		}
		if next > si {
			e.applyFusedRangeLane(bs, si, next, lane)
			si = next
			continue
		}
		span := res.Spans[si]
		e2 := ei
		for e2 < len(events) && events[e2].PhysIdx < span.End {
			e2++
		}
		if e.applyEventSpanLane(bs, si, events[ei:e2], lane) {
			ei = e2
			si++
			continue
		}
		for pi := span.Start; pi < span.End; pi++ {
			bs.ApplyOpBatch(res.Ops[pi], lane, lane+1)
			for ei < len(events) && events[ei].PhysIdx == pi {
				e.applyEventLane(bs, events[ei], lane)
				ei++
			}
		}
		si++
	}
	return ei
}

// applyFusedRangeLane mirrors applyFusedRange on one lane of a batch.
func (e *Engine) applyFusedRangeLane(bs *sim.BatchState, lo, hi, lane int) {
	fp := e.Res.Fused()
	for i := lo; i < hi; {
		seg := &fp.Segments[fp.SegOfSrc[i]]
		end := seg.SrcEnd
		if end > hi {
			end = hi
		}
		switch seg.Kind {
		case transpile.SegDiag:
			bs.ApplyDiagTermsBatch(seg.TermsFor(i, end), lane, lane+1)
		case transpile.Seg1Q:
			if i == seg.SrcStart && end == seg.SrcEnd {
				bs.Apply1QBatch(seg.Qubit, seg.M[0], seg.M[1], seg.M[2], seg.M[3], lane, lane+1)
			} else {
				for j := i; j < end; j++ {
					bs.ApplyOpBatch(e.Res.Source[j], lane, lane+1)
				}
			}
		default:
			bs.ApplyOpBatch(e.Res.Source[i], lane, lane+1)
		}
		i = end
	}
}

// pauli1Lane mirrors pauli1 on one lane of a batch.
func pauli1Lane(bs *sim.BatchState, q int, p uint8, lane int) {
	switch p {
	case 1:
		bs.XBatch(q, lane, lane+1)
	case 2:
		bs.YBatch(q, lane, lane+1)
	case 3:
		bs.ZBatch(q, lane, lane+1)
	}
}

// applyEventLane mirrors applyEvent on one lane of a batch.
func (e *Engine) applyEventLane(bs *sim.BatchState, ev Event, lane int) {
	op := e.Res.Ops[ev.PhysIdx]
	if op.Kind == gate.CX {
		pauli1Lane(bs, op.Qubits[0], ev.Pauli>>2, lane)
		pauli1Lane(bs, op.Qubits[1], ev.Pauli&3, lane)
		return
	}
	pauli1Lane(bs, op.Qubits[0], ev.Pauli, lane)
}

// applySegBatch applies one fully covered fused segment to lanes
// [laneLo, laneHi) — the batched counterpart of applyFusedRange's
// full-segment arms.
func (e *Engine) applySegBatch(bs *sim.BatchState, seg *transpile.Segment, laneLo, laneHi int) {
	switch seg.Kind {
	case transpile.SegDiag:
		bs.ApplyDiagTermsBatch(seg.Terms, laneLo, laneHi)
	case transpile.Seg1Q:
		bs.Apply1QBatch(seg.Qubit, seg.M[0], seg.M[1], seg.M[2], seg.M[3], laneLo, laneHi)
	default:
		bs.ApplyOpBatch(e.Res.Source[seg.SrcStart], laneLo, laneHi)
	}
}
