//go:build !race

package noise_test

const raceEnabled = false
