package noise

import (
	"math/rand/v2"

	"qfarith/internal/gate"
	"qfarith/internal/layout"
	"qfarith/internal/sim"
	"qfarith/internal/transpile"
)

// Crosstalk models the always-on ZZ coupling of fixed-frequency
// transmons: while a CX pulse plays, every *spectator* qubit adjacent
// (on the device coupling map) to the gate's control or target picks up
// a small conditional phase with the gate qubit it touches. This is the
// noise source that makes qubit layout matter beyond SWAP counts, and a
// natural companion to the layout ablation (E7) — it only exists on a
// device with a topology, which is exactly what the paper idealizes
// away.
type Crosstalk struct {
	// Map is the device topology; spectators are its neighbors.
	Map *layout.CouplingMap
	// ZZPhase is the conditional phase (radians) accumulated between a
	// CX qubit and each adjacent spectator per CX execution. Typical
	// hardware values correspond to a few milliradians.
	ZZPhase float64
	// Jitter, when nonzero, adds a uniform ±Jitter stochastic component
	// to each crosstalk phase (pulse-to-pulse variation).
	Jitter float64
}

// Enabled reports whether crosstalk is configured.
func (x Crosstalk) Enabled() bool {
	return x.Map != nil && (x.ZZPhase != 0 || x.Jitter != 0)
}

// Apply imposes the crosstalk of one CX on st: a CPhase between each
// gate qubit and each of its spectator neighbors. Deterministic unless
// Jitter is set; rng may be nil when Jitter is zero.
func (x Crosstalk) Apply(st *sim.State, control, target int, rng *rand.Rand) {
	if !x.Enabled() {
		return
	}
	for _, q := range [2]int{control, target} {
		for nb := 0; nb < x.Map.NumQubits; nb++ {
			if nb == control || nb == target || !x.Map.Connected(q, nb) {
				continue
			}
			if nb >= st.NumQubits() {
				continue
			}
			phase := x.ZZPhase
			if x.Jitter != 0 {
				phase += (2*rng.Float64() - 1) * x.Jitter
			}
			if phase != 0 {
				st.CPhase(q, nb, phase)
			}
		}
	}
}

// RunCrosstalkTrajectory applies one trajectory of a native circuit with
// depolarizing noise (per model) and ZZ crosstalk on every CX. The
// circuit's qubit indices must be *physical* (i.e. already routed onto
// x.Map).
func RunCrosstalkTrajectory(st *sim.State, res *transpile.Result, model Model, x Crosstalk, rng *rand.Rand) {
	for _, op := range res.Ops {
		st.ApplyOp(op)
		if op.Kind == gate.CX {
			x.Apply(st, op.Qubits[0], op.Qubits[1], rng)
		}
		p := model.errorProb(op.Kind)
		if p > 0 && rng.Float64() < p {
			if op.Kind == gate.CX {
				pl := uint8(1 + rng.IntN(15))
				pauli1(st, op.Qubits[0], pl>>2)
				pauli1(st, op.Qubits[1], pl&3)
			} else {
				pauli1(st, op.Qubits[0], uint8(1+rng.IntN(3)))
			}
		}
	}
}
