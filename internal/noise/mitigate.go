package noise

import "fmt"

// Readout-error mitigation in the calibration-matrix style of
// Leymann & Barzen (the paper's Ref. [5]) — the "impact of error
// mitigation" item the paper defers to future work. For the symmetric
// per-bit flip model used by ApplyReadoutError the full 2^w x 2^w
// calibration matrix factorizes into a tensor power of the 2x2 bit
// matrix M = [[1-p, p], [p, 1-p]], whose inverse is again a tensor
// power, so mitigation runs in O(w·2^w) instead of O(4^w).

// MitigateReadout applies the inverse calibration transform for a known
// per-bit flip probability to an observed distribution. The raw inverse
// can produce small negative entries (it is not a stochastic matrix);
// they are clipped and the result renormalized, the standard practical
// recipe.
//
// The distribution length must be a power of two (one bin per outcome
// of a w-bit register) and flip must lie in [0, 0.5): the bit channel
// is non-invertible at 0.5 and label-swapped beyond. Violations return
// an error rather than panicking — observed distributions and flip
// rates are typically runtime data (CLI flags, calibration files), not
// programmer constants.
func MitigateReadout(observed []float64, flip float64) ([]float64, error) {
	if len(observed) == 0 || len(observed)&(len(observed)-1) != 0 {
		return nil, fmt.Errorf("noise: distribution length %d is not a power of two", len(observed))
	}
	if flip < 0 {
		return nil, fmt.Errorf("noise: readout flip probability %g is negative", flip)
	}
	if flip >= 0.5 {
		return nil, fmt.Errorf("noise: readout flip probability %g is not mitigable (channel non-invertible at 0.5)", flip)
	}
	out := append([]float64(nil), observed...)
	if flip == 0 {
		return out, nil
	}
	w := 0
	for 1<<uint(w) < len(observed) {
		w++
	}
	// Inverse of [[1-p, p], [p, 1-p]] is 1/(1-2p) · [[1-p, -p], [-p, 1-p]].
	inv := 1 / (1 - 2*flip)
	a := (1 - flip) * inv
	b := -flip * inv
	tmp := make([]float64, len(out))
	for bit := 0; bit < w; bit++ {
		mask := 1 << uint(bit)
		for v := range out {
			tmp[v] = a*out[v] + b*out[v^mask]
		}
		out, tmp = tmp, out
	}
	// Clip and renormalize.
	var total float64
	for i, p := range out {
		if p < 0 {
			out[i] = 0
		} else {
			total += p
		}
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out, nil
}
