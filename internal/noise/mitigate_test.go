package noise_test

import (
	"math"
	"testing"
	"testing/quick"

	"qfarith/internal/noise"
)

func mitigate(t *testing.T, observed []float64, flip float64) []float64 {
	t.Helper()
	out, err := noise.MitigateReadout(observed, flip)
	if err != nil {
		t.Fatalf("MitigateReadout(len %d, flip %g): %v", len(observed), flip, err)
	}
	return out
}

func TestMitigateInvertsReadout(t *testing.T) {
	ideal := []float64{0.7, 0, 0.1, 0.2, 0, 0, 0, 0}
	for _, flip := range []float64{0.01, 0.05, 0.2} {
		observed := noise.ApplyReadoutError(ideal, flip)
		recovered := mitigate(t, observed, flip)
		for i := range ideal {
			if d := math.Abs(recovered[i] - ideal[i]); d > 1e-9 {
				t.Errorf("flip=%g bin %d: recovered %g, want %g", flip, i, recovered[i], ideal[i])
			}
		}
	}
}

func TestMitigateZeroFlipIsIdentity(t *testing.T) {
	d := []float64{0.25, 0.75}
	out := mitigate(t, d, 0)
	if out[0] != 0.25 || out[1] != 0.75 {
		t.Errorf("zero flip changed distribution: %v", out)
	}
}

func TestMitigateClipsNegatives(t *testing.T) {
	// A distribution inconsistent with the model (e.g. statistical
	// fluctuation) can invert to negative entries; the result must stay
	// a valid distribution.
	observed := []float64{0.02, 0.98}
	out := mitigate(t, observed, 0.3)
	var sum float64
	for _, p := range out {
		if p < 0 {
			t.Errorf("negative probability %g survived", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("mitigated distribution sums to %g", sum)
	}
}

func TestMitigateRejectsHalfFlip(t *testing.T) {
	for _, flip := range []float64{0.5, 0.75, 1} {
		if _, err := noise.MitigateReadout([]float64{0.5, 0.5}, flip); err == nil {
			t.Errorf("flip=%g: expected error, got nil", flip)
		}
	}
}

func TestMitigateRejectsNegativeFlip(t *testing.T) {
	if _, err := noise.MitigateReadout([]float64{0.5, 0.5}, -0.1); err == nil {
		t.Error("negative flip: expected error, got nil")
	}
}

// TestMitigateRejectsNonPowerOfTwo is the regression test for the
// out-of-range indexing bug: a 6-bin distribution used to index
// out[v^mask] past the slice end (v=2, mask=4 → 6) and panic.
func TestMitigateRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 5, 6, 7, 12} {
		observed := make([]float64, n)
		for i := range observed {
			observed[i] = 1 / float64(n)
		}
		if _, err := noise.MitigateReadout(observed, 0.1); err == nil {
			t.Errorf("len=%d: expected error, got nil", n)
		}
	}
}

func TestMitigateRoundTripProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		// Random 16-bin distribution, random flip < 0.25.
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / float64(1<<53)
		}
		ideal := make([]float64, 16)
		var tot float64
		for i := range ideal {
			ideal[i] = next()
			tot += ideal[i]
		}
		for i := range ideal {
			ideal[i] /= tot
		}
		flip := 0.25 * next()
		recovered, err := noise.MitigateReadout(noise.ApplyReadoutError(ideal, flip), flip)
		if err != nil {
			return false
		}
		for i := range ideal {
			if math.Abs(recovered[i]-ideal[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMitigationRecoversSuccessMetric demonstrates the end-to-end value:
// readout noise that flips the paper's success metric is repaired by
// mitigation.
func TestMitigationRecoversSuccessMetric(t *testing.T) {
	// Ideal: two correct outputs at 0.5/0.5 over 16 bins.
	ideal := make([]float64, 16)
	ideal[3] = 0.5
	ideal[9] = 0.5
	flip := 0.15
	observed := noise.ApplyReadoutError(ideal, flip)
	mitigated := mitigate(t, observed, flip)
	// Observed leaks notable mass to neighbors; mitigated restores it.
	if observed[3] > 0.35 {
		t.Fatalf("test premise broken: observed[3] = %g", observed[3])
	}
	if mitigated[3] < 0.49 || mitigated[9] < 0.49 {
		t.Errorf("mitigation failed to restore mass: %g, %g", mitigated[3], mitigated[9])
	}
}
