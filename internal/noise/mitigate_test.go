package noise_test

import (
	"math"
	"testing"
	"testing/quick"

	"qfarith/internal/noise"
)

func TestMitigateInvertsReadout(t *testing.T) {
	ideal := []float64{0.7, 0, 0.1, 0.2, 0, 0, 0, 0}
	for _, flip := range []float64{0.01, 0.05, 0.2} {
		observed := noise.ApplyReadoutError(ideal, flip)
		recovered := noise.MitigateReadout(observed, flip)
		for i := range ideal {
			if d := math.Abs(recovered[i] - ideal[i]); d > 1e-9 {
				t.Errorf("flip=%g bin %d: recovered %g, want %g", flip, i, recovered[i], ideal[i])
			}
		}
	}
}

func TestMitigateZeroFlipIsIdentity(t *testing.T) {
	d := []float64{0.25, 0.75}
	out := noise.MitigateReadout(d, 0)
	if out[0] != 0.25 || out[1] != 0.75 {
		t.Errorf("zero flip changed distribution: %v", out)
	}
}

func TestMitigateClipsNegatives(t *testing.T) {
	// A distribution inconsistent with the model (e.g. statistical
	// fluctuation) can invert to negative entries; the result must stay
	// a valid distribution.
	observed := []float64{0.02, 0.98}
	out := noise.MitigateReadout(observed, 0.3)
	var sum float64
	for _, p := range out {
		if p < 0 {
			t.Errorf("negative probability %g survived", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("mitigated distribution sums to %g", sum)
	}
}

func TestMitigatePanicsAtHalf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic at flip = 0.5")
		}
	}()
	noise.MitigateReadout([]float64{0.5, 0.5}, 0.5)
}

func TestMitigateRoundTripProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		// Random 16-bin distribution, random flip < 0.25.
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / float64(1<<53)
		}
		ideal := make([]float64, 16)
		var tot float64
		for i := range ideal {
			ideal[i] = next()
			tot += ideal[i]
		}
		for i := range ideal {
			ideal[i] /= tot
		}
		flip := 0.25 * next()
		recovered := noise.MitigateReadout(noise.ApplyReadoutError(ideal, flip), flip)
		for i := range ideal {
			if math.Abs(recovered[i]-ideal[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMitigationRecoversSuccessMetric demonstrates the end-to-end value:
// readout noise that flips the paper's success metric is repaired by
// mitigation.
func TestMitigationRecoversSuccessMetric(t *testing.T) {
	// Ideal: two correct outputs at 0.5/0.5 over 16 bins.
	ideal := make([]float64, 16)
	ideal[3] = 0.5
	ideal[9] = 0.5
	flip := 0.15
	observed := noise.ApplyReadoutError(ideal, flip)
	mitigated := noise.MitigateReadout(observed, flip)
	// Observed leaks notable mass to neighbors; mitigated restores it.
	if observed[3] > 0.35 {
		t.Fatalf("test premise broken: observed[3] = %g", observed[3])
	}
	if mitigated[3] < 0.49 || mitigated[9] < 0.49 {
		t.Errorf("mitigation failed to restore mass: %g, %g", mitigated[3], mitigated[9])
	}
}
