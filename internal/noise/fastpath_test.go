package noise_test

import (
	"fmt"
	"math"
	"runtime/debug"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
	"qfarith/internal/sim"
	"qfarith/internal/testutil"
	"qfarith/internal/transpile"
)

// randomState returns a normalized random n-qubit statevector.
func randomState(n int, seed uint64) []complex128 {
	rng := testutil.NewRand(seed)
	amps := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range amps {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		amps[i] = complex(re, im)
		norm += re*re + im*im
	}
	s := complex(1/math.Sqrt(norm), 0)
	for i := range amps {
		amps[i] *= s
	}
	return amps
}

// TestFusedProgramMatchesOpByOp is the fast-path property test: for
// random QFA and QFM circuits across AQFT depths, the fused execution
// path (diagonal-run kernel + coalesced 1q matrices) must agree with
// op-by-op source execution to 1e-12 per amplitude. Diagonal runs are
// bit-exact by construction; the tolerance absorbs the reassociated 1q
// matrix products.
func TestFusedProgramMatchesOpByOp(t *testing.T) {
	type tc struct {
		name string
		res  *transpile.Result
	}
	var cases []tc
	for _, d := range []int{1, 2, 3, qft.Full} {
		c := arith.NewQFA(3, 4, arith.Config{Depth: d, AddCut: arith.FullAdd})
		cases = append(cases, tc{name: fmt.Sprintf("qfa-d%d", d), res: transpile.Transpile(c)})
	}
	for _, d := range []int{1, 2, qft.Full} {
		c := arith.NewQFM(3, 3, arith.Config{Depth: d, AddCut: arith.FullAdd})
		cases = append(cases, tc{name: fmt.Sprintf("qfm-d%d", d), res: transpile.Transpile(c)})
	}
	for ci, c := range cases {
		e := noise.NewEngine(c.res, noise.Noiseless)
		n := c.res.NumQubits
		for trial := 0; trial < 3; trial++ {
			initial := randomState(n, uint64(1000*ci+trial))
			fused := sim.NewState(n)
			fused.SetAmplitudes(initial)
			e.RunTrajectory(fused, nil) // no events: pure fused path
			ref := sim.NewState(n)
			ref.SetAmplitudes(initial)
			for _, op := range c.res.Source {
				ref.ApplyOp(op)
			}
			for i, a := range fused.Amps() {
				if d := a - ref.Amps()[i]; math.Hypot(real(d), imag(d)) > 1e-12 {
					t.Fatalf("%s trial %d: amp %d fused %v vs op-by-op %v",
						c.name, trial, i, a, ref.Amps()[i])
				}
			}
		}
	}
}

// TestCheckpointedMixtureBitIdentical pins the determinism contract of
// the checkpointed MixtureInto: grouping trajectories by first-error
// span and branching off a shared prefix must reproduce the naive
// loop — sample, simulate from scratch, accumulate, K times — down to
// the last bit, because fixed-seed sweep outputs are part of the
// repo's reproducibility guarantees.
func TestCheckpointedMixtureBitIdentical(t *testing.T) {
	c := arith.NewQFA(3, 4, arith.Config{Depth: 3, AddCut: arith.FullAdd})
	e := noise.NewEngine(transpile.Transpile(c), noise.PaperModel(0.004, 0.01))
	measure := arith.Range(3, 4)
	const k = 24
	for trial := 0; trial < 4; trial++ {
		initial := make([]complex128, 1<<7)
		initial[(trial*5)%8|(trial*11)%16<<3] = 1

		// Checkpointed engine path.
		st := sim.NewState(7)
		got := make([]float64, 16)
		e.MixtureInto(got, st, initial, noise.MixtureOpts{
			Trajectories: k, Measure: measure,
		}, testutil.NewRand(uint64(42+trial)))

		// Naive reference: identical RNG seed, one full simulation per
		// trajectory, accumulation in sample order after the ideal stratum.
		rng := testutil.NewRand(uint64(42 + trial))
		want := make([]float64, 16)
		ideal := make([]float64, 16)
		st.SetAmplitudes(initial)
		e.RunTrajectory(st, nil)
		st.RegisterProbsInto(ideal, measure)
		sim.MixInto(want, ideal, e.NoErrorProb())
		marg := make([]float64, 16)
		wt := (1 - e.NoErrorProb()) / k
		for tr := 0; tr < k; tr++ {
			events := e.SampleConditional(rng)
			st.SetAmplitudes(initial)
			e.RunTrajectory(st, events)
			st.RegisterProbsInto(marg, measure)
			sim.MixInto(want, marg, wt)
		}

		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: P(%d) = %x, naive loop %x (Δ=%g)",
					trial, i, math.Float64bits(got[i]), math.Float64bits(want[i]),
					got[i]-want[i])
			}
		}
	}
}

// TestMixtureSteadyStateZeroAlloc enforces the scratch-reuse contract:
// once the pools are warm, a MixtureInto call allocates nothing. GC is
// disabled for the measurement because a collection mid-run legitimately
// empties the sync.Pools and forces refills.
func TestMixtureSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc contract is checked in the non-race run")
	}
	c := arith.NewQFA(3, 4, arith.Config{Depth: 3, AddCut: arith.FullAdd})
	e := noise.NewEngine(transpile.Transpile(c), noise.PaperModel(0.004, 0.01))
	measure := arith.Range(3, 4)
	st := sim.NewState(7)
	initial := make([]complex128, st.Dim())
	initial[1] = 1
	out := make([]float64, 16)
	rng := testutil.NewRand(7)

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Warm every pool with a larger trajectory count than the measured
	// runs use, so event/marginal buffers can only shrink afterwards.
	e.MixtureInto(out, st, initial, noise.MixtureOpts{Trajectories: 96, Measure: measure}, rng)

	allocs := testing.AllocsPerRun(5, func() {
		e.MixtureInto(out, st, initial, noise.MixtureOpts{Trajectories: 16, Measure: measure}, rng)
	})
	if allocs != 0 {
		t.Errorf("steady-state MixtureInto allocates %.1f objects per call, want 0", allocs)
	}
}
