package noise

import (
	"fmt"
	"math"
	"math/cmplx"

	"qfarith/internal/gate"
	"qfarith/internal/sim"
)

// An event-containing span is expanded into its native gates, each a
// full pass over the statevector, even though the whole span acts on at
// most three qubits. Composing the span's natives — with the Pauli
// insertions at their exact physical positions — into one small dense
// unitary and applying it with a single ApplyKQ pass replaces ~5-20
// strided statevector passes per event span. The composition happens in
// an 8x8 (or smaller) matrix, so its cost is negligible next to one
// statevector pass.

const maxDenseDim = 1 << sim.MaxDenseQubits

// applyEventSpan applies span si's native ops, with the given events
// (all inside the span, sorted by PhysIdx) inserted, to st as one dense
// unitary. Returns false if the span touches more than MaxDenseQubits
// distinct qubits, in which case the caller must expand it natively.
func (e *Engine) applyEventSpan(st *sim.State, si int, events []Event) bool {
	var qs [sim.MaxDenseQubits]int
	var rm [maxDenseDim * maxDenseDim]complex128
	k, ok := e.composeEventSpan(si, events, &qs, &rm)
	if !ok {
		return false
	}
	st.ApplyKQ(qs[:k], rm[:(1<<uint(k))*(1<<uint(k))])
	return true
}

// applyEventSpanLane is applyEventSpan on one lane of a batch: the same
// composed dense unitary goes through ApplyKQBatch, whose per-lane
// arithmetic is bit-identical to State.ApplyKQ.
func (e *Engine) applyEventSpanLane(bs *sim.BatchState, si int, events []Event, lane int) bool {
	var qs [sim.MaxDenseQubits]int
	var rm [maxDenseDim * maxDenseDim]complex128
	k, ok := e.composeEventSpan(si, events, &qs, &rm)
	if !ok {
		return false
	}
	bs.ApplyKQBatch(qs[:k], rm[:(1<<uint(k))*(1<<uint(k))], lane, lane+1)
	return true
}

// composeEventSpan composes span si's native ops with the given events
// inserted into one row-major dense unitary on the span's distinct
// qubits, filling qs[:k] and rm[:2^k*2^k]. Returns ok=false if the span
// touches more than MaxDenseQubits distinct qubits.
func (e *Engine) composeEventSpan(si int, events []Event, qs *[sim.MaxDenseQubits]int, rm *[maxDenseDim * maxDenseDim]complex128) (int, bool) {
	span := e.Res.Spans[si]
	k := 0
	for pi := span.Start; pi < span.End; pi++ {
		op := e.Res.Ops[pi]
		for a := 0; a < op.Kind.Arity(); a++ {
			q := op.Qubits[a]
			seen := false
			for i := 0; i < k; i++ {
				if qs[i] == q {
					seen = true
					break
				}
			}
			if !seen {
				if k == sim.MaxDenseQubits {
					return 0, false
				}
				qs[k] = q
				k++
			}
		}
	}
	dim := 1 << uint(k)
	// Column-major identity: d[j*dim+i] = <i|U|j>, so each column is a
	// contiguous state the local kernels evolve.
	var d [maxDenseDim * maxDenseDim]complex128
	for j := 0; j < dim; j++ {
		d[j*dim+j] = 1
	}
	ei := 0
	for pi := span.Start; pi < span.End; pi++ {
		op := e.Res.Ops[pi]
		if op.Kind == gate.CX {
			localCX(d[:], dim, localBit(*qs, k, op.Qubits[0]), localBit(*qs, k, op.Qubits[1]))
		} else if op.Kind != gate.I {
			m00, m01, m10, m11 := native1Q(op.Kind, op.Theta)
			local1Q(d[:], dim, localBit(*qs, k, op.Qubits[0]), m00, m01, m10, m11)
		}
		for ei < len(events) && events[ei].PhysIdx == pi {
			ev := events[ei]
			if op.Kind == gate.CX {
				applyLocalPauli(d[:], dim, localBit(*qs, k, op.Qubits[0]), ev.Pauli>>2)
				applyLocalPauli(d[:], dim, localBit(*qs, k, op.Qubits[1]), ev.Pauli&3)
			} else {
				applyLocalPauli(d[:], dim, localBit(*qs, k, op.Qubits[0]), ev.Pauli)
			}
			ei++
		}
	}
	if ei != len(events) {
		panic("noise: span events out of range")
	}
	// ApplyKQ wants row-major.
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			rm[i*dim+j] = d[j*dim+i]
		}
	}
	return k, true
}

// localBit maps a global qubit to its local bit index within the span.
func localBit(qs [sim.MaxDenseQubits]int, k, q int) int {
	for i := 0; i < k; i++ {
		if qs[i] == q {
			return i
		}
	}
	panic("noise: qubit not in span")
}

// native1Q returns the 2x2 unitary of a non-CX native-basis gate,
// matching gate.Base without its matrix allocation.
func native1Q(k gate.Kind, theta float64) (m00, m01, m10, m11 complex128) {
	switch k {
	case gate.X:
		return 0, 1, 1, 0
	case gate.SX:
		return (1 + 1i) / 2, (1 - 1i) / 2, (1 - 1i) / 2, (1 + 1i) / 2
	case gate.RZ:
		return cmplx.Exp(complex(0, -theta/2)), 0, 0, cmplx.Exp(complex(0, theta/2))
	case gate.Z:
		return 1, 0, 0, -1
	case gate.S:
		return 1, 0, 0, 1i
	case gate.Sdg:
		return 1, 0, 0, -1i
	case gate.T:
		return 1, 0, 0, cmplx.Exp(complex(0, math.Pi/4))
	case gate.Tdg:
		return 1, 0, 0, cmplx.Exp(complex(0, -math.Pi/4))
	case gate.H:
		s2 := complex(1/math.Sqrt2, 0)
		return s2, s2, s2, -s2
	case gate.P:
		return 1, 0, 0, cmplx.Exp(complex(0, theta))
	default:
		panic(fmt.Sprintf("noise: %s is not a 1q native gate", k))
	}
}

// applyLocalPauli left-multiplies a 1q Pauli (1..3 = X, Y, Z) on local
// bit l onto d.
func applyLocalPauli(d []complex128, dim, l int, p uint8) {
	switch p {
	case 1:
		local1Q(d, dim, l, 0, 1, 1, 0)
	case 2:
		local1Q(d, dim, l, 0, complex(0, -1), complex(0, 1), 0)
	case 3:
		local1Q(d, dim, l, 1, 0, 0, -1)
	}
}

// localCX left-multiplies a CX (control c, target t, local bits) onto
// every column of d.
func localCX(d []complex128, dim, c, t int) {
	cbit, tbit := 1<<uint(c), 1<<uint(t)
	for j := 0; j < dim; j++ {
		col := d[j*dim : (j+1)*dim]
		for i := 0; i < dim; i++ {
			if i&cbit != 0 && i&tbit == 0 {
				col[i], col[i|tbit] = col[i|tbit], col[i]
			}
		}
	}
}

// local1Q left-multiplies a 2x2 unitary on local bit l onto every
// column of d.
func local1Q(d []complex128, dim, l int, m00, m01, m10, m11 complex128) {
	step := 1 << uint(l)
	for j := 0; j < dim; j++ {
		col := d[j*dim : (j+1)*dim]
		for g := 0; g < dim; g += 2 * step {
			for i := g; i < g+step; i++ {
				a0, a1 := col[i], col[i+step]
				col[i] = m00*a0 + m01*a1
				col[i+step] = m10*a0 + m11*a1
			}
		}
	}
}
