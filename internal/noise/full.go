package noise

import (
	"math/rand/v2"

	"qfarith/internal/gate"
	"qfarith/internal/sim"
	"qfarith/internal/transpile"
)

// FullEngine simulates the "everything on" regime the paper lists as
// future work: depolarizing gate errors, thermal relaxation (amplitude
// damping + dephasing) applied for each native gate's duration on its
// qubits, and readout error at measurement. Because amplitude damping is
// not a Pauli mixture, the stratified no-error trick of Engine does not
// apply; distributions are estimated by plain trajectory averaging.
type FullEngine struct {
	Res     *transpile.Result
	Model   Model
	Thermal ThermalParams
	// ReadoutFlip is the per-bit measurement flip probability.
	ReadoutFlip float64
	// Coherent adds systematic (non-stochastic) control errors.
	Coherent CoherentParams
}

// CoherentParams model systematic miscalibration: every native 1q
// rotation-like gate over-rotates about Z by OverRotation1q radians and
// every CX is followed by a ZZ-like phase error of OverRotation2q on
// its target. Unlike the stochastic channels these errors are identical
// in every trajectory and can interfere constructively — the behaviour
// that distinguishes calibration drift from decoherence.
type CoherentParams struct {
	OverRotation1q float64
	OverRotation2q float64
}

// Enabled reports whether any coherent error is configured.
func (c CoherentParams) Enabled() bool {
	return c.OverRotation1q != 0 || c.OverRotation2q != 0
}

// NewFullEngine bundles the composite noise configuration.
func NewFullEngine(res *transpile.Result, model Model, thermal ThermalParams, readoutFlip float64) *FullEngine {
	return &FullEngine{Res: res, Model: model, Thermal: thermal, ReadoutFlip: readoutFlip}
}

// RunTrajectory applies one full-noise trajectory of the circuit to st.
func (f *FullEngine) RunTrajectory(st *sim.State, rng *rand.Rand) {
	for _, op := range f.Res.Ops {
		st.ApplyOp(op)
		// Coherent miscalibration: deterministic extra rotations.
		if f.Coherent.Enabled() {
			if op.Kind == gate.CX {
				if f.Coherent.OverRotation2q != 0 {
					st.Phase(op.Qubits[1], f.Coherent.OverRotation2q)
				}
			} else if f.Coherent.OverRotation1q != 0 {
				st.Phase(op.Qubits[0], f.Coherent.OverRotation1q)
			}
		}
		// Depolarizing branch, matching Engine's channel probabilities.
		p := f.Model.errorProb(op.Kind)
		if p > 0 && rng.Float64() < p {
			if op.Kind == gate.CX {
				pl := uint8(1 + rng.IntN(15))
				pauli1(st, op.Qubits[0], pl>>2)
				pauli1(st, op.Qubits[1], pl&3)
			} else {
				pauli1(st, op.Qubits[0], uint8(1+rng.IntN(3)))
			}
		}
		// Thermal relaxation for the gate's duration on its qubits.
		if f.Thermal.Enabled() {
			dt := f.Thermal.Gate1qTime
			if op.Kind == gate.CX {
				dt = f.Thermal.Gate2qTime
			}
			gamma := f.Thermal.Gamma(dt)
			pz := f.Thermal.DephaseProb(dt)
			for _, q := range op.Active() {
				ApplyAmplitudeDamping(st, q, gamma, rng)
				ApplyPhaseFlip(st, q, pz, rng)
			}
		}
	}
}

// EstimateDist averages K full-noise trajectories started from the given
// initial amplitudes and returns the measured register's distribution,
// with readout error folded in.
func (f *FullEngine) EstimateDist(st *sim.State, initial []complex128, measure []int, k int, rng *rand.Rand) []float64 {
	if k < 1 {
		k = 1
	}
	out := make([]float64, 1<<uint(len(measure)))
	w := 1 / float64(k)
	for t := 0; t < k; t++ {
		st.SetAmplitudes(initial)
		f.RunTrajectory(st, rng)
		sim.MixInto(out, st.RegisterProbs(measure), w)
	}
	if f.ReadoutFlip > 0 {
		out = ApplyReadoutError(out, f.ReadoutFlip)
	}
	return out
}
