package noise_test

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"qfarith/internal/gate"
	"qfarith/internal/noise"
	"qfarith/internal/testutil"
)

// mirrorSampler re-derives the engine's conditional sampler from the
// RNG draw-order contract in DESIGN.md ("Batched trajectory engine"),
// using only the exported model and circuit. If the engine ever
// consumes randomness in a different order — an extra draw, a skipped
// draw, a reordered Pauli label — the mirrored stream diverges and the
// tests below fail. The order is load-bearing: fixed-seed sweep CSVs
// (and the scalar/batched bit-identity guarantee) depend on it.
type mirrorSampler struct {
	kinds    []gate.Kind
	probs    []float64
	cumFirst []float64
}

func newMirrorSampler(e *noise.Engine) *mirrorSampler {
	m := &mirrorSampler{}
	for _, op := range e.Res.Ops {
		m.kinds = append(m.kinds, op.Kind)
		var p float64
		switch op.Kind {
		case gate.CX:
			p = e.Model.TwoQubit * 15.0 / 16.0
		case gate.X, gate.SX:
			p = e.Model.OneQubit * 3.0 / 4.0
		case gate.I, gate.RZ:
			if e.Model.NoiseOnRZ {
				p = e.Model.OneQubit * 3.0 / 4.0
			}
		}
		m.probs = append(m.probs, p)
	}
	// First-error CDF, same arithmetic order as noise.NewEngine so the
	// floats are bit-identical.
	surv := 1.0
	acc := 0.0
	m.cumFirst = make([]float64, len(m.probs))
	w0 := surv
	for _, p := range m.probs {
		w0 *= 1 - p
	}
	norm := 1 - w0
	for i, p := range m.probs {
		acc += surv * p / norm
		m.cumFirst[i] = acc
		surv *= 1 - p
	}
	m.cumFirst[len(m.cumFirst)-1] = 1
	return m
}

func (m *mirrorSampler) pauli(i int, rng *rand.Rand) uint8 {
	if m.kinds[i] == gate.CX {
		return uint8(1 + rng.IntN(15))
	}
	return uint8(1 + rng.IntN(3))
}

// sample draws one conditional trajectory per the documented contract:
// one uniform for the first-error position (binary search in cumFirst),
// its Pauli label, then one Bernoulli per later noisy op with a label
// draw on each hit. Ops with zero error probability consume nothing.
func (m *mirrorSampler) sample(rng *rand.Rand) []noise.Event {
	u := rng.Float64()
	lo, hi := 0, len(m.cumFirst)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if m.cumFirst[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	events := []noise.Event{{PhysIdx: lo, Pauli: m.pauli(lo, rng)}}
	for i := lo + 1; i < len(m.probs); i++ {
		if p := m.probs[i]; p > 0 && rng.Float64() < p {
			events = append(events, noise.Event{PhysIdx: i, Pauli: m.pauli(i, rng)})
		}
	}
	return events
}

// TestConditionalDrawOrderContract checks SampleConditional against the
// independently mirrored sampler over many sequential trajectories
// sharing one RNG stream — exactly how MixtureInto consumes it.
func TestConditionalDrawOrderContract(t *testing.T) {
	e := qfaEngine(3, noise.PaperModel(0.01, 0.03))
	m := newMirrorSampler(e)
	rngEngine := testutil.NewRand(7)
	rngMirror := testutil.NewRand(7)
	for traj := 0; traj < 256; traj++ {
		got := e.SampleConditional(rngEngine)
		want := m.sample(rngMirror)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trajectory %d: engine events %v, mirror (DESIGN.md contract) %v", traj, got, want)
		}
	}
}

// TestConditionalDrawOrderPinned pins the literal event sequence for a
// fixed seed. This golden sequence freezes the RNG draw order end to
// end (PCG stream, CDF construction, binary-search tie-breaking, Pauli
// label draws): a diff here means previously recorded fixed-seed sweep
// results no longer reproduce, which must be a deliberate, documented
// break — update DESIGN.md's contract section along with this table.
func TestConditionalDrawOrderPinned(t *testing.T) {
	e := qfaEngine(3, noise.PaperModel(0.01, 0.03))
	rng := testutil.NewRand(7)
	want := [][]noise.Event{
		{{3, 1}},
		{{53, 4}},
		{{126, 2}},
		{{29, 14}, {78, 13}, {81, 3}},
		{{60, 14}, {76, 3}, {110, 3}, {114, 15}},
		{{113, 3}},
		{{72, 2}, {103, 1}, {108, 3}},
		{{29, 9}, {63, 14}, {70, 5}},
	}
	for traj, wantEv := range want {
		got := e.SampleConditional(rng)
		var gotCompact []noise.Event
		gotCompact = append(gotCompact, got...)
		if !reflect.DeepEqual(gotCompact, wantEv) {
			t.Fatalf("trajectory %d: got %v, want pinned %v", traj, got, wantEv)
		}
	}
}
