package noise

import (
	"math"
	"math/rand/v2"

	"qfarith/internal/sim"
)

// This file implements the error sources the paper explicitly defers to
// future work (Sec. 1 and Sec. 5): thermal relaxation (amplitude
// damping + dephasing derived from T1/T2), and qubit measurement
// (readout) errors — plus elementary bit/phase-flip channels. They
// compose with the depolarizing gate errors through FullEngine.

// ApplyBitFlip applies the bit-flip channel to qubit q of a trajectory:
// X with probability p.
func ApplyBitFlip(st *sim.State, q int, p float64, rng *rand.Rand) {
	if p > 0 && rng.Float64() < p {
		st.X(q)
	}
}

// ApplyPhaseFlip applies the phase-flip channel: Z with probability p.
func ApplyPhaseFlip(st *sim.State, q int, p float64, rng *rand.Rand) {
	if p > 0 && rng.Float64() < p {
		st.Z(q)
	}
}

// ApplyAmplitudeDamping applies one trajectory branch of the amplitude
// damping channel with parameter gamma to qubit q: the decay Kraus
// operator K1 = sqrt(γ)|0><1| fires with the state-dependent probability
// γ·P(q=1); otherwise K0 = diag(1, sqrt(1-γ)) is applied. Either branch
// renormalizes, as Kraus trajectory sampling requires.
func ApplyAmplitudeDamping(st *sim.State, q int, gamma float64, rng *rand.Rand) {
	if gamma <= 0 {
		return
	}
	p1 := excitedPopulation(st, q)
	pDecay := gamma * p1
	if pDecay > 0 && rng.Float64() < pDecay {
		// K1: project onto q=1, move amplitude to q=0.
		amps := st.Amps()
		step := 1 << uint(q)
		for g := 0; g < len(amps); g += 2 * step {
			for i := g; i < g+step; i++ {
				amps[i] = amps[i+step]
				amps[i+step] = 0
			}
		}
		st.Normalize()
		return
	}
	// K0: damp the |1> component and renormalize.
	damp := complex(math.Sqrt(1-gamma), 0)
	amps := st.Amps()
	step := 1 << uint(q)
	for g := step; g < len(amps); g += 2 * step {
		for i := g; i < g+step; i++ {
			amps[i] *= damp
		}
	}
	st.Normalize()
}

// excitedPopulation returns P(qubit q = 1).
func excitedPopulation(st *sim.State, q int) float64 {
	amps := st.Amps()
	step := 1 << uint(q)
	var p float64
	for g := step; g < len(amps); g += 2 * step {
		for i := g; i < g+step; i++ {
			a := amps[i]
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// ThermalParams derives per-gate relaxation from device times, in
// arbitrary but consistent units (IBM-typical values: T1 ≈ 100µs,
// T2 ≈ 80µs, 1q gates ≈ 35ns, CX ≈ 300ns).
type ThermalParams struct {
	T1, T2     float64
	Gate1qTime float64
	Gate2qTime float64
}

// IBMTypicalThermal is a representative superconducting parameter set.
var IBMTypicalThermal = ThermalParams{
	T1: 100e-6, T2: 80e-6, Gate1qTime: 35e-9, Gate2qTime: 300e-9,
}

// Enabled reports whether the parameters describe any relaxation.
func (t ThermalParams) Enabled() bool { return t.T1 > 0 }

// Gamma returns the amplitude-damping parameter for duration dt:
// γ = 1 - exp(-dt/T1).
func (t ThermalParams) Gamma(dt float64) float64 {
	if t.T1 <= 0 {
		return 0
	}
	return 1 - math.Exp(-dt/t.T1)
}

// DephaseProb returns the residual pure-dephasing phase-flip probability
// for duration dt after amplitude damping is accounted for:
// e^{-dt/T2} = e^{-dt/(2 T1)}·(1-2 p_z). Requires T2 <= 2 T1 (physical).
func (t ThermalParams) DephaseProb(dt float64) float64 {
	if t.T2 <= 0 {
		return 0
	}
	residual := math.Exp(-dt/t.T2 + dt/(2*t.T1))
	p := (1 - residual) / 2
	if p < 0 {
		return 0
	}
	return p
}

// ApplyReadoutError transforms an ideal output distribution into the
// distribution observed through noisy measurement in which every
// register bit flips independently with probability flip. The transform
// runs one O(2^w) pass per bit.
func ApplyReadoutError(dist []float64, flip float64) []float64 {
	out := append([]float64(nil), dist...)
	if flip <= 0 {
		return out
	}
	w := 0
	for 1<<uint(w) < len(dist) {
		w++
	}
	tmp := make([]float64, len(out))
	for b := 0; b < w; b++ {
		mask := 1 << uint(b)
		for v := range out {
			tmp[v] = (1-flip)*out[v] + flip*out[v^mask]
		}
		out, tmp = tmp, out
	}
	return out
}
