package noise_test

import (
	"fmt"
	"math"
	"runtime/debug"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
	"qfarith/internal/sim"
	"qfarith/internal/testutil"
	"qfarith/internal/transpile"
)

// TestBatchedMixtureBitIdentical pins the batched engine's core
// contract: MixtureBatchInto must reproduce MixtureInto bit for bit at
// every batch size, because the `trajectory` and `trajectory-batch`
// backends are required to emit byte-identical fixed-seed CSVs. Both
// paths share the sampling stage, so this is a test of the lockstep
// segment walk: plain lanes through the SoA kernels, special lanes
// through the scalar fallback, identical float histories throughout.
func TestBatchedMixtureBitIdentical(t *testing.T) {
	type tc struct {
		name  string
		res   *transpile.Result
		model noise.Model
		nOut  int
	}
	qfa := arith.NewQFA(3, 4, arith.Config{Depth: 3, AddCut: arith.FullAdd})
	qfm := arith.NewQFM(3, 3, arith.Config{Depth: qft.Full, AddCut: arith.FullAdd})
	cases := []tc{
		// Paper-rate noise: most lanes branch late, long shared prefixes.
		{"qfa-d3-paper", transpile.Transpile(qfa), noise.PaperModel(0.004, 0.01), 4},
		// Hot noise: many events per trajectory, dense special-lane
		// traffic through the scalar fallback.
		{"qfa-d3-hot", transpile.Transpile(qfa), noise.PaperModel(0.02, 0.08), 4},
		// Full-depth multiplier: SegOp/Seg1Q/SegDiag segment mix.
		{"qfm-full-paper", transpile.Transpile(qfm), noise.PaperModel(0.004, 0.01), 3},
	}
	const k = 24
	for _, c := range cases {
		e := noise.NewEngine(c.res, c.model)
		n := c.res.NumQubits
		measure := arith.Range(n-c.nOut, c.nOut)
		m := 1 << uint(c.nOut)

		initial := randomState(n, 99)
		want := make([]float64, m)
		wantIdeal := make([]float64, m)
		st := sim.NewState(n)
		e.MixtureInto(want, st, initial, noise.MixtureOpts{
			Trajectories: k, Measure: measure, IdealOut: wantIdeal,
		}, testutil.NewRand(4242))

		for _, batch := range []int{2, 3, 8, k, k + 9} {
			t.Run(fmt.Sprintf("%s/batch-%d", c.name, batch), func(t *testing.T) {
				got := make([]float64, m)
				gotIdeal := make([]float64, m)
				e.MixtureBatchInto(got, st, initial, noise.MixtureOpts{
					Trajectories: k, Measure: measure, IdealOut: gotIdeal,
				}, testutil.NewRand(4242), batch)
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("P(%d) = %x, scalar engine %x (Δ=%g)",
							i, math.Float64bits(got[i]), math.Float64bits(want[i]),
							got[i]-want[i])
					}
					if math.Float64bits(gotIdeal[i]) != math.Float64bits(wantIdeal[i]) {
						t.Fatalf("ideal P(%d) differs between engines", i)
					}
				}
			})
		}
	}
}

// TestBatchedMixtureScalarFallbacks checks the delegation arms: batch
// sizes that cannot batch (<=1), single-trajectory mixtures, and
// noiseless engines must all take the scalar path and agree with it.
func TestBatchedMixtureScalarFallbacks(t *testing.T) {
	c := arith.NewQFA(3, 4, arith.Config{Depth: 2, AddCut: arith.FullAdd})
	res := transpile.Transpile(c)
	measure := arith.Range(3, 4)
	initial := make([]complex128, 1<<7)
	initial[5] = 1
	st := sim.NewState(7)
	for _, tc := range []struct {
		name  string
		model noise.Model
		k     int
		batch int
	}{
		{"batch-1", noise.PaperModel(0.004, 0.01), 8, 1},
		{"batch-0", noise.PaperModel(0.004, 0.01), 8, 0},
		{"k-1", noise.PaperModel(0.004, 0.01), 1, 8},
		{"noiseless", noise.Noiseless, 8, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := noise.NewEngine(res, tc.model)
			want := make([]float64, 16)
			e.MixtureInto(want, st, initial, noise.MixtureOpts{
				Trajectories: tc.k, Measure: measure,
			}, testutil.NewRand(17))
			got := make([]float64, 16)
			e.MixtureBatchInto(got, st, initial, noise.MixtureOpts{
				Trajectories: tc.k, Measure: measure,
			}, testutil.NewRand(17), tc.batch)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("P(%d) differs from scalar engine (Δ=%g)", i, got[i]-want[i])
				}
			}
		})
	}
}

// TestBatchedMixtureSteadyStateZeroAlloc extends the scratch-reuse
// contract to the batched path: warm pools, zero allocations per call.
func TestBatchedMixtureSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc contract is checked in the non-race run")
	}
	c := arith.NewQFA(3, 4, arith.Config{Depth: 3, AddCut: arith.FullAdd})
	e := noise.NewEngine(transpile.Transpile(c), noise.PaperModel(0.004, 0.01))
	measure := arith.Range(3, 4)
	st := sim.NewState(7)
	initial := make([]complex128, st.Dim())
	initial[1] = 1
	out := make([]float64, 16)
	rng := testutil.NewRand(7)

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	e.MixtureBatchInto(out, st, initial, noise.MixtureOpts{Trajectories: 96, Measure: measure}, rng, 8)

	allocs := testing.AllocsPerRun(5, func() {
		e.MixtureBatchInto(out, st, initial, noise.MixtureOpts{Trajectories: 16, Measure: measure}, rng, 8)
	})
	if allocs != 0 {
		t.Errorf("steady-state MixtureBatchInto allocates %.1f objects per call, want 0", allocs)
	}
}
