package noise_test

import (
	"math"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/layout"
	"qfarith/internal/noise"
	"qfarith/internal/sim"
	"qfarith/internal/testutil"
	"qfarith/internal/transpile"
)

func TestCrosstalkDisabledIsNoop(t *testing.T) {
	var x noise.Crosstalk
	if x.Enabled() {
		t.Fatal("zero crosstalk should be disabled")
	}
	st := sim.NewState(3)
	st.H(0)
	ref := st.Clone()
	x.Apply(st, 0, 1, nil)
	for i := range ref.Amps() {
		if st.Amps()[i] != ref.Amps()[i] {
			t.Fatal("disabled crosstalk acted")
		}
	}
}

func TestCrosstalkPhasesSpectators(t *testing.T) {
	// Chain 0-1-2-3: CX(1,2) has spectators 0 (neighbor of 1) and
	// 3 (neighbor of 2). With all qubits in |1>, the state picks up
	// ZZPhase from each of the two spectator pairs.
	x := noise.Crosstalk{Map: layout.Linear(4), ZZPhase: 0.1}
	st := sim.NewState(4)
	st.SetBasis(0b1111)
	x.Apply(st, 1, 2, nil)
	got := st.Amps()[0b1111]
	wantPhase := 2 * 0.1 // two spectator pairs
	if math.Abs(math.Atan2(imag(got), real(got))-wantPhase) > 1e-12 {
		t.Errorf("accumulated phase %g, want %g", math.Atan2(imag(got), real(got)), wantPhase)
	}
	// A spectator in |0> contributes nothing.
	st2 := sim.NewState(4)
	st2.SetBasis(0b0110) // spectators 0 and 3 are |0>
	x.Apply(st2, 1, 2, nil)
	got2 := st2.Amps()[0b0110]
	if math.Abs(math.Atan2(imag(got2), real(got2))) > 1e-12 {
		t.Errorf("crosstalk phased a |0> spectator: %v", got2)
	}
}

func TestCrosstalkDegradesRoutedArithmetic(t *testing.T) {
	// Route a small adder onto a chain and compare success with and
	// without ZZ crosstalk (no stochastic noise, so the effect is pure
	// coherent layout error).
	a, w := 2, 3
	c := arith.NewQFA(a, w, arith.DefaultConfig())
	native := transpile.Transpile(c).Circuit()
	cm := layout.Linear(5)
	routed := layout.Route(native, cm, nil)
	res := transpile.Transpile(routed.Circuit)

	run := func(zz float64) float64 {
		st := sim.NewState(5)
		x, y := 2, 5
		st.SetBasis(x | y<<2)
		rng := testutil.NewRand(3)
		noise.RunCrosstalkTrajectory(st, res, noise.Noiseless,
			noise.Crosstalk{Map: cm, ZZPhase: zz}, rng)
		// Read the sum at its routed position.
		probs := st.RegisterProbs([]int{
			routed.FinalLayout[2], routed.FinalLayout[3], routed.FinalLayout[4],
		})
		return probs[(x+y)&7]
	}
	clean := run(0)
	if math.Abs(clean-1) > 1e-9 {
		t.Fatalf("zero-crosstalk routed adder broken: %g", clean)
	}
	mild := run(0.02)
	heavy := run(0.2)
	if mild >= 1 || heavy >= mild {
		t.Errorf("crosstalk not degrading monotonically: 1 -> %g -> %g", mild, heavy)
	}
}

func TestCrosstalkJitterIsStochastic(t *testing.T) {
	cm := layout.Linear(3)
	x := noise.Crosstalk{Map: cm, Jitter: 0.3}
	if !x.Enabled() {
		t.Fatal("jitter-only crosstalk should be enabled")
	}
	outcomes := map[complex128]bool{}
	for trial := 0; trial < 4; trial++ {
		st := sim.NewState(3)
		st.SetBasis(0b111)
		rng := testutil.NewRand(uint64(trial))
		x.Apply(st, 0, 1, rng)
		outcomes[st.Amps()[0b111]] = true
	}
	if len(outcomes) < 2 {
		t.Error("jitter produced identical phases across seeds")
	}
}
