package noise

import (
	"math/rand/v2"
	"sync"

	"qfarith/internal/gate"
	"qfarith/internal/sim"
	"qfarith/internal/telemetry"
	"qfarith/internal/transpile"
)

// Mixture-engine telemetry: trajectories simulated, error events drawn,
// and the error-containing native spans those events landed in (the
// densified/expanded spans, the expensive part of a trajectory).
// Counts are aggregated locally inside MixtureInto and recorded with
// one atomic add per call, so the per-trajectory loop stays free of
// shared-cacheline traffic.
var (
	mixTrajectories = telemetry.Default().Counter("qfarith_trajectories_total")
	mixErrorEvents  = telemetry.Default().Counter("qfarith_error_events_total")
	mixEventSpans   = telemetry.Default().Counter("qfarith_error_event_spans_total")
)

// pauli1 applies the 1q Pauli encoded 1..3 (X, Y, Z) to qubit q.
func pauli1(st *sim.State, q int, p uint8) {
	switch p {
	case 1:
		st.X(q)
	case 2:
		st.Y(q)
	case 3:
		st.Z(q)
	}
}

// applyEvent applies the Pauli insertion ev after native op ev.PhysIdx.
func (e *Engine) applyEvent(st *sim.State, ev Event) {
	op := e.Res.Ops[ev.PhysIdx]
	if op.Kind == gate.CX {
		pc := ev.Pauli >> 2
		pt := ev.Pauli & 3
		pauli1(st, op.Qubits[0], pc)
		pauli1(st, op.Qubits[1], pt)
		return
	}
	pauli1(st, op.Qubits[0], ev.Pauli)
}

// applyFusedRange applies the error-free source ops [lo, hi) to st
// through the circuit's fused program: diagonal runs go through the
// one-pass ApplyDiagTerms kernel, fused 1q runs through a single 2x2
// apply, everything else through the per-op kernels. Diagonal runs stay
// bit-exact with op-by-op execution even when [lo, hi) covers only part
// of a segment; a partially covered 1q segment falls back to op-by-op
// since its fused matrix cannot be split.
func (e *Engine) applyFusedRange(st *sim.State, lo, hi int) {
	fp := e.Res.Fused()
	for i := lo; i < hi; {
		seg := &fp.Segments[fp.SegOfSrc[i]]
		end := seg.SrcEnd
		if end > hi {
			end = hi
		}
		switch seg.Kind {
		case transpile.SegDiag:
			st.ApplyDiagTerms(seg.TermsFor(i, end))
		case transpile.Seg1Q:
			if i == seg.SrcStart && end == seg.SrcEnd {
				st.Apply1Q(seg.Qubit, seg.M[0], seg.M[1], seg.M[2], seg.M[3])
			} else {
				for j := i; j < end; j++ {
					st.ApplyOp(e.Res.Source[j])
				}
			}
		default:
			st.ApplyOp(e.Res.Source[i])
		}
		i = end
	}
}

// RunTrajectory applies the circuit to st with the given Pauli
// insertions (sorted by PhysIdx). Stretches of source ops whose native
// spans contain no event execute through the fused program; a span
// containing events is expanded into its native gates with the Paulis
// inserted at the exact physical positions, so the trajectory is
// bit-exact with a fully native simulation (up to global phase).
func (e *Engine) RunTrajectory(st *sim.State, events []Event) {
	ei := e.runTrajectoryFrom(st, events, 0)
	// Events beyond the last span would indicate corrupted input.
	if ei != len(events) {
		panic("noise: trajectory events out of range")
	}
}

// runTrajectoryFrom simulates spans [startSpan, end) with the given
// events (sorted by PhysIdx, all inside the simulated range) and returns
// how many events were consumed. st must already hold the error-free
// state after spans [0, startSpan).
func (e *Engine) runTrajectoryFrom(st *sim.State, events []Event, startSpan int) int {
	return e.runSpanRange(st, events, startSpan, len(e.Res.Spans))
}

// runSpanRange simulates spans [lo, hi) with the given events (sorted by
// PhysIdx) and returns how many events were consumed. Events whose span
// is ≥ hi are left unconsumed for a later call, so a trajectory can be
// executed as any sequence of runSpanRange calls over adjacent ranges
// and stay bit-identical to one full pass: applyFusedRange decomposes at
// segment boundaries internally, and diagonal segments split bit-exactly
// at any op boundary (Segment.TermsFor). The batched mixture path relies
// on this to interleave per-segment batched execution with scalar
// event-span fallbacks.
func (e *Engine) runSpanRange(st *sim.State, events []Event, lo, hi int) int {
	res := e.Res
	ei := 0
	for si := lo; si < hi; {
		next := hi
		if ei < len(events) {
			if s := e.spanOf[events[ei].PhysIdx]; s < hi {
				next = s
			}
		}
		if next > si {
			// Event-free stretch: fused fast path. (Spans and Source are
			// index-aligned, so span indices are source-op indices.)
			e.applyFusedRange(st, si, next)
			si = next
			continue
		}
		// The next event lands inside span si. Gather every event in the
		// span and apply natives+Paulis as one dense unitary; spans on
		// more than MaxDenseQubits qubits expand natively instead.
		span := res.Spans[si]
		e2 := ei
		for e2 < len(events) && events[e2].PhysIdx < span.End {
			e2++
		}
		if e.applyEventSpan(st, si, events[ei:e2]) {
			ei = e2
			si++
			continue
		}
		for pi := span.Start; pi < span.End; pi++ {
			st.ApplyOp(res.Ops[pi])
			for ei < len(events) && events[ei].PhysIdx == pi {
				e.applyEvent(st, events[ei])
				ei++
			}
		}
		si++
	}
	return ei
}

// MixtureOpts configures MixtureInto.
type MixtureOpts struct {
	// Trajectories is the number of conditional (≥1 error) trajectories
	// averaged to estimate the noisy component of the output mixture.
	Trajectories int
	// Measure lists the qubits (LSB first) whose marginal distribution is
	// returned.
	Measure []int
	// IdealOut, when non-nil, receives the error-free distribution that
	// MixtureInto computes for the w0 stratum (same length as out) —
	// callers use it for fidelity diagnostics without a second pass.
	IdealOut []float64
}

// mixScratch bundles every buffer MixtureInto needs so the whole working
// set recycles through one pool entry and steady-state calls allocate
// nothing.
type mixScratch struct {
	events []Event   // all K event lists, flattened
	offs   []int     // offs[t]..offs[t+1] bounds trajectory t's events
	first  []int     // first-error span index per trajectory
	order  []int     // trajectory indices sorted by first-error span
	count  []int     // counting-sort workspace
	marg   []float64 // K per-trajectory marginals, k*len(out) flat
	ideal  []float64 // error-free marginal
	// Batched-path lane bookkeeping (MixtureBatchInto only).
	laneStart []int     // per-lane first-error span (branch point)
	evCur     []int     // per-lane cursor into events (next unconsumed)
	evEnd     []int     // per-lane end of its event list
	lprob     []float64 // per-lane marginals of one batch, lane-major
}

var mixPool = sync.Pool{New: func() any { return new(mixScratch) }}

// grownInts returns buf resized to n, reallocating only when capacity is
// exceeded. Contents are unspecified.
func grownInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func grownFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// MixtureInto estimates the measurement distribution of the noisy
// circuit on the given initial amplitudes:
//
//	P ≈ w0 · P_ideal + (1-w0) · mean_K( P_trajectory | ≥1 error )
//
// The no-error stratum is exact; only the conditional remainder is Monte
// Carlo, and with Trajectories → ∞ the estimate converges to the true
// channel output. Setting Trajectories equal to the shot count
// reproduces the paper's per-shot noise semantics exactly in
// distribution. st is caller-managed scratch space (overwritten);
// initial holds the prepared input amplitudes; out must have length
// 2^len(opts.Measure).
//
// Internally the K trajectories are sampled up front (with the exact RNG
// draw order of K sequential SampleConditional calls), grouped by the
// span their first error lands in, and simulated from a checkpoint of
// the shared error-free prefix — computed once per group by a single
// forward pass that also yields the ideal stratum. Marginals accumulate
// into out in the original trajectory order, so the result is
// bit-identical to the naive loop that re-simulates every trajectory
// from the start.
func (e *Engine) MixtureInto(out []float64, st *sim.State, initial []complex128, opts MixtureOpts, rng *rand.Rand) {
	m := 1 << uint(len(opts.Measure))
	if len(out) != m {
		panic("noise: output buffer size mismatch")
	}
	if e.w0 >= 1 {
		// Error-free model: the mixture is exactly the ideal distribution.
		st.SetAmplitudes(initial)
		e.applyFusedRange(st, 0, len(e.Res.Source))
		st.RegisterProbsInto(out, opts.Measure)
		if opts.IdealOut != nil {
			copy(opts.IdealOut, out)
		}
		return
	}
	k := opts.Trajectories
	if k < 1 {
		k = 1
	}
	sc := mixPool.Get().(*mixScratch)
	defer mixPool.Put(sc)
	e.sampleAndGroup(sc, k, rng)

	// One error-free forward pass. Each group branches off the prefix at
	// its first-error span; finishing the pass yields the ideal stratum.
	nSpans := len(e.Res.Spans)
	sc.marg = grownFloats(sc.marg, k*m)
	prefix := sim.GetScratchState(st.NumQubits())
	defer sim.PutScratchState(prefix)
	prefix.SetWorkers(st.Workers())
	prefix.SetAmplitudes(initial)
	cur := 0
	for gi := 0; gi < k; {
		s := sc.first[sc.order[gi]]
		e.applyFusedRange(prefix, cur, s)
		cur = s
		for ; gi < k && sc.first[sc.order[gi]] == s; gi++ {
			t := sc.order[gi]
			st.CopyFrom(prefix)
			ev := sc.events[sc.offs[t]:sc.offs[t+1]]
			if used := e.runTrajectoryFrom(st, ev, s); used != len(ev) {
				panic("noise: trajectory events out of range")
			}
			st.RegisterProbsInto(sc.marg[t*m:(t+1)*m], opts.Measure)
		}
	}
	e.applyFusedRange(prefix, cur, nSpans)
	sc.ideal = grownFloats(sc.ideal, m)
	prefix.RegisterProbsInto(sc.ideal, opts.Measure)
	if opts.IdealOut != nil {
		copy(opts.IdealOut, sc.ideal)
	}

	// Accumulate in the order the naive loop used: ideal stratum first,
	// then trajectories 0..K-1 — identical float additions, identical out.
	for i := range out {
		out[i] = 0
	}
	sim.MixInto(out, sc.ideal, e.w0)
	wt := (1 - e.w0) / float64(k)
	for t := 0; t < k; t++ {
		sim.MixInto(out, sc.marg[t*m:(t+1)*m], wt)
	}
}

// sampleAndGroup samples the K conditional event lists into sc in
// trajectory order and computes the stable grouping of trajectories by
// first-error span. This is the single sampling stage shared by the
// scalar and batched mixture paths: all randomness is consumed here, in
// the exact per-trajectory draw order documented in DESIGN.md, so both
// paths see bit-identical event lists for a fixed seed.
func (e *Engine) sampleAndGroup(sc *mixScratch, k int, rng *rand.Rand) {
	sc.events = sc.events[:0]
	sc.offs = grownInts(sc.offs, k+1)
	for t := 0; t < k; t++ {
		sc.offs[t] = len(sc.events)
		sc.events = e.sampleConditionalAppend(sc.events, rng)
	}
	sc.offs[k] = len(sc.events)
	mixTrajectories.Add(uint64(k))
	mixErrorEvents.Add(uint64(len(sc.events)))
	spans := 0
	for t := 0; t < k; t++ {
		prev := -1
		for _, ev := range sc.events[sc.offs[t]:sc.offs[t+1]] {
			if s := e.spanOf[ev.PhysIdx]; s != prev {
				spans++
				prev = s
			}
		}
	}
	mixEventSpans.Add(uint64(spans))

	// Stable counting sort of trajectories by first-error span, so each
	// checkpoint prefix is computed once and reused by its whole group.
	nSpans := len(e.Res.Spans)
	sc.first = grownInts(sc.first, k)
	sc.count = grownInts(sc.count, nSpans+1)
	for i := range sc.count {
		sc.count[i] = 0
	}
	for t := 0; t < k; t++ {
		s := e.spanOf[sc.events[sc.offs[t]].PhysIdx]
		sc.first[t] = s
		sc.count[s]++
	}
	pos := 0
	for s := 0; s < nSpans; s++ {
		c := sc.count[s]
		sc.count[s] = pos
		pos += c
	}
	sc.order = grownInts(sc.order, k)
	for t := 0; t < k; t++ {
		sc.order[sc.count[sc.first[t]]] = t
		sc.count[sc.first[t]]++
	}
}
