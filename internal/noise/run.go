package noise

import (
	"math/rand/v2"

	"qfarith/internal/gate"
	"qfarith/internal/sim"
)

// pauli1 applies the 1q Pauli encoded 1..3 (X, Y, Z) to qubit q.
func pauli1(st *sim.State, q int, p uint8) {
	switch p {
	case 1:
		st.X(q)
	case 2:
		st.Y(q)
	case 3:
		st.Z(q)
	}
}

// applyEvent applies the Pauli insertion ev after native op ev.PhysIdx.
func (e *Engine) applyEvent(st *sim.State, ev Event) {
	op := e.Res.Ops[ev.PhysIdx]
	if op.Kind == gate.CX {
		pc := ev.Pauli >> 2
		pt := ev.Pauli & 3
		pauli1(st, op.Qubits[0], pc)
		pauli1(st, op.Qubits[1], pt)
		return
	}
	pauli1(st, op.Qubits[0], ev.Pauli)
}

// RunTrajectory applies the circuit to st with the given Pauli
// insertions (sorted by PhysIdx). Logical source ops whose native span
// contains no event are applied through their fast simulator kernel; a
// span containing events is expanded into its native gates with the
// Paulis inserted at the exact physical positions, so the trajectory is
// bit-exact with a fully native simulation (up to global phase).
func (e *Engine) RunTrajectory(st *sim.State, events []Event) {
	res := e.Res
	ei := 0
	for si, span := range res.Spans {
		if ei >= len(events) || events[ei].PhysIdx >= span.End {
			// No event inside this span: logical fast path.
			st.ApplyOp(res.Source[si])
			continue
		}
		for pi := span.Start; pi < span.End; pi++ {
			st.ApplyOp(res.Ops[pi])
			for ei < len(events) && events[ei].PhysIdx == pi {
				e.applyEvent(st, events[ei])
				ei++
			}
		}
	}
	// Events beyond the last span would indicate corrupted input.
	if ei != len(events) {
		panic("noise: trajectory events out of range")
	}
}

// MixtureOpts configures MixtureInto.
type MixtureOpts struct {
	// Trajectories is the number of conditional (≥1 error) trajectories
	// averaged to estimate the noisy component of the output mixture.
	Trajectories int
	// Measure lists the qubits (LSB first) whose marginal distribution is
	// returned.
	Measure []int
	// IdealOut, when non-nil, receives the error-free distribution that
	// MixtureInto computes for the w0 stratum (same length as out) —
	// callers use it for fidelity diagnostics without a second pass.
	IdealOut []float64
}

// MixtureInto estimates the measurement distribution of the noisy
// circuit on the given initial amplitudes:
//
//	P ≈ w0 · P_ideal + (1-w0) · mean_K( P_trajectory | ≥1 error )
//
// The no-error stratum is exact; only the conditional remainder is Monte
// Carlo, and with Trajectories → ∞ the estimate converges to the true
// channel output. Setting Trajectories equal to the shot count
// reproduces the paper's per-shot noise semantics exactly in
// distribution. st is caller-managed scratch space (overwritten);
// initial holds the prepared input amplitudes; out must have length
// 2^len(opts.Measure).
func (e *Engine) MixtureInto(out []float64, st *sim.State, initial []complex128, opts MixtureOpts, rng *rand.Rand) {
	if len(out) != 1<<uint(len(opts.Measure)) {
		panic("noise: output buffer size mismatch")
	}
	for i := range out {
		out[i] = 0
	}
	// Ideal (error-free) stratum.
	st.SetAmplitudes(initial)
	for _, op := range e.Res.Source {
		st.ApplyOp(op)
	}
	ideal := st.RegisterProbs(opts.Measure)
	if opts.IdealOut != nil {
		copy(opts.IdealOut, ideal)
	}
	if e.w0 >= 1 {
		copy(out, ideal)
		return
	}
	sim.MixInto(out, ideal, e.w0)
	k := opts.Trajectories
	if k < 1 {
		k = 1
	}
	wt := (1 - e.w0) / float64(k)
	for t := 0; t < k; t++ {
		events := e.SampleConditional(rng)
		st.SetAmplitudes(initial)
		e.RunTrajectory(st, events)
		sim.MixInto(out, st.RegisterProbs(opts.Measure), wt)
	}
}
