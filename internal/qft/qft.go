// Package qft builds Quantum Fourier Transform circuits, including the
// approximate QFT (AQFT) with the paper's per-qubit rotation-depth cutoff
// and controlled variants used by Fourier multiplication.
//
// Convention (paper Fig. 1 / Eq. 3): the register slice lists qubits from
// least significant (y_1) to most significant (y_n). The transform is the
// "QFT without final swaps" used by Draper arithmetic: after the
// transform, the wire that held y_q carries the phase qubit
// |0> + exp(2πi · 0.y_q y_{q-1} … y_1) |1> (approximated to depth d).
package qft

import (
	"math"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
)

// Full requests the untruncated QFT (no rotation cutoff). Any depth
// d >= len(register)-1 is equivalent.
const Full = math.MaxInt32

// EffectiveDepth clamps a requested approximation depth to the range
// meaningful for a w-qubit register: the deepest rotation on any qubit of
// a w-qubit QFT is R_w, i.e. depth w-1.
func EffectiveDepth(d, w int) int {
	if d >= w-1 {
		return w - 1
	}
	return d
}

// IsFull reports whether depth d leaves a w-qubit QFT untruncated.
func IsFull(d, w int) bool { return d >= w-1 }

// Gates appends the AQFT at depth d on the given register (LSB first) to
// c. Depth d keeps, on every qubit, the Hadamard plus at most d
// controlled rotations R_2 … R_{d+1}; pass Full for the exact QFT.
func Gates(c *circuit.Circuit, reg []int, d int) {
	if d < 1 {
		panic("qft: depth must be >= 1 (depth 0 would drop all rotations and the transform degenerates to Hadamards only; the paper's minimum is d=1)")
	}
	w := len(reg)
	// Process the most significant qubit first, as in Fig. 1.
	for q := w - 1; q >= 0; q-- {
		c.Append(gate.H, 0, reg[q])
		// Rotation R_l on reg[q], controlled by reg[q-(l-1)], for
		// l = 2 .. min(q+1, d+1).
		lmax := q + 1
		if d+1 < lmax {
			lmax = d + 1
		}
		for l := 2; l <= lmax; l++ {
			c.Append(gate.CP, gate.RTheta(l), reg[q-(l-1)], reg[q])
		}
	}
}

// New returns an n-qubit AQFT circuit at depth d on qubits 0..n-1.
func New(n, d int) *circuit.Circuit {
	c := circuit.New(n)
	reg := make([]int, n)
	for i := range reg {
		reg[i] = i
	}
	Gates(c, reg, d)
	return c
}

// NewInverse returns the inverse AQFT circuit at depth d on qubits 0..n-1.
func NewInverse(n, d int) *circuit.Circuit {
	return New(n, d).Inverse()
}

// InverseGates appends the inverse AQFT at depth d on reg to c.
func InverseGates(c *circuit.Circuit, reg []int, d int) {
	tmp := circuit.New(c.NumQubits)
	Gates(tmp, reg, d)
	c.Compose(tmp.Inverse())
}

// ControlledGates appends the controlled AQFT (cQFT): the AQFT on reg
// with every gate additionally controlled by qubit ctrl (H becomes CH,
// CP becomes CCP), as required by the QFM construction.
func ControlledGates(c *circuit.Circuit, ctrl int, reg []int, d int) {
	tmp := circuit.New(c.NumQubits)
	Gates(tmp, reg, d)
	c.Compose(tmp.Controlled(ctrl))
}

// ControlledInverseGates appends the inverse cQFT.
func ControlledInverseGates(c *circuit.Circuit, ctrl int, reg []int, d int) {
	tmp := circuit.New(c.NumQubits)
	Gates(tmp, reg, d)
	c.Compose(tmp.Inverse().Controlled(ctrl))
}

// RotationCount returns the number of controlled rotations in a w-qubit
// AQFT at depth d: sum over qubits of min(#available, d). This is the
// closed form C_w(d) = Σ_{k=0}^{w-1} min(k, d) used to validate Table I.
func RotationCount(w, d int) int {
	total := 0
	for k := 0; k < w; k++ {
		if k < d {
			total += k
		} else {
			total += d
		}
	}
	return total
}
