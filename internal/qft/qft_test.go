package qft_test

import (
	"math"
	"math/cmplx"
	"testing"

	"qfarith/internal/circuit"
	"qfarith/internal/mat"
	"qfarith/internal/qft"
	"qfarith/internal/sim"
	"qfarith/internal/testutil"
)

// paperQFTMatrix builds the unitary the paper's Fig. 1 circuit implements
// on w qubits: the DFT with bit-reversed output order (no final swaps).
// Column y, row r: amplitude e^{2πi·y·rev(r)/N}/√N where rev reverses the
// w-bit string of r.
func paperQFTMatrix(w int) *mat.Matrix {
	n := 1 << uint(w)
	m := mat.New(n, n)
	for y := 0; y < n; y++ {
		for r := 0; r < n; r++ {
			k := bitReverse(r, w)
			theta := 2 * math.Pi * float64(y) * float64(k) / float64(n)
			m.Set(r, y, cmplx.Exp(complex(0, theta))/complex(math.Sqrt(float64(n)), 0))
		}
	}
	return m
}

func bitReverse(v, w int) int {
	out := 0
	for i := 0; i < w; i++ {
		out |= ((v >> uint(i)) & 1) << uint(w-1-i)
	}
	return out
}

func TestQFTMatchesBitReversedDFT(t *testing.T) {
	for w := 1; w <= 6; w++ {
		c := qft.New(w, qft.Full)
		got := testutil.CircuitUnitary(c, w)
		want := paperQFTMatrix(w)
		if d := mat.MaxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("w=%d: QFT differs from bit-reversed DFT by %g", w, d)
		}
	}
}

func TestInverseUndoesQFT(t *testing.T) {
	for w := 1; w <= 6; w++ {
		for _, d := range []int{1, 2, 3, qft.Full} {
			if d != qft.Full && d >= w {
				continue
			}
			rng := testutil.NewRand(uint64(w*100 + d))
			st := testutil.RandomState(rng, w)
			ref := st.Clone()
			st.ApplyCircuit(qft.New(w, d))
			st.ApplyCircuit(qft.NewInverse(w, d))
			if f := mat.Fidelity(st.Amps(), ref.Amps()); math.Abs(f-1) > 1e-9 {
				t.Errorf("w=%d d=%d: QFT⁻¹·QFT fidelity %g", w, d, f)
			}
		}
	}
}

// TestAQFTProductForm verifies the AQFT product form: on a basis input
// |y>, the AQFT at depth d produces ⊗_q (|0> + e^{2πi [0.y]_{q,q-d}}
// |1>)/√2 — each qubit keeps the Hadamard term y_q/2 plus its top d
// controlled-rotation terms (y_{q-1}/4 … y_{q-d}/2^{d+1}).
func TestAQFTProductForm(t *testing.T) {
	w := 5
	for d := 1; d <= w-1; d++ {
		for y := 0; y < 1<<uint(w); y++ {
			st := sim.NewState(w)
			st.SetBasis(y)
			st.ApplyCircuit(qft.New(w, d))
			want := make([]complex128, 1)
			want[0] = 1
			// Build expected product state, qubit w-1 down to 0 as the
			// most significant amplitude bits.
			for q := w; q >= 1; q-- { // paper's 1-based qubit label
				phase := 0.0
				for kk := 0; kk <= d; kk++ { // terms y_q/2, y_{q-1}/4, ...
					bitIdx := q - kk // 1-based bit label
					if bitIdx < 1 {
						break
					}
					if (y>>(uint(bitIdx)-1))&1 == 1 {
						phase += 1 / math.Pow(2, float64(kk+1))
					}
				}
				qubitAmp := []complex128{
					complex(1/math.Sqrt2, 0),
					cmplx.Exp(complex(0, 2*math.Pi*phase)) / complex(math.Sqrt2, 0),
				}
				next := make([]complex128, len(want)*2)
				for i, a := range want {
					next[i*2] = a * qubitAmp[0]
					next[i*2+1] = a * qubitAmp[1]
				}
				want = next
			}
			// want is indexed with qubit w-1... the loop above appended
			// qubits from label w (global index w-1) downward, producing
			// big-endian local order: index bit (w-1-pos). Convert: local
			// index j maps to global index with bit reversal... Instead
			// compare via reordering: global index g has bit (q-1) for
			// label q; local has label q at position (w-q) from the top.
			for g := 0; g < 1<<uint(w); g++ {
				j := 0
				for q := 1; q <= w; q++ {
					bit := (g >> uint(q-1)) & 1
					j |= bit << uint(w-q) // label q sits w-q from LSB in local order... verify below
				}
				_ = j
			}
			// Simpler: the tensor construction above processed labels
			// w, w-1, …, 1, each new qubit becoming the NEW least
			// significant local bit. So local index bit 0 corresponds to
			// label 1, bit 1 to label 2, etc — the same order as the
			// global convention. Compare directly.
			for i := range want {
				if cmplx.Abs(want[i]-st.Amps()[i]) > 1e-9 {
					t.Fatalf("w=%d d=%d y=%d: amp %d = %v, want %v", w, d, y, i, st.Amps()[i], want[i])
				}
			}
		}
	}
}

func TestRotationCountClosedForm(t *testing.T) {
	for w := 1; w <= 10; w++ {
		for _, d := range []int{1, 2, 3, 4, w - 1, qft.Full} {
			if d < 1 {
				continue
			}
			c := qft.New(w, d)
			cp := 0
			h := 0
			for _, op := range c.Ops {
				switch op.Kind.Name() {
				case "cp":
					cp++
				case "h":
					h++
				}
			}
			if h != w {
				t.Errorf("w=%d d=%d: %d Hadamards, want %d", w, d, h, w)
			}
			if want := qft.RotationCount(w, qft.EffectiveDepth(d, w)); cp != want {
				t.Errorf("w=%d d=%d: %d rotations, want %d", w, d, cp, want)
			}
		}
	}
	// Anchors from the Table I analysis.
	if got := qft.RotationCount(8, 7); got != 28 {
		t.Errorf("C_8(full) = %d, want 28", got)
	}
	if got := qft.RotationCount(8, 1); got != 7 {
		t.Errorf("C_8(1) = %d, want 7", got)
	}
	if got := qft.RotationCount(5, 2); got != 7 {
		t.Errorf("C_5(2) = %d, want 7", got)
	}
	if got := qft.RotationCount(5, 4); got != 10 {
		t.Errorf("C_5(full) = %d, want 10", got)
	}
}

func TestControlledQFTActsOnlyWhenControlSet(t *testing.T) {
	w := 4
	n := w + 1
	reg := make([]int, w)
	for i := range reg {
		reg[i] = i
	}
	ctrl := w
	for _, d := range []int{1, 2, qft.Full} {
		cc := circuit.New(n)
		qft.ControlledGates(cc, ctrl, reg, d)

		// Control = 0: state unchanged.
		rng := testutil.NewRand(uint64(d) + 55)
		st := testutil.RandomState(rng, w)
		full := sim.NewState(n)
		// Embed st with control qubit 0.
		for i, a := range st.Amps() {
			full.Amps()[i] = a
		}
		ref := full.Clone()
		full.ApplyCircuit(cc)
		for i := range ref.Amps() {
			if cmplx.Abs(full.Amps()[i]-ref.Amps()[i]) > 1e-12 {
				t.Fatalf("d=%d: cQFT acted with control 0", d)
			}
		}

		// Control = 1: equals plain QFT on the register.
		full2 := sim.NewState(n)
		for i, a := range st.Amps() {
			full2.Amps()[i|1<<uint(ctrl)] = a
		}
		full2.ApplyCircuit(cc)
		plain := st.Clone()
		plain.ApplyCircuit(qft.New(w, d))
		for i := range plain.Amps() {
			if cmplx.Abs(full2.Amps()[i|1<<uint(ctrl)]-plain.Amps()[i]) > 1e-9 {
				t.Fatalf("d=%d: cQFT with control 1 differs from QFT", d)
			}
		}
	}
}

func TestControlledInverseGates(t *testing.T) {
	w := 3
	n := w + 1
	reg := []int{0, 1, 2}
	cc := circuit.New(n)
	qft.ControlledGates(cc, 3, reg, qft.Full)
	qft.ControlledInverseGates(cc, 3, reg, qft.Full)
	u := testutil.CircuitUnitary(cc, n)
	if d := mat.MaxAbsDiff(u, mat.Identity(1<<uint(n))); d > 1e-9 {
		t.Errorf("cQFT·cQFT⁻¹ differs from identity by %g", d)
	}
}

func TestEffectiveDepthAndIsFull(t *testing.T) {
	if qft.EffectiveDepth(qft.Full, 8) != 7 {
		t.Error("EffectiveDepth(Full, 8) should be 7")
	}
	if qft.EffectiveDepth(3, 8) != 3 {
		t.Error("EffectiveDepth(3, 8) should be 3")
	}
	if !qft.IsFull(7, 8) || qft.IsFull(6, 8) {
		t.Error("IsFull boundary wrong for w=8")
	}
}

func TestDepthPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for depth 0")
		}
	}()
	qft.New(4, 0)
}
