package runstore

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestListArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := WriteArtifact(filepath.Join(dir, "panel.csv"), []byte("a,b\n1,2\n")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	// A corrupted artifact must still list, but with Verified false.
	corrupt := filepath.Join(dir, "torn.csv")
	if err := WriteArtifact(corrupt, []byte("x,y\n3,4\n")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(corrupt, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	infos, err := ListArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("listed %d files, want 3 (got %+v)", len(infos), infos)
	}
	byName := map[string]ArtifactInfo{}
	for _, ai := range infos {
		byName[ai.Name] = ai
	}
	if ai := byName["panel.csv"]; !ai.Verified || ai.Checksum == "" || ai.Size == 0 {
		t.Errorf("panel.csv = %+v, want verified with checksum", ai)
	}
	if ai := byName["manifest.json"]; ai.Verified || ai.Checksum != "" {
		t.Errorf("manifest.json = %+v, want unverified without checksum", ai)
	}
	if ai := byName["torn.csv"]; ai.Verified || ai.Checksum == "" {
		t.Errorf("torn.csv = %+v, want checksum present but Verified false", ai)
	}
	// Sorted order.
	if infos[0].Name != "manifest.json" || infos[1].Name != "panel.csv" || infos[2].Name != "torn.csv" {
		t.Errorf("listing not sorted: %v %v %v", infos[0].Name, infos[1].Name, infos[2].Name)
	}
}

func TestOpenArtifact(t *testing.T) {
	dir := t.TempDir()
	want := []byte("hello\n")
	if err := os.WriteFile(filepath.Join(dir, "out.csv"), want, 0o644); err != nil {
		t.Fatal(err)
	}
	secret := filepath.Join(t.TempDir(), "secret")
	if err := os.WriteFile(secret, []byte("no"), 0o644); err != nil {
		t.Fatal(err)
	}

	f, err := OpenArtifact(dir, "out.csv")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	f.Close()
	if err != nil || string(got) != string(want) {
		t.Fatalf("read %q, %v", got, err)
	}

	for _, bad := range []string{
		"", ".", "..", "../secret", "sub/file", `sub\file`, "/etc/passwd",
		"..\\secret",
	} {
		if _, err := OpenArtifact(dir, bad); err != ErrBadArtifactName {
			t.Errorf("OpenArtifact(%q) err = %v, want ErrBadArtifactName", bad, err)
		}
	}
	if _, err := OpenArtifact(dir, "missing.csv"); !os.IsNotExist(err) {
		t.Errorf("missing file err = %v, want IsNotExist", err)
	}
	if _, err := OpenArtifact(filepath.Dir(dir), filepath.Base(dir)); err == nil {
		t.Error("OpenArtifact served a directory")
	}
}
