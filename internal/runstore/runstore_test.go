package runstore_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"qfarith/internal/runstore"
)

func testManifest(hash string) runstore.Manifest {
	return runstore.Manifest{Command: "fig3", ConfigHash: hash, Seed: 42, Backend: "trajectory"}
}

func TestCreateResumeRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	run, err := runstore.Create(dir, testManifest("abc123"))
	if err != nil {
		t.Fatal(err)
	}
	type payload struct{ X, Y float64 }
	if err := run.AppendPoint("p/r00/d00", payload{1.5, 2.25}); err != nil {
		t.Fatal(err)
	}
	if err := run.AppendPoint("p/r00/d01", payload{3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, err := runstore.Resume(dir, "abc123")
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if got := resumed.Restored(); got != 2 {
		t.Errorf("Restored() = %d, want 2", got)
	}
	if m := resumed.Manifest(); m.Command != "fig3" || m.Seed != 42 {
		t.Errorf("manifest did not round-trip: %+v", m)
	}
	raw, ok := resumed.LookupPoint("p/r00/d00")
	if !ok {
		t.Fatal("checkpointed point missing after resume")
	}
	var p payload
	if err := json.Unmarshal(raw, &p); err != nil {
		t.Fatal(err)
	}
	if p.X != 1.5 || p.Y != 2.25 {
		t.Errorf("payload = %+v, want {1.5 2.25}", p)
	}
	// Appending after resume extends, not truncates, the log.
	if err := resumed.AppendPoint("p/r01/d00", payload{5, 6}); err != nil {
		t.Fatal(err)
	}
	resumed.Close()
	again, err := runstore.Resume(dir, "abc123")
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if got := again.Restored(); got != 3 {
		t.Errorf("after second append, Restored() = %d, want 3", got)
	}
}

func TestResumeRejectsConfigHashMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	run, err := runstore.Create(dir, testManifest("hash-a"))
	if err != nil {
		t.Fatal(err)
	}
	run.Close()
	if _, err := runstore.Resume(dir, "hash-b"); err == nil {
		t.Fatal("Resume accepted a mismatched config hash")
	} else if !strings.Contains(err.Error(), "hash") {
		t.Errorf("error does not mention the hash: %v", err)
	}
	// Empty wantHash skips the check (tools that only read the log).
	if _, err := runstore.Resume(dir, ""); err != nil {
		t.Errorf("Resume with empty hash failed: %v", err)
	}
}

func TestCreateRefusesExistingRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	run, err := runstore.Create(dir, testManifest("h"))
	if err != nil {
		t.Fatal(err)
	}
	run.Close()
	if _, err := runstore.Create(dir, testManifest("h")); err == nil {
		t.Fatal("Create overwrote an existing run directory")
	}
}

// TestCreateConcurrentExactlyOneWins is the TOCTOU regression: racing
// creators of the same run directory must resolve to exactly one
// winner — the Stat-then-write check let two initialize it — with
// every loser told to use Resume.
func TestCreateConcurrentExactlyOneWins(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	const racers = 16
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		mu    sync.Mutex
		wins  int
	)
	start.Add(1)
	for i := 0; i < racers; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			run, err := runstore.Create(dir, testManifest("race"))
			if err == nil {
				run.Close()
				mu.Lock()
				wins++
				mu.Unlock()
				return
			}
			if !strings.Contains(err.Error(), "use Resume") {
				t.Errorf("loser got %v, want the use-Resume refusal", err)
			}
		}()
	}
	start.Done()
	done.Wait()
	if wins != 1 {
		t.Fatalf("%d creators won the race, want exactly 1", wins)
	}
	// The surviving manifest must be intact and resumable.
	if _, err := runstore.Resume(dir, "race"); err != nil {
		t.Fatalf("winner's run directory is not resumable: %v", err)
	}
}

// TestRestoredDedupesDuplicateKeys is the over-count regression: a log
// holding re-appended records for the same key (the signature of a
// merged-then-resumed or doubly-appended run) collapses in the point
// map, and Restored must report distinct keys, not record lines.
func TestRestoredDedupesDuplicateKeys(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	run, err := runstore.Create(dir, testManifest("h"))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []struct {
		key string
		val int
	}{{"a", 1}, {"b", 2}, {"a", 1}, {"a", 1}, {"c", 3}} {
		if err := run.AppendPoint(rec.key, rec.val); err != nil {
			t.Fatal(err)
		}
	}
	run.Close()
	resumed, err := runstore.Resume(dir, "h")
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if got := resumed.Restored(); got != 3 {
		t.Errorf("Restored() = %d, want 3 distinct keys (5 records appended)", got)
	}
}

// TestResumeRejectsCorruptionBeforeBlankTail is the torn-tail
// heuristic regression: a corrupt record followed only by blank lines
// was forgiven as a torn final append, but a torn append can never be
// followed by further bytes — this is real corruption and must refuse.
func TestResumeRejectsCorruptionBeforeBlankTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	run, err := runstore.Create(dir, testManifest("h"))
	if err != nil {
		t.Fatal(err)
	}
	run.Close()
	log := `{"key":"a","point":1}` + "\n" + `garbage` + "\n\n\n"
	if err := os.WriteFile(filepath.Join(dir, "points.jsonl"), []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runstore.Resume(dir, "h"); err == nil {
		t.Fatal("Resume forgave a corrupt record that was followed by blank lines")
	}
}

// TestAppendPointConcurrent hammers one log with concurrent appenders
// (the panel runner's completion pattern); every record must survive a
// reopen. Run under -race in CI's short suite.
func TestAppendPointConcurrent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	run, err := runstore.Create(dir, testManifest("h"))
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%02d/p%02d", w, i)
				if err := run.AppendPoint(key, map[string]int{"w": w, "i": i}); err != nil {
					t.Errorf("append %s: %v", key, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	resumed, err := runstore.Resume(dir, "h")
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if got := resumed.Restored(); got != writers*perWriter {
		t.Fatalf("Restored() = %d, want %d", got, writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if _, ok := resumed.LookupPoint(fmt.Sprintf("w%02d/p%02d", w, i)); !ok {
				t.Fatalf("record w%02d/p%02d lost", w, i)
			}
		}
	}
}

// TestResumeDropsTornTail: a crash mid-append leaves a final line
// without its record fully written; Resume must drop exactly that line
// and keep every acknowledged record.
func TestResumeDropsTornTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	run, err := runstore.Create(dir, testManifest("h"))
	if err != nil {
		t.Fatal(err)
	}
	if err := run.AppendPoint("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := run.AppendPoint("b", 2); err != nil {
		t.Fatal(err)
	}
	run.Close()
	logPath := filepath.Join(dir, "points.jsonl")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"c","point":`) // torn: crash mid-write
	f.Close()

	resumed, err := runstore.Resume(dir, "h")
	if err != nil {
		t.Fatalf("Resume failed on torn tail: %v", err)
	}
	defer resumed.Close()
	if got := resumed.Restored(); got != 2 {
		t.Errorf("Restored() = %d, want 2 (torn tail dropped)", got)
	}
	if _, ok := resumed.LookupPoint("c"); ok {
		t.Error("torn record surfaced as a checkpoint")
	}
}

// TestResumeRejectsMidLogCorruption: a bad record that is NOT the final
// line means real corruption, not a torn append — refuse to resume.
func TestResumeRejectsMidLogCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	run, err := runstore.Create(dir, testManifest("h"))
	if err != nil {
		t.Fatal(err)
	}
	run.Close()
	log := `{"key":"a","point":1}` + "\n" + `garbage` + "\n" + `{"key":"b","point":2}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "points.jsonl"), []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runstore.Resume(dir, "h"); err == nil {
		t.Fatal("Resume accepted mid-log corruption")
	}
}

func TestHashConfigDiscriminates(t *testing.T) {
	type cfg struct {
		Seed  uint64
		Rates []float64
	}
	h1, err := runstore.HashConfig(cfg{1, []float64{0, 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := runstore.HashConfig(cfg{1, []float64{0, 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	h1b, err := runstore.HashConfig(cfg{1, []float64{0, 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Error("different configs hashed equal")
	}
	if h1 != h1b {
		t.Error("equal configs hashed different")
	}
}

func TestWriteReadArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "panel.csv")
	data := []byte("op,axis\nqfa,1q\n")
	if err := runstore.WriteArtifact(path, data); err != nil {
		t.Fatal(err)
	}
	got, err := runstore.ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("payload = %q, want %q", got, data)
	}
	raw, _ := os.ReadFile(path)
	if !strings.Contains(string(raw), "# sha256=") {
		t.Error("artifact lacks checksum footer")
	}
	// No temp files may remain next to the artifact.
	entries, _ := os.ReadDir(filepath.Dir(path))
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}

func TestVerifyArtifactDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.csv")
	if err := runstore.WriteArtifact(path, []byte("hello,world\n")); err != nil {
		t.Fatal(err)
	}
	if err := runstore.VerifyArtifact(path); err != nil {
		t.Fatalf("fresh artifact failed verification: %v", err)
	}
	raw, _ := os.ReadFile(path)
	raw[0] ^= 1
	os.WriteFile(path, raw, 0o644)
	if err := runstore.VerifyArtifact(path); err == nil {
		t.Fatal("corrupted artifact passed verification")
	}
	// Truncation (the partial-write signature) must also be caught.
	if err := os.WriteFile(path, []byte("hello,wo"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runstore.VerifyArtifact(path); err == nil {
		t.Fatal("truncated artifact passed verification")
	}
}

// TestWriteArtifactAtomicUnderConcurrentReads hammers one path with
// rewrites while readers verify: because writes go temp-then-rename, a
// reader must only ever observe a complete artifact whose checksum
// verifies — never a partial write at the final path.
func TestWriteArtifactAtomicUnderConcurrentReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hot.csv")
	contents := [][]byte{
		[]byte(strings.Repeat("aaaa,bbbb,cccc\n", 200)),
		[]byte(strings.Repeat("dddd,eeee,ffff\n", 300)),
	}
	if err := runstore.WriteArtifact(path, contents[0]); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := runstore.WriteArtifact(path, contents[i%2]); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		data, err := runstore.ReadArtifact(path)
		if err != nil {
			t.Fatalf("read %d observed a partial artifact: %v", i, err)
		}
		if string(data) != string(contents[0]) && string(data) != string(contents[1]) {
			t.Fatalf("read %d observed mixed content (%d bytes)", i, len(data))
		}
	}
	close(stop)
	wg.Wait()
}
