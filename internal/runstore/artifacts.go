package runstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// ArtifactInfo describes one file inside a run directory, as reported
// by ListArtifacts. Checksum is the sha256 footer WriteArtifact
// appended, when the file carries one; files without a footer (the
// manifest, the checkpoint log, sidecars) list with Checksum empty and
// Verified false.
type ArtifactInfo struct {
	Name     string    `json:"name"`
	Size     int64     `json:"size"`
	ModTime  time.Time `json:"mod_time"`
	Checksum string    `json:"sha256,omitempty"`
	// Verified is true when the file ends in a checksum footer that
	// matches its payload — i.e. ReadArtifact would accept it.
	Verified bool `json:"verified"`
}

// ListArtifacts enumerates the regular files of a run directory in
// sorted name order: the serving layer of the job API lists exactly
// this. Subdirectories are skipped — run directories are flat by
// construction, and refusing to descend keeps the listing aligned with
// what OpenArtifact will serve.
func ListArtifacts(dir string) ([]ArtifactInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("runstore: list artifacts: %w", err)
	}
	infos := make([]ArtifactInfo, 0, len(entries))
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("runstore: list artifacts: %w", err)
		}
		ai := ArtifactInfo{Name: e.Name(), Size: fi.Size(), ModTime: fi.ModTime()}
		if sum, ok := artifactChecksum(filepath.Join(dir, e.Name())); ok {
			ai.Checksum = sum
			ai.Verified = VerifyArtifact(filepath.Join(dir, e.Name())) == nil
		}
		infos = append(infos, ai)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// artifactChecksum extracts the recorded checksum from a file's footer
// line without verifying it; ok is false when no footer is present.
func artifactChecksum(path string) (string, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", false
	}
	trimmed := bytes.TrimRight(raw, "\n")
	idx := bytes.LastIndexByte(trimmed, '\n')
	footer := trimmed[idx+1:]
	if !bytes.HasPrefix(footer, []byte(footerPrefix)) {
		return "", false
	}
	return string(footer[len(footerPrefix):]), true
}

// ErrBadArtifactName reports an artifact name that could escape the
// run directory; the serving layer maps it to a client error.
var ErrBadArtifactName = fmt.Errorf("runstore: artifact name must be a plain file name")

// OpenArtifact opens the named file inside a run directory for
// serving. The name must be a bare file name — path separators, "..",
// and absolute paths are rejected with ErrBadArtifactName — so an HTTP
// handler can pass client input through without a traversal risk. The
// caller owns the returned file and must close it.
func OpenArtifact(dir, name string) (*os.File, error) {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, `/\`) || filepath.Base(name) != name {
		return nil, ErrBadArtifactName
	}
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if !fi.Mode().IsRegular() {
		f.Close()
		return nil, fmt.Errorf("runstore: %s is not a regular file", name)
	}
	return f, nil
}
