package runstore_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qfarith/internal/runstore"
)

// shardDir creates a run directory holding the given key→value points
// under the given config hash and shard mark.
func shardDir(t *testing.T, root, name, hash, shard string, points map[string]int) string {
	t.Helper()
	dir := filepath.Join(root, name)
	m := testManifest(hash)
	m.Shard = shard
	run, err := runstore.Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	for key, v := range points {
		if err := run.AppendPoint(key, v); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestMergeRunsUnionsShards(t *testing.T) {
	root := t.TempDir()
	s0 := shardDir(t, root, "s0", "cfg", "0/3", map[string]int{"p/r00/d00": 1, "p/r01/d01": 4})
	s1 := shardDir(t, root, "s1", "cfg", "1/3", map[string]int{"p/r00/d01": 2})
	s2 := shardDir(t, root, "s2", "cfg", "2/3", map[string]int{"p/r01/d00": 3})
	if err := runstore.WriteExpectedKeys(s0, []string{"p/r00/d00", "p/r00/d01", "p/r01/d00", "p/r01/d01"}); err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(root, "merged")
	report, err := runstore.MergeRuns(dst, []string{s0, s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if report.Points != 4 {
		t.Errorf("merged points = %d, want 4", report.Points)
	}
	if report.Overlaps != 0 {
		t.Errorf("overlaps = %d, want 0", report.Overlaps)
	}
	if len(report.Gaps) != 0 {
		t.Errorf("gaps = %v, want none", report.Gaps)
	}

	merged, err := runstore.Resume(dst, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if got := merged.Restored(); got != 4 {
		t.Errorf("merged run restored %d points, want 4", got)
	}
	if m := merged.Manifest(); m.Shard != "" {
		t.Errorf("merged manifest still carries shard mark %q", m.Shard)
	}
	for key, want := range map[string]int{"p/r00/d00": 1, "p/r00/d01": 2, "p/r01/d00": 3, "p/r01/d01": 4} {
		raw, ok := merged.LookupPoint(key)
		if !ok {
			t.Fatalf("merged run lost point %s", key)
		}
		var got int
		if err := json.Unmarshal(raw, &got); err != nil || got != want {
			t.Errorf("point %s = %s (err %v), want %d", key, raw, err, want)
		}
	}
	// The expected-key sidecar must carry over for later gap checks.
	keys, err := runstore.ReadExpectedKeys(dst)
	if err != nil || len(keys) != 4 {
		t.Errorf("merged keys sidecar = %v (err %v), want the 4 expected keys", keys, err)
	}
}

func TestMergeRunsDeterministicAcrossArgumentOrder(t *testing.T) {
	root := t.TempDir()
	s0 := shardDir(t, root, "s0", "cfg", "0/2", map[string]int{"b": 2, "d": 4})
	s1 := shardDir(t, root, "s1", "cfg", "1/2", map[string]int{"a": 1, "c": 3})
	dstA := filepath.Join(root, "ab")
	dstB := filepath.Join(root, "ba")
	if _, err := runstore.MergeRuns(dstA, []string{s0, s1}); err != nil {
		t.Fatal(err)
	}
	if _, err := runstore.MergeRuns(dstB, []string{s1, s0}); err != nil {
		t.Fatal(err)
	}
	logA := readFile(t, filepath.Join(dstA, "points.jsonl"))
	logB := readFile(t, filepath.Join(dstB, "points.jsonl"))
	if logA != logB {
		t.Errorf("merged logs differ by shard argument order:\n%s\nvs\n%s", logA, logB)
	}
}

func TestMergeRunsRefusesConfigHashMismatch(t *testing.T) {
	root := t.TempDir()
	s0 := shardDir(t, root, "s0", "cfg-a", "0/2", map[string]int{"a": 1})
	s1 := shardDir(t, root, "s1", "cfg-b", "1/2", map[string]int{"b": 2})
	_, err := runstore.MergeRuns(filepath.Join(root, "merged"), []string{s0, s1})
	if err == nil {
		t.Fatal("MergeRuns accepted shards with different config hashes")
	}
	if !strings.Contains(err.Error(), "hash mismatch") {
		t.Errorf("error does not name the hash mismatch: %v", err)
	}
}

func TestMergeRunsAcceptsIdenticalOverlap(t *testing.T) {
	root := t.TempDir()
	// Both shards completed the same point (e.g. an operator re-ran a
	// shard unsharded): payloads are deterministic, so identical copies
	// are benign and counted, not fatal.
	s0 := shardDir(t, root, "s0", "cfg", "", map[string]int{"a": 1, "b": 2})
	s1 := shardDir(t, root, "s1", "cfg", "", map[string]int{"b": 2, "c": 3})
	report, err := runstore.MergeRuns(filepath.Join(root, "merged"), []string{s0, s1})
	if err != nil {
		t.Fatal(err)
	}
	if report.Points != 3 || report.Overlaps != 1 {
		t.Errorf("points=%d overlaps=%d, want 3 and 1", report.Points, report.Overlaps)
	}
}

func TestMergeRunsRefusesDivergentOverlap(t *testing.T) {
	root := t.TempDir()
	s0 := shardDir(t, root, "s0", "cfg", "", map[string]int{"a": 1})
	s1 := shardDir(t, root, "s1", "cfg", "", map[string]int{"a": 99})
	dst := filepath.Join(root, "merged")
	_, err := runstore.MergeRuns(dst, []string{s0, s1})
	if err == nil {
		t.Fatal("MergeRuns accepted shards holding different payloads for the same key")
	}
	if !strings.Contains(err.Error(), `"a"`) {
		t.Errorf("error does not name the divergent key: %v", err)
	}
}

func TestMergeRunsReportsGaps(t *testing.T) {
	root := t.TempDir()
	s0 := shardDir(t, root, "s0", "cfg", "0/2", map[string]int{"a": 1})
	if err := runstore.WriteExpectedKeys(s0, []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	report, err := runstore.MergeRuns(filepath.Join(root, "merged"), []string{s0})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Gaps) != 2 || report.Gaps[0] != "b" || report.Gaps[1] != "c" {
		t.Errorf("gaps = %v, want [b c]", report.Gaps)
	}
}

func TestMergeRunsRefusesOccupiedDestination(t *testing.T) {
	root := t.TempDir()
	s0 := shardDir(t, root, "s0", "cfg", "", map[string]int{"a": 1})
	dst := shardDir(t, root, "dst", "cfg", "", nil)
	if _, err := runstore.MergeRuns(dst, []string{s0}); err == nil {
		t.Fatal("MergeRuns overwrote an existing run directory")
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
