// Package runstore makes long sweeps durable. Every run owns a
// directory holding a JSON manifest (config hash, seeds, backend,
// git-describe, start time) and an append-only per-point checkpoint log
// (points.jsonl, one fsync'd record per completed point), so a killed
// or crashed sweep loses at most the points still in flight. A resumed
// run verifies the manifest's config hash, loads the log, and re-runs
// only the remainder; because point seeds are derived deterministically,
// the merged result is provably identical to an uninterrupted run.
//
// The package also owns artifact durability: WriteArtifact writes
// final outputs (CSVs, summaries, bench markdown) via
// write-temp-then-rename with a trailing checksum footer, so a partial
// artifact is never observable at its final path and silent truncation
// is detectable after the fact.
package runstore

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"qfarith/internal/telemetry"
)

// Checkpoint telemetry: how many points have been durably appended and
// the latency of the per-record fsync — the dominant cost of the
// append-before-acknowledge protocol on slow disks.
var (
	ckptAppends  = telemetry.Default().Counter("qfarith_checkpoint_appends_total")
	ckptFsyncSec = telemetry.Default().Histogram("qfarith_checkpoint_fsync_seconds")
)

const (
	manifestName = "manifest.json"
	pointsName   = "points.jsonl"
)

// Manifest records what a run directory was created for; Resume
// verifies ConfigHash against the caller's recomputed hash so a run
// can never silently continue under a different sweep configuration.
type Manifest struct {
	// Command is the CLI subcommand (or test harness) that owns the run.
	Command string `json:"command"`
	// ConfigHash is HashConfig over the full sweep specification
	// (geometry, axes, orders, rates, depths, budget, seed, backend) —
	// everything that determines point results, excluding scheduling
	// knobs like worker counts.
	ConfigHash string `json:"config_hash"`
	// Seed is the base RNG seed, duplicated out of the hash for
	// human inspection of the manifest.
	Seed uint64 `json:"seed"`
	// Backend names the execution backend.
	Backend string `json:"backend"`
	// Pipeline is the compile.Config hash of the run's compilation
	// pipeline, duplicated out of ConfigHash for human inspection (the
	// hash itself is what makes Resume refuse a pass-config change).
	Pipeline string `json:"pipeline,omitempty"`
	// GitDescribe pins the code version that started the run.
	GitDescribe string `json:"git_describe,omitempty"`
	// StartTime is when the run directory was created.
	StartTime time.Time `json:"start_time"`
	// Shard is "i/N" when this run owns only the grid points whose
	// checkpoint key hashes to i mod N; empty for an unsharded run.
	// MergeRuns clears it in the merged manifest. Shard is outside
	// ConfigHash: all shards of one sweep share the same hash, which is
	// exactly what lets MergeRuns verify they belong together.
	Shard string `json:"shard,omitempty"`
}

// Run is an open run directory: the manifest plus the checkpoint log,
// held open in append mode. Append/Lookup are safe for concurrent use
// (panel points complete concurrently).
type Run struct {
	dir      string
	manifest Manifest

	mu       sync.Mutex
	log      *os.File
	points   map[string]json.RawMessage
	restored int
}

// pointRecord is one line of points.jsonl.
type pointRecord struct {
	Key   string          `json:"key"`
	Point json.RawMessage `json:"point"`
}

// Create initializes a fresh run directory and writes its manifest.
// It refuses a directory that already holds a manifest — resuming an
// existing run must go through Resume so the config hash is checked.
// The manifest is created with O_EXCL semantics, so when several
// processes race to create the same run directory exactly one wins and
// the others get the "use Resume" error instead of both initializing it.
func Create(dir string, m Manifest) (*Run, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	mpath := filepath.Join(dir, manifestName)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("runstore: marshal manifest: %w", err)
	}
	if err := writeFileExcl(mpath, append(data, '\n')); err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("runstore: %s already holds a run (use Resume)", dir)
		}
		return nil, fmt.Errorf("runstore: write manifest: %w", err)
	}
	log, err := os.OpenFile(filepath.Join(dir, pointsName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: open checkpoint log: %w", err)
	}
	return &Run{dir: dir, manifest: m, log: log, points: map[string]json.RawMessage{}}, nil
}

// Resume reopens an existing run directory, verifies its manifest's
// config hash against wantHash (skipped when wantHash is empty), and
// loads the checkpoint log. A torn final line — the signature of a
// crash mid-append — is dropped; any earlier corruption is an error,
// since fsync-per-record should make it impossible.
func Resume(dir, wantHash string) (*Run, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("runstore: %s is not a run directory: %w", dir, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("runstore: corrupt manifest in %s: %w", dir, err)
	}
	if wantHash != "" && m.ConfigHash != wantHash {
		return nil, fmt.Errorf("runstore: config hash mismatch: run %s was started with %s, current config hashes to %s (refusing to mix results)",
			dir, m.ConfigHash, wantHash)
	}
	points, restored, err := loadPoints(filepath.Join(dir, pointsName))
	if err != nil {
		return nil, err
	}
	log, err := os.OpenFile(filepath.Join(dir, pointsName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: open checkpoint log: %w", err)
	}
	return &Run{dir: dir, manifest: m, log: log, points: points, restored: restored}, nil
}

func loadPoints(path string) (map[string]json.RawMessage, int, error) {
	points := map[string]json.RawMessage{}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return points, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("runstore: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var pendingErr error
	badLine, lastLine := 0, 0
	for lineNo := 1; sc.Scan(); lineNo++ {
		lastLine = lineNo
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// The bad line was not the final one: real corruption.
			return nil, 0, pendingErr
		}
		var rec pointRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			pendingErr = fmt.Errorf("runstore: corrupt checkpoint record at %s:%d", path, lineNo)
			badLine = lineNo
			continue
		}
		points[rec.Key] = rec.Point
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("runstore: read checkpoint log: %w", err)
	}
	// A torn append writes a prefix of one record and nothing after it,
	// so only a bad record on the literally last line of the file may be
	// forgiven. A bad record followed by anything — even blank lines —
	// means something was written after it: real corruption.
	if pendingErr != nil && badLine != lastLine {
		return nil, 0, pendingErr
	}
	// The restored count is the number of distinct keys, not records: a
	// log holding re-appended duplicates (e.g. after merging overlapping
	// shards) collapses in the map and must not over-report.
	return points, len(points), nil
}

// Dir returns the run directory path.
func (r *Run) Dir() string { return r.dir }

// Manifest returns the run's manifest.
func (r *Run) Manifest() Manifest { return r.manifest }

// Restored reports how many checkpointed points Resume loaded.
func (r *Run) Restored() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.restored
}

// LookupPoint returns the checkpointed payload for key, if present.
func (r *Run) LookupPoint(key string) (json.RawMessage, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	raw, ok := r.points[key]
	return raw, ok
}

// AppendPoint marshals payload, appends the record to points.jsonl and
// fsyncs it, so an acknowledged point survives any subsequent crash.
func (r *Run) AppendPoint(key string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("runstore: marshal point %q: %w", key, err)
	}
	line, err := json.Marshal(pointRecord{Key: key, Point: raw})
	if err != nil {
		return fmt.Errorf("runstore: marshal record %q: %w", key, err)
	}
	line = append(line, '\n')
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.log == nil {
		return fmt.Errorf("runstore: checkpoint log for %q is closed", key)
	}
	if _, err := r.log.Write(line); err != nil {
		return fmt.Errorf("runstore: append point %q: %w", key, err)
	}
	sp := telemetry.StartSpan(ckptFsyncSec)
	err = r.log.Sync()
	sp.End()
	if err != nil {
		return fmt.Errorf("runstore: fsync point %q: %w", key, err)
	}
	ckptAppends.Inc()
	r.points[key] = raw
	return nil
}

// Close flushes and closes the checkpoint log. Safe to call twice.
func (r *Run) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.log == nil {
		return nil
	}
	err := r.log.Close()
	r.log = nil
	return err
}

// HashConfig hashes an arbitrary configuration value into a short hex
// digest (SHA-256 over its canonical JSON): the manifest's ConfigHash.
func HashConfig(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("runstore: hash config: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16]), nil
}

// GitDescribe returns `git describe --always --dirty` for dir, or ""
// when git or the repository is unavailable (manifests omit it then).
func GitDescribe(dir string) string {
	cmd := exec.Command("git", "describe", "--always", "--dirty")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// footerPrefix starts the checksum footer line appended to artifacts.
// The '#' makes the footer a comment to the repo's CSV/markdown readers.
const footerPrefix = "# sha256="

// WriteArtifact durably writes a final artifact: data plus a checksum
// footer land in a temp file in the same directory, which is fsync'd
// and renamed over path. Readers therefore observe either the previous
// complete artifact or the new complete artifact, never a partial one.
func WriteArtifact(path string, data []byte) error {
	buf := make([]byte, 0, len(data)+len(footerPrefix)+66)
	buf = append(buf, data...)
	if len(buf) > 0 && buf[len(buf)-1] != '\n' {
		buf = append(buf, '\n')
	}
	// The checksum covers the payload exactly as stored (including the
	// normalized trailing newline), so ReadArtifact can verify raw bytes.
	sum := sha256.Sum256(buf)
	buf = append(buf, footerPrefix...)
	buf = append(buf, hex.EncodeToString(sum[:])...)
	buf = append(buf, '\n')
	return writeFileAtomic(path, buf)
}

// ReadArtifact reads an artifact written by WriteArtifact, verifies the
// checksum footer, and returns the payload with the footer stripped.
func ReadArtifact(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimRight(raw, "\n")
	idx := bytes.LastIndexByte(trimmed, '\n')
	footer := trimmed[idx+1:]
	if !bytes.HasPrefix(footer, []byte(footerPrefix)) {
		return nil, fmt.Errorf("runstore: %s has no checksum footer", path)
	}
	data := raw[:idx+1]
	sum := sha256.Sum256(data)
	if got := string(footer[len(footerPrefix):]); got != hex.EncodeToString(sum[:]) {
		return nil, fmt.Errorf("runstore: %s checksum mismatch (truncated or corrupted artifact)", path)
	}
	return data, nil
}

// VerifyArtifact checks path's checksum footer without returning data.
func VerifyArtifact(path string) error {
	_, err := ReadArtifact(path)
	return err
}

// writeFileExcl creates path with O_EXCL — failing with os.IsExist
// when the file already exists, even against a concurrent creator —
// writes data, fsyncs, and fsyncs the directory. Unlike
// writeFileAtomic, which rename-clobbers, this is the primitive for
// claims that must have exactly one winner (run-directory manifests).
func writeFileExcl(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Sidecar files a run directory may carry next to the manifest: the
// full sweep specification (so merge-runs can regenerate final CSVs
// without re-deriving the grid from CLI flags) and the expected
// checkpoint-key list (so merge-runs can report gaps against the full
// grid). Both are optional; readers return ok=false when absent.
const (
	specName = "spec.json"
	keysName = "keys.json"
)

// WriteSpec durably records the full sweep specification in dir.
func WriteSpec(dir string, spec any) error {
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("runstore: marshal spec: %w", err)
	}
	return writeFileAtomic(filepath.Join(dir, specName), append(data, '\n'))
}

// ReadSpec unmarshals dir's sweep specification into spec. ok is false
// when the run directory has no spec sidecar (pre-shard runs).
func ReadSpec(dir string, spec any) (ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, specName))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("runstore: %w", err)
	}
	if err := json.Unmarshal(data, spec); err != nil {
		return false, fmt.Errorf("runstore: corrupt spec in %s: %w", dir, err)
	}
	return true, nil
}

// WriteExpectedKeys durably records the full grid's checkpoint keys in
// dir. Every shard of a sweep writes the same full list — ownership is
// a filter over it, not a different grid.
func WriteExpectedKeys(dir string, keys []string) error {
	data, err := json.MarshalIndent(keys, "", "  ")
	if err != nil {
		return fmt.Errorf("runstore: marshal keys: %w", err)
	}
	return writeFileAtomic(filepath.Join(dir, keysName), append(data, '\n'))
}

// ReadExpectedKeys returns dir's expected checkpoint-key list, or
// (nil, nil) when the sidecar is absent.
func ReadExpectedKeys(dir string) ([]string, error) {
	data, err := os.ReadFile(filepath.Join(dir, keysName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	var keys []string
	if err := json.Unmarshal(data, &keys); err != nil {
		return nil, fmt.Errorf("runstore: corrupt key list in %s: %w", dir, err)
	}
	return keys, nil
}

// writeFileAtomic writes data to path via a same-directory temp file,
// fsync, rename, and directory fsync.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: fsync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runstore: close %s: %w", path, err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return fmt.Errorf("runstore: chmod %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("runstore: rename %s: %w", path, err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
