package runstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// MergeReport summarizes a MergeRuns union for the caller to surface.
type MergeReport struct {
	// Shards lists the merged source directories, in argument order.
	Shards []string
	// Points is the number of distinct checkpoint keys in the union.
	Points int
	// Overlaps counts keys present in more than one shard. Overlapping
	// keys are benign only when every copy carries byte-identical
	// payloads (per-point seeding makes re-runs deterministic);
	// divergent payloads abort the merge instead of appearing here.
	Overlaps int
	// Gaps lists expected keys absent from the union, in expected-list
	// order — the points no shard completed. Nil when the sources carry
	// no expected-key sidecar to check against.
	Gaps []string
}

// MergeRuns unions the checkpoint logs of several shard run
// directories into a fresh run directory dst:
//
//   - every source must hold the same Command and ConfigHash (shards of
//     one sweep differ only in their Shard field) — a mismatch refuses
//     the merge, nothing is written;
//   - a key appearing in several shards must carry byte-identical
//     payloads in all of them; divergent duplicates mean the shards
//     were not runs of the same configuration and abort the merge;
//   - gaps are reported against the expected-key sidecar (keys.json)
//     when the sources carry one;
//   - dst receives the first shard's manifest with Shard cleared, the
//     union log in sorted-key order, and the first shard's spec/keys
//     sidecars, so the merged directory is resumable and regenerable
//     exactly like an unsharded run.
//
// dst must not already hold a run (Create's O_EXCL claim applies).
func MergeRuns(dst string, srcs []string) (MergeReport, error) {
	if len(srcs) == 0 {
		return MergeReport{}, fmt.Errorf("runstore: merge needs at least one source run directory")
	}
	report := MergeReport{Shards: append([]string(nil), srcs...)}

	manifests := make([]Manifest, len(srcs))
	for i, dir := range srcs {
		data, err := os.ReadFile(filepath.Join(dir, manifestName))
		if err != nil {
			return MergeReport{}, fmt.Errorf("runstore: %s is not a run directory: %w", dir, err)
		}
		if err := json.Unmarshal(data, &manifests[i]); err != nil {
			return MergeReport{}, fmt.Errorf("runstore: corrupt manifest in %s: %w", dir, err)
		}
		if i > 0 {
			if manifests[i].ConfigHash != manifests[0].ConfigHash {
				return MergeReport{}, fmt.Errorf("runstore: config hash mismatch: %s was started with %s, %s with %s (refusing to mix results)",
					srcs[0], manifests[0].ConfigHash, dir, manifests[i].ConfigHash)
			}
			if manifests[i].Command != manifests[0].Command {
				return MergeReport{}, fmt.Errorf("runstore: command mismatch: %s ran %q, %s ran %q",
					srcs[0], manifests[0].Command, dir, manifests[i].Command)
			}
		}
	}

	// Union the shard logs, tracking which shard first supplied each key
	// so a divergent duplicate names both sides.
	union := map[string]json.RawMessage{}
	origin := map[string]string{}
	overlaps := map[string]bool{}
	for _, dir := range srcs {
		points, _, err := loadPoints(filepath.Join(dir, pointsName))
		if err != nil {
			return MergeReport{}, err
		}
		for key, raw := range points {
			if prev, ok := union[key]; ok {
				if !bytes.Equal(prev, raw) {
					return MergeReport{}, fmt.Errorf("runstore: shards disagree on point %q: %s and %s hold different payloads (not runs of the same configuration?)",
						key, origin[key], dir)
				}
				overlaps[key] = true
				continue
			}
			union[key] = raw
			origin[key] = dir
		}
	}
	report.Points = len(union)
	report.Overlaps = len(overlaps)

	// Gap detection against the expected grid, when recorded.
	expected, err := ReadExpectedKeys(srcs[0])
	if err != nil {
		return MergeReport{}, err
	}
	if expected != nil {
		report.Gaps = []string{}
		for _, key := range expected {
			if _, ok := union[key]; !ok {
				report.Gaps = append(report.Gaps, key)
			}
		}
	}

	// Write the merged run: first shard's manifest with the shard mark
	// cleared, then the union in sorted-key order so merged logs are
	// deterministic regardless of shard argument order.
	m := manifests[0]
	m.Shard = ""
	run, err := Create(dst, m)
	if err != nil {
		return MergeReport{}, err
	}
	defer run.Close()
	keys := make([]string, 0, len(union))
	for key := range union {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if err := run.AppendPoint(key, union[key]); err != nil {
			return MergeReport{}, err
		}
	}
	// Carry the sidecars over so the merged directory can regenerate
	// CSVs and be gap-checked or resumed like any unsharded run.
	var spec json.RawMessage
	if ok, err := ReadSpec(srcs[0], &spec); err != nil {
		return MergeReport{}, err
	} else if ok {
		if err := WriteSpec(dst, spec); err != nil {
			return MergeReport{}, err
		}
	}
	if expected != nil {
		if err := WriteExpectedKeys(dst, expected); err != nil {
			return MergeReport{}, err
		}
	}
	if err := run.Close(); err != nil {
		return MergeReport{}, err
	}
	return report, nil
}
