// Package density implements an exact density-matrix simulator for
// small registers. Where the trajectory engine in internal/noise samples
// the depolarizing channels Monte Carlo style, this package evolves the
// full density operator ρ through gates (ρ → UρU†) and channels
// (ρ → Σ_k K_k ρ K_k†) exactly. It is quadratically more expensive in
// state dimension and exists for two purposes: validating the trajectory
// engine (their outputs must agree as trajectories → ∞) and computing
// exact reference curves for small-register experiments.
package density

import (
	"fmt"
	"math/cmplx"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/mat"
	"qfarith/internal/noise"
	"qfarith/internal/sim"
	"qfarith/internal/transpile"
)

// MaxQubits bounds the register: a 10-qubit ρ holds 2^20 complex entries
// (16 MiB); beyond that the trajectory engine is the right tool.
const MaxQubits = 10

// Matrix is the density operator, dim x dim row-major.
type Matrix struct {
	n    int
	dim  int
	data []complex128
}

// New returns ρ = |0...0><0...0| on n qubits.
func New(n int) *Matrix {
	if n <= 0 || n > MaxQubits {
		panic(fmt.Sprintf("density: invalid qubit count %d", n))
	}
	d := 1 << uint(n)
	m := &Matrix{n: n, dim: d, data: make([]complex128, d*d)}
	m.data[0] = 1
	return m
}

// FromPure builds ρ = |ψ><ψ| from a state vector.
func FromPure(amps []complex128) *Matrix {
	d := len(amps)
	n := 0
	for 1<<uint(n) < d {
		n++
	}
	if 1<<uint(n) != d {
		panic("density: amplitude length not a power of two")
	}
	m := New(n)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			m.data[i*d+j] = amps[i] * cmplx.Conj(amps[j])
		}
	}
	return m
}

// NumQubits returns the register width.
func (m *Matrix) NumQubits() int { return m.n }

// At returns ρ_ij.
func (m *Matrix) At(i, j int) complex128 { return m.data[i*m.dim+j] }

// Trace returns tr ρ (1 for a valid state).
func (m *Matrix) Trace() complex128 {
	var s complex128
	for i := 0; i < m.dim; i++ {
		s += m.data[i*m.dim+i]
	}
	return s
}

// Purity returns tr ρ² (1 iff pure).
func (m *Matrix) Purity() float64 {
	var s complex128
	for i := 0; i < m.dim; i++ {
		for j := 0; j < m.dim; j++ {
			s += m.data[i*m.dim+j] * m.data[j*m.dim+i]
		}
	}
	return real(s)
}

// ApplyOp applies a gate: ρ → U ρ U†. Rather than building 2^n x 2^n
// unitaries, it borrows the statevector kernels: each column of ρ is a
// vector acted on by U, then each row's conjugate is acted on by U to
// realize the right-multiplication by U†.
func (m *Matrix) ApplyOp(op circuit.Op) {
	d := m.dim
	// Left multiply: each column j of ρ is a vector; apply U.
	col := sim.NewState(m.n)
	amps := col.Amps()
	for j := 0; j < d; j++ {
		for i := 0; i < d; i++ {
			amps[i] = m.data[i*d+j]
		}
		col.ApplyOp(op)
		for i := 0; i < d; i++ {
			m.data[i*d+j] = amps[i]
		}
	}
	// Right multiply by U†: (ρU†)_ij = Σ_k ρ_ik (U†)_kj = conj(U ρ†)...
	// Equivalently apply U to each row's conjugate and conjugate back.
	for i := 0; i < d; i++ {
		row := m.data[i*d : (i+1)*d]
		for k := 0; k < d; k++ {
			amps[k] = cmplx.Conj(row[k])
		}
		col.ApplyOp(op)
		for k := 0; k < d; k++ {
			row[k] = cmplx.Conj(amps[k])
		}
	}
}

// ApplyCircuit applies every op of c.
func (m *Matrix) ApplyCircuit(c *circuit.Circuit) {
	if c.NumQubits > m.n {
		panic("density: circuit wider than register")
	}
	for _, op := range c.Ops {
		m.ApplyOp(op)
	}
}

// Depolarize1 applies the 1q depolarizing channel with parameter lambda
// to qubit q: ρ → (1-λ)ρ + (λ/4)(ρ + XρX + YρY + ZρZ) — implemented as
// the equivalent Pauli mixture (1-3λ/4)ρ + (λ/4)Σ_{P≠I} PρP.
func (m *Matrix) Depolarize1(q int, lambda float64) {
	if lambda <= 0 {
		return
	}
	orig := append([]complex128(nil), m.data...)
	scale(m.data, complex(1-3*lambda/4, 0))
	for _, k := range []gate.Kind{gate.X, gate.Y, gate.Z} {
		tmp := &Matrix{n: m.n, dim: m.dim, data: append([]complex128(nil), orig...)}
		tmp.ApplyOp(circuit.NewOp(k, 0, q))
		axpy(m.data, tmp.data, complex(lambda/4, 0))
	}
}

// Depolarize2 applies the 2q depolarizing channel with parameter lambda
// to qubits (a, b): identity with weight 1-15λ/16 plus each non-identity
// Pauli pair with weight λ/16.
func (m *Matrix) Depolarize2(a, b int, lambda float64) {
	if lambda <= 0 {
		return
	}
	orig := append([]complex128(nil), m.data...)
	scale(m.data, complex(1-15*lambda/16, 0))
	paulis := []gate.Kind{gate.I, gate.X, gate.Y, gate.Z}
	for pa := 0; pa < 4; pa++ {
		for pb := 0; pb < 4; pb++ {
			if pa == 0 && pb == 0 {
				continue
			}
			tmp := &Matrix{n: m.n, dim: m.dim, data: append([]complex128(nil), orig...)}
			if pa != 0 {
				tmp.ApplyOp(circuit.NewOp(paulis[pa], 0, a))
			}
			if pb != 0 {
				tmp.ApplyOp(circuit.NewOp(paulis[pb], 0, b))
			}
			axpy(m.data, tmp.data, complex(lambda/16, 0))
		}
	}
}

// AmplitudeDamp applies the exact amplitude damping channel with
// parameter gamma to qubit q via its two Kraus operators.
func (m *Matrix) AmplitudeDamp(q int, gamma float64) {
	if gamma <= 0 {
		return
	}
	d := m.dim
	k0 := mat.FromSlice(2, 2, []complex128{1, 0, 0, complex(cmplxSqrt(1-gamma), 0)})
	k1 := mat.FromSlice(2, 2, []complex128{0, complex(cmplxSqrt(gamma), 0), 0, 0})
	out := make([]complex128, d*d)
	for _, k := range []*mat.Matrix{k0, k1} {
		tmp := append([]complex128(nil), m.data...)
		applyKraus(tmp, m.n, q, k)
		for i := range out {
			out[i] += tmp[i]
		}
	}
	copy(m.data, out)
}

func cmplxSqrt(x float64) float64 {
	if x < 0 {
		return 0
	}
	return real(cmplx.Sqrt(complex(x, 0)))
}

// applyKraus computes K ρ K† in place for a single-qubit Kraus operator.
func applyKraus(data []complex128, n, q int, k *mat.Matrix) {
	d := 1 << uint(n)
	// Left: K·ρ over columns.
	step := 1 << uint(q)
	for j := 0; j < d; j++ {
		for g := 0; g < d; g += 2 * step {
			for i := g; i < g+step; i++ {
				a0 := data[i*d+j]
				a1 := data[(i+step)*d+j]
				data[i*d+j] = k.At(0, 0)*a0 + k.At(0, 1)*a1
				data[(i+step)*d+j] = k.At(1, 0)*a0 + k.At(1, 1)*a1
			}
		}
	}
	// Right: ·K† over rows.
	for i := 0; i < d; i++ {
		row := data[i*d : (i+1)*d]
		for g := 0; g < d; g += 2 * step {
			for jj := g; jj < g+step; jj++ {
				a0 := row[jj]
				a1 := row[jj+step]
				row[jj] = a0*cmplx.Conj(k.At(0, 0)) + a1*cmplx.Conj(k.At(0, 1))
				row[jj+step] = a0*cmplx.Conj(k.At(1, 0)) + a1*cmplx.Conj(k.At(1, 1))
			}
		}
	}
}

func scale(v []complex128, s complex128) {
	for i := range v {
		v[i] *= s
	}
}

func axpy(dst, src []complex128, a complex128) {
	for i := range dst {
		dst[i] += a * src[i]
	}
}

// RegisterProbs returns the marginal distribution of the given qubits
// (LSB first) from the diagonal of ρ.
func (m *Matrix) RegisterProbs(qubits []int) []float64 {
	out := make([]float64, 1<<uint(len(qubits)))
	for idx := 0; idx < m.dim; idx++ {
		p := real(m.data[idx*m.dim+idx])
		v := 0
		for i, q := range qubits {
			v |= ((idx >> uint(q)) & 1) << uint(i)
		}
		out[v] += p
	}
	return out
}

// RunNoisy evolves ρ through a transpiled circuit under the given
// depolarizing model, applying each gate's channel exactly after the
// gate — the exact counterpart of noise.Engine's trajectory sampling.
func RunNoisy(m *Matrix, res *transpile.Result, model noise.Model) {
	for _, op := range res.Ops {
		m.ApplyOp(op)
		switch op.Kind {
		case gate.CX:
			m.Depolarize2(op.Qubits[0], op.Qubits[1], model.TwoQubit)
		case gate.X, gate.SX:
			m.Depolarize1(op.Qubits[0], model.OneQubit)
		case gate.RZ, gate.I:
			if model.NoiseOnRZ {
				m.Depolarize1(op.Qubits[0], model.OneQubit)
			}
		}
	}
}
