package density_test

import (
	"math"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/density"
	"qfarith/internal/gate"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
	"qfarith/internal/sim"
	"qfarith/internal/testutil"
	"qfarith/internal/transpile"
)

func TestPureEvolutionMatchesStatevector(t *testing.T) {
	// Without noise, diag(ρ) after a circuit must equal |ψ|².
	c := arith.NewQFA(2, 3, arith.DefaultConfig())
	rng := testutil.NewRand(5)
	st := testutil.RandomState(rng, 5)
	rho := density.FromPure(st.Amps())
	st.ApplyCircuit(c)
	rho.ApplyCircuit(c)
	if math.Abs(real(rho.Trace())-1) > 1e-9 {
		t.Fatalf("trace drifted: %v", rho.Trace())
	}
	if p := rho.Purity(); math.Abs(p-1) > 1e-9 {
		t.Fatalf("purity %g after unitary evolution", p)
	}
	for i := 0; i < st.Dim(); i++ {
		if d := math.Abs(real(rho.At(i, i)) - st.Probability(i)); d > 1e-9 {
			t.Fatalf("diag %d differs by %g", i, d)
		}
	}
}

func TestDepolarize1FullyMixes(t *testing.T) {
	// λ=1 sends any single-qubit state to I/2.
	rho := density.New(1)
	rho.ApplyOp(circuit.NewOp(gate.H, 0, 0))
	rho.Depolarize1(0, 1.0)
	if math.Abs(real(rho.At(0, 0))-0.5) > 1e-12 || math.Abs(real(rho.At(1, 1))-0.5) > 1e-12 {
		t.Errorf("diag not maximally mixed: %v, %v", rho.At(0, 0), rho.At(1, 1))
	}
	if c := rho.At(0, 1); math.Hypot(real(c), imag(c)) > 1e-12 {
		t.Errorf("coherence survived full depolarization: %v", c)
	}
	if p := rho.Purity(); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("purity %g, want 0.5", p)
	}
}

func TestDepolarize2PreservesTraceAndMixes(t *testing.T) {
	rho := density.New(2)
	rho.ApplyOp(circuit.NewOp(gate.H, 0, 0))
	rho.ApplyOp(circuit.NewOp(gate.CX, 0, 0, 1)) // Bell state
	rho.Depolarize2(0, 1, 0.5)
	if math.Abs(real(rho.Trace())-1) > 1e-12 {
		t.Errorf("trace %v", rho.Trace())
	}
	if p := rho.Purity(); p >= 1 || p < 0.25 {
		t.Errorf("purity %g out of expected range", p)
	}
}

func TestAmplitudeDampChannel(t *testing.T) {
	// From |1>, ρ_11 decays to (1-γ).
	rho := density.New(1)
	rho.ApplyOp(circuit.NewOp(gate.X, 0, 0))
	rho.AmplitudeDamp(0, 0.3)
	if d := math.Abs(real(rho.At(1, 1)) - 0.7); d > 1e-12 {
		t.Errorf("excited population off by %g", d)
	}
	if d := math.Abs(real(rho.At(0, 0)) - 0.3); d > 1e-12 {
		t.Errorf("ground population off by %g", d)
	}
	// Coherence of |+> damps by sqrt(1-γ).
	rho2 := density.New(1)
	rho2.ApplyOp(circuit.NewOp(gate.H, 0, 0))
	rho2.AmplitudeDamp(0, 0.3)
	want := 0.5 * math.Sqrt(0.7)
	if d := math.Abs(real(rho2.At(0, 1)) - want); d > 1e-12 {
		t.Errorf("coherence %v, want %g", rho2.At(0, 1), want)
	}
}

// TestTrajectoryEngineConvergesToDensity is the headline cross-check:
// the Monte Carlo trajectory mixture must converge to the exact channel
// output computed by density-matrix evolution.
func TestTrajectoryEngineConvergesToDensity(t *testing.T) {
	c := arith.NewQFA(2, 3, arith.Config{Depth: 2, AddCut: arith.FullAdd})
	res := transpile.Transpile(c)
	model := noise.PaperModel(0.01, 0.03)

	x, y := 2, 5
	initAmps := make([]complex128, 1<<5)
	initAmps[x|y<<2] = 1

	// Exact channel output.
	rho := density.FromPure(initAmps)
	density.RunNoisy(rho, res, model)
	exact := rho.RegisterProbs(arith.Range(2, 3))

	// Trajectory mixture with a large trajectory budget.
	engine := noise.NewEngine(res, model)
	st := sim.NewState(5)
	dist := make([]float64, 8)
	rng := testutil.NewRand(7)
	engine.MixtureInto(dist, st, initAmps, noise.MixtureOpts{
		Trajectories: 12000,
		Measure:      arith.Range(2, 3),
	}, rng)

	for v := range exact {
		if d := math.Abs(exact[v] - dist[v]); d > 0.01 {
			t.Errorf("outcome %d: exact %.4f vs trajectories %.4f (Δ %.4f)", v, exact[v], dist[v], d)
		}
	}
}

func TestDensityNoisyQFTDegradesCoherence(t *testing.T) {
	res := transpile.Transpile(qft.New(3, qft.Full))
	rho := density.New(3)
	density.RunNoisy(rho, res, noise.PaperModel(0.05, 0.05))
	if p := rho.Purity(); p >= 0.95 {
		t.Errorf("purity %g: noisy QFT should mix the state", p)
	}
	if tr := real(rho.Trace()); math.Abs(tr-1) > 1e-9 {
		t.Errorf("trace %g", tr)
	}
}

func TestRegisterProbsMatchesStatevectorConvention(t *testing.T) {
	rng := testutil.NewRand(13)
	st := testutil.RandomState(rng, 4)
	rho := density.FromPure(st.Amps())
	for _, reg := range [][]int{{0, 1}, {2, 3}, {3, 0}} {
		want := st.RegisterProbs(reg)
		got := rho.RegisterProbs(reg)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9 {
				t.Fatalf("reg %v bin %d: %g vs %g", reg, i, got[i], want[i])
			}
		}
	}
}

func TestFromPureRejectsBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two amplitudes")
		}
	}()
	density.FromPure(make([]complex128, 3))
}
