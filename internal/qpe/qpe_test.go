package qpe_test

import (
	"math"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/qft"
	"qfarith/internal/qpe"
	"qfarith/internal/sim"
)

func measurePhase(t *testing.T, bits int, theta float64, depth int) float64 {
	t.Helper()
	c := qpe.New(bits, theta, depth)
	st := sim.NewState(bits + 1)
	st.ApplyCircuit(c)
	probs := st.RegisterProbs(arith.Range(0, bits))
	return qpe.EstimateFromDistribution(probs)
}

func TestExactBinaryPhases(t *testing.T) {
	// Phases with a t-bit expansion are recovered exactly and with
	// probability 1.
	bits := 5
	for v := 0; v < 1<<uint(bits); v++ {
		phi := float64(v) / 32
		theta := 2 * math.Pi * phi
		c := qpe.New(bits, theta, qft.Full)
		st := sim.NewState(bits + 1)
		st.ApplyCircuit(c)
		probs := st.RegisterProbs(arith.Range(0, bits))
		if p := probs[v]; math.Abs(p-1) > 1e-9 {
			t.Fatalf("φ=%d/32: P(exact) = %g", v, p)
		}
	}
}

func TestIrrationalPhaseApproximated(t *testing.T) {
	bits := 7
	phi := 1 / math.Pi // no finite binary expansion
	got := measurePhase(t, bits, 2*math.Pi*phi, qft.Full)
	if math.Abs(got-phi) > 1.0/128 {
		t.Errorf("estimated %g, want %g ± 2^-7", got, phi)
	}
}

func TestResolutionImprovesWithBits(t *testing.T) {
	phi := 0.3
	prevErr := math.Inf(1)
	for _, bits := range []int{3, 5, 8} {
		got := measurePhase(t, bits, 2*math.Pi*phi, qft.Full)
		err := math.Abs(got - phi)
		if err > prevErr+1.0/float64(int(1)<<uint(bits)) {
			t.Errorf("%d bits: error %g did not shrink (prev %g)", bits, err, prevErr)
		}
		prevErr = err
	}
	if prevErr > 1.0/256 {
		t.Errorf("8-bit estimate error %g too large", prevErr)
	}
}

func TestAQFTDepthDegradesEstimate(t *testing.T) {
	// With an exact binary phase, the full inverse QFT nails it; an
	// aggressively truncated AQFT spreads the distribution.
	bits := 6
	v := 23 // φ = 23/64
	theta := 2 * math.Pi * float64(v) / 64
	full := qpe.New(bits, theta, qft.Full)
	d1 := qpe.New(bits, theta, 1)
	stF := sim.NewState(bits + 1)
	stF.ApplyCircuit(full)
	st1 := sim.NewState(bits + 1)
	st1.ApplyCircuit(d1)
	pF := stF.RegisterProbs(arith.Range(0, bits))[v]
	p1 := st1.RegisterProbs(arith.Range(0, bits))[v]
	if math.Abs(pF-1) > 1e-9 {
		t.Fatalf("full QPE P = %g", pF)
	}
	if p1 >= pF-1e-9 {
		t.Errorf("depth-1 AQFT should blur the estimate: %g vs %g", p1, pF)
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for overlapping registers")
		}
	}()
	c := qpe.New(3, 1.0, qft.Full)
	_ = c
	cc := circuit.New(4)
	qpe.PhaseEstimationGates(cc, []int{0, 1, 2}, 2, 1.0, qft.Full)
}
