// Package qpe implements quantum phase estimation on top of the QFT
// machinery — the paper's own description of the QFT is "a
// phase-estimation algorithm", and QPE is the context (Shor, amplitude
// estimation) in which Fourier arithmetic earns its keep.
//
// The estimable unitaries are the library's phase gates: for U = P(θ)
// acting on an eigenstate |1>, controlled-U^(2^k) is CP(2^k·θ), which
// the gate set expresses directly. That is enough to exercise the whole
// QPE pipeline — Hadamard wall, controlled powers, inverse QFT with the
// textbook bit order, measurement post-processing — without
// multi-controlled machinery.
package qpe

import (
	"math"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/qft"
)

// PhaseEstimationGates appends a QPE circuit estimating the eigenphase
// φ = θ/2π of P(θ) to t bits: phase register on `phase` (LSB first),
// target qubit `target` assumed prepared in the |1> eigenstate. After
// the circuit, measuring the phase register yields round(φ·2^t) with
// high probability (exactly, when φ has a t-bit binary expansion).
//
// aqftDepth truncates the inverse QFT, the knob whose noise trade-off
// the paper studies; pass qft.Full for the exact transform.
func PhaseEstimationGates(c *circuit.Circuit, phase []int, target int, theta float64, aqftDepth int) {
	t := len(phase)
	if t == 0 {
		panic("qpe: empty phase register")
	}
	for _, q := range phase {
		if q == target {
			panic("qpe: target overlaps the phase register")
		}
		c.Append(gate.H, 0, q)
	}
	// Controlled powers. The swap-free inverse QFT expects the qubit
	// with label q (register position q-1) to carry the q-digit phase
	// fraction 0.y_q…y_1, so position k must receive the power
	// U^(2^(t-1-k)): its phase frac(2^(t-1-k)·φ) then has exactly k+1
	// binary digits of the result, matching the paper's Eq. (3) layout.
	for k := 0; k < t; k++ {
		c.Append(gate.CP, scaleAngle(theta, t-1-k), phase[k], target)
	}
	qft.InverseGates(c, phase, aqftDepth)
}

// scaleAngle returns 2^k * theta reduced mod 2π to keep CP parameters
// well-conditioned.
func scaleAngle(theta float64, k int) float64 {
	s := theta * math.Pow(2, float64(k))
	s = math.Mod(s, 2*math.Pi)
	if s > math.Pi {
		s -= 2 * math.Pi
	}
	return s
}

// New builds a standalone QPE circuit with the phase register on qubits
// 0..t-1 and the eigenstate target on qubit t (which the circuit flips
// to |1> itself).
func New(t int, theta float64, aqftDepth int) *circuit.Circuit {
	c := circuit.New(t + 1)
	c.Append(gate.X, 0, t)
	phase := make([]int, t)
	for i := range phase {
		phase[i] = i
	}
	PhaseEstimationGates(c, phase, t, theta, aqftDepth)
	return c
}

// EstimateFromDistribution converts a measured phase-register
// distribution into the maximum-likelihood phase estimate φ ∈ [0, 1).
func EstimateFromDistribution(probs []float64) float64 {
	best, bestP := 0, -1.0
	for v, p := range probs {
		if p > bestP {
			best, bestP = v, p
		}
	}
	return float64(best) / float64(len(probs))
}
