package sim_test

import (
	"math"
	"testing"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/sim"
	"qfarith/internal/testutil"
)

func TestMeasureBasisState(t *testing.T) {
	rng := testutil.NewRand(1)
	st := sim.NewState(4)
	st.SetBasis(0b1010)
	for q, want := range []int{0, 1, 0, 1} {
		if got := st.MeasureQubit(q, rng); got != want {
			t.Fatalf("qubit %d measured %d, want %d", q, got, want)
		}
	}
	// State unchanged by measuring a basis state.
	if st.Probability(0b1010) < 1-1e-12 {
		t.Error("measurement disturbed a basis state")
	}
}

func TestMeasureCollapsesSuperposition(t *testing.T) {
	rng := testutil.NewRand(2)
	ones := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		st := sim.NewState(1)
		st.H(0)
		out := st.MeasureQubit(0, rng)
		ones += out
		// Post-measurement state must be the observed basis state.
		if st.Probability(out) < 1-1e-12 {
			t.Fatal("state not collapsed")
		}
	}
	f := float64(ones) / trials
	if math.Abs(f-0.5) > 0.05 {
		t.Errorf("|+> measurement frequency %g, want ≈0.5", f)
	}
}

func TestMeasureEntangledPairCorrelated(t *testing.T) {
	rng := testutil.NewRand(3)
	for i := 0; i < 200; i++ {
		st := sim.NewState(2)
		st.H(0)
		st.CX(0, 1) // Bell state
		a := st.MeasureQubit(0, rng)
		b := st.MeasureQubit(1, rng)
		if a != b {
			t.Fatal("Bell pair measured anti-correlated in Z")
		}
	}
}

func TestMeasureRegister(t *testing.T) {
	rng := testutil.NewRand(4)
	st := sim.NewState(5)
	st.SetBasis(0b10110)
	if got := st.MeasureRegister([]int{1, 2, 4}, rng); got != 0b111 {
		t.Errorf("register outcome %b, want 111", got)
	}
}

func TestExpectationZ(t *testing.T) {
	st := sim.NewState(2)
	if z := st.ExpectationZ(0); math.Abs(z-1) > 1e-12 {
		t.Errorf("<Z> of |0> = %g", z)
	}
	st.X(0)
	if z := st.ExpectationZ(0); math.Abs(z+1) > 1e-12 {
		t.Errorf("<Z> of |1> = %g", z)
	}
	st.H(1)
	if z := st.ExpectationZ(1); math.Abs(z) > 1e-12 {
		t.Errorf("<Z> of |+> = %g", z)
	}
}

func TestExpectedValue(t *testing.T) {
	st := sim.NewState(3)
	st.H(0) // (|0>+|1>)/√2 on LSB: values 0 and 1 equally
	if m := st.ExpectedValue([]int{0, 1, 2}); math.Abs(m-0.5) > 1e-12 {
		t.Errorf("mean %g, want 0.5", m)
	}
}

func TestShannonEntropy(t *testing.T) {
	st := sim.NewState(3)
	if h := st.ShannonEntropy([]int{0, 1, 2}); math.Abs(h) > 1e-12 {
		t.Errorf("basis state entropy %g", h)
	}
	c := circuit.New(3)
	c.Append(gate.H, 0, 0)
	c.Append(gate.H, 0, 1)
	c.Append(gate.H, 0, 2)
	st.ApplyCircuit(c)
	if h := st.ShannonEntropy([]int{0, 1, 2}); math.Abs(h-3) > 1e-9 {
		t.Errorf("uniform entropy %g, want 3", h)
	}
}
