package sim_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"qfarith/internal/sim"
)

func TestCDFMonotoneAndNormalized(t *testing.T) {
	probs := []float64{0.1, 0.4, 0.0, 0.3, 0.2}
	cdf := sim.CDF(probs)
	if len(cdf) != len(probs) {
		t.Fatalf("CDF length %d, want %d", len(cdf), len(probs))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Errorf("CDF not monotone at %d: %g < %g", i, cdf[i], cdf[i-1])
		}
	}
	if cdf[len(cdf)-1] != 1 {
		t.Errorf("CDF final value %g, want exactly 1", cdf[len(cdf)-1])
	}
}

func TestCDFNormalizesDriftedInput(t *testing.T) {
	// Kernel arithmetic can leave the vector summing slightly off 1;
	// CDF must renormalize so sampling stays well-defined.
	probs := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
	for i := range probs {
		probs[i] *= 1.001
	}
	cdf := sim.CDF(probs)
	if cdf[len(cdf)-1] != 1 {
		t.Errorf("drifted input: final CDF %g, want 1", cdf[len(cdf)-1])
	}
	if math.Abs(cdf[1]-0.4) > 1e-12 {
		t.Errorf("cdf[1] = %g, want 0.4 after normalization", cdf[1])
	}
}

func TestCDFClampsNegativeNoise(t *testing.T) {
	// Tiny negative entries (floating-point noise from kernels) must be
	// treated as zero, keeping the CDF monotone.
	probs := []float64{0.5, -1e-17, 0.5}
	cdf := sim.CDF(probs)
	if cdf[1] < cdf[0] {
		t.Errorf("negative entry broke monotonicity: %v", cdf)
	}
}

func TestCDFAllZeros(t *testing.T) {
	cdf := sim.CDF([]float64{0, 0, 0})
	for i := 0; i < len(cdf)-1; i++ {
		if cdf[i] != 0 {
			t.Errorf("cdf[%d] = %g, want 0", i, cdf[i])
		}
	}
	if cdf[len(cdf)-1] != 1 {
		t.Errorf("final CDF %g, want 1 (sampling must stay defined)", cdf[len(cdf)-1])
	}
}

func TestCountsSumToShots(t *testing.T) {
	probs := []float64{0.05, 0.25, 0.3, 0.4}
	for _, shots := range []int{1, 7, 2048} {
		counts := sim.NewSampler(5, 6).Counts(probs, shots)
		if len(counts) != len(probs) {
			t.Fatalf("counts length %d, want %d", len(counts), len(probs))
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != shots {
			t.Errorf("shots=%d: counts sum to %d", shots, total)
		}
	}
}

func TestCountsSkipZeroProbabilityBins(t *testing.T) {
	// Zero-probability bins share a CDF value with their predecessor;
	// no shot may ever land in one.
	probs := []float64{0.5, 0, 0, 0.5, 0}
	counts := sim.NewSampler(11, 12).Counts(probs, 4096)
	for _, i := range []int{1, 2, 4} {
		if counts[i] != 0 {
			t.Errorf("zero-probability bin %d received %d counts", i, counts[i])
		}
	}
}

func TestCountsDegenerateDistribution(t *testing.T) {
	probs := []float64{0, 0, 1, 0}
	counts := sim.NewSampler(1, 2).Counts(probs, 100)
	if counts[2] != 100 {
		t.Errorf("point mass: counts = %v, want all 100 in bin 2", counts)
	}
}

func TestSamplerSeedDeterminism(t *testing.T) {
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	a := sim.NewSampler(42, 43).Counts(probs, 1024)
	b := sim.NewSampler(42, 43).Counts(probs, 1024)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at bin %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := sim.NewSampler(42, 44).Counts(probs, 1024)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("note: different seeds produced identical histograms (possible but unlikely)")
	}
}

func TestCountsConvergeToDistribution(t *testing.T) {
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	const shots = 1 << 16
	counts := sim.NewSampler(9, 10).Counts(probs, shots)
	for i, p := range probs {
		got := float64(counts[i]) / shots
		// Binomial sigma ~ sqrt(p(1-p)/shots) <= 0.002; 5-sigma bound.
		if math.Abs(got-p) > 0.01 {
			t.Errorf("bin %d frequency %g, want ~%g", i, got, p)
		}
	}
}

func TestOneMatchesSupport(t *testing.T) {
	probs := []float64{0, 0.5, 0.5, 0}
	s := sim.NewSampler(3, 4)
	for i := 0; i < 200; i++ {
		k := s.One(probs)
		if k != 1 && k != 2 {
			t.Fatalf("One drew %d, outside the support {1,2}", k)
		}
	}
}

func TestMixInto(t *testing.T) {
	dst := []float64{0.1, 0.2}
	sim.MixInto(dst, []float64{0.5, 0.5}, 0.2)
	if math.Abs(dst[0]-0.2) > 1e-12 || math.Abs(dst[1]-0.3) > 1e-12 {
		t.Errorf("MixInto = %v, want [0.2 0.3]", dst)
	}
}

func TestCDFIntoMatchesCDF(t *testing.T) {
	cases := [][]float64{
		{1},
		{0.1, 0.4, 0.0, 0.3, 0.2},
		{0, 0, 0},
		{1e-320, 1, 1e-320},
		{-1e-17, 0.5, 0.5},
		{0.2002, 0.2002, 0.2, 0.2, 0.2},
	}
	buf := make([]float64, 0, 2) // force at least one growth
	for _, probs := range cases {
		want := sim.CDF(probs)
		buf = sim.CDFInto(buf, probs)
		if len(buf) != len(want) {
			t.Fatalf("CDFInto length %d, want %d", len(buf), len(want))
		}
		for i := range want {
			if math.Float64bits(buf[i]) != math.Float64bits(want[i]) {
				t.Errorf("probs=%v: CDFInto[%d] = %v, CDF = %v (bit mismatch)", probs, i, buf[i], want[i])
			}
		}
	}
}

// samplerTestDists mirrors the adversarial gallery of the internal
// tests at the public API level: zero bins everywhere, point masses,
// denormal-adjacent weights, drifted normalization.
func samplerTestDists(rng *rand.Rand) [][]float64 {
	dists := [][]float64{
		{1},
		{0.5, 0.5},
		{0.1, 0.4, 0.0, 0.3, 0.2},
		{0, 0, 1, 0},
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0.5, 0, 0, 0.5, 0},
		{0, 0, 0},
		{1e-320, 1, 1e-320},
		{5e-324, 5e-324, 1},
		{0.2002, 0.2002, 0.2, 0.2, 0.2},
		{-1e-17, 0.5, 0.5},
	}
	for _, n := range []int{2, 17, 256, 1024} {
		probs := make([]float64, n)
		for i := range probs {
			if rng.Float64() < 0.4 {
				continue
			}
			probs[i] = rng.Float64()
		}
		dists = append(dists, probs)
	}
	return dists
}

// TestCountsIntoMatchesCounts is the histogram-level equality property
// the bit-exactness contract rests on: for identical seeds, the guide-
// table and sorted-merge samplers produce count arrays exactly equal to
// the binary-search reference, across zero bins, point masses, and
// denormal-adjacent weights.
func TestCountsIntoMatchesCounts(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 103))
	sc := sim.GetSampleScratch()
	defer sim.PutSampleScratch(sc)
	for di, probs := range samplerTestDists(rng) {
		for _, shots := range []int{0, 1, 7, 2048} {
			seed1, seed2 := rng.Uint64(), rng.Uint64()
			want := sim.NewSampler(seed1, seed2).Counts(probs, shots)

			got := make([]int, len(probs))
			sim.NewSampler(seed1, seed2).CountsInto(sc, probs, shots, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dist %d shots %d: CountsInto[%d] = %d, Counts = %d", di, shots, i, got[i], want[i])
				}
			}

			sim.NewSampler(seed1, seed2).CountsMergeInto(sc, probs, shots, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dist %d shots %d: CountsMergeInto[%d] = %d, Counts = %d", di, shots, i, got[i], want[i])
				}
			}
		}
	}
}

// TestReseedMatchesFreshSampler pins the pooled-sampler contract: a
// reseeded sampler's draw stream is bit-identical to a fresh one.
func TestReseedMatchesFreshSampler(t *testing.T) {
	s := sim.NewSampler(1, 2)
	probs := []float64{0.25, 0.25, 0.25, 0.25}
	_ = s.Counts(probs, 100) // advance the state
	s.Reseed(42, 43)
	got := s.Counts(probs, 256)
	want := sim.NewSampler(42, 43).Counts(probs, 256)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reseeded sampler diverged at bin %d: %d vs %d", i, got[i], want[i])
		}
	}
}

// TestCountsIntoZeroAllocWarm enforces the zero-alloc contract of the
// pooled sampling stage: with warm scratch buffers, neither sampler
// variant allocates.
func TestCountsIntoZeroAllocWarm(t *testing.T) {
	probs := make([]float64, 256)
	for i := range probs {
		probs[i] = 1.0 / 256
	}
	s := sim.NewSampler(9, 10)
	sc := sim.GetSampleScratch()
	defer sim.PutSampleScratch(sc)
	out := make([]int, len(probs))
	s.CountsInto(sc, probs, 2048, out)      // warm the guide/CDF buffers
	s.CountsMergeInto(sc, probs, 2048, out) // warm the uniform buffer
	if n := testing.AllocsPerRun(20, func() { s.CountsInto(sc, probs, 2048, out) }); n != 0 {
		t.Errorf("warm CountsInto allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { s.CountsMergeInto(sc, probs, 2048, out) }); n != 0 {
		t.Errorf("warm CountsMergeInto allocates %v times per run, want 0", n)
	}
}
