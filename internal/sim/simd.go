package sim

// SIMD acceleration of the batched kernels.
//
// The amplitude-major BatchState layout makes the K copies of any
// amplitude a contiguous run of complex128s, so the hot batched inner
// loops (diagonal-term multiply, fused-1q combine, Hadamard butterfly)
// vectorize cleanly: one broadcast constant, packed loads, packed
// multiplies. The assembly kernels use only VMULPD/VADDPD/VSUBPD/
// VADDSUBPD — elementwise IEEE-754 operations that are bit-identical to
// the scalar MULSD/ADDSD/SUBSD sequences the Go compiler emits (gc does
// not fuse multiply-add on amd64), arranged in the same per-amplitude
// order as the portable kernels. The bit-exactness tests in
// batch_test.go therefore cover the SIMD paths directly, and
// TestBatchKernelsSIMDOffBitIdentical pins the portable fallback.
//
// batchSIMD gates every assembly call; it is true only when the CPU
// reports AVX2 with OS AVX state support (or always false off amd64).

// BatchSIMDEnabled reports whether the batched kernels are currently
// using the SIMD fast paths.
func BatchSIMDEnabled() bool { return batchSIMD }

// SetBatchSIMD enables or disables the batched SIMD fast paths and
// returns the previous setting. Enabling is a no-op on hardware without
// AVX2 support. Intended for tests and benchmarks; not safe to call
// concurrently with running kernels.
func SetBatchSIMD(on bool) bool {
	prev := batchSIMD
	batchSIMD = on && simdAvailable
	return prev
}
