package sim_test

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"qfarith/internal/sim"
	"qfarith/internal/testutil"
)

// applyKQDenseRef is an independent dense reference for ApplyKQ: the
// straightforward gather / matrix-vector / scatter loop, written without
// any monomial special-casing. The accumulation order (row term 0 first,
// then 1, 2, ...) matches the kernel's dense path, so for a monomial
// matrix — where every row term but one is an exact zero — the fast
// path's gather-permute-scale must agree with this to the last bit
// (complex equality; Go's == treats -0 and +0 as equal).
func applyKQDenseRef(amps []complex128, qubits []int, m []complex128) {
	k := len(qubits)
	dim := 1 << uint(k)
	mask := 0
	var pat [8]int
	for i, q := range qubits {
		mask |= 1 << uint(q)
		for j := 0; j < dim; j++ {
			if j>>uint(i)&1 == 1 {
				pat[j] |= 1 << uint(q)
			}
		}
	}
	var x, y [8]complex128
	base := 0
	for gi := 0; gi < len(amps)>>uint(k); gi++ {
		for j := 0; j < dim; j++ {
			x[j] = amps[base|pat[j]]
		}
		for i := 0; i < dim; i++ {
			acc := m[i*dim] * x[0]
			for j := 1; j < dim; j++ {
				acc += m[i*dim+j] * x[j]
			}
			y[i] = acc
		}
		for j := 0; j < dim; j++ {
			amps[base|pat[j]] = y[j]
		}
		base = ((base | mask) + 1) &^ mask
	}
}

// randKQCase derives a random ApplyKQ case from rng: a qubit tuple of
// size k ≤ 3 in random order over an n-qubit register, and a random
// k-qubit operator — monomial (random permutation with random unit
// phases, triggering the gather-permute-scale fast path) when mono,
// dense (a Hadamard-mixed monomial with no zero entries, forcing the
// general path) otherwise.
func randKQCase(rng *rand.Rand, n int, mono bool) (qubits []int, m []complex128) {
	k := 1 + rng.IntN(sim.MaxDenseQubits)
	qubits = rng.Perm(n)[:k]
	dim := 1 << uint(k)
	m = make([]complex128, dim*dim)
	perm := rng.Perm(dim)
	for j := 0; j < dim; j++ {
		m[perm[j]*dim+j] = cmplx.Rect(1, 2*math.Pi*rng.Float64())
	}
	if mono {
		return qubits, m
	}
	// Left-multiply by H⊗...⊗H: still unitary, every entry nonzero, so
	// buildKQPlan cannot classify it as monomial.
	h := complex(1/math.Sqrt2, 0)
	for j := 0; j < dim; j++ {
		col := make([]complex128, dim)
		for i := 0; i < dim; i++ {
			col[i] = m[i*dim+j]
		}
		for b := 0; b < k; b++ {
			for i := 0; i < dim; i++ {
				if i>>uint(b)&1 == 0 {
					lo, hi := col[i], col[i|1<<uint(b)]
					col[i], col[i|1<<uint(b)] = h*(lo+hi), h*(lo-hi)
				}
			}
		}
		for i := 0; i < dim; i++ {
			m[i*dim+j] = col[i]
		}
	}
	return qubits, m
}

func checkApplyKQ(t *testing.T, rng *rand.Rand, n int, mono bool) {
	t.Helper()
	qubits, m := randKQCase(rng, n, mono)
	st := testutil.RandomState(rng, n)
	want := append([]complex128(nil), st.Amps()...)
	applyKQDenseRef(want, qubits, m)
	st.ApplyKQ(qubits, m)
	for i, got := range st.Amps() {
		if mono {
			if got != want[i] {
				t.Fatalf("qubits %v mono: amp[%d] = %v, dense reference %v", qubits, i, got, want[i])
			}
			continue
		}
		if d := cmplx.Abs(got - want[i]); d > 1e-12 {
			t.Fatalf("qubits %v dense: amp[%d] = %v, reference %v (diff %g)", qubits, i, got, want[i], d)
		}
	}
}

// TestApplyKQMonomialVsDenseProperty drives the property over many
// random cases in a plain `go test` run: the monomial fast path is
// bit-identical to the dense arithmetic, and the dense path matches an
// independent reference.
func TestApplyKQMonomialVsDenseProperty(t *testing.T) {
	rng := testutil.NewRand(99)
	for i := 0; i < 300; i++ {
		checkApplyKQ(t, rng, 6, true)
		checkApplyKQ(t, rng, 6, false)
	}
}

// FuzzApplyKQ lets the fuzzer hunt for operator/qubit-tuple/state
// combinations where the monomial fast path and the dense path
// disagree. The seed corpus runs as part of `go test ./...`.
func FuzzApplyKQ(f *testing.F) {
	f.Add(uint64(1), false)
	f.Add(uint64(2), true)
	f.Add(uint64(0xdeadbeef), false)
	f.Add(uint64(0xdeadbeef), true)
	f.Add(uint64(1<<63), true)
	f.Fuzz(func(t *testing.T, seed uint64, mono bool) {
		rng := testutil.NewRand(seed)
		checkApplyKQ(t, rng, 5, mono)
	})
}
