package sim

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
)

// BatchState holds K statevectors over the same n qubits in
// structure-of-arrays layout so batched kernels stream one contiguous
// buffer instead of K separate ones.
//
// Layout: amplitude-major. amps[idx*K + lane] is amplitude idx of lane
// `lane`, so the K copies of any amplitude are contiguous and a kernel
// visiting amplitude idx touches one run of K complex values. The
// alternative (lane-major, each lane a contiguous 2^n vector) is what
// running the scalar kernels per lane already gives; the layout
// microbenchmark BenchmarkBatchLayout shows amplitude-major winning on
// the diagonal-run kernel that dominates Fourier arithmetic, because
// the per-amplitude sub-lattice enumeration (a serial dependency chain)
// amortizes over K independent contiguous multiplies. See DESIGN.md
// "Batched trajectory engine".
//
// Every batched kernel takes a half-open lane range [laneLo, laneHi)
// and performs, per lane, exactly the floating-point operations of the
// corresponding single-state kernel in the same order, so a lane's
// evolution is bit-identical to evolving it alone in a State. Batched
// kernels are serial (the batch itself is the parallelism unit).
type BatchState struct {
	n    int
	k    int
	amps []complex128 // len 2^n * k, amps[idx*k+lane]

	// diagActive is reusable scratch for ApplyDiagTermsBatch's per-block
	// term filtering, mirroring State.diagActive.
	diagActive []circuit.DiagTerm
}

// NewBatchState returns a K-lane n-qubit batch with every lane in the
// all-zeros state |0...0>.
func NewBatchState(n, k int) *BatchState {
	if n <= 0 || n > MaxQubits {
		panic(fmt.Sprintf("sim: invalid qubit count %d", n))
	}
	if k < 1 {
		panic(fmt.Sprintf("sim: invalid batch lane count %d", k))
	}
	b := &BatchState{n: n, k: k, amps: make([]complex128, (1<<uint(n))*k)}
	for l := 0; l < k; l++ {
		b.amps[l] = 1
	}
	return b
}

// NumQubits returns the number of qubits per lane.
func (b *BatchState) NumQubits() int { return b.n }

// Lanes returns the number of statevectors in the batch.
func (b *BatchState) Lanes() int { return b.k }

// Dim returns the per-lane Hilbert-space dimension 2^n.
func (b *BatchState) Dim() int { return 1 << uint(b.n) }

// SeedLane overwrites lane `lane` with src's amplitudes (a scatter copy
// into the amplitude-major layout). src must have the same qubit count.
func (b *BatchState) SeedLane(lane int, src *State) {
	if src.n != b.n {
		panic("sim: SeedLane qubit count mismatch")
	}
	k := b.k
	for idx, a := range src.amps {
		b.amps[idx*k+lane] = a
	}
}

// ExtractLane copies lane `lane` into dst (a gather out of the
// amplitude-major layout). dst must have the same qubit count.
func (b *BatchState) ExtractLane(lane int, dst *State) {
	if dst.n != b.n {
		panic("sim: ExtractLane qubit count mismatch")
	}
	k := b.k
	for idx := range dst.amps {
		dst.amps[idx] = b.amps[idx*k+lane]
	}
}

// laneRangeCheck validates a half-open lane range.
func (b *BatchState) laneRangeCheck(laneLo, laneHi int) {
	if laneLo < 0 || laneHi > b.k || laneLo > laneHi {
		panic(fmt.Sprintf("sim: batch lane range [%d,%d) outside %d lanes", laneLo, laneHi, b.k))
	}
}

// ApplyDiagTermsBatch is the batched form of State.ApplyDiagTerms: one
// pass over the amplitude index space applying the fused diagonal run to
// lanes [laneLo, laneHi). Per lane and per amplitude the matching terms
// multiply in term order, exactly as in the scalar kernel.
func (b *BatchState) ApplyDiagTermsBatch(terms []circuit.DiagTerm, laneLo, laneHi int) {
	b.laneRangeCheck(laneLo, laneHi)
	if len(terms) == 0 || laneLo == laneHi {
		return
	}
	if cap(b.diagActive) < len(terms) {
		b.diagActive = make([]circuit.DiagTerm, 0, len(terms))
	}
	active := b.diagActive[:0]
	const lowMask = 1<<diagBlockBits - 1
	dim := b.Dim()
	k := b.k
	for blo := 0; blo < dim; blo += lowMask + 1 {
		high := uint64(blo) &^ lowMask
		active = active[:0]
		for _, t := range terms {
			if high&t.Sel&^lowMask == t.Val&^lowMask {
				active = append(active, circuit.DiagTerm{
					Sel: t.Sel & lowMask, Val: t.Val & lowMask, Phase: t.Phase,
				})
			}
		}
		if len(active) == 0 {
			continue
		}
		bhi := blo + lowMask + 1
		if bhi <= dim {
			// Full aligned block: per active term, enumerate its in-block
			// sub-lattice once and multiply the whole lane run per matched
			// amplitude — the enumeration chain amortizes over the lanes.
			if batchSIMD {
				base := &b.amps[blo*k+laneLo]
				for _, t := range active {
					cnt := 1 << bits.OnesCount64(lowMask&^t.Sel)
					avx2DiagBlockTerm(base, k, laneHi-laneLo, cnt, t.Sel, t.Val, real(t.Phase), imag(t.Phase))
				}
				continue
			}
			for _, t := range active {
				cnt := 1 << bits.OnesCount64(lowMask&^t.Sel)
				x := t.Val
				p := t.Phase
				for j := 0; j < cnt; j++ {
					row := b.amps[(blo+int(x&lowMask))*k:]
					for l := laneLo; l < laneHi; l++ {
						row[l] *= p
					}
					x = ((x|t.Sel)+1)&^t.Sel | t.Val
				}
			}
			continue
		}
		// Sub-block state (n < diagBlockBits): per-amplitude conditional
		// fallback, same arithmetic as the scalar kernel's partial path.
		for i := blo; i < dim; i++ {
			li := uint64(i) & lowMask
			row := b.amps[i*k : (i+1)*k]
			for _, t := range active {
				if li&t.Sel == t.Val {
					for l := laneLo; l < laneHi; l++ {
						row[l] *= t.Phase
					}
				}
			}
		}
	}
}

// Apply1QBatch applies a 2x2 unitary to qubit q of lanes [laneLo, laneHi).
func (b *BatchState) Apply1QBatch(q int, m00, m01, m10, m11 complex128, laneLo, laneHi int) {
	b.laneRangeCheck(laneLo, laneHi)
	k := b.k
	step := 1 << uint(q)
	dim := b.Dim()
	if batchSIMD && laneHi > laneLo {
		m := [4]complex128{m00, m01, m10, m11}
		if laneLo == 0 && laneHi == k {
			avx2Combine2x2(&b.amps[0], &b.amps[step*k], dim/(2*step), step*k, 2*step*k, &m)
			return
		}
		for g := 0; g < dim; g += 2 * step {
			avx2Combine2x2(&b.amps[g*k+laneLo], &b.amps[(g+step)*k+laneLo], step, laneHi-laneLo, k, &m)
		}
		return
	}
	for g := 0; g < dim; g += 2 * step {
		for i := g; i < g+step; i++ {
			r0 := b.amps[i*k:]
			r1 := b.amps[(i+step)*k:]
			for l := laneLo; l < laneHi; l++ {
				a0, a1 := r0[l], r1[l]
				r0[l] = m00*a0 + m01*a1
				r1[l] = m10*a0 + m11*a1
			}
		}
	}
}

// ApplyCtrl1QBatch applies a 2x2 unitary to qubit t on the all-controls-1
// subspace of lanes [laneLo, laneHi), mirroring State.ApplyCtrl1Q's
// carry-skip base enumeration.
func (b *BatchState) ApplyCtrl1QBatch(controls []int, t int, m00, m01, m10, m11 complex128, laneLo, laneHi int) {
	b.laneRangeCheck(laneLo, laneHi)
	var cmask int
	for _, c := range controls {
		cmask |= 1 << uint(c)
	}
	tbit := 1 << uint(t)
	mask := cmask | tbit
	k := b.k
	groups := b.Dim() >> uint(len(controls)+1)
	base := 0
	for g := 0; g < groups; g++ {
		i0 := base | cmask
		i1 := i0 | tbit
		r0 := b.amps[i0*k:]
		r1 := b.amps[i1*k:]
		for l := laneLo; l < laneHi; l++ {
			a0, a1 := r0[l], r1[l]
			r0[l] = m00*a0 + m01*a1
			r1[l] = m10*a0 + m11*a1
		}
		base = ((base | mask) + 1) &^ mask
	}
}

// ApplyKQBatch applies a dense 2^k x 2^k unitary to the listed qubits of
// lanes [laneLo, laneHi), with the same matrix layout and monomial fast
// path as State.ApplyKQ.
func (b *BatchState) ApplyKQBatch(qubits []int, m []complex128, laneLo, laneHi int) {
	b.laneRangeCheck(laneLo, laneHi)
	plan := buildKQPlan(qubits, m)
	k := b.k
	dim := plan.dim
	groups := b.Dim() >> uint(len(qubits))
	// base and pat[j] occupy disjoint bit sets, so (base|pat[j])*k =
	// base*k + pat[j]*k; pre-scaling pat by k hoists a multiply out of
	// the innermost loops.
	var patK [maxDenseDim]int
	for j := 0; j < dim; j++ {
		patK[j] = plan.pat[j] * k
	}
	base := 0
	if plan.mono {
		var permPatK [maxDenseDim]int
		for j := 0; j < dim; j++ {
			permPatK[j] = plan.pat[plan.perm[j]] * k
		}
		var x [maxDenseDim]complex128
		for g := 0; g < groups; g++ {
			baseK := base * k
			for l := laneLo; l < laneHi; l++ {
				for j := 0; j < dim; j++ {
					x[j] = b.amps[baseK+patK[j]+l]
				}
				for j := 0; j < dim; j++ {
					b.amps[baseK+permPatK[j]+l] = plan.ph[j] * x[j]
				}
			}
			base = ((base | plan.mask) + 1) &^ plan.mask
		}
		return
	}
	var x, y [maxDenseDim]complex128
	for g := 0; g < groups; g++ {
		baseK := base * k
		for l := laneLo; l < laneHi; l++ {
			for j := 0; j < dim; j++ {
				x[j] = b.amps[baseK+patK[j]+l]
			}
			for i := 0; i < dim; i++ {
				row := plan.m[i*dim : (i+1)*dim]
				acc := row[0] * x[0]
				for j := 1; j < dim; j++ {
					acc += row[j] * x[j]
				}
				y[i] = acc
			}
			for j := 0; j < dim; j++ {
				b.amps[baseK+patK[j]+l] = y[j]
			}
		}
		base = ((base | plan.mask) + 1) &^ plan.mask
	}
}

// PhaseBatch is the batched P-gate kernel (State.Phase).
func (b *BatchState) PhaseBatch(q int, theta float64, laneLo, laneHi int) {
	b.laneRangeCheck(laneLo, laneHi)
	p := cmplx.Exp(complex(0, theta))
	k := b.k
	step := 1 << uint(q)
	dim := b.Dim()
	if batchSIMD && laneHi > laneLo {
		if laneLo == 0 && laneHi == k {
			avx2CMulRows(&b.amps[step*k], dim/(2*step), step*k, 2*step*k, real(p), imag(p))
			return
		}
		for g := step; g < dim; g += 2 * step {
			avx2CMulRows(&b.amps[g*k+laneLo], step, laneHi-laneLo, k, real(p), imag(p))
		}
		return
	}
	for g := step; g < dim; g += 2 * step {
		for i := g; i < g+step; i++ {
			row := b.amps[i*k : (i+1)*k]
			for l := laneLo; l < laneHi; l++ {
				row[l] *= p
			}
		}
	}
}

// RZBatch is the batched exact-RZ kernel (State.RZ).
func (b *BatchState) RZBatch(q int, theta float64, laneLo, laneHi int) {
	b.laneRangeCheck(laneLo, laneHi)
	p0 := cmplx.Exp(complex(0, -theta/2))
	p1 := cmplx.Exp(complex(0, theta/2))
	k := b.k
	step := 1 << uint(q)
	dim := b.Dim()
	if batchSIMD && laneHi > laneLo {
		// The two half-spaces are disjoint, so splitting the scalar
		// kernel's interleaved loop into one pass per phase is bit-exact.
		if laneLo == 0 && laneHi == k {
			rows := dim / (2 * step)
			avx2CMulRows(&b.amps[0], rows, step*k, 2*step*k, real(p0), imag(p0))
			avx2CMulRows(&b.amps[step*k], rows, step*k, 2*step*k, real(p1), imag(p1))
			return
		}
		for g := 0; g < dim; g += 2 * step {
			avx2CMulRows(&b.amps[g*k+laneLo], step, laneHi-laneLo, k, real(p0), imag(p0))
			avx2CMulRows(&b.amps[(g+step)*k+laneLo], step, laneHi-laneLo, k, real(p1), imag(p1))
		}
		return
	}
	for g := 0; g < dim; g += 2 * step {
		for i := g; i < g+step; i++ {
			r0 := b.amps[i*k:]
			r1 := b.amps[(i+step)*k:]
			for l := laneLo; l < laneHi; l++ {
				r0[l] *= p0
				r1[l] *= p1
			}
		}
	}
}

// CPhaseBatch is the batched controlled-phase kernel (State.CPhase).
func (b *BatchState) CPhaseBatch(c, t int, theta float64, laneLo, laneHi int) {
	b.laneRangeCheck(laneLo, laneHi)
	p := cmplx.Exp(complex(0, theta))
	lo, hi := c, t
	if lo > hi {
		lo, hi = hi, lo
	}
	k := b.k
	quarter := b.Dim() >> 2
	mask := (1 << uint(lo)) | (1 << uint(hi))
	for g := 0; g < quarter; g++ {
		idx := insertZero(insertZero(g, lo), hi) | mask
		row := b.amps[idx*k : (idx+1)*k]
		for l := laneLo; l < laneHi; l++ {
			row[l] *= p
		}
	}
}

// CCPhaseBatch is the batched doubly-controlled-phase kernel
// (State.CCPhase).
func (b *BatchState) CCPhaseBatch(c0, c1, t int, theta float64, laneLo, laneHi int) {
	b.laneRangeCheck(laneLo, laneHi)
	p := cmplx.Exp(complex(0, theta))
	bs := [3]int{c0, c1, t}
	sort3(&bs)
	k := b.k
	eighth := b.Dim() >> 3
	mask := (1 << uint(bs[0])) | (1 << uint(bs[1])) | (1 << uint(bs[2]))
	for g := 0; g < eighth; g++ {
		idx := insertZero(insertZero(insertZero(g, bs[0]), bs[1]), bs[2]) | mask
		row := b.amps[idx*k : (idx+1)*k]
		for l := laneLo; l < laneHi; l++ {
			row[l] *= p
		}
	}
}

// XBatch is the batched Pauli-X kernel (State.X).
func (b *BatchState) XBatch(q int, laneLo, laneHi int) {
	b.laneRangeCheck(laneLo, laneHi)
	k := b.k
	step := 1 << uint(q)
	dim := b.Dim()
	for g := 0; g < dim; g += 2 * step {
		for i := g; i < g+step; i++ {
			r0 := b.amps[i*k:]
			r1 := b.amps[(i+step)*k:]
			for l := laneLo; l < laneHi; l++ {
				r0[l], r1[l] = r1[l], r0[l]
			}
		}
	}
}

// YBatch is the batched Pauli-Y kernel (State.Y).
func (b *BatchState) YBatch(q int, laneLo, laneHi int) {
	b.laneRangeCheck(laneLo, laneHi)
	k := b.k
	step := 1 << uint(q)
	dim := b.Dim()
	for g := 0; g < dim; g += 2 * step {
		for i := g; i < g+step; i++ {
			r0 := b.amps[i*k:]
			r1 := b.amps[(i+step)*k:]
			for l := laneLo; l < laneHi; l++ {
				a0, a1 := r0[l], r1[l]
				r0[l] = complex(imag(a1), -real(a1))
				r1[l] = complex(-imag(a0), real(a0))
			}
		}
	}
}

// ZBatch is the batched Pauli-Z kernel (State.Z).
func (b *BatchState) ZBatch(q int, laneLo, laneHi int) {
	b.laneRangeCheck(laneLo, laneHi)
	k := b.k
	step := 1 << uint(q)
	dim := b.Dim()
	for g := step; g < dim; g += 2 * step {
		for i := g; i < g+step; i++ {
			row := b.amps[i*k : (i+1)*k]
			for l := laneLo; l < laneHi; l++ {
				row[l] = -row[l]
			}
		}
	}
}

// HBatch is the batched Hadamard kernel (State.H).
func (b *BatchState) HBatch(q int, laneLo, laneHi int) {
	b.laneRangeCheck(laneLo, laneHi)
	const inv = 1 / math.Sqrt2
	k := b.k
	step := 1 << uint(q)
	dim := b.Dim()
	if batchSIMD && laneHi > laneLo {
		if laneLo == 0 && laneHi == k {
			avx2HSpans(&b.amps[0], &b.amps[step*k], dim/(2*step), step*k, 2*step*k, inv)
			return
		}
		for g := 0; g < dim; g += 2 * step {
			avx2HSpans(&b.amps[g*k+laneLo], &b.amps[(g+step)*k+laneLo], step, laneHi-laneLo, k, inv)
		}
		return
	}
	for g := 0; g < dim; g += 2 * step {
		for i := g; i < g+step; i++ {
			r0 := b.amps[i*k:]
			r1 := b.amps[(i+step)*k:]
			for l := laneLo; l < laneHi; l++ {
				a0, a1 := r0[l], r1[l]
				r0[l] = complex(inv, 0) * (a0 + a1)
				r1[l] = complex(inv, 0) * (a0 - a1)
			}
		}
	}
}

// CXBatch is the batched controlled-NOT kernel (State.CX).
func (b *BatchState) CXBatch(c, t int, laneLo, laneHi int) {
	b.laneRangeCheck(laneLo, laneHi)
	lo, hi := c, t
	if lo > hi {
		lo, hi = hi, lo
	}
	cbit := 1 << uint(c)
	tbit := 1 << uint(t)
	k := b.k
	quarter := b.Dim() >> 2
	for g := 0; g < quarter; g++ {
		i0 := insertZero(insertZero(g, lo), hi) | cbit
		i1 := i0 | tbit
		r0 := b.amps[i0*k:]
		r1 := b.amps[i1*k:]
		for l := laneLo; l < laneHi; l++ {
			r0[l], r1[l] = r1[l], r0[l]
		}
	}
}

// SwapBatch is the batched qubit-swap kernel (State.Swap).
func (b *BatchState) SwapBatch(qa, qb int, laneLo, laneHi int) {
	b.laneRangeCheck(laneLo, laneHi)
	lo, hi := qa, qb
	if lo > hi {
		lo, hi = hi, lo
	}
	lob, hib := 1<<uint(lo), 1<<uint(hi)
	k := b.k
	quarter := b.Dim() >> 2
	for g := 0; g < quarter; g++ {
		base := insertZero(insertZero(g, lo), hi)
		i01 := base | lob
		i10 := base | hib
		r0 := b.amps[i01*k:]
		r1 := b.amps[i10*k:]
		for l := laneLo; l < laneHi; l++ {
			r0[l], r1[l] = r1[l], r0[l]
		}
	}
}

// ApplyOpBatch applies one circuit op to lanes [laneLo, laneHi),
// dispatching exactly as State.ApplyOp does so the per-lane arithmetic
// (including the computed phase constants) is bit-identical.
func (b *BatchState) ApplyOpBatch(op circuit.Op, laneLo, laneHi int) {
	q := op.Qubits
	switch op.Kind {
	case gate.I:
		// no-op
	case gate.P:
		b.PhaseBatch(q[0], op.Theta, laneLo, laneHi)
	case gate.RZ:
		b.RZBatch(q[0], op.Theta, laneLo, laneHi)
	case gate.Z:
		b.ZBatch(q[0], laneLo, laneHi)
	case gate.S:
		b.PhaseBatch(q[0], math.Pi/2, laneLo, laneHi)
	case gate.Sdg:
		b.PhaseBatch(q[0], -math.Pi/2, laneLo, laneHi)
	case gate.T:
		b.PhaseBatch(q[0], math.Pi/4, laneLo, laneHi)
	case gate.Tdg:
		b.PhaseBatch(q[0], -math.Pi/4, laneLo, laneHi)
	case gate.X:
		b.XBatch(q[0], laneLo, laneHi)
	case gate.Y:
		b.YBatch(q[0], laneLo, laneHi)
	case gate.H:
		b.HBatch(q[0], laneLo, laneHi)
	case gate.CX:
		b.CXBatch(q[0], q[1], laneLo, laneHi)
	case gate.CZ:
		b.CPhaseBatch(q[0], q[1], math.Pi, laneLo, laneHi)
	case gate.CP:
		b.CPhaseBatch(q[0], q[1], op.Theta, laneLo, laneHi)
	case gate.CCP:
		b.CCPhaseBatch(q[0], q[1], q[2], op.Theta, laneLo, laneHi)
	case gate.SWAP:
		b.SwapBatch(q[0], q[1], laneLo, laneHi)
	case gate.CH:
		s2 := complex(1/math.Sqrt2, 0)
		ctrl := [1]int{q[0]}
		b.ApplyCtrl1QBatch(ctrl[:], q[1], s2, s2, s2, -s2, laneLo, laneHi)
	case gate.CCX:
		ctrl := [2]int{q[0], q[1]}
		b.ApplyCtrl1QBatch(ctrl[:], q[2], 0, 1, 1, 0, laneLo, laneHi)
	default:
		b.applyGenericBatch(op, laneLo, laneHi)
	}
}

// applyGenericBatch mirrors State.applyGeneric for the batched dispatch.
func (b *BatchState) applyGenericBatch(op circuit.Op, laneLo, laneHi int) {
	k := op.Kind
	nc := k.Controls()
	switch {
	case k.Arity() == 1:
		m := gate.Base(k, op.Theta)
		b.Apply1QBatch(op.Qubits[0], m.At(0, 0), m.At(0, 1), m.At(1, 0), m.At(1, 1), laneLo, laneHi)
	case nc >= 1 && k.Arity() == nc+1:
		m := gate.Base(k, op.Theta)
		ctrls := make([]int, nc)
		copy(ctrls, op.Qubits[:nc])
		b.ApplyCtrl1QBatch(ctrls, op.Qubits[nc], m.At(0, 0), m.At(0, 1), m.At(1, 0), m.At(1, 1), laneLo, laneHi)
	default:
		panic(fmt.Sprintf("sim: no kernel for %s", k))
	}
}

// RegisterProbsIntoLanes computes the marginal distribution of the
// given qubits for lanes [0, lanes) in a single pass over the batch,
// writing lane l's distribution into out[l*2^w : (l+1)*2^w]. Per lane
// the accumulation order is identical to RegisterProbsIntoLane (and so
// to State.RegisterProbsInto on the extracted lane), so the results are
// bit-identical; the single pass just shares the per-amplitude index
// computation across lanes and streams the buffer once.
func (b *BatchState) RegisterProbsIntoLanes(out []float64, qubits []int, lanes int) {
	w := len(qubits)
	m := 1 << uint(w)
	if lanes < 0 || lanes > b.k {
		panic("sim: RegisterProbsIntoLanes lane count out of range")
	}
	if len(out) != lanes*m {
		panic("sim: RegisterProbsIntoLanes output buffer size mismatch")
	}
	for i := range out {
		out[i] = 0
	}
	k := b.k
	dim := b.Dim()
	contig := true
	for i, q := range qubits {
		if q != qubits[0]+i {
			contig = false
			break
		}
	}
	if contig {
		lo := uint(qubits[0])
		mask := m - 1
		for idx := 0; idx < dim; idx++ {
			v := (idx >> lo) & mask
			row := b.amps[idx*k : idx*k+lanes]
			for l, a := range row {
				out[l*m+v] += real(a)*real(a) + imag(a)*imag(a)
			}
		}
		return
	}
	var shiftBuf [MaxQubits]uint
	shifts := shiftBuf[:w]
	for i, q := range qubits {
		shifts[i] = uint(q)
	}
	for idx := 0; idx < dim; idx++ {
		v := 0
		for i, sh := range shifts {
			v |= ((idx >> sh) & 1) << uint(i)
		}
		row := b.amps[idx*k : idx*k+lanes]
		for l, a := range row {
			p := real(a)*real(a) + imag(a)*imag(a)
			if p == 0 {
				continue
			}
			out[l*m+v] += p
		}
	}
}

// RegisterProbsIntoLane writes the marginal distribution of the given
// qubits for one lane into out, accumulating over amplitudes in exactly
// the order State.RegisterProbsInto does, so a lane's marginal is
// bit-for-bit the marginal of the extracted lane.
func (b *BatchState) RegisterProbsIntoLane(out []float64, qubits []int, lane int) {
	w := len(qubits)
	if len(out) != 1<<uint(w) {
		panic("sim: RegisterProbsIntoLane output buffer size mismatch")
	}
	for i := range out {
		out[i] = 0
	}
	k := b.k
	dim := b.Dim()
	contig := true
	for i, q := range qubits {
		if q != qubits[0]+i {
			contig = false
			break
		}
	}
	if contig {
		lo := uint(qubits[0])
		mask := (1 << uint(w)) - 1
		for idx := 0; idx < dim; idx++ {
			a := b.amps[idx*k+lane]
			p := real(a)*real(a) + imag(a)*imag(a)
			out[(idx>>lo)&mask] += p
		}
		return
	}
	var shiftBuf [MaxQubits]uint
	shifts := shiftBuf[:w]
	for i, q := range qubits {
		shifts[i] = uint(q)
	}
	for idx := 0; idx < dim; idx++ {
		a := b.amps[idx*k+lane]
		p := real(a)*real(a) + imag(a)*imag(a)
		if p == 0 {
			continue
		}
		v := 0
		for i, sh := range shifts {
			v |= ((idx >> sh) & 1) << uint(i)
		}
		out[v] += p
	}
}
