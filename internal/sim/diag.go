package sim

import (
	"math/bits"

	"qfarith/internal/circuit"
)

// ApplyDiagTerms applies a fused run of diagonal gates in a single pass
// over the amplitudes. Within any single amplitude the matching terms
// are multiplied in term order, which is the original op order, so the
// floating-point multiply sequence each amplitude sees is identical to
// applying the run gate by gate through the specialised diagonal
// kernels — the fused result is bit-exact with op-by-op execution, it
// just touches memory once per run instead of once per gate.
func (s *State) ApplyDiagTerms(terms []circuit.DiagTerm) {
	if len(terms) == 0 {
		return
	}
	if s.workers > 1 && len(s.amps) >= parallelThreshold {
		s.parallelGroups(len(s.amps), func(lo, hi int) {
			active := make([]circuit.DiagTerm, 0, len(terms))
			applyDiagChunk(s.amps[lo:hi], uint64(lo), terms, active)
		})
		return
	}
	if cap(s.diagActive) < len(terms) {
		s.diagActive = make([]circuit.DiagTerm, 0, len(terms))
	}
	applyDiagChunk(s.amps, 0, terms, s.diagActive[:0])
}

// diagBlockBits sets the aligned block size (2^bits amplitudes) the
// kernel works in: within a block only the low diagBlockBits index bits
// vary, so term selection against the higher bits hoists out of the
// inner loops, and a block (4 KiB) stays L1-resident while every term
// of the run is applied to it.
const diagBlockBits = 8

// applyDiagChunk applies terms to the amplitude chunk starting at global
// basis index base. Chunks are disjoint, so the parallel form splits the
// state without changing any per-amplitude arithmetic. active is
// caller-owned scratch with capacity ≥ len(terms).
//
// The chunk walks 2^diagBlockBits-aligned blocks of the global index
// space. Per block the active term list is rebuilt with the high index
// bits already matched and Sel/Val masked down to in-block bits: blocks
// matching no terms are skipped without touching their amplitudes, and
// each active term then visits exactly its matching amplitudes by
// enumerating the sub-lattice {x : x & Sel == Val} — no per-amplitude
// branches at all, the same multiply count as the strided per-gate
// kernels, but one block-sized memory footprint for the whole run.
// Amplitudes are independent, so applying term i to its whole in-block
// subspace before term i+1 preserves the per-amplitude op order that
// bit-exactness requires.
func applyDiagChunk(amps []complex128, base uint64, terms []circuit.DiagTerm, active []circuit.DiagTerm) {
	const lowMask = 1<<diagBlockBits - 1
	for blo := 0; blo < len(amps); {
		idx0 := base + uint64(blo)
		bhi := blo + int(lowMask+1-idx0&lowMask) // end of the aligned block
		if bhi > len(amps) {
			bhi = len(amps)
		}
		high := idx0 &^ lowMask
		active = active[:0]
		for _, t := range terms {
			if high&t.Sel&^lowMask == t.Val&^lowMask {
				active = append(active, circuit.DiagTerm{
					Sel: t.Sel & lowMask, Val: t.Val & lowMask, Phase: t.Phase,
				})
			}
		}
		switch {
		case len(active) == 0:
		case bhi-blo == lowMask+1:
			block := amps[blo:bhi:bhi]
			for _, t := range active {
				// Enumerate x with x & Sel == Val: adding 1 with the Sel
				// bits forced on ripples the carry straight through them,
				// stepping the free bits in ascending order.
				cnt := 1 << bits.OnesCount64(lowMask&^t.Sel)
				x := t.Val
				for j := 0; j < cnt; j++ {
					block[x&lowMask] *= t.Phase
					x = ((x|t.Sel)+1)&^t.Sel | t.Val
				}
			}
		default:
			// Partial block (sub-block states or unaligned parallel chunk
			// edges): per-amplitude conditional fallback, same arithmetic.
			for i := blo; i < bhi; i++ {
				li := (base + uint64(i)) & lowMask
				a := amps[i]
				for _, t := range active {
					if li&t.Sel == t.Val {
						a *= t.Phase
					}
				}
				amps[i] = a
			}
		}
		blo = bhi
	}
}
