//go:build amd64

#include "textflag.h"

// AVX2 kernels for the amplitude-major BatchState layout. Every complex
// multiply below performs exactly the IEEE-754 operations of the scalar
// Go expression it replaces, in the same order:
//
//   a *= (cr, ci)  =>  re' = ar*cr - ai*ci, im' = ai*cr + ar*ci
//
// computed as t1 = (ar*cr, ai*cr) [VMULPD by broadcast cr], t2 =
// (ai*ci, ar*ci) [swap re/im within each complex via VPERMILPD, VMULPD
// by broadcast ci], result = VADDSUBPD(t1, t2) = (t1.even - t2.even,
// t1.odd + t2.odd). The two products per component are the same values
// the scalar code multiplies (IEEE multiply and add are commutative in
// the bitwise sense for finite inputs), and VADDSUBPD's even-subtract /
// odd-add matches the scalar subtract-for-re / add-for-im. No FMA is
// used anywhere, matching gc's scalar code generation on amd64.

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func avx2CMulRows(ptr *complex128, rows, rowLen, stride int, cr, ci float64)
TEXT ·avx2CMulRows(SB), NOSPLIT, $0-48
	MOVQ ptr+0(FP), DI
	MOVQ rows+8(FP), CX
	MOVQ rowLen+16(FP), DX
	MOVQ stride+24(FP), SI
	SHLQ $4, SI                  // stride in bytes (16 B per complex128)
	VBROADCASTSD cr+32(FP), Y14
	VBROADCASTSD ci+40(FP), Y15

cmulRow:
	MOVQ DI, R10
	MOVQ DX, R11

cmulPairs:
	CMPQ R11, $2
	JLT  cmulTail
	VMOVUPD (R10), Y0
	VMULPD Y0, Y14, Y1           // (ar*cr, ai*cr)
	VPERMILPD $5, Y0, Y2         // swap re/im per complex
	VMULPD Y2, Y15, Y2           // (ai*ci, ar*ci)
	VADDSUBPD Y2, Y1, Y1         // (re-, im+)
	VMOVUPD Y1, (R10)
	ADDQ $32, R10
	SUBQ $2, R11
	JMP  cmulPairs

cmulTail:
	TESTQ R11, R11
	JEQ  cmulRowDone
	VMOVUPD (R10), X0
	VMULPD X0, X14, X1
	VPERMILPD $1, X0, X2
	VMULPD X2, X15, X2
	VADDSUBPD X2, X1, X1
	VMOVUPD X1, (R10)

cmulRowDone:
	ADDQ SI, DI
	DECQ CX
	JNZ  cmulRow
	VZEROUPPER
	RET

// func avx2DiagBlockTerm(base *complex128, stride, lanes, cnt int, sel, val uint64, cr, ci float64)
TEXT ·avx2DiagBlockTerm(SB), NOSPLIT, $0-64
	MOVQ base+0(FP), DI
	MOVQ stride+8(FP), SI
	SHLQ $4, SI                  // row stride in bytes
	MOVQ lanes+16(FP), DX
	MOVQ cnt+24(FP), CX
	MOVQ sel+32(FP), R8
	MOVQ val+40(FP), R9
	VBROADCASTSD cr+48(FP), Y14
	VBROADCASTSD ci+56(FP), Y15
	MOVQ R9, BX                  // x = val
	MOVQ R8, R13
	NOTQ R13                     // ^sel

diagPoint:
	MOVQ BX, AX
	IMULQ SI, AX
	LEAQ (DI)(AX*1), R10         // row = base + x*stride
	MOVQ DX, R11

diagPairs:
	CMPQ R11, $2
	JLT  diagTail
	VMOVUPD (R10), Y0
	VMULPD Y0, Y14, Y1
	VPERMILPD $5, Y0, Y2
	VMULPD Y2, Y15, Y2
	VADDSUBPD Y2, Y1, Y1
	VMOVUPD Y1, (R10)
	ADDQ $32, R10
	SUBQ $2, R11
	JMP  diagPairs

diagTail:
	TESTQ R11, R11
	JEQ  diagNext
	VMOVUPD (R10), X0
	VMULPD X0, X14, X1
	VPERMILPD $1, X0, X2
	VMULPD X2, X15, X2
	VADDSUBPD X2, X1, X1
	VMOVUPD X1, (R10)

diagNext:
	// x = ((x | sel) + 1) &^ sel | val
	ORQ  R8, BX
	ADDQ $1, BX
	ANDQ R13, BX
	ORQ  R9, BX
	DECQ CX
	JNZ  diagPoint
	VZEROUPPER
	RET

// func avx2Combine2x2(a, b *complex128, rows, rowLen, stride int, m *[4]complex128)
TEXT ·avx2Combine2x2(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ rows+16(FP), CX
	MOVQ rowLen+24(FP), DX
	MOVQ stride+32(FP), R9
	SHLQ $4, R9
	MOVQ m+40(FP), AX
	VBROADCASTSD (AX), Y8        // re m00
	VBROADCASTSD 8(AX), Y9       // im m00
	VBROADCASTSD 16(AX), Y10     // re m01
	VBROADCASTSD 24(AX), Y11     // im m01
	VBROADCASTSD 32(AX), Y12     // re m10
	VBROADCASTSD 40(AX), Y13     // im m10
	VBROADCASTSD 48(AX), Y14     // re m11
	VBROADCASTSD 56(AX), Y15     // im m11

c2Row:
	MOVQ DI, R10
	MOVQ SI, R11
	MOVQ DX, R12

c2Pairs:
	CMPQ R12, $2
	JLT  c2Tail
	VMOVUPD (R10), Y0            // a
	VMOVUPD (R11), Y1            // b
	VPERMILPD $5, Y0, Y2         // swap(a)
	VPERMILPD $5, Y1, Y3         // swap(b)
	// a' = m00*a + m01*b
	VMULPD Y0, Y8, Y4
	VMULPD Y2, Y9, Y5
	VADDSUBPD Y5, Y4, Y4
	VMULPD Y1, Y10, Y5
	VMULPD Y3, Y11, Y6
	VADDSUBPD Y6, Y5, Y5
	VADDPD Y5, Y4, Y4
	// b' = m10*a + m11*b
	VMULPD Y0, Y12, Y6
	VMULPD Y2, Y13, Y7
	VADDSUBPD Y7, Y6, Y6
	VMULPD Y1, Y14, Y7
	VMULPD Y3, Y15, Y0
	VADDSUBPD Y0, Y7, Y7
	VADDPD Y7, Y6, Y6
	VMOVUPD Y4, (R10)
	VMOVUPD Y6, (R11)
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $2, R12
	JMP  c2Pairs

c2Tail:
	TESTQ R12, R12
	JEQ  c2RowDone
	VMOVUPD (R10), X0
	VMOVUPD (R11), X1
	VPERMILPD $1, X0, X2
	VPERMILPD $1, X1, X3
	VMULPD X0, X8, X4
	VMULPD X2, X9, X5
	VADDSUBPD X5, X4, X4
	VMULPD X1, X10, X5
	VMULPD X3, X11, X6
	VADDSUBPD X6, X5, X5
	VADDPD X5, X4, X4
	VMULPD X0, X12, X6
	VMULPD X2, X13, X7
	VADDSUBPD X7, X6, X6
	VMULPD X1, X14, X7
	VMULPD X3, X15, X0
	VADDSUBPD X0, X7, X7
	VADDPD X7, X6, X6
	VMOVUPD X4, (R10)
	VMOVUPD X6, (R11)

c2RowDone:
	ADDQ R9, DI
	ADDQ R9, SI
	DECQ CX
	JNZ  c2Row
	VZEROUPPER
	RET

// func avx2HSpans(a, b *complex128, rows, rowLen, stride int, inv float64)
TEXT ·avx2HSpans(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ rows+16(FP), CX
	MOVQ rowLen+24(FP), DX
	MOVQ stride+32(FP), R9
	SHLQ $4, R9
	VBROADCASTSD inv+40(FP), Y14
	VXORPD Y15, Y15, Y15         // 0.0 — keeps the scalar 0*x sign terms

hRow:
	MOVQ DI, R10
	MOVQ SI, R11
	MOVQ DX, R12

hPairs:
	CMPQ R12, $2
	JLT  hTail
	VMOVUPD (R10), Y0            // a0
	VMOVUPD (R11), Y1            // a1
	VADDPD Y1, Y0, Y2            // s = a0 + a1
	VSUBPD Y1, Y0, Y3            // d = a0 - a1
	VMULPD Y2, Y14, Y4           // (sr*inv, si*inv)
	VPERMILPD $5, Y2, Y5
	VMULPD Y5, Y15, Y5           // (si*0, sr*0)
	VADDSUBPD Y5, Y4, Y4         // complex(inv,0)*s
	VMULPD Y3, Y14, Y6
	VPERMILPD $5, Y3, Y7
	VMULPD Y7, Y15, Y7
	VADDSUBPD Y7, Y6, Y6         // complex(inv,0)*d
	VMOVUPD Y4, (R10)
	VMOVUPD Y6, (R11)
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $2, R12
	JMP  hPairs

hTail:
	TESTQ R12, R12
	JEQ  hRowDone
	VMOVUPD (R10), X0
	VMOVUPD (R11), X1
	VADDPD X1, X0, X2
	VSUBPD X1, X0, X3
	VMULPD X2, X14, X4
	VPERMILPD $1, X2, X5
	VMULPD X5, X15, X5
	VADDSUBPD X5, X4, X4
	VMULPD X3, X14, X6
	VPERMILPD $1, X3, X7
	VMULPD X7, X15, X7
	VADDSUBPD X7, X6, X6
	VMOVUPD X4, (R10)
	VMOVUPD X6, (R11)

hRowDone:
	ADDQ R9, DI
	ADDQ R9, SI
	DECQ CX
	JNZ  hRow
	VZEROUPPER
	RET
