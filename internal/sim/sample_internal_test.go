package sim

import (
	"math"
	"math/rand/v2"
	"testing"
)

// adversarialUniforms returns the u values most likely to expose a bin
// disagreement between resolution strategies: 0, every CDF value and
// its float neighbours, and the largest float below 1.
func adversarialUniforms(cdf []float64) []float64 {
	us := []float64{0, math.Nextafter(0, 1), 0.5, math.Nextafter(1, 0)}
	for _, c := range cdf {
		if c < 1 { // Float64 never draws 1
			us = append(us, c)
		}
		if lo := math.Nextafter(c, 0); lo >= 0 {
			us = append(us, lo)
		}
		if hi := math.Nextafter(c, 2); hi < 1 {
			us = append(us, hi)
		}
	}
	return us
}

// testDistributions is the shared gallery of adversarial probability
// vectors: zero bins in every position, point masses, denormal-adjacent
// weights, unnormalized input.
func testDistributions() [][]float64 {
	return [][]float64{
		{1},
		{0.5, 0.5},
		{0.1, 0.4, 0.0, 0.3, 0.2},
		{0, 0, 1, 0},
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0.5, 0, 0, 0.5, 0},
		{0, 0.25, 0, 0.25, 0, 0.5},
		{0, 0, 0},                       // degenerate: no probability mass at all
		{1e-320, 1, 1e-320},             // denormal-adjacent weights
		{5e-324, 5e-324, 1},             // smallest positive denormals
		{0.2002, 0.2002, 0.2, 0.2, 0.2}, // drifted normalization
		{-1e-17, 0.5, 0.5},              // kernel noise clamped to zero
	}
}

// TestGuideBinMatchesSearchBin pins the core bit-exactness claim at the
// single-uniform level: for adversarial distributions and the u values
// sitting exactly on (and one ulp around) every CDF step, the guide
// table resolves the identical bin as the binary-search reference.
func TestGuideBinMatchesSearchBin(t *testing.T) {
	sc := new(SampleScratch)
	for _, probs := range testDistributions() {
		sc.prepare(probs)
		for _, u := range adversarialUniforms(sc.cdf) {
			want := searchBin(sc.cdf, u)
			if got := sc.bin(u); got != want {
				t.Errorf("probs=%v u=%v (bits %#x): guide bin %d, search bin %d",
					probs, u, math.Float64bits(u), got, want)
			}
		}
	}
}

// TestGuideBinMatchesSearchBinRandom hammers the same equality with
// random CDFs and random uniforms.
func TestGuideBinMatchesSearchBinRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 43))
	sc := new(SampleScratch)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(300)
		probs := make([]float64, n)
		for i := range probs {
			if rng.Float64() < 0.3 {
				continue // zero bin
			}
			probs[i] = rng.Float64()
		}
		sc.prepare(probs)
		for draw := 0; draw < 200; draw++ {
			u := rng.Float64()
			if want, got := searchBin(sc.cdf, u), sc.bin(u); got != want {
				t.Fatalf("trial %d: u=%v guide bin %d, search bin %d (probs=%v)",
					trial, u, got, want, probs)
			}
		}
		for _, u := range adversarialUniforms(sc.cdf) {
			if want, got := searchBin(sc.cdf, u), sc.bin(u); got != want {
				t.Fatalf("trial %d: adversarial u=%v guide bin %d, search bin %d",
					trial, u, got, want)
			}
		}
	}
}

// TestGuideTableInvariants checks the table construction directly:
// every entry points at the first bin whose CDF reaches the cell's
// threshold, and thresholds are exact for the power-of-two table size.
func TestGuideTableInvariants(t *testing.T) {
	sc := new(SampleScratch)
	for _, probs := range testDistributions() {
		sc.prepare(probs)
		g := len(sc.guide)
		if g&(g-1) != 0 {
			t.Fatalf("guide length %d is not a power of two", g)
		}
		for j, k32 := range sc.guide {
			thresh := float64(j) / float64(g)
			k := int(k32)
			if sc.cdf[k] < thresh {
				t.Fatalf("probs=%v guide[%d]=%d undershoots: cdf=%v < %v", probs, j, k, sc.cdf[k], thresh)
			}
			if k > 0 && sc.cdf[k-1] >= thresh {
				t.Fatalf("probs=%v guide[%d]=%d overshoots: cdf[%d]=%v >= %v", probs, j, k, k-1, sc.cdf[k-1], thresh)
			}
		}
	}
}

// TestOneBinSkipsLeadingZeroBins is the Sampler.One regression test: a
// uniform of exactly 0 must not resolve to a zero-probability leading
// bin (the one case where the first index of a shared-CDF-value run has
// zero width).
func TestOneBinSkipsLeadingZeroBins(t *testing.T) {
	cases := []struct {
		probs []float64
		u     float64
		want  int
	}{
		{[]float64{0, 0, 0.5, 0.5}, 0, 2},
		{[]float64{0, 1}, 0, 1},
		{[]float64{0, 0, 1}, 0, 2},
		{[]float64{0.5, 0, 0.5}, 0, 0},       // leading bin has mass: no skip
		{[]float64{0, 0.5, 0, 0.5}, 0.5, 1},  // shared mid-CDF value: first bin of the run has mass
		{[]float64{0, 0.5, 0, 0.5}, 0.75, 3}, // plain interior draw
	}
	for _, c := range cases {
		cdf := CDF(c.probs)
		if got := oneBin(cdf, c.u); got != c.want {
			t.Errorf("oneBin(CDF(%v), %v) = %d, want %d", c.probs, c.u, got, c.want)
		}
	}
}

// TestSearchBinUnchangedFromLegacy re-derives the legacy Counts bin
// (inline SearchFloat64s + clamp + duplicate-value loop) and checks
// searchBin against it, so refactors cannot drift the reference
// semantics the CSV byte-identity contract is anchored to.
func TestSearchBinUnchangedFromLegacy(t *testing.T) {
	legacy := func(cdf []float64, u float64) int {
		k := 0
		for k < len(cdf) && cdf[k] < u {
			k++
		}
		if k >= len(cdf) {
			k = len(cdf) - 1
		}
		for k < len(cdf)-1 && cdf[k] < u {
			k++
		}
		return k
	}
	sc := new(SampleScratch)
	rng := rand.New(rand.NewPCG(7, 9))
	for _, probs := range testDistributions() {
		sc.prepare(probs)
		for _, u := range adversarialUniforms(sc.cdf) {
			if got, want := searchBin(sc.cdf, u), legacy(sc.cdf, u); got != want {
				t.Errorf("probs=%v u=%v: searchBin %d, legacy linear scan %d", probs, u, got, want)
			}
		}
		for i := 0; i < 100; i++ {
			u := rng.Float64()
			if got, want := searchBin(sc.cdf, u), legacy(sc.cdf, u); got != want {
				t.Errorf("probs=%v u=%v: searchBin %d, legacy linear scan %d", probs, u, got, want)
			}
		}
	}
}
