package sim

import (
	"math/rand/v2"
	"sort"
)

// Sampler draws measurement shots from probability distributions. It
// wraps a deterministic PCG source so experiments are reproducible from
// a seed.
type Sampler struct {
	rng *rand.Rand
}

// NewSampler returns a Sampler seeded with the two-word PCG seed.
func NewSampler(seed1, seed2 uint64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewPCG(seed1, seed2))}
}

// Rand exposes the underlying RNG (used by the noise trajectory sampler).
func (s *Sampler) Rand() *rand.Rand { return s.rng }

// CDF converts a probability vector into a cumulative distribution,
// normalizing away accumulated floating-point drift.
func CDF(probs []float64) []float64 {
	cdf := make([]float64, len(probs))
	var acc float64
	for i, p := range probs {
		if p < 0 {
			p = 0 // numerical noise from kernel arithmetic
		}
		acc += p
		cdf[i] = acc
	}
	if acc > 0 {
		inv := 1 / acc
		for i := range cdf {
			cdf[i] *= inv
		}
	}
	cdf[len(cdf)-1] = 1
	return cdf
}

// Counts draws `shots` samples from the distribution described by probs
// and returns a histogram of outcomes. Sampling is by inverse-CDF binary
// search, so the cost is O(shots * log len(probs)).
func (s *Sampler) Counts(probs []float64, shots int) []int {
	cdf := CDF(probs)
	out := make([]int, len(probs))
	for i := 0; i < shots; i++ {
		u := s.rng.Float64()
		k := sort.SearchFloat64s(cdf, u)
		if k >= len(out) {
			k = len(out) - 1
		}
		// SearchFloat64s finds the first cdf >= u only when cdf values are
		// distinct; skip over zero-probability bins that share a value.
		for k < len(out)-1 && cdf[k] < u {
			k++
		}
		out[k]++
	}
	return out
}

// One draws a single sample from probs.
func (s *Sampler) One(probs []float64) int {
	cdf := CDF(probs)
	u := s.rng.Float64()
	k := sort.SearchFloat64s(cdf, u)
	if k >= len(probs) {
		k = len(probs) - 1
	}
	return k
}

// MixInto accumulates weight*src into dst (both probability vectors).
func MixInto(dst []float64, src []float64, weight float64) {
	for i := range dst {
		dst[i] += weight * src[i]
	}
}
