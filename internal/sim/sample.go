package sim

import (
	"math/rand/v2"
	"slices"
	"sort"
	"sync"
)

// Sampler draws measurement shots from probability distributions. It
// wraps a deterministic PCG source so experiments are reproducible from
// a seed.
type Sampler struct {
	rng *rand.Rand
	pcg *rand.PCG
}

// NewSampler returns a Sampler seeded with the two-word PCG seed.
func NewSampler(seed1, seed2 uint64) *Sampler {
	pcg := rand.NewPCG(seed1, seed2)
	return &Sampler{rng: rand.New(pcg), pcg: pcg}
}

// Reseed resets the sampler's PCG state to the two-word seed. The
// subsequent draw stream is bit-identical to a fresh
// NewSampler(seed1, seed2), so pooled samplers can be recycled across
// instances without perturbing any fixed-seed contract.
func (s *Sampler) Reseed(seed1, seed2 uint64) {
	s.pcg.Seed(seed1, seed2)
}

// Rand exposes the underlying RNG (used by the noise trajectory sampler).
func (s *Sampler) Rand() *rand.Rand { return s.rng }

// CDF converts a probability vector into a cumulative distribution,
// normalizing away accumulated floating-point drift. It allocates a
// fresh slice per call; hot paths should use CDFInto with a pooled
// buffer.
func CDF(probs []float64) []float64 {
	return CDFInto(make([]float64, len(probs)), probs)
}

// CDFInto is CDF writing into dst, growing it only when its capacity is
// insufficient, and returns the (possibly re-allocated) slice. dst and
// probs may not alias unless identical. The result is bit-identical to
// CDF for every input.
func CDFInto(dst, probs []float64) []float64 {
	if cap(dst) < len(probs) {
		dst = make([]float64, len(probs))
	}
	dst = dst[:len(probs)]
	var acc float64
	for i, p := range probs {
		if p < 0 {
			p = 0 // numerical noise from kernel arithmetic
		}
		acc += p
		dst[i] = acc
	}
	if acc > 0 {
		inv := 1 / acc
		for i := range dst {
			dst[i] *= inv
		}
	}
	dst[len(dst)-1] = 1
	return dst
}

// searchBin resolves one uniform against a CDF exactly as the original
// inverse-CDF sampler did: the first index k with cdf[k] >= u
// (sort.SearchFloat64s), clamped into range, then the defensive
// duplicate-value skip loop. Every other resolution strategy in this
// file must return this bin for every u in [0, 1) — that is the
// bit-exactness contract the fixed-seed CSV diffs pin.
func searchBin(cdf []float64, u float64) int {
	k := sort.SearchFloat64s(cdf, u)
	if k >= len(cdf) {
		k = len(cdf) - 1
	}
	// SearchFloat64s already guarantees cdf[k] >= u when in range; the
	// loop is kept as the historical guard for a non-monotone cdf.
	for k < len(cdf)-1 && cdf[k] < u {
		k++
	}
	return k
}

// Counts draws `shots` samples from the distribution described by probs
// and returns a histogram of outcomes. Sampling is by inverse-CDF binary
// search, so the cost is O(shots * log len(probs)) plus a CDF allocation
// per call. It is retained verbatim as the reference implementation the
// constant-time CountsInto path is CI-diffed against; sweeps select it
// with the legacy sampler toggle.
func (s *Sampler) Counts(probs []float64, shots int) []int {
	cdf := CDF(probs)
	out := make([]int, len(probs))
	for i := 0; i < shots; i++ {
		out[searchBin(cdf, s.rng.Float64())]++
	}
	return out
}

// One draws a single sample from probs. Unlike histogram sampling —
// where a u landing on the shared CDF value of a zero-probability run
// resolves to the run's first bin, which always has positive width —
// a draw of exactly 0 against leading zero-probability bins would
// return bin 0 with cdf[0] == 0; oneBin skips past those so One never
// reports an outcome of probability zero.
func (s *Sampler) One(probs []float64) int {
	return oneBin(CDF(probs), s.rng.Float64())
}

// oneBin is searchBin plus the zero-width fixup for One: a bin with
// cdf[k] == 0 has zero cumulative probability (only reachable when
// u == 0 lands in a run of leading zero-probability bins), so skip
// forward to the first bin of positive cumulative weight.
func oneBin(cdf []float64, u float64) int {
	k := searchBin(cdf, u)
	for k < len(cdf)-1 && cdf[k] == 0 {
		k++
	}
	return k
}

// SampleScratch holds the reusable buffers of the constant-time
// sampling stage: the in-place CDF, its guide table, and the uniform
// buffer of the merge variant. Obtain one from GetSampleScratch and
// return it with PutSampleScratch; a warm scratch makes CountsInto and
// CountsMergeInto allocation-free.
type SampleScratch struct {
	cdf      []float64
	guide    []int32
	uniforms []float64
}

var sampleScratchPool = sync.Pool{New: func() any { return new(SampleScratch) }}

// GetSampleScratch returns a sampling scratch from the pool. Buffer
// contents are undefined until prepare/CountsInto fills them.
func GetSampleScratch() *SampleScratch {
	return sampleScratchPool.Get().(*SampleScratch)
}

// PutSampleScratch returns a scratch obtained from GetSampleScratch to
// the pool. The scratch must not be used after.
func PutSampleScratch(sc *SampleScratch) {
	if sc != nil {
		sampleScratchPool.Put(sc)
	}
}

// guideLen picks the guide-table size for an m-bin CDF: the power of
// two at least 2m (so the expected scan per lookup is under half a CDF
// entry), floored at 64 and capped at 2^20 entries (4 MiB of int32;
// beyond that the table would blow the cache it exists to exploit —
// lookups stay correct, just with longer expected scans).
func guideLen(m int) int {
	g := 64
	for g < 2*m && g < 1<<20 {
		g <<= 1
	}
	return g
}

// prepare builds the CDF of probs and its guide table into the scratch.
// guide[j] is the first bin k with cdf[k] >= j/G. G is a power of two,
// so for any u in [0,1) both j = floor(u*G) and the threshold j/G are
// computed exactly (scaling a float64 by a power of two and dividing a
// small integer by one are exact): j/G <= u, hence guide[j] can never
// overshoot the target bin and the forward scan in bin() terminates on
// exactly the searchBin result.
func (sc *SampleScratch) prepare(probs []float64) {
	sc.cdf = CDFInto(sc.cdf, probs)
	g := guideLen(len(probs))
	if cap(sc.guide) < g {
		sc.guide = make([]int32, g)
	}
	sc.guide = sc.guide[:g]
	inv := 1 / float64(g)
	k := 0
	for j := range sc.guide {
		t := float64(j) * inv
		for sc.cdf[k] < t {
			k++
		}
		sc.guide[j] = int32(k)
	}
}

// bin resolves one uniform through the guide table in O(1) expected
// time; the result equals searchBin(cdf, u) for every u in [0, 1).
func (sc *SampleScratch) bin(u float64) int {
	k := int(sc.guide[int(u*float64(len(sc.guide)))])
	for sc.cdf[k] < u {
		k++
	}
	return k
}

// CountsInto draws `shots` samples from probs and accumulates the
// histogram into out (len(out) must equal len(probs); it is zeroed
// first). The uniforms are drawn in exactly the same RNG order as
// Counts, and each resolves through the scratch's guide table to the
// identical bin as Counts' binary search, so the resulting histogram is
// bit-identical to Counts for equal sampler state — in O(len(probs) +
// shots) instead of O(shots * log len(probs)), with zero allocations
// once the scratch is warm.
func (s *Sampler) CountsInto(sc *SampleScratch, probs []float64, shots int, out []int) {
	if len(out) != len(probs) {
		panic("sim: CountsInto histogram length mismatch")
	}
	sc.prepare(probs)
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < shots; i++ {
		out[sc.bin(s.rng.Float64())]++
	}
}

// CountsMergeInto is the sorted-uniform merge variant of CountsInto:
// all `shots` uniforms are drawn upfront (same RNG order as Counts),
// sorted, and merged against the CDF with a single forward pointer —
// O(len(probs) + shots) after the O(shots log shots) float sort. Each
// uniform resolves to the identical bin as Counts' binary search, and a
// histogram is order-insensitive, so the result is bit-identical to
// Counts for equal sampler state. CountsInto (guide table) is the
// production path; the merge is kept as an independently-verified
// second implementation and for geometries whose CDF is too wide for a
// useful guide table.
func (s *Sampler) CountsMergeInto(sc *SampleScratch, probs []float64, shots int, out []int) {
	if len(out) != len(probs) {
		panic("sim: CountsMergeInto histogram length mismatch")
	}
	sc.cdf = CDFInto(sc.cdf, probs)
	if cap(sc.uniforms) < shots {
		sc.uniforms = make([]float64, shots)
	}
	sc.uniforms = sc.uniforms[:shots]
	for i := range sc.uniforms {
		sc.uniforms[i] = s.rng.Float64()
	}
	slices.Sort(sc.uniforms)
	for i := range out {
		out[i] = 0
	}
	k := 0
	for _, u := range sc.uniforms {
		// cdf[len-1] == 1 > u bounds the walk; ascending u means k only
		// ever moves forward, stopping at the first cdf >= u exactly as
		// searchBin does.
		for sc.cdf[k] < u {
			k++
		}
		out[k]++
	}
}

// MixInto accumulates weight*src into dst (both probability vectors).
func MixInto(dst []float64, src []float64, weight float64) {
	for i := range dst {
		dst[i] += weight * src[i]
	}
}
