package sim

// l2BatchBudget is the share of the per-core L2 cache the batched
// trajectory engine aims to keep its SoA working set inside, in bytes.
// The batched kernels are bit-exact at any width, so this is purely a
// performance policy: once the batch spills to L3 the per-segment
// streaming turns memory-bound and the SIMD lanes run idle, which the
// qfa-d3 sweep in results/bench_batched_engine.md shows costs more than
// the batching saves. 1 MiB leaves room in a 2 MiB L2 for the shared
// error-free prefix state plus pooled scratch.
const l2BatchBudget = 1 << 20

// maxBatchLanes caps the automatic batch width. Beyond this the lane
// scatter on seeding outweighs the remaining SIMD gain even when the
// working set fits cache.
const maxBatchLanes = 8

// DefaultBatchLanes returns the automatic batch width for an n-qubit
// batched trajectory run: the widest lane count whose statevectors fit
// the L2 budget, clamped to [1, 8]. A result of 1 means "don't batch" —
// the scalar engine's single L2-resident statevector is faster than a
// spilling batch (measured on the qfa-d3 panel; see
// results/bench_batched_engine.md).
func DefaultBatchLanes(n int) int {
	laneBytes := 16 << uint(n) // complex128 amplitudes
	lanes := l2BatchBudget / laneBytes
	if lanes < 1 {
		return 1
	}
	if lanes > maxBatchLanes {
		return maxBatchLanes
	}
	return lanes
}
