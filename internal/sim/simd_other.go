//go:build !amd64

package sim

// Portable build: no SIMD fast paths; the batched kernels run their
// pure-Go lane loops, which are the bit-exactness reference anyway.

var simdAvailable = false
var batchSIMD = false

func avx2CMulRows(ptr *complex128, rows, rowLen, stride int, cr, ci float64) {
	panic("sim: SIMD kernel called on non-amd64 build")
}

func avx2DiagBlockTerm(base *complex128, stride, lanes, cnt int, sel, val uint64, cr, ci float64) {
	panic("sim: SIMD kernel called on non-amd64 build")
}

func avx2Combine2x2(a, b *complex128, rows, rowLen, stride int, m *[4]complex128) {
	panic("sim: SIMD kernel called on non-amd64 build")
}

func avx2HSpans(a, b *complex128, rows, rowLen, stride int, inv float64) {
	panic("sim: SIMD kernel called on non-amd64 build")
}
