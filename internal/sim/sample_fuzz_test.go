package sim_test

import (
	"encoding/binary"
	"math"
	"testing"

	"qfarith/internal/sim"
)

// FuzzSamplerEquivalence fuzzes the bit-exactness contract: for an
// arbitrary probability vector (decoded from raw bytes, so the fuzzer
// can reach zero bins, denormals, and unnormalized inputs) and an
// arbitrary seed, the guide-table and sorted-merge samplers must
// produce histograms exactly equal to the binary-search reference.
func FuzzSamplerEquivalence(f *testing.F) {
	// Seed corpus: uniform, point mass, zero bins, denormal-adjacent
	// weights, and a drifted-normalization vector.
	enc := func(ps ...float64) []byte {
		b := make([]byte, 8*len(ps))
		for i, p := range ps {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(p))
		}
		return b
	}
	f.Add(enc(0.25, 0.25, 0.25, 0.25), uint64(1), uint64(2), uint16(256))
	f.Add(enc(0, 0, 1, 0), uint64(3), uint64(4), uint16(64))
	f.Add(enc(0.5, 0, 0, 0.5, 0), uint64(5), uint64(6), uint16(2048))
	f.Add(enc(1e-320, 1, 5e-324), uint64(7), uint64(8), uint16(32))
	f.Add(enc(0.2002, 0.2002, 0.2, 0.2, 0.2), uint64(9), uint64(10), uint16(1))
	f.Add(enc(0, 0, 0), uint64(11), uint64(12), uint16(128))

	f.Fuzz(func(t *testing.T, data []byte, seed1, seed2 uint64, rawShots uint16) {
		n := len(data) / 8
		if n == 0 || n > 4096 {
			return
		}
		probs := make([]float64, n)
		for i := range probs {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
				return // CDF's clamp-and-normalize contract assumes finite input
			}
			probs[i] = v
		}
		shots := int(rawShots % 4096)

		want := sim.NewSampler(seed1, seed2).Counts(probs, shots)

		sc := sim.GetSampleScratch()
		defer sim.PutSampleScratch(sc)
		got := make([]int, n)
		sim.NewSampler(seed1, seed2).CountsInto(sc, probs, shots, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("CountsInto[%d] = %d, Counts = %d (probs=%v shots=%d)", i, got[i], want[i], probs, shots)
			}
		}
		sim.NewSampler(seed1, seed2).CountsMergeInto(sc, probs, shots, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("CountsMergeInto[%d] = %d, Counts = %d (probs=%v shots=%d)", i, got[i], want[i], probs, shots)
			}
		}
	})
}
