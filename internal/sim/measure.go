package sim

import (
	"math"
	"math/rand/v2"
)

// MeasureQubit performs a projective Z-basis measurement of qubit q:
// it samples an outcome from the marginal, collapses the state onto the
// corresponding subspace, renormalizes, and returns the outcome bit.
func (s *State) MeasureQubit(q int, rng *rand.Rand) int {
	p1 := s.population(q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	s.projectQubit(q, outcome)
	return outcome
}

// MeasureRegister measures the listed qubits in order (LSB first) and
// returns the composed integer outcome, collapsing the state.
func (s *State) MeasureRegister(qubits []int, rng *rand.Rand) int {
	v := 0
	for i, q := range qubits {
		v |= s.MeasureQubit(q, rng) << uint(i)
	}
	return v
}

// population returns P(qubit q = 1).
func (s *State) population(q int) float64 {
	step := 1 << uint(q)
	var p float64
	for g := step; g < len(s.amps); g += 2 * step {
		for i := g; i < g+step; i++ {
			a := s.amps[i]
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// projectQubit zeroes the discarded branch and renormalizes.
func (s *State) projectQubit(q, outcome int) {
	step := 1 << uint(q)
	// Zero the branch with bit != outcome.
	start := 0
	if outcome == 0 {
		start = step
	}
	for g := start; g < len(s.amps); g += 2 * step {
		for i := g; i < g+step; i++ {
			s.amps[i] = 0
		}
	}
	s.Normalize()
}

// ExpectationZ returns <Z_q> = P(0) - P(1) for qubit q.
func (s *State) ExpectationZ(q int) float64 {
	p1 := s.population(q)
	return 1 - 2*p1
}

// ExpectedValue returns the mean of a register's integer value under the
// current distribution, a convenience for arithmetic assertions.
func (s *State) ExpectedValue(qubits []int) float64 {
	probs := s.RegisterProbs(qubits)
	var mean float64
	for v, p := range probs {
		mean += float64(v) * p
	}
	return mean
}

// ShannonEntropy returns the entropy (bits) of a register's outcome
// distribution — a coarse noise indicator used by diagnostics (pure
// arithmetic outputs have entropy log2(order); noise drives it toward
// the register width).
func (s *State) ShannonEntropy(qubits []int) float64 {
	probs := s.RegisterProbs(qubits)
	var h float64
	for _, p := range probs {
		if p > 1e-15 {
			h -= p * math.Log2(p)
		}
	}
	return h
}
