package sim_test

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/mat"
	"qfarith/internal/sim"
	"qfarith/internal/testutil"
)

// applyViaMatrix applies op to a copy of st by expanding the gate to the
// full 2^n unitary with explicit Kronecker products — the slow reference
// the kernels are validated against.
func applyViaMatrix(st *sim.State, op circuit.Op) []complex128 {
	n := st.NumQubits()
	dim := 1 << uint(n)
	g := gate.Matrix(op.Kind, op.Theta)
	k := op.Kind.Arity()
	qubits := op.Active()
	u := mat.New(dim, dim)
	for col := 0; col < dim; col++ {
		// Build the local input index: gate convention is big-endian, so
		// the first listed qubit is the most significant local bit.
		var loc int
		for i, q := range qubits {
			bit := (col >> uint(q)) & 1
			loc |= bit << uint(k-1-i)
		}
		for locOut := 0; locOut < 1<<uint(k); locOut++ {
			amp := g.At(locOut, loc)
			if amp == 0 {
				continue
			}
			row := col
			for i, q := range qubits {
				bit := (locOut >> uint(k-1-i)) & 1
				row = (row &^ (1 << uint(q))) | bit<<uint(q)
			}
			u.Set(row, col, amp)
		}
	}
	return mat.MulVec(u, st.Amps())
}

func checkOp(t *testing.T, n int, op circuit.Op) {
	t.Helper()
	rng := testutil.NewRand(uint64(17*n) + uint64(op.Kind)<<8)
	st := testutil.RandomState(rng, n)
	want := applyViaMatrix(st, op)
	got := st.Clone()
	got.ApplyOp(op)
	for i := range want {
		if cmplx.Abs(want[i]-got.Amps()[i]) > 1e-9 {
			t.Fatalf("%s on %d qubits: amp %d = %v, want %v", op, n, i, got.Amps()[i], want[i])
		}
	}
}

func TestKernelsMatchMatrixSemantics(t *testing.T) {
	n := 5
	th := 2 * math.Pi / 16
	ops := []circuit.Op{
		circuit.NewOp(gate.I, 0, 2),
		circuit.NewOp(gate.X, 0, 0),
		circuit.NewOp(gate.X, 0, 4),
		circuit.NewOp(gate.Y, 0, 1),
		circuit.NewOp(gate.Z, 0, 3),
		circuit.NewOp(gate.H, 0, 2),
		circuit.NewOp(gate.S, 0, 1),
		circuit.NewOp(gate.Sdg, 0, 1),
		circuit.NewOp(gate.T, 0, 0),
		circuit.NewOp(gate.Tdg, 0, 4),
		circuit.NewOp(gate.SX, 0, 3),
		circuit.NewOp(gate.SXdg, 0, 3),
		circuit.NewOp(gate.RX, th, 2),
		circuit.NewOp(gate.RY, th, 2),
		circuit.NewOp(gate.RZ, th, 2),
		circuit.NewOp(gate.P, th, 0),
		circuit.NewOp(gate.CX, 0, 1, 3),
		circuit.NewOp(gate.CX, 0, 3, 1),
		circuit.NewOp(gate.CZ, 0, 0, 4),
		circuit.NewOp(gate.CP, th, 2, 0),
		circuit.NewOp(gate.CP, th, 0, 2),
		circuit.NewOp(gate.CH, 0, 4, 1),
		circuit.NewOp(gate.CRY, th, 2, 3),
		circuit.NewOp(gate.SWAP, 0, 0, 3),
		circuit.NewOp(gate.CCX, 0, 0, 2, 4),
		circuit.NewOp(gate.CCP, th, 4, 1, 2),
		circuit.NewOp(gate.CCP, th, 0, 1, 2),
		circuit.NewOp(gate.CCH, 0, 1, 3, 0),
	}
	for _, op := range ops {
		checkOp(t, n, op)
	}
}

func TestApplyCircuitPreservesNorm(t *testing.T) {
	rng := testutil.NewRand(7)
	c := circuit.New(6)
	kinds := []gate.Kind{gate.H, gate.CX, gate.CP, gate.X, gate.RZ, gate.CCP, gate.SX, gate.CH}
	for i := 0; i < 200; i++ {
		k := kinds[rng.IntN(len(kinds))]
		ar := k.Arity()
		perm := rng.Perm(6)
		qs := perm[:ar]
		c.Append(k, rng.Float64()*2*math.Pi, qs...)
	}
	st := testutil.RandomState(rng, 6)
	st.ApplyCircuit(c)
	if d := math.Abs(st.Norm() - 1); d > 1e-9 {
		t.Errorf("norm drifted by %g after 200 random gates", d)
	}
}

func TestSetBasisAndProbability(t *testing.T) {
	st := sim.NewState(4)
	st.SetBasis(11)
	for i := 0; i < st.Dim(); i++ {
		want := 0.0
		if i == 11 {
			want = 1.0
		}
		if got := st.Probability(i); math.Abs(got-want) > 1e-15 {
			t.Fatalf("P(%d) = %g, want %g", i, got, want)
		}
	}
}

func TestRegisterProbsContiguousAndScattered(t *testing.T) {
	rng := testutil.NewRand(23)
	st := testutil.RandomState(rng, 6)
	// Contiguous register [2,3,4] vs brute-force.
	reg := []int{2, 3, 4}
	got := st.RegisterProbs(reg)
	want := make([]float64, 8)
	for idx := 0; idx < st.Dim(); idx++ {
		v := (idx >> 2) & 7
		want[v] += st.Probability(idx)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("contiguous RegisterProbs[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Scattered register [5,0,3]: value = q5 + 2*q0 + 4*q3.
	reg = []int{5, 0, 3}
	got = st.RegisterProbs(reg)
	want = make([]float64, 8)
	for idx := 0; idx < st.Dim(); idx++ {
		v := ((idx >> 5) & 1) | ((idx&1)<<1 | ((idx>>3)&1)<<2)
		want[v] += st.Probability(idx)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("scattered RegisterProbs[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestRegisterProbsSumToOne(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := testutil.NewRand(seed)
		st := testutil.RandomState(rng, 5)
		probs := st.RegisterProbs([]int{1, 2, 4})
		var s float64
		for _, p := range probs {
			s += p
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSamplerDeterminismAndTotals(t *testing.T) {
	probs := []float64{0.5, 0.25, 0.125, 0.125}
	a := sim.NewSampler(1, 2).Counts(probs, 4096)
	b := sim.NewSampler(1, 2).Counts(probs, 4096)
	total := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampler not deterministic: %v vs %v", a, b)
		}
		total += a[i]
	}
	if total != 4096 {
		t.Fatalf("counts sum to %d, want 4096", total)
	}
	// Frequencies should approximate the distribution.
	if f := float64(a[0]) / 4096; math.Abs(f-0.5) > 0.05 {
		t.Errorf("outcome 0 frequency %g, want ≈0.5", f)
	}
}

func TestSamplerZeroProbabilityBins(t *testing.T) {
	probs := []float64{0, 0.5, 0, 0.5, 0, 0}
	counts := sim.NewSampler(3, 4).Counts(probs, 2000)
	for i, c := range counts {
		if probs[i] == 0 && c != 0 {
			t.Errorf("outcome %d has zero probability but %d counts", i, c)
		}
	}
	if counts[1]+counts[3] != 2000 {
		t.Errorf("valid outcomes sum to %d, want 2000", counts[1]+counts[3])
	}
}

func TestCDFHandlesUnnormalizedInput(t *testing.T) {
	cdf := sim.CDF([]float64{2, 2, 4})
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-12 {
			t.Fatalf("CDF[%d] = %g, want %g", i, cdf[i], want[i])
		}
	}
}

func TestPauliKernelsSelfInverse(t *testing.T) {
	rng := testutil.NewRand(99)
	st := testutil.RandomState(rng, 4)
	ref := st.Clone()
	for q := 0; q < 4; q++ {
		st.X(q)
		st.X(q)
		st.Y(q)
		st.Y(q)
		st.Z(q)
		st.Z(q)
	}
	for i := range ref.Amps() {
		if cmplx.Abs(st.Amps()[i]-ref.Amps()[i]) > 1e-12 {
			t.Fatalf("Pauli pairs not identity at amp %d", i)
		}
	}
}
