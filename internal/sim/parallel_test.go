package sim_test

import (
	"math"
	"math/cmplx"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/qft"
	"qfarith/internal/sim"
	"qfarith/internal/testutil"
)

// TestParallelKernelsMatchSerial verifies bit-for-bit agreement between
// the serial and goroutine-parallel kernel paths on a state large
// enough to cross the parallel threshold (17 qubits = 2^17 amplitudes).
func TestParallelKernelsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("large-state comparison")
	}
	n := 17
	rng := testutil.NewRand(88)
	serial := testutil.RandomState(rng, n)
	parallel := serial.Clone().SetWorkers(4)

	th := 2 * math.Pi / 32
	apply := func(st *sim.State) {
		st.H(3)
		st.Apply1Q(9, complex(math.Cos(th), 0), complex(0, -math.Sin(th)),
			complex(0, -math.Sin(th)), complex(math.Cos(th), 0))
		st.Phase(14, th)
		st.CX(2, 13)
		st.CX(16, 0)
		st.CPhase(5, 12, th)
		st.CPhase(12, 5, -th)
	}
	apply(serial)
	apply(parallel)
	for i := range serial.Amps() {
		if cmplx.Abs(serial.Amps()[i]-parallel.Amps()[i]) > 1e-12 {
			t.Fatalf("amp %d diverged: %v vs %v", i, serial.Amps()[i], parallel.Amps()[i])
		}
	}
}

func TestParallelWholeCircuitMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("large-state comparison")
	}
	// A full 17-qubit QFT exercises every kernel shape.
	c := qft.New(17, qft.Full)
	rng := testutil.NewRand(89)
	serial := testutil.RandomState(rng, 17)
	parallel := serial.Clone().SetWorkers(3)
	serial.ApplyCircuit(c)
	parallel.ApplyCircuit(c)
	var maxd float64
	for i := range serial.Amps() {
		if d := cmplx.Abs(serial.Amps()[i] - parallel.Amps()[i]); d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-12 {
		t.Errorf("parallel QFT diverged by %g", maxd)
	}
	_ = arith.FullAdd
}

func TestSetWorkersSmallStatesStaySerialAndCorrect(t *testing.T) {
	// Below the threshold the parallel path must not engage; behaviour
	// must be identical either way.
	rng := testutil.NewRand(90)
	a := testutil.RandomState(rng, 6)
	b := a.Clone().SetWorkers(8)
	a.H(2)
	b.H(2)
	a.CX(1, 4)
	b.CX(1, 4)
	for i := range a.Amps() {
		if a.Amps()[i] != b.Amps()[i] {
			t.Fatal("small-state parallel divergence")
		}
	}
	if b.Workers() != 8 {
		t.Errorf("Workers() = %d", b.Workers())
	}
	if sim.NewState(2).Workers() != 1 {
		t.Error("default workers should be 1")
	}
}

func TestSetWorkersZeroSelectsGOMAXPROCS(t *testing.T) {
	st := sim.NewState(2).SetWorkers(0)
	if st.Workers() < 1 {
		t.Errorf("Workers() = %d", st.Workers())
	}
}
