//go:build amd64

package sim

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended state mask.
func xgetbv0() (eax, edx uint32)

// avx2CMulRows multiplies `rows` rows of `rowLen` complex amplitudes,
// `stride` complexes apart, by the constant (cr, ci) — each element
// exactly as the scalar `a *= p` (re = ar*cr - ai*ci, im = ai*cr + ar*ci).
//
//go:noescape
func avx2CMulRows(ptr *complex128, rows, rowLen, stride int, cr, ci float64)

// avx2DiagBlockTerm applies one diagonal term to a full 256-amplitude
// block: it enumerates the term's in-block sub-lattice (x = val; x =
// ((x|sel)+1) &^ sel | val, cnt points) and multiplies each matched
// row of `lanes` complexes by (cr, ci). base points at the first lane
// of block amplitude 0; rows are `stride` complexes apart.
//
//go:noescape
func avx2DiagBlockTerm(base *complex128, stride, lanes, cnt int, sel, val uint64, cr, ci float64)

// avx2Combine2x2 applies the 2x2 unitary m = [m00 m01; m10 m11] to
// `rows` row pairs of `rowLen` complexes: a' = m00*a + m01*b,
// b' = m10*a + m11*b, with the scalar product-then-sum order.
//
//go:noescape
func avx2Combine2x2(a, b *complex128, rows, rowLen, stride int, m *[4]complex128)

// avx2HSpans applies the Hadamard butterfly to `rows` row pairs:
// a' = complex(inv,0)*(a+b), b' = complex(inv,0)*(a-b), preserving the
// scalar kernel's full complex multiply (including the 0*x sign terms).
//
//go:noescape
func avx2HSpans(a, b *complex128, rows, rowLen, stride int, inv float64)

// simdAvailable reports AVX2 plus OS support for YMM state.
var simdAvailable = func() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	return b7&(1<<5) != 0 // AVX2
}()

var batchSIMD = simdAvailable
