// Package sim implements an exact statevector simulator for the circuit
// IR in internal/circuit. It provides specialised kernels for the gates
// that dominate Fourier arithmetic — diagonal phase gates (P/CP/CCP/RZ),
// Hadamard-like controlled 1q gates, and CX — plus a generic dense
// fallback for arbitrary gates, register probability extraction, and
// multinomial shot sampling.
//
// Convention: qubit q corresponds to bit q of the basis-state index, so
// qubit 0 is the least significant bit. This is the opposite of the
// big-endian matrix convention in internal/gate; the kernels account for
// the difference internally.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/mat"
)

// MaxQubits bounds the register size: 2^26 amplitudes = 1 GiB, already
// beyond what the experiments need; the bound exists to catch mistakes.
const MaxQubits = 26

// State is a pure quantum state over n qubits.
type State struct {
	n       int
	amps    []complex128
	workers int // kernel goroutine count; see SetWorkers

	// diagActive is reusable scratch for ApplyDiagTerms' per-block term
	// filtering, kept on the state so hot loops don't allocate.
	diagActive []circuit.DiagTerm
}

// NewState returns the n-qubit all-zeros state |0...0>.
func NewState(n int) *State {
	if n <= 0 || n > MaxQubits {
		panic(fmt.Sprintf("sim: invalid qubit count %d", n))
	}
	s := &State{n: n, amps: make([]complex128, 1<<uint(n))}
	s.amps[0] = 1
	return s
}

// NumQubits returns the number of qubits.
func (s *State) NumQubits() int { return s.n }

// Dim returns the Hilbert-space dimension 2^n.
func (s *State) Dim() int { return len(s.amps) }

// Amps exposes the amplitude slice. Callers must not resize it.
func (s *State) Amps() []complex128 { return s.amps }

// Clone returns a deep copy of the state (worker setting included).
func (s *State) Clone() *State {
	c := &State{n: s.n, amps: make([]complex128, len(s.amps)), workers: s.workers}
	copy(c.amps, s.amps)
	return c
}

// CopyFrom overwrites s with src's amplitudes (same qubit count required).
func (s *State) CopyFrom(src *State) {
	if s.n != src.n {
		panic("sim: CopyFrom size mismatch")
	}
	copy(s.amps, src.amps)
}

// SetBasis resets the state to the computational basis state |idx>.
func (s *State) SetBasis(idx int) {
	if idx < 0 || idx >= len(s.amps) {
		panic(fmt.Sprintf("sim: basis index %d out of range", idx))
	}
	for i := range s.amps {
		s.amps[i] = 0
	}
	s.amps[idx] = 1
}

// SetAmplitudes overwrites the state with the given amplitudes, which
// must have length 2^n; the vector is normalized. This mirrors the
// paper's noise-free Qiskit `initialize` step.
func (s *State) SetAmplitudes(a []complex128) {
	if len(a) != len(s.amps) {
		panic("sim: SetAmplitudes length mismatch")
	}
	copy(s.amps, a)
	s.Normalize()
}

// Normalize rescales the state to unit norm. Panics on the zero vector.
func (s *State) Normalize() {
	nrm := mat.VecNorm(s.amps)
	if nrm == 0 {
		panic("sim: cannot normalize zero state")
	}
	inv := complex(1/nrm, 0)
	for i := range s.amps {
		s.amps[i] *= inv
	}
}

// Norm returns the 2-norm of the amplitude vector (1 for a valid state).
func (s *State) Norm() float64 { return mat.VecNorm(s.amps) }

// Probability returns |<idx|s>|^2.
func (s *State) Probability(idx int) float64 {
	v := s.amps[idx]
	return real(v)*real(v) + imag(v)*imag(v)
}

// insertZero spreads v's bits so that bit position p becomes a 0 bit:
// bits below p keep their place, bits at or above p shift up by one.
func insertZero(v, p int) int {
	low := v & ((1 << uint(p)) - 1)
	return ((v &^ ((1 << uint(p)) - 1)) << 1) | low
}

// expandIndex maps a compact counter k to a full basis index in which the
// (sorted ascending) bit positions given are forced to the corresponding
// bit values.
func expandIndex(k int, positions []int, values []int) int {
	idx := k
	for i, p := range positions {
		idx = insertZero(idx, p)
		if values[i] != 0 {
			idx |= 1 << uint(p)
		}
	}
	return idx
}

// Phase multiplies every amplitude whose bit q is 1 by e^{i theta}.
// This is the P (phase) gate kernel.
func (s *State) Phase(q int, theta float64) {
	p := cmplx.Exp(complex(0, theta))
	if s.workers > 1 && len(s.amps) >= parallelThreshold {
		s.phaseP(q, p)
		return
	}
	step := 1 << uint(q)
	for g := step; g < len(s.amps); g += 2 * step {
		for i := g; i < g+step; i++ {
			s.amps[i] *= p
		}
	}
}

// RZ applies the exact RZ(theta) = diag(e^{-i theta/2}, e^{+i theta/2}).
func (s *State) RZ(q int, theta float64) {
	p0 := cmplx.Exp(complex(0, -theta/2))
	p1 := cmplx.Exp(complex(0, theta/2))
	step := 1 << uint(q)
	for g := 0; g < len(s.amps); g += 2 * step {
		for i := g; i < g+step; i++ {
			s.amps[i] *= p0
			s.amps[i+step] *= p1
		}
	}
}

// CPhase multiplies amplitudes with bits c and t both 1 by e^{i theta}.
func (s *State) CPhase(c, t int, theta float64) {
	p := cmplx.Exp(complex(0, theta))
	if s.workers > 1 && len(s.amps) >= parallelThreshold {
		s.cPhaseP(c, t, p)
		return
	}
	lo, hi := c, t
	if lo > hi {
		lo, hi = hi, lo
	}
	quarter := len(s.amps) >> 2
	mask := (1 << uint(lo)) | (1 << uint(hi))
	for k := 0; k < quarter; k++ {
		idx := insertZero(insertZero(k, lo), hi) | mask
		s.amps[idx] *= p
	}
}

// CCPhase multiplies amplitudes with bits c0, c1 and t all 1 by e^{i theta}.
func (s *State) CCPhase(c0, c1, t int, theta float64) {
	p := cmplx.Exp(complex(0, theta))
	b := [3]int{c0, c1, t}
	sort3(&b)
	eighth := len(s.amps) >> 3
	mask := (1 << uint(b[0])) | (1 << uint(b[1])) | (1 << uint(b[2]))
	for k := 0; k < eighth; k++ {
		idx := insertZero(insertZero(insertZero(k, b[0]), b[1]), b[2]) | mask
		s.amps[idx] *= p
	}
}

func sort3(b *[3]int) {
	if b[0] > b[1] {
		b[0], b[1] = b[1], b[0]
	}
	if b[1] > b[2] {
		b[1], b[2] = b[2], b[1]
	}
	if b[0] > b[1] {
		b[0], b[1] = b[1], b[0]
	}
}

// Apply1Q applies an arbitrary 2x2 unitary (m00 m01; m10 m11) to qubit q.
func (s *State) Apply1Q(q int, m00, m01, m10, m11 complex128) {
	if s.workers > 1 && len(s.amps) >= parallelThreshold {
		s.apply1QP(q, m00, m01, m10, m11)
		return
	}
	step := 1 << uint(q)
	for g := 0; g < len(s.amps); g += 2 * step {
		for i := g; i < g+step; i++ {
			a0, a1 := s.amps[i], s.amps[i+step]
			s.amps[i] = m00*a0 + m01*a1
			s.amps[i+step] = m10*a0 + m11*a1
		}
	}
}

// ApplyCtrl1Q applies a 2x2 unitary to qubit t on the subspace where all
// control qubits are 1.
func (s *State) ApplyCtrl1Q(controls []int, t int, m00, m01, m10, m11 complex128) {
	var cmask int
	for _, c := range controls {
		cmask |= 1 << uint(c)
	}
	tbit := 1 << uint(t)
	mask := cmask | tbit
	groups := len(s.amps) >> uint(len(controls)+1)
	// Enumerate base indices with all involved bits clear by counting
	// with those bits forced on, so the carry skips them — same ascending
	// order the old insertZero walk produced, without the index math.
	base := 0
	for g := 0; g < groups; g++ {
		i0 := base | cmask
		i1 := i0 | tbit
		a0, a1 := s.amps[i0], s.amps[i1]
		s.amps[i0] = m00*a0 + m01*a1
		s.amps[i1] = m10*a0 + m11*a1
		base = ((base | mask) + 1) &^ mask
	}
}

// CX applies a controlled-NOT with control c and target t.
func (s *State) CX(c, t int) {
	if s.workers > 1 && len(s.amps) >= parallelThreshold {
		s.cxP(c, t)
		return
	}
	lo, hi := c, t
	if lo > hi {
		lo, hi = hi, lo
	}
	cbit := 1 << uint(c)
	tbit := 1 << uint(t)
	quarter := len(s.amps) >> 2
	for k := 0; k < quarter; k++ {
		i0 := insertZero(insertZero(k, lo), hi) | cbit
		i1 := i0 | tbit
		s.amps[i0], s.amps[i1] = s.amps[i1], s.amps[i0]
	}
}

// X applies a Pauli X (bit flip) on qubit q.
func (s *State) X(q int) {
	step := 1 << uint(q)
	for g := 0; g < len(s.amps); g += 2 * step {
		for i := g; i < g+step; i++ {
			s.amps[i], s.amps[i+step] = s.amps[i+step], s.amps[i]
		}
	}
}

// Y applies a Pauli Y on qubit q.
func (s *State) Y(q int) {
	step := 1 << uint(q)
	for g := 0; g < len(s.amps); g += 2 * step {
		for i := g; i < g+step; i++ {
			a0, a1 := s.amps[i], s.amps[i+step]
			s.amps[i] = complex(imag(a1), -real(a1))      // -i * a1
			s.amps[i+step] = complex(-imag(a0), real(a0)) // +i * a0
		}
	}
}

// Z applies a Pauli Z on qubit q.
func (s *State) Z(q int) {
	step := 1 << uint(q)
	for g := step; g < len(s.amps); g += 2 * step {
		for i := g; i < g+step; i++ {
			s.amps[i] = -s.amps[i]
		}
	}
}

// H applies a Hadamard on qubit q.
func (s *State) H(q int) {
	const inv = 1 / math.Sqrt2
	step := 1 << uint(q)
	for g := 0; g < len(s.amps); g += 2 * step {
		for i := g; i < g+step; i++ {
			a0, a1 := s.amps[i], s.amps[i+step]
			s.amps[i] = complex(inv, 0) * (a0 + a1)
			s.amps[i+step] = complex(inv, 0) * (a0 - a1)
		}
	}
}

// Swap exchanges qubits a and b.
func (s *State) Swap(a, b int) {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	lob, hib := 1<<uint(lo), 1<<uint(hi)
	quarter := len(s.amps) >> 2
	for k := 0; k < quarter; k++ {
		base := insertZero(insertZero(k, lo), hi)
		i01 := base | lob
		i10 := base | hib
		s.amps[i01], s.amps[i10] = s.amps[i10], s.amps[i01]
	}
}

// ApplyOp applies a single circuit op, dispatching to the fastest kernel.
func (s *State) ApplyOp(op circuit.Op) {
	q := op.Qubits
	switch op.Kind {
	case gate.I:
		// no-op
	case gate.P:
		s.Phase(q[0], op.Theta)
	case gate.RZ:
		s.RZ(q[0], op.Theta)
	case gate.Z:
		s.Z(q[0])
	case gate.S:
		s.Phase(q[0], math.Pi/2)
	case gate.Sdg:
		s.Phase(q[0], -math.Pi/2)
	case gate.T:
		s.Phase(q[0], math.Pi/4)
	case gate.Tdg:
		s.Phase(q[0], -math.Pi/4)
	case gate.X:
		s.X(q[0])
	case gate.Y:
		s.Y(q[0])
	case gate.H:
		s.H(q[0])
	case gate.CX:
		s.CX(q[0], q[1])
	case gate.CZ:
		s.CPhase(q[0], q[1], math.Pi)
	case gate.CP:
		s.CPhase(q[0], q[1], op.Theta)
	case gate.CCP:
		s.CCPhase(q[0], q[1], q[2], op.Theta)
	case gate.SWAP:
		s.Swap(q[0], q[1])
	case gate.CH:
		// Same matrix entries gate.Base(CH) yields, without the per-call
		// matrix allocation — CH is hot in the controlled adders.
		s2 := complex(1/math.Sqrt2, 0)
		ctrl := [1]int{q[0]}
		s.ApplyCtrl1Q(ctrl[:], q[1], s2, s2, s2, -s2)
	case gate.CCX:
		ctrl := [2]int{q[0], q[1]}
		s.ApplyCtrl1Q(ctrl[:], q[2], 0, 1, 1, 0)
	default:
		s.applyGeneric(op)
	}
}

// applyGeneric applies any gate via its base 2x2 (for controlled-1q
// forms) or its dense matrix (for SWAP-like gates, unused here).
func (s *State) applyGeneric(op circuit.Op) {
	k := op.Kind
	nc := k.Controls()
	switch {
	case k.Arity() == 1:
		m := gate.Base(k, op.Theta)
		s.Apply1Q(op.Qubits[0], m.At(0, 0), m.At(0, 1), m.At(1, 0), m.At(1, 1))
	case nc >= 1 && k.Arity() == nc+1:
		m := gate.Base(k, op.Theta)
		ctrls := make([]int, nc)
		copy(ctrls, op.Qubits[:nc])
		s.ApplyCtrl1Q(ctrls, op.Qubits[nc], m.At(0, 0), m.At(0, 1), m.At(1, 0), m.At(1, 1))
	default:
		panic(fmt.Sprintf("sim: no kernel for %s", k))
	}
}

// ApplyCircuit applies every op of c in order. The circuit must not span
// more qubits than the state.
func (s *State) ApplyCircuit(c *circuit.Circuit) {
	if c.NumQubits > s.n {
		panic(fmt.Sprintf("sim: circuit spans %d qubits, state has %d", c.NumQubits, s.n))
	}
	for _, op := range c.Ops {
		s.ApplyOp(op)
	}
}

// RegisterProbs returns the marginal probability distribution of the
// register formed by the given qubits, with qubits[0] the least
// significant bit of the register value.
func (s *State) RegisterProbs(qubits []int) []float64 {
	out := make([]float64, 1<<uint(len(qubits)))
	s.RegisterProbsInto(out, qubits)
	return out
}

// RegisterProbsInto writes the marginal distribution of the given
// qubits into out, which must have length 2^len(qubits). The
// accumulation order over amplitudes is identical to RegisterProbs, so
// results are bit-for-bit the same; the caller-provided buffer lets hot
// loops avoid a per-call allocation.
func (s *State) RegisterProbsInto(out []float64, qubits []int) {
	w := len(qubits)
	if len(out) != 1<<uint(w) {
		panic("sim: RegisterProbsInto output buffer size mismatch")
	}
	for i := range out {
		out[i] = 0
	}
	// Fast path: contiguous ascending register starting at lo.
	contig := true
	for i, q := range qubits {
		if q != qubits[0]+i {
			contig = false
			break
		}
	}
	if contig {
		lo := uint(qubits[0])
		mask := (1 << uint(w)) - 1
		for idx, a := range s.amps {
			p := real(a)*real(a) + imag(a)*imag(a)
			out[(idx>>lo)&mask] += p
		}
		return
	}
	// Scattered path: hoist the per-qubit shift table out of the
	// amplitude loop instead of re-deriving it per index.
	var shiftBuf [MaxQubits]uint
	shifts := shiftBuf[:w]
	for i, q := range qubits {
		shifts[i] = uint(q)
	}
	for idx, a := range s.amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p == 0 {
			continue
		}
		v := 0
		for i, sh := range shifts {
			v |= ((idx >> sh) & 1) << uint(i)
		}
		out[v] += p
	}
}
