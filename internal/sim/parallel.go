package sim

import (
	"runtime"
	"sync"
)

// Gate kernels iterate disjoint amplitude groups, so they parallelize
// embarrassingly. Workers controls how many goroutines a State uses for
// its kernels; 1 (the default) keeps everything on the calling
// goroutine. Parallelism only pays above a size threshold — goroutine
// dispatch costs more than a small kernel — so small states always run
// serially regardless of the setting.

// parallelThreshold is the minimum amplitude count before kernels fan
// out (2^16 amplitudes ≈ 1 MiB, around where per-gate work reaches tens
// of microseconds).
const parallelThreshold = 1 << 16

// SetWorkers fixes the kernel goroutine count; n <= 0 selects
// GOMAXPROCS. Returns the state for chaining.
func (s *State) SetWorkers(n int) *State {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s.workers = n
	return s
}

// Workers reports the configured kernel goroutine count (minimum 1).
func (s *State) Workers() int {
	if s.workers < 1 {
		return 1
	}
	return s.workers
}

// parallelGroups runs fn over the group-index range [0, groups) split
// across the configured workers. fn must be safe to run concurrently on
// disjoint ranges (every kernel's groups touch disjoint amplitudes).
func (s *State) parallelGroups(groups int, fn func(lo, hi int)) {
	w := s.Workers()
	if w == 1 || len(s.amps) < parallelThreshold || groups < w {
		fn(0, groups)
		return
	}
	var wg sync.WaitGroup
	chunk := (groups + w - 1) / w
	for lo := 0; lo < groups; lo += chunk {
		hi := lo + chunk
		if hi > groups {
			hi = groups
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Parallel variants of the hot kernels. Each group g covers the stride
// block [2*step*g, 2*step*g + step) and its partner block.

// apply1QP is the parallel form of Apply1Q.
func (s *State) apply1QP(q int, m00, m01, m10, m11 complex128) {
	step := 1 << uint(q)
	groups := len(s.amps) / (2 * step)
	s.parallelGroups(groups, func(lo, hi int) {
		for g := lo; g < hi; g++ {
			base := 2 * step * g
			for i := base; i < base+step; i++ {
				a0, a1 := s.amps[i], s.amps[i+step]
				s.amps[i] = m00*a0 + m01*a1
				s.amps[i+step] = m10*a0 + m11*a1
			}
		}
	})
}

// phaseP is the parallel form of Phase.
func (s *State) phaseP(q int, p complex128) {
	step := 1 << uint(q)
	groups := len(s.amps) / (2 * step)
	s.parallelGroups(groups, func(lo, hi int) {
		for g := lo; g < hi; g++ {
			base := 2*step*g + step
			for i := base; i < base+step; i++ {
				s.amps[i] *= p
			}
		}
	})
}

// cxP is the parallel form of CX.
func (s *State) cxP(c, t int) {
	lo, hi := c, t
	if lo > hi {
		lo, hi = hi, lo
	}
	cbit := 1 << uint(c)
	tbit := 1 << uint(t)
	quarter := len(s.amps) >> 2
	s.parallelGroups(quarter, func(glo, ghi int) {
		for k := glo; k < ghi; k++ {
			i0 := insertZero(insertZero(k, lo), hi) | cbit
			i1 := i0 | tbit
			s.amps[i0], s.amps[i1] = s.amps[i1], s.amps[i0]
		}
	})
}

// cPhaseP is the parallel form of CPhase.
func (s *State) cPhaseP(c, t int, p complex128) {
	lo, hi := c, t
	if lo > hi {
		lo, hi = hi, lo
	}
	mask := (1 << uint(lo)) | (1 << uint(hi))
	quarter := len(s.amps) >> 2
	s.parallelGroups(quarter, func(glo, ghi int) {
		for k := glo; k < ghi; k++ {
			idx := insertZero(insertZero(k, lo), hi) | mask
			s.amps[idx] *= p
		}
	})
}
