package sim

import (
	"sync"

	"qfarith/internal/telemetry"
)

// Scratch-pool telemetry: how often the trajectory hot path recycles a
// pooled statevector versus allocating a fresh 2^n-amplitude slice.
// Resolved once at init; recording is a single atomic add, so the
// zero-alloc contract of the pool is preserved.
var (
	scratchReuse = telemetry.Default().Counter("qfarith_scratch_states_total", telemetry.L("result", "reuse"))
	scratchAlloc = telemetry.Default().Counter("qfarith_scratch_states_total", telemetry.L("result", "alloc"))
)

// statePools holds per-qubit-count free lists of scratch states so the
// trajectory hot path can reuse statevectors instead of allocating
// 2^n-amplitude slices per call. Pool index is the qubit count.
var statePools [MaxQubits + 1]sync.Pool

// GetScratchState returns an n-qubit state from the scratch pool. Its
// amplitude contents are undefined — callers must initialise it with
// SetAmplitudes, SetBasis, or CopyFrom before use. The worker setting is
// reset to 1; call SetWorkers to re-enable parallel kernels.
func GetScratchState(n int) *State {
	if s, ok := statePools[n].Get().(*State); ok {
		s.workers = 1
		scratchReuse.Inc()
		return s
	}
	scratchAlloc.Inc()
	return NewState(n)
}

// PutScratchState returns a state obtained from GetScratchState (or any
// State the caller no longer needs) to the scratch pool.
func PutScratchState(s *State) {
	if s == nil {
		return
	}
	statePools[s.n].Put(s)
}

// Batch-pool telemetry, mirroring the scalar scratch-state counters.
var (
	scratchBatchReuse = telemetry.Default().Counter("qfarith_scratch_batches_total", telemetry.L("result", "reuse"))
	scratchBatchAlloc = telemetry.Default().Counter("qfarith_scratch_batches_total", telemetry.L("result", "alloc"))
)

// batchPools holds per-qubit-count free lists of scratch batch states.
// Lane counts vary call to call (the last batch of a mixture is usually
// short), so a pooled BatchState keeps its largest-ever amplitude buffer
// and is resliced to the requested lane count on reuse.
var batchPools [MaxQubits + 1]sync.Pool

// GetScratchBatch returns a k-lane n-qubit batch from the scratch pool.
// Amplitude contents are undefined — callers must seed every lane before
// use (SeedLane).
func GetScratchBatch(n, k int) *BatchState {
	if b, ok := batchPools[n].Get().(*BatchState); ok {
		need := (1 << uint(n)) * k
		if cap(b.amps) >= need {
			b.k = k
			b.amps = b.amps[:need]
			scratchBatchReuse.Inc()
			return b
		}
		// Too narrow for this lane count: grow the buffer, keep the struct.
		b.k = k
		b.amps = make([]complex128, need)
		scratchBatchAlloc.Inc()
		return b
	}
	scratchBatchAlloc.Inc()
	return NewBatchState(n, k)
}

// PutScratchBatch returns a batch obtained from GetScratchBatch to the
// scratch pool.
func PutScratchBatch(b *BatchState) {
	if b == nil {
		return
	}
	batchPools[b.n].Put(b)
}
