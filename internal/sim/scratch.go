package sim

import "sync"

// statePools holds per-qubit-count free lists of scratch states so the
// trajectory hot path can reuse statevectors instead of allocating
// 2^n-amplitude slices per call. Pool index is the qubit count.
var statePools [MaxQubits + 1]sync.Pool

// GetScratchState returns an n-qubit state from the scratch pool. Its
// amplitude contents are undefined — callers must initialise it with
// SetAmplitudes, SetBasis, or CopyFrom before use. The worker setting is
// reset to 1; call SetWorkers to re-enable parallel kernels.
func GetScratchState(n int) *State {
	if s, ok := statePools[n].Get().(*State); ok {
		s.workers = 1
		return s
	}
	return NewState(n)
}

// PutScratchState returns a state obtained from GetScratchState (or any
// State the caller no longer needs) to the scratch pool.
func PutScratchState(s *State) {
	if s == nil {
		return
	}
	statePools[s.n].Put(s)
}
