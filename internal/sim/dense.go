package sim

import "fmt"

// MaxDenseQubits bounds the register size ApplyKQ accepts; 3 qubits
// (8x8 matrices) covers every native span the transpiler emits.
const MaxDenseQubits = 3

const maxDenseDim = 1 << MaxDenseQubits

// kqPlan is the precomputed application plan for one ApplyKQ call. The
// matrix and qubit list are copied in so the worker loops reference no
// caller memory: in the serial path the plan lives on the caller's
// stack and the whole apply is allocation-free.
type kqPlan struct {
	dim  int
	mask int
	// pat[j] scatters local index j onto the global qubit bits.
	pat [maxDenseDim]int
	m   [maxDenseDim * maxDenseDim]complex128
	// Monomial decomposition (valid when mono): column j's only nonzero
	// is at row perm[j] with value ph[j].
	mono bool
	perm [maxDenseDim]int
	ph   [maxDenseDim]complex128
}

// buildKQPlan validates the arguments and precomputes scatter patterns
// and, when possible, the monomial decomposition.
func buildKQPlan(qubits []int, m []complex128) kqPlan {
	k := len(qubits)
	dim := 1 << uint(k)
	if k == 0 || k > MaxDenseQubits {
		panic(fmt.Sprintf("sim: ApplyKQ on %d qubits", k))
	}
	if len(m) != dim*dim {
		panic("sim: ApplyKQ matrix size mismatch")
	}
	var p kqPlan
	p.dim = dim
	copy(p.m[:], m)
	for i, q := range qubits {
		p.mask |= 1 << uint(q)
		for j := 0; j < dim; j++ {
			if j>>uint(i)&1 == 1 {
				p.pat[j] |= 1 << uint(q)
			}
		}
	}
	// Monomial fast path: a span whose natives are all permutations or
	// diagonals (CX, X, RZ, Z, Paulis — everything but SX/H) composes to
	// a matrix with exactly one nonzero per column. Applying it is a
	// gather-permute-scale: one multiply per amplitude instead of 2^k.
	p.mono = true
	for j := 0; j < dim; j++ {
		nz := -1
		for i := 0; i < dim; i++ {
			if m[i*dim+j] != 0 {
				if nz >= 0 {
					p.mono = false
					break
				}
				nz = i
			}
		}
		if nz < 0 || !p.mono {
			p.mono = false
			break
		}
		p.perm[j] = nz
		p.ph[j] = m[nz*dim+j]
	}
	return p
}

// applyKQRange runs the plan over base-index groups [glo, ghi).
func (s *State) applyKQRange(p *kqPlan, glo, ghi int) {
	dim := p.dim
	base := depositBits(glo, p.mask)
	if p.mono {
		var x [maxDenseDim]complex128
		for gi := glo; gi < ghi; gi++ {
			for j := 0; j < dim; j++ {
				x[j] = s.amps[base|p.pat[j]]
			}
			for j := 0; j < dim; j++ {
				s.amps[base|p.pat[p.perm[j]]] = p.ph[j] * x[j]
			}
			// Count with the span bits forced on so the carry skips them,
			// enumerating base indices with all span bits clear.
			base = ((base | p.mask) + 1) &^ p.mask
		}
		return
	}
	var x, y [maxDenseDim]complex128
	for gi := glo; gi < ghi; gi++ {
		for j := 0; j < dim; j++ {
			x[j] = s.amps[base|p.pat[j]]
		}
		for i := 0; i < dim; i++ {
			row := p.m[i*dim : (i+1)*dim]
			acc := row[0] * x[0]
			for j := 1; j < dim; j++ {
				acc += row[j] * x[j]
			}
			y[i] = acc
		}
		for j := 0; j < dim; j++ {
			s.amps[base|p.pat[j]] = y[j]
		}
		base = ((base | p.mask) + 1) &^ p.mask
	}
}

// ApplyKQ applies a dense 2^k x 2^k unitary to the k listed qubits in
// one pass over the state. m is row-major with local bit i of the
// row/column index corresponding to qubits[i] (LSB first, matching the
// simulator's index convention). The qubits must be distinct and k at
// most MaxDenseQubits.
//
// One dense apply replaces a whole run of small gates on the same
// qubits: 2^k multiplies per amplitude in a single memory pass instead
// of one strided pass per gate. The trajectory engine uses it to apply
// an event-containing native span (plus its Pauli insertions) as one
// precomposed matrix. With a single worker the call is allocation-free.
func (s *State) ApplyKQ(qubits []int, m []complex128) {
	groups := len(s.amps) >> uint(len(qubits))
	if s.workers <= 1 || len(s.amps) < parallelThreshold {
		plan := buildKQPlan(qubits, m)
		s.applyKQRange(&plan, 0, groups)
		return
	}
	// The parallel closure makes this plan escape; the serial path above
	// keeps its own copy on the stack.
	plan := buildKQPlan(qubits, m)
	s.parallelGroups(groups, func(glo, ghi int) {
		s.applyKQRange(&plan, glo, ghi)
	})
}

// depositBits spreads the bits of g, low to high, into the bit
// positions NOT set in mask — the g'th basis index whose mask bits are
// all zero.
func depositBits(g, mask int) int {
	out := 0
	for b := 0; g != 0; b++ {
		if mask>>uint(b)&1 == 0 {
			out |= (g & 1) << uint(b)
			g >>= 1
		}
	}
	return out
}
