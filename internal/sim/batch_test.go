package sim_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/sim"
	"qfarith/internal/testutil"
)

// randomLanes returns K independent random n-qubit states and a batch
// seeded with them lane by lane.
func randomLanes(rng *rand.Rand, n, k int) ([]*sim.State, *sim.BatchState) {
	states := make([]*sim.State, k)
	batch := sim.NewBatchState(n, k)
	for l := 0; l < k; l++ {
		states[l] = testutil.RandomState(rng, n)
		batch.SeedLane(l, states[l])
	}
	return states, batch
}

// requireLaneBitIdentical fails unless every lane of batch is bit-for-bit
// the corresponding scalar state.
func requireLaneBitIdentical(t *testing.T, label string, states []*sim.State, batch *sim.BatchState) {
	t.Helper()
	dst := sim.NewState(batch.NumQubits())
	for l := range states {
		batch.ExtractLane(l, dst)
		want := states[l].Amps()
		got := dst.Amps()
		for i := range want {
			if math.Float64bits(real(want[i])) != math.Float64bits(real(got[i])) ||
				math.Float64bits(imag(want[i])) != math.Float64bits(imag(got[i])) {
				t.Fatalf("%s: lane %d amp %d: batch %v != scalar %v", label, l, i, got[i], want[i])
			}
		}
	}
}

func randC(rng *rand.Rand) complex128 {
	return complex(rng.NormFloat64(), rng.NormFloat64())
}

// TestBatchOpKernelsBitIdentical drives every ApplyOpBatch dispatch arm
// on a partial lane range and checks each in-range lane is bit-identical
// to the scalar kernel while out-of-range lanes are untouched.
func TestBatchOpKernelsBitIdentical(t *testing.T) {
	rng := testutil.NewRand(101)
	const n, k = 5, 5
	ops := []circuit.Op{
		circuit.NewOp(gate.I, 0, 0),
		circuit.NewOp(gate.P, 0.37, 1),
		circuit.NewOp(gate.RZ, -1.21, 2),
		circuit.NewOp(gate.Z, 0, 3),
		circuit.NewOp(gate.S, 0, 4),
		circuit.NewOp(gate.Sdg, 0, 0),
		circuit.NewOp(gate.T, 0, 1),
		circuit.NewOp(gate.Tdg, 0, 2),
		circuit.NewOp(gate.X, 0, 3),
		circuit.NewOp(gate.Y, 0, 4),
		circuit.NewOp(gate.H, 0, 0),
		circuit.NewOp(gate.CX, 0, 3, 1),
		circuit.NewOp(gate.CZ, 0, 0, 4),
		circuit.NewOp(gate.CP, 0.9, 2, 0),
		circuit.NewOp(gate.CCP, -0.44, 4, 1, 2),
		circuit.NewOp(gate.SWAP, 0, 1, 3),
		circuit.NewOp(gate.CH, 0, 2, 4),
		circuit.NewOp(gate.CCX, 0, 0, 1, 3),
		circuit.NewOp(gate.SX, 0, 2),        // generic 1q arm
		circuit.NewOp(gate.CRY, 0.61, 3, 0), // generic controlled arm
	}
	for _, op := range ops {
		states, batch := randomLanes(rng, n, k)
		laneLo, laneHi := 1, 4
		batch.ApplyOpBatch(op, laneLo, laneHi)
		for l := laneLo; l < laneHi; l++ {
			states[l].ApplyOp(op)
		}
		requireLaneBitIdentical(t, op.Kind.String(), states, batch)
	}
}

// TestBatchDiagTermsBitIdentical checks ApplyDiagTermsBatch against the
// scalar fused-diagonal kernel for random term runs, on a register big
// enough to exercise full 256-amplitude blocks (n=9) and one small
// enough to hit the sub-block fallback (n=4).
func TestBatchDiagTermsBitIdentical(t *testing.T) {
	rng := testutil.NewRand(202)
	for _, n := range []int{4, 9} {
		const k = 4
		for trial := 0; trial < 10; trial++ {
			nTerms := 1 + rng.IntN(12)
			terms := make([]circuit.DiagTerm, nTerms)
			for i := range terms {
				sel := uint64(rng.IntN(1<<uint(n)-1) + 1)
				terms[i] = circuit.DiagTerm{
					Sel:   sel,
					Val:   uint64(rng.IntN(1<<uint(n))) & sel,
					Phase: randC(rng),
					Src:   i,
				}
			}
			states, batch := randomLanes(rng, n, k)
			batch.ApplyDiagTermsBatch(terms, 0, k)
			for l := 0; l < k; l++ {
				states[l].ApplyDiagTerms(terms)
			}
			requireLaneBitIdentical(t, "diag", states, batch)
		}
	}
}

// TestBatchDenseKernelsBitIdentical checks the remaining batched kernels
// with matrix arguments — Apply1QBatch, ApplyCtrl1QBatch, ApplyKQBatch
// (monomial and dense) — against their scalar counterparts.
func TestBatchDenseKernelsBitIdentical(t *testing.T) {
	rng := testutil.NewRand(303)
	const n, k = 6, 3

	t.Run("apply1q", func(t *testing.T) {
		states, batch := randomLanes(rng, n, k)
		m00, m01, m10, m11 := randC(rng), randC(rng), randC(rng), randC(rng)
		batch.Apply1QBatch(3, m00, m01, m10, m11, 0, k)
		for l := 0; l < k; l++ {
			states[l].Apply1Q(3, m00, m01, m10, m11)
		}
		requireLaneBitIdentical(t, "apply1q", states, batch)
	})

	t.Run("ctrl1q", func(t *testing.T) {
		for _, ctrls := range [][]int{{2}, {5, 1}} {
			states, batch := randomLanes(rng, n, k)
			m00, m01, m10, m11 := randC(rng), randC(rng), randC(rng), randC(rng)
			batch.ApplyCtrl1QBatch(ctrls, 4, m00, m01, m10, m11, 0, k)
			for l := 0; l < k; l++ {
				states[l].ApplyCtrl1Q(ctrls, 4, m00, m01, m10, m11)
			}
			requireLaneBitIdentical(t, "ctrl1q", states, batch)
		}
	})

	t.Run("kq-dense", func(t *testing.T) {
		qubits := []int{1, 4, 2}
		dim := 1 << len(qubits)
		m := make([]complex128, dim*dim)
		for i := range m {
			m[i] = randC(rng)
		}
		states, batch := randomLanes(rng, n, k)
		batch.ApplyKQBatch(qubits, m, 0, k)
		for l := 0; l < k; l++ {
			states[l].ApplyKQ(qubits, m)
		}
		requireLaneBitIdentical(t, "kq-dense", states, batch)
	})

	t.Run("kq-monomial", func(t *testing.T) {
		qubits := []int{5, 0}
		dim := 1 << len(qubits)
		perm := rng.Perm(dim)
		m := make([]complex128, dim*dim)
		for j := 0; j < dim; j++ {
			m[perm[j]*dim+j] = randC(rng)
		}
		states, batch := randomLanes(rng, n, k)
		batch.ApplyKQBatch(qubits, m, 0, k)
		for l := 0; l < k; l++ {
			states[l].ApplyKQ(qubits, m)
		}
		requireLaneBitIdentical(t, "kq-monomial", states, batch)
	})
}

// TestBatchRegisterProbsBitIdentical checks that a lane's marginal is
// bit-for-bit the scalar marginal of the extracted lane, on both the
// contiguous-register fast path and the scattered path.
func TestBatchRegisterProbsBitIdentical(t *testing.T) {
	rng := testutil.NewRand(404)
	const n, k = 6, 4
	states, batch := randomLanes(rng, n, k)
	for _, qubits := range [][]int{{1, 2, 3}, {4, 0, 2}} {
		want := make([]float64, 1<<len(qubits))
		got := make([]float64, 1<<len(qubits))
		for l := 0; l < k; l++ {
			states[l].RegisterProbsInto(want, qubits)
			batch.RegisterProbsIntoLane(got, qubits, l)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("qubits %v lane %d outcome %d: batch %v != scalar %v",
						qubits, l, i, got[i], want[i])
				}
			}
		}
	}
}

// TestScratchBatchPool exercises reuse, lane-count growth, and shrink on
// the batch scratch pool.
func TestScratchBatchPool(t *testing.T) {
	b := sim.GetScratchBatch(5, 4)
	if b.NumQubits() != 5 || b.Lanes() != 4 {
		t.Fatalf("got %d qubits x %d lanes", b.NumQubits(), b.Lanes())
	}
	sim.PutScratchBatch(b)
	// A wider request must still come back usable.
	b2 := sim.GetScratchBatch(5, 9)
	if b2.Lanes() != 9 {
		t.Fatalf("lanes = %d, want 9", b2.Lanes())
	}
	src := sim.NewState(5)
	for l := 0; l < 9; l++ {
		b2.SeedLane(l, src)
	}
	dst := sim.NewState(5)
	b2.ExtractLane(8, dst)
	if dst.Amps()[0] != 1 {
		t.Fatalf("lane 8 not seeded: %v", dst.Amps()[0])
	}
	sim.PutScratchBatch(b2)
	// And a narrower one reslices rather than reallocating.
	b3 := sim.GetScratchBatch(5, 2)
	if b3.Lanes() != 2 {
		t.Fatalf("lanes = %d, want 2", b3.Lanes())
	}
	sim.PutScratchBatch(b3)
}

// BenchmarkBatchLayout is the layout microbenchmark behind BatchState's
// amplitude-major choice: the same fused diagonal run (a CP-ladder-like
// term list) and the same fused 1q gate applied to K=8 15-qubit lanes,
// once through the amplitude-major batched kernels and once lane-major
// (K contiguous statevectors through the scalar kernels, which is
// exactly what the K-major layout executes). Amplitude-major amortizes
// the per-amplitude index enumeration across the contiguous lane run;
// lane-major repeats it per lane.
func BenchmarkBatchLayout(b *testing.B) {
	const n, k = 15, 8
	rng := testutil.NewRand(77)
	terms := make([]circuit.DiagTerm, 24)
	for i := range terms {
		a := rng.IntN(n)
		c := (a + 1 + rng.IntN(n-1)) % n
		sel := uint64(1)<<a | uint64(1)<<c
		terms[i] = circuit.DiagTerm{Sel: sel, Val: sel, Phase: randC(rng), Src: i}
	}
	lanes := make([]*sim.State, k)
	for l := range lanes {
		lanes[l] = testutil.RandomState(rng, n)
	}
	batch := sim.NewBatchState(n, k)
	for l := range lanes {
		batch.SeedLane(l, lanes[l])
	}
	m00, m01, m10, m11 := randC(rng), randC(rng), randC(rng), randC(rng)

	b.Run("diag-amp-major", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.ApplyDiagTermsBatch(terms, 0, k)
		}
	})
	b.Run("diag-lane-major", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for l := 0; l < k; l++ {
				lanes[l].ApplyDiagTerms(terms)
			}
		}
	})
	b.Run("1q-amp-major", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.Apply1QBatch(7, m00, m01, m10, m11, 0, k)
		}
	})
	b.Run("1q-lane-major", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for l := 0; l < k; l++ {
				lanes[l].Apply1Q(7, m00, m01, m10, m11)
			}
		}
	})
}

// TestBatchKernelsSIMDOffBitIdentical re-runs the kernel bit-identity
// suites with the SIMD fast paths forced off, pinning the portable Go
// fallback on hardware where the default run exercises the assembly.
func TestBatchKernelsSIMDOffBitIdentical(t *testing.T) {
	if !sim.BatchSIMDEnabled() {
		t.Skip("SIMD unavailable; default run already covers the portable kernels")
	}
	prev := sim.SetBatchSIMD(false)
	defer sim.SetBatchSIMD(prev)
	t.Run("ops", TestBatchOpKernelsBitIdentical)
	t.Run("diag", TestBatchDiagTermsBitIdentical)
	t.Run("dense", TestBatchDenseKernelsBitIdentical)
}
