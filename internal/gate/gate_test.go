package gate_test

import (
	"math"
	"testing"

	"qfarith/internal/gate"
	"qfarith/internal/mat"
)

const tol = 1e-12

var allKinds = []gate.Kind{
	gate.I, gate.X, gate.Y, gate.Z, gate.H, gate.S, gate.Sdg, gate.T,
	gate.Tdg, gate.SX, gate.SXdg, gate.RX, gate.RY, gate.RZ, gate.P,
	gate.CX, gate.CZ, gate.CP, gate.CH, gate.CRY, gate.SWAP,
	gate.CCX, gate.CCP, gate.CCH,
}

var testAngles = []float64{0, math.Pi / 7, math.Pi / 2, math.Pi, -math.Pi / 3, 2 * math.Pi / 64}

func TestMatricesAreUnitary(t *testing.T) {
	for _, k := range allKinds {
		angles := []float64{0}
		if k.Parameterized() {
			angles = testAngles
		}
		for _, th := range angles {
			m := gate.Matrix(k, th)
			if got, want := m.Rows, 1<<uint(k.Arity()); got != want {
				t.Fatalf("%s: matrix dim %d, want %d", k, got, want)
			}
			if !mat.IsUnitary(m, tol) {
				t.Errorf("%s(θ=%g): matrix not unitary", k, th)
			}
		}
	}
}

func TestInverseGates(t *testing.T) {
	for _, k := range allKinds {
		angles := []float64{0}
		if k.Parameterized() {
			angles = testAngles
		}
		for _, th := range angles {
			ik, ith := gate.Inverse(k, th)
			m := gate.Matrix(k, th)
			im := gate.Matrix(ik, ith)
			prod := mat.Mul(im, m)
			if d := mat.MaxAbsDiff(prod, mat.Identity(m.Rows)); d > tol {
				t.Errorf("%s(θ=%g): inverse %s(θ=%g) gives residual %g", k, th, ik, ith, d)
			}
		}
	}
}

func TestControlledMatrixStructure(t *testing.T) {
	// A controlled gate must be the identity on every basis state whose
	// controls are not all 1, and the base gate on the active block.
	cases := []struct {
		k  gate.Kind
		th float64
	}{
		{gate.CX, 0}, {gate.CZ, 0}, {gate.CP, math.Pi / 5}, {gate.CH, 0},
		{gate.CRY, math.Pi / 3}, {gate.CCX, 0}, {gate.CCP, math.Pi / 9}, {gate.CCH, 0},
	}
	for _, c := range cases {
		m := gate.Matrix(c.k, c.th)
		nc := c.k.Controls()
		dim := m.Rows
		active := dim - 2
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				inActive := i >= active && j >= active
				want := complex(0, 0)
				if inActive {
					base := gate.Base(c.k, c.th)
					want = base.At(i-active, j-active)
				} else if i == j {
					want = 1
				}
				if d := m.At(i, j) - want; real(d)*real(d)+imag(d)*imag(d) > tol {
					t.Fatalf("%s (%d controls): element (%d,%d) = %v, want %v", c.k, nc, i, j, m.At(i, j), want)
				}
			}
		}
	}
}

func TestAddControl(t *testing.T) {
	cases := []struct {
		base, want gate.Kind
	}{
		{gate.X, gate.CX}, {gate.Z, gate.CZ}, {gate.H, gate.CH},
		{gate.P, gate.CP}, {gate.RY, gate.CRY},
		{gate.CX, gate.CCX}, {gate.CP, gate.CCP}, {gate.CH, gate.CCH},
	}
	for _, c := range cases {
		got, ok := gate.AddControl(c.base)
		if !ok || got != c.want {
			t.Errorf("AddControl(%s) = %s,%v want %s", c.base, got, ok, c.want)
		}
	}
	if _, ok := gate.AddControl(gate.SWAP); ok {
		t.Error("AddControl(SWAP) should not exist in the gate set")
	}
	// Controlled gates' base matrices must match their uncontrolled
	// counterparts so that Controlled circuits implement the same payload.
	pairs := []struct{ base, ctrl gate.Kind }{
		{gate.X, gate.CX}, {gate.H, gate.CH}, {gate.P, gate.CP}, {gate.CP, gate.CCP},
	}
	for _, p := range pairs {
		th := math.Pi / 6
		b := gate.Base(p.base, th)
		cb := gate.Base(p.ctrl, th)
		if d := mat.MaxAbsDiff(b, cb); d > tol {
			t.Errorf("Base(%s) != Base(%s): %g", p.base, p.ctrl, d)
		}
	}
}

func TestRTheta(t *testing.T) {
	if got := gate.RTheta(1); math.Abs(got-math.Pi) > tol {
		t.Errorf("RTheta(1) = %g, want π", got)
	}
	if got := gate.RTheta(2); math.Abs(got-math.Pi/2) > tol {
		t.Errorf("RTheta(2) = %g, want π/2", got)
	}
	for l := 1; l < 20; l++ {
		if got, want := gate.RTheta(l+1), gate.RTheta(l)/2; math.Abs(got-want) > tol {
			t.Errorf("RTheta(%d) should halve RTheta(%d)", l+1, l)
		}
	}
}

func TestSXSquaredIsX(t *testing.T) {
	sx := gate.Matrix(gate.SX, 0)
	x := gate.Matrix(gate.X, 0)
	if d := mat.MaxAbsDiff(mat.Mul(sx, sx), x); d > tol {
		t.Errorf("SX² != X, residual %g", d)
	}
}

func TestNativeBasis(t *testing.T) {
	native := []gate.Kind{gate.I, gate.X, gate.RZ, gate.SX, gate.CX}
	for _, k := range native {
		if !gate.IsNative(k) {
			t.Errorf("%s should be native", k)
		}
	}
	for _, k := range []gate.Kind{gate.H, gate.CP, gate.CCP, gate.CH, gate.P, gate.SWAP} {
		if gate.IsNative(k) {
			t.Errorf("%s should not be native", k)
		}
	}
}

func TestArityAndControls(t *testing.T) {
	for _, k := range allKinds {
		if k.Controls() >= k.Arity() {
			t.Errorf("%s: controls %d >= arity %d", k, k.Controls(), k.Arity())
		}
	}
	if gate.CCP.Arity() != 3 || gate.CCP.Controls() != 2 {
		t.Error("CCP must be a 3-qubit, 2-control gate")
	}
}

func TestDiagonalFlag(t *testing.T) {
	for _, k := range allKinds {
		if !k.Diagonal() {
			continue
		}
		th := math.Pi / 5
		m := gate.Matrix(k, th)
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if i != j && m.At(i, j) != 0 {
					t.Errorf("%s flagged diagonal but element (%d,%d) = %v", k, i, j, m.At(i, j))
				}
			}
		}
	}
}
