// Package gate defines the quantum gate set used throughout the library:
// names, parameter conventions, unitary matrices, arities, and inverses.
//
// Conventions. Matrices use the textbook (big-endian) basis ordering the
// paper uses: for a k-qubit gate the basis index is built with the first
// listed qubit as the most significant bit. Controlled gates list controls
// first, target last. Phase gates follow the paper's R_l notation:
// R(l) = P(2π/2^l), the phase gate diag(1, e^{i2π/2^l}).
package gate

import (
	"fmt"
	"math"
	"math/cmplx"

	"qfarith/internal/mat"
)

// Kind enumerates the gates understood by the circuit IR, the transpiler,
// and the simulator kernels.
type Kind uint8

const (
	// Invalid is the zero Kind and is never a valid gate.
	Invalid Kind = iota

	// --- 1-qubit gates ---
	I   // identity (explicit, so noise can attach to idle "id" gates)
	X   // Pauli X
	Y   // Pauli Y
	Z   // Pauli Z
	H   // Hadamard
	S   // phase S = P(π/2)
	Sdg // S†
	T   // T = P(π/4)
	Tdg // T†
	SX  // sqrt-X (native IBM gate)
	SXdg
	RX // rotation exp(-iθX/2); parameterized
	RY // rotation exp(-iθY/2); parameterized
	RZ // rotation exp(-iθZ/2); parameterized
	P  // phase gate diag(1, e^{iθ}); parameterized

	// --- 2-qubit gates ---
	CX   // controlled-X (CNOT); native IBM gate
	CZ   // controlled-Z
	CP   // controlled phase diag(1,1,1,e^{iθ}); parameterized
	CH   // controlled Hadamard
	CRY  // controlled RY; parameterized (used by the state initializer)
	SWAP // swap

	// --- 3-qubit gates ---
	CCX // Toffoli
	CCP // doubly-controlled phase; parameterized
	CCH // doubly-controlled Hadamard

	numKinds
)

var names = map[Kind]string{
	I: "id", X: "x", Y: "y", Z: "z", H: "h", S: "s", Sdg: "sdg",
	T: "t", Tdg: "tdg", SX: "sx", SXdg: "sxdg",
	RX: "rx", RY: "ry", RZ: "rz", P: "p",
	CX: "cx", CZ: "cz", CP: "cp", CH: "ch", CRY: "cry", SWAP: "swap",
	CCX: "ccx", CCP: "ccp", CCH: "cch",
}

// Name returns the lowercase OpenQASM-style mnemonic of k.
func (k Kind) Name() string {
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("gate(%d)", uint8(k))
}

func (k Kind) String() string { return k.Name() }

// Arity returns the number of qubits k acts on (controls included).
func (k Kind) Arity() int {
	switch k {
	case I, X, Y, Z, H, S, Sdg, T, Tdg, SX, SXdg, RX, RY, RZ, P:
		return 1
	case CX, CZ, CP, CH, CRY, SWAP:
		return 2
	case CCX, CCP, CCH:
		return 3
	default:
		panic(fmt.Sprintf("gate: Arity of invalid kind %d", uint8(k)))
	}
}

// Parameterized reports whether k takes an angle parameter.
func (k Kind) Parameterized() bool {
	switch k {
	case RX, RY, RZ, P, CP, CRY, CCP:
		return true
	}
	return false
}

// Controls returns how many of k's qubits are controls (listed first).
func (k Kind) Controls() int {
	switch k {
	case CX, CZ, CP, CH, CRY:
		return 1
	case CCX, CCP, CCH:
		return 2
	default:
		return 0
	}
}

// Diagonal reports whether k's matrix is diagonal in the computational
// basis. Diagonal gates commute with each other and with measurements in
// that basis; the simulator exploits this with phase-only kernels.
func (k Kind) Diagonal() bool {
	switch k {
	case I, Z, S, Sdg, T, Tdg, RZ, P, CZ, CP, CCP:
		return true
	}
	return false
}

// RTheta returns the paper's R_l rotation angle 2π/2^l.
func RTheta(l int) float64 {
	return 2 * math.Pi / math.Pow(2, float64(l))
}

// Base returns the single-qubit "payload" matrix of a (possibly
// controlled) gate kind, i.e. the unitary applied to the target when all
// controls are 1. For SWAP this panics.
func Base(k Kind, theta float64) *mat.Matrix {
	e := func(t float64) complex128 { return cmplx.Exp(complex(0, t)) }
	s2 := complex(1/math.Sqrt2, 0)
	switch k {
	case I:
		return mat.Identity(2)
	case X, CX, CCX:
		return mat.FromSlice(2, 2, []complex128{0, 1, 1, 0})
	case Y:
		return mat.FromSlice(2, 2, []complex128{0, -1i, 1i, 0})
	case Z, CZ:
		return mat.FromSlice(2, 2, []complex128{1, 0, 0, -1})
	case H, CH, CCH:
		return mat.FromSlice(2, 2, []complex128{s2, s2, s2, -s2})
	case S:
		return mat.FromSlice(2, 2, []complex128{1, 0, 0, 1i})
	case Sdg:
		return mat.FromSlice(2, 2, []complex128{1, 0, 0, -1i})
	case T:
		return mat.FromSlice(2, 2, []complex128{1, 0, 0, e(math.Pi / 4)})
	case Tdg:
		return mat.FromSlice(2, 2, []complex128{1, 0, 0, e(-math.Pi / 4)})
	case SX:
		return mat.FromSlice(2, 2, []complex128{
			(1 + 1i) / 2, (1 - 1i) / 2,
			(1 - 1i) / 2, (1 + 1i) / 2,
		})
	case SXdg:
		return mat.FromSlice(2, 2, []complex128{
			(1 - 1i) / 2, (1 + 1i) / 2,
			(1 + 1i) / 2, (1 - 1i) / 2,
		})
	case RX:
		c := complex(math.Cos(theta/2), 0)
		s := complex(0, -math.Sin(theta/2))
		return mat.FromSlice(2, 2, []complex128{c, s, s, c})
	case RY, CRY:
		c := complex(math.Cos(theta/2), 0)
		s := complex(math.Sin(theta/2), 0)
		return mat.FromSlice(2, 2, []complex128{c, -s, s, c})
	case RZ:
		return mat.FromSlice(2, 2, []complex128{e(-theta / 2), 0, 0, e(theta / 2)})
	case P, CP, CCP:
		return mat.FromSlice(2, 2, []complex128{1, 0, 0, e(theta)})
	default:
		panic(fmt.Sprintf("gate: Base undefined for %s", k))
	}
}

// Matrix returns the full 2^arity x 2^arity unitary of the gate in
// big-endian basis ordering (first qubit most significant; controls
// listed before the target).
func Matrix(k Kind, theta float64) *mat.Matrix {
	if k == SWAP {
		return mat.FromSlice(4, 4, []complex128{
			1, 0, 0, 0,
			0, 0, 1, 0,
			0, 1, 0, 0,
			0, 0, 0, 1,
		})
	}
	base := Base(k, theta)
	nc := k.Controls()
	if nc == 0 {
		return base
	}
	dim := 1 << (nc + 1)
	m := mat.Identity(dim)
	// Controls are the most significant bits; the active block is the
	// bottom-right 2x2 where all controls are 1.
	off := dim - 2
	m.Set(off, off, base.At(0, 0))
	m.Set(off, off+1, base.At(0, 1))
	m.Set(off+1, off, base.At(1, 0))
	m.Set(off+1, off+1, base.At(1, 1))
	return m
}

// Inverse returns the kind and parameter of the inverse gate. Every gate
// in the set has an inverse expressible in the same set.
func Inverse(k Kind, theta float64) (Kind, float64) {
	switch k {
	case I, X, Y, Z, H, CX, CZ, CH, SWAP, CCX, CCH:
		return k, 0
	case S:
		return Sdg, 0
	case Sdg:
		return S, 0
	case T:
		return Tdg, 0
	case Tdg:
		return T, 0
	case SX:
		return SXdg, 0
	case SXdg:
		return SX, 0
	case RX, RY, RZ, P, CP, CRY, CCP:
		return k, -theta
	default:
		panic(fmt.Sprintf("gate: Inverse undefined for %s", k))
	}
}

// AddControl returns the kind obtained by prefixing one control qubit to
// k, when that gate exists in the set; ok reports whether it does.
func AddControl(k Kind) (ctrl Kind, ok bool) {
	switch k {
	case X:
		return CX, true
	case Z:
		return CZ, true
	case H:
		return CH, true
	case P:
		return CP, true
	case RY:
		return CRY, true
	case CX:
		return CCX, true
	case CP:
		return CCP, true
	case CH:
		return CCH, true
	case I:
		return I, true // controlled identity is the identity
	}
	return Invalid, false
}

// IsNative reports whether k belongs to the IBM superconducting native
// basis {id, x, rz, sx, cx} the paper transpiles to.
func IsNative(k Kind) bool {
	switch k {
	case I, X, RZ, SX, CX:
		return true
	}
	return false
}
