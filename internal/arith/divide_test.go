package arith_test

import (
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/qint"
	"qfarith/internal/sim"
)

func TestConstDivExhaustive(t *testing.T) {
	// 4-bit dividends (register of 5 with borrow qubit), 3-bit quotient.
	w, qw := 4, 3
	for _, d := range []uint64{1, 2, 3, 5, 7, 11} {
		c := circuit.New(w + 1 + qw)
		y := arith.Range(0, w+1)
		q := arith.Range(w+1, qw)
		arith.ConstDivGates(c, d, y, q, arith.DefaultConfig())
		for v := 0; v < 1<<uint(w); v++ {
			if uint64(v)/d >= 1<<uint(qw) {
				continue // quotient would not fit; out of contract
			}
			out := dominantOutput(t, c, w+1+qw, v)
			rem := out & (1<<uint(w+1) - 1)
			quo := out >> uint(w+1)
			if rem != v%int(d) || quo != v/int(d) {
				t.Fatalf("%d ÷ %d: got q=%d r=%d, want q=%d r=%d", v, d, quo, rem, v/int(d), v%int(d))
			}
		}
	}
}

func TestConstDivOnSuperposition(t *testing.T) {
	// Superposed dividends divide branchwise in one run.
	w, qw := 4, 3
	d := uint64(3)
	c := circuit.New(w + 1 + qw)
	arith.ConstDivGates(c, d, arith.Range(0, w+1), arith.Range(w+1, qw), arith.DefaultConfig())
	st := sim.NewState(w + 1 + qw)
	amps := make([]complex128, st.Dim())
	v1, v2 := 7, 14
	amps[v1] = complex(1/1.4142135623730951, 0)
	amps[v2] = amps[v1]
	st.SetAmplitudes(amps)
	st.ApplyCircuit(c)
	for _, v := range []int{v1, v2} {
		want := v%int(d) | (v/int(d))<<uint(w+1)
		if p := st.Probability(want); p < 0.49 {
			t.Errorf("branch %d÷3: P = %g", v, p)
		}
	}
}

func TestConstDivByOne(t *testing.T) {
	w, qw := 3, 3
	c := circuit.New(w + 1 + qw)
	arith.ConstDivGates(c, 1, arith.Range(0, w+1), arith.Range(w+1, qw), arith.DefaultConfig())
	for v := 0; v < 8; v++ {
		out := dominantOutput(t, c, w+1+qw, v)
		if out&15 != 0 || out>>4 != v {
			t.Fatalf("%d ÷ 1: out %b", v, out)
		}
	}
}

func TestConstDivValidation(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanic("divide by zero", func() {
		c := circuit.New(6)
		arith.ConstDivGates(c, 0, arith.Range(0, 4), arith.Range(4, 2), arith.DefaultConfig())
	})
	assertPanic("overlap", func() {
		c := circuit.New(6)
		arith.ConstDivGates(c, 3, arith.Range(0, 4), arith.Range(3, 2), arith.DefaultConfig())
	})
}

func TestSignedQFMExhaustive(t *testing.T) {
	// 3x3-bit signed multiply: values in [-4, 3].
	n, m := 3, 3
	c := circuit.New(2*n + 2*m)
	z := arith.Range(0, n+m)
	y := arith.Range(n+m, m)
	x := arith.Range(n+2*m, n)
	arith.SignedQFMGates(c, x, y, z, arith.DefaultConfig())
	for xr := 0; xr < 1<<uint(n); xr++ {
		for yr := 0; yr < 1<<uint(m); yr++ {
			init := yr<<uint(n+m) | xr<<uint(n+2*m)
			out := dominantOutput(t, c, 2*n+2*m, init)
			gotZ := out & (1<<uint(n+m) - 1)
			want := qint.TwosComplement(xr, n) * qint.TwosComplement(yr, m)
			if got := qint.TwosComplement(gotZ, n+m); got != want {
				t.Fatalf("%d × %d: got %d (raw %d)", qint.TwosComplement(xr, n),
					qint.TwosComplement(yr, m), got, gotZ)
			}
			if out>>uint(n+m) != init>>uint(n+m) {
				t.Fatalf("operands disturbed for x=%d y=%d", xr, yr)
			}
		}
	}
}

func TestSignedQFMMatchesUnsignedForPositives(t *testing.T) {
	// When both sign bits are clear the correction blocks are inert.
	n, m := 3, 3
	cs := circuit.New(2*n + 2*m)
	cu := circuit.New(2*n + 2*m)
	z := arith.Range(0, n+m)
	y := arith.Range(n+m, m)
	x := arith.Range(n+2*m, n)
	arith.SignedQFMGates(cs, x, y, z, arith.DefaultConfig())
	arith.QFMGates(cu, x, y, z, arith.DefaultConfig())
	for xr := 0; xr < 4; xr++ { // sign bit clear
		for yr := 0; yr < 4; yr++ {
			init := yr<<uint(n+m) | xr<<uint(n+2*m)
			a := dominantOutput(t, cs, 2*n+2*m, init)
			b := dominantOutput(t, cu, 2*n+2*m, init)
			if a != b {
				t.Fatalf("positive operands diverge: %d vs %d", a, b)
			}
		}
	}
}
