package arith

import (
	"fmt"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/qft"
)

// This file implements modular arithmetic on top of the Fourier adders —
// the "modular versions" the paper's introduction and conclusions point
// to (Ruiz-Perez & Garcia-Escartin; Şahin), in the Beauregard style used
// by Shor-circuit constructions: constant addition modulo N with one
// ancilla qubit, plus the controlled form needed for modular
// multiply-accumulate.

// ModAddConstGates appends a circuit computing y ← (y + a) mod N for a
// classical constant a, with 0 <= a < N and the register value assumed
// < N. The register y must hold n+1 qubits where 2^n >= N (the extra
// qubit catches the transient overflow); anc is a borrowed ancilla that
// starts and ends in |0>.
//
// The construction is Beauregard's: add a, subtract N, detect the sign
// on the top qubit into the ancilla, conditionally re-add N, then undo
// the sign detection by comparing against a. All additions are
// constant-phase ladders in the Fourier domain; the circuit enters and
// leaves the computational basis so callers can chain it like any other
// arithmetic block.
func ModAddConstGates(c *circuit.Circuit, a, n uint64, y []int, anc int, cfg Config) {
	if n == 0 || a >= n {
		panic(fmt.Sprintf("arith: modular add requires 0 <= a < N, got a=%d N=%d", a, n))
	}
	w := len(y)
	if w < 2 || uint64(1)<<uint(w-1) < n {
		panic(fmt.Sprintf("arith: modular register needs n+1 qubits with 2^n >= N; got %d qubits for N=%d", w, n))
	}
	for _, q := range y {
		if q == anc {
			panic("arith: ancilla overlaps the target register")
		}
	}
	msb := y[w-1]

	qft.Gates(c, y, cfg.Depth)
	// φ: +a, -N.
	ConstPhaseAddGates(c, a, y, cfg.AddCut)
	subConstPhase(c, n, y, cfg.AddCut)
	// Sign detection: if y+a-N < 0 the top qubit is 1; copy it out.
	qft.InverseGates(c, y, cfg.Depth)
	c.Append(gate.CX, 0, msb, anc)
	qft.Gates(c, y, cfg.Depth)
	// Conditional +N restores the positive residue.
	addN := circuit.New(c.NumQubits)
	ConstPhaseAddGates(addN, n, y, cfg.AddCut)
	c.Compose(addN.Controlled(anc))
	// Uncompute the ancilla: y' >= a  ⇔  no wraparound happened. Subtract
	// a; the top qubit is 1 iff y' < a; flip it through X so the CX
	// clears the ancilla exactly when it was set; then restore.
	subConstPhase(c, a, y, cfg.AddCut)
	qft.InverseGates(c, y, cfg.Depth)
	c.Append(gate.X, 0, msb)
	c.Append(gate.CX, 0, msb, anc)
	c.Append(gate.X, 0, msb)
	qft.Gates(c, y, cfg.Depth)
	ConstPhaseAddGates(c, a, y, cfg.AddCut)
	qft.InverseGates(c, y, cfg.Depth)
}

// subConstPhase appends the Fourier-domain phase shifts subtracting the
// classical constant k (the inverse of ConstPhaseAddGates).
func subConstPhase(c *circuit.Circuit, k uint64, y []int, addCut int) {
	tmp := circuit.New(c.NumQubits)
	ConstPhaseAddGates(tmp, k, y, addCut)
	c.Compose(tmp.Inverse())
}

// CModAddConstGates appends the singly-controlled modular constant
// adder: y ← (y + a) mod N iff ctrl is 1. Every gate of the Beauregard
// block gains the control, so the ancilla bookkeeping stays exact in
// both branches.
func CModAddConstGates(c *circuit.Circuit, ctrl int, a, n uint64, y []int, anc int, cfg Config) {
	tmp := circuit.New(c.NumQubits)
	ModAddConstGates(tmp, a, n, y, anc, cfg)
	c.Compose(tmp.Controlled(ctrl))
}

// ModMulAddConstGates appends z ← (z + k·x) mod N: one controlled
// modular constant-add of (k·2^(i-1) mod N) per multiplier qubit x_i.
// This is the inner block of Shor-style modular exponentiation. z must
// hold n+1 qubits with 2^n >= N and start < N; anc is a |0> ancilla.
func ModMulAddConstGates(c *circuit.Circuit, k, n uint64, x, z []int, anc int, cfg Config) {
	if n == 0 {
		panic("arith: modulus must be positive")
	}
	k %= n
	for i := 1; i <= len(x); i++ {
		step := mulMod(k, powMod(2, uint64(i-1), n), n)
		if step == 0 {
			continue
		}
		CModAddConstGates(c, x[i-1], step, n, z, anc, cfg)
	}
}

// mulMod computes (a*b) mod n without overflow for n < 2^32 (sufficient
// for register widths this library simulates; guarded for larger n).
func mulMod(a, b, n uint64) uint64 {
	if n == 0 {
		panic("arith: division by zero modulus")
	}
	if a < 1<<32 && b < 1<<32 {
		return a * b % n
	}
	var res uint64
	a %= n
	for b > 0 {
		if b&1 == 1 {
			res = (res + a) % n
		}
		a = (a + a) % n
		b >>= 1
	}
	return res
}

// powMod computes a^e mod n.
func powMod(a, e, n uint64) uint64 {
	res := uint64(1) % n
	a %= n
	for e > 0 {
		if e&1 == 1 {
			res = mulMod(res, a, n)
		}
		a = mulMod(a, a, n)
		e >>= 1
	}
	return res
}

// PowMod is exported for callers assembling modular-exponentiation
// demos and tests.
func PowMod(a, e, n uint64) uint64 { return powMod(a, e, n) }
