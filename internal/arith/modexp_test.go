package arith_test

import (
	"math"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/sim"
)

func TestModInverse(t *testing.T) {
	cases := []struct {
		k, n, want uint64
		ok         bool
	}{
		{7, 15, 13, true}, {2, 15, 8, true}, {3, 15, 0, false},
		{1, 13, 1, true}, {12, 13, 12, true}, {5, 0, 0, false},
	}
	for _, cse := range cases {
		got, ok := arith.ModInverse(cse.k, cse.n)
		if ok != cse.ok || (ok && got != cse.want) {
			t.Errorf("ModInverse(%d, %d) = %d,%v want %d,%v", cse.k, cse.n, got, ok, cse.want, cse.ok)
		}
		if ok && cse.k*got%cse.n != 1 {
			t.Errorf("inverse check failed: %d·%d mod %d != 1", cse.k, got, cse.n)
		}
	}
}

func TestCCModAddConst(t *testing.T) {
	// y on 0..4 (5 qubits), anc 5, and 6, controls 7, 8; N = 13.
	const N = 13
	w := 5
	a := uint64(6)
	c := circuit.New(w + 4)
	arith.CCModAddConstGates(c, w+2, w+3, a, N, arith.Range(0, w), w, w+1, arith.DefaultConfig())
	for ctrlPattern := 0; ctrlPattern < 4; ctrlPattern++ {
		for _, y := range []int{0, 5, 12} {
			init := y | ctrlPattern<<uint(w+2)
			out := dominantOutput(t, c, w+4, init)
			gotY := out & (1<<uint(w) - 1)
			aux := (out >> uint(w)) & 3
			want := y
			if ctrlPattern == 3 {
				want = (y + int(a)) % N
			}
			if gotY != want || aux != 0 || out>>uint(w+2) != ctrlPattern {
				t.Fatalf("ctrl=%02b y=%d: got y=%d aux=%02b", ctrlPattern, y, gotY, aux)
			}
		}
	}
}

func TestCSwap(t *testing.T) {
	// a on 0..1, b on 2..3, ctrl 4.
	c := circuit.New(5)
	arith.CSwapGates(c, 4, []int{0, 1}, []int{2, 3})
	for av := 0; av < 4; av++ {
		for bv := 0; bv < 4; bv++ {
			// ctrl off: unchanged.
			out := dominantOutput(t, c, 5, av|bv<<2)
			if out != av|bv<<2 {
				t.Fatalf("cswap acted with ctrl 0")
			}
			// ctrl on: swapped.
			out = dominantOutput(t, c, 5, av|bv<<2|1<<4)
			if out != bv|av<<2|1<<4 {
				t.Fatalf("cswap wrong: a=%d b=%d -> %b", av, bv, out)
			}
		}
	}
}

func TestCModMulConstExhaustive(t *testing.T) {
	// x ← k·x mod 15 (controlled), x on 4 qubits, z on 5, anc+and+ctrl.
	const N = 15
	nb := 4
	for _, k := range []uint64{2, 7, 13} {
		lay := struct {
			x, z                  []int
			anc, and, ctrl, total int
		}{
			x: arith.Range(0, nb), z: arith.Range(nb, nb+1),
			anc: 2*nb + 1, and: 2*nb + 2, ctrl: 2*nb + 3, total: 2*nb + 4,
		}
		c := circuit.New(lay.total)
		arith.CModMulConstGates(c, lay.ctrl, k, N, lay.x, lay.z, lay.anc, lay.and, arith.DefaultConfig())
		for x := 0; x < N; x++ {
			// Control off.
			out := dominantOutput(t, c, lay.total, x)
			if out != x {
				t.Fatalf("k=%d: cMUL acted with ctrl 0 on x=%d", k, x)
			}
			// Control on: x ← k·x mod N, everything else |0>.
			init := x | 1<<uint(lay.ctrl)
			out = dominantOutput(t, c, lay.total, init)
			gotX := out & (1<<uint(nb) - 1)
			junk := (out >> uint(nb)) & (1<<uint(nb+3) - 1)
			if gotX != int(uint64(x)*k%N) || junk != 0 {
				t.Fatalf("k=%d x=%d: got x=%d junk=%b", k, x, gotX, junk)
			}
		}
	}
}

func TestCModMulRequiresInvertibleConstant(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-invertible multiplier")
		}
	}()
	c := circuit.New(12)
	arith.CModMulConstGates(c, 11, 3, 15, arith.Range(0, 4), arith.Range(4, 5), 9, 10, arith.DefaultConfig())
}

// TestOrderFindingGateLevel runs the complete gate-level Shor quantum
// core for a=7, N=15 with a 4-bit phase register: the phase distribution
// must peak at multiples of 2^4/r = 4 (r = 4).
func TestOrderFindingGateLevel(t *testing.T) {
	c, lay := arith.NewOrderFinding(7, 15, 4, arith.DefaultConfig())
	st := sim.NewState(lay.Total)
	st.ApplyCircuit(c)
	probs := st.RegisterProbs(lay.Phase)
	for v, p := range probs {
		if v%4 == 0 {
			if math.Abs(p-0.25) > 1e-6 {
				t.Errorf("peak %d: P = %g, want 0.25", v, p)
			}
		} else if p > 1e-9 {
			t.Errorf("non-peak %d has probability %g", v, p)
		}
	}
	// Ancillas and scratch must be returned to |0>, x holds a residue.
	aux := st.RegisterProbs([]int{lay.Anc, lay.And})
	if math.Abs(aux[0]-1) > 1e-9 {
		t.Errorf("ancillas not clean: %v", aux)
	}
	zprobs := st.RegisterProbs(lay.Z)
	if math.Abs(zprobs[0]-1) > 1e-9 {
		t.Errorf("work register not cleaned: P(0) = %g", zprobs[0])
	}
}

func TestOrderFindingOrderTwo(t *testing.T) {
	// a=4 mod 15 has order 2: peaks at 0 and 2^3/... with t=3 phase
	// bits, peaks at multiples of 4 (8/r = 4).
	c, lay := arith.NewOrderFinding(4, 15, 3, arith.DefaultConfig())
	st := sim.NewState(lay.Total)
	st.ApplyCircuit(c)
	probs := st.RegisterProbs(lay.Phase)
	if math.Abs(probs[0]-0.5) > 1e-6 || math.Abs(probs[4]-0.5) > 1e-6 {
		t.Errorf("order-2 peaks wrong: %v", probs)
	}
}
