// Package arith implements the paper's Quantum Fourier arithmetic:
// Draper-style Quantum Fourier Addition (QFA), its controlled form
// (cQFA), and weighted-sum Quantum Fourier Multiplication (QFM), along
// with the related operations the paper discusses (subtraction, constant
// addition/multiplication, and multiply-accumulate).
//
// Register convention: a register is a slice of global qubit indices
// ordered least-significant first, encoding unsigned integers (the
// paper's two's-complement encoding coincides with this modulo 2^w).
package arith

import (
	"fmt"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/qft"
)

// AddGates appends the Fourier-domain addition step (paper Fig. 2): for
// every addend qubit x_i and target phase qubit φ_j with j >= i, a
// CP(2π/2^(j-i+1)) controlled by x[i-1] targeting y[j-1]. The y register
// must already be in the Fourier basis.
//
// addCut bounds the rotation order: rotations R_l with l > addCut are
// dropped. Pass FullAdd for the paper's configuration (the paper always
// performs the full addition step and defers this cutoff to future work;
// we expose it for the ablation study E6).
func AddGates(c *circuit.Circuit, x, y []int, addCut int) {
	a, w := len(x), len(y)
	if a > w {
		panic(fmt.Sprintf("arith: addend register (%d qubits) wider than target (%d)", a, w))
	}
	for i := 1; i <= a; i++ {
		for j := w; j >= i; j-- {
			l := j - i + 1
			if l > addCut {
				continue
			}
			c.Append(gate.CP, gate.RTheta(l), x[i-1], y[j-1])
		}
	}
}

// FullAdd requests the untruncated addition step.
const FullAdd = int(^uint(0) >> 1)

// AddRotationCount returns the number of CP rotations in the addition
// step for an a-qubit addend and w-qubit target at cutoff addCut: the
// closed form used to validate Table I (35 for a=7, w=8 untruncated).
func AddRotationCount(a, w, addCut int) int {
	total := 0
	for i := 1; i <= a; i++ {
		for j := i; j <= w; j++ {
			if j-i+1 <= addCut {
				total++
			}
		}
	}
	return total
}

// Config selects the approximation parameters of a QFA/QFM circuit.
type Config struct {
	// Depth is the AQFT approximation depth d (rotations per qubit kept
	// in the QFT and its inverse). Use qft.Full for the exact QFT.
	Depth int
	// AddCut bounds the rotation order in the addition step; FullAdd
	// reproduces the paper.
	AddCut int
}

// DefaultConfig is the paper's baseline: full QFT, full addition step.
func DefaultConfig() Config { return Config{Depth: qft.Full, AddCut: FullAdd} }

// QFAGates appends a complete Quantum Fourier Adder to c:
// QFT_d(y) · add(x→y) · QFT_d⁻¹(y), computing y ← (x + y) mod 2^len(y).
// x stays in the computational basis throughout.
func QFAGates(c *circuit.Circuit, x, y []int, cfg Config) {
	qft.Gates(c, y, cfg.Depth)
	AddGates(c, x, y, cfg.AddCut)
	qft.InverseGates(c, y, cfg.Depth)
}

// NewQFA builds a standalone QFA circuit with x on qubits 0..a-1 and y on
// qubits a..a+w-1 (both least-significant-first).
func NewQFA(a, w int, cfg Config) *circuit.Circuit {
	c := circuit.New(a + w)
	x := Range(0, a)
	y := Range(a, w)
	QFAGates(c, x, y, cfg)
	return c
}

// SubGates appends a Fourier subtractor computing y ← (y - x) mod
// 2^len(y): the inverse addition step conjugated by the same QFTs. This
// is the paper's §1 "slight alteration of the same underlying algorithm".
func SubGates(c *circuit.Circuit, x, y []int, cfg Config) {
	qft.Gates(c, y, cfg.Depth)
	add := circuit.New(c.NumQubits)
	AddGates(add, x, y, cfg.AddCut)
	c.Compose(add.Inverse())
	qft.InverseGates(c, y, cfg.Depth)
}

// NewQFS builds a standalone QFS circuit with the subtrahend x on
// qubits 0..a-1 and the minuend/result y on qubits a..a+w-1 (both
// least-significant-first), the register layout of NewQFA.
func NewQFS(a, w int, cfg Config) *circuit.Circuit {
	c := circuit.New(a + w)
	x := Range(0, a)
	y := Range(a, w)
	SubGates(c, x, y, cfg)
	return c
}

// ConstAddGates appends a constant adder computing y ← (y + k) mod
// 2^len(y) with the classical constant folded into bare phase gates (the
// paper's §3 closing remark: a classical operand needs no control qubits,
// each controlled rotation collapses to a 1-qubit rotation).
func ConstAddGates(c *circuit.Circuit, k uint64, y []int, cfg Config) {
	qft.Gates(c, y, cfg.Depth)
	ConstPhaseAddGates(c, k, y, cfg.AddCut)
	qft.InverseGates(c, y, cfg.Depth)
}

// ConstPhaseAddGates appends only the Fourier-domain phase shifts that
// add the classical constant k to a register already in the Fourier
// basis: P(2π·k/2^j) on φ_j. Rotation components R_l with l > addCut are
// dropped, mirroring AddGates.
func ConstPhaseAddGates(c *circuit.Circuit, k uint64, y []int, addCut int) {
	w := len(y)
	for j := 1; j <= w; j++ {
		theta := 0.0
		// φ_j accumulates Σ_i k_i / 2^(j-i+1) over set bits k_i of k,
		// exactly the per-qubit sum AddGates implements with controls.
		for i := 1; i <= j && i <= 64; i++ {
			if (k>>(uint(i)-1))&1 == 0 {
				continue
			}
			l := j - i + 1
			if l > addCut {
				continue
			}
			theta += gate.RTheta(l)
		}
		if theta != 0 {
			c.Append(gate.P, theta, y[j-1])
		}
	}
}

// CQFAGates appends a controlled QFA: the full QFA with every gate
// additionally controlled by ctrl (H→CH, CP→CCP), computing
// y ← (x + y) mod 2^len(y) iff ctrl is 1.
func CQFAGates(c *circuit.Circuit, ctrl int, x, y []int, cfg Config) {
	tmp := circuit.New(c.NumQubits)
	QFAGates(tmp, x, y, cfg)
	c.Compose(tmp.Controlled(ctrl))
}

// Range returns the register [start, start+w).
func Range(start, w int) []int {
	r := make([]int, w)
	for i := range r {
		r[i] = start + i
	}
	return r
}
