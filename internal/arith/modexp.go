package arith

import (
	"fmt"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/qft"
)

// Gate-level controlled modular multiplication in the Beauregard style —
// the block Shor's algorithm iterates, built entirely from this
// library's two-control gate set by hoisting control conjunctions into
// an ancilla with Toffolis (AND-compute, act, AND-uncompute). The paper
// motivates Fourier arithmetic by Shor's algorithm; this file closes the
// loop from the QFA to a runnable order-finding circuit.

// CCModAddConstGates appends the doubly-controlled modular constant
// adder: y ← (y + a) mod N iff both c1 and c2 are 1. The conjunction
// c1∧c2 is computed once into the |0> ancilla `and` with a Toffoli, the
// singly-controlled adder runs off it, and the Toffoli uncomputes it —
// far cheaper than adding a second control to every gate.
func CCModAddConstGates(c *circuit.Circuit, c1, c2 int, a, n uint64, y []int, anc, and int, cfg Config) {
	if c1 == c2 || and == c1 || and == c2 || and == anc {
		panic("arith: control/ancilla qubits must be distinct")
	}
	c.Append(gate.CCX, 0, c1, c2, and)
	CModAddConstGates(c, and, a, n, y, anc, cfg)
	c.Append(gate.CCX, 0, c1, c2, and)
}

// CModMulAddConstGates appends the controlled modular multiply-add:
// z ← (z + k·x) mod N iff ctrl is 1, via one doubly-controlled modular
// add of k·2^(i-1) mod N per multiplier qubit.
func CModMulAddConstGates(c *circuit.Circuit, ctrl int, k, n uint64, x, z []int, anc, and int, cfg Config) {
	if n == 0 {
		panic("arith: modulus must be positive")
	}
	k %= n
	for i := 1; i <= len(x); i++ {
		step := mulMod(k, powMod(2, uint64(i-1), n), n)
		if step == 0 {
			continue
		}
		CCModAddConstGates(c, ctrl, x[i-1], step, n, z, anc, and, cfg)
	}
}

// CSwapGates appends controlled register swaps (Fredkin per qubit pair):
// registers a and b exchange iff ctrl is 1.
func CSwapGates(c *circuit.Circuit, ctrl int, a, b []int) {
	if len(a) != len(b) {
		panic("arith: controlled swap needs equal-width registers")
	}
	for i := range a {
		c.Append(gate.CX, 0, b[i], a[i])
		c.Append(gate.CCX, 0, ctrl, a[i], b[i])
		c.Append(gate.CX, 0, b[i], a[i])
	}
}

// CModMulConstGates appends Beauregard's controlled modular
// multiplication: x ← (k·x) mod N iff ctrl is 1, for gcd(k, N) = 1 and
// x holding a residue. It uses a zeroed work register z of len(x)+1
// qubits, one modular-adder ancilla and one conjunction ancilla, all
// returned to |0>:
//
//	cMULadd(k):  z ← z + k·x  (mod N)   [controlled]
//	cSWAP:       x ↔ z[0:n]             [controlled]
//	cMULadd(k⁻¹) inverse: z ← z − k⁻¹·x (mod N) [controlled] → |0>
func CModMulConstGates(c *circuit.Circuit, ctrl int, k, n uint64, x, z []int, anc, and int, cfg Config) {
	if len(z) != len(x)+1 {
		panic(fmt.Sprintf("arith: work register needs %d qubits, got %d", len(x)+1, len(z)))
	}
	kinv, ok := ModInverse(k, n)
	if !ok {
		panic(fmt.Sprintf("arith: %d has no inverse mod %d", k, n))
	}
	CModMulAddConstGates(c, ctrl, k, n, x, z, anc, and, cfg)
	CSwapGates(c, ctrl, x, z[:len(x)])
	inv := circuit.New(c.NumQubits)
	CModMulAddConstGates(inv, ctrl, kinv, n, x, z, anc, and, cfg)
	c.Compose(inv.Inverse())
}

// ModInverse returns k⁻¹ mod n when gcd(k, n) = 1.
func ModInverse(k, n uint64) (uint64, bool) {
	if n == 0 {
		return 0, false
	}
	k %= n
	var t, newT int64 = 0, 1
	var r, newR = int64(n), int64(k)
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if r != 1 {
		return 0, false
	}
	if t < 0 {
		t += int64(n)
	}
	return uint64(t), true
}

// OrderFindingLayout describes the qubit allocation of the coherent
// order-finding circuit.
type OrderFindingLayout struct {
	Phase []int // t phase-estimation qubits (LSB first)
	X     []int // n-qubit work register, starts |1>
	Z     []int // n+1-qubit multiplication scratch
	Anc   int   // modular-adder ancilla
	And   int   // conjunction ancilla
	Total int
}

// NewOrderFinding builds the complete gate-level order-finding circuit
// for base a modulo n with t phase bits (Shor's quantum core): Hadamard
// wall, controlled modular multiplications by a^(2^k), inverse QFT with
// swap layer. The caller prepares |x> = |1> (see Layout) and measures
// the phase register. Circuit sizes grow fast; t+n <= ~12 keeps
// simulation comfortable.
func NewOrderFinding(a, n uint64, t int, cfg Config) (*circuit.Circuit, OrderFindingLayout) {
	nb := 1
	for uint64(1)<<uint(nb) < n {
		nb++
	}
	lay := OrderFindingLayout{
		Phase: Range(0, t),
		X:     Range(t, nb),
		Z:     Range(t+nb, nb+1),
		Anc:   t + 2*nb + 1,
		And:   t + 2*nb + 2,
		Total: t + 2*nb + 3,
	}
	c := circuit.New(lay.Total)
	// |x> ← |1>.
	c.Append(gate.X, 0, lay.X[0])
	for _, q := range lay.Phase {
		c.Append(gate.H, 0, q)
	}
	// Phase qubit k controls multiplication by a^(2^(t-1-k)): the
	// swap-free inverse QFT expects register position k to carry the
	// (k+1)-digit phase fraction, the same pairing the qpe package
	// validates.
	for k, q := range lay.Phase {
		power := powMod(a, uint64(1)<<uint(t-1-k), n)
		CModMulConstGates(c, q, power, n, lay.X, lay.Z, lay.Anc, lay.And, cfg)
	}
	qft.InverseGates(c, lay.Phase, cfg.Depth)
	return c, lay
}
