package arith

import (
	"fmt"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
)

// Restoring division by a classical constant — the QFT-based division
// the paper's introduction lists among the "slight alterations of the
// same underlying algorithm". Each quotient bit comes from one trial
// subtraction on the Fourier adders: subtract d·2^i, capture the borrow
// (the dividend register's spare top qubit), conditionally restore, and
// invert the borrow into the quotient bit.

// ConstDivGates appends a divider computing, for a classical divisor
// d >= 1:
//
//	y ← y mod d,  q ← y div d
//
// y must hold w+1 qubits with the top qubit |0> on input (it serves as
// the per-step borrow/sign bit) and the dividend value < 2^w; the
// quotient register q (LSB first) receives bit i from the trial
// subtraction of d·2^i and must hold enough qubits that the quotient
// fits (qw bits with dividend < min(2^w, d·2^qw)). Quotient qubits must
// start in |0>.
func ConstDivGates(c *circuit.Circuit, d uint64, y, q []int, cfg Config) {
	if d == 0 {
		panic("arith: division by zero")
	}
	w := len(y) - 1
	if w < 1 {
		panic("arith: dividend register needs at least 2 qubits (value + borrow)")
	}
	for _, yq := range y {
		for _, qq := range q {
			if yq == qq {
				panic("arith: quotient register overlaps the dividend")
			}
		}
	}
	for i := len(q) - 1; i >= 0; i-- {
		step := d << uint(i)
		if step >= 1<<uint(w) {
			// The dividend is < 2^w <= step, so this quotient bit is
			// deterministically zero — and the borrow trick would
			// misfire for small dividends (the wrapped result can stay
			// below 2^w). Skip the step; q[i] stays |0>.
			continue
		}
		// Trial subtraction over the full (w+1)-qubit register: a
		// negative result wraps and raises the top qubit.
		qftSub(c, step, y, cfg)
		// Capture the borrow into the quotient bit (both start at 0).
		c.Append(gate.CX, 0, y[w], q[i])
		// Restore when the subtraction went negative.
		restore := circuit.New(c.NumQubits)
		ConstAddGates(restore, step, y, cfg)
		c.Compose(restore.Controlled(q[i]))
		// Quotient bit is the *success* of the subtraction.
		c.Append(gate.X, 0, q[i])
	}
}

// qftSub appends y ← (y - k) mod 2^len(y) via the Fourier constant
// ladder.
func qftSub(c *circuit.Circuit, k uint64, y []int, cfg Config) {
	inv := circuit.New(c.NumQubits)
	ConstAddGates(inv, k, y, cfg)
	c.Compose(inv.Inverse())
}

// SignedQFMGates appends a two's-complement multiplier: with x and y
// read as signed n- and m-bit integers, the product register z (n+m
// qubits, initially zero) ends holding the signed product in (n+m)-bit
// two's complement. The construction is the unsigned QFM plus two
// sign-correction blocks — the "signed QFM" the paper's conclusions
// call for:
//
//	val(x)·val(y) ≡ x·y − 2^n·x_{n}·y − 2^m·y_{m}·x  (mod 2^(n+m))
//
// so after the unsigned product we subtract y shifted by n controlled
// on x's sign bit, and x shifted by m controlled on y's sign bit.
func SignedQFMGates(c *circuit.Circuit, x, y, z []int, cfg Config) {
	n, m := len(x), len(y)
	if len(z) != n+m {
		panic(fmt.Sprintf("arith: signed product register must hold exactly %d qubits, got %d", n+m, len(z)))
	}
	QFMGates(c, x, y, z, cfg)
	// Subtract y·2^n iff sign(x): a controlled inverse adder on the
	// window starting at z_{n+1}.
	subShifted := func(op []int, shift int, signQubit int) {
		window := z[shift:]
		tmp := circuit.New(c.NumQubits)
		QFAGates(tmp, op, window, cfg)
		c.Compose(tmp.Inverse().Controlled(signQubit))
	}
	subShifted(y, n, x[n-1])
	subShifted(x, m, y[m-1])
}

// NewSignedQFM builds a standalone signed QFM circuit with the register
// layout of NewQFM: product z on qubits 0..n+m-1, multiplicand y on
// n+m..n+2m-1, multiplier x on n+2m..2n+2m-1.
func NewSignedQFM(n, m int, cfg Config) *circuit.Circuit {
	c := circuit.New(2*n + 2*m)
	z := Range(0, n+m)
	y := Range(n+m, m)
	x := Range(n+2*m, n)
	SignedQFMGates(c, x, y, z, cfg)
	return c
}
