package arith

import (
	"fmt"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/qft"
)

// LessThanGates appends a comparator setting flag ← flag ⊕ (y < x) for
// unsigned registers, the classic subtract-and-read-the-sign trick on
// Fourier adders: compute y-x in a register one qubit wider than the
// operands (so the top qubit becomes the borrow/sign bit), copy that bit
// to the flag, then add x back to restore y.
//
// y must hold one more qubit than the value range being compared (its
// top qubit must be 0 on input — callers comparing w-bit values use a
// (w+1)-qubit y register); x may hold at most len(y)-1 qubits. The y
// register is preserved.
func LessThanGates(c *circuit.Circuit, x, y []int, flag int, cfg Config) {
	if len(x) >= len(y) {
		panic(fmt.Sprintf("arith: comparator needs len(x) < len(y); got %d vs %d", len(x), len(y)))
	}
	for _, q := range append(append([]int(nil), x...), y...) {
		if q == flag {
			panic("arith: flag qubit overlaps an operand register")
		}
	}
	msb := y[len(y)-1]
	// y ← y - x; for y < x the subtraction wraps and the top qubit
	// (clear on input) reads 1.
	SubGates(c, x, y, cfg)
	c.Append(gate.CX, 0, msb, flag)
	// Restore y.
	QFAGates(c, x, y, cfg)
}

// EqualZeroGates appends flag ← flag ⊕ (y == 0) using a chain of X
// gates and a multi-controlled NOT built from CCX gates and the given
// ancilla scratch qubits (len(scratch) >= len(y)-2 for len(y) > 2).
// Used with SubGates this yields an equality comparator.
func EqualZeroGates(c *circuit.Circuit, y []int, flag int, scratch []int) {
	w := len(y)
	if w == 0 {
		panic("arith: empty register")
	}
	// Invert so |0...0> becomes |1...1>, then AND the bits.
	for _, q := range y {
		c.Append(gate.X, 0, q)
	}
	mcx(c, y, flag, scratch)
	for _, q := range y {
		c.Append(gate.X, 0, q)
	}
}

// mcx appends a multi-controlled X with the controls ANDed pairwise into
// scratch ancillas (which must be |0> and are restored).
func mcx(c *circuit.Circuit, controls []int, target int, scratch []int) {
	switch len(controls) {
	case 0:
		c.Append(gate.X, 0, target)
		return
	case 1:
		c.Append(gate.CX, 0, controls[0], target)
		return
	case 2:
		c.Append(gate.CCX, 0, controls[0], controls[1], target)
		return
	}
	need := len(controls) - 2
	if len(scratch) < need {
		panic(fmt.Sprintf("arith: mcx with %d controls needs %d scratch qubits, got %d",
			len(controls), need, len(scratch)))
	}
	// Forward AND-chain.
	c.Append(gate.CCX, 0, controls[0], controls[1], scratch[0])
	for i := 2; i < len(controls)-1; i++ {
		c.Append(gate.CCX, 0, controls[i], scratch[i-2], scratch[i-1])
	}
	c.Append(gate.CCX, 0, controls[len(controls)-1], scratch[need-1], target)
	// Uncompute.
	for i := len(controls) - 2; i >= 2; i-- {
		c.Append(gate.CCX, 0, controls[i], scratch[i-2], scratch[i-1])
	}
	c.Append(gate.CCX, 0, controls[0], controls[1], scratch[0])
}

// TextbookQFTGates appends the QFT *with* the final qubit-reversal SWAP
// layer, matching the textbook matrix F_{k,y} = e^{2πi ky/N}/√N exactly
// (the arithmetic circuits use the swap-free Draper convention; this
// variant exists for users composing with phase-estimation routines that
// expect standard ordering).
func TextbookQFTGates(c *circuit.Circuit, reg []int, d int) {
	qft.Gates(c, reg, d)
	for i, j := 0, len(reg)-1; i < j; i, j = i+1, j-1 {
		c.Append(gate.SWAP, 0, reg[i], reg[j])
	}
}
