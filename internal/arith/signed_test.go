package arith_test

import (
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/metrics"
)

// TestNewQFSExhaustive pins the standalone subtractor constructor's
// register layout (x on 0..a-1, y on a..a+w-1, like NewQFA) over every
// input pair: y ← (y − x) mod 2^w, which under two's complement is
// simultaneously the signed difference re-encoded in w bits.
func TestNewQFSExhaustive(t *testing.T) {
	a, w := 3, 3
	c := arith.NewQFS(a, w, arith.DefaultConfig())
	for x := 0; x < 1<<uint(a); x++ {
		for y := 0; y < 1<<uint(w); y++ {
			out := dominantOutput(t, c, a+w, x|y<<uint(a))
			gotX := out & (1<<uint(a) - 1)
			gotY := out >> uint(a)
			want := (y - x) & (1<<uint(w) - 1)
			if gotX != x || gotY != want {
				t.Fatalf("QFS(%d,%d): %d-%d gave (x=%d,y=%d), want (x=%d,y=%d)",
					a, w, y, x, gotX, gotY, x, want)
			}
			if s := metrics.SignedValue(gotY, w); s != metrics.SignedValue((metrics.SignedValue(y, w)-metrics.SignedValue(x, a))&(1<<uint(w)-1), w) {
				t.Fatalf("QFS signed decode mismatch at x=%d y=%d: %d", x, y, s)
			}
		}
	}
}

// TestNewSignedQFMExhaustive pins the standalone signed multiplier
// constructor (NewQFM's layout: z on 0..n+m-1, y on n+m..n+2m-1, x on
// n+2m..2n+2m-1) against the two's-complement product over every
// operand pair.
func TestNewSignedQFMExhaustive(t *testing.T) {
	n, m := 2, 2
	c := arith.NewSignedQFM(n, m, arith.DefaultConfig())
	zw := n + m
	for x := 0; x < 1<<uint(n); x++ {
		for y := 0; y < 1<<uint(m); y++ {
			init := y<<uint(zw) | x<<uint(zw+m)
			out := dominantOutput(t, c, 2*n+2*m, init)
			gotZ := out & (1<<uint(zw) - 1)
			want := (metrics.SignedValue(x, n) * metrics.SignedValue(y, m)) & (1<<uint(zw) - 1)
			if gotZ != want {
				t.Fatalf("SignedQFM(%d,%d): %d×%d gave z=%d, want %d",
					n, m, metrics.SignedValue(x, n), metrics.SignedValue(y, m), gotZ, want)
			}
		}
	}
}
