package arith_test

import (
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/sim"
)

// runModCircuit applies c to |y>|anc=0> and asserts a unique basis
// output, returning (yOut, ancOut).
func runModCircuit(t *testing.T, c *circuit.Circuit, w int, y int) (int, int) {
	t.Helper()
	out := dominantOutput(t, c, w+1, y)
	return out & (1<<uint(w) - 1), out >> uint(w)
}

func TestModAddConstExhaustive(t *testing.T) {
	// N=13 on a 5-qubit register (2^4 = 16 >= 13), ancilla on qubit 5.
	const N = 13
	w := 5
	for a := uint64(0); a < N; a++ {
		c := circuit.New(w + 1)
		arith.ModAddConstGates(c, a, N, arith.Range(0, w), w, arith.DefaultConfig())
		for y := 0; y < N; y++ {
			got, anc := runModCircuit(t, c, w, y)
			if anc != 0 {
				t.Fatalf("a=%d y=%d: ancilla not restored", a, y)
			}
			if want := (y + int(a)) % N; got != want {
				t.Fatalf("(%d + %d) mod %d = %d, want %d", y, a, N, got, want)
			}
		}
	}
}

func TestModAddConstPowerOfTwoModulus(t *testing.T) {
	const N = 8
	w := 4
	for _, a := range []uint64{0, 1, 5, 7} {
		c := circuit.New(w + 1)
		arith.ModAddConstGates(c, a, N, arith.Range(0, w), w, arith.DefaultConfig())
		for y := 0; y < N; y++ {
			got, anc := runModCircuit(t, c, w, y)
			if anc != 0 || got != (y+int(a))%N {
				t.Fatalf("a=%d y=%d: got %d anc %d", a, y, got, anc)
			}
		}
	}
}

func TestModAddConstOnSuperposition(t *testing.T) {
	// Superposed register input must map each branch independently.
	const N = 11
	w := 5
	a := uint64(7)
	c := circuit.New(w + 1)
	arith.ModAddConstGates(c, a, N, arith.Range(0, w), w, arith.DefaultConfig())
	st := sim.NewState(w + 1)
	amps := make([]complex128, st.Dim())
	y1, y2 := 3, 9
	amps[y1] = complex(0.6, 0)
	amps[y2] = complex(0.8, 0)
	st.SetAmplitudes(amps)
	st.ApplyCircuit(c)
	p1 := st.Probability((y1 + 7) % N)
	p2 := st.Probability((y2 + 7) % N)
	if p1 < 0.35 || p1 > 0.37 || p2 < 0.63 || p2 > 0.65 {
		t.Errorf("superposed branches wrong: %g, %g (want 0.36, 0.64)", p1, p2)
	}
}

func TestCModAddConst(t *testing.T) {
	const N = 13
	w := 5
	a := uint64(6)
	ctrl := w + 1
	c := circuit.New(w + 2)
	arith.CModAddConstGates(c, ctrl, a, N, arith.Range(0, w), w, arith.DefaultConfig())
	for y := 0; y < N; y++ {
		// Control off: unchanged, ancilla clear.
		out := dominantOutput(t, c, w+2, y)
		if out != y {
			t.Fatalf("ctrl=0 y=%d: got %d", y, out)
		}
		// Control on: modular add.
		out = dominantOutput(t, c, w+2, y|1<<uint(ctrl))
		gotY := out & (1<<uint(w) - 1)
		anc := (out >> uint(w)) & 1
		if anc != 0 || gotY != (y+int(a))%N {
			t.Fatalf("ctrl=1 y=%d: got %d anc %d", y, gotY, anc)
		}
	}
}

func TestModMulAddConst(t *testing.T) {
	// z ← (z + k·x) mod N with x on 3 qubits, z on 5, anc on 8.
	const N = 13
	xw, zw := 3, 5
	for _, k := range []uint64{1, 5, 12} {
		c := circuit.New(xw + zw + 1)
		x := arith.Range(0, xw)
		z := arith.Range(xw, zw)
		arith.ModMulAddConstGates(c, k, N, x, z, xw+zw, arith.DefaultConfig())
		for xv := 0; xv < 1<<uint(xw); xv++ {
			for _, zv := range []int{0, 1, 7, 12} {
				init := xv | zv<<uint(xw)
				out := dominantOutput(t, c, xw+zw+1, init)
				gotX := out & 7
				gotZ := (out >> uint(xw)) & 31
				anc := out >> uint(xw+zw)
				want := (zv + int(k)*xv) % N
				if gotX != xv || anc != 0 || gotZ != want {
					t.Fatalf("k=%d x=%d z=%d: got z=%d x=%d anc=%d, want z=%d", k, xv, zv, gotZ, gotX, anc, want)
				}
			}
		}
	}
}

func TestModAddValidation(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	cfg := arith.DefaultConfig()
	assertPanic("a >= N", func() {
		c := circuit.New(6)
		arith.ModAddConstGates(c, 13, 13, arith.Range(0, 5), 5, cfg)
	})
	assertPanic("register too small", func() {
		c := circuit.New(5)
		arith.ModAddConstGates(c, 3, 13, arith.Range(0, 4), 4, cfg)
	})
	assertPanic("ancilla overlap", func() {
		c := circuit.New(5)
		arith.ModAddConstGates(c, 3, 13, arith.Range(0, 5), 2, cfg)
	})
}

func TestPowMod(t *testing.T) {
	cases := []struct{ a, e, n, want uint64 }{
		{2, 10, 1000, 24}, {7, 0, 13, 1}, {3, 4, 5, 1}, {10, 3, 17, 14},
	}
	for _, c := range cases {
		if got := arith.PowMod(c.a, c.e, c.n); got != c.want {
			t.Errorf("PowMod(%d,%d,%d) = %d, want %d", c.a, c.e, c.n, got, c.want)
		}
	}
}
