package arith

import (
	"fmt"

	"qfarith/internal/circuit"
	"qfarith/internal/qft"
)

// QFMGates appends the weighted-sum Quantum Fourier Multiplier (paper
// Fig. 4): for each multiplier qubit x_i, a cQFA controlled by x_i adds
// the multiplicand y into the product-register window z_{i+m} … z_i
// (least-significant window qubit z_i carries weight 2^(i-1), so the
// block contributes x_i · 2^(i-1) · y). The product register z must hold
// len(x)+len(y) qubits and is normally initialized to zero, after which
// it ends in |x·y>. Both multiplicand registers are preserved.
//
// Window geometry: block i spans min(len(y)+1, len(z)-i+1) qubits so the
// final block tops out at z's most significant qubit — the geometry that
// reproduces the paper's Table I gate counts exactly (four 5-qubit
// windows for n=m=4).
func QFMGates(c *circuit.Circuit, x, y, z []int, cfg Config) {
	n, m := len(x), len(y)
	if len(z) < n+m {
		panic(fmt.Sprintf("arith: product register needs %d qubits, got %d", n+m, len(z)))
	}
	for i := 1; i <= n; i++ {
		hi := i + m // window top index (1-based, inclusive)
		if hi > len(z) {
			hi = len(z)
		}
		window := z[i-1 : hi]
		CQFAGates(c, x[i-1], y, window, cfg)
	}
}

// NewQFM builds a standalone QFM circuit with the product register z on
// qubits 0..n+m-1, the multiplicand y on n+m..n+2m-1, and the multiplier
// x on n+2m..2n+2m-1 (all least-significant-first).
func NewQFM(n, m int, cfg Config) *circuit.Circuit {
	c := circuit.New(2*n + 2*m)
	z := Range(0, n+m)
	y := Range(n+m, m)
	x := Range(n+2*m, n)
	QFMGates(c, x, y, z, cfg)
	return c
}

// ConstMulAddGates appends a multiply-accumulate by a classical constant:
// z ← (z + k·x) mod 2^len(z), built from one constant-controlled phase
// ladder per multiplier qubit. This is the constant-factor variant the
// paper's §3 closing remark describes, and the core of Shor-style
// modular-exponentiation circuits.
func ConstMulAddGates(c *circuit.Circuit, k uint64, x, z []int, cfg Config) {
	// For each x_i, add (k << (i-1)) into z under control of x_i. Using
	// the Fourier basis once for the whole accumulation keeps the cost at
	// a single QFT pair.
	tmp := circuit.New(c.NumQubits)
	for i := 1; i <= len(x); i++ {
		shifted := circuit.New(c.NumQubits)
		ConstPhaseAddGates(shifted, k<<(uint(i)-1), z, cfg.AddCut)
		tmp.Compose(shifted.Controlled(x[i-1]))
	}
	// QFT(z) · Σ_i ctrl-phases · QFT⁻¹(z)
	out := circuit.New(c.NumQubits)
	qft.Gates(out, z, cfg.Depth)
	out.Compose(tmp)
	qft.InverseGates(out, z, cfg.Depth)
	c.Compose(out)
}

// MACGates appends a three-register multiply-accumulate
// z ← (z + x·y) mod 2^len(z), valid for any initial z. Unlike QFMGates —
// whose minimal (m+1)-qubit windows rely on the product register starting
// at zero so no window ever overflows — each MAC block's adder window
// extends to the top of z, so carries propagate fully at the cost of
// wider cQFTs.
func MACGates(c *circuit.Circuit, x, y, z []int, cfg Config) {
	n := len(x)
	for i := 1; i <= n; i++ {
		window := z[i-1:]
		CQFAGates(c, x[i-1], y, window, cfg)
	}
}

// SquareGates appends z ← (z + x²) mod 2^len(z) by multiply-accumulating
// x with itself one multiplier bit at a time. A direct QFM(x,x,z) is
// invalid — the same qubit would control and be added — so the classic
// trick decomposes x² = Σ_i 2^(i-1)·x_i·x and, within each block, folds
// the diagonal term x_i·x_i = x_i into the constant part of the ladder.
func SquareGates(c *circuit.Circuit, x, z []int, cfg Config) {
	n := len(x)
	if len(z) < 2*n {
		panic(fmt.Sprintf("arith: square register needs %d qubits, got %d", 2*n, len(z)))
	}
	for i := 1; i <= n; i++ {
		// Window extends to the top of z so the block is exact for any
		// accumulated value (see MACGates).
		window := z[i-1:]
		// Build the block that, once controlled by x_i, contributes
		// 2^(i-1)·x_i·x: inside it, add every off-diagonal bit x_j
		// (j != i) under its own control, plus the diagonal self-term —
		// x_i·x_i = x_i is absorbed by the outer control, leaving an
		// unconditional constant add of 2^(i-1) within the window.
		tmp := circuit.New(c.NumQubits)
		qft.Gates(tmp, window, cfg.Depth)
		for j := 1; j <= n; j++ {
			if j == i {
				continue
			}
			addSingleBit(tmp, x[j-1], j, window, cfg.AddCut)
		}
		ConstPhaseAddGates(tmp, 1<<(uint(i)-1), window, cfg.AddCut)
		qft.InverseGates(tmp, window, cfg.Depth)
		c.Compose(tmp.Controlled(x[i-1]))
	}
}

// addSingleBit appends the Fourier-domain rotations adding bit j of an
// addend (qubit xq, weight 2^(j-1)) into window y.
func addSingleBit(c *circuit.Circuit, xq, j int, y []int, addCut int) {
	one := circuit.New(c.NumQubits)
	shifted := circuit.New(c.NumQubits)
	ConstPhaseAddGates(shifted, 1<<(uint(j)-1), y, addCut)
	one.Compose(shifted.Controlled(xq))
	c.Compose(one)
}
