package arith_test

import (
	"math"
	"testing"
	"testing/quick"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/qft"
	"qfarith/internal/sim"
	"qfarith/internal/testutil"
)

// runOnBasis applies c to |x> ⊗ |y> (x in register xreg, y in yreg) and
// returns the basis state index with the dominant probability, which for
// an exact arithmetic circuit is the unique output.
func dominantOutput(t *testing.T, c *circuit.Circuit, n int, init int) int {
	t.Helper()
	st := sim.NewState(n)
	st.SetBasis(init)
	st.ApplyCircuit(c)
	best, bestP := -1, 0.0
	for i := 0; i < st.Dim(); i++ {
		if p := st.Probability(i); p > bestP {
			best, bestP = i, p
		}
	}
	if bestP < 1-1e-9 {
		t.Fatalf("output not a basis state: best P = %g", bestP)
	}
	return best
}

func TestQFAExhaustive(t *testing.T) {
	// x on qubits 0..a-1, y on a..a+w-1; exhaustive over all inputs.
	cases := []struct{ a, w int }{{1, 1}, {1, 2}, {2, 2}, {2, 3}, {3, 3}, {3, 4}, {4, 4}}
	for _, cse := range cases {
		c := arith.NewQFA(cse.a, cse.w, arith.DefaultConfig())
		n := cse.a + cse.w
		for x := 0; x < 1<<uint(cse.a); x++ {
			for y := 0; y < 1<<uint(cse.w); y++ {
				init := x | y<<uint(cse.a)
				out := dominantOutput(t, c, n, init)
				gotX := out & (1<<uint(cse.a) - 1)
				gotY := out >> uint(cse.a)
				wantY := (x + y) & (1<<uint(cse.w) - 1)
				if gotX != x || gotY != wantY {
					t.Fatalf("QFA(a=%d,w=%d): %d+%d gave (x=%d,y=%d), want (x=%d,y=%d)",
						cse.a, cse.w, x, y, gotX, gotY, x, wantY)
				}
			}
		}
	}
}

func TestQFAPaperGeometryRandom(t *testing.T) {
	// The paper's configuration: 7-bit addend, 8-bit sum register.
	c := arith.NewQFA(7, 8, arith.DefaultConfig())
	rng := testutil.NewRand(1234)
	for trial := 0; trial < 25; trial++ {
		x := rng.IntN(128)
		y := rng.IntN(256)
		out := dominantOutput(t, c, 15, x|y<<7)
		gotY := out >> 7
		if want := (x + y) & 255; gotY != want {
			t.Fatalf("%d + %d = %d, want %d", x, y, gotY, want)
		}
	}
}

func TestQFAOnSuperposition(t *testing.T) {
	// Order-2 y: |x> ⊗ (|y1>+|y2>)/√2 → |x> ⊗ (|x+y1>+|x+y2>)/√2.
	a, w := 3, 4
	c := arith.NewQFA(a, w, arith.DefaultConfig())
	x, y1, y2 := 5, 3, 9
	st := sim.NewState(a + w)
	amps := make([]complex128, st.Dim())
	amps[x|y1<<uint(a)] = complex(1/math.Sqrt2, 0)
	amps[x|y2<<uint(a)] = complex(1/math.Sqrt2, 0)
	st.SetAmplitudes(amps)
	st.ApplyCircuit(c)
	p1 := st.Probability(x | ((x + y1) & 15 << uint(a)))
	p2 := st.Probability(x | ((x + y2) & 15 << uint(a)))
	if math.Abs(p1-0.5) > 1e-9 || math.Abs(p2-0.5) > 1e-9 {
		t.Fatalf("superposed add probabilities %g, %g, want 0.5 each", p1, p2)
	}
}

func TestSubtractorExhaustive(t *testing.T) {
	a, w := 3, 3
	c := circuit.New(a + w)
	arith.SubGates(c, arith.Range(0, a), arith.Range(a, w), arith.DefaultConfig())
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			out := dominantOutput(t, c, a+w, x|y<<uint(a))
			gotY := out >> uint(a)
			if want := (y - x) & 7; gotY != want {
				t.Fatalf("%d - %d = %d, want %d", y, x, gotY, want)
			}
		}
	}
}

func TestSubUndoesAdd(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := testutil.NewRand(seed)
		a, w := 3, 4
		c := circuit.New(a + w)
		cfg := arith.DefaultConfig()
		arith.QFAGates(c, arith.Range(0, a), arith.Range(a, w), cfg)
		arith.SubGates(c, arith.Range(0, a), arith.Range(a, w), cfg)
		x, y := rng.IntN(8), rng.IntN(16)
		st := sim.NewState(a + w)
		st.SetBasis(x | y<<uint(a))
		st.ApplyCircuit(c)
		return st.Probability(x|y<<uint(a)) > 1-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConstAddExhaustive(t *testing.T) {
	w := 4
	for k := uint64(0); k < 16; k++ {
		c := circuit.New(w)
		arith.ConstAddGates(c, k, arith.Range(0, w), arith.DefaultConfig())
		for y := 0; y < 16; y++ {
			out := dominantOutput(t, c, w, y)
			if want := (y + int(k)) & 15; out != want {
				t.Fatalf("%d + const %d = %d, want %d", y, k, out, want)
			}
		}
	}
}

func TestCQFAControlBehaviour(t *testing.T) {
	a, w := 2, 3
	n := a + w + 1
	ctrl := a + w
	c := circuit.New(n)
	arith.CQFAGates(c, ctrl, arith.Range(0, a), arith.Range(a, w), arith.DefaultConfig())
	for x := 0; x < 4; x++ {
		for y := 0; y < 8; y++ {
			// Control off: nothing happens.
			out := dominantOutput(t, c, n, x|y<<uint(a))
			if out != x|y<<uint(a) {
				t.Fatalf("cQFA acted with control 0 on x=%d y=%d", x, y)
			}
			// Control on: adds.
			init := x | y<<uint(a) | 1<<uint(ctrl)
			out = dominantOutput(t, c, n, init)
			wantY := (x + y) & 7
			if want := x | wantY<<uint(a) | 1<<uint(ctrl); out != want {
				t.Fatalf("cQFA with control 1: x=%d y=%d gave %d, want %d", x, y, out, want)
			}
		}
	}
}

func TestQFMExhaustive(t *testing.T) {
	// z on 0..n+m-1, y on n+m.., x on n+2m..; exhaustive n=m=3.
	n, m := 3, 3
	c := arith.NewQFM(n, m, arith.DefaultConfig())
	tq := 2*n + 2*m
	for x := 0; x < 1<<uint(n); x++ {
		for y := 0; y < 1<<uint(m); y++ {
			init := y<<uint(n+m) | x<<uint(n+2*m)
			out := dominantOutput(t, c, tq, init)
			gotZ := out & (1<<uint(n+m) - 1)
			if gotZ != x*y {
				t.Fatalf("QFM: %d*%d gave z=%d, want %d", x, y, gotZ, x*y)
			}
			if out>>uint(n+m) != init>>uint(n+m) {
				t.Fatalf("QFM: %d*%d disturbed the operand registers", x, y)
			}
		}
	}
}

func TestQFMPaperGeometryRandom(t *testing.T) {
	// Paper configuration n=m=4, 8-qubit product register (16 qubits).
	c := arith.NewQFM(4, 4, arith.DefaultConfig())
	rng := testutil.NewRand(777)
	for trial := 0; trial < 8; trial++ {
		x := rng.IntN(16)
		y := rng.IntN(16)
		init := y<<8 | x<<12
		out := dominantOutput(t, c, 16, init)
		if gotZ := out & 255; gotZ != x*y {
			t.Fatalf("QFM(4,4): %d*%d = %d, want %d", x, y, gotZ, x*y)
		}
	}
}

func TestQFMAccumulates(t *testing.T) {
	// MAC semantics: z starts nonzero, ends at z + x·y (mod 2^(n+m)).
	n, m := 2, 2
	c := circuit.New(2*n + 2*m)
	z := arith.Range(0, n+m)
	y := arith.Range(n+m, m)
	x := arith.Range(n+2*m, n)
	arith.MACGates(c, x, y, z, arith.DefaultConfig())
	for x0 := 0; x0 < 4; x0++ {
		for y0 := 0; y0 < 4; y0++ {
			for z0 := 0; z0 < 16; z0++ {
				init := z0 | y0<<4 | x0<<6
				out := dominantOutput(t, c, 8, init)
				if gotZ := out & 15; gotZ != (z0+x0*y0)&15 {
					t.Fatalf("MAC: %d + %d*%d gave %d, want %d", z0, x0, y0, gotZ, (z0+x0*y0)&15)
				}
			}
		}
	}
}

func TestConstMulAdd(t *testing.T) {
	n, w := 3, 6
	for _, k := range []uint64{0, 1, 3, 5, 7} {
		c := circuit.New(n + w)
		x := arith.Range(0, n)
		z := arith.Range(n, w)
		arith.ConstMulAddGates(c, k, x, z, arith.DefaultConfig())
		for x0 := 0; x0 < 8; x0++ {
			for _, z0 := range []int{0, 1, 17, 63} {
				init := x0 | z0<<uint(n)
				out := dominantOutput(t, c, n+w, init)
				gotZ := out >> uint(n)
				if want := (z0 + int(k)*x0) & 63; gotZ != want {
					t.Fatalf("const-MAC k=%d: z=%d x=%d gave %d, want %d", k, z0, x0, gotZ, want)
				}
			}
		}
	}
}

func TestSquareExhaustive(t *testing.T) {
	n := 3
	c := circuit.New(3 * n)
	x := arith.Range(0, n)
	z := arith.Range(n, 2*n)
	arith.SquareGates(c, x, z, arith.DefaultConfig())
	for x0 := 0; x0 < 8; x0++ {
		out := dominantOutput(t, c, 3*n, x0)
		gotZ := out >> uint(n)
		if gotZ != x0*x0 {
			t.Fatalf("square: %d² gave %d, want %d", x0, gotZ, x0*x0)
		}
	}
}

func TestAddRotationCountAnchors(t *testing.T) {
	// Table I anchors: 35 rotations for the 7→8 add, 14 for the 4→5 add.
	if got := arith.AddRotationCount(7, 8, arith.FullAdd); got != 35 {
		t.Errorf("AddRotationCount(7,8) = %d, want 35", got)
	}
	if got := arith.AddRotationCount(4, 5, arith.FullAdd); got != 14 {
		t.Errorf("AddRotationCount(4,5) = %d, want 14", got)
	}
	// The cutoff monotonically removes rotations.
	prev := 0
	for cut := 1; cut <= 8; cut++ {
		got := arith.AddRotationCount(7, 8, cut)
		if got < prev {
			t.Errorf("AddRotationCount not monotone at cut %d", cut)
		}
		prev = got
	}
	if prev != 35 {
		t.Errorf("AddRotationCount at max cutoff = %d, want 35", prev)
	}
}

func TestApproximateDepthStillAddsSmallOperands(t *testing.T) {
	// With generous depth relative to the register, the AQFT adder stays
	// exact; depth 1 on wide registers is allowed to fail (that is the
	// paper's point), so only sanity-check d >= w-2 here.
	a, w := 3, 4
	for _, d := range []int{w - 2, w - 1} {
		c := arith.NewQFA(a, w, arith.Config{Depth: d, AddCut: arith.FullAdd})
		fails := 0
		for x := 0; x < 8; x++ {
			for y := 0; y < 16; y++ {
				st := sim.NewState(a + w)
				st.SetBasis(x | y<<uint(a))
				st.ApplyCircuit(c)
				want := x | ((x+y)&15)<<uint(a)
				best, bestP := -1, 0.0
				for i := 0; i < st.Dim(); i++ {
					if p := st.Probability(i); p > bestP {
						best, bestP = i, p
					}
				}
				if best != want {
					fails++
				}
			}
		}
		if d == w-1 && fails > 0 {
			t.Errorf("full-depth adder failed %d/128 cases", fails)
		}
		if d == w-2 && fails > 24 {
			t.Errorf("depth-%d adder failed %d/128 cases, expected mostly correct", d, fails)
		}
	}
}

func TestQFADepthUsesQFTFull(t *testing.T) {
	cfgFull := arith.Config{Depth: qft.Full, AddCut: arith.FullAdd}
	cfg7 := arith.Config{Depth: 7, AddCut: arith.FullAdd}
	a := arith.NewQFA(7, 8, cfgFull)
	b := arith.NewQFA(7, 8, cfg7)
	if len(a.Ops) != len(b.Ops) {
		t.Errorf("depth 7 should equal Full for the 8-qubit register: %d vs %d ops", len(b.Ops), len(a.Ops))
	}
}
