package arith_test

import (
	"math"
	"math/cmplx"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/qft"
	"qfarith/internal/sim"
)

func TestLessThanExhaustive(t *testing.T) {
	// Compare 3-bit values: x on qubits 0..2, y on 3..6 (4 qubits, top
	// clear), flag on 7.
	xw, yw := 3, 4
	flag := xw + yw
	c := circuit.New(flag + 1)
	arith.LessThanGates(c, arith.Range(0, xw), arith.Range(xw, yw), flag, arith.DefaultConfig())
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			init := x | y<<uint(xw)
			out := dominantOutput(t, c, flag+1, init)
			gotFlag := out >> uint(flag)
			gotX := out & 7
			gotY := (out >> uint(xw)) & 15
			wantFlag := 0
			if y < x {
				wantFlag = 1
			}
			if gotFlag != wantFlag || gotX != x || gotY != y {
				t.Fatalf("x=%d y=%d: flag=%d x=%d y=%d (want flag=%d, operands preserved)",
					x, y, gotFlag, gotX, gotY, wantFlag)
			}
		}
	}
}

func TestLessThanValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for equal-width registers")
		}
	}()
	c := circuit.New(7)
	arith.LessThanGates(c, arith.Range(0, 3), arith.Range(3, 3), 6, arith.DefaultConfig())
}

func TestEqualZero(t *testing.T) {
	// y on 0..3, flag 4, scratch 5..6.
	c := circuit.New(7)
	arith.EqualZeroGates(c, arith.Range(0, 4), 4, []int{5, 6})
	for y := 0; y < 16; y++ {
		out := dominantOutput(t, c, 7, y)
		gotFlag := (out >> 4) & 1
		scratch := out >> 5
		wantFlag := 0
		if y == 0 {
			wantFlag = 1
		}
		if gotFlag != wantFlag || out&15 != y || scratch != 0 {
			t.Fatalf("y=%d: out=%b want flag %d, scratch clear, y preserved", y, out, wantFlag)
		}
	}
}

func TestEqualZeroSmallRegisters(t *testing.T) {
	for w := 1; w <= 2; w++ {
		c := circuit.New(w + 1)
		arith.EqualZeroGates(c, arith.Range(0, w), w, nil)
		for y := 0; y < 1<<uint(w); y++ {
			out := dominantOutput(t, c, w+1, y)
			wantFlag := 0
			if y == 0 {
				wantFlag = 1
			}
			if out>>uint(w) != wantFlag {
				t.Fatalf("w=%d y=%d: flag %d", w, y, out>>uint(w))
			}
		}
	}
}

func TestTextbookQFTMatchesDFT(t *testing.T) {
	// With the swap layer the circuit matches the plain DFT matrix.
	w := 4
	n := 1 << uint(w)
	c := circuit.New(w)
	arith.TextbookQFTGates(c, arith.Range(0, w), qft.Full)
	for y := 0; y < n; y++ {
		st := sim.NewState(w)
		st.SetBasis(y)
		st.ApplyCircuit(c)
		for k := 0; k < n; k++ {
			want := cmplx.Exp(complex(0, 2*math.Pi*float64(y)*float64(k)/float64(n))) /
				complex(math.Sqrt(float64(n)), 0)
			if cmplx.Abs(st.Amps()[k]-want) > 1e-9 {
				t.Fatalf("y=%d k=%d: %v, want %v", y, k, st.Amps()[k], want)
			}
		}
	}
}
