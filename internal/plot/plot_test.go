package plot_test

import (
	"strings"
	"testing"

	"qfarith/internal/plot"
)

func TestRenderBasics(t *testing.T) {
	var c plot.Chart
	c.Title = "success vs rate"
	c.XLabel = "rate%"
	c.YLabel = "success%"
	c.Add(plot.Series{Label: "d=1", X: []float64{0, 1, 2}, Y: []float64{100, 80, 40}})
	c.Add(plot.Series{Label: "full", X: []float64{0, 1, 2}, Y: []float64{100, 90, 20}})
	out := c.Render()
	for _, want := range []string{"success vs rate", "d=1", "full", "x: rate%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "*") {
		t.Error("default markers not used")
	}
}

func TestRenderEmpty(t *testing.T) {
	var c plot.Chart
	if out := c.Render(); !strings.Contains(out, "empty") {
		t.Errorf("empty chart rendered %q", out)
	}
}

func TestRenderFixedScale(t *testing.T) {
	lo, hi := 0.0, 100.0
	c := plot.Chart{YMin: &lo, YMax: &hi, Height: 5, Width: 20}
	c.Add(plot.Series{Label: "s", X: []float64{0, 1}, Y: []float64{50, 50}})
	out := c.Render()
	if !strings.Contains(out, "100.00") || !strings.Contains(out, "0.00") {
		t.Errorf("fixed scale not honored:\n%s", out)
	}
}

func TestMarkerPlacementCorners(t *testing.T) {
	c := plot.Chart{Width: 11, Height: 5}
	c.Add(plot.Series{Label: "pt", X: []float64{0, 10}, Y: []float64{0, 100}, Marker: '#'})
	out := c.Render()
	lines := strings.Split(out, "\n")
	// Row 0 (ymax) must contain the right-edge marker; the last grid row
	// the left-edge marker.
	if !strings.Contains(lines[0], "#|") {
		t.Errorf("top-right marker missing: %q", lines[0])
	}
	if !strings.Contains(lines[4], "|#") {
		t.Errorf("bottom-left marker missing: %q", lines[4])
	}
}

func TestMismatchedSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched series")
		}
	}()
	var c plot.Chart
	c.Add(plot.Series{Label: "bad", X: []float64{1}, Y: []float64{1, 2}})
}
