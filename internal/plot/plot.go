// Package plot renders small ASCII line/scatter charts for terminal
// output and the experiment reports — enough to eyeball the paper's
// success-rate-vs-error-rate panels without leaving the shell.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Label  string
	X, Y   []float64
	Marker rune
}

// Chart collects series and axis configuration.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 60)
	Height int // plot rows (default 16)
	YMin   *float64
	YMax   *float64
	series []Series
}

// DefaultMarkers cycles across series without explicit markers.
var DefaultMarkers = []rune{'o', '*', '+', 'x', '#', '@', '%'}

// Add appends a series; X and Y must have equal lengths.
func (c *Chart) Add(s Series) {
	if len(s.X) != len(s.Y) {
		panic(fmt.Sprintf("plot: series %q has %d x vs %d y", s.Label, len(s.X), len(s.Y)))
	}
	if s.Marker == 0 {
		s.Marker = DefaultMarkers[len(c.series)%len(DefaultMarkers)]
	}
	c.series = append(c.series, s)
}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return "(empty chart)\n"
	}
	if c.YMin != nil {
		ymin = *c.YMin
	}
	if c.YMax != nil {
		ymax = *c.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", w))
	}
	for _, s := range c.series {
		for i := range s.X {
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(w-1)))
			row := int(math.Round((ymax - s.Y[i]) / (ymax - ymin) * float64(h-1)))
			if col < 0 || col >= w || row < 0 || row >= h {
				continue
			}
			grid[row][col] = s.Marker
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for r, row := range grid {
		yVal := ymax - (ymax-ymin)*float64(r)/float64(h-1)
		fmt.Fprintf(&sb, "%8.2f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&sb, "%8s +%s+\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&sb, "%8s  %-*.3g%*.3g\n", "", w/2, xmin, w-w/2, xmax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&sb, "%8s  x: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	for _, s := range c.series {
		fmt.Fprintf(&sb, "%8s  %c %s\n", "", s.Marker, s.Label)
	}
	return sb.String()
}
