// Package qint models the paper's quantum integers (qintegers): a
// register of qubits holding a superposition of integer states
// |y> = Σ p_i |i>, with an order of superposition equal to the number of
// distinct integers with nonzero amplitude.
//
// Two preparation paths are provided: direct amplitude injection (what
// the paper effectively does — Qiskit `initialize` with all noise
// disabled) and a gate-based initializer that synthesizes the
// preparation circuit from multiplexed RY/RZ rotations (Möttönen et al.,
// the reverse of the Shende decomposition the paper cites), emitting
// only RY, RZ and CX gates.
package qint

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// Term is one integer component of a qinteger.
type Term struct {
	Value int
	Amp   complex128
}

// QInt is a qinteger: a superposition of integer states on Width qubits.
type QInt struct {
	Width int
	Terms []Term
}

// NewBasis returns the order-1 qinteger |value> on width qubits.
func NewBasis(width, value int) QInt {
	q := QInt{Width: width, Terms: []Term{{Value: value, Amp: 1}}}
	q.mustValidate()
	return q
}

// NewUniform returns a qinteger with equal real amplitudes on the given
// distinct values — the paper's evenly-distributed superpositions.
func NewUniform(width int, values ...int) QInt {
	if len(values) == 0 {
		panic("qint: need at least one value")
	}
	amp := complex(1/math.Sqrt(float64(len(values))), 0)
	q := QInt{Width: width}
	for _, v := range values {
		q.Terms = append(q.Terms, Term{Value: v, Amp: amp})
	}
	q.mustValidate()
	return q
}

// New returns a qinteger with explicit terms, normalized.
func New(width int, terms []Term) QInt {
	q := QInt{Width: width, Terms: append([]Term(nil), terms...)}
	q.Normalize()
	q.mustValidate()
	return q
}

func (q *QInt) mustValidate() {
	if q.Width <= 0 || q.Width > 30 {
		panic(fmt.Sprintf("qint: invalid width %d", q.Width))
	}
	seen := make(map[int]bool, len(q.Terms))
	for _, t := range q.Terms {
		if t.Value < 0 || t.Value >= 1<<uint(q.Width) {
			panic(fmt.Sprintf("qint: value %d out of range for %d qubits", t.Value, q.Width))
		}
		if seen[t.Value] {
			panic(fmt.Sprintf("qint: duplicate value %d", t.Value))
		}
		seen[t.Value] = true
	}
}

// Order returns the order of superposition: the number of terms with
// nonzero amplitude.
func (q QInt) Order() int {
	n := 0
	for _, t := range q.Terms {
		if t.Amp != 0 {
			n++
		}
	}
	return n
}

// Normalize rescales amplitudes to unit total probability.
func (q *QInt) Normalize() {
	var s float64
	for _, t := range q.Terms {
		s += real(t.Amp)*real(t.Amp) + imag(t.Amp)*imag(t.Amp)
	}
	if s == 0 {
		panic("qint: zero state")
	}
	inv := complex(1/math.Sqrt(s), 0)
	for i := range q.Terms {
		q.Terms[i].Amp *= inv
	}
}

// Amplitudes returns the dense 2^Width amplitude vector.
func (q QInt) Amplitudes() []complex128 {
	out := make([]complex128, 1<<uint(q.Width))
	for _, t := range q.Terms {
		out[t.Value] = t.Amp
	}
	return out
}

// Values returns the integer values in ascending order.
func (q QInt) Values() []int {
	out := make([]int, 0, len(q.Terms))
	for _, t := range q.Terms {
		out = append(out, t.Value)
	}
	sort.Ints(out)
	return out
}

// Probability returns P(value) for the qinteger.
func (q QInt) Probability(value int) float64 {
	for _, t := range q.Terms {
		if t.Value == value {
			return real(t.Amp)*real(t.Amp) + imag(t.Amp)*imag(t.Amp)
		}
	}
	return 0
}

// TwosComplement interprets an unsigned register value as a signed
// integer in two's complement, the encoding the paper adopts.
func TwosComplement(value, width int) int {
	if value >= 1<<uint(width-1) {
		return value - 1<<uint(width)
	}
	return value
}

// FromSigned maps a signed integer onto its two's-complement register
// value. Panics when v is unrepresentable in width bits.
func FromSigned(v, width int) int {
	lo, hi := -(1 << uint(width-1)), 1<<uint(width-1)-1
	if v < lo || v > hi {
		panic(fmt.Sprintf("qint: %d not representable in %d-bit two's complement", v, width))
	}
	if v < 0 {
		return v + 1<<uint(width)
	}
	return v
}

// NewSignedBasis returns the order-1 qinteger holding the signed value
// v encoded in two's complement on width qubits. Panics when v is
// unrepresentable, like FromSigned.
func NewSignedBasis(width, v int) QInt {
	return NewBasis(width, FromSigned(v, width))
}

// NewSignedUniform returns an evenly-distributed superposition over the
// given distinct signed values, each encoded in two's complement on
// width qubits.
func NewSignedUniform(width int, values ...int) QInt {
	encoded := make([]int, len(values))
	for i, v := range values {
		encoded[i] = FromSigned(v, width)
	}
	return NewUniform(width, encoded...)
}

// SignedValues returns the terms decoded as two's complement, ascending
// by signed value.
func (q QInt) SignedValues() []int {
	out := make([]int, 0, len(q.Terms))
	for _, t := range q.Terms {
		out = append(out, TwosComplement(t.Value, q.Width))
	}
	sort.Ints(out)
	return out
}

// SignedRange returns the representable signed interval [lo, hi] of a
// width-bit two's-complement register.
func SignedRange(width int) (lo, hi int) {
	return -(1 << uint(width-1)), 1<<uint(width-1) - 1
}

// Product returns the joint amplitude vector of independent qintegers,
// with qs[0] occupying the least significant bits — the multi-register
// initial states the experiments inject.
func Product(qs ...QInt) []complex128 {
	width := 0
	for _, q := range qs {
		width += q.Width
	}
	out := make([]complex128, 1<<uint(width))
	var fill func(idx int, shift uint, amp complex128, rest []QInt)
	fill = func(idx int, shift uint, amp complex128, rest []QInt) {
		if len(rest) == 0 {
			out[idx] += amp
			return
		}
		for _, t := range rest[0].Terms {
			fill(idx|t.Value<<shift, shift+uint(rest[0].Width), amp*t.Amp, rest[1:])
		}
	}
	fill(0, 0, 1, qs)
	return out
}

// Phase returns the complex phase of amplitude a in radians.
func Phase(a complex128) float64 { return cmplx.Phase(a) }
