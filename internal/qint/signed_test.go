package qint_test

import (
	"testing"

	"qfarith/internal/qint"
)

func TestTwosComplementRoundTrip(t *testing.T) {
	for w := 1; w <= 8; w++ {
		lo, hi := qint.SignedRange(w)
		if lo != -(1<<uint(w-1)) || hi != 1<<uint(w-1)-1 {
			t.Fatalf("SignedRange(%d) = [%d, %d]", w, lo, hi)
		}
		for v := lo; v <= hi; v++ {
			enc := qint.FromSigned(v, w)
			if enc < 0 || enc >= 1<<uint(w) {
				t.Fatalf("FromSigned(%d, %d) = %d out of register range", v, w, enc)
			}
			if got := qint.TwosComplement(enc, w); got != v {
				t.Fatalf("w=%d: decode(encode(%d)) = %d", w, v, got)
			}
		}
	}
}

func TestNewSignedBasis(t *testing.T) {
	q := qint.NewSignedBasis(4, -3)
	if len(q.Terms) != 1 || q.Terms[0].Value != 13 {
		t.Errorf("NewSignedBasis(4, -3) terms = %v, want value 13", q.Terms)
	}
	if got := q.SignedValues(); len(got) != 1 || got[0] != -3 {
		t.Errorf("SignedValues = %v, want [-3]", got)
	}
}

func TestNewSignedUniform(t *testing.T) {
	q := qint.NewSignedUniform(4, 5, -1, -8)
	got := q.SignedValues()
	want := []int{-8, -1, 5}
	if len(got) != len(want) {
		t.Fatalf("SignedValues = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SignedValues = %v, want %v", got, want)
		}
	}
	// Encoded register values back the decoded set: -1 → 15, -8 → 8.
	seen := map[int]bool{}
	for _, term := range q.Terms {
		seen[term.Value] = true
	}
	for _, enc := range []int{5, 15, 8} {
		if !seen[enc] {
			t.Errorf("encoded value %d missing from terms %v", enc, q.Terms)
		}
	}
}
