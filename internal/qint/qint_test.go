package qint_test

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"qfarith/internal/circuit"
	"qfarith/internal/mat"
	"qfarith/internal/qint"
	"qfarith/internal/sim"
	"qfarith/internal/testutil"
)

func TestNewUniformNormalization(t *testing.T) {
	q := qint.NewUniform(4, 3, 9, 12)
	if q.Order() != 3 {
		t.Fatalf("order = %d, want 3", q.Order())
	}
	for _, v := range []int{3, 9, 12} {
		if p := q.Probability(v); math.Abs(p-1.0/3) > 1e-12 {
			t.Errorf("P(%d) = %g, want 1/3", v, p)
		}
	}
	if p := q.Probability(5); p != 0 {
		t.Errorf("P(5) = %g, want 0", p)
	}
}

func TestAmplitudesRoundTrip(t *testing.T) {
	q := qint.New(3, []qint.Term{{Value: 1, Amp: 1}, {Value: 6, Amp: 1i}})
	a := q.Amplitudes()
	if len(a) != 8 {
		t.Fatalf("len = %d", len(a))
	}
	if cmplx.Abs(a[1]-complex(1/math.Sqrt2, 0)) > 1e-12 {
		t.Errorf("amp[1] = %v", a[1])
	}
	if cmplx.Abs(a[6]-complex(0, 1/math.Sqrt2)) > 1e-12 {
		t.Errorf("amp[6] = %v", a[6])
	}
}

func TestTwosComplement(t *testing.T) {
	cases := []struct{ value, width, want int }{
		{0, 4, 0}, {7, 4, 7}, {8, 4, -8}, {15, 4, -1}, {255, 8, -1}, {127, 8, 127},
	}
	for _, c := range cases {
		if got := qint.TwosComplement(c.value, c.width); got != c.want {
			t.Errorf("TwosComplement(%d, %d) = %d, want %d", c.value, c.width, got, c.want)
		}
	}
	// Round trip via FromSigned.
	for v := -8; v <= 7; v++ {
		if got := qint.TwosComplement(qint.FromSigned(v, 4), 4); got != v {
			t.Errorf("round trip %d -> %d", v, got)
		}
	}
}

func TestFromSignedPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range signed value")
		}
	}()
	qint.FromSigned(8, 4)
}

func TestProductLayout(t *testing.T) {
	// x (2 qubits, LSBs) = |3>, y (3 qubits) = (|1>+|4>)/√2.
	x := qint.NewBasis(2, 3)
	y := qint.NewUniform(3, 1, 4)
	amps := qint.Product(x, y)
	if len(amps) != 32 {
		t.Fatalf("len = %d", len(amps))
	}
	w := complex(1/math.Sqrt2, 0)
	if cmplx.Abs(amps[3|1<<2]-w) > 1e-12 || cmplx.Abs(amps[3|4<<2]-w) > 1e-12 {
		t.Errorf("product amplitudes wrong: %v %v", amps[3|1<<2], amps[3|4<<2])
	}
}

func TestPrepareBasisStates(t *testing.T) {
	for w := 1; w <= 5; w++ {
		for v := 0; v < 1<<uint(w); v++ {
			c := qint.Prepare(qint.NewBasis(w, v))
			st := sim.NewState(w)
			st.ApplyCircuit(c)
			if p := st.Probability(v); math.Abs(p-1) > 1e-9 {
				t.Fatalf("w=%d v=%d: P = %g", w, v, p)
			}
		}
	}
}

func TestPrepareUniformSuperpositions(t *testing.T) {
	cases := [][]int{{0, 1}, {3, 12}, {1, 2, 4, 8}, {0, 5, 10, 15}, {7}}
	for _, vals := range cases {
		q := qint.NewUniform(4, vals...)
		c := qint.Prepare(q)
		st := sim.NewState(4)
		st.ApplyCircuit(c)
		if !mat.VecEqualUpToGlobalPhase(st.Amps(), q.Amplitudes(), 1e-9) {
			t.Errorf("values %v: prepared state differs", vals)
		}
	}
}

func TestPrepareRandomComplexStates(t *testing.T) {
	// Property: Prepare reproduces arbitrary dense complex states.
	prop := func(seed uint64) bool {
		rng := testutil.NewRand(seed)
		w := 1 + int(seed%5)
		terms := make([]qint.Term, 0, 1<<uint(w))
		for v := 0; v < 1<<uint(w); v++ {
			terms = append(terms, qint.Term{Value: v, Amp: complex(rng.NormFloat64(), rng.NormFloat64())})
		}
		q := qint.New(w, terms)
		st := sim.NewState(w)
		st.ApplyCircuit(qint.Prepare(q))
		return mat.VecEqualUpToGlobalPhase(st.Amps(), q.Amplitudes(), 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPrepareSparseStates(t *testing.T) {
	// The experiments' order-2 states are sparse; make sure those keep
	// fidelity 1 too (they exercise the zero-subtree branches).
	prop := func(seed uint64) bool {
		rng := testutil.NewRand(seed ^ 0xfeed)
		w := 4 + int(seed%3)
		v1 := rng.IntN(1 << uint(w))
		v2 := rng.IntN(1 << uint(w))
		if v1 == v2 {
			v2 = (v2 + 1) % (1 << uint(w))
		}
		q := qint.NewUniform(w, v1, v2)
		st := sim.NewState(w)
		st.ApplyCircuit(qint.Prepare(q))
		return mat.VecEqualUpToGlobalPhase(st.Amps(), q.Amplitudes(), 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPrepareOnRemappedRegister(t *testing.T) {
	// Prepare y on qubits 2..4 of a 5-qubit state; qubits 0,1 untouched.
	q := qint.NewUniform(3, 1, 6)
	c := circuit.New(5)
	qint.PrepareOn(c, []int{2, 3, 4}, q)
	st := sim.NewState(5)
	st.ApplyCircuit(c)
	w := 1 / math.Sqrt2
	if math.Abs(st.Probability(1<<2)-w*w) > 1e-9 || math.Abs(st.Probability(6<<2)-w*w) > 1e-9 {
		t.Errorf("remapped prepare wrong: P(4)=%g P(24)=%g", st.Probability(1<<2), st.Probability(6<<2))
	}
}

func TestPrepareEmitsOnlyNativeFriendlyGates(t *testing.T) {
	q := qint.NewUniform(4, 2, 9, 11)
	c := qint.Prepare(q)
	for _, op := range c.Ops {
		switch op.Kind.Name() {
		case "ry", "rz", "cx":
		default:
			t.Fatalf("initializer emitted %s; only ry/rz/cx allowed", op.Kind)
		}
	}
}
