package qint

import (
	"math"
	"math/cmplx"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
)

// Prepare synthesizes a gate-based state-preparation circuit for q on
// qubits 0..Width-1 (qubit 0 = least significant bit), taking |0...0>
// to the qinteger's state up to global phase. The construction is the
// Möttönen multiplexed-rotation scheme (the reverse-decomposition family
// the paper cites via Shende et al.): a binary tree of multiplexed RY
// rotations fixes every magnitude, then a recursive multiplexed-RZ
// diagonal fixes every relative phase. Only RY, RZ and CX are emitted.
func Prepare(q QInt) *circuit.Circuit {
	c := circuit.New(q.Width)
	reg := make([]int, q.Width)
	for i := range reg {
		reg[i] = i
	}
	PrepareOn(c, reg, q)
	return c
}

// PrepareOn appends the preparation circuit for q to c on the given
// register (LSB first).
func PrepareOn(c *circuit.Circuit, reg []int, q QInt) {
	if len(reg) != q.Width {
		panic("qint: register width mismatch")
	}
	n := q.Width
	amps := q.Amplitudes()

	// Magnitude tree: process qubits from most significant to least.
	// After step j the register's top j+1 qubits hold the marginal
	// magnitude distribution of the target state's top j+1 bits.
	for j := 0; j < n; j++ {
		t := n - 1 - j // target qubit (bit position)
		numPatterns := 1 << uint(j)
		angles := make([]float64, numPatterns)
		for p := 0; p < numPatterns; p++ {
			// p's bit (j-1-i) corresponds to qubit n-1-i; build the
			// common prefix mask for amplitudes.
			n0 := subtreeNorm(amps, n, p<<1|0, j+1)
			n1 := subtreeNorm(amps, n, p<<1|1, j+1)
			angles[p] = 2 * math.Atan2(n1, n0)
		}
		ctrls := make([]int, j)
		for i := 0; i < j; i++ {
			ctrls[i] = reg[n-1-i] // pattern MSB first
		}
		multiplexRotation(c, gate.RY, angles, ctrls, reg[t])
	}

	// Phase diagonal: set arg(a_i) for every nonzero amplitude.
	phases := make([]float64, len(amps))
	any := false
	for i, a := range amps {
		if a != 0 {
			phases[i] = cmplx.Phase(a)
			if math.Abs(phases[i]) > 1e-15 {
				any = true
			}
		}
	}
	if any {
		applyDiagonal(c, reg, phases)
	}
}

// subtreeNorm returns the 2-norm of the amplitudes whose top `bits` bits
// equal prefix.
func subtreeNorm(amps []complex128, n, prefix, bits int) float64 {
	width := n - bits
	base := prefix << uint(width)
	var s float64
	for i := 0; i < 1<<uint(width); i++ {
		a := amps[base|i]
		s += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(s)
}

// multiplexRotation emits a uniformly-controlled rotation: rot(angles[p])
// on target t when the control qubits (ctrls[0] = pattern MSB) spell
// pattern p. The recursion halves the pattern space per control,
// conjugating by CX so each branch sees the right angle; RY and RZ both
// flip sign under X conjugation, which is what makes the scheme work.
func multiplexRotation(c *circuit.Circuit, kind gate.Kind, angles []float64, ctrls []int, t int) {
	if kind != gate.RY && kind != gate.RZ {
		panic("qint: multiplexRotation supports RY and RZ only")
	}
	if len(angles) != 1<<uint(len(ctrls)) {
		panic("qint: angle count must be 2^controls")
	}
	if len(ctrls) == 0 {
		if math.Abs(angles[0]) > 1e-15 {
			c.Append(kind, angles[0], t)
		}
		return
	}
	half := len(angles) / 2
	a0, a1 := angles[:half], angles[half:]
	plus := make([]float64, half)
	minus := make([]float64, half)
	allZero := true
	for i := range plus {
		plus[i] = (a0[i] + a1[i]) / 2
		minus[i] = (a0[i] - a1[i]) / 2
		if math.Abs(minus[i]) > 1e-15 {
			allZero = false
		}
	}
	multiplexRotation(c, kind, plus, ctrls[1:], t)
	if allZero {
		// The two halves agree: no controlled correction needed.
		return
	}
	c.Append(gate.CX, 0, ctrls[0], t)
	multiplexRotation(c, kind, minus, ctrls[1:], t)
	c.Append(gate.CX, 0, ctrls[0], t)
}

// applyDiagonal emits a circuit realizing diag(e^{i phases[v]}) on reg up
// to global phase, via one multiplexed RZ per qubit (recursing on the
// averaged phases of each sibling pair).
func applyDiagonal(c *circuit.Circuit, reg []int, phases []float64) {
	n := len(reg)
	if n == 0 {
		return
	}
	if 1<<uint(n) != len(phases) {
		panic("qint: diagonal size mismatch")
	}
	// Relative phase between bit0=1 and bit0=0 for each prefix pattern
	// of the higher qubits.
	half := len(phases) / 2
	delta := make([]float64, half)
	next := make([]float64, half)
	for p := 0; p < half; p++ {
		f0 := phases[p<<1]
		f1 := phases[p<<1|1]
		delta[p] = f1 - f0
		next[p] = (f0 + f1) / 2
	}
	ctrls := make([]int, n-1)
	for i := 0; i < n-1; i++ {
		ctrls[i] = reg[n-1-i] // pattern MSB = highest qubit
	}
	multiplexRotation(c, gate.RZ, delta, ctrls, reg[0])
	applyDiagonal(c, reg[1:], next)
}
