package metrics_test

import (
	"math/rand/v2"
	"slices"
	"testing"

	"qfarith/internal/metrics"
)

func TestSignedValue(t *testing.T) {
	cases := []struct{ v, w, want int }{
		{0, 4, 0},
		{7, 4, 7},
		{8, 4, -8},
		{15, 4, -1},
		{1, 1, -1},
		{127, 8, 127},
		{128, 8, -128},
		{255, 8, -1},
	}
	for _, c := range cases {
		if got := metrics.SignedValue(c.v, c.w); got != c.want {
			t.Errorf("SignedValue(%d, %d) = %d, want %d", c.v, c.w, got, c.want)
		}
	}
	// Round-trip: every signed value re-encodes to its own bits.
	for w := 1; w <= 10; w++ {
		mask := 1<<uint(w) - 1
		for v := -(1 << uint(w-1)); v < 1<<uint(w-1); v++ {
			if got := metrics.SignedValue(v&mask, w); got != v {
				t.Fatalf("w=%d: SignedValue(%d&mask) = %d, want %d", w, v, got, v)
			}
		}
	}
}

// TestCorrectDiffsSignedConsistency pins the two's-complement claim the
// subtraction workload rests on: the modular unsigned difference set
// equals the signed difference of the decoded operands wrapped into w
// bits, for every operand pair.
func TestCorrectDiffsSignedConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	for trial := 0; trial < 200; trial++ {
		w := 2 + rng.IntN(8)
		mask := 1<<uint(w) - 1
		xs := []int{rng.IntN(1 << uint(w)), rng.IntN(1 << uint(w))}
		ys := []int{rng.IntN(1 << uint(w)), rng.IntN(1 << uint(w))}
		got := metrics.CorrectDiffs(xs, ys, w)
		want := map[int]bool{}
		for _, x := range xs {
			for _, y := range ys {
				d := metrics.SignedValue(y, w) - metrics.SignedValue(x, w)
				want[d&mask] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %v vs %v", trial, got, want)
		}
		for v := range want {
			if !got[v] {
				t.Fatalf("trial %d: missing %d in %v", trial, v, got)
			}
		}
	}
}

func TestCorrectDiffsPinned(t *testing.T) {
	// 4-bit: 3 − 5 = −2 → 14; 3 − 12(−4) = 7 → 7.
	got := metrics.CorrectDiffs([]int{5, 12}, []int{3}, 4)
	if len(got) != 2 || !got[14] || !got[7] {
		t.Errorf("diffs = %v, want {14, 7}", got)
	}
}

func TestCorrectSignedProductsPinned(t *testing.T) {
	// 2-bit operands into a 4-bit product register.
	cases := []struct {
		x, y int
		want int
	}{
		{3, 3, 1},  // (−1)·(−1) = 1
		{2, 1, 14}, // (−2)·1 = −2 → 14
		{2, 2, 4},  // (−2)·(−2) = 4
		{1, 1, 1},  // 1·1 = 1
		{0, 3, 0},  // 0·(−1) = 0
		{3, 1, 15}, // (−1)·1 = −1 → 15
	}
	for _, c := range cases {
		got := metrics.CorrectSignedProducts([]int{c.x}, []int{c.y}, 2, 2)
		if len(got) != 1 || !got[c.want] {
			t.Errorf("signed product %d×%d = %v, want {%d}", c.x, c.y, got, c.want)
		}
	}
}

// TestCorrectSignedProductsBruteForce checks the masked-int encoding
// against an explicit re-encode of the integer product.
func TestCorrectSignedProductsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	for trial := 0; trial < 200; trial++ {
		xw := 1 + rng.IntN(6)
		yw := 1 + rng.IntN(6)
		mask := 1<<uint(xw+yw) - 1
		xs := []int{rng.IntN(1 << uint(xw)), rng.IntN(1 << uint(xw))}
		ys := []int{rng.IntN(1 << uint(yw)), rng.IntN(1 << uint(yw))}
		got := metrics.CorrectSignedProducts(xs, ys, xw, yw)
		want := map[int]bool{}
		for _, x := range xs {
			for _, y := range ys {
				p := metrics.SignedValue(x, xw) * metrics.SignedValue(y, yw)
				enc := p
				if enc < 0 {
					enc += mask + 1
				}
				want[enc&mask] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %v vs %v", trial, got, want)
		}
		for v := range want {
			if !got[v] {
				t.Fatalf("trial %d: missing %d in %v", trial, v, got)
			}
		}
	}
}

// TestSignedIntoMatchesMapForms pins the pooled builders against the
// map-returning originals, sorted and deduplicated.
func TestSignedIntoMatchesMapForms(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 37))
	buf := make([]int, 0, 1)
	for trial := 0; trial < 200; trial++ {
		w := 2 + rng.IntN(7)
		xs := []int{rng.IntN(1 << uint(w)), rng.IntN(1 << uint(w))}
		ys := []int{rng.IntN(1 << uint(w)), rng.IntN(1 << uint(w))}

		check := func(name string, got []int, want map[int]bool) {
			t.Helper()
			if !slices.IsSorted(got) || len(got) != len(want) {
				t.Fatalf("trial %d %s: %v vs map %v", trial, name, got, want)
			}
			for _, v := range got {
				if !want[v] {
					t.Fatalf("trial %d %s: %d not in %v", trial, name, v, want)
				}
			}
		}
		buf = metrics.CorrectDiffsInto(buf, xs, ys, w)
		check("diffs", buf, metrics.CorrectDiffs(xs, ys, w))
		buf = metrics.CorrectSignedProductsInto(buf, xs, ys, w, w)
		check("products", buf, metrics.CorrectSignedProducts(xs, ys, w, w))
	}
}
