package metrics_test

import (
	"math"
	"testing"
	"testing/quick"

	"qfarith/internal/metrics"
)

func TestClassicalFidelityIdentical(t *testing.T) {
	p := []float64{0.5, 0.25, 0.25, 0}
	if f := metrics.ClassicalFidelity(p, p); math.Abs(f-1) > 1e-12 {
		t.Errorf("self fidelity %g", f)
	}
}

func TestClassicalFidelityDisjoint(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if f := metrics.ClassicalFidelity(p, q); f != 0 {
		t.Errorf("disjoint fidelity %g", f)
	}
}

func TestClassicalFidelityKnownValue(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{1, 0}
	// BC = √0.5, F = 0.5.
	if f := metrics.ClassicalFidelity(p, q); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("fidelity %g, want 0.5", f)
	}
}

func TestCountsFidelity(t *testing.T) {
	ideal := []float64{0.5, 0.5, 0, 0}
	counts := []int{512, 512, 0, 0}
	if f := metrics.CountsFidelity(ideal, counts); math.Abs(f-1) > 1e-12 {
		t.Errorf("matching counts fidelity %g", f)
	}
	counts = []int{1024, 0, 0, 0}
	if f := metrics.CountsFidelity(ideal, counts); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("collapsed counts fidelity %g, want 0.5", f)
	}
}

func TestFidelitySymmetric(t *testing.T) {
	prop := func(a, b, c, d uint8) bool {
		p := normalize([]float64{float64(a) + 1, float64(b), float64(c), float64(d)})
		q := normalize([]float64{float64(d) + 1, float64(c), float64(b), float64(a)})
		f1 := metrics.ClassicalFidelity(p, q)
		f2 := metrics.ClassicalFidelity(q, p)
		return math.Abs(f1-f2) < 1e-12 && f1 >= 0 && f1 <= 1+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func normalize(v []float64) []float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	for i := range v {
		v[i] /= s
	}
	return v
}

func TestHellingerAndTV(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if h := metrics.HellingerDistance(p, q); math.Abs(h-1) > 1e-12 {
		t.Errorf("disjoint Hellinger %g", h)
	}
	if h := metrics.HellingerDistance(p, p); h > 1e-12 {
		t.Errorf("self Hellinger %g", h)
	}
	if tv := metrics.TotalVariation(p, q); math.Abs(tv-1) > 1e-12 {
		t.Errorf("disjoint TV %g", tv)
	}
	if tv := metrics.TotalVariation(p, p); tv != 0 {
		t.Errorf("self TV %g", tv)
	}
}

// TestFidelityDegradesSmootherThanSuccess illustrates why the paper
// suggests fidelity at high noise: mixing the ideal distribution with
// uniform noise moves fidelity smoothly while the success metric jumps.
func TestFidelityDegradesSmootherThanSuccess(t *testing.T) {
	n := 16
	ideal := make([]float64, n)
	ideal[3] = 1
	prev := 1.0
	for _, w := range []float64{0, 0.25, 0.5, 0.75, 0.95} {
		mixed := make([]float64, n)
		for i := range mixed {
			mixed[i] = (1-w)*ideal[i] + w/float64(n)
		}
		f := metrics.ClassicalFidelity(ideal, mixed)
		if f > prev+1e-12 {
			t.Errorf("fidelity not monotone at w=%g: %g > %g", w, f, prev)
		}
		if w > 0 && f <= 0 {
			t.Errorf("fidelity collapsed to 0 at w=%g", w)
		}
		prev = f
	}
}
