package metrics

import "math"

// The paper's closing discussion notes that at high error rates the
// count-based success metric saturates at 0% and suggests "a more
// advanced success metric, such as evaluating the quantum state
// fidelity [Jozsa]". For measurement distributions the natural analogue
// is the classical (Bhattacharyya) fidelity between the ideal and
// observed outcome distributions — it equals the Jozsa fidelity of the
// post-measurement (dephased) states and degrades smoothly where the
// success rate cliffs.

// ClassicalFidelity returns F(p, q) = (Σ √(p_i q_i))², the squared
// Bhattacharyya coefficient between two outcome distributions. 1 iff
// the distributions coincide; 0 iff their supports are disjoint.
func ClassicalFidelity(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("metrics: fidelity length mismatch")
	}
	var bc float64
	for i := range p {
		a, b := p[i], q[i]
		if a < 0 {
			a = 0
		}
		if b < 0 {
			b = 0
		}
		bc += math.Sqrt(a * b)
	}
	return bc * bc
}

// CountsFidelity is ClassicalFidelity with the observed side given as a
// shot histogram.
func CountsFidelity(ideal []float64, counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		panic("metrics: empty histogram")
	}
	obs := make([]float64, len(counts))
	for i, c := range counts {
		obs[i] = float64(c) / float64(total)
	}
	return ClassicalFidelity(ideal, obs)
}

// HellingerDistance returns √(1 - √F), the metric companion of the
// fidelity (0 = identical, 1 = disjoint).
func HellingerDistance(p, q []float64) float64 {
	f := ClassicalFidelity(p, q)
	root := math.Sqrt(f)
	if root > 1 {
		root = 1
	}
	return math.Sqrt(1 - root)
}

// TotalVariation returns ½ Σ |p_i - q_i|, the statistical distance used
// alongside fidelity in noise diagnostics.
func TotalVariation(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("metrics: distance length mismatch")
	}
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2
}
