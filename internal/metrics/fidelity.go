package metrics

import "math"

// The paper's closing discussion notes that at high error rates the
// count-based success metric saturates at 0% and suggests "a more
// advanced success metric, such as evaluating the quantum state
// fidelity [Jozsa]". For measurement distributions the natural analogue
// is the classical (Bhattacharyya) fidelity between the ideal and
// observed outcome distributions — it equals the Jozsa fidelity of the
// post-measurement (dephased) states and degrades smoothly where the
// success rate cliffs.

// ClassicalFidelity returns F(p, q) = (Σ √(p_i q_i))², the squared
// Bhattacharyya coefficient between two outcome distributions. 1 iff
// the distributions coincide; 0 iff their supports are disjoint.
// Mismatched lengths treat the shorter distribution as zero-padded —
// missing outcomes carry no probability, so they contribute nothing to
// the overlap — and two empty inputs overlap trivially (fidelity 1).
func ClassicalFidelity(p, q []float64) float64 {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	if n == 0 {
		if len(p) == 0 && len(q) == 0 {
			return 1
		}
		return 0
	}
	var bc float64
	for i := 0; i < n; i++ {
		a, b := p[i], q[i]
		if a < 0 {
			a = 0
		}
		if b < 0 {
			b = 0
		}
		bc += math.Sqrt(a * b)
	}
	return bc * bc
}

// CountsFidelity is ClassicalFidelity with the observed side given as a
// shot histogram. An empty histogram has no overlap with anything: 0.
func CountsFidelity(ideal []float64, counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	obs := make([]float64, len(counts))
	for i, c := range counts {
		obs[i] = float64(c) / float64(total)
	}
	return ClassicalFidelity(ideal, obs)
}

// HellingerDistance returns √(1 - √F), the metric companion of the
// fidelity (0 = identical, 1 = disjoint).
func HellingerDistance(p, q []float64) float64 {
	f := ClassicalFidelity(p, q)
	root := math.Sqrt(f)
	if root > 1 {
		root = 1
	}
	return math.Sqrt(1 - root)
}

// TotalVariation returns ½ Σ |p_i - q_i|, the statistical distance used
// alongside fidelity in noise diagnostics. Mismatched lengths treat the
// shorter distribution as zero-padded, so the surplus tail of the
// longer one counts in full.
func TotalVariation(p, q []float64) float64 {
	var s float64
	for i := 0; i < len(p) || i < len(q); i++ {
		var a, b float64
		if i < len(p) {
			a = p[i]
		}
		if i < len(q) {
			b = q[i]
		}
		s += math.Abs(a - b)
	}
	return s / 2
}
