// The pluggable success-metric seam: a Scorer turns one operand
// instance's measurement data into per-instance values and aggregates
// them into per-point CSV columns. The paper's margin statistic is the
// frozen default (the experiment layer keeps its historical fast path,
// pinned bit-identical to the registered scorer by tests); additional
// scorers ride beside it, each making one pass over the same shot
// histogram, so a single sweep can emit every metric without
// re-sampling or re-simulating anything.
package metrics

import (
	"fmt"
	"sort"
	"sync"
)

// ScoreInput is the complete per-instance evidence a Scorer may read:
// the sampled shot histogram, the simulated noisy distribution, the
// error-free reference distribution, and the sorted deduplicated
// correct-output set. All slices are borrowed — a Scorer must not
// retain or mutate them.
type ScoreInput struct {
	// Counts is the shot histogram over output values (len 2^outBits).
	Counts []int
	// Dist is the simulated noisy output distribution (same indexing).
	Dist []float64
	// Ideal is the error-free output distribution (same indexing).
	Ideal []float64
	// Correct is the expected-output set, ascending and deduplicated.
	Correct []int
	// Shots is the number of shots in Counts.
	Shots int
}

// Scorer is a pluggable per-point success metric. Implementations must
// be stateless (one instance serves concurrent sweeps), must not
// allocate in ScoreInstance (the instance tail is zero-alloc warm), and
// should read Counts in a single pass.
type Scorer interface {
	// Name is the registry key ("margin", "xeb", "roundtrip", ...).
	Name() string
	// Columns names the per-point CSV columns this scorer contributes,
	// in emission order.
	Columns() []string
	// NumValues is the number of per-instance values ScoreInstance
	// produces. It may differ from len(Columns()): aggregation can
	// derive several columns from one value stream (the margin scorer
	// derives six columns from two values).
	NumValues() int
	// ScoreInstance writes the instance's values into dst, which holds
	// exactly NumValues() slots. It must not allocate or retain in.
	ScoreInstance(dst []float64, in ScoreInput)
	// Aggregate reduces the point's value matrix into one number per
	// column: vals is column-major — vals[j*instances+i] is value j of
	// instance i — and dst holds len(Columns()) slots.
	Aggregate(dst []float64, vals []float64, instances int)
}

// MetricValue is one aggregated scorer column of a point, as recorded
// in checkpoints and emitted into CSVs.
type MetricValue struct {
	Name  string
	Value float64
}

var (
	scorerMu  sync.RWMutex
	scorerReg = map[string]Scorer{}
)

// RegisterScorer adds a scorer to the registry. Panics on a duplicate
// or empty name — registration is an init-time act and a collision is a
// programming error.
func RegisterScorer(s Scorer) {
	name := s.Name()
	if name == "" {
		panic("metrics: scorer with empty name")
	}
	scorerMu.Lock()
	defer scorerMu.Unlock()
	if _, dup := scorerReg[name]; dup {
		panic("metrics: duplicate scorer " + name)
	}
	scorerReg[name] = s
}

// LookupScorer returns the registered scorer with the given name.
func LookupScorer(name string) (Scorer, bool) {
	scorerMu.RLock()
	defer scorerMu.RUnlock()
	s, ok := scorerReg[name]
	return s, ok
}

// ScorerNames lists the registered scorers, sorted.
func ScorerNames() []string {
	scorerMu.RLock()
	defer scorerMu.RUnlock()
	names := make([]string, 0, len(scorerReg))
	for n := range scorerReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ResolveScorers maps names to registered scorers, preserving order,
// with a single error naming the first unknown scorer.
func ResolveScorers(names []string) ([]Scorer, error) {
	out := make([]Scorer, 0, len(names))
	for _, n := range names {
		s, ok := LookupScorer(n)
		if !ok {
			return nil, fmt.Errorf("metrics: unknown scorer %q (registered: %v)", n, ScorerNames())
		}
		out = append(out, s)
	}
	return out, nil
}

func init() {
	RegisterScorer(marginScorer{})
	RegisterScorer(xebScorer{})
	RegisterScorer(roundtripScorer{})
}

// ---------------------------------------------------------------- margin

// marginScorer is the paper's metric as a Scorer: per instance it
// records the margin (min correct − max incorrect counts) and the
// classical ideal-vs-noisy fidelity; aggregation reproduces
// Aggregate's six statistics column for column. The experiment layer's
// frozen fast path (ScoreSorted + ClassicalFidelity + Aggregate) is the
// reference implementation; TestMarginScorerMatchesFrozenPath pins this
// scorer bit-identical to it.
type marginScorer struct{}

func (marginScorer) Name() string { return "margin" }

func (marginScorer) Columns() []string {
	return []string{"success_pct", "lower_bar_pct", "upper_bar_pct", "margin_mean", "margin_sigma", "mean_fidelity"}
}

func (marginScorer) NumValues() int { return 2 }

func (marginScorer) ScoreInstance(dst []float64, in ScoreInput) {
	ir := ScoreSorted(in.Counts, in.Correct)
	dst[0] = float64(ir.Margin)
	dst[1] = ClassicalFidelity(in.Ideal, in.Dist)
}

func (marginScorer) Aggregate(dst []float64, vals []float64, instances int) {
	margins := vals[:instances]
	fids := vals[instances : 2*instances]
	results := make([]InstanceResult, instances)
	for i := range results {
		m := int(margins[i])
		results[i] = InstanceResult{Success: m >= 0, Margin: m, Fidelity: fids[i]}
	}
	st := Aggregate(results)
	dst[0], dst[1], dst[2] = st.SuccessRate, st.LowerBar, st.UpperBar
	dst[3], dst[4], dst[5] = st.MarginMean, st.MarginSigma, st.MeanFidelity
}

// ---------------------------------------------------------------- xeb

// xebScorer is the linear cross-entropy benchmarking fidelity of the
// pyqrack QFT noise benchmark: the least-squares slope of the observed
// distribution against the ideal one around the uniform baseline,
// Σ(p−u)(q−u) / Σ(p−u)², with p the ideal probabilities, q the
// observed shot frequencies and u = 1/M. 1 for noiseless sampling of
// the ideal distribution, 0 for a fully depolarized (uniform) output.
// Unlike the margin metric it degrades smoothly at high error rates,
// and unlike fidelity it is linear in the noisy distribution, so
// finite-shot sampling noise averages out across instances.
type xebScorer struct{}

func (xebScorer) Name() string      { return "xeb" }
func (xebScorer) Columns() []string { return []string{"xeb"} }
func (xebScorer) NumValues() int    { return 1 }

func (xebScorer) ScoreInstance(dst []float64, in ScoreInput) {
	dst[0] = LinearXEB(in.Ideal, in.Counts, in.Shots)
}

func (xebScorer) Aggregate(dst []float64, vals []float64, instances int) {
	dst[0] = mean(vals[:instances])
}

// LinearXEB returns the linear cross-entropy fidelity between the ideal
// distribution and a shot histogram: Σ(p_i−u)(q_i−u) / Σ(p_i−u)² with
// u = 1/M the uniform probability, q_i = counts_i/shots. One pass over
// counts, no allocation. A degenerate ideal (uniform, so the
// denominator vanishes) or an empty histogram returns 0 by definition.
func LinearXEB(ideal []float64, counts []int, shots int) float64 {
	m := len(counts)
	if m == 0 || shots <= 0 {
		return 0
	}
	u := 1 / float64(m)
	inv := 1 / float64(shots)
	var num, den float64
	for v, c := range counts {
		p := -u
		if v < len(ideal) {
			p = ideal[v] - u
		}
		num += p * (float64(c)*inv - u)
		den += p * p
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// ------------------------------------------------------------ roundtrip

// roundtripScorer is the QFT·QFT⁻¹ round-trip health check generalized
// to any workload: the fraction of shots landing in the expected-output
// set. For a transform-and-invert circuit the expected set is the input
// state itself, making this exactly the identity-success probability of
// the snippet-3 health check; for QFA/QFS/QFM it is the probability
// mass on the correct arithmetic results — a smoother companion to the
// all-or-nothing margin success. Reported in percent.
type roundtripScorer struct{}

func (roundtripScorer) Name() string      { return "roundtrip" }
func (roundtripScorer) Columns() []string { return []string{"roundtrip_pct"} }
func (roundtripScorer) NumValues() int    { return 1 }

func (roundtripScorer) ScoreInstance(dst []float64, in ScoreInput) {
	dst[0] = 100 * CorrectMass(in.Counts, in.Correct, in.Shots)
}

func (roundtripScorer) Aggregate(dst []float64, vals []float64, instances int) {
	dst[0] = mean(vals[:instances])
}

// CorrectMass returns the fraction of shots whose outcome lies in the
// sorted deduplicated correct set. One pass over the correct set, no
// allocation; entries beyond the histogram range are ignored.
func CorrectMass(counts []int, correct []int, shots int) float64 {
	if shots <= 0 {
		return 0
	}
	hit := 0
	for _, v := range correct {
		if v >= 0 && v < len(counts) {
			hit += counts[v]
		}
	}
	return float64(hit) / float64(shots)
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}
