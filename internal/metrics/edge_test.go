package metrics_test

import (
	"math"
	"testing"

	"qfarith/internal/metrics"
)

// Edge-case pins for the distance/overlap helpers and TopOutcomes:
// degenerate and mismatched-length inputs must return defined values
// rather than panic, since scorers and diagnostics feed them histograms
// and distributions of independently chosen widths.

func TestTopOutcomesDegenerateK(t *testing.T) {
	counts := []int{5, 1, 9}
	if got := metrics.TopOutcomes(counts, 0); got != nil {
		t.Errorf("k=0: %v, want nil", got)
	}
	if got := metrics.TopOutcomes(counts, -3); got != nil {
		t.Errorf("k<0: %v, want nil", got)
	}
	if got := metrics.TopOutcomes(nil, 5); len(got) != 0 {
		t.Errorf("empty counts: %v, want empty", got)
	}
}

func TestClassicalFidelityMismatchedLengths(t *testing.T) {
	// The shorter side is zero-padded: overlap only over the prefix.
	p := []float64{0.5, 0.5}
	q := []float64{0.5, 0.25, 0.25}
	want := metrics.ClassicalFidelity(p, q[:2])
	if got := metrics.ClassicalFidelity(p, q); got != want {
		t.Errorf("mismatched fidelity = %v, want prefix value %v", got, want)
	}
	if got := metrics.ClassicalFidelity(nil, nil); got != 1 {
		t.Errorf("both empty: %v, want 1", got)
	}
	if got := metrics.ClassicalFidelity(p, nil); got != 0 {
		t.Errorf("one empty: %v, want 0", got)
	}
	// Negative entries are clamped, not NaN-ed.
	if got := metrics.ClassicalFidelity([]float64{-1, 1}, []float64{0.5, 0.5}); math.IsNaN(got) {
		t.Error("negative entry produced NaN")
	}
}

func TestHellingerMismatchedLengths(t *testing.T) {
	if got := metrics.HellingerDistance(nil, nil); got != 0 {
		t.Errorf("both empty: %v, want 0", got)
	}
	if got := metrics.HellingerDistance([]float64{1}, nil); got != 1 {
		t.Errorf("one empty: %v, want 1", got)
	}
	got := metrics.HellingerDistance([]float64{1, 0}, []float64{1, 0, 0, 0})
	if got != 0 {
		t.Errorf("zero-padded identical: %v, want 0", got)
	}
}

func TestTotalVariationMismatchedLengths(t *testing.T) {
	// The surplus tail of the longer input counts in full.
	got := metrics.TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.25, 0.25})
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("tv = %v, want 0.25", got)
	}
	if got := metrics.TotalVariation(nil, nil); got != 0 {
		t.Errorf("both empty: %v, want 0", got)
	}
	if got := metrics.TotalVariation(nil, []float64{1}); got != 0.5 {
		t.Errorf("one empty: %v, want 0.5", got)
	}
}

func TestCountsFidelityEmptyHistogram(t *testing.T) {
	if got := metrics.CountsFidelity([]float64{1}, nil); got != 0 {
		t.Errorf("nil counts: %v, want 0", got)
	}
	if got := metrics.CountsFidelity([]float64{1}, []int{0, 0}); got != 0 {
		t.Errorf("all-zero counts: %v, want 0", got)
	}
}
