// Package metrics implements the paper's tomography-flavoured success
// metric and its error-bar statistics (Sec. 4):
//
//   - An arithmetic *instance* (one random choice of operands, simulated
//     for a fixed number of shots) is *successful* when the binary
//     outputs with the highest frequencies match those anticipated from
//     the inputs — concretely, when no incorrect output possesses more
//     counts than any one of the correct outputs.
//   - Each instance records the margin: min(correct counts) −
//     max(incorrect counts). The standard deviation σ of margins across
//     instances yields the plot's asymmetric error bars: the lower bar
//     counts successful instances within one σ of failing, the upper bar
//     counts failed instances within one σ of succeeding.
package metrics

import (
	"math"
	"sort"
)

// InstanceResult scores a single instance's measurement histogram.
type InstanceResult struct {
	Success bool
	// Margin is min(correct) - max(incorrect) in counts. Positive iff
	// the instance succeeds (ties count as failures-by-margin zero...
	// see Score for the exact tie rule).
	Margin int
	// Fidelity optionally records the classical fidelity between the
	// instance's ideal and noisy output distributions (0 when unset) —
	// the smoother metric the paper's conclusions point to.
	Fidelity float64
}

// Score evaluates one instance: counts is the output histogram and
// correct the set of expected-correct output values (deduplicated by the
// caller if operand collisions merged outcomes). Following the paper, an
// instance is unsuccessful iff any incorrect output possesses MORE
// counts than any one of the correct outputs; an exact tie therefore
// still counts as success, with margin zero.
//
// Score only reads its arguments and retains neither, so both may be
// pooled buffers the caller recycles immediately after the call.
func Score(counts []int, correct map[int]bool) InstanceResult {
	if len(correct) == 0 {
		panic("metrics: no correct outputs specified")
	}
	minCorrect := math.MaxInt
	maxIncorrect := 0
	for v, c := range counts {
		if correct[v] {
			if c < minCorrect {
				minCorrect = c
			}
		} else if c > maxIncorrect {
			maxIncorrect = c
		}
	}
	if minCorrect == math.MaxInt {
		minCorrect = 0 // all outputs marked correct
	}
	margin := minCorrect - maxIncorrect
	return InstanceResult{Success: margin >= 0, Margin: margin}
}

// ScoreSorted is Score with the correct set given as a sorted
// (ascending, deduplicated) slice instead of a map, so the zero-alloc
// instance tail can score a pooled histogram against a pooled correct
// buffer without building a map per instance. The result is identical
// to Score over the equivalent set: entries beyond the histogram range
// are ignored exactly as map entries no output value reaches would be.
// Neither argument is retained.
func ScoreSorted(counts []int, correct []int) InstanceResult {
	if len(correct) == 0 {
		panic("metrics: no correct outputs specified")
	}
	minCorrect := math.MaxInt
	maxIncorrect := 0
	ci := 0
	for v, c := range counts {
		if ci < len(correct) && correct[ci] == v {
			for ci < len(correct) && correct[ci] == v {
				ci++ // tolerate duplicates a caller failed to collapse
			}
			if c < minCorrect {
				minCorrect = c
			}
		} else if c > maxIncorrect {
			maxIncorrect = c
		}
	}
	if minCorrect == math.MaxInt {
		minCorrect = 0 // no correct output within the histogram range
	}
	margin := minCorrect - maxIncorrect
	return InstanceResult{Success: margin >= 0, Margin: margin}
}

// PointStats aggregates the instances of one plotted point.
type PointStats struct {
	Instances int
	Successes int
	// SuccessRate in percent, the figures' vertical axis.
	SuccessRate float64
	// MarginMean and MarginSigma summarize the margin distribution.
	MarginMean  float64
	MarginSigma float64
	// LowerBar counts successful instances whose margin is within one
	// sigma of failure (margin <= sigma); UpperBar counts failed
	// instances within one sigma of success (margin >= -sigma). Both are
	// expressed in percent of instances, matching the paper's bars.
	LowerBar float64
	UpperBar float64
	// MeanFidelity averages the instances' ideal-vs-noisy distribution
	// fidelity, when recorded.
	MeanFidelity float64
	// Extra holds aggregated columns from additional scorers, in the
	// order the sweep requested them. Empty (and absent from JSON
	// checkpoints) when only the default margin scoring ran, so
	// margin-only payloads stay byte-identical to historical ones.
	Extra []MetricValue `json:",omitempty"`
}

// Aggregate computes the paper's per-point statistics from instance
// results.
func Aggregate(results []InstanceResult) PointStats {
	var st PointStats
	st.Instances = len(results)
	if st.Instances == 0 {
		return st
	}
	var sum, sumSq, fid float64
	for _, r := range results {
		if r.Success {
			st.Successes++
		}
		m := float64(r.Margin)
		sum += m
		sumSq += m * m
		fid += r.Fidelity
	}
	n := float64(st.Instances)
	st.SuccessRate = 100 * float64(st.Successes) / n
	st.MarginMean = sum / n
	st.MeanFidelity = fid / n
	variance := sumSq/n - st.MarginMean*st.MarginMean
	if variance < 0 {
		variance = 0
	}
	st.MarginSigma = math.Sqrt(variance)
	var lower, upper int
	for _, r := range results {
		m := float64(r.Margin)
		if r.Success && m <= st.MarginSigma {
			lower++
		}
		if !r.Success && m >= -st.MarginSigma {
			upper++
		}
	}
	st.LowerBar = 100 * float64(lower) / n
	st.UpperBar = 100 * float64(upper) / n
	return st
}

// CorrectSums returns the deduplicated set of expected outputs for an
// addition instance: (x_a + y_b) mod 2^w over all superposed operand
// pairs.
func CorrectSums(xs, ys []int, w int) map[int]bool {
	mask := 1<<uint(w) - 1
	out := make(map[int]bool, len(xs)*len(ys))
	for _, x := range xs {
		for _, y := range ys {
			out[(x+y)&mask] = true
		}
	}
	return out
}

// CorrectProducts returns the deduplicated set of expected outputs for a
// multiplication instance: (x_a · y_b) mod 2^w.
func CorrectProducts(xs, ys []int, w int) map[int]bool {
	mask := 1<<uint(w) - 1
	out := make(map[int]bool, len(xs)*len(ys))
	for _, x := range xs {
		for _, y := range ys {
			out[(x*y)&mask] = true
		}
	}
	return out
}

// CorrectSumsInto is the pooled-buffer companion of CorrectSums: it
// writes the sorted, deduplicated expected sums into dst (reusing its
// capacity, growing only when needed) and returns the slice, ready for
// ScoreSorted. The operand superpositions are tiny (the paper sweeps
// orders up to 2:2, i.e. at most four products), so the sort is
// effectively free.
func CorrectSumsInto(dst []int, xs, ys []int, w int) []int {
	mask := 1<<uint(w) - 1
	dst = dst[:0]
	for _, x := range xs {
		for _, y := range ys {
			dst = append(dst, (x+y)&mask)
		}
	}
	return sortDedup(dst)
}

// CorrectProductsInto is CorrectSumsInto for multiplication instances.
func CorrectProductsInto(dst []int, xs, ys []int, w int) []int {
	mask := 1<<uint(w) - 1
	dst = dst[:0]
	for _, x := range xs {
		for _, y := range ys {
			dst = append(dst, (x*y)&mask)
		}
	}
	return sortDedup(dst)
}

// sortDedup sorts dst ascending and removes adjacent duplicates in
// place. Insertion sort: the inputs are at most a handful of values.
func sortDedup(dst []int) []int {
	for i := 1; i < len(dst); i++ {
		v := dst[i]
		j := i - 1
		for j >= 0 && dst[j] > v {
			dst[j+1] = dst[j]
			j--
		}
		dst[j+1] = v
	}
	out := dst[:0]
	for i, v := range dst {
		if i == 0 || v != dst[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// TopOutcomes returns the k most frequent outcome values in counts,
// ties broken by value, for diagnostic rendering. k is clamped to
// [0, len(counts)]: a non-positive k yields an empty slice.
func TopOutcomes(counts []int, k int) []int {
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(counts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if counts[idx[a]] != counts[idx[b]] {
			return counts[idx[a]] > counts[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
