package metrics_test

import (
	"math"
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"

	"qfarith/internal/metrics"
)

func TestScoreSingleCorrectOutput(t *testing.T) {
	counts := make([]int, 16)
	counts[5] = 1800
	counts[3] = 200
	counts[9] = 48
	r := metrics.Score(counts, map[int]bool{5: true})
	if !r.Success || r.Margin != 1600 {
		t.Fatalf("got %+v, want success with margin 1600", r)
	}
}

func TestScoreFailsWhenIncorrectDominates(t *testing.T) {
	counts := make([]int, 16)
	counts[5] = 500
	counts[3] = 900
	r := metrics.Score(counts, map[int]bool{5: true})
	if r.Success || r.Margin != -400 {
		t.Fatalf("got %+v, want failure with margin -400", r)
	}
}

func TestScoreSuperposedOutputs(t *testing.T) {
	// Four correct outputs; failure requires an incorrect output with
	// more counts than ANY single correct output.
	counts := make([]int, 256)
	correct := map[int]bool{10: true, 20: true, 30: true, 40: true}
	counts[10], counts[20], counts[30], counts[40] = 600, 500, 450, 300
	counts[99] = 299
	if r := metrics.Score(counts, correct); !r.Success || r.Margin != 1 {
		t.Fatalf("got %+v, want success margin 1", r)
	}
	counts[99] = 301 // now out-counts the weakest correct output
	if r := metrics.Score(counts, correct); r.Success || r.Margin != -1 {
		t.Fatalf("got %+v, want failure margin -1", r)
	}
}

func TestScoreTieIsSuccess(t *testing.T) {
	// Paper: unsuccessful iff an incorrect output has MORE counts; an
	// exact tie therefore still succeeds (margin 0).
	counts := make([]int, 8)
	counts[1] = 400
	counts[2] = 400
	r := metrics.Score(counts, map[int]bool{1: true})
	if !r.Success || r.Margin != 0 {
		t.Fatalf("got %+v, want tie-success with margin 0", r)
	}
}

func TestScoreZeroCorrectCounts(t *testing.T) {
	// The correct output never appeared: worst case failure.
	counts := make([]int, 8)
	counts[0] = 2048
	r := metrics.Score(counts, map[int]bool{5: true})
	if r.Success || r.Margin != -2048 {
		t.Fatalf("got %+v", r)
	}
}

func TestAggregateBasics(t *testing.T) {
	results := []metrics.InstanceResult{
		{Success: true, Margin: 100},
		{Success: true, Margin: 100},
		{Success: true, Margin: 100},
		{Success: false, Margin: -100},
	}
	st := metrics.Aggregate(results)
	if st.Instances != 4 || st.Successes != 3 {
		t.Fatalf("instances/successes = %d/%d", st.Instances, st.Successes)
	}
	if math.Abs(st.SuccessRate-75) > 1e-12 {
		t.Errorf("success rate = %g, want 75", st.SuccessRate)
	}
	if math.Abs(st.MarginMean-50) > 1e-12 {
		t.Errorf("margin mean = %g, want 50", st.MarginMean)
	}
	// sigma = sqrt(E[m^2]-E[m]^2) = sqrt(10000-2500) ≈ 86.6; no
	// successful margin (100) is within sigma... 100 > 86.6 so lower bar
	// counts 0; the failed margin -100 >= -86.6 is false so upper 0.
	if st.LowerBar != 0 || st.UpperBar != 0 {
		t.Errorf("bars = %g/%g, want 0/0", st.LowerBar, st.UpperBar)
	}
}

func TestAggregateErrorBars(t *testing.T) {
	results := []metrics.InstanceResult{
		{Success: true, Margin: 5},     // fragile success
		{Success: true, Margin: 500},   // solid success
		{Success: false, Margin: -5},   // near-miss failure
		{Success: false, Margin: -500}, // hard failure
	}
	st := metrics.Aggregate(results)
	// sigma ≈ 353.6; margins 5 and -5 both fall inside one sigma.
	if st.LowerBar != 25 {
		t.Errorf("lower bar = %g%%, want 25%%", st.LowerBar)
	}
	if st.UpperBar != 25 {
		t.Errorf("upper bar = %g%%, want 25%%", st.UpperBar)
	}
}

func TestAggregateEmpty(t *testing.T) {
	st := metrics.Aggregate(nil)
	if st.Instances != 0 || st.SuccessRate != 0 {
		t.Errorf("empty aggregate = %+v", st)
	}
}

func TestAggregateAllIdenticalMargins(t *testing.T) {
	// Zero variance: sigma 0; every success has margin <= 0+... margin
	// m <= sigma=0 only when m <= 0. Solid successes stay out of the bar.
	results := make([]metrics.InstanceResult, 10)
	for i := range results {
		results[i] = metrics.InstanceResult{Success: true, Margin: 42}
	}
	st := metrics.Aggregate(results)
	if st.MarginSigma != 0 || st.LowerBar != 0 || st.SuccessRate != 100 {
		t.Errorf("got %+v", st)
	}
}

func TestCorrectSumsDedup(t *testing.T) {
	// (1+3) and (2+2) collide at 4: the set has 3 elements, not 4.
	s := metrics.CorrectSums([]int{1, 2}, []int{3, 2}, 4)
	if len(s) != 3 || !s[4] || !s[3] || !s[5] {
		t.Errorf("sums = %v", s)
	}
}

func TestCorrectSumsModular(t *testing.T) {
	s := metrics.CorrectSums([]int{200}, []int{100}, 8)
	if !s[(200+100)&255] || len(s) != 1 {
		t.Errorf("modular sum set = %v", s)
	}
}

func TestCorrectProducts(t *testing.T) {
	s := metrics.CorrectProducts([]int{3, 5}, []int{7}, 8)
	if len(s) != 2 || !s[21] || !s[35] {
		t.Errorf("products = %v", s)
	}
	// Zero operand collapses the set.
	s = metrics.CorrectProducts([]int{3, 5}, []int{0}, 8)
	if len(s) != 1 || !s[0] {
		t.Errorf("products with zero = %v", s)
	}
}

func TestTopOutcomes(t *testing.T) {
	counts := []int{5, 100, 100, 7, 0, 3}
	top := metrics.TopOutcomes(counts, 3)
	if len(top) != 3 || top[0] != 1 || top[1] != 2 || top[2] != 3 {
		t.Errorf("top = %v", top)
	}
	if got := metrics.TopOutcomes(counts, 100); len(got) != len(counts) {
		t.Errorf("k clamp failed: %v", got)
	}
}

func TestScorePropertySuccessIffMarginNonNegative(t *testing.T) {
	prop := func(c0, c1, c2, c3 uint16) bool {
		counts := []int{int(c0), int(c1), int(c2), int(c3)}
		r := metrics.Score(counts, map[int]bool{0: true, 2: true})
		return r.Success == (r.Margin >= 0)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestScoreSortedMatchesScore is the equivalence property the pooled
// instance tail relies on: over random histograms and random correct
// sets, ScoreSorted on the sorted-slice form must reproduce Score on
// the map form exactly.
func TestScoreSortedMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 53))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.IntN(300)
		counts := make([]int, n)
		for i := range counts {
			if rng.IntN(3) == 0 {
				counts[i] = rng.IntN(100)
			}
		}
		k := 1 + rng.IntN(5)
		if k > n {
			k = n
		}
		correctMap := make(map[int]bool, k)
		var sorted []int
		for len(correctMap) < k {
			v := rng.IntN(n)
			if !correctMap[v] {
				correctMap[v] = true
				sorted = append(sorted, v)
			}
		}
		slices.Sort(sorted)
		want := metrics.Score(counts, correctMap)
		got := metrics.ScoreSorted(counts, sorted)
		if got != want {
			t.Fatalf("trial %d: ScoreSorted = %+v, Score = %+v (counts=%v correct=%v)",
				trial, got, want, counts, sorted)
		}
	}
}

func TestScoreSortedEdgeCases(t *testing.T) {
	// All bins correct: maxIncorrect stays 0.
	all := metrics.ScoreSorted([]int{5, 7, 3}, []int{0, 1, 2})
	if !all.Success || all.Margin != 3 {
		t.Errorf("all-correct: %+v, want success margin 3", all)
	}
	// Correct values beyond the histogram range are ignored, like map
	// entries no outcome reaches.
	out := metrics.ScoreSorted([]int{5, 7}, []int{1, 99})
	want := metrics.Score([]int{5, 7}, map[int]bool{1: true, 99: true})
	if out != want {
		t.Errorf("out-of-range correct: ScoreSorted %+v, Score %+v", out, want)
	}
	// Duplicate entries collapse like map keys.
	dup := metrics.ScoreSorted([]int{5, 7, 2}, []int{1, 1, 2})
	wantDup := metrics.Score([]int{5, 7, 2}, map[int]bool{1: true, 2: true})
	if dup != wantDup {
		t.Errorf("duplicate correct: ScoreSorted %+v, Score %+v", dup, wantDup)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty correct set must panic")
		}
	}()
	metrics.ScoreSorted([]int{1}, nil)
}

// TestCorrectIntoMatchesMapForms pins the pooled correct-set builders
// against the map-returning originals.
func TestCorrectIntoMatchesMapForms(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 63))
	buf := make([]int, 0, 1)
	for trial := 0; trial < 200; trial++ {
		w := 3 + rng.IntN(8)
		xs := []int{rng.IntN(1 << w)}
		ys := []int{rng.IntN(1 << w)}
		if rng.IntN(2) == 0 {
			xs = append(xs, rng.IntN(1<<w))
		}
		if rng.IntN(2) == 0 {
			ys = append(ys, rng.IntN(1<<w))
		}
		check := func(name string, got []int, want map[int]bool) {
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: %v vs map %v", trial, name, got, want)
			}
			for i, v := range got {
				if !want[v] {
					t.Fatalf("trial %d %s: value %d not in map %v", trial, name, v, want)
				}
				if i > 0 && got[i-1] >= v {
					t.Fatalf("trial %d %s: not sorted/deduped: %v", trial, name, got)
				}
			}
		}
		buf = metrics.CorrectSumsInto(buf, xs, ys, w)
		check("sums", buf, metrics.CorrectSums(xs, ys, w))
		buf = metrics.CorrectProductsInto(buf, xs, ys, w)
		check("products", buf, metrics.CorrectProducts(xs, ys, w))
	}
}
