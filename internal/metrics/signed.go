// Correct-output sets for the signed half of the paper: subtraction and
// signed multiplication over two's-complement operands. The encoding is
// the standard one — a w-bit register holds v ∈ [0, 2^w) and represents
// the signed value v − 2^w when the top bit is set — so modular
// addition and subtraction coincide bit for bit with their unsigned
// counterparts, while the signed product differs from the unsigned one
// and needs its own expected set.
package metrics

// SignedValue interprets a w-bit register value as two's complement:
// values with the top bit set map to [−2^(w−1), −1].
func SignedValue(v, w int) int {
	if v >= 1<<uint(w-1) {
		return v - 1<<uint(w)
	}
	return v
}

// CorrectDiffs returns the deduplicated set of expected outputs for a
// subtraction instance: (y_b − x_a) mod 2^w over all superposed operand
// pairs. Two's-complement encoding makes this simultaneously the
// unsigned modular difference and the signed difference of the decoded
// operands, wrapped into w bits.
func CorrectDiffs(xs, ys []int, w int) map[int]bool {
	mask := 1<<uint(w) - 1
	out := make(map[int]bool, len(xs)*len(ys))
	for _, x := range xs {
		for _, y := range ys {
			out[(y-x)&mask] = true
		}
	}
	return out
}

// CorrectDiffsInto is the pooled-buffer companion of CorrectDiffs,
// matching CorrectSumsInto: sorted, deduplicated, reusing dst.
func CorrectDiffsInto(dst []int, xs, ys []int, w int) []int {
	mask := 1<<uint(w) - 1
	dst = dst[:0]
	for _, x := range xs {
		for _, y := range ys {
			dst = append(dst, (y-x)&mask)
		}
	}
	return sortDedup(dst)
}

// CorrectSignedProducts returns the deduplicated set of expected
// outputs for a signed multiplication instance: operands are decoded as
// two's complement (x in xw bits, y in yw bits), multiplied over the
// integers, and the product re-encoded in xw+yw bits — exactly the
// register semantics of the sign-corrected Fourier multiplier. Go ints
// are two's complement, so masking a negative product yields its
// encoding directly.
func CorrectSignedProducts(xs, ys []int, xw, yw int) map[int]bool {
	mask := 1<<uint(xw+yw) - 1
	out := make(map[int]bool, len(xs)*len(ys))
	for _, x := range xs {
		for _, y := range ys {
			out[(SignedValue(x, xw)*SignedValue(y, yw))&mask] = true
		}
	}
	return out
}

// CorrectSignedProductsInto is the pooled-buffer companion of
// CorrectSignedProducts: sorted, deduplicated, reusing dst.
func CorrectSignedProductsInto(dst []int, xs, ys []int, xw, yw int) []int {
	mask := 1<<uint(xw+yw) - 1
	dst = dst[:0]
	for _, x := range xs {
		for _, y := range ys {
			dst = append(dst, (SignedValue(x, xw)*SignedValue(y, yw))&mask)
		}
	}
	return sortDedup(dst)
}
