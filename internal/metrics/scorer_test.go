package metrics_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"qfarith/internal/metrics"
)

// randomInput builds a randomized per-instance evidence bundle: a shot
// histogram with its implied size, a noisy and an ideal distribution,
// and a sorted correct set drawn from the histogram's range.
func randomInput(rng *rand.Rand) metrics.ScoreInput {
	n := 2 + rng.IntN(128)
	counts := make([]int, n)
	shots := 0
	for i := range counts {
		if rng.IntN(3) == 0 {
			counts[i] = rng.IntN(200)
			shots += counts[i]
		}
	}
	if shots == 0 {
		counts[0] = 7
		shots = 7
	}
	dist := make([]float64, n)
	ideal := make([]float64, n)
	var sd, si float64
	for i := range dist {
		dist[i] = rng.Float64()
		ideal[i] = rng.Float64() * rng.Float64()
		sd += dist[i]
		si += ideal[i]
	}
	for i := range dist {
		dist[i] /= sd
		ideal[i] /= si
	}
	k := 1 + rng.IntN(4)
	if k > n {
		k = n
	}
	correct := make([]int, 0, k)
	for len(correct) < k {
		v := rng.IntN(n)
		pos, dup := 0, false
		for pos < len(correct) && correct[pos] < v {
			pos++
		}
		if pos < len(correct) && correct[pos] == v {
			dup = true
		}
		if !dup {
			correct = append(correct, 0)
			copy(correct[pos+1:], correct[pos:])
			correct[pos] = v
		}
	}
	return metrics.ScoreInput{Counts: counts, Dist: dist, Ideal: ideal, Correct: correct, Shots: shots}
}

// TestMarginScorerMatchesFrozenPath is the refactor's pin: the
// registered "margin" scorer must reproduce the experiment layer's
// historical ScoreSorted + ClassicalFidelity + Aggregate path
// bit-identically, per instance and per aggregated column, over
// randomized evidence.
func TestMarginScorerMatchesFrozenPath(t *testing.T) {
	s, ok := metrics.LookupScorer("margin")
	if !ok {
		t.Fatal("margin scorer not registered")
	}
	if s.NumValues() != 2 || len(s.Columns()) != 6 {
		t.Fatalf("margin shape: %d values, %d columns", s.NumValues(), len(s.Columns()))
	}
	rng := rand.New(rand.NewPCG(97, 101))
	for trial := 0; trial < 200; trial++ {
		instances := 1 + rng.IntN(12)
		vals := make([]float64, 2*instances)
		results := make([]metrics.InstanceResult, instances)
		for i := 0; i < instances; i++ {
			in := randomInput(rng)
			var dst [2]float64
			s.ScoreInstance(dst[:], in)
			ir := metrics.ScoreSorted(in.Counts, in.Correct)
			ir.Fidelity = metrics.ClassicalFidelity(in.Ideal, in.Dist)
			if dst[0] != float64(ir.Margin) || dst[1] != ir.Fidelity {
				t.Fatalf("trial %d inst %d: scorer (%v, %v) vs frozen (%d, %v)",
					trial, i, dst[0], dst[1], ir.Margin, ir.Fidelity)
			}
			vals[0*instances+i] = dst[0]
			vals[1*instances+i] = dst[1]
			results[i] = ir
		}
		var agg [6]float64
		s.Aggregate(agg[:], vals, instances)
		want := metrics.Aggregate(results)
		got := [6]float64{agg[0], agg[1], agg[2], agg[3], agg[4], agg[5]}
		ref := [6]float64{want.SuccessRate, want.LowerBar, want.UpperBar,
			want.MarginMean, want.MarginSigma, want.MeanFidelity}
		if got != ref {
			t.Fatalf("trial %d: aggregate %v vs frozen %v", trial, got, ref)
		}
	}
}

// TestScorerZeroAlloc is the warm-path gate every registered scorer
// must pass: once dst is sized, ScoreInstance may not allocate — the
// instance tail stays allocation-free with any -scorers combination.
func TestScorerZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 11))
	in := randomInput(rng)
	for _, name := range metrics.ScorerNames() {
		s, _ := metrics.LookupScorer(name)
		dst := make([]float64, s.NumValues())
		s.ScoreInstance(dst, in) // warm
		allocs := testing.AllocsPerRun(100, func() {
			s.ScoreInstance(dst, in)
		})
		if allocs != 0 {
			t.Errorf("scorer %q: %.1f allocs per ScoreInstance, want 0", name, allocs)
		}
	}
}

func TestLinearXEB(t *testing.T) {
	// Sampling a delta ideal perfectly: XEB = 1.
	ideal := []float64{1, 0, 0, 0}
	if got := metrics.LinearXEB(ideal, []int{100, 0, 0, 0}, 100); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect sampling: %v, want 1", got)
	}
	// Fully depolarized (uniform) counts: XEB = 0.
	if got := metrics.LinearXEB(ideal, []int{25, 25, 25, 25}, 100); math.Abs(got) > 1e-12 {
		t.Errorf("uniform counts: %v, want 0", got)
	}
	// Uniform ideal has a vanishing denominator: defined as 0.
	u := []float64{0.25, 0.25, 0.25, 0.25}
	if got := metrics.LinearXEB(u, []int{100, 0, 0, 0}, 100); got != 0 {
		t.Errorf("degenerate ideal: %v, want 0", got)
	}
	// Empty histogram and zero shots: 0, not NaN or panic.
	if got := metrics.LinearXEB(ideal, nil, 100); got != 0 {
		t.Errorf("empty counts: %v, want 0", got)
	}
	if got := metrics.LinearXEB(ideal, []int{1, 0, 0, 0}, 0); got != 0 {
		t.Errorf("zero shots: %v, want 0", got)
	}
	// A histogram wider than the ideal treats missing ideal entries as
	// probability 0.
	short := []float64{1}
	got := metrics.LinearXEB(short, []int{50, 50}, 100)
	// u = 1/2; p = (1/2, -1/2); q-u = (0, 0) → num 0, den 1/2 → 0.
	if math.Abs(got) > 1e-12 {
		t.Errorf("short ideal: %v, want 0", got)
	}
}

func TestCorrectMass(t *testing.T) {
	counts := []int{10, 0, 30, 60}
	if got := metrics.CorrectMass(counts, []int{2, 3}, 100); got != 0.9 {
		t.Errorf("mass = %v, want 0.9", got)
	}
	// Out-of-range correct entries are ignored.
	if got := metrics.CorrectMass(counts, []int{0, 99}, 100); got != 0.1 {
		t.Errorf("out-of-range mass = %v, want 0.1", got)
	}
	if got := metrics.CorrectMass(counts, []int{0}, 0); got != 0 {
		t.Errorf("zero shots mass = %v, want 0", got)
	}
}

func TestScorerRegistry(t *testing.T) {
	names := metrics.ScorerNames()
	for _, want := range []string{"margin", "roundtrip", "xeb"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("scorer %q not registered (have %v)", want, names)
		}
	}
	if _, ok := metrics.LookupScorer("nope"); ok {
		t.Error("LookupScorer(nope) = ok")
	}
	if _, err := metrics.ResolveScorers([]string{"xeb", "nope"}); err == nil {
		t.Error("ResolveScorers with unknown name: no error")
	}
	ss, err := metrics.ResolveScorers([]string{"roundtrip", "xeb"})
	if err != nil || len(ss) != 2 || ss[0].Name() != "roundtrip" || ss[1].Name() != "xeb" {
		t.Errorf("ResolveScorers order: %v, %v", ss, err)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	metrics.RegisterScorer(dupScorer{})
}

// dupScorer collides with the built-in "margin" registration.
type dupScorer struct{}

func (dupScorer) Name() string                                { return "margin" }
func (dupScorer) Columns() []string                           { return nil }
func (dupScorer) NumValues() int                              { return 0 }
func (dupScorer) ScoreInstance([]float64, metrics.ScoreInput) {}
func (dupScorer) Aggregate([]float64, []float64, int)         {}
