// Package mat provides small dense complex-matrix linear algebra used to
// define quantum gates, verify unitarity, and compare circuits against
// their matrix semantics in tests. It is deliberately minimal: the
// statevector simulator in internal/sim never materializes full operator
// matrices; this package exists for gate definitions and verification.
package mat

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128
}

// New returns a zeroed Rows x Cols matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromSlice builds a matrix from a row-major slice. The slice is copied.
func FromSlice(rows, cols int, data []complex128) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: FromSlice got %d elements for %dx%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Mul returns the matrix product a*b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product a*v.
func MulVec(a *Matrix, v []complex128) []complex128 {
	if a.Cols != len(v) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", a.Rows, a.Cols, len(v)))
	}
	out := make([]complex128, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var s complex128
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// Kron returns the Kronecker (tensor) product a ⊗ b.
func Kron(a, b *Matrix) *Matrix {
	out := New(a.Rows*b.Rows, a.Cols*b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			av := a.At(i, j)
			if av == 0 {
				continue
			}
			for k := 0; k < b.Rows; k++ {
				for l := 0; l < b.Cols; l++ {
					out.Set(i*b.Rows+k, j*b.Cols+l, av*b.At(k, l))
				}
			}
		}
	}
	return out
}

// Dagger returns the conjugate transpose of m.
func Dagger(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// Scale returns s*m.
func Scale(s complex128, m *Matrix) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: Add dimension mismatch")
	}
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: Sub dimension mismatch")
	}
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out
}

// MaxAbsDiff returns max_ij |a_ij - b_ij|.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: MaxAbsDiff dimension mismatch")
	}
	var max float64
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// IsUnitary reports whether m is square and m†m = I within tol.
func IsUnitary(m *Matrix, tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	return MaxAbsDiff(Mul(Dagger(m), m), Identity(m.Rows)) <= tol
}

// EqualUpToGlobalPhase reports whether a = e^{iφ} b for some phase φ,
// within tol. Both matrices must have the same shape.
func EqualUpToGlobalPhase(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	// Find the largest-magnitude element of b to fix the phase.
	var ref int = -1
	var refMag float64
	for i, v := range b.Data {
		if m := cmplx.Abs(v); m > refMag {
			refMag, ref = m, i
		}
	}
	if ref < 0 { // b is zero; require a zero too
		for _, v := range a.Data {
			if cmplx.Abs(v) > tol {
				return false
			}
		}
		return true
	}
	if cmplx.Abs(a.Data[ref]) < tol && refMag >= tol {
		return false
	}
	phase := a.Data[ref] / b.Data[ref]
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false
	}
	return MaxAbsDiff(a, Scale(phase, b)) <= tol
}

// VecEqualUpToGlobalPhase reports whether vectors a = e^{iφ} b within tol.
func VecEqualUpToGlobalPhase(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	var ref = -1
	var refMag float64
	for i, v := range b {
		if m := cmplx.Abs(v); m > refMag {
			refMag, ref = m, i
		}
	}
	if ref < 0 {
		for _, v := range a {
			if cmplx.Abs(v) > tol {
				return false
			}
		}
		return true
	}
	phase := a[ref] / b[ref]
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-phase*b[i]) > tol {
			return false
		}
	}
	return true
}

// VecNorm returns the 2-norm of v.
func VecNorm(v []complex128) float64 {
	var s float64
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(s)
}

// Fidelity returns |<a|b>|^2 for normalized state vectors a and b.
func Fidelity(a, b []complex128) float64 {
	if len(a) != len(b) {
		panic("mat: Fidelity length mismatch")
	}
	var ip complex128
	for i := range a {
		ip += cmplx.Conj(a[i]) * b[i]
	}
	m := cmplx.Abs(ip)
	return m * m
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			fmt.Fprintf(&sb, "(%6.3f%+6.3fi) ", real(v), imag(v))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
