package mat_test

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"qfarith/internal/mat"
)

func TestIdentityAndMul(t *testing.T) {
	id := mat.Identity(4)
	a := mat.FromSlice(4, 4, []complex128{
		1, 2, 0, 0,
		0, 1i, 0, 3,
		2, 0, 1, 0,
		0, 0, 0, 1,
	})
	if d := mat.MaxAbsDiff(mat.Mul(a, id), a); d > 1e-15 {
		t.Errorf("A*I != A: %g", d)
	}
	if d := mat.MaxAbsDiff(mat.Mul(id, a), a); d > 1e-15 {
		t.Errorf("I*A != A: %g", d)
	}
}

func TestMulKnownProduct(t *testing.T) {
	a := mat.FromSlice(2, 2, []complex128{1, 2, 3, 4})
	b := mat.FromSlice(2, 2, []complex128{0, 1, 1, 0})
	p := mat.Mul(a, b)
	want := mat.FromSlice(2, 2, []complex128{2, 1, 4, 3})
	if d := mat.MaxAbsDiff(p, want); d > 1e-15 {
		t.Errorf("product wrong by %g", d)
	}
}

func TestMulVec(t *testing.T) {
	a := mat.FromSlice(2, 3, []complex128{1, 0, 2, 0, 1i, 0})
	v := []complex128{1, 2, 3}
	got := mat.MulVec(a, v)
	want := []complex128{7, 2i}
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-15 {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKronDimensionsAndValues(t *testing.T) {
	a := mat.FromSlice(2, 2, []complex128{1, 0, 0, 2})
	b := mat.FromSlice(2, 2, []complex128{0, 1, 1, 0})
	k := mat.Kron(a, b)
	if k.Rows != 4 || k.Cols != 4 {
		t.Fatalf("Kron dims %dx%d", k.Rows, k.Cols)
	}
	if k.At(0, 1) != 1 || k.At(2, 3) != 2 || k.At(3, 2) != 2 || k.At(0, 0) != 0 {
		t.Errorf("Kron values wrong:\n%s", k)
	}
}

func TestKronMixedProperty(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD) for unitary-sized random matrices.
	prop := func(seed int64) bool {
		r := func(k int64) *mat.Matrix {
			m := mat.New(2, 2)
			s := k
			for i := range m.Data {
				s = s*6364136223846793005 + 1442695040888963407
				m.Data[i] = complex(float64(s%7)-3, float64((s>>8)%5)-2)
			}
			return m
		}
		a, b, c, d := r(seed), r(seed+1), r(seed+2), r(seed+3)
		lhs := mat.Mul(mat.Kron(a, b), mat.Kron(c, d))
		rhs := mat.Kron(mat.Mul(a, c), mat.Mul(b, d))
		return mat.MaxAbsDiff(lhs, rhs) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDagger(t *testing.T) {
	a := mat.FromSlice(2, 3, []complex128{1 + 2i, 0, 3, 0, -1i, 5})
	d := mat.Dagger(a)
	if d.Rows != 3 || d.Cols != 2 {
		t.Fatalf("Dagger dims %dx%d", d.Rows, d.Cols)
	}
	if d.At(0, 0) != 1-2i || d.At(1, 1) != 1i || d.At(2, 1) != 5 {
		t.Error("Dagger values wrong")
	}
}

func TestIsUnitary(t *testing.T) {
	h := mat.FromSlice(2, 2, []complex128{
		complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0),
		complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0),
	})
	if !mat.IsUnitary(h, 1e-12) {
		t.Error("H should be unitary")
	}
	notU := mat.FromSlice(2, 2, []complex128{1, 1, 0, 1})
	if mat.IsUnitary(notU, 1e-12) {
		t.Error("upper triangular ones is not unitary")
	}
	rect := mat.New(2, 3)
	if mat.IsUnitary(rect, 1e-12) {
		t.Error("rectangular matrix cannot be unitary")
	}
}

func TestEqualUpToGlobalPhase(t *testing.T) {
	a := mat.FromSlice(2, 2, []complex128{1, 0, 0, 1i})
	phase := cmplx.Exp(complex(0, 0.7))
	b := mat.Scale(phase, a)
	if !mat.EqualUpToGlobalPhase(b, a, 1e-12) {
		t.Error("global phase not recognized")
	}
	c := a.Clone()
	c.Set(1, 1, -1i)
	if mat.EqualUpToGlobalPhase(c, a, 1e-12) {
		t.Error("distinct matrices reported phase-equal")
	}
	// Zero matrices compare equal.
	if !mat.EqualUpToGlobalPhase(mat.New(2, 2), mat.New(2, 2), 1e-12) {
		t.Error("zero matrices should compare equal")
	}
}

func TestVecEqualUpToGlobalPhase(t *testing.T) {
	a := []complex128{complex(1/math.Sqrt2, 0), complex(0, 1/math.Sqrt2)}
	phase := cmplx.Exp(complex(0, -1.2))
	b := []complex128{a[0] * phase, a[1] * phase}
	if !mat.VecEqualUpToGlobalPhase(b, a, 1e-12) {
		t.Error("vector global phase not recognized")
	}
	c := []complex128{a[0], -a[1]}
	if mat.VecEqualUpToGlobalPhase(c, a, 1e-12) {
		t.Error("relative phase difference missed")
	}
}

func TestFidelity(t *testing.T) {
	a := []complex128{1, 0}
	b := []complex128{0, 1}
	if f := mat.Fidelity(a, a); math.Abs(f-1) > 1e-15 {
		t.Errorf("self fidelity %g", f)
	}
	if f := mat.Fidelity(a, b); f > 1e-15 {
		t.Errorf("orthogonal fidelity %g", f)
	}
	c := []complex128{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)}
	if f := mat.Fidelity(a, c); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("overlap fidelity %g, want 0.5", f)
	}
}

func TestAddSubScale(t *testing.T) {
	a := mat.FromSlice(2, 2, []complex128{1, 2, 3, 4})
	b := mat.FromSlice(2, 2, []complex128{4, 3, 2, 1})
	s := mat.Add(a, b)
	for _, v := range s.Data {
		if v != 5 {
			t.Fatalf("Add wrong: %v", s.Data)
		}
	}
	d := mat.Sub(s, b)
	if diff := mat.MaxAbsDiff(d, a); diff > 1e-15 {
		t.Errorf("Sub round trip off by %g", diff)
	}
	sc := mat.Scale(2, a)
	if sc.At(1, 1) != 8 {
		t.Error("Scale wrong")
	}
}

func TestVecNorm(t *testing.T) {
	v := []complex128{3, 4i}
	if n := mat.VecNorm(v); math.Abs(n-5) > 1e-12 {
		t.Errorf("norm %g, want 5", n)
	}
}

func TestPanicsOnBadDimensions(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanic("Mul", func() { mat.Mul(mat.New(2, 3), mat.New(2, 3)) })
	assertPanic("MulVec", func() { mat.MulVec(mat.New(2, 3), make([]complex128, 2)) })
	assertPanic("Add", func() { mat.Add(mat.New(2, 2), mat.New(3, 3)) })
	assertPanic("FromSlice", func() { mat.FromSlice(2, 2, make([]complex128, 3)) })
	assertPanic("New", func() { mat.New(0, 5) })
}
