package compile

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand/v2"

	"qfarith/internal/circuit"
	"qfarith/internal/layout"
	"qfarith/internal/sim"
)

// DebugMaxQubits bounds the register width debug-mode verification
// simulates; wider circuits are passed through unchecked (a statevector
// check on them would dominate compile time).
const DebugMaxQubits = 16

// DebugTol is the per-amplitude equivalence tolerance of debug mode
// (after removing a global phase).
const DebugTol = 1e-12

// debugStates is how many pseudo-random input states each check drives
// through both circuits.
const debugStates = 2

// verifyPass checks that after implements the same unitary as before
// (up to global phase) by driving deterministic pseudo-random states
// through both circuits via internal/sim. For the route pass, routed
// supplies the layout bookkeeping: the input embeds through
// InitialLayout and outputs are compared at each logical qubit's
// FinalLayout home (unoccupied physical wires must stay |0⟩).
func verifyPass(name string, before, after *circuit.Circuit, routed *layout.Routed) error {
	width := before.NumQubits
	if after.NumQubits > width {
		width = after.NumQubits
	}
	if width > DebugMaxQubits {
		return nil
	}
	rng := rand.New(rand.NewPCG(0x636f6d70696c6564, uint64(width)))
	for trial := 0; trial < debugStates; trial++ {
		in := randomAmps(rng, 1<<uint(before.NumQubits))

		want := sim.NewState(before.NumQubits)
		want.SetAmplitudes(in)
		want.ApplyCircuit(before)

		var got []complex128
		if routed != nil {
			phys, err := applyRouted(in, after, routed, before.NumQubits)
			if err != nil {
				return fmt.Errorf("compile: debug: pass %s %w", name, err)
			}
			got = phys
		} else {
			if after.NumQubits != before.NumQubits {
				return fmt.Errorf("compile: debug: pass %s changed register width %d → %d without layout bookkeeping",
					name, before.NumQubits, after.NumQubits)
			}
			st := sim.NewState(after.NumQubits)
			st.SetAmplitudes(in)
			st.ApplyCircuit(after)
			got = st.Amps()
		}
		if idx, diff, ok := equalUpToGlobalPhase(got, want.Amps(), DebugTol); !ok {
			return fmt.Errorf("compile: debug: pass %s broke unitary equivalence (trial %d, amplitude %d differs by %.3g > %g)",
				name, trial, idx, diff, DebugTol)
		}
	}
	return nil
}

// applyRouted runs the routed circuit on the physical register with the
// logical input embedded per InitialLayout, then gathers the logical
// amplitudes from each qubit's FinalLayout home. A nonzero amplitude on
// a basis state whose unoccupied physical wires are not |0⟩ is an
// error.
func applyRouted(in []complex128, after *circuit.Circuit, routed *layout.Routed, logicalQubits int) ([]complex128, error) {
	phys := sim.NewState(after.NumQubits)
	amps := make([]complex128, phys.Dim())
	for l, amp := range in {
		p := 0
		for q := 0; q < logicalQubits; q++ {
			if l>>uint(q)&1 == 1 {
				p |= 1 << uint(routed.InitialLayout[q])
			}
		}
		amps[p] = amp
	}
	phys.SetAmplitudes(amps)
	phys.ApplyCircuit(after)

	occupied := 0
	for _, p := range routed.FinalLayout {
		occupied |= 1 << uint(p)
	}
	out := make([]complex128, len(in))
	for pIdx, amp := range phys.Amps() {
		if pIdx&^occupied != 0 {
			if cmplx.Abs(amp) > DebugTol {
				return nil, fmt.Errorf("left %.3g amplitude on an unoccupied physical wire (basis %d)", cmplx.Abs(amp), pIdx)
			}
			continue
		}
		l := 0
		for q := 0; q < logicalQubits; q++ {
			if pIdx>>uint(routed.FinalLayout[q])&1 == 1 {
				l |= 1 << uint(q)
			}
		}
		out[l] = amp
	}
	return out, nil
}

// randomAmps draws a normalized complex vector.
func randomAmps(rng *rand.Rand, dim int) []complex128 {
	amps := make([]complex128, dim)
	norm := 0.0
	for i := range amps {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		amps[i] = complex(re, im)
		norm += re*re + im*im
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range amps {
		amps[i] *= scale
	}
	return amps
}

// equalUpToGlobalPhase compares two amplitude vectors after removing
// the global phase that aligns them at got's largest-magnitude entry.
// Returns the first offending index and its deviation on mismatch.
func equalUpToGlobalPhase(got, want []complex128, tol float64) (int, float64, bool) {
	if len(got) != len(want) {
		return -1, math.Inf(1), false
	}
	ref, best := -1, 0.0
	for i, w := range want {
		if a := cmplx.Abs(w); a > best {
			best, ref = a, i
		}
	}
	phase := complex(1, 0)
	if ref >= 0 && best > tol {
		r := got[ref] / want[ref]
		if a := cmplx.Abs(r); a > 0 {
			phase = r / complex(a, 0)
		}
	}
	for i := range got {
		if diff := cmplx.Abs(got[i] - phase*want[i]); diff > tol {
			return i, diff, false
		}
	}
	return -1, 0, true
}
