package compile

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/qft"
)

var updateGateBaseline = flag.Bool("update-gate-baseline", false,
	"rewrite results/gate_counts_baseline.txt from the current default pipeline")

const gateBaselinePath = "../../results/gate_counts_baseline.txt"

// gateCountCases is the fig3/fig4 circuit family: the paper's QFA(7,8)
// at the Fig. 3 legend depths and QFM(4,4) at the Fig. 4 depths.
func gateCountCases() []struct {
	name string
	c    *circuit.Circuit
} {
	var cases []struct {
		name string
		c    *circuit.Circuit
	}
	for _, d := range []int{1, 2, 3, 4, qft.Full} {
		label := fmt.Sprintf("d%d", d)
		if qft.IsFull(d, 8) {
			label = "dfull"
		}
		cases = append(cases, struct {
			name string
			c    *circuit.Circuit
		}{"qfa-7-8-" + label, arith.NewQFA(7, 8, arith.Config{Depth: d, AddCut: arith.FullAdd})})
	}
	for _, d := range []int{1, 2, qft.Full} {
		label := fmt.Sprintf("d%d", d)
		if qft.IsFull(d, 5) {
			label = "dfull"
		}
		cases = append(cases, struct {
			name string
			c    *circuit.Circuit
		}{"qfm-4-4-" + label, arith.NewQFM(4, 4, arith.Config{Depth: d, AddCut: arith.FullAdd})})
	}
	return cases
}

// TestGateCountsMatchBaseline fails when the default pipeline's native
// 1q/2q gate counts for the fig3/fig4 circuit family drift from the
// committed baseline. An intentional change to decomposition or the
// default pass list should be accompanied by
//
//	go test ./internal/compile/ -run GateCounts -update-gate-baseline
//
// and a reviewed diff of results/gate_counts_baseline.txt.
func TestGateCountsMatchBaseline(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# native gate counts, default pipeline (" + DefaultString() + ")\n")
	sb.WriteString("# circuit native1q native2q\n")
	for _, tc := range gateCountCases() {
		art := mustCompile(t, Config{}, tc.c)
		n1, n2 := art.Result.CountByArity()
		fmt.Fprintf(&sb, "%s %d %d\n", tc.name, n1, n2)
	}
	got := sb.String()

	if *updateGateBaseline {
		if err := os.WriteFile(filepath.FromSlash(gateBaselinePath), []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated:\n%s", got)
		return
	}

	want, err := os.ReadFile(filepath.FromSlash(gateBaselinePath))
	if err != nil {
		t.Fatalf("no committed baseline (%v); run with -update-gate-baseline to create it", err)
	}
	if string(want) != got {
		t.Errorf("native gate counts drifted from %s\n--- committed\n%s--- current\n%s",
			gateBaselinePath, want, got)
	}
}
