// Package compile unifies circuit compilation into a configurable pass
// pipeline. The paper's sweeps hinge on faithful native-gate counts and
// depths under the IBM basis {id, x, rz, sx, cx}; historically the four
// compilation stages — basis decomposition, peephole optimization, SWAP
// routing, and trajectory fusion — were wired ad-hoc into the backend
// cache, the experiment runner, the façade, and the CLI. This package
// composes them (plus new optimizations) as named passes behind one
// entry point, with per-pass statistics, a deterministic configuration
// hash for caching and resume verification, and an optional debug mode
// that checks statevector equivalence after every pass.
//
// A Pipeline always contains the decompose pass (the logical→native
// boundary, from transpile.Transpile). Passes before it transform the
// logical (source) circuit — the op stream the trajectory engine
// executes on error-free stretches — so source-level passes like
// sink-diagonals directly reshape the fused execution plan while the
// native span bookkeeping stays exact. Passes after decompose transform
// the native circuit; once one changes it, the source/span bookkeeping
// cannot survive, so the pipeline re-wraps the final native circuit as
// its own source (exactly what the routed-experiment path always did).
// The terminal fuse pass materializes the fused execution plan and
// reports its segment statistics.
package compile

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"qfarith/internal/circuit"
	"qfarith/internal/layout"
	"qfarith/internal/transpile"
)

// Stats records what one pass did to the circuit: op, 1q-gate and
// 2q-gate totals before and after, the depth delta, and wall time.
type Stats struct {
	Pass        string        `json:"pass"`
	OpsBefore   int           `json:"ops_before"`
	OpsAfter    int           `json:"ops_after"`
	OneQBefore  int           `json:"one_q_before"`
	OneQAfter   int           `json:"one_q_after"`
	TwoQBefore  int           `json:"two_q_before"`
	TwoQAfter   int           `json:"two_q_after"`
	DepthBefore int           `json:"depth_before"`
	DepthAfter  int           `json:"depth_after"`
	Wall        time.Duration `json:"wall_ns"`
	// Segments is the fused-plan segment count (fuse pass only).
	Segments int `json:"segments,omitempty"`
	// Swaps is the number of SWAPs inserted (route pass only).
	Swaps int `json:"swaps,omitempty"`
}

// Pass is one compilation stage: a named circuit transformation.
// Implementations must not mutate the input circuit and must preserve
// the implemented unitary up to global phase (debug mode verifies
// this). Run fills the before/after fields of Stats via the Measure
// helpers; the pipeline stamps wall time.
type Pass interface {
	Name() string
	Run(c *circuit.Circuit) (*circuit.Circuit, Stats, error)
}

// Canonical pass names.
const (
	PassSinkDiagonals  = "sink-diagonals"
	PassDecompose      = "decompose"
	PassCancelInverses = "cancel-inverses"
	PassFoldAngles     = "fold-angles"
	PassPruneZeroAngle = "prune-zero-angle"
	PassRoute          = "route"
	PassFuse           = "fuse"
)

// DefaultPasses is the default pipeline: pure basis decomposition
// followed by trajectory fusion — the exact compilation the paper's
// figures (and this repo's committed CSVs) were produced with. Adding
// optimization passes changes native gate order and therefore the
// positions at which trajectory noise is injected, so they are opt-in.
var DefaultPasses = []string{PassDecompose, PassFuse}

// DefaultString renders DefaultPasses as a -passes flag value.
func DefaultString() string { return strings.Join(DefaultPasses, ",") }

// Config selects and parameterizes a pipeline. The zero value is the
// default pipeline.
type Config struct {
	// Passes is the ordered pass list; empty means DefaultPasses.
	Passes []string `json:"passes,omitempty"`
	// Coupling names the coupling map the route pass targets:
	// "linear:N", "grid:RxC", or "heavyhex27". Required iff the pass
	// list contains route.
	Coupling string `json:"coupling,omitempty"`
	// Debug verifies statevector equivalence (≤ DebugTol, up to global
	// phase) after every pass, on circuits of at most DebugMaxQubits
	// qubits. It never changes the compiled output, so it is excluded
	// from the config hash.
	Debug bool `json:"debug,omitempty"`
}

// PassList returns the effective pass order (DefaultPasses when unset).
func (c Config) PassList() []string {
	if len(c.Passes) == 0 {
		return DefaultPasses
	}
	return c.Passes
}

// IsDefault reports whether the config compiles identically to the
// default pipeline.
func (c Config) IsDefault() bool { return c.Hash() == (Config{}).Hash() }

// Hash returns the deterministic identity of the compilation this
// config performs: equal hashes guarantee identical compiled output for
// identical input circuits. Backend transpile caches key on it and
// durable-run manifests fold it into their config hash so -resume
// refuses a run whose pass configuration changed. Debug is excluded —
// it only verifies, never transforms.
func (c Config) Hash() string {
	canon := "passes=" + strings.Join(c.PassList(), ",") + ";coupling=" + c.Coupling
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:8])
}

// ParsePasses splits a comma-separated -passes flag value.
func ParsePasses(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// Artifact is a pipeline's compiled output.
type Artifact struct {
	// Result is the executable circuit: native ops plus the source-op
	// and span bookkeeping the noise engine injects errors through.
	// When no pass after decompose changed the native ops, Source holds
	// the logical circuit and Spans are exact; otherwise the native
	// circuit is its own source (identity spans).
	Result *transpile.Result
	// Routed carries the layout bookkeeping when the route pass ran.
	Routed *layout.Routed
	// Stats holds one entry per executed pass, in pipeline order.
	Stats []Stats
	// SourceDepth is the logical circuit's depth before any pass;
	// NativeDepth is the final native circuit's depth — the depth the
	// noise model actually sees.
	SourceDepth int
	NativeDepth int
}

// Pipeline is a validated, reusable pass sequence. It is safe for
// concurrent Compile calls: pass instances are created per call.
type Pipeline struct {
	cfg      Config
	coupling *layout.CouplingMap // resolved when the list contains route
}

// New validates cfg and returns its pipeline. Structural constraints:
// decompose must appear exactly once, fuse (if present) must be last,
// route must come after decompose and requires Coupling, and every
// name must be a known pass.
func New(cfg Config) (*Pipeline, error) {
	list := cfg.PassList()
	decomposeAt := -1
	for i, name := range list {
		switch name {
		case PassDecompose:
			if decomposeAt >= 0 {
				return nil, fmt.Errorf("compile: decompose appears twice in pass list %v", list)
			}
			decomposeAt = i
		case PassFuse:
			if i != len(list)-1 {
				return nil, fmt.Errorf("compile: fuse must be the terminal pass, got position %d in %v", i+1, list)
			}
		case PassRoute:
			if decomposeAt < 0 {
				return nil, fmt.Errorf("compile: route requires decompose earlier in the pass list (routing needs native 1q/2q gates)")
			}
			if cfg.Coupling == "" {
				return nil, fmt.Errorf("compile: route pass requires Config.Coupling")
			}
		case PassSinkDiagonals, PassCancelInverses, PassFoldAngles, PassPruneZeroAngle:
			// transform passes: valid anywhere before fuse
		default:
			return nil, fmt.Errorf("compile: unknown pass %q (known: %s)", name, strings.Join(KnownPasses(), ", "))
		}
	}
	if decomposeAt < 0 {
		return nil, fmt.Errorf("compile: pass list %v lacks decompose; the pipeline must lower to the native basis", list)
	}
	p := &Pipeline{cfg: cfg}
	if cfg.Coupling != "" {
		cm, err := ResolveCoupling(cfg.Coupling)
		if err != nil {
			return nil, err
		}
		p.coupling = cm
	}
	return p, nil
}

// KnownPasses lists every pass name New accepts, in canonical order.
func KnownPasses() []string {
	return []string{
		PassSinkDiagonals, PassDecompose, PassCancelInverses,
		PassFoldAngles, PassPruneZeroAngle, PassRoute, PassFuse,
	}
}

// Config returns the validated configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Hash is shorthand for p.Config().Hash().
func (p *Pipeline) Hash() string { return p.cfg.Hash() }

// Compile runs every pass over c and assembles the executable artifact.
// With cfg.Debug set, statevector equivalence is verified after every
// pass (on registers of at most DebugMaxQubits qubits) and the first
// violation aborts compilation with a descriptive error.
func (p *Pipeline) Compile(c *circuit.Circuit) (*Artifact, error) {
	art := &Artifact{SourceDepth: c.Depth()}
	cur := c
	var (
		res           *transpile.Result // span-exact lowering from decompose
		nativeChanged bool
	)
	for _, name := range p.cfg.PassList() {
		start := time.Now()
		var (
			next *circuit.Circuit
			st   Stats
			err  error
		)
		switch name {
		case PassDecompose:
			res = transpile.Transpile(cur)
			next = res.Circuit()
			st = measure(PassDecompose, cur, next)
		case PassRoute:
			routed := layout.Route(cur, p.coupling, nil)
			next = routed.Circuit
			st = measure(PassRoute, cur, next)
			st.Swaps = routed.SwapCount
			art.Routed = routed
			nativeChanged = true
		case PassFuse:
			// Terminal: settle the executable result, then materialize
			// the fused plan and report its shape.
			res = p.finalResult(res, cur, nativeChanged)
			nativeChanged = false
			fp := res.Fused()
			next = cur
			st = measure(PassFuse, cur, next)
			st.Segments = len(fp.Segments)
		default:
			var pass Pass
			pass, err = newPass(name)
			if err != nil {
				return nil, err
			}
			next, st, err = pass.Run(cur)
			if err != nil {
				return nil, fmt.Errorf("compile: pass %s: %w", name, err)
			}
			if res != nil && opsDiffer(cur, next) {
				nativeChanged = true
			}
		}
		st.Wall = time.Since(start)
		if p.cfg.Debug && name != PassFuse {
			// Only the route pass itself needs layout-aware comparison;
			// later passes transform the physical circuit in place.
			var rinfo *layout.Routed
			if name == PassRoute {
				rinfo = art.Routed
			}
			if err := verifyPass(name, cur, next, rinfo); err != nil {
				return nil, err
			}
		}
		cur = next
		art.Stats = append(art.Stats, st)
	}
	art.Result = p.finalResult(res, cur, nativeChanged)
	art.NativeDepth = cur.Depth()
	return art, nil
}

// finalResult settles the executable Result: the span-exact decompose
// lowering when nothing touched the native ops afterwards, otherwise a
// re-wrap of the final native circuit as its own source. Native gates
// lower to themselves, so the re-wrap has identity spans and the noise
// engine injects at the exact same physical positions either way.
func (p *Pipeline) finalResult(res *transpile.Result, cur *circuit.Circuit, nativeChanged bool) *transpile.Result {
	if res != nil && !nativeChanged {
		return res
	}
	return transpile.Transpile(cur)
}

// measure fills a Stats record from the circuits before and after a
// pass (3q gates count toward neither arity bucket; none survive
// decompose).
func measure(pass string, before, after *circuit.Circuit) Stats {
	b1, b2, _ := before.CountByArity()
	a1, a2, _ := after.CountByArity()
	return Stats{
		Pass:      pass,
		OpsBefore: len(before.Ops), OpsAfter: len(after.Ops),
		OneQBefore: b1, OneQAfter: a1,
		TwoQBefore: b2, TwoQAfter: a2,
		DepthBefore: before.Depth(), DepthAfter: after.Depth(),
	}
}

// opsDiffer reports whether two circuits hold different op lists.
func opsDiffer(a, b *circuit.Circuit) bool {
	if len(a.Ops) != len(b.Ops) {
		return true
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			return true
		}
	}
	return false
}

// ResolveCoupling parses a coupling-map name: "linear:N", "grid:RxC",
// or "heavyhex27".
func ResolveCoupling(name string) (*layout.CouplingMap, error) {
	switch {
	case name == "heavyhex27":
		return layout.HeavyHexFalcon27(), nil
	case strings.HasPrefix(name, "linear:"):
		var n int
		if _, err := fmt.Sscanf(name, "linear:%d", &n); err != nil || n < 2 {
			return nil, fmt.Errorf("compile: bad coupling %q (want linear:N, N ≥ 2)", name)
		}
		return layout.Linear(n), nil
	case strings.HasPrefix(name, "grid:"):
		var r, c int
		if _, err := fmt.Sscanf(name, "grid:%dx%d", &r, &c); err != nil || r < 1 || c < 1 || r*c < 2 {
			return nil, fmt.Errorf("compile: bad coupling %q (want grid:RxC)", name)
		}
		return layout.Grid(r, c), nil
	default:
		return nil, fmt.Errorf("compile: unknown coupling %q (want linear:N, grid:RxC, heavyhex27)", name)
	}
}
