package compile

import (
	"math"
	"strings"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/gate"
	"qfarith/internal/mat"
	"qfarith/internal/qft"
	"qfarith/internal/testutil"
	"qfarith/internal/transpile"
)

func mustCompile(t *testing.T, cfg Config, c *circuit.Circuit) *Artifact {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	art, err := p.Compile(c)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return art
}

// TestDefaultPipelineMatchesTranspile pins the byte-identity guarantee:
// the default pipeline's Result must be indistinguishable from a direct
// transpile.Transpile call — same native ops, same source ops, same
// spans — so every pre-pipeline seed-stable output is preserved.
func TestDefaultPipelineMatchesTranspile(t *testing.T) {
	c := arith.NewQFA(3, 4, arith.Config{Depth: 2, AddCut: arith.FullAdd})
	want := transpile.Transpile(c)
	art := mustCompile(t, Config{}, c)

	if len(art.Result.Ops) != len(want.Ops) {
		t.Fatalf("native op count %d, want %d", len(art.Result.Ops), len(want.Ops))
	}
	for i := range want.Ops {
		if art.Result.Ops[i] != want.Ops[i] {
			t.Fatalf("native op %d: %v != %v", i, art.Result.Ops[i], want.Ops[i])
		}
	}
	if len(art.Result.Source) != len(c.Ops) {
		t.Fatalf("source op count %d, want %d (default pipeline must keep the logical source)", len(art.Result.Source), len(c.Ops))
	}
	for i := range c.Ops {
		if art.Result.Source[i] != c.Ops[i] {
			t.Fatalf("source op %d: %v != %v", i, art.Result.Source[i], c.Ops[i])
		}
	}
	if len(art.Result.Spans) != len(want.Spans) {
		t.Fatalf("span count %d, want %d", len(art.Result.Spans), len(want.Spans))
	}
	for i := range want.Spans {
		if art.Result.Spans[i] != want.Spans[i] {
			t.Fatalf("span %d: %v != %v", i, art.Result.Spans[i], want.Spans[i])
		}
	}

	if len(art.Stats) != 2 || art.Stats[0].Pass != PassDecompose || art.Stats[1].Pass != PassFuse {
		t.Fatalf("default pipeline stats = %+v, want [decompose, fuse]", art.Stats)
	}
	if art.Stats[1].Segments <= 0 {
		t.Error("fuse pass reported no segments")
	}
	if art.SourceDepth != c.Depth() {
		t.Errorf("SourceDepth %d, want %d", art.SourceDepth, c.Depth())
	}
	if wantND := want.Circuit().Depth(); art.NativeDepth != wantND {
		t.Errorf("NativeDepth %d, want %d", art.NativeDepth, wantND)
	}
	if art.NativeDepth < art.SourceDepth {
		t.Errorf("NativeDepth %d < SourceDepth %d — decomposition only adds gates", art.NativeDepth, art.SourceDepth)
	}
}

func TestConfigHash(t *testing.T) {
	def := Config{}
	explicit := Config{Passes: []string{PassDecompose, PassFuse}}
	if def.Hash() != explicit.Hash() {
		t.Error("explicit default pass list hashes differently from the zero config")
	}
	if !def.IsDefault() || !explicit.IsDefault() {
		t.Error("default configs not recognized as default")
	}
	withOpt := Config{Passes: []string{PassDecompose, PassCancelInverses, PassFuse}}
	if withOpt.Hash() == def.Hash() {
		t.Error("adding a pass did not change the hash")
	}
	if withOpt.IsDefault() {
		t.Error("optimizing config claims to be default")
	}
	routed := Config{Passes: []string{PassDecompose, PassRoute, PassFuse}, Coupling: "linear:5"}
	routed2 := Config{Passes: []string{PassDecompose, PassRoute, PassFuse}, Coupling: "linear:6"}
	if routed.Hash() == routed2.Hash() {
		t.Error("coupling map not folded into the hash")
	}
	debug := Config{Debug: true}
	if debug.Hash() != def.Hash() {
		t.Error("Debug changed the hash; it must not (verification never changes output)")
	}
}

func TestParsePasses(t *testing.T) {
	got := ParsePasses(" decompose, fuse ,")
	if len(got) != 2 || got[0] != PassDecompose || got[1] != PassFuse {
		t.Fatalf("ParsePasses = %v", got)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no-decompose", Config{Passes: []string{PassFuse}}, "lacks decompose"},
		{"double-decompose", Config{Passes: []string{PassDecompose, PassDecompose, PassFuse}}, "twice"},
		{"fuse-not-last", Config{Passes: []string{PassDecompose, PassFuse, PassCancelInverses}}, "terminal"},
		{"route-before-decompose", Config{Passes: []string{PassRoute, PassDecompose}, Coupling: "linear:5"}, "route requires decompose"},
		{"route-no-coupling", Config{Passes: []string{PassDecompose, PassRoute}}, "Coupling"},
		{"unknown-pass", Config{Passes: []string{PassDecompose, "magic"}}, "unknown pass"},
		{"bad-coupling", Config{Passes: []string{PassDecompose, PassRoute}, Coupling: "torus:3"}, "unknown coupling"},
	}
	for _, cse := range cases {
		_, err := New(cse.cfg)
		if err == nil {
			t.Errorf("%s: New accepted invalid config %+v", cse.name, cse.cfg)
			continue
		}
		if !strings.Contains(err.Error(), cse.want) {
			t.Errorf("%s: error %q does not mention %q", cse.name, err, cse.want)
		}
	}
}

func TestResolveCoupling(t *testing.T) {
	for _, name := range []string{"linear:5", "grid:3x5", "heavyhex27"} {
		if _, err := ResolveCoupling(name); err != nil {
			t.Errorf("ResolveCoupling(%q): %v", name, err)
		}
	}
	for _, name := range []string{"linear:1", "grid:0x4", "grid:bad", ""} {
		if _, err := ResolveCoupling(name); err == nil {
			t.Errorf("ResolveCoupling(%q) accepted", name)
		}
	}
}

// checkPipelineEquivalent compiles c through cfg and asserts the final
// native circuit implements the source unitary (up to global phase).
func checkPipelineEquivalent(t *testing.T, cfg Config, c *circuit.Circuit, n int, label string) *Artifact {
	t.Helper()
	art := mustCompile(t, cfg, c)
	want := testutil.CircuitUnitary(c, n)
	got := testutil.CircuitUnitary(art.Result.Circuit(), n)
	if !mat.EqualUpToGlobalPhase(got, want, 1e-9) {
		t.Fatalf("%s: compiled unitary differs from source", label)
	}
	return art
}

var trioConfig = Config{Passes: []string{
	PassDecompose, PassCancelInverses, PassFoldAngles, PassPruneZeroAngle, PassFuse,
}}

// TestPeepholeCancelsTrivialPatterns re-homes the old transpile.Optimize
// coverage: adjacent inverse pairs and zero rotations vanish.
func TestPeepholeCancelsTrivialPatterns(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.X, 0, 0)
	c.Append(gate.X, 0, 0) // cancels
	c.Append(gate.CX, 0, 0, 1)
	c.Append(gate.CX, 0, 0, 1) // cancels
	c.Append(gate.RZ, math.Pi/4, 1)
	c.Append(gate.RZ, -math.Pi/4, 1) // folds to 0, then pruned
	c.Append(gate.I, 0, 0)           // dropped
	c.Append(gate.H, 0, 0)           // survives (as its native expansion)

	art := checkPipelineEquivalent(t, trioConfig, c, 2, "trivial-patterns")
	if got := len(art.Result.Ops); got != 3 {
		t.Errorf("optimized to %d native ops, want 3 (H = rz·sx·rz):\n%s", got, art.Result.Circuit())
	}
}

// TestPeepholeRespectsInterveningGates: a pattern split by a gate on a
// shared wire must never cancel.
func TestPeepholeRespectsInterveningGates(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.X, 0, 0)
	c.Append(gate.CX, 0, 0, 1) // touches qubit 0: blocks the X pair
	c.Append(gate.X, 0, 0)

	art := checkPipelineEquivalent(t, trioConfig, c, 2, "intervening")
	if got := len(art.Result.Ops); got != 3 {
		t.Errorf("optimizer dropped gates across an intervening CX: %d ops, want 3", got)
	}
}

// TestOptimizedQFAStillCorrect: the full trio on a real arithmetic
// circuit preserves the unitary while strictly shrinking the gate list.
func TestOptimizedQFAStillCorrect(t *testing.T) {
	c := arith.NewQFA(2, 3, arith.Config{Depth: 2, AddCut: arith.FullAdd})
	art := checkPipelineEquivalent(t, trioConfig, c, 5, "qfa")
	plain := transpile.Transpile(c)
	if len(art.Result.Ops) >= len(plain.Ops) {
		t.Errorf("trio did not shrink the QFA: %d >= %d native ops", len(art.Result.Ops), len(plain.Ops))
	}
}

// TestSinkDiagonalsEnlargesFusedSegments: commuting diagonals left past
// gates that share only control wires must reduce the fused-plan segment
// count on circuits with controlled arithmetic (the order-finding
// capstone). Bare QFA/QFM are structurally immune — every H in a QFT
// ladder is pinned between CP gates sharing its qubit on both sides, so
// no commutation-only pass can change their segment alternation — and
// the pass must leave their counts exactly unchanged.
func TestSinkDiagonalsEnlargesFusedSegments(t *testing.T) {
	sink := Config{Passes: []string{PassSinkDiagonals, PassDecompose, PassFuse}}
	segs := func(cfg Config, c *circuit.Circuit) int {
		art := mustCompile(t, cfg, c)
		return art.Stats[len(art.Stats)-1].Segments
	}

	of, _ := arith.NewOrderFinding(7, 15, 3, arith.DefaultConfig())
	if d, s := segs(Config{}, of), segs(sink, of); s >= d {
		t.Errorf("order-finding: sink-diagonals did not reduce segments: %d -> %d", d, s)
	}

	// Minimal shape of the win: a diagonal run split by a CX that shares
	// only its control wire with the trailing diagonals. The trailing run
	// hops left over the CX and the two runs merge.
	c := circuit.New(3)
	c.Append(gate.RZ, math.Pi/3, 1)
	c.Append(gate.CP, math.Pi/5, 0, 1)
	c.Append(gate.CX, 0, 0, 2)
	c.Append(gate.CP, math.Pi/7, 0, 1)
	c.Append(gate.RZ, math.Pi/9, 0)
	if d, s := segs(Config{}, c), segs(sink, c); d != 3 || s != 2 {
		t.Errorf("engineered: want 3 -> 2 segments, got %d -> %d", d, s)
	}

	for _, tc := range []struct {
		label string
		c     *circuit.Circuit
	}{
		{"qfa-7-8-d3", arith.NewQFA(7, 8, arith.Config{Depth: 3, AddCut: arith.FullAdd})},
		{"qfm-4-4-d2", arith.NewQFM(4, 4, arith.Config{Depth: 2, AddCut: arith.FullAdd})},
	} {
		if d, s := segs(Config{}, tc.c), segs(sink, tc.c); s != d {
			t.Errorf("%s: expected structural no-op on a bare QFT ladder, got %d -> %d", tc.label, d, s)
		}
	}
}

// TestSinkDiagonalsPreservesUnitary on a circuit engineered so a
// diagonal must hop over a disjoint non-diagonal gate but stop at a
// blocker sharing a qubit.
func TestSinkDiagonalsPreservesUnitary(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.RZ, math.Pi/3, 0)
	c.Append(gate.H, 0, 1)             // disjoint from q2: hoppable
	c.Append(gate.CP, math.Pi/5, 0, 2) // diagonal: should join the RZ run
	c.Append(gate.SX, 0, 2)            // blocker for anything on q2
	c.Append(gate.RZ, math.Pi/7, 2)    // must stay behind the SX

	pass := sinkDiagonalsPass{}
	out, _, err := pass.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ops[1].Kind != gate.CP {
		t.Errorf("CP did not hop over the disjoint H: %v", out.Ops)
	}
	if out.Ops[4].Kind != gate.RZ || out.Ops[3].Kind != gate.SX {
		t.Errorf("RZ crossed a blocking SX: %v", out.Ops)
	}
	want := testutil.CircuitUnitary(c, 3)
	got := testutil.CircuitUnitary(out, 3)
	if !mat.EqualUpToGlobalPhase(got, want, 1e-12) {
		t.Error("sink-diagonals changed the unitary")
	}

	// Control-wire hops: a diagonal commutes with a controlled gate when
	// every shared qubit is one of its controls — but not when it touches
	// a target.
	c2 := circuit.New(3)
	c2.Append(gate.CP, math.Pi/3, 0, 1)
	c2.Append(gate.CCX, 0, 0, 1, 2)     // controls q0,q1; target q2
	c2.Append(gate.CP, math.Pi/5, 1, 0) // shares only controls: hops
	c2.Append(gate.CX, 0, 0, 2)
	c2.Append(gate.RZ, math.Pi/7, 2) // q2 is the CX target: pinned
	out2, _, err := pass.Run(c2)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Ops[1].Kind != gate.CP || out2.Ops[2].Kind != gate.CCX {
		t.Errorf("CP did not hop over the CCX sharing only controls: %v", out2.Ops)
	}
	if out2.Ops[4].Kind != gate.RZ || out2.Ops[3].Kind != gate.CX {
		t.Errorf("RZ crossed the CX acting on its wire as target: %v", out2.Ops)
	}
	want2 := testutil.CircuitUnitary(c2, 3)
	got2 := testutil.CircuitUnitary(out2, 3)
	if !mat.EqualUpToGlobalPhase(got2, want2, 1e-12) {
		t.Error("control-wire hop changed the unitary")
	}
}

// TestRoutePass compiles onto a linear chain with debug verification:
// the layout-aware equivalence check must pass and the artifact must
// carry the routing bookkeeping.
func TestRoutePass(t *testing.T) {
	c := arith.NewQFA(2, 3, arith.Config{Depth: 2, AddCut: arith.FullAdd})
	cfg := Config{
		Passes:   []string{PassDecompose, PassRoute, PassFuse},
		Coupling: "linear:5",
		Debug:    true,
	}
	art := mustCompile(t, cfg, c)
	if art.Routed == nil {
		t.Fatal("route pass left no layout bookkeeping")
	}
	var routeStats *Stats
	for i := range art.Stats {
		if art.Stats[i].Pass == PassRoute {
			routeStats = &art.Stats[i]
		}
	}
	if routeStats == nil {
		t.Fatal("no route stats recorded")
	}
	if routeStats.Swaps != art.Routed.SwapCount {
		t.Errorf("stats swaps %d != routed swaps %d", routeStats.Swaps, art.Routed.SwapCount)
	}
	if art.Routed.SwapCount == 0 {
		t.Error("routing a QFA onto a linear chain inserted no SWAPs — test circuit too easy")
	}
	for _, op := range art.Result.Ops {
		if !gate.IsNative(op.Kind) {
			t.Fatalf("non-native gate %s survived the routed pipeline", op.Kind)
		}
	}
}

// TestDebugCatchesBrokenCircuit drives verifyPass with an "after"
// circuit that implements a different unitary and checks it objects.
func TestDebugCatchesBrokenCircuit(t *testing.T) {
	before := circuit.New(2)
	before.Append(gate.H, 0, 0)
	before.Append(gate.CX, 0, 0, 1)
	broken := before.Clone()
	broken.Append(gate.X, 0, 1) // silently appended "optimization"
	if err := verifyPass("bogus", before, broken, nil); err == nil {
		t.Fatal("verifyPass accepted a circuit with a different unitary")
	}
	// Sanity: the identical circuit must verify clean.
	if err := verifyPass("identity", before, before.Clone(), nil); err != nil {
		t.Fatalf("verifyPass rejected an identical circuit: %v", err)
	}
}

// TestDebugSkipsWideCircuits: registers above DebugMaxQubits must pass
// through unchecked rather than allocate a 2^width statevector.
func TestDebugSkipsWideCircuits(t *testing.T) {
	wide := circuit.New(DebugMaxQubits + 1)
	wide.Append(gate.H, 0, 0)
	brokenWide := wide.Clone()
	brokenWide.Append(gate.X, 0, 0)
	if err := verifyPass("wide", wide, brokenWide, nil); err != nil {
		t.Fatalf("verifyPass simulated a %d-qubit register: %v", DebugMaxQubits+1, err)
	}
}

// TestEveryPassPreservesSemantics is the satellite property test: on
// randomized small QFA/QFM circuits, every pass — alone and all
// chained — keeps the statevector equal up to global phase within
// DebugTol. Compiling with Debug:true runs the check after each pass,
// so a single failing pass is pinpointed by the returned error.
func TestEveryPassPreservesSemantics(t *testing.T) {
	singles := [][]string{
		{PassSinkDiagonals, PassDecompose, PassFuse},
		{PassDecompose, PassCancelInverses, PassFuse},
		{PassDecompose, PassFoldAngles, PassFuse},
		{PassDecompose, PassPruneZeroAngle, PassFuse},
		{PassSinkDiagonals, PassDecompose, PassCancelInverses, PassFoldAngles, PassPruneZeroAngle, PassFuse},
	}
	rng := testutil.NewRand(0xc0ffee)
	for trial := 0; trial < 6; trial++ {
		// Randomized geometry and AQFT depth, small enough to simulate.
		var (
			c     *circuit.Circuit
			label string
		)
		if trial%2 == 0 {
			x := 2 + rng.IntN(2) // 2..3
			y := x + 1
			d := 1 + rng.IntN(y)
			if rng.IntN(2) == 0 {
				d = qft.Full
			}
			c = arith.NewQFA(x, y, arith.Config{Depth: d, AddCut: arith.FullAdd})
			label = "qfa"
		} else {
			d := 1 + rng.IntN(2)
			c = arith.NewQFM(2, 2, arith.Config{Depth: d, AddCut: arith.FullAdd})
			label = "qfm"
		}
		for _, passes := range singles {
			p, err := New(Config{Passes: passes, Debug: true})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.Compile(c); err != nil {
				t.Errorf("trial %d (%s, %d qubits) passes %v: %v", trial, label, c.NumQubits, passes, err)
			}
		}
	}
}

// TestKnownPassesAllConstruct: every advertised pass name must validate
// inside a pipeline (with whatever structural context it needs).
func TestKnownPassesAllConstruct(t *testing.T) {
	for _, name := range KnownPasses() {
		cfg := Config{Passes: []string{PassDecompose, PassFuse}}
		switch name {
		case PassDecompose, PassFuse:
			// already present
		case PassSinkDiagonals:
			cfg.Passes = []string{name, PassDecompose, PassFuse}
		case PassRoute:
			cfg.Passes = []string{PassDecompose, name, PassFuse}
			cfg.Coupling = "linear:8"
		default:
			cfg.Passes = []string{PassDecompose, name, PassFuse}
		}
		if _, err := New(cfg); err != nil {
			t.Errorf("known pass %q does not validate: %v", name, err)
		}
	}
}
