package compile

import (
	"fmt"
	"math"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
)

// newPass instantiates a transform pass by name. The structural passes
// (decompose, route, fuse) are coordinated by the Pipeline itself
// because their products — span bookkeeping, layout, the fused plan —
// do not fit the circuit→circuit shape.
func newPass(name string) (Pass, error) {
	switch name {
	case PassSinkDiagonals:
		return sinkDiagonalsPass{}, nil
	case PassCancelInverses:
		return cancelInversesPass{}, nil
	case PassFoldAngles:
		return foldAnglesPass{}, nil
	case PassPruneZeroAngle:
		return pruneZeroAnglePass{}, nil
	default:
		return nil, fmt.Errorf("compile: no transform pass %q", name)
	}
}

// disjoint reports whether two ops share no qubit.
func disjoint(a, b circuit.Op) bool {
	for _, qa := range a.Active() {
		for _, qb := range b.Active() {
			if qa == qb {
				return false
			}
		}
	}
	return true
}

// controlPrefix reports how many leading qubits of an op of kind k are
// pure controls (the gate acts as identity on them in the computational
// basis, only conditioning on their value).
func controlPrefix(k gate.Kind) int {
	switch k {
	case gate.CX, gate.CH, gate.CRY:
		return 1
	case gate.CCX, gate.CCH:
		return 2
	}
	return 0
}

// commutesWithDiagonal reports whether the diagonal op d commutes with
// the (non-diagonal) op g. It does whenever every qubit they share is a
// control of g: writing g = Σ_c P_c ⊗ U_c over its control subspace,
// d is diagonal on the shared controls (so commutes with each projector
// P_c) and acts on wires disjoint from g's targets, so it commutes with
// every term. Disjoint ops are the zero-shared-qubit special case.
func commutesWithDiagonal(g, d circuit.Op) bool {
	nc := controlPrefix(g.Kind)
	for _, qd := range d.Active() {
		for i, qg := range g.Active() {
			if qd == qg && i >= nc {
				return false // shares a target wire of g
			}
		}
	}
	return true
}

// ---------------------------------------------------------- sink-diagonals

// sinkDiagonalsPass commutes diagonal gates toward earlier diagonal
// gates: a diagonal op hops left over any non-diagonal op it shares no
// qubit with, until it lands adjacent to another diagonal op (joining
// its run) or reaches the front. Diagonal gates commute with each other
// and with disjoint-qubit gates, so the unitary is unchanged; the win
// is longer maximal diagonal runs in the source stream, which the
// trajectory engine's fusion turns into fewer, larger one-pass
// ApplyDiagTerms segments. Run it before decompose so the enlarged runs
// land in the Result's source ops (where fusion operates) and the
// native span bookkeeping stays exact.
type sinkDiagonalsPass struct{}

func (sinkDiagonalsPass) Name() string { return PassSinkDiagonals }

func (sinkDiagonalsPass) Run(c *circuit.Circuit) (*circuit.Circuit, Stats, error) {
	out := circuit.New(c.NumQubits)
	out.Ops = make([]circuit.Op, 0, len(c.Ops))
	for _, op := range c.Ops {
		if !op.Kind.Diagonal() {
			out.Ops = append(out.Ops, op)
			continue
		}
		// Walk left past commuting non-diagonal ops; stop at a diagonal
		// op (join its run) or a blocker touching one of our wires with a
		// non-control qubit.
		j := len(out.Ops)
		for j > 0 {
			prev := out.Ops[j-1]
			if prev.Kind.Diagonal() {
				break
			}
			if !commutesWithDiagonal(prev, op) {
				break
			}
			j--
		}
		out.Ops = append(out.Ops, circuit.Op{})
		copy(out.Ops[j+1:], out.Ops[j:])
		out.Ops[j] = op
	}
	return out, measure(PassSinkDiagonals, c, out), nil
}

// ---------------------------------------------------------- peephole trio
//
// The three passes below are the old transpile.Optimize peephole split
// into independently verifiable rules. Each iterates its own rule to a
// fixed point; chaining cancel-inverses → fold-angles →
// prune-zero-angle (optionally repeated) recovers the combined
// optimizer. They track per-wire adjacency, so a pattern separated by a
// gate on any shared wire is never touched.

// cancelInversesPass removes adjacent self-inverse pairs — identical CX
// gates and X-X on the same qubit — and explicit id gates.
type cancelInversesPass struct{}

func (cancelInversesPass) Name() string { return PassCancelInverses }

func (cancelInversesPass) Run(c *circuit.Circuit) (*circuit.Circuit, Stats, error) {
	ops := c.Ops
	for {
		next, changed := cancelInversesOnce(ops)
		ops = next
		if !changed {
			break
		}
	}
	out := circuit.New(c.NumQubits)
	out.Ops = append(out.Ops, ops...)
	return out, measure(PassCancelInverses, c, out), nil
}

func cancelInversesOnce(ops []circuit.Op) ([]circuit.Op, bool) {
	out := make([]circuit.Op, 0, len(ops))
	changed := false
	lastOn := map[int]int{}
	touch := func(op circuit.Op, idx int) {
		for _, q := range op.Active() {
			lastOn[q] = idx
		}
	}
	drop := func(idx int) {
		out = append(out[:idx], out[idx+1:]...)
		rebuildLastOn(lastOn, out)
		changed = true
	}
	for _, op := range ops {
		switch op.Kind {
		case gate.I:
			changed = true
			continue
		case gate.X:
			q := op.Qubits[0]
			if li, ok := lastOn[q]; ok && li < len(out) && out[li].Kind == gate.X && out[li].Qubits[0] == q {
				drop(li)
				continue
			}
		case gate.CX:
			c0, t0 := op.Qubits[0], op.Qubits[1]
			lc, okc := lastOn[c0]
			lt, okt := lastOn[t0]
			if okc && okt && lc == lt && lc < len(out) {
				prev := out[lc]
				if prev.Kind == gate.CX && prev.Qubits[0] == c0 && prev.Qubits[1] == t0 {
					drop(lc)
					continue
				}
			}
		}
		out = append(out, op)
		touch(op, len(out)-1)
	}
	return out, changed
}

// foldAnglesPass merges adjacent RZ gates on the same qubit into one,
// summing angles and normalizing into (-π, π]. Merged-to-zero rotations
// are kept (as RZ(0)) so the pass is total and order-independent; chain
// prune-zero-angle to drop them.
type foldAnglesPass struct{}

func (foldAnglesPass) Name() string { return PassFoldAngles }

func (foldAnglesPass) Run(c *circuit.Circuit) (*circuit.Circuit, Stats, error) {
	out := circuit.New(c.NumQubits)
	out.Ops = make([]circuit.Op, 0, len(c.Ops))
	lastOn := map[int]int{}
	for _, op := range c.Ops {
		if op.Kind == gate.RZ {
			q := op.Qubits[0]
			if li, ok := lastOn[q]; ok && out.Ops[li].Kind == gate.RZ && out.Ops[li].Qubits[0] == q {
				out.Ops[li].Theta = normAngle(out.Ops[li].Theta + op.Theta)
				continue
			}
		}
		out.Ops = append(out.Ops, op)
		for _, q := range op.Active() {
			lastOn[q] = len(out.Ops) - 1
		}
	}
	return out, measure(PassFoldAngles, c, out), nil
}

// pruneZeroAnglePass drops rotations that are the identity: RZ (and
// logical P/CP/CCP) whose normalized angle is within zeroAngleTol of 0.
type pruneZeroAnglePass struct{}

func (pruneZeroAnglePass) Name() string { return PassPruneZeroAngle }

func (pruneZeroAnglePass) Run(c *circuit.Circuit) (*circuit.Circuit, Stats, error) {
	out := circuit.New(c.NumQubits)
	out.Ops = make([]circuit.Op, 0, len(c.Ops))
	for _, op := range c.Ops {
		switch op.Kind {
		case gate.RZ, gate.P, gate.CP, gate.CCP:
			if isZeroAngle(op.Theta) {
				continue
			}
		}
		out.Ops = append(out.Ops, op)
	}
	return out, measure(PassPruneZeroAngle, c, out), nil
}

func rebuildLastOn(lastOn map[int]int, out []circuit.Op) {
	for k := range lastOn {
		delete(lastOn, k)
	}
	for i, op := range out {
		for _, q := range op.Active() {
			lastOn[q] = i
		}
	}
}

// normAngle reduces an angle into (-π, π].
func normAngle(t float64) float64 {
	t = math.Mod(t, 2*math.Pi)
	if t > math.Pi {
		t -= 2 * math.Pi
	} else if t <= -math.Pi {
		t += 2 * math.Pi
	}
	return t
}

const zeroAngleTol = 1e-12

func isZeroAngle(t float64) bool { return math.Abs(normAngle(t)) < zeroAngleTol }
