package experiment

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// OptimalDepth reports, for each error rate of a panel, which AQFT depth
// maximized the success rate (ties broken toward shallower circuits,
// matching how the paper reads its clusters) — the E5 extraction.
type OptimalDepth struct {
	Rate    float64
	Depth   int
	Success float64
}

// OptimalDepths scans a panel's grid.
func (p PanelResult) OptimalDepths() []OptimalDepth {
	out := make([]OptimalDepth, 0, len(p.Config.Rates))
	for i, rate := range p.Config.Rates {
		best := OptimalDepth{Rate: rate, Depth: p.Config.Depths[0], Success: -1}
		for j, d := range p.Config.Depths {
			s := p.Points[i][j].Stats.SuccessRate
			if s > best.Success {
				best.Depth, best.Success = d, s
			}
		}
		out = append(out, best)
	}
	return out
}

// SummaryLine renders the optimal-depth ladder compactly.
func (p PanelResult) SummaryLine() string {
	var parts []string
	for _, o := range p.OptimalDepths() {
		parts = append(parts, fmt.Sprintf("%.2f%%→d=%s(%.0f%%)",
			o.Rate*100, DepthLabel(o.Depth, depthRegWidth(p.Config.Geometry)), o.Success))
	}
	return fmt.Sprintf("%s %s %d:%d optimal depths: %s",
		p.Config.Geometry.Op, p.Config.Axis, p.Config.OrderX, p.Config.OrderY,
		strings.Join(parts, "  "))
}

// CSVRow is one parsed line of a panel CSV (the subset report tooling
// needs).
type CSVRow struct {
	Op       string
	Axis     string
	RatePct  float64
	Depth    string
	OrderX   int
	OrderY   int
	Success  float64
	Fidelity float64
	W0       float64
	// Extra holds any numeric columns beyond the fixed schema, keyed by
	// header name — the trailing scorer columns a -scorers sweep
	// appends, or columns a future layout adds. They round-trip through
	// the parser untouched, so report tooling built on today's schema
	// keeps reading tomorrow's CSVs. Nil when the file has none.
	Extra map[string]float64
}

// baseCSVColumns is the fixed panel schema; anything else in a header
// is an extra numeric metric column.
var baseCSVColumns = map[string]bool{
	"op": true, "axis": true, "rate_pct": true, "depth": true,
	"order_x": true, "order_y": true, "success_pct": true,
	"lower_bar_pct": true, "upper_bar_pct": true, "margin_mean": true,
	"margin_sigma": true, "mean_fidelity": true, "instances": true,
	"shots": true, "trajectories": true, "w0": true, "expected_errors": true,
}

// ParseCSV reads panel CSV content produced by PanelResult.CSV. The
// parser is schema-tolerant in both directions: it accepts the
// pre-fidelity column layout, and any column it does not recognize is
// parsed as a float and preserved in CSVRow.Extra by header name, so
// result files written with additional scorers (or by newer versions)
// stay readable without a lockstep upgrade.
func ParseCSV(content string) ([]CSVRow, error) {
	lines := strings.Split(strings.TrimSpace(content), "\n")
	if len(lines) < 1 {
		return nil, fmt.Errorf("experiment: empty CSV")
	}
	header := strings.Split(lines[0], ",")
	col := map[string]int{}
	for i, h := range header {
		col[strings.TrimSpace(h)] = i
	}
	for _, need := range []string{"op", "axis", "rate_pct", "depth", "order_x", "order_y", "success_pct"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("experiment: CSV missing column %q", need)
		}
	}
	var rows []CSVRow
	for ln, line := range lines[1:] {
		if t := strings.TrimSpace(line); t == "" || strings.HasPrefix(t, "#") {
			// Blank lines and comments — including the checksum footer
			// runstore.WriteArtifact appends — are not data rows.
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < len(header) {
			return nil, fmt.Errorf("experiment: line %d has %d fields, want %d", ln+2, len(f), len(header))
		}
		get := func(name string) string { return strings.TrimSpace(f[col[name]]) }
		num := func(name string) (float64, error) { return strconv.ParseFloat(get(name), 64) }
		rate, err := num("rate_pct")
		if err != nil {
			return nil, fmt.Errorf("experiment: line %d: %w", ln+2, err)
		}
		succ, err := num("success_pct")
		if err != nil {
			return nil, fmt.Errorf("experiment: line %d: %w", ln+2, err)
		}
		ox, err := strconv.Atoi(get("order_x"))
		if err != nil {
			return nil, fmt.Errorf("experiment: line %d: %w", ln+2, err)
		}
		oy, err := strconv.Atoi(get("order_y"))
		if err != nil {
			return nil, fmt.Errorf("experiment: line %d: %w", ln+2, err)
		}
		row := CSVRow{
			Op: get("op"), Axis: get("axis"), RatePct: rate, Depth: get("depth"),
			OrderX: ox, OrderY: oy, Success: succ,
		}
		// Optional columns must still parse when present: fabricating 0.0
		// for a corrupt cell would silently skew every downstream report.
		if _, ok := col["mean_fidelity"]; ok {
			if row.Fidelity, err = num("mean_fidelity"); err != nil {
				return nil, fmt.Errorf("experiment: line %d: mean_fidelity: %w", ln+2, err)
			}
		}
		if _, ok := col["w0"]; ok {
			if row.W0, err = num("w0"); err != nil {
				return nil, fmt.Errorf("experiment: line %d: w0: %w", ln+2, err)
			}
		}
		for name := range col {
			if baseCSVColumns[name] {
				continue
			}
			v, err := num(name)
			if err != nil {
				return nil, fmt.Errorf("experiment: line %d: %s: %w", ln+2, name, err)
			}
			if row.Extra == nil {
				row.Extra = make(map[string]float64, len(col)-len(baseCSVColumns))
			}
			row.Extra[name] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ReportFromCSV summarizes parsed rows: one optimal-depth line per
// (rate) cluster, mirroring SummaryLine for on-disk results.
func ReportFromCSV(rows []CSVRow) string {
	if len(rows) == 0 {
		return "(no rows)\n"
	}
	byRate := map[float64][]CSVRow{}
	var rates []float64
	for _, r := range rows {
		if _, ok := byRate[r.RatePct]; !ok {
			rates = append(rates, r.RatePct)
		}
		byRate[r.RatePct] = append(byRate[r.RatePct], r)
	}
	sort.Float64s(rates)
	var sb strings.Builder
	head := rows[0]
	fmt.Fprintf(&sb, "%s %s-axis %d:%d (%d rates x %d depths)\n",
		head.Op, head.Axis, head.OrderX, head.OrderY, len(rates), len(byRate[rates[0]]))
	for _, rate := range rates {
		cluster := byRate[rate]
		best := cluster[0]
		for _, r := range cluster[1:] {
			if r.Success > best.Success {
				best = r
			}
		}
		fmt.Fprintf(&sb, "  %5.2f%%: best d=%-4s %6.1f%% success", rate, best.Depth, best.Success)
		if best.Fidelity > 0 {
			fmt.Fprintf(&sb, "  (fidelity %.3f)", best.Fidelity)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
