package experiment

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"

	"qfarith/internal/backend"
)

// Shard identifies one partition of a sharded sweep: the shard owns
// exactly the grid points whose checkpoint key hashes to Index mod
// Count. The zero value (Count 0) is the unsharded sweep and owns
// everything. Because per-point seeds derive from the point itself —
// never from scheduling or partition order — shard outputs are
// independent of how the grid was partitioned, which is what makes the
// merged union byte-identical to an unsharded run.
type Shard struct {
	Index int
	Count int
}

// ParseShard parses "i/N" (e.g. "0/3") with 0 <= i < N. The empty
// string is the unsharded zero value.
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("experiment: bad shard %q (want i/N, e.g. 0/3)", s)
	}
	var sh Shard
	if _, err := fmt.Sscanf(idx, "%d", &sh.Index); err != nil {
		return Shard{}, fmt.Errorf("experiment: bad shard %q (want i/N, e.g. 0/3)", s)
	}
	if _, err := fmt.Sscanf(cnt, "%d", &sh.Count); err != nil {
		return Shard{}, fmt.Errorf("experiment: bad shard %q (want i/N, e.g. 0/3)", s)
	}
	if sh.String() != s {
		return Shard{}, fmt.Errorf("experiment: bad shard %q (want i/N, e.g. 0/3)", s)
	}
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return Shard{}, fmt.Errorf("experiment: bad shard %q: need 0 <= i < N", s)
	}
	return sh, nil
}

// Enabled reports whether the shard actually partitions the grid.
// A 1-way shard ("0/1") owns everything, like the zero value.
func (s Shard) Enabled() bool { return s.Count > 1 }

func (s Shard) String() string {
	if s.Count == 0 {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// Owns reports whether this shard is responsible for the point with
// the given checkpoint key. Ownership is a pure function of the key
// bytes (FNV-1a 64 mod Count), so every process — across machines,
// without coordination — agrees on the partition.
func (s Shard) Owns(key string) bool {
	if !s.Enabled() {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64()%uint64(s.Count)) == s.Index
}

// OwnedKeys filters keys down to the ones this shard owns, preserving
// order.
func (s Shard) OwnedKeys(keys []string) []string {
	if !s.Enabled() {
		return keys
	}
	owned := make([]string, 0, len(keys)/s.Count+1)
	for _, k := range keys {
		if s.Owns(k) {
			owned = append(owned, k)
		}
	}
	return owned
}

// Keys enumerates the panel's checkpoint keys without running
// anything, in grid order (rates outer, depths inner) — the expected
// full grid that shard ownership filters and merge gap-detection
// checks against.
func (cfg PanelConfig) Keys(panel string) []string {
	keys := make([]string, 0, len(cfg.Rates)*len(cfg.Depths))
	for i := range cfg.Rates {
		for j := range cfg.Depths {
			keys = append(keys, PointKey(panel, i, j))
		}
	}
	return keys
}

// RunPanelShardCheckpointCtx is RunPanelCheckpointCtx restricted to the
// grid cells the shard owns: unowned cells are neither run nor
// restored and stay zero in the result, and Progress.Total counts only
// owned cells. Merge the shards' run directories (runstore.MergeRuns)
// and rebuild with PanelFromCheckpoints to recover the full panel.
func RunPanelShardCheckpointCtx(ctx context.Context, r *backend.Runner, cfg PanelConfig, panel string, shard Shard, ck CheckpointStore, progress ProgressFunc) (PanelResult, error) {
	return runPanel(ctx, r, cfg, panel, shard, ck, progress)
}

// PanelFromCheckpoints rebuilds a panel purely from a checkpoint store
// — no simulation, no backend. It errors when any grid cell is missing
// from the store, listing the absent keys; a merged set of shard logs
// that covers the grid therefore reconstructs the exact PanelResult
// (and CSV bytes) an uninterrupted unsharded run would have produced.
func PanelFromCheckpoints(cfg PanelConfig, panel string, ck CheckpointStore) (PanelResult, error) {
	out := PanelResult{Config: cfg, Points: make([][]PointResult, len(cfg.Rates))}
	var missing []string
	for i := range cfg.Rates {
		out.Points[i] = make([]PointResult, len(cfg.Depths))
		for j := range cfg.Depths {
			key := PointKey(panel, i, j)
			raw, ok := ck.LookupPoint(key)
			if !ok {
				missing = append(missing, key)
				continue
			}
			pr, err := decodePoint(key, raw)
			if err != nil {
				return PanelResult{}, err
			}
			out.Points[i][j] = pr
		}
	}
	if len(missing) > 0 {
		return PanelResult{}, fmt.Errorf("experiment: panel %s is missing %d of %d points (e.g. %s) — merge all shards first",
			panel, len(missing), len(cfg.Rates)*len(cfg.Depths), missing[0])
	}
	return out, nil
}
