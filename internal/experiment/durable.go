package experiment

import (
	"context"
	"encoding/json"
	"fmt"

	"qfarith/internal/backend"
	"qfarith/internal/layout"
)

// CheckpointStore is the durable per-point log a resumable sweep
// records into. *runstore.Run satisfies it; tests may substitute an
// in-memory fake. Implementations must be safe for concurrent use —
// panel grid points complete concurrently.
type CheckpointStore interface {
	// LookupPoint returns the previously checkpointed payload for key.
	LookupPoint(key string) (json.RawMessage, bool)
	// AppendPoint durably records payload under key; it must not return
	// until the record would survive a crash.
	AppendPoint(key string, payload any) error
}

// PointKey names a panel grid cell inside a checkpoint log. Keys are
// index-based; the run manifest's config hash (verified on resume)
// guarantees indices mean the same grid coordinates across runs.
func PointKey(panel string, rateIdx, depthIdx int) string {
	return fmt.Sprintf("%s/r%02d/d%02d", panel, rateIdx, depthIdx)
}

func decodePoint(key string, raw json.RawMessage) (PointResult, error) {
	var pr PointResult
	if err := json.Unmarshal(raw, &pr); err != nil {
		return PointResult{}, fmt.Errorf("experiment: corrupt checkpoint %q: %w", key, err)
	}
	return pr, nil
}

// RunPanelCheckpointCtx is RunPanelCtx with durable per-point
// checkpointing: grid cells already present in ck (under
// PointKey(panel, rateIdx, depthIdx)) are restored instead of re-run,
// and every newly completed cell is appended to ck before it counts as
// done, so an interrupt between progress callbacks loses nothing.
//
// Resume invariant: because every cell's RNG streams derive only from
// (PanelConfig.Seed, grid coordinates) — never from scheduling order —
// a resumed panel's result is identical to an uninterrupted run's.
// Restored cells fire progress callbacks with FromCheckpoint set and
// count toward Progress.Restored (never Fresh), so trackers can report
// them without folding their near-zero latency into rate estimates.
func RunPanelCheckpointCtx(ctx context.Context, r *backend.Runner, cfg PanelConfig, panel string, ck CheckpointStore, progress ProgressFunc) (PanelResult, error) {
	return runPanel(ctx, r, cfg, panel, Shard{}, ck, progress)
}

// RunPointCkptCtx is RunPointCtx behind a checkpoint: if key is already
// in ck the stored result is returned without simulating; otherwise the
// point runs and is durably recorded before returning.
func RunPointCkptCtx(ctx context.Context, r *backend.Runner, cfg PointConfig, key string, ck CheckpointStore) (PointResult, error) {
	if ck != nil {
		if raw, ok := ck.LookupPoint(key); ok {
			pointsRestored.Inc()
			return decodePoint(key, raw)
		}
	}
	pr, err := RunPointCtx(ctx, r, cfg)
	if err != nil {
		return PointResult{}, err
	}
	if ck != nil {
		if err := ck.AppendPoint(key, pr); err != nil {
			return PointResult{}, err
		}
	}
	return pr, nil
}

// RunRoutedPointCkptCtx is RunRoutedPointCtx behind a checkpoint, with
// the same contract as RunPointCkptCtx: routed ablation points are the
// slowest single points in the suite, so a killed topology sweep
// resumes without repeating finished topologies.
func RunRoutedPointCkptCtx(ctx context.Context, r *backend.Runner, cfg PointConfig, cm *layout.CouplingMap, key string, ck CheckpointStore) (PointResult, error) {
	if ck != nil {
		if raw, ok := ck.LookupPoint(key); ok {
			pointsRestored.Inc()
			return decodePoint(key, raw)
		}
	}
	pr, err := RunRoutedPointCtx(ctx, r, cfg, cm)
	if err != nil {
		return PointResult{}, err
	}
	if ck != nil {
		if err := ck.AppendPoint(key, pr); err != nil {
			return PointResult{}, err
		}
	}
	return pr, nil
}
