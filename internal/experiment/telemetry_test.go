package experiment_test

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"qfarith/internal/experiment"
	"qfarith/internal/telemetry"
)

// scrapeMetrics fetches a Prometheus exposition page and sums sample
// values by family name (label sets and histogram le buckets collapse
// into one number per series name), which is all the monotonicity
// assertions below need.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sums := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparsable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in metrics line %q: %v", line, err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		sums[name] += v
	}
	return sums
}

// TestTelemetryEndToEnd is the integration test of the whole pipeline:
// run a quick panel with the debug server up, scrape /metrics, and
// check the instrumented subsystems actually reported. Because the
// default registry is process-global and other tests in this package
// also drive sweeps, the assertions are presence and monotonicity
// only — never exact counts.
func TestTelemetryEndToEnd(t *testing.T) {
	srv, err := telemetry.Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr() + "/metrics"

	pc := smallSweepPanel()
	if _, err := experiment.RunPanelCtx(context.Background(), newTrajRunner(2), pc, nil); err != nil {
		t.Fatal(err)
	}
	first := scrapeMetrics(t, url)

	total := float64(len(pc.Rates) * len(pc.Depths))
	if got := first["qfarith_point_seconds_count"]; got < total {
		t.Errorf("point latency histogram count = %v, want >= %v", got, total)
	}
	if first["qfarith_point_seconds_sum"] <= 0 {
		t.Error("point latency histogram sum is zero — spans not recording")
	}
	for _, name := range []string{
		"qfarith_points_total",
		"qfarith_shots_total",
		"qfarith_trajectories_total",
		"qfarith_cache_events_total",
		"qfarith_scratch_states_total",
	} {
		if first[name] <= 0 {
			t.Errorf("%s = %v, want > 0 after a panel sweep", name, first[name])
		}
	}

	// A second panel on a fresh runner must strictly advance the
	// cumulative counters and the histogram count.
	if _, err := experiment.RunPanelCtx(context.Background(), newTrajRunner(2), pc, nil); err != nil {
		t.Fatal(err)
	}
	second := scrapeMetrics(t, url)
	for _, name := range []string{
		"qfarith_point_seconds_count",
		"qfarith_points_total",
		"qfarith_shots_total",
		"qfarith_cache_events_total",
	} {
		if second[name] <= first[name] {
			t.Errorf("%s did not advance: %v -> %v", name, first[name], second[name])
		}
	}

	// /debug/vars must expose the same registry through expvar.
	resp, err := http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(vars), "qfarith_points_total") {
		t.Error("/debug/vars does not expose the qfarith snapshot")
	}
}
