package experiment_test

import (
	"testing"

	"qfarith/internal/experiment"
	"qfarith/internal/layout"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
)

func TestRoutedNoiselessMatchesUnrouted(t *testing.T) {
	cfg := smallAddPoint(noise.Noiseless, 1, 2)
	base := experiment.RunPoint(cfg)
	routed := experiment.RunRoutedPoint(cfg, layout.Linear(7))
	if base.Stats.SuccessRate != 100 || routed.Stats.SuccessRate != 100 {
		t.Errorf("noiseless success: base %.1f%%, routed %.1f%%",
			base.Stats.SuccessRate, routed.Stats.SuccessRate)
	}
	if routed.Native2q <= base.Native2q {
		t.Errorf("routing on a chain should add CX: %d vs %d", routed.Native2q, base.Native2q)
	}
}

func TestRoutedNoiseExposureGrows(t *testing.T) {
	cfg := smallAddPoint(noise.PaperModel(0, 0.01), 1, 1)
	base := experiment.RunPoint(cfg)
	routed := experiment.RunRoutedPoint(cfg, layout.Linear(7))
	if routed.ExpectedErrors <= base.ExpectedErrors {
		t.Errorf("routed expected errors %.2f should exceed base %.2f",
			routed.ExpectedErrors, base.ExpectedErrors)
	}
	if routed.NoErrorProb >= base.NoErrorProb {
		t.Errorf("routed w0 %.3f should fall below base %.3f",
			routed.NoErrorProb, base.NoErrorProb)
	}
}

func TestRoutedOnLargerDevice(t *testing.T) {
	// A 3+4 adder on the 27-qubit heavy-hex device: extra physical
	// qubits stay idle and the metric still works.
	cfg := smallAddPoint(noise.Noiseless, 1, 1)
	cfg.Instances = 3
	r := experiment.RunRoutedPoint(cfg, layout.HeavyHexFalcon27())
	if r.Stats.SuccessRate != 100 {
		t.Errorf("heavy-hex noiseless success %.1f%%", r.Stats.SuccessRate)
	}
}

func TestRoutedRejectsMul(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for routed multiplication")
		}
	}()
	cfg := experiment.PointConfig{
		Geometry: experiment.MulGeometry(2, 2),
		Depth:    qft.Full,
		Model:    noise.Noiseless,
		OrderX:   1, OrderY: 1,
		Instances: 1, Shots: 16, Trajectories: 1,
	}
	experiment.RunRoutedPoint(cfg, layout.Linear(8))
}
