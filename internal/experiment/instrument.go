package experiment

import "qfarith/internal/telemetry"

// Sweep-layer telemetry. Handles are resolved once at package init so
// the per-point and per-instance paths pay one atomic op per event.
// The kind label distinguishes points computed in this process from
// points restored out of a checkpoint log — the split progress
// reporting needs so a resumed sweep's rate and ETA reflect only fresh
// work (restored cells complete "instantly" and would otherwise
// inflate both).
// sampleSec times the per-instance shot-sampling/scoring tail; its sum
// against qfarith_point_seconds' sum is the sampling stage's share of
// sweep wall time (surfaced in the progress line and telemetry.json).
// scoreSec times only the additional-scorer stage (the -scorers flag);
// it stays empty on margin-only sweeps.
var (
	pointSec       = telemetry.Default().Histogram("qfarith_point_seconds")
	sampleSec      = telemetry.Default().Histogram("qfarith_sample_seconds")
	scoreSec       = telemetry.Default().Histogram("qfarith_score_seconds")
	pointsFresh    = telemetry.Default().Counter("qfarith_points_total", telemetry.L("kind", "fresh"))
	pointsRestored = telemetry.Default().Counter("qfarith_points_total", telemetry.L("kind", "restored"))
	shotsTotal     = telemetry.Default().Counter("qfarith_shots_total")
)
