// The shot-sampling/scoring tail of an operand instance: everything
// between the backend returning a measurement distribution and the
// instance's InstanceResult. The tail is allocation-free at steady
// state — sampler, sampling scratch, histogram, correct-set, and
// initial-amplitude buffers are all pooled per instance — and is
// instrumented end to end (qfarith_sample_seconds).
package experiment

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"qfarith/internal/metrics"
	"qfarith/internal/sim"
	"qfarith/internal/telemetry"
)

// Sampler-mode toggle. The constant-time guide-table sampler is
// bit-identical to the legacy inverse-CDF binary search (CI byte-diffs
// fixed-seed CSVs with the toggle in both positions); the legacy path
// is retained as the reference the equivalence job compares against.
const (
	// SamplerFast selects the pooled guide-table sampling stage
	// (sim.CountsInto) — the default.
	SamplerFast = "fast"
	// SamplerLegacy selects the original allocating O(shots·log M)
	// binary-search stage (sim.Sampler.Counts).
	SamplerLegacy = "legacy"
)

// legacySampler is 1 when the legacy stage is selected. An atomic so
// tests and the CLI may flip it while instances run on worker
// goroutines.
var legacySampler atomic.Bool

// init honors the QFARITH_SAMPLER environment variable, the rebuild-free
// toggle the CI equivalence job uses.
func init() {
	if err := setSamplerEnv(os.Getenv("QFARITH_SAMPLER")); err != nil {
		fmt.Fprintln(os.Stderr, "experiment:", err)
	}
}

func setSamplerEnv(v string) error {
	if v == "" {
		return nil
	}
	return SetSamplerMode(v)
}

// SetSamplerMode selects the shot-sampling implementation ("fast" or
// "legacy"). Both produce bit-identical histograms for equal seeds;
// the toggle exists so CI can prove exactly that on full sweeps.
func SetSamplerMode(mode string) error {
	switch mode {
	case SamplerFast:
		legacySampler.Store(false)
	case SamplerLegacy:
		legacySampler.Store(true)
	default:
		return fmt.Errorf("unknown sampler mode %q (want %q or %q)", mode, SamplerFast, SamplerLegacy)
	}
	return nil
}

// SamplerMode reports the currently selected shot-sampling mode.
func SamplerMode() string {
	if legacySampler.Load() {
		return SamplerLegacy
	}
	return SamplerFast
}

// instanceScratch pools every per-instance buffer of the run/sample/
// score tail: the 2^n initial-amplitude vector (and the routed path's
// logical-embedding companion), the shot histogram, the sorted
// correct-set, a reseedable sampler, and the sampling scratch.
type instanceScratch struct {
	initial []complex128
	logical []complex128
	counts  []int
	correct []int
	sampler *sim.Sampler
	sample  *sim.SampleScratch
}

var instancePool = sync.Pool{New: func() any {
	return &instanceScratch{
		sampler: sim.NewSampler(0, 0),
		sample:  sim.GetSampleScratch(),
	}
}}

func getInstanceScratch() *instanceScratch   { return instancePool.Get().(*instanceScratch) }
func putInstanceScratch(sc *instanceScratch) { instancePool.Put(sc) }

// amps returns the scratch's initial-amplitude buffer resized to dim,
// growing it only when a wider geometry comes through the pool.
func (sc *instanceScratch) amps(dim int) []complex128 {
	if cap(sc.initial) < dim {
		sc.initial = make([]complex128, dim)
	}
	return sc.initial[:dim]
}

// logicalAmps is amps for the routed path's logical pre-embedding
// vector.
func (sc *instanceScratch) logicalAmps(dim int) []complex128 {
	if cap(sc.logical) < dim {
		sc.logical = make([]complex128, dim)
	}
	return sc.logical[:dim]
}

// countsBuf returns the scratch's histogram buffer resized to n.
func (sc *instanceScratch) countsBuf(n int) []int {
	if cap(sc.counts) < n {
		sc.counts = make([]int, n)
	}
	return sc.counts[:n]
}

// sampleAndScore runs the shot-sampling and scoring tail of one operand
// instance against its measurement distribution: reseed the pooled
// sampler with the instance's historical seed derivation, draw
// cfg.Shots shots (guide-table or legacy binary search, per the
// toggle), and score the histogram with the paper's metric plus the
// classical ideal-vs-noisy fidelity. dist and ideal are only read.
func (cfg PointConfig) sampleAndScore(sc *instanceScratch, idx int, xs, ys []int, dist, ideal []float64) metrics.InstanceResult {
	sp := telemetry.StartSpan(sampleSec)
	seed1, seed2 := splitSeed(cfg.PointSeed, uint64(idx)^0xabcdef), uint64(idx)
	var ir metrics.InstanceResult
	if legacySampler.Load() {
		counts := sim.NewSampler(seed1, seed2).Counts(dist, cfg.Shots)
		ir = metrics.Score(counts, cfg.correctSet(xs, ys))
	} else {
		sc.sampler.Reseed(seed1, seed2)
		counts := sc.countsBuf(len(dist))
		sc.sampler.CountsInto(sc.sample, dist, cfg.Shots, counts)
		ir = metrics.ScoreSorted(counts, cfg.correctSorted(sc, xs, ys))
	}
	shotsTotal.Add(uint64(cfg.Shots))
	ir.Fidelity = metrics.ClassicalFidelity(ideal, dist)
	sp.End()
	return ir
}

// SampleAndScore is the exported form of the instance tail for
// benchmarks and custom backends: identical semantics, pooled buffers
// drawn from (and returned to) the package pool around the call.
func (cfg PointConfig) SampleAndScore(idx int, xs, ys []int, dist, ideal []float64) metrics.InstanceResult {
	sc := getInstanceScratch()
	defer putInstanceScratch(sc)
	return cfg.sampleAndScore(sc, idx, xs, ys, dist, ideal)
}

// InstanceOperands exposes the deterministic per-instance operand draw
// so external benchmarks can reconstruct the exact tail workload an
// instance index produces.
func (cfg PointConfig) InstanceOperands(idx int) (xs, ys []int) {
	return cfg.instanceOperands(idx)
}

// correctSorted writes the instance's expected-output set into the
// scratch's correct buffer, sorted and deduplicated for ScoreSorted.
func (cfg PointConfig) correctSorted(sc *instanceScratch, xs, ys []int) []int {
	if cap(sc.correct) == 0 {
		sc.correct = make([]int, 0, 8)
	}
	if cfg.Geometry.Op == OpAdd {
		sc.correct = metrics.CorrectSumsInto(sc.correct, xs, ys, cfg.Geometry.OutBits)
	} else {
		sc.correct = metrics.CorrectProductsInto(sc.correct, xs, ys, cfg.Geometry.OutBits)
	}
	return sc.correct
}
