// The shot-sampling/scoring tail of an operand instance: everything
// between the backend returning a measurement distribution and the
// instance's InstanceResult. The tail is allocation-free at steady
// state — sampler, sampling scratch, histogram, correct-set, and
// initial-amplitude buffers are all pooled per instance — and is
// instrumented end to end (qfarith_sample_seconds).
package experiment

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"qfarith/internal/metrics"
	"qfarith/internal/sim"
	"qfarith/internal/telemetry"
)

// Sampler-mode toggle. The constant-time guide-table sampler is
// bit-identical to the legacy inverse-CDF binary search (CI byte-diffs
// fixed-seed CSVs with the toggle in both positions); the legacy path
// is retained as the reference the equivalence job compares against.
const (
	// SamplerFast selects the pooled guide-table sampling stage
	// (sim.CountsInto) — the default.
	SamplerFast = "fast"
	// SamplerLegacy selects the original allocating O(shots·log M)
	// binary-search stage (sim.Sampler.Counts).
	SamplerLegacy = "legacy"
)

// legacySampler is 1 when the legacy stage is selected. An atomic so
// tests and the CLI may flip it while instances run on worker
// goroutines.
var legacySampler atomic.Bool

// init honors the QFARITH_SAMPLER environment variable, the rebuild-free
// toggle the CI equivalence job uses.
func init() {
	if err := setSamplerEnv(os.Getenv("QFARITH_SAMPLER")); err != nil {
		fmt.Fprintln(os.Stderr, "experiment:", err)
	}
}

func setSamplerEnv(v string) error {
	if v == "" {
		return nil
	}
	return SetSamplerMode(v)
}

// SetSamplerMode selects the shot-sampling implementation ("fast" or
// "legacy"). Both produce bit-identical histograms for equal seeds;
// the toggle exists so CI can prove exactly that on full sweeps.
func SetSamplerMode(mode string) error {
	switch mode {
	case SamplerFast:
		legacySampler.Store(false)
	case SamplerLegacy:
		legacySampler.Store(true)
	default:
		return fmt.Errorf("unknown sampler mode %q (want %q or %q)", mode, SamplerFast, SamplerLegacy)
	}
	return nil
}

// SamplerMode reports the currently selected shot-sampling mode.
func SamplerMode() string {
	if legacySampler.Load() {
		return SamplerLegacy
	}
	return SamplerFast
}

// instanceScratch pools every per-instance buffer of the run/sample/
// score tail: the 2^n initial-amplitude vector (and the routed path's
// logical-embedding companion), the shot histogram, the sorted
// correct-set, a reseedable sampler, and the sampling scratch.
type instanceScratch struct {
	initial []complex128
	logical []complex128
	counts  []int
	correct []int
	sampler *sim.Sampler
	sample  *sim.SampleScratch
}

var instancePool = sync.Pool{New: func() any {
	return &instanceScratch{
		sampler: sim.NewSampler(0, 0),
		sample:  sim.GetSampleScratch(),
	}
}}

func getInstanceScratch() *instanceScratch   { return instancePool.Get().(*instanceScratch) }
func putInstanceScratch(sc *instanceScratch) { instancePool.Put(sc) }

// amps returns the scratch's initial-amplitude buffer resized to dim,
// growing it only when a wider geometry comes through the pool.
func (sc *instanceScratch) amps(dim int) []complex128 {
	if cap(sc.initial) < dim {
		sc.initial = make([]complex128, dim)
	}
	return sc.initial[:dim]
}

// logicalAmps is amps for the routed path's logical pre-embedding
// vector.
func (sc *instanceScratch) logicalAmps(dim int) []complex128 {
	if cap(sc.logical) < dim {
		sc.logical = make([]complex128, dim)
	}
	return sc.logical[:dim]
}

// countsBuf returns the scratch's histogram buffer resized to n.
func (sc *instanceScratch) countsBuf(n int) []int {
	if cap(sc.counts) < n {
		sc.counts = make([]int, n)
	}
	return sc.counts[:n]
}

// scorerRun carries one point's additional-scorer state: the resolved
// scorers and a per-scorer value matrix sized for the point's instance
// count. Values are stored row-major — instance idx's values for scorer
// i occupy vals[i][idx*nv : (idx+1)*nv] — so each instance goroutine
// writes a disjoint contiguous range without synchronization, and
// ScoreInstance fills its slot directly with no per-instance
// allocation. A nil *scorerRun (the default, Scorers empty) keeps the
// tail on the historical margin-only path untouched.
type scorerRun struct {
	scorers   []metrics.Scorer
	vals      [][]float64
	instances int
}

// newScorerRun resolves cfg.Scorers and sizes the value matrix, or
// returns nil when no additional scorers are requested.
func (cfg PointConfig) newScorerRun() (*scorerRun, error) {
	if len(cfg.Scorers) == 0 {
		return nil, nil
	}
	ss, err := metrics.ResolveScorers(cfg.Scorers)
	if err != nil {
		return nil, err
	}
	sr := &scorerRun{scorers: ss, vals: make([][]float64, len(ss)), instances: cfg.Instances}
	for i, s := range ss {
		sr.vals[i] = make([]float64, s.NumValues()*cfg.Instances)
	}
	return sr, nil
}

// scoreInstance evaluates every scorer on one instance's evidence, each
// in a single pass over the shared histogram, timed under
// qfarith_score_seconds.
func (sr *scorerRun) scoreInstance(idx int, in metrics.ScoreInput) {
	sp := telemetry.StartSpan(scoreSec)
	for i, s := range sr.scorers {
		nv := s.NumValues()
		s.ScoreInstance(sr.vals[i][idx*nv:(idx+1)*nv], in)
	}
	sp.End()
}

// aggregate reduces the value matrix into named columns, transposing
// each scorer's rows into the column-major layout Aggregate specifies.
// Runs once per point; the transient buffers are negligible beside the
// point's own result slice.
func (sr *scorerRun) aggregate() []metrics.MetricValue {
	var out []metrics.MetricValue
	for i, s := range sr.scorers {
		nv := s.NumValues()
		cm := make([]float64, nv*sr.instances)
		for inst := 0; inst < sr.instances; inst++ {
			for j := 0; j < nv; j++ {
				cm[j*sr.instances+inst] = sr.vals[i][inst*nv+j]
			}
		}
		cols := s.Columns()
		dst := make([]float64, len(cols))
		s.Aggregate(dst, cm, sr.instances)
		for k, c := range cols {
			out = append(out, metrics.MetricValue{Name: c, Value: dst[k]})
		}
	}
	return out
}

// sampleAndScore runs the shot-sampling and scoring tail of one operand
// instance against its measurement distribution: reseed the pooled
// sampler with the instance's historical seed derivation, draw
// cfg.Shots shots (guide-table or legacy binary search, per the
// toggle), and score the histogram with the paper's metric plus the
// classical ideal-vs-noisy fidelity. Additional scorers (srun non-nil)
// then read the same histogram once each. dist and ideal are only read.
func (cfg PointConfig) sampleAndScore(sc *instanceScratch, idx int, xs, ys []int, dist, ideal []float64, srun *scorerRun) metrics.InstanceResult {
	sp := telemetry.StartSpan(sampleSec)
	seed1, seed2 := splitSeed(cfg.PointSeed, uint64(idx)^0xabcdef), uint64(idx)
	var ir metrics.InstanceResult
	var counts, correct []int
	if legacySampler.Load() {
		counts = sim.NewSampler(seed1, seed2).Counts(dist, cfg.Shots)
		ir = metrics.Score(counts, cfg.correctSet(xs, ys))
		if srun != nil {
			correct = cfg.correctSorted(sc, xs, ys)
		}
	} else {
		sc.sampler.Reseed(seed1, seed2)
		counts = sc.countsBuf(len(dist))
		sc.sampler.CountsInto(sc.sample, dist, cfg.Shots, counts)
		correct = cfg.correctSorted(sc, xs, ys)
		ir = metrics.ScoreSorted(counts, correct)
	}
	shotsTotal.Add(uint64(cfg.Shots))
	ir.Fidelity = metrics.ClassicalFidelity(ideal, dist)
	sp.End()
	if srun != nil {
		srun.scoreInstance(idx, metrics.ScoreInput{
			Counts: counts, Dist: dist, Ideal: ideal,
			Correct: correct, Shots: cfg.Shots,
		})
	}
	return ir
}

// SampleAndScore is the exported form of the instance tail for
// benchmarks and custom backends: identical semantics, pooled buffers
// drawn from (and returned to) the package pool around the call.
// Margin-only — additional scorers aggregate per point and have no
// single-instance form here.
func (cfg PointConfig) SampleAndScore(idx int, xs, ys []int, dist, ideal []float64) metrics.InstanceResult {
	sc := getInstanceScratch()
	defer putInstanceScratch(sc)
	return cfg.sampleAndScore(sc, idx, xs, ys, dist, ideal, nil)
}

// InstanceOperands exposes the deterministic per-instance operand draw
// so external benchmarks can reconstruct the exact tail workload an
// instance index produces.
func (cfg PointConfig) InstanceOperands(idx int) (xs, ys []int) {
	return cfg.instanceOperands(idx)
}

// correctSorted writes the instance's expected-output set into the
// scratch's correct buffer, sorted and deduplicated for ScoreSorted.
func (cfg PointConfig) correctSorted(sc *instanceScratch, xs, ys []int) []int {
	if cap(sc.correct) == 0 {
		sc.correct = make([]int, 0, 8)
	}
	g := cfg.Geometry
	switch g.Op {
	case OpAdd:
		sc.correct = metrics.CorrectSumsInto(sc.correct, xs, ys, g.OutBits)
	case OpSub:
		sc.correct = metrics.CorrectDiffsInto(sc.correct, xs, ys, g.OutBits)
	case OpMulSigned:
		sc.correct = metrics.CorrectSignedProductsInto(sc.correct, xs, ys, g.XBits, g.YBits)
	default:
		sc.correct = metrics.CorrectProductsInto(sc.correct, xs, ys, g.OutBits)
	}
	return sc.correct
}
