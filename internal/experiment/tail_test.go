package experiment

import (
	"reflect"
	"runtime/debug"
	"testing"

	"qfarith/internal/noise"
	"qfarith/internal/qft"
)

// withSamplerMode runs f under the given sampler mode, restoring the
// previous mode afterwards.
func withSamplerMode(t *testing.T, mode string, f func()) {
	t.Helper()
	prev := SamplerMode()
	if err := SetSamplerMode(mode); err != nil {
		t.Fatal(err)
	}
	defer SetSamplerMode(prev)
	f()
}

func TestSetSamplerMode(t *testing.T) {
	if got := SamplerMode(); got != SamplerFast {
		t.Fatalf("default mode = %q, want %q", got, SamplerFast)
	}
	withSamplerMode(t, SamplerLegacy, func() {
		if got := SamplerMode(); got != SamplerLegacy {
			t.Fatalf("mode = %q, want %q", got, SamplerLegacy)
		}
	})
	if err := SetSamplerMode("turbo"); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if got := SamplerMode(); got != SamplerFast {
		t.Fatalf("mode after restore = %q, want %q", got, SamplerFast)
	}
}

// TestRunPointSamplerEquivalence is the bit-exactness contract at the
// experiment layer: a full point run must produce identical results —
// success rates, margins, fidelities, diagnostics — under the legacy
// binary-search sampler and the pooled guide-table sampler.
func TestRunPointSamplerEquivalence(t *testing.T) {
	for _, geo := range []Geometry{AddGeometry(3, 4), MulGeometry(3, 3)} {
		cfg := PointConfig{
			Geometry:     geo,
			Depth:        qft.Full,
			Model:        noise.PaperModel(0.01, 0.01),
			OrderX:       1,
			OrderY:       2,
			Instances:    6,
			Shots:        512,
			Trajectories: 6,
			RowSeed:      11,
			PointSeed:    777,
		}
		var legacy, fast PointResult
		withSamplerMode(t, SamplerLegacy, func() { legacy = RunPoint(cfg) })
		withSamplerMode(t, SamplerFast, func() { fast = RunPoint(cfg) })
		if !reflect.DeepEqual(legacy.Stats, fast.Stats) {
			t.Errorf("%v: stats differ:\nlegacy %+v\nfast   %+v", geo.Op, legacy.Stats, fast.Stats)
		}
		if legacy.NoErrorProb != fast.NoErrorProb || legacy.ExpectedErrors != fast.ExpectedErrors {
			t.Errorf("%v: diagnostics differ", geo.Op)
		}
	}
}

// TestSampleAndScoreZeroAlloc pins the tentpole: a warm instance tail
// allocates nothing. GC is disabled so sync.Pool cannot be drained
// between iterations.
func TestSampleAndScoreZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc contract is checked in the non-race run")
	}
	cfg := PointConfig{
		Geometry:  AddGeometry(3, 4),
		OrderX:    1,
		OrderY:    2,
		Shots:     2048,
		RowSeed:   11,
		PointSeed: 41,
	}
	dist := make([]float64, 1<<uint(len(cfg.Geometry.OutReg)))
	for i := range dist {
		dist[i] = 1 / float64(len(dist))
	}
	xs, ys := cfg.instanceOperands(0)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	withSamplerMode(t, SamplerFast, func() {
		cfg.SampleAndScore(0, xs, ys, dist, dist) // warm the pool
		allocs := testing.AllocsPerRun(20, func() {
			cfg.SampleAndScore(0, xs, ys, dist, dist)
		})
		if allocs != 0 {
			t.Errorf("warm SampleAndScore allocates %.1f times per run, want 0", allocs)
		}
	})
}
