package experiment_test

import (
	"strings"
	"testing"

	"qfarith/internal/experiment"
	"qfarith/internal/qft"
)

func smallPanel(t *testing.T) experiment.PanelResult {
	t.Helper()
	pc := experiment.PanelConfig{
		Geometry: experiment.AddGeometry(2, 3),
		Axis:     experiment.Axis2Q,
		OrderX:   1, OrderY: 1,
		Rates:  []float64{0, 0.05},
		Depths: []int{1, qft.Full},
		Budget: experiment.Budget{Instances: 4, Shots: 128, Trajectories: 4},
		Seed:   9,
	}
	return experiment.RunPanel(pc, nil)
}

func TestOptimalDepths(t *testing.T) {
	res := smallPanel(t)
	opt := res.OptimalDepths()
	if len(opt) != 2 {
		t.Fatalf("got %d optima, want 2", len(opt))
	}
	// Noiseless: the full QFT never loses to depth 1... but ties break
	// toward the first (shallower) depth, so just check the success is
	// the max of the row.
	for i, o := range opt {
		maxRow := -1.0
		for j := range res.Config.Depths {
			if s := res.Points[i][j].Stats.SuccessRate; s > maxRow {
				maxRow = s
			}
		}
		if o.Success != maxRow {
			t.Errorf("rate %g: optimum %.1f != row max %.1f", o.Rate, o.Success, maxRow)
		}
	}
	line := res.SummaryLine()
	if !strings.Contains(line, "optimal depths") {
		t.Errorf("summary line %q", line)
	}
}

func TestCSVRoundTripThroughParser(t *testing.T) {
	res := smallPanel(t)
	rows, err := experiment.ParseCSV(res.CSV())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("parsed %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Op != "qfa" || r.Axis != "2q" || r.OrderX != 1 || r.OrderY != 1 {
			t.Errorf("row mismatch: %+v", r)
		}
		if r.Success < 0 || r.Success > 100 {
			t.Errorf("success out of range: %+v", r)
		}
	}
	report := experiment.ReportFromCSV(rows)
	if !strings.Contains(report, "qfa 2q-axis 1:1") || !strings.Contains(report, "best d=") {
		t.Errorf("report:\n%s", report)
	}
}

func TestParseCSVErrors(t *testing.T) {
	if _, err := experiment.ParseCSV(""); err == nil {
		t.Error("empty CSV should error")
	}
	if _, err := experiment.ParseCSV("nope,nothing\n1,2"); err == nil {
		t.Error("missing columns should error")
	}
	if _, err := experiment.ParseCSV("op,axis,rate_pct,depth,order_x,order_y,success_pct\nqfa,2q,bad,1,1,1,50"); err == nil {
		t.Error("bad number should error")
	}
	if _, err := experiment.ParseCSV("op,axis,rate_pct,depth,order_x,order_y,success_pct\nqfa,2q"); err == nil {
		t.Error("short row should error")
	}
}

// TestParseCSVCorruptOptionalColumns is the regression test for the
// silent-zeroing bug: a corrupt mean_fidelity or w0 cell used to be
// swallowed (`row.Fidelity, _ = num(...)`) and fabricated as 0.0,
// skewing every downstream report. It must now be a parse error naming
// the line.
func TestParseCSVCorruptOptionalColumns(t *testing.T) {
	header := "op,axis,rate_pct,depth,order_x,order_y,success_pct,mean_fidelity,w0\n"
	good := "qfa,2q,1.000,1,1,1,50.00,0.9000,0.80000\n"
	for _, tc := range []struct {
		name string
		row  string
		want string
	}{
		{"corrupt mean_fidelity", "qfa,2q,1.000,1,1,1,50.00,not-a-number,0.80000\n", "mean_fidelity"},
		{"corrupt w0", "qfa,2q,1.000,1,1,1,50.00,0.9000,###\n", "w0"},
	} {
		_, err := experiment.ParseCSV(header + good + tc.row)
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the column", tc.name, err)
		}
		if !strings.Contains(err.Error(), "line 3") {
			t.Errorf("%s: error %q does not name line 3", tc.name, err)
		}
	}
	rows, err := experiment.ParseCSV(header + good)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Fidelity != 0.9 || rows[0].W0 != 0.8 {
		t.Errorf("valid optional columns misparsed: %+v", rows[0])
	}
}

// TestParseCSVSkipsCommentsAndFooter: runstore.WriteArtifact appends a
// `# sha256=...` checksum footer; the parser must treat it (and blank
// lines) as non-data.
func TestParseCSVSkipsCommentsAndFooter(t *testing.T) {
	content := "op,axis,rate_pct,depth,order_x,order_y,success_pct\n" +
		"qfa,2q,1.000,1,1,1,50.00\n" +
		"\n" +
		"# sha256=0123456789abcdef\n"
	rows, err := experiment.ParseCSV(content)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("parsed %d rows, want 1", len(rows))
	}
}

func TestReportFromCSVEmpty(t *testing.T) {
	if out := experiment.ReportFromCSV(nil); !strings.Contains(out, "no rows") {
		t.Errorf("got %q", out)
	}
}
