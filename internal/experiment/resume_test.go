package experiment_test

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"qfarith/internal/backend"
	"qfarith/internal/experiment"
	"qfarith/internal/runstore"
)

func newTrajRunner(workers int) *backend.Runner {
	return backend.NewRunner(backend.NewTrajectoryBackend(), workers)
}

// TestPanelResumeMatchesUninterrupted is the durable-run acceptance
// test: cancel a checkpointed panel after N completed points (the
// in-process analogue of SIGINT/kill), resume from the run directory,
// and require the merged CSV to be byte-identical to an uninterrupted
// fixed-seed run.
func TestPanelResumeMatchesUninterrupted(t *testing.T) {
	pc := smallSweepPanel()
	const panel = "fig3_test"

	// Reference: uninterrupted run, no checkpointing.
	ref, err := experiment.RunPanelCtx(context.Background(), newTrajRunner(2), pc, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "run")
	hash, err := runstore.HashConfig(pc)
	if err != nil {
		t.Fatal(err)
	}
	run, err := runstore.Create(dir, runstore.Manifest{Command: "test", ConfigHash: hash})
	if err != nil {
		t.Fatal(err)
	}

	// First attempt: cancel after 2 points have been checkpointed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = experiment.RunPanelCheckpointCtx(ctx, newTrajRunner(2), pc, panel, run,
		func(p experiment.Progress) {
			if p.Done >= 2 {
				cancel()
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	run.Close()

	// Resume: hash-verified reopen must restore the checkpointed points
	// and run only the remainder.
	resumed, err := runstore.Resume(dir, hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	restored := resumed.Restored()
	if restored < 2 {
		t.Fatalf("only %d points survived the interrupt, want >= 2", restored)
	}
	total := len(pc.Rates) * len(pc.Depths)
	if restored >= total {
		t.Fatalf("all %d points checkpointed — the interrupt landed too late to test resume", total)
	}

	fresh, fromCkpt := 0, 0
	res, err := experiment.RunPanelCheckpointCtx(context.Background(), newTrajRunner(2), pc, panel, resumed,
		func(p experiment.Progress) {
			if p.FromCheckpoint {
				fromCkpt++
			} else {
				fresh++
			}
			if p.Done != p.Fresh+p.Restored {
				t.Errorf("Done = %d, want Fresh+Restored = %d", p.Done, p.Fresh+p.Restored)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if fresh != total-restored {
		t.Errorf("resume re-ran %d points, want %d (restored %d of %d)", fresh, total-restored, restored, total)
	}
	if fromCkpt != restored {
		t.Errorf("restored callbacks = %d, want %d", fromCkpt, restored)
	}
	if got, want := res.CSV(), ref.CSV(); got != want {
		t.Errorf("resumed CSV differs from uninterrupted run:\n--- resumed ---\n%s--- uninterrupted ---\n%s", got, want)
	}
}

// TestPanelCheckpointFullRerunIsFree: resuming a fully checkpointed run
// simulates nothing and still reproduces the CSV exactly.
func TestPanelCheckpointFullRerunIsFree(t *testing.T) {
	pc := smallSweepPanel()
	dir := filepath.Join(t.TempDir(), "run")
	run, err := runstore.Create(dir, runstore.Manifest{Command: "test"})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()

	first, err := experiment.RunPanelCheckpointCtx(context.Background(), newTrajRunner(4), pc, "p", run, nil)
	if err != nil {
		t.Fatal(err)
	}
	freshCalls, restoredCalls := 0, 0
	second, err := experiment.RunPanelCheckpointCtx(context.Background(), newTrajRunner(4), pc, "p", run,
		func(p experiment.Progress) {
			if p.FromCheckpoint {
				restoredCalls++
			} else {
				freshCalls++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if freshCalls != 0 {
		t.Errorf("full rerun simulated %d points, want 0", freshCalls)
	}
	if total := len(pc.Rates) * len(pc.Depths); restoredCalls != total {
		t.Errorf("restored callbacks = %d, want %d", restoredCalls, total)
	}
	if first.CSV() != second.CSV() {
		t.Error("restored-only panel CSV differs from computed panel CSV")
	}
}

// failStore is a CheckpointStore whose appends always fail, for
// failure-injection tests.
type failStore struct{ err error }

func (f *failStore) LookupPoint(string) (json.RawMessage, bool) { return nil, false }
func (f *failStore) AppendPoint(key string, payload any) error  { return f.err }

// TestPanelCheckpointAppendFailureSurfaces: a checkpoint write error
// must abort the sweep — silently continuing would let a "durable" run
// lose points.
func TestPanelCheckpointAppendFailureSurfaces(t *testing.T) {
	pc := smallSweepPanel()
	wantErr := errors.New("disk full")
	_, err := experiment.RunPanelCheckpointCtx(context.Background(), newTrajRunner(2), pc, "p", &failStore{err: wantErr}, nil)
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the injected append failure", err)
	}
}
