package experiment_test

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"qfarith/internal/experiment"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
	"qfarith/internal/runstore"
)

// TestSignedPointsNoiselessSucceed is the signed-workload sanity bar:
// with zero noise at full depth, subtraction and signed multiplication
// must succeed on every instance, exactly like their unsigned
// counterparts — the correct sets and circuits agree on the
// two's-complement encoding.
func TestSignedPointsNoiselessSucceed(t *testing.T) {
	sub := experiment.PointConfig{
		Geometry: experiment.SubGeometry(3, 4),
		Depth:    qft.Full,
		Model:    noise.Noiseless,
		OrderX:   2, OrderY: 2,
		Instances: 6, Shots: 256, Trajectories: 6,
		RowSeed: 11, PointSeed: 13,
	}
	if r := experiment.RunPoint(sub); r.Stats.SuccessRate != 100 {
		t.Errorf("noiseless subtraction success %.1f%%, want 100%%", r.Stats.SuccessRate)
	}
	smul := sub
	smul.Geometry = experiment.SignedMulGeometry(2, 2)
	if r := experiment.RunPoint(smul); r.Stats.SuccessRate != 100 {
		t.Errorf("noiseless signed multiplication success %.1f%%, want 100%%", r.Stats.SuccessRate)
	}
}

// TestPointScorersMatchBaseStats runs one noisy point with every
// registered scorer attached and checks the two invariants the refactor
// promises: the frozen margin statistics are untouched by the extra
// scoring pass, and the "margin" scorer's Extra columns reproduce them
// bit for bit from the same evidence.
func TestPointScorersMatchBaseStats(t *testing.T) {
	base := experiment.PointConfig{
		Geometry: experiment.AddGeometry(3, 4),
		Depth:    2,
		Model:    noise.PaperModel(0.002, 0.005),
		OrderX:   1, OrderY: 2,
		Instances: 6, Shots: 256, Trajectories: 6,
		RowSeed: 21, PointSeed: 23,
	}
	ref := experiment.RunPoint(base)

	scored := base
	scored.Scorers = []string{"margin", "xeb", "roundtrip"}
	r := experiment.RunPoint(scored)

	st := r.Stats
	st.Extra = nil
	if !reflect.DeepEqual(st, ref.Stats) {
		t.Errorf("extra scorers perturbed base stats:\n%+v\nvs\n%+v", st, ref.Stats)
	}

	extra := map[string]float64{}
	for _, mv := range r.Stats.Extra {
		extra[mv.Name] = mv.Value
	}
	for name, want := range map[string]float64{
		"success_pct":   ref.Stats.SuccessRate,
		"lower_bar_pct": ref.Stats.LowerBar,
		"upper_bar_pct": ref.Stats.UpperBar,
		"margin_mean":   ref.Stats.MarginMean,
		"margin_sigma":  ref.Stats.MarginSigma,
		"mean_fidelity": ref.Stats.MeanFidelity,
	} {
		got, ok := extra[name]
		if !ok {
			t.Errorf("margin scorer column %q missing from Extra %v", name, r.Stats.Extra)
			continue
		}
		if got != want {
			t.Errorf("margin scorer %s = %v, frozen path %v", name, got, want)
		}
	}
	if xeb, ok := extra["xeb"]; !ok || xeb <= 0 || xeb > 1.5 {
		t.Errorf("xeb column = %v (present %v), want a sane positive value", xeb, ok)
	}
	if rt, ok := extra["roundtrip_pct"]; !ok || rt <= 0 || rt > 100 {
		t.Errorf("roundtrip_pct column = %v (present %v), want (0, 100]", rt, ok)
	}
}

// TestPanelScorerCSVRoundTrip: a panel with extra scorers appends their
// columns after the frozen 17-column schema, and ParseCSV hands them
// back by name, so downstream reports survive schema growth.
func TestPanelScorerCSVRoundTrip(t *testing.T) {
	pc := smallSweepPanel()
	pc.Scorers = []string{"xeb", "roundtrip"}
	res := experiment.RunPanel(pc, nil)

	csv := res.CSV()
	header := csv[:strings.IndexByte(csv, '\n')]
	if !strings.HasSuffix(header, ",xeb,roundtrip_pct") {
		t.Fatalf("header missing scorer columns: %q", header)
	}
	rows, err := experiment.ParseCSV(csv)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(pc.Rates)*len(pc.Depths) {
		t.Fatalf("parsed %d rows", len(rows))
	}
	for k, row := range rows {
		i, j := k/len(pc.Depths), k%len(pc.Depths)
		for _, mv := range res.Points[i][j].Stats.Extra {
			want := fmt.Sprintf("%.6f", mv.Value)
			got := fmt.Sprintf("%.6f", row.Extra[mv.Name])
			if got != want {
				t.Errorf("row %d %s = %s, want %s", k, mv.Name, got, want)
			}
		}
	}
}

// TestParseCSVExtraColumnsTolerant: the parser must accept trailing
// metric columns it has never heard of — future scorers, other tools —
// and keep naming lines in its errors.
func TestParseCSVExtraColumnsTolerant(t *testing.T) {
	header := "op,axis,rate_pct,depth,order_x,order_y,success_pct,some_future_metric\n"
	rows, err := experiment.ParseCSV(header + "qfa,2q,1.000,1,1,1,50.00,0.125000\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0].Extra["some_future_metric"]; got != 0.125 {
		t.Errorf("extra column = %v, want 0.125", got)
	}
	// A row without extras parses with a nil Extra map.
	plain, err := experiment.ParseCSV("op,axis,rate_pct,depth,order_x,order_y,success_pct\nqfa,2q,1.000,1,1,1,50.00\n")
	if err != nil {
		t.Fatal(err)
	}
	if plain[0].Extra != nil {
		t.Errorf("plain row grew Extra: %v", plain[0].Extra)
	}
	// Corrupt extra cells are parse errors naming line and column, not
	// silent zeros.
	_, err = experiment.ParseCSV(header +
		"qfa,2q,1.000,1,1,1,50.00,0.100000\n" +
		"qfa,2q,1.000,2,1,1,50.00,garbage\n")
	if err == nil {
		t.Fatal("corrupt extra column: expected error")
	}
	if !strings.Contains(err.Error(), "some_future_metric") || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name column and line 3", err)
	}
}

// TestSignedShardedPanelMerge reruns the merge property test on a
// signed-subtraction panel with an extra scorer attached: shards,
// merge, and checkpoint-rebuild must reproduce the unsharded CSV byte
// for byte, proving the sharding machinery is workload- and
// scorer-agnostic.
func TestSignedShardedPanelMerge(t *testing.T) {
	pc := experiment.PanelConfig{
		Geometry: experiment.SubGeometry(2, 3),
		Axis:     experiment.Axis2Q,
		OrderX:   1, OrderY: 2,
		Rates:   []float64{0, 0.02},
		Depths:  []int{1, qft.Full},
		Budget:  experiment.Budget{Instances: 4, Shots: 128, Trajectories: 4},
		Seed:    20260808,
		Scorers: []string{"xeb"},
	}
	const panel = "fig3signed_test"

	ref, err := experiment.RunPanelCtx(context.Background(), newTrajRunner(2), pc, nil)
	if err != nil {
		t.Fatal(err)
	}

	root := t.TempDir()
	const n = 2
	shardDirs := make([]string, n)
	for i := 0; i < n; i++ {
		shard := experiment.Shard{Index: i, Count: n}
		dir := filepath.Join(root, shard.String())
		run, err := runstore.Create(dir, runstore.Manifest{
			Command: "test", ConfigHash: "cfg", Shard: shard.String(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := experiment.RunPanelShardCheckpointCtx(context.Background(), newTrajRunner(2), pc, panel, shard, run, nil); err != nil {
			t.Fatal(err)
		}
		run.Close()
		shardDirs[i] = dir
	}

	merged := filepath.Join(root, "merged")
	if _, err := runstore.MergeRuns(merged, shardDirs); err != nil {
		t.Fatal(err)
	}
	mrun, err := runstore.Resume(merged, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	defer mrun.Close()
	res, err := experiment.PanelFromCheckpoints(pc, panel, mrun)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.CSV(), ref.CSV(); got != want {
		t.Errorf("merged signed-panel CSV differs from unsharded run:\n--- merged ---\n%s--- unsharded ---\n%s", got, want)
	}
	if !strings.Contains(res.CSV(), "qfs,") {
		t.Error("signed panel CSV does not label rows with the qfs op")
	}
	if !strings.Contains(strings.SplitN(res.CSV(), "\n", 2)[0], ",xeb") {
		t.Error("signed panel CSV missing the xeb scorer column")
	}
}
