package experiment

import (
	"fmt"

	"qfarith/internal/compile"
)

// SweepSpec is the hashed identity of a figure sweep: every field that
// determines point results. Scheduling knobs (workers, batch width,
// output paths) are deliberately excluded — they cannot change results
// (the batched engine is bit-identical at every width), so a resumed
// run may vary them freely.
//
// The JSON encoding of this struct is a frozen wire format: runstore
// config hashes are SHA-256 over it, and every run directory ever
// created hashes the exact field names and order below. The CLI and the
// qfarithd job API both build their run manifests from this one struct,
// which is what lets a daemon-created run directory be resumed by the
// CLI (and vice versa) and makes their fixed-seed CSVs byte-identical.
// Do not rename, reorder, or change the type of any field; new fields
// must be tagged omitempty so historical hashes are preserved.
type SweepSpec struct {
	Command   string
	Geometry  Geometry
	Depths    []int
	Axes      []ErrorAxis
	Orders    [][2]int
	Rates1Q   []float64
	Rates2Q   []float64
	Instances int
	Shots     int
	Traj      int
	Seed      uint64
	Backend   string
	// Pipeline is the compile.Config hash: two pass configurations with
	// different compiled output hash differently, so -resume refuses a
	// run whose pass list or coupling changed.
	Pipeline string
	// Scorers lists the additional metrics the sweep evaluates (the
	// -scorers flag, minus the always-on margin). Extra scorers change
	// checkpoint payloads, so they are part of the run's identity;
	// omitempty keeps every pre-existing margin-only hash unchanged.
	Scorers []string `json:",omitempty"`
}

// FigureSweep returns the geometry and depth legend of a figure-style
// sweep command ("fig3", "fig4", "fig3-signed", "fig4-signed"). ok is
// false for any other command.
func FigureSweep(command string) (geo Geometry, depths []int, ok bool) {
	switch command {
	case "fig3":
		return PaperAddGeometry(), AddDepths, true
	case "fig4":
		return PaperMulGeometry(), MulDepths, true
	case "fig3-signed":
		return PaperSubGeometry(), AddDepths, true
	case "fig4-signed":
		return PaperSignedMulGeometry(), MulDepths, true
	}
	return Geometry{}, nil, false
}

// PanelJob pairs one panel of a figure sweep with the label that names
// its checkpoint keys and CSV artifact (e.g. "fig3_2q_12").
type PanelJob struct {
	Label  string
	Config PanelConfig
}

// PanelLabel renders the canonical label for a figure panel.
func PanelLabel(command string, axis ErrorAxis, orderX, orderY int) string {
	return fmt.Sprintf("%s_%s_%d%d", command, axis, orderX, orderY)
}

// Panels enumerates the spec's figure panels in the canonical order
// (operand orders outer, error axes inner) plus the full grid's
// checkpoint-key list. This is the single source of truth for how a
// figure sweep decomposes into panels: the CLI's runFigure, merge-runs
// CSV regeneration, and the qfarithd job executor all enumerate through
// it, so a sweep submitted over HTTP at a fixed seed produces the exact
// panel set — and therefore the exact CSV bytes — of the same sweep run
// from the command line.
//
// pipeline is the full compilation config (the spec stores only its
// hash) and workers the scheduling-only instance-parallelism bound;
// callers that never run the panels (CSV regeneration from checkpoints)
// pass the zero values.
func (s SweepSpec) Panels(pipeline compile.Config, workers int) (panels []PanelJob, allKeys []string) {
	for _, orders := range s.Orders {
		for _, axis := range s.Axes {
			rates := s.Rates1Q
			if axis == Axis2Q {
				rates = s.Rates2Q
			}
			pc := PanelConfig{
				Geometry: s.Geometry, Axis: axis,
				OrderX: orders[0], OrderY: orders[1],
				Rates: rates, Depths: s.Depths,
				Budget: Budget{
					Instances:    s.Instances,
					Shots:        s.Shots,
					Trajectories: s.Traj,
					Workers:      workers,
				},
				Seed:     s.Seed,
				Pipeline: pipeline,
				Scorers:  s.Scorers,
			}
			label := PanelLabel(s.Command, axis, orders[0], orders[1])
			panels = append(panels, PanelJob{Label: label, Config: pc})
			allKeys = append(allKeys, pc.Keys(label)...)
		}
	}
	return panels, allKeys
}
