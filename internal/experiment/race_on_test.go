//go:build race

package experiment

// raceEnabled reports whether the race detector is instrumenting this
// build. Its shadow-memory bookkeeping allocates, so allocation-count
// contracts are unmeasurable under -race.
const raceEnabled = true
