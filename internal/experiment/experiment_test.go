package experiment_test

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"qfarith/internal/experiment"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
)

func smallAddPoint(model noise.Model, orderX, orderY int) experiment.PointConfig {
	return experiment.PointConfig{
		Geometry:     experiment.AddGeometry(3, 4), // small for test speed
		Depth:        qft.Full,
		Model:        model,
		OrderX:       orderX,
		OrderY:       orderY,
		Instances:    6,
		Shots:        256,
		Trajectories: 6,
		RowSeed:      11,
		PointSeed:    13,
	}
}

func TestNoiselessAdditionAlwaysSucceeds(t *testing.T) {
	for _, orders := range [][2]int{{1, 1}, {1, 2}, {2, 2}} {
		r := experiment.RunPoint(smallAddPoint(noise.Noiseless, orders[0], orders[1]))
		if r.Stats.SuccessRate != 100 {
			t.Errorf("orders %v: noiseless full-depth success %.1f%%, want 100%%", orders, r.Stats.SuccessRate)
		}
		if r.NoErrorProb != 1 {
			t.Errorf("noiseless w0 = %g", r.NoErrorProb)
		}
	}
}

func TestExtremeNoiseDestroysSuccess(t *testing.T) {
	cfg := smallAddPoint(noise.PaperModel(0.2, 0.3), 2, 2)
	r := experiment.RunPoint(cfg)
	if r.Stats.SuccessRate > 50 {
		t.Errorf("extreme noise success %.1f%%, expected collapse", r.Stats.SuccessRate)
	}
	if r.NoErrorProb > 1e-6 {
		t.Errorf("w0 = %g under extreme noise", r.NoErrorProb)
	}
}

func TestDeterministicGivenSeeds(t *testing.T) {
	cfg := smallAddPoint(noise.PaperModel(0.01, 0.01), 1, 2)
	a := experiment.RunPoint(cfg)
	b := experiment.RunPoint(cfg)
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Errorf("same seeds gave different stats: %+v vs %+v", a.Stats, b.Stats)
	}
	cfg.PointSeed++
	c := experiment.RunPoint(cfg)
	// Different noise seed may coincidentally match, but the margin mean
	// almost surely differs.
	if reflect.DeepEqual(a.Stats, c.Stats) {
		t.Log("note: different PointSeed produced identical stats (possible but unlikely)")
	}
}

func TestRowSeedFixesOperandsAcrossColumns(t *testing.T) {
	// The paper shares operand sets between the 1q and 2q columns. With
	// equal RowSeed and zero noise, the two "columns" must agree exactly
	// even when PointSeed differs (shot sampling differs, but noiseless
	// full-depth addition is deterministic: all mass on correct outputs).
	a := smallAddPoint(noise.Noiseless, 2, 2)
	b := a
	b.PointSeed = 999
	ra := experiment.RunPoint(a)
	rb := experiment.RunPoint(b)
	if ra.Stats.Successes != rb.Stats.Successes {
		t.Errorf("operand sharing broken: %d vs %d successes", ra.Stats.Successes, rb.Stats.Successes)
	}
}

func TestMulPointSmall(t *testing.T) {
	cfg := experiment.PointConfig{
		Geometry:     experiment.MulGeometry(2, 2),
		Depth:        qft.Full,
		Model:        noise.Noiseless,
		OrderX:       2,
		OrderY:       2,
		Instances:    4,
		Shots:        256,
		Trajectories: 4,
		RowSeed:      7,
		PointSeed:    8,
	}
	r := experiment.RunPoint(cfg)
	if r.Stats.SuccessRate != 100 {
		t.Errorf("noiseless 2:2 multiplication success %.1f%%, want 100%%", r.Stats.SuccessRate)
	}
}

func TestDepthOneDegradesNoiselessAddition(t *testing.T) {
	// The paper's headline noiseless observation: depth 1 causes
	// arithmetic errors even without gate noise, while full depth never
	// does. Use the paper geometry so the approximation bites.
	full := experiment.PointConfig{
		Geometry: experiment.PaperAddGeometry(),
		Depth:    qft.Full,
		Model:    noise.Noiseless,
		OrderX:   1, OrderY: 1,
		Instances: 12, Shots: 512, Trajectories: 1,
		RowSeed: 3, PointSeed: 4,
	}
	d1 := full
	d1.Depth = 1
	rFull := experiment.RunPoint(full)
	rD1 := experiment.RunPoint(d1)
	if rFull.Stats.SuccessRate != 100 {
		t.Errorf("full depth noiseless: %.1f%%", rFull.Stats.SuccessRate)
	}
	if rD1.Stats.SuccessRate >= rFull.Stats.SuccessRate {
		t.Logf("depth-1 noiseless matched full depth on this operand draw (%.1f%%) — acceptable but uncommon", rD1.Stats.SuccessRate)
	}
}

func TestGateCountsReportedMatchTable(t *testing.T) {
	cfg := experiment.PointConfig{
		Geometry: experiment.PaperAddGeometry(),
		Depth:    2,
		Model:    noise.Noiseless,
		OrderX:   1, OrderY: 1,
		Instances: 1, Shots: 16, Trajectories: 1,
	}
	r := experiment.RunPoint(cfg)
	if r.Paper1q != 199 || r.Paper2q != 122 {
		t.Errorf("paper counts (%d, %d), want (199, 122)", r.Paper1q, r.Paper2q)
	}
}

func TestPanelCSVAndTable(t *testing.T) {
	pc := experiment.PanelConfig{
		Geometry: experiment.AddGeometry(2, 3),
		Axis:     experiment.Axis2Q,
		OrderX:   1, OrderY: 1,
		Rates:  []float64{0, 0.02},
		Depths: []int{1, qft.Full},
		Budget: experiment.Budget{Instances: 3, Shots: 128, Trajectories: 3},
		Seed:   42,
	}
	calls := 0
	res := experiment.RunPanel(pc, func(p experiment.Progress) {
		calls++
		if p.Total != 4 {
			t.Errorf("total = %d, want 4", p.Total)
		}
		if p.FromCheckpoint || p.Restored != 0 {
			t.Error("plain panel reported checkpoint-restored points")
		}
	})
	if calls != 4 {
		t.Errorf("progress called %d times, want 4", calls)
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "op,axis,rate_pct") {
		t.Error("CSV missing header")
	}
	if lines := strings.Count(csv, "\n"); lines != 5 {
		t.Errorf("CSV has %d lines, want 5 (header + 4 points)", lines)
	}
	tbl := res.Table()
	if !strings.Contains(tbl, "d=full") || !strings.Contains(tbl, "d=1") {
		t.Errorf("table missing depth headers:\n%s", tbl)
	}
}

func TestWorkerParallelismMatchesSerial(t *testing.T) {
	cfg := smallAddPoint(noise.PaperModel(0.01, 0.02), 1, 2)
	cfg.Instances = 8
	serial := cfg
	serial.Workers = 1
	parallel := cfg
	parallel.Workers = 4
	rs := experiment.RunPoint(serial)
	rp := experiment.RunPoint(parallel)
	if !reflect.DeepEqual(rs.Stats, rp.Stats) {
		t.Errorf("parallel instances changed results: %+v vs %+v", rs.Stats, rp.Stats)
	}
}

func TestDepthLabel(t *testing.T) {
	if got := experiment.DepthLabel(qft.Full, 8); got != "full" {
		t.Errorf("DepthLabel(Full) = %q", got)
	}
	if got := experiment.DepthLabel(7, 8); got != "full" {
		t.Errorf("DepthLabel(7, 8) = %q (7 is the full depth for 8 qubits)", got)
	}
	if got := experiment.DepthLabel(3, 8); got != "3" {
		t.Errorf("DepthLabel(3, 8) = %q", got)
	}
}

func TestExpectedErrorsScaleWithRate(t *testing.T) {
	lo := experiment.RunPoint(smallAddPoint(noise.PaperModel(0.001, 0), 1, 1))
	hi := experiment.RunPoint(smallAddPoint(noise.PaperModel(0.002, 0), 1, 1))
	ratio := hi.ExpectedErrors / lo.ExpectedErrors
	if math.Abs(ratio-2) > 1e-9 {
		t.Errorf("expected errors should scale linearly with rate: ratio %g", ratio)
	}
}
