package experiment

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"qfarith/internal/backend"
	"qfarith/internal/circuit"
	"qfarith/internal/compile"
	"qfarith/internal/metrics"
	"qfarith/internal/noise"
	"qfarith/internal/plot"
	"qfarith/internal/qft"
	"qfarith/internal/transpile"
)

func newCircuit(n int) *circuit.Circuit { return circuit.New(n) }

func srcCircuit(res *transpile.Result) *circuit.Circuit {
	c := circuit.New(res.NumQubits)
	c.Ops = append(c.Ops, res.Source...)
	return c
}

// ErrorAxis selects which gate class's error rate a sweep varies.
type ErrorAxis int

const (
	// Axis1Q varies the 1q-gate depolarizing rate (left columns of the
	// paper's figures).
	Axis1Q ErrorAxis = iota
	// Axis2Q varies the 2q-gate depolarizing rate (right columns).
	Axis2Q
)

func (a ErrorAxis) String() string {
	if a == Axis1Q {
		return "1q"
	}
	return "2q"
}

// Budget fixes the statistical effort of a sweep.
type Budget struct {
	Instances    int
	Shots        int
	Trajectories int
	Workers      int
}

// Presets, ordered by cost. Paper reproduces the publication's 200+
// instances and 2048 shots with trajectory count equal to shots (exact
// per-shot noise semantics). Quick is sized for CI smoke runs.
var (
	Quick    = Budget{Instances: 8, Shots: 512, Trajectories: 8}
	Standard = Budget{Instances: 40, Shots: 2048, Trajectories: 24}
	Full     = Budget{Instances: 200, Shots: 2048, Trajectories: 2048}
)

// PaperRates1Q is the 1q-gate error-rate grid (fractions): the paper
// clusters start at 0.2% and step by 0.1%, with the dashed reference
// line at 0.2% marking current IBM hardware.
var PaperRates1Q = []float64{0, 0.002, 0.003, 0.004, 0.005, 0.006, 0.008}

// PaperRates2Q is the 2q-gate error-rate grid (fractions): anchored on
// the 1.0% dashed line (current hardware) and the 0.7% improved rate the
// conclusions discuss.
var PaperRates2Q = []float64{0, 0.003, 0.005, 0.007, 0.010, 0.015, 0.020}

// AddDepths are the Fig. 3 legend depths; 7 is the full QFT for the
// 8-qubit register.
var AddDepths = []int{1, 2, 3, 4, qft.Full}

// MulDepths are the Fig. 4 legend depths; full is d >= 4 on the 5-qubit
// cQFA windows.
var MulDepths = []int{1, 2, qft.Full}

// Orders are the figure rows: 1:1, 1:2, 2:2.
var Orders = [][2]int{{1, 1}, {1, 2}, {2, 2}}

// PanelConfig describes one figure panel: an operation/orders row and an
// error-rate column.
type PanelConfig struct {
	Geometry Geometry
	Axis     ErrorAxis
	OrderX   int
	OrderY   int
	Rates    []float64
	Depths   []int
	Budget   Budget
	Seed     uint64
	// Pipeline selects the compilation pass pipeline for every point of
	// the panel; the zero value is the default pipeline.
	Pipeline compile.Config
	// Scorers names additional success metrics evaluated beside the
	// always-on margin scoring; their aggregated columns are appended to
	// the panel CSV in this order. Empty reproduces the historical
	// margin-only output byte for byte.
	Scorers []string `json:",omitempty"`
}

// PanelResult holds a panel's sweep grid: Points[rateIdx][depthIdx].
type PanelResult struct {
	Config PanelConfig
	Points [][]PointResult
}

// PointAt builds the PointConfig for the grid cell at (rate, depth) —
// the single source of truth for panel seeds, shared by the sequential
// and parallel paths.
func (cfg PanelConfig) PointAt(rate float64, depth int) PointConfig {
	model := noise.Noiseless
	if rate > 0 {
		if cfg.Axis == Axis1Q {
			model = noise.PaperModel(rate, 0)
		} else {
			model = noise.PaperModel(0, rate)
		}
	}
	return PointConfig{
		Geometry:     cfg.Geometry,
		Depth:        depth,
		Model:        model,
		OrderX:       cfg.OrderX,
		OrderY:       cfg.OrderY,
		Instances:    cfg.Budget.Instances,
		Shots:        cfg.Budget.Shots,
		Trajectories: cfg.Budget.Trajectories,
		RowSeed:      splitSeed(cfg.Seed, uint64(cfg.OrderX)<<8|uint64(cfg.OrderY)),
		PointSeed:    splitSeed(cfg.Seed, hashPoint(cfg.Axis, rate, depth, cfg.OrderX, cfg.OrderY)),
		Workers:      cfg.Budget.Workers,
		Pipeline:     cfg.Pipeline,
		Scorers:      cfg.Scorers,
	}
}

// Progress describes one completed grid cell of a panel sweep. Done is
// always Fresh + Restored; trackers that estimate throughput or ETA
// should rate only the fresh count — restored cells complete in
// microseconds and would otherwise inflate both (the classic
// post-resume "finishing in 30 seconds" lie).
type Progress struct {
	// Done counts all completed cells so far, in completion order.
	Done int
	// Fresh counts cells computed in this process.
	Fresh int
	// Restored counts cells restored from a checkpoint log.
	Restored int
	// Total is the number of cells in the grid.
	Total int
	// Point is the cell that just completed.
	Point PointResult
	// FromCheckpoint is true when Point was restored, not computed.
	FromCheckpoint bool
}

// ProgressFunc observes panel sweep progress. Callbacks are serialized
// under the panel's bookkeeping lock, so implementations may update
// shared state without further synchronization — but must not block.
type ProgressFunc func(Progress)

// RunPanel sweeps all (rate, depth) combinations of a panel on a
// private trajectory-backend runner. Progress callbacks fire after each
// completed point when progress is non-nil. Sweeps that want
// cancellation, backend selection, or a shared worker pool should call
// RunPanelCtx.
func RunPanel(cfg PanelConfig, progress ProgressFunc) PanelResult {
	res, err := RunPanelCtx(context.Background(), defaultRunner(cfg.Budget.Workers), cfg, progress)
	if err != nil {
		panic("experiment: " + err.Error())
	}
	return res
}

// RunPanelCtx sweeps all (rate, depth) combinations of a panel on the
// given runner. Every grid point runs concurrently as a coordinator
// goroutine whose operand instances draw from the runner's single
// bounded worker pool, so panel-level and instance-level parallelism
// share one slot budget. Results land at their (rate, depth) grid
// index, so output ordering — and therefore CSV bytes — is independent
// of scheduling.
//
// Cancelling ctx stops the sweep mid-grid: no new instances are
// scheduled, in-flight instances drain, and ctx.Err() is returned.
func RunPanelCtx(ctx context.Context, r *backend.Runner, cfg PanelConfig, progress ProgressFunc) (PanelResult, error) {
	return runPanel(ctx, r, cfg, "", Shard{}, nil, progress)
}

// runPanel is the shared panel core: the plain path (ck == nil) and
// the durable checkpoint/resume path (RunPanelCheckpointCtx) differ
// only in whether cells are restored from / recorded into ck. A shard
// with Count > 1 restricts the sweep to the cells it owns; unowned
// cells stay zero in the result and are excluded from Progress.Total.
func runPanel(ctx context.Context, r *backend.Runner, cfg PanelConfig, panel string, shard Shard, ck CheckpointStore, progress ProgressFunc) (PanelResult, error) {
	out := PanelResult{Config: cfg, Points: make([][]PointResult, len(cfg.Rates))}
	for i := range out.Points {
		out.Points[i] = make([]PointResult, len(cfg.Depths))
	}
	total := len(cfg.Rates) * len(cfg.Depths)
	if shard.Enabled() {
		total = len(shard.OwnedKeys(cfg.Keys(panel)))
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int
		fresh    int
		restored int
		firstErr error
	)
	for i, rate := range cfg.Rates {
		for j, d := range cfg.Depths {
			key := ""
			if ck != nil || shard.Enabled() {
				key = PointKey(panel, i, j)
			}
			if shard.Enabled() && !shard.Owns(key) {
				continue
			}
			if ck != nil {
				if raw, ok := ck.LookupPoint(key); ok {
					pr, err := decodePoint(key, raw)
					if err != nil {
						return PanelResult{}, err
					}
					out.Points[i][j] = pr
					pointsRestored.Inc()
					mu.Lock()
					done++
					restored++
					if progress != nil {
						progress(Progress{Done: done, Fresh: fresh, Restored: restored, Total: total, Point: pr, FromCheckpoint: true})
					}
					mu.Unlock()
					continue
				}
			}
			wg.Add(1)
			go func(i, j int, key string, pc PointConfig) {
				defer wg.Done()
				pr, err := RunPointCtx(ctx, r, pc)
				if err == nil && ck != nil {
					// Record before acknowledging: a crash after the
					// progress callback must never lose the point.
					err = ck.AppendPoint(key, pr)
				}
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				out.Points[i][j] = pr
				done++
				fresh++
				if progress != nil {
					progress(Progress{Done: done, Fresh: fresh, Restored: restored, Total: total, Point: pr})
				}
			}(i, j, key, cfg.PointAt(rate, d))
		}
	}
	wg.Wait()
	if firstErr != nil {
		return PanelResult{}, firstErr
	}
	return out, nil
}

// hashPoint derives a point-seed discriminator from the sweep
// coordinates by chaining splitSeed over each field. The previous
// shift-packed XOR (uint64(rate*1e7) folded into depth/order bits) could
// collide for nearby grid points; chaining a SplitMix64 round per field
// decorrelates every coordinate.
func hashPoint(axis ErrorAxis, rate float64, depth, ox, oy int) uint64 {
	h := splitSeed(uint64(axis), math.Float64bits(rate))
	h = splitSeed(h, uint64(depth))
	h = splitSeed(h, uint64(ox))
	return splitSeed(h, uint64(oy))
}

// DepthLabel renders a depth for tables/legends ("full" for qft.Full).
func DepthLabel(d int, registerWidth int) string {
	if qft.IsFull(d, registerWidth) {
		return "full"
	}
	return fmt.Sprintf("%d", d)
}

// CSV renders a panel as comma-separated rows:
// axis,rate,depth,orders,success,lower,upper,sigma,instances. When the
// panel requested additional scorers their aggregated columns follow
// the frozen seventeen, one per scorer column, in request order —
// margin-only panels emit the historical byte-identical layout.
func (p PanelResult) CSV() string {
	extraCols := ScorerColumns(p.Config.Scorers)
	var sb strings.Builder
	sb.WriteString("op,axis,rate_pct,depth,order_x,order_y,success_pct,lower_bar_pct,upper_bar_pct,margin_mean,margin_sigma,mean_fidelity,instances,shots,trajectories,w0,expected_errors")
	for _, c := range extraCols {
		sb.WriteByte(',')
		sb.WriteString(c)
	}
	sb.WriteByte('\n')
	for i, rate := range p.Config.Rates {
		for j, d := range p.Config.Depths {
			r := p.Points[i][j]
			fmt.Fprintf(&sb, "%s,%s,%.3f,%s,%d,%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.4f,%d,%d,%d,%.5f,%.3f",
				p.Config.Geometry.Op, p.Config.Axis, rate*100,
				DepthLabel(d, depthRegWidth(p.Config.Geometry)),
				p.Config.OrderX, p.Config.OrderY,
				r.Stats.SuccessRate, r.Stats.LowerBar, r.Stats.UpperBar,
				r.Stats.MarginMean, r.Stats.MarginSigma, r.Stats.MeanFidelity,
				r.Config.Instances, r.Config.Shots, r.Config.Trajectories,
				r.NoErrorProb, r.ExpectedErrors)
			for _, c := range extraCols {
				fmt.Fprintf(&sb, ",%.6f", extraValue(r.Stats, c))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// ScorerColumns flattens the CSV columns the named scorers contribute,
// in request order. Panics on an unknown name: panel configurations are
// validated at the CLI boundary, so reaching here with a bad name is a
// programming error, not user input.
func ScorerColumns(names []string) []string {
	ss, err := metrics.ResolveScorers(names)
	if err != nil {
		panic("experiment: " + err.Error())
	}
	var cols []string
	for _, s := range ss {
		cols = append(cols, s.Columns()...)
	}
	return cols
}

// extraValue looks an aggregated scorer column up by name. Restored
// checkpoints wrote Extra in scorer-request order, but name lookup
// keeps the CSV correct even if a future payload reorders it. A point
// that never ran the scorer (zero value) reports 0.
func extraValue(st metrics.PointStats, name string) float64 {
	for _, mv := range st.Extra {
		if mv.Name == name {
			return mv.Value
		}
	}
	return 0
}

// depthRegWidth returns the register width that determines when a depth
// is "full": the QFT register for addition/subtraction, the cQFA window
// for (signed or unsigned) multiplication.
func depthRegWidth(g Geometry) int {
	switch g.Op {
	case OpAdd, OpSub:
		return g.YBits
	default:
		return g.YBits + 1
	}
}

// Plot renders a panel as an ASCII chart: success rate vs. error rate,
// one series per depth — the terminal rendition of a figure panel.
func (p PanelResult) Plot() string {
	lo, hi := 0.0, 100.0
	ch := plot.Chart{
		Title: fmt.Sprintf("%s %s sweep %d:%d — success%% vs rate%%",
			strings.ToUpper(p.Config.Geometry.Op.String()), p.Config.Axis,
			p.Config.OrderX, p.Config.OrderY),
		XLabel: "gate error rate (%)",
		YLabel: "success rate (%)",
		YMin:   &lo, YMax: &hi,
	}
	for j, d := range p.Config.Depths {
		s := plot.Series{Label: "d=" + DepthLabel(d, depthRegWidth(p.Config.Geometry))}
		for i, rate := range p.Config.Rates {
			s.X = append(s.X, rate*100)
			s.Y = append(s.Y, p.Points[i][j].Stats.SuccessRate)
		}
		ch.Add(s)
	}
	return ch.Render()
}

// Table renders a panel as a fixed-width ASCII table with one row per
// error rate and one column per depth, mirroring the figure clusters.
func (p PanelResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s-gate error sweep, %d:%d superposition\n",
		strings.ToUpper(p.Config.Geometry.Op.String()), p.Config.Axis,
		p.Config.OrderX, p.Config.OrderY)
	fmt.Fprintf(&sb, "%-10s", "rate%")
	for _, d := range p.Config.Depths {
		fmt.Fprintf(&sb, "%12s", "d="+DepthLabel(d, depthRegWidth(p.Config.Geometry)))
	}
	sb.WriteByte('\n')
	for i, rate := range p.Config.Rates {
		fmt.Fprintf(&sb, "%-10.2f", rate*100)
		for j := range p.Config.Depths {
			r := p.Points[i][j]
			fmt.Fprintf(&sb, "%11.1f%%", r.Stats.SuccessRate)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
