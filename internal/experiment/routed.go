package experiment

import (
	"context"
	"fmt"

	"qfarith/internal/arith"
	"qfarith/internal/backend"
	"qfarith/internal/compile"
	"qfarith/internal/layout"
	"qfarith/internal/metrics"
	"qfarith/internal/telemetry"
	"qfarith/internal/transpile"
)

// RunRoutedPoint is experiment E7: the same success-rate measurement as
// RunPoint, but with the circuit routed onto a restricted coupling map
// first, so the SWAP overhead the paper idealizes away ("we consider an
// idealized layout with complete qubit connectivity") contributes its
// real noise. Only addition geometries are supported (the QFM's
// 16-qubit routed circuits are out of scope for the 1-core harness).
//
// The measured register follows the router's final layout, so the
// metric scores exactly the same logical outcome as the unrouted run.
func RunRoutedPoint(cfg PointConfig, cm *layout.CouplingMap) PointResult {
	r, err := RunRoutedPointCtx(context.Background(), defaultRunner(cfg.Workers), cfg, cm)
	if err != nil {
		panic("experiment: " + err.Error())
	}
	return r
}

// RunRoutedPointCtx is RunRoutedPoint on a shared runner: routing and
// compaction happen once, then each operand instance is dispatched to
// the runner's backend through its bounded pool.
func RunRoutedPointCtx(ctx context.Context, r *backend.Runner, cfg PointConfig, cm *layout.CouplingMap) (PointResult, error) {
	if cfg.Geometry.Op != OpAdd {
		panic("experiment: routed points support addition only")
	}
	// The pre-route circuit compiles through cfg.Pipeline; this path owns
	// routing and physical-index compaction, so a pipeline route pass
	// would route twice.
	for _, name := range cfg.Pipeline.PassList() {
		if name == compile.PassRoute {
			return PointResult{}, fmt.Errorf("experiment: routed points route internally; drop %q from the pass list", compile.PassRoute)
		}
	}
	srun, err := cfg.newScorerRun()
	if err != nil {
		return PointResult{}, err
	}
	sp := telemetry.StartSpan(pointSec)
	art, err := cfg.Geometry.BuildArtifact(arith.Config{Depth: cfg.Depth, AddCut: arith.FullAdd}, cfg.Pipeline)
	if err != nil {
		return PointResult{}, err
	}
	routed := layout.Route(art.Result.Circuit(), cm, nil)

	// Compact the physical index space to the qubits the routed circuit
	// actually touches (a big device would otherwise force a full-device
	// statevector: 27 heavy-hex qubits = 2 GiB of amplitudes).
	used := map[int]bool{}
	for _, op := range routed.Circuit.Ops {
		for _, q := range op.Active() {
			used[q] = true
		}
	}
	for _, p := range routed.InitialLayout {
		used[p] = true
	}
	compact := make([]int, cm.NumQubits)
	for i := range compact {
		compact[i] = -1
	}
	nUsed := 0
	for p := 0; p < cm.NumQubits; p++ {
		if used[p] {
			compact[p] = nUsed
			nUsed++
		}
	}
	circ := routed.Circuit.Remapped(nUsed, compact)
	initLayout := make([]int, len(routed.InitialLayout))
	for l, p := range routed.InitialLayout {
		initLayout[l] = compact[p]
	}

	// The routed circuit is already native; re-wrap it for the backend.
	rres := transpile.Transpile(circ)

	// Physical measurement register: logical OutReg qubits at their
	// final physical homes.
	measure := make([]int, len(cfg.Geometry.OutReg))
	for i, l := range cfg.Geometry.OutReg {
		measure[i] = compact[routed.FinalLayout[l]]
	}

	results := make([]metrics.InstanceResult, cfg.Instances)
	var diag backend.Diagnostics
	err = r.Do(ctx, cfg.Instances, func(idx int) error {
		xs, ys := cfg.instanceOperands(idx)
		sc := getInstanceScratch()
		defer putInstanceScratch(sc)
		logical := sc.logicalAmps(1 << uint(cfg.Geometry.TotalQubits))
		initial := sc.amps(1 << uint(nUsed))
		cfg.initialAmps(logical, xs, ys)
		embedInitial(initial, logical, initLayout, cfg.Geometry.TotalQubits)
		dist, d, err := r.Backend().Run(ctx, backend.PointSpec{
			Circuit:      rres,
			Model:        cfg.Model,
			Initial:      initial,
			Measure:      measure,
			Trajectories: cfg.Trajectories,
			Seed1:        splitSeed(cfg.PointSeed, uint64(idx)),
			Seed2:        mixtureSeed2,
		})
		if err != nil {
			return err
		}
		results[idx] = cfg.sampleAndScore(sc, idx, xs, ys, dist, d.Ideal, srun)
		if idx == 0 {
			diag = d
		}
		return nil
	})
	if err != nil {
		return PointResult{}, err
	}
	sp.End()
	pointsFresh.Inc()
	st := metrics.Aggregate(results)
	if srun != nil {
		st.Extra = srun.aggregate()
	}
	one, two := rres.CountByArity()
	return PointResult{
		Config:         cfg,
		Stats:          st,
		NoErrorProb:    diag.NoErrorProb,
		ExpectedErrors: diag.ExpectedErrors,
		Native1q:       one,
		Native2q:       two,
	}, nil
}

// embedInitial maps a logical amplitude vector onto the (possibly
// wider) physical register according to the initial layout: logical
// basis state L maps to the physical basis state with bit layout[l] set
// for each set bit l of L. Unmapped physical qubits stay |0>.
func embedInitial(physical, logical []complex128, initialLayout []int, logicalQubits int) {
	for i := range physical {
		physical[i] = 0
	}
	for lIdx, amp := range logical {
		if amp == 0 {
			continue
		}
		p := 0
		for l := 0; l < logicalQubits; l++ {
			if lIdx>>uint(l)&1 == 1 {
				p |= 1 << uint(initialLayout[l])
			}
		}
		physical[p] = amp
	}
}
