package experiment

import (
	"math/rand/v2"

	"qfarith/internal/layout"
	"qfarith/internal/metrics"
	"qfarith/internal/noise"
	"qfarith/internal/sim"
	"qfarith/internal/transpile"
)

// RunRoutedPoint is experiment E7: the same success-rate measurement as
// RunPoint, but with the circuit routed onto a restricted coupling map
// first, so the SWAP overhead the paper idealizes away ("we consider an
// idealized layout with complete qubit connectivity") contributes its
// real noise. Only addition geometries are supported (the QFM's
// 16-qubit routed circuits are out of scope for the 1-core harness).
//
// The measured register follows the router's final layout, so the
// metric scores exactly the same logical outcome as the unrouted run.
func RunRoutedPoint(cfg PointConfig, cm *layout.CouplingMap) PointResult {
	if cfg.Geometry.Op != OpAdd {
		panic("experiment: routed points support addition only")
	}
	res := cfg.Geometry.BuildCircuit(cfg.Depth)
	routed := layout.Route(res.Circuit(), cm, nil)

	// Compact the physical index space to the qubits the routed circuit
	// actually touches (a big device would otherwise force a full-device
	// statevector: 27 heavy-hex qubits = 2 GiB of amplitudes).
	used := map[int]bool{}
	for _, op := range routed.Circuit.Ops {
		for _, q := range op.Active() {
			used[q] = true
		}
	}
	for _, p := range routed.InitialLayout {
		used[p] = true
	}
	compact := make([]int, cm.NumQubits)
	for i := range compact {
		compact[i] = -1
	}
	nUsed := 0
	for p := 0; p < cm.NumQubits; p++ {
		if used[p] {
			compact[p] = nUsed
			nUsed++
		}
	}
	circ := routed.Circuit.Remapped(nUsed, compact)
	initLayout := make([]int, len(routed.InitialLayout))
	for l, p := range routed.InitialLayout {
		initLayout[l] = compact[p]
	}

	// The routed circuit is already native; re-wrap it for the engine.
	rres := transpile.Transpile(circ)
	engine := noise.NewEngine(rres, cfg.Model)

	// Physical measurement register: logical OutReg qubits at their
	// final physical homes.
	measure := make([]int, len(cfg.Geometry.OutReg))
	for i, l := range cfg.Geometry.OutReg {
		measure[i] = compact[routed.FinalLayout[l]]
	}

	results := make([]metrics.InstanceResult, cfg.Instances)
	st := sim.NewState(nUsed)
	initial := make([]complex128, st.Dim())
	dist := make([]float64, 1<<uint(cfg.Geometry.OutBits))
	ideal := make([]float64, len(dist))
	logical := make([]complex128, 1<<uint(cfg.Geometry.TotalQubits))
	for idx := 0; idx < cfg.Instances; idx++ {
		xs, ys := cfg.instanceOperands(idx)
		cfg.initialAmps(logical, xs, ys)
		embedInitial(initial, logical, initLayout, cfg.Geometry.TotalQubits)
		rng := rand.New(rand.NewPCG(splitSeed(cfg.PointSeed, uint64(idx)), 0xda3e39cb94b95bdb))
		engine.MixtureInto(dist, st, initial, noise.MixtureOpts{
			Trajectories: cfg.Trajectories,
			Measure:      measure,
			IdealOut:     ideal,
		}, rng)
		sampler := sim.NewSampler(splitSeed(cfg.PointSeed, uint64(idx)^0xabcdef), uint64(idx))
		counts := sampler.Counts(dist, cfg.Shots)
		results[idx] = metrics.Score(counts, cfg.correctSet(xs, ys))
		results[idx].Fidelity = metrics.ClassicalFidelity(ideal, dist)
	}

	one, two := rres.CountByArity()
	return PointResult{
		Config:         cfg,
		Stats:          metrics.Aggregate(results),
		NoErrorProb:    engine.NoErrorProb(),
		ExpectedErrors: engine.ExpectedErrors(),
		Native1q:       one,
		Native2q:       two,
	}
}

// embedInitial maps a logical amplitude vector onto the (possibly
// wider) physical register according to the initial layout: logical
// basis state L maps to the physical basis state with bit layout[l] set
// for each set bit l of L. Unmapped physical qubits stay |0>.
func embedInitial(physical, logical []complex128, initialLayout []int, logicalQubits int) {
	for i := range physical {
		physical[i] = 0
	}
	for lIdx, amp := range logical {
		if amp == 0 {
			continue
		}
		p := 0
		for l := 0; l < logicalQubits; l++ {
			if lIdx>>uint(l)&1 == 1 {
				p |= 1 << uint(initialLayout[l])
			}
		}
		physical[p] = amp
	}
}
