package experiment

import (
	"encoding/json"
	"testing"

	"qfarith/internal/compile"
)

// TestSweepSpecWireFormatFrozen pins the JSON encoding of SweepSpec —
// the bytes runstore config hashes are computed over. Every run
// directory ever created embeds a SHA-256 of exactly this layout, so a
// renamed, reordered, or retyped field would silently orphan all
// existing runs (resume would refuse them as "config changed"). The
// expected literal was generated before the struct moved out of
// cmd/qfarith and verified hash-identical against the pre-refactor
// binary; it must never change. New fields must be `json:",omitempty"`.
func TestSweepSpecWireFormatFrozen(t *testing.T) {
	spec := SweepSpec{
		Command:  "fig3",
		Geometry: PaperAddGeometry(),
		Depths:   AddDepths,
		Axes:     []ErrorAxis{Axis2Q},
		Orders:   [][2]int{{1, 2}},
		Rates1Q:  PaperRates1Q,
		Rates2Q:  PaperRates2Q,
		Instances: 8, Shots: 512, Traj: 8,
		Seed: 777, Backend: "trajectory",
		Pipeline: compile.Config{}.Hash(),
	}
	const want = `{"Command":"fig3","Geometry":{"Op":0,"XBits":7,"YBits":8,"TotalQubits":15,` +
		`"XReg":[0,1,2,3,4,5,6],"YReg":[7,8,9,10,11,12,13,14],"OutReg":[7,8,9,10,11,12,13,14],` +
		`"OutBits":8,"ProductInWires":false,"ZReg":null},"Depths":[1,2,3,4,2147483647],` +
		`"Axes":[1],"Orders":[[1,2]],"Rates1Q":[0,0.002,0.003,0.004,0.005,0.006,0.008],` +
		`"Rates2Q":[0,0.003,0.005,0.007,0.01,0.015,0.02],"Instances":8,"Shots":512,"Traj":8,` +
		`"Seed":777,"Backend":"trajectory","Pipeline":"27c8a04e7efa1a19"}`
	got, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("SweepSpec wire format changed:\n got: %s\nwant: %s", got, want)
	}
}

// TestFigureSweepCommands checks the command→geometry mapping covers
// exactly the four figure sweeps.
func TestFigureSweepCommands(t *testing.T) {
	cases := []struct {
		command string
		op      Op
		depths  []int
	}{
		{"fig3", OpAdd, AddDepths},
		{"fig4", OpMul, MulDepths},
		{"fig3-signed", OpSub, AddDepths},
		{"fig4-signed", OpMulSigned, MulDepths},
	}
	for _, c := range cases {
		geo, depths, ok := FigureSweep(c.command)
		if !ok {
			t.Fatalf("FigureSweep(%q) not ok", c.command)
		}
		if geo.Op != c.op {
			t.Errorf("FigureSweep(%q).Op = %v, want %v", c.command, geo.Op, c.op)
		}
		if len(depths) != len(c.depths) {
			t.Errorf("FigureSweep(%q) depths = %v, want %v", c.command, depths, c.depths)
		}
	}
	if _, _, ok := FigureSweep("claim-2q"); ok {
		t.Error("FigureSweep accepted a non-figure command")
	}
}

// TestPanelsEnumeration checks panel order (orders outer, axes inner),
// labels, per-axis rate grids, and the grid key list.
func TestPanelsEnumeration(t *testing.T) {
	geo, depths, _ := FigureSweep("fig3")
	spec := SweepSpec{
		Command: "fig3", Geometry: geo, Depths: depths,
		Axes:    []ErrorAxis{Axis1Q, Axis2Q},
		Orders:  [][2]int{{1, 1}, {2, 2}},
		Rates1Q: []float64{0, 0.002},
		Rates2Q: []float64{0, 0.01, 0.02},
		Instances: 4, Shots: 64, Traj: 2, Seed: 9,
	}
	panels, keys := spec.Panels(compile.Config{}, 3)
	wantLabels := []string{"fig3_1q_11", "fig3_2q_11", "fig3_1q_22", "fig3_2q_22"}
	if len(panels) != len(wantLabels) {
		t.Fatalf("got %d panels, want %d", len(panels), len(wantLabels))
	}
	wantKeys := 0
	for i, pj := range panels {
		if pj.Label != wantLabels[i] {
			t.Errorf("panel %d label = %q, want %q", i, pj.Label, wantLabels[i])
		}
		wantRates := spec.Rates1Q
		if pj.Config.Axis == Axis2Q {
			wantRates = spec.Rates2Q
		}
		if len(pj.Config.Rates) != len(wantRates) {
			t.Errorf("panel %s has %d rates, want %d", pj.Label, len(pj.Config.Rates), len(wantRates))
		}
		if pj.Config.Budget.Workers != 3 {
			t.Errorf("panel %s workers = %d, want 3", pj.Label, pj.Config.Budget.Workers)
		}
		if pj.Config.Seed != spec.Seed || pj.Config.Budget.Instances != spec.Instances {
			t.Errorf("panel %s did not inherit the spec's seed/budget", pj.Label)
		}
		wantKeys += len(pj.Config.Rates) * len(pj.Config.Depths)
	}
	if len(keys) != wantKeys {
		t.Fatalf("got %d grid keys, want %d", len(keys), wantKeys)
	}
	if keys[0] != PointKey("fig3_1q_11", 0, 0) {
		t.Errorf("first key = %q", keys[0])
	}
}
