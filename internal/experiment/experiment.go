// Package experiment reproduces the paper's evaluation: it sweeps
// QFA/QFM success rates over gate error rates, AQFT approximation
// depths, and operand superposition orders, scoring each point with the
// metrics package exactly as Sec. 4 describes (random operand instances,
// fixed shots each, success = no incorrect output out-counting a correct
// one).
package experiment

import (
	"context"
	"math"
	"math/rand/v2"
	"sync"

	"qfarith/internal/arith"
	"qfarith/internal/backend"
	"qfarith/internal/circuit"
	"qfarith/internal/compile"
	"qfarith/internal/metrics"
	"qfarith/internal/noise"
	"qfarith/internal/telemetry"
	"qfarith/internal/transpile"
)

// Op selects the arithmetic operation under test.
type Op int

const (
	// OpAdd is Quantum Fourier Addition with the paper's Fig. 3
	// geometry: a 7-qubit addend register x and an 8-qubit sum register
	// y (the register pair whose Table I gate counts match the paper).
	OpAdd Op = iota
	// OpMul is Quantum Fourier Multiplication with the Fig. 4 geometry:
	// 4-qubit multiplicands and an 8-qubit product register.
	OpMul
	// OpSub is Quantum Fourier Subtraction: the inverse phase ladder on
	// the QFA geometry, computing y ← (y − x) mod 2^w. Two's-complement
	// encoding makes the same circuit the signed subtractor.
	OpSub
	// OpMulSigned is the sign-corrected Fourier multiplier: operands
	// read as two's complement, product delivered in (n+m)-bit two's
	// complement.
	OpMulSigned
)

func (o Op) String() string {
	switch o {
	case OpAdd:
		return "qfa"
	case OpSub:
		return "qfs"
	case OpMulSigned:
		return "sqfm"
	default:
		return "qfm"
	}
}

// Geometry fixes the register layout of an operation.
type Geometry struct {
	Op             Op
	XBits, YBits   int   // operand register widths
	TotalQubits    int   // full simulator width
	XReg, YReg     []int // operand register qubit indices (LSB first)
	OutReg         []int // measured register
	OutBits        int
	ProductInWires bool // true when a separate product register exists
	ZReg           []int
}

// AddGeometry returns the paper's QFA layout: x on qubits 0..xbits-1,
// y on xbits..xbits+ybits-1; the sum register y is measured.
func AddGeometry(xbits, ybits int) Geometry {
	return Geometry{
		Op: OpAdd, XBits: xbits, YBits: ybits,
		TotalQubits: xbits + ybits,
		XReg:        arith.Range(0, xbits),
		YReg:        arith.Range(xbits, ybits),
		OutReg:      arith.Range(xbits, ybits),
		OutBits:     ybits,
	}
}

// MulGeometry returns the paper's QFM layout: product z on qubits
// 0..n+m-1, multiplicand y next, multiplier x last; z is measured.
func MulGeometry(n, m int) Geometry {
	return Geometry{
		Op: OpMul, XBits: n, YBits: m,
		TotalQubits:    2*n + 2*m,
		XReg:           arith.Range(n+2*m, n),
		YReg:           arith.Range(n+m, m),
		ZReg:           arith.Range(0, n+m),
		OutReg:         arith.Range(0, n+m),
		OutBits:        n + m,
		ProductInWires: true,
	}
}

// SubGeometry returns the QFS layout: identical registers to the QFA —
// x on qubits 0..xbits-1, minuend/difference y above it, y measured —
// since subtraction is the inverse phase ladder on the same wires.
func SubGeometry(xbits, ybits int) Geometry {
	g := AddGeometry(xbits, ybits)
	g.Op = OpSub
	return g
}

// SignedMulGeometry returns the signed QFM layout: identical registers
// to the unsigned QFM (product z measured, then y, then x), with the
// operands read as two's complement and the two sign-correction blocks
// appended.
func SignedMulGeometry(n, m int) Geometry {
	g := MulGeometry(n, m)
	g.Op = OpMulSigned
	return g
}

// PaperAddGeometry is the Fig. 3 / Table I QFA configuration.
func PaperAddGeometry() Geometry { return AddGeometry(7, 8) }

// PaperMulGeometry is the Fig. 4 / Table I QFM configuration.
func PaperMulGeometry() Geometry { return MulGeometry(4, 4) }

// PaperSubGeometry is the signed-panel QFS configuration: the Fig. 3
// register sizes with the subtractor circuit.
func PaperSubGeometry() Geometry { return SubGeometry(7, 8) }

// PaperSignedMulGeometry is the signed-panel QFM configuration: the
// Fig. 4 register sizes with the sign-corrected multiplier.
func PaperSignedMulGeometry() Geometry { return SignedMulGeometry(4, 4) }

// BuildCircuit constructs the operation's circuit at AQFT depth d.
func (g Geometry) BuildCircuit(d int) *transpile.Result {
	cfg := arith.Config{Depth: d, AddCut: arith.FullAdd}
	return g.BuildCircuitCfg(cfg)
}

// BuildCircuitCfg constructs the circuit with full arithmetic config
// (exposes the add-step cutoff for the ablation experiment).
func (g Geometry) BuildCircuitCfg(cfg arith.Config) *transpile.Result {
	return transpile.Transpile(g.LogicalCircuit(cfg))
}

// LogicalCircuit constructs the operation's logical (pre-compilation)
// gate list — the input the compile pipeline consumes.
func (g Geometry) LogicalCircuit(cfg arith.Config) *circuit.Circuit {
	c := newCircuit(g.TotalQubits)
	switch g.Op {
	case OpAdd:
		arith.QFAGates(c, g.XReg, g.YReg, cfg)
	case OpSub:
		arith.SubGates(c, g.XReg, g.YReg, cfg)
	case OpMul:
		arith.QFMGates(c, g.XReg, g.YReg, g.ZReg, cfg)
	case OpMulSigned:
		arith.SignedQFMGates(c, g.XReg, g.YReg, g.ZReg, cfg)
	}
	return c
}

// BuildArtifact compiles the operation's circuit through the given
// pipeline configuration, returning the executable result plus per-pass
// statistics.
func (g Geometry) BuildArtifact(acfg arith.Config, pcfg compile.Config) (*compile.Artifact, error) {
	p, err := compile.New(pcfg)
	if err != nil {
		return nil, err
	}
	return p.Compile(g.LogicalCircuit(acfg))
}

// PointConfig describes a single plotted point of Figs. 3/4.
type PointConfig struct {
	Geometry Geometry
	Depth    int // AQFT depth; qft.Full for the full transform
	Model    noise.Model
	// OrderX and OrderY are each operand's order of superposition (the
	// paper sweeps 1:1, 1:2, 2:2; for addition the order-2 operand of a
	// 1:2 instance is the updated register y, per Sec. 4).
	OrderX, OrderY int
	Instances      int
	Shots          int
	Trajectories   int
	// RowSeed fixes operand sampling: the paper reuses the same operand
	// sets across the 1q and 2q columns of a row, so RowSeed should
	// depend only on (op, orders) while PointSeed varies per point.
	RowSeed   uint64
	PointSeed uint64
	// Workers bounds instance-level parallelism; 0 = GOMAXPROCS.
	Workers int
	// Pipeline selects the compilation pass pipeline; the zero value is
	// the default (decompose,fuse) pipeline the paper's figures use.
	Pipeline compile.Config
	// Scorers names additional success metrics to evaluate beside the
	// always-on margin scoring, each making one pass over the same shot
	// histogram. Empty means margin only; the field is omitted from
	// checkpoint payloads (and therefore from config hashes) when empty,
	// so historical runs stay resumable and byte-identical.
	Scorers []string `json:",omitempty"`
}

// PointResult is the aggregated outcome of one plotted point.
type PointResult struct {
	Config PointConfig
	Stats  metrics.PointStats
	// NoErrorProb and ExpectedErrors describe the noise exposure of the
	// circuit at this point.
	NoErrorProb    float64
	ExpectedErrors float64
	Native1q       int
	Native2q       int
	Paper1q        int
	Paper2q        int
}

// splitSeed derives a decorrelated stream seed with SplitMix64.
func splitSeed(base, idx uint64) uint64 {
	z := base + 0x9e3779b97f4a7c15*(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sampleDistinct draws k distinct integers from [0, n).
func sampleDistinct(rng *rand.Rand, k, n int) []int {
	if k > n {
		panic("experiment: cannot sample more distinct values than the range holds")
	}
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for len(out) < k {
		v := rng.IntN(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// instanceOperands draws the operand values for instance idx of a row.
func (cfg PointConfig) instanceOperands(idx int) (xs, ys []int) {
	rng := rand.New(rand.NewPCG(splitSeed(cfg.RowSeed, uint64(idx)), 0x5851f42d4c957f2d))
	xs = sampleDistinct(rng, cfg.OrderX, 1<<uint(cfg.Geometry.XBits))
	ys = sampleDistinct(rng, cfg.OrderY, 1<<uint(cfg.Geometry.YBits))
	return
}

// initialAmps writes the product-state amplitudes for the given operand
// superpositions into buf (cleared first): equal magnitudes, zero phase,
// matching the paper's evenly-distributed probability amplitudes.
func (cfg PointConfig) initialAmps(buf []complex128, xs, ys []int) {
	for i := range buf {
		buf[i] = 0
	}
	g := cfg.Geometry
	amp := complex(1/math.Sqrt(float64(len(xs)*len(ys))), 0)
	for _, x := range xs {
		for _, y := range ys {
			var idx int
			switch g.Op {
			case OpAdd, OpSub:
				idx = x | y<<uint(g.XBits)
			case OpMul, OpMulSigned:
				// z starts at 0; y then x above it.
				idx = y<<uint(g.OutBits) | x<<uint(g.OutBits+g.YBits)
			}
			buf[idx] = amp
		}
	}
}

// correctSet returns the expected output values for the operands.
func (cfg PointConfig) correctSet(xs, ys []int) map[int]bool {
	g := cfg.Geometry
	switch g.Op {
	case OpAdd:
		return metrics.CorrectSums(xs, ys, g.OutBits)
	case OpSub:
		return metrics.CorrectDiffs(xs, ys, g.OutBits)
	case OpMulSigned:
		return metrics.CorrectSignedProducts(xs, ys, g.XBits, g.YBits)
	default:
		return metrics.CorrectProducts(xs, ys, g.OutBits)
	}
}

// mixtureSeed2 is the fixed second PCG seed word of the per-instance
// trajectory RNG (the first word chains PointSeed with the instance
// index). It predates the backend layer; keeping it preserves
// bit-identical default-backend output across the refactor.
const mixtureSeed2 = 0xda3e39cb94b95bdb

// cacheKey identifies the point's circuit inside a transpile cache: the
// arithmetic parameters plus the pipeline hash, so differently-compiled
// copies of the same circuit never alias.
func (g Geometry) cacheKey(acfg arith.Config, pcfg compile.Config) backend.CircuitKey {
	return backend.CircuitKey{
		Family: g.Op.String(),
		XBits:  g.XBits, YBits: g.YBits,
		Depth: acfg.Depth, AddCut: acfg.AddCut,
		Pipeline: pcfg.Hash(),
	}
}

// defaultRunner builds a single-use trajectory runner for the legacy
// (context-free) entry points.
func defaultRunner(workers int) *backend.Runner {
	return backend.NewRunner(backend.NewTrajectoryBackend(), workers)
}

// RunPoint simulates every instance of one point and aggregates the
// paper's statistics, on a private trajectory-backend runner with
// cfg.Workers slots. Sweeps should prefer RunPointCtx with a shared
// Runner, which adds cancellation, backend selection, and transpile
// caching across points.
func RunPoint(cfg PointConfig) PointResult {
	r, err := RunPointCtx(context.Background(), defaultRunner(cfg.Workers), cfg)
	if err != nil {
		// Unreachable for the trajectory backend with a background
		// context; fail loudly rather than return a zero result.
		panic("experiment: " + err.Error())
	}
	return r
}

// RunPointCfg is RunPoint with an explicit arithmetic config (ablations).
func RunPointCfg(cfg PointConfig, acfg arith.Config) PointResult {
	r, err := RunPointCfgCtx(context.Background(), defaultRunner(cfg.Workers), cfg, acfg)
	if err != nil {
		panic("experiment: " + err.Error())
	}
	return r
}

// RunPointCtx simulates one plotted point on the given runner: the
// point's operand instances are submitted to the runner's shared worker
// pool and evaluated by its backend. Cancelling ctx stops scheduling
// further instances and returns ctx.Err().
func RunPointCtx(ctx context.Context, r *backend.Runner, cfg PointConfig) (PointResult, error) {
	return RunPointCfgCtx(ctx, r, cfg, arith.Config{Depth: cfg.Depth, AddCut: arith.FullAdd})
}

// RunPointCfgCtx is RunPointCtx with an explicit arithmetic config. The
// point's circuit is compiled through cfg.Pipeline (memoized in the
// runner's cache under the pipeline hash); an invalid pipeline or a
// debug-mode verification failure surfaces as an error.
func RunPointCfgCtx(ctx context.Context, r *backend.Runner, cfg PointConfig, acfg arith.Config) (PointResult, error) {
	res, _, err := r.Cache().GetCompiled(cfg.Geometry.cacheKey(acfg, cfg.Pipeline), func() (*transpile.Result, []compile.Stats, error) {
		art, err := cfg.Geometry.BuildArtifact(acfg, cfg.Pipeline)
		if err != nil {
			return nil, nil, err
		}
		return art.Result, art.Stats, nil
	})
	if err != nil {
		return PointResult{}, err
	}
	return runPointOn(ctx, r, cfg, res)
}

func runPointOn(ctx context.Context, r *backend.Runner, cfg PointConfig, res *transpile.Result) (PointResult, error) {
	srun, err := cfg.newScorerRun()
	if err != nil {
		return PointResult{}, err
	}
	sp := telemetry.StartSpan(pointSec)
	results := make([]metrics.InstanceResult, cfg.Instances)
	var (
		diagOnce sync.Once
		diag     backend.Diagnostics
	)
	err = r.Do(ctx, cfg.Instances, func(idx int) error {
		ir, d, err := cfg.runInstance(ctx, r.Backend(), res, idx, srun)
		if err != nil {
			return err
		}
		results[idx] = ir
		diagOnce.Do(func() { diag = d })
		return nil
	})
	if err != nil {
		return PointResult{}, err
	}
	// Only completed points feed the latency histogram: a cancelled
	// point returns quickly and would drag the quantiles toward zero.
	sp.End()
	pointsFresh.Inc()

	st := metrics.Aggregate(results)
	if srun != nil {
		st.Extra = srun.aggregate()
	}
	one, two := res.CountByArity()
	p1, p2 := transpile.PaperCounts(srcCircuit(res))
	return PointResult{
		Config:         cfg,
		Stats:          st,
		NoErrorProb:    diag.NoErrorProb,
		ExpectedErrors: diag.ExpectedErrors,
		Native1q:       one,
		Native2q:       two,
		Paper1q:        p1,
		Paper2q:        p2,
	}, nil
}

// runInstance evaluates one operand instance through the backend and
// scores the sampled shots with the paper's metric. Every per-instance
// buffer — the 2^n initial-amplitude vector and the sampling/scoring
// tail's histogram, correct-set, and sampler — comes from the instance
// scratch pool, so a warm sweep allocates nothing here beyond what the
// backend returns.
func (cfg PointConfig) runInstance(ctx context.Context, b backend.Backend, res *transpile.Result, idx int, srun *scorerRun) (metrics.InstanceResult, backend.Diagnostics, error) {
	xs, ys := cfg.instanceOperands(idx)
	sc := getInstanceScratch()
	defer putInstanceScratch(sc)
	initial := sc.amps(1 << uint(cfg.Geometry.TotalQubits))
	cfg.initialAmps(initial, xs, ys)
	dist, diag, err := b.Run(ctx, backend.PointSpec{
		Circuit:      res,
		Model:        cfg.Model,
		Initial:      initial,
		Measure:      cfg.Geometry.OutReg,
		Trajectories: cfg.Trajectories,
		Seed1:        splitSeed(cfg.PointSeed, uint64(idx)),
		Seed2:        mixtureSeed2,
	})
	if err != nil {
		return metrics.InstanceResult{}, backend.Diagnostics{}, err
	}
	ir := cfg.sampleAndScore(sc, idx, xs, ys, dist, diag.Ideal, srun)
	return ir, diag, nil
}
