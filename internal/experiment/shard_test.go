package experiment_test

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"qfarith/internal/experiment"
	"qfarith/internal/runstore"
)

func TestParseShard(t *testing.T) {
	good := map[string]experiment.Shard{
		"":    {},
		"0/1": {Index: 0, Count: 1},
		"0/3": {Index: 0, Count: 3},
		"2/3": {Index: 2, Count: 3},
	}
	for s, want := range good {
		got, err := experiment.ParseShard(s)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %+v, %v; want %+v", s, got, err, want)
		}
	}
	for _, s := range []string{"3/3", "4/3", "-1/3", "0/0", "0", "a/b", "0/3x", "1//3"} {
		if sh, err := experiment.ParseShard(s); err == nil {
			t.Errorf("ParseShard(%q) accepted as %+v, want error", s, sh)
		}
	}
}

// TestShardPartitionsGrid: across any N, every key is owned by exactly
// one shard, and the zero-value / 1-way shard owns everything.
func TestShardPartitionsGrid(t *testing.T) {
	pc := smallSweepPanel()
	keys := pc.Keys("fig3_test")
	if len(keys) != len(pc.Rates)*len(pc.Depths) {
		t.Fatalf("Keys() enumerated %d keys, want %d", len(keys), len(pc.Rates)*len(pc.Depths))
	}
	all := experiment.Shard{}
	for _, key := range keys {
		if !all.Owns(key) {
			t.Errorf("zero-value shard does not own %s", key)
		}
	}
	for _, n := range []int{1, 2, 3, 5} {
		for _, key := range keys {
			owners := 0
			for i := 0; i < n; i++ {
				if (experiment.Shard{Index: i, Count: n}).Owns(key) {
					owners++
				}
			}
			if owners != 1 {
				t.Errorf("key %s owned by %d of %d shards, want exactly 1", key, owners, n)
			}
		}
	}
	// OwnedKeys must partition the enumeration.
	total := 0
	for i := 0; i < 3; i++ {
		total += len((experiment.Shard{Index: i, Count: 3}).OwnedKeys(keys))
	}
	if total != len(keys) {
		t.Errorf("3-way OwnedKeys cover %d of %d keys", total, len(keys))
	}
}

// TestShardedPanelsMergeByteIdentical is the merge property test: run
// the panel as 3 shards into 3 run directories, merge them with
// runstore.MergeRuns, rebuild the panel purely from the merged
// checkpoints, and require the CSV to be byte-identical to an
// uninterrupted unsharded run — the acceptance bar for distributing
// the paper's heaviest sweeps across workers.
func TestShardedPanelsMergeByteIdentical(t *testing.T) {
	pc := smallSweepPanel()
	const panel = "fig3_test"

	ref, err := experiment.RunPanelCtx(context.Background(), newTrajRunner(2), pc, nil)
	if err != nil {
		t.Fatal(err)
	}

	root := t.TempDir()
	const n = 3
	shardDirs := make([]string, n)
	ownedTotal := 0
	for i := 0; i < n; i++ {
		shard := experiment.Shard{Index: i, Count: n}
		dir := filepath.Join(root, shard.String())
		run, err := runstore.Create(dir, runstore.Manifest{
			Command: "test", ConfigHash: "cfg", Shard: shard.String(),
		})
		if err != nil {
			t.Fatal(err)
		}
		progressed := 0
		res, err := experiment.RunPanelShardCheckpointCtx(context.Background(), newTrajRunner(2), pc, panel, shard, run,
			func(p experiment.Progress) {
				progressed++
				if want := len(shard.OwnedKeys(pc.Keys(panel))); p.Total != want {
					t.Errorf("shard %s Progress.Total = %d, want %d owned cells", shard, p.Total, want)
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		run.Close()
		owned := len(shard.OwnedKeys(pc.Keys(panel)))
		if progressed != owned {
			t.Errorf("shard %s completed %d cells, want %d", shard, progressed, owned)
		}
		ownedTotal += owned
		// The shard's own result grid must agree with the reference on
		// owned cells (unowned cells stay zero).
		for i2 := range pc.Rates {
			for j2 := range pc.Depths {
				got, want := res.Points[i2][j2], ref.Points[i2][j2]
				if shard.Owns(experiment.PointKey(panel, i2, j2)) {
					if !reflect.DeepEqual(got.Stats, want.Stats) {
						t.Errorf("shard %s cell (%d,%d) diverges from unsharded run", shard, i2, j2)
					}
				} else if got.Config.Instances != 0 {
					t.Errorf("shard %s ran unowned cell (%d,%d)", shard, i2, j2)
				}
			}
		}
		shardDirs[i] = dir
	}
	if want := len(pc.Rates) * len(pc.Depths); ownedTotal != want {
		t.Fatalf("shards own %d cells in total, want %d", ownedTotal, want)
	}

	merged := filepath.Join(root, "merged")
	report, err := runstore.MergeRuns(merged, shardDirs)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(pc.Rates) * len(pc.Depths); report.Points != want {
		t.Fatalf("merged %d points, want %d", report.Points, want)
	}
	mrun, err := runstore.Resume(merged, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	defer mrun.Close()
	res, err := experiment.PanelFromCheckpoints(pc, panel, mrun)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.CSV(), ref.CSV(); got != want {
		t.Errorf("merged shard CSV differs from uninterrupted unsharded run:\n--- merged ---\n%s--- unsharded ---\n%s", got, want)
	}

	// Resuming the merged run must restore every cell and re-run none.
	fresh := 0
	res2, err := experiment.RunPanelCheckpointCtx(context.Background(), newTrajRunner(2), pc, panel, mrun,
		func(p experiment.Progress) {
			if !p.FromCheckpoint {
				fresh++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if fresh != 0 {
		t.Errorf("resuming the merged run re-simulated %d cells, want 0", fresh)
	}
	if res2.CSV() != ref.CSV() {
		t.Error("resumed merged run CSV differs from unsharded run")
	}
}

// TestPanelFromCheckpointsReportsMissing: rebuilding from an
// incomplete store (one shard only) must fail and name a missing key.
func TestPanelFromCheckpointsReportsMissing(t *testing.T) {
	pc := smallSweepPanel()
	const panel = "fig3_test"
	dir := filepath.Join(t.TempDir(), "s0")
	run, err := runstore.Create(dir, runstore.Manifest{Command: "test", ConfigHash: "cfg", Shard: "0/3"})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	shard := experiment.Shard{Index: 0, Count: 3}
	if _, err := experiment.RunPanelShardCheckpointCtx(context.Background(), newTrajRunner(2), pc, panel, shard, run, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := experiment.PanelFromCheckpoints(pc, panel, run); err == nil {
		t.Fatal("PanelFromCheckpoints accepted a single shard's incomplete store")
	}
}
