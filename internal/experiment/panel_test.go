package experiment_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"qfarith/internal/backend"
	"qfarith/internal/experiment"
	"qfarith/internal/qft"
)

func smallSweepPanel() experiment.PanelConfig {
	return experiment.PanelConfig{
		Geometry: experiment.AddGeometry(2, 3),
		Axis:     experiment.Axis2Q,
		OrderX:   1, OrderY: 2,
		Rates:  []float64{0, 0.01, 0.02},
		Depths: []int{1, 2, qft.Full},
		Budget: experiment.Budget{Instances: 4, Shots: 128, Trajectories: 4},
		Seed:   20260704,
	}
}

// TestPanelParallelMatchesSerial: the shared worker pool must not change
// results — a panel run on a 1-slot runner and on a wide runner must
// produce byte-identical CSV, because every instance derives its RNG
// streams from (PointSeed, index) rather than from scheduling order.
func TestPanelParallelMatchesSerial(t *testing.T) {
	pc := smallSweepPanel()
	serial := backend.NewRunner(backend.NewTrajectoryBackend(), 1)
	wide := backend.NewRunner(backend.NewTrajectoryBackend(), 8)
	rs, err := experiment.RunPanelCtx(context.Background(), serial, pc, nil)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := experiment.RunPanelCtx(context.Background(), wide, pc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.CSV() != rp.CSV() {
		t.Error("parallel panel CSV differs from serial panel CSV")
	}
}

// TestPanelSharesTranspileCache: a 3x3 grid over one geometry needs one
// circuit per depth; the runner's cache must dedupe the other builds.
func TestPanelSharesTranspileCache(t *testing.T) {
	pc := smallSweepPanel()
	r := backend.NewRunner(backend.NewTrajectoryBackend(), 2)
	if _, err := experiment.RunPanelCtx(context.Background(), r, pc, nil); err != nil {
		t.Fatal(err)
	}
	hits, misses := r.Cache().Stats()
	if misses != len(pc.Depths) {
		t.Errorf("built %d circuits, want %d (one per depth)", misses, len(pc.Depths))
	}
	if wantHits := len(pc.Rates)*len(pc.Depths) - len(pc.Depths); hits != wantHits {
		t.Errorf("cache hits = %d, want %d", hits, wantHits)
	}
}

// TestPanelCancellationMidGrid cancels the context from a progress
// callback partway through the grid: RunPanelCtx must return ctx.Err()
// promptly instead of completing all points or deadlocking.
func TestPanelCancellationMidGrid(t *testing.T) {
	pc := smallSweepPanel()
	pc.Budget.Instances = 8 // enough work that cancellation lands mid-grid
	r := backend.NewRunner(backend.NewTrajectoryBackend(), 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	completed := 0
	done := make(chan error, 1)
	go func() {
		_, err := experiment.RunPanelCtx(ctx, r, pc, func(p experiment.Progress) {
			mu.Lock()
			completed = p.Done
			mu.Unlock()
			if p.Done == 2 {
				cancel()
			}
		})
		done <- err
	}()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("RunPanelCtx did not return after cancellation — deadlock")
	}
	mu.Lock()
	got := completed
	mu.Unlock()
	if total := len(pc.Rates) * len(pc.Depths); got >= total {
		t.Errorf("all %d points completed despite cancellation", total)
	}
}

// TestPanelPreCancelled: a context cancelled before the sweep starts
// must yield zero completed points.
func TestPanelPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := backend.NewRunner(backend.NewTrajectoryBackend(), 2)
	calls := 0
	_, err := experiment.RunPanelCtx(ctx, r, smallSweepPanel(), func(experiment.Progress) { calls++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Errorf("%d points completed under a pre-cancelled context", calls)
	}
}

// TestDensityRunnerOnPanel drives a full (tiny) panel through the exact
// density backend, checking the experiment layer is backend-agnostic.
func TestDensityRunnerOnPanel(t *testing.T) {
	pc := smallSweepPanel()
	pc.Rates = []float64{0, 0.02}
	pc.Depths = []int{qft.Full}
	pc.Budget = experiment.Budget{Instances: 2, Shots: 128, Trajectories: 1}
	r := backend.NewRunner(backend.NewDensityBackend(), 2)
	res, err := experiment.RunPanelCtx(context.Background(), r, pc, nil)
	if err != nil {
		t.Fatal(err)
	}
	noiseless := res.Points[0][0]
	if noiseless.Stats.SuccessRate != 100 {
		t.Errorf("noiseless density panel point success = %g%%, want 100%%", noiseless.Stats.SuccessRate)
	}
	noisy := res.Points[1][0]
	if noisy.NoErrorProb >= noiseless.NoErrorProb {
		t.Errorf("w0 did not drop with noise: %g vs %g", noisy.NoErrorProb, noiseless.NoErrorProb)
	}
}
