package backend

import (
	"context"
	"sync"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
	"qfarith/internal/transpile"
)

// TestEngineCacheConcurrentEviction hammers one TrajectoryBackend's
// engine LRU from many goroutines with more distinct (circuit, model)
// keys than the cache holds, so hits, misses, racing duplicate builds,
// and evictions all interleave. Run under -race this doubles as the
// data-race check for the build-outside-lock path; afterwards the cache
// stats must be internally consistent.
func TestEngineCacheConcurrentEviction(t *testing.T) {
	res := transpile.Transpile(arith.NewQFA(2, 2, arith.Config{Depth: qft.Full, AddCut: arith.FullAdd}))

	// More distinct models than maxCachedEngines, so the LRU must evict.
	nKeys := maxCachedEngines + 16
	models := make([]noise.Model, nKeys)
	for i := range models {
		models[i] = noise.PaperModel(0.001+0.0001*float64(i), 0.01)
	}

	const workers = 8
	const runsPerWorker = 200
	tb := NewTrajectoryBackend()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < runsPerWorker; i++ {
				spec := PointSpec{
					Circuit:      res,
					Model:        models[(w*31+i*7)%nKeys],
					Measure:      []int{0, 1},
					Trajectories: 2,
					Seed1:        uint64(w), Seed2: uint64(i),
				}
				if _, _, err := tb.Run(context.Background(), spec); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	hits, misses, evictions := tb.EngineCacheStats()
	n := tb.EngineCacheLen()
	if n > maxCachedEngines {
		t.Errorf("cache holds %d engines, cap is %d", n, maxCachedEngines)
	}
	if total := workers * runsPerWorker; hits+misses != total {
		t.Errorf("hits(%d) + misses(%d) = %d, want %d runs", hits, misses, hits+misses, total)
	}
	if evictions > misses {
		t.Errorf("evictions(%d) > misses(%d)", evictions, misses)
	}
	// Every resident engine came from a miss that inserted (racing
	// duplicate builds lose their insert), minus what eviction removed.
	if n > misses-evictions {
		t.Errorf("cache length %d exceeds inserts-upper-bound misses(%d) - evictions(%d)", n, misses, evictions)
	}
	if evictions == 0 {
		t.Errorf("no evictions after %d distinct keys over a %d-entry cache", nKeys, maxCachedEngines)
	}
}
