package backend

import (
	"sync"

	"qfarith/internal/compile"
	"qfarith/internal/telemetry"
	"qfarith/internal/transpile"
)

// CircuitKey identifies one compiled circuit inside a TranspileCache:
// the circuit family plus every parameter that shapes its gate list,
// including the compilation pipeline that produced it. A figure panel
// revisits the identical (geometry, depth, arithmetic config, pipeline)
// circuit once per error rate — the noise model varies but the circuit
// does not — so caching on this key removes all repeat compilation from
// a sweep.
type CircuitKey struct {
	// Family names the circuit construction ("qfa", "qfm", ...).
	Family string
	// XBits, YBits are the operand register widths.
	XBits, YBits int
	// Depth is the AQFT approximation depth.
	Depth int
	// AddCut is the addition-step rotation cutoff (arith.Config.AddCut).
	AddCut int
	// Pipeline is the deterministic hash of the compile.Config that
	// compiled the circuit (compile.Config.Hash()); two configs with
	// equal hashes produce identical output, so they may share an
	// entry. Legacy Get callers leave it empty.
	Pipeline string
}

// cacheEntry pairs a compiled circuit with the per-pass statistics of
// the pipeline run that built it.
type cacheEntry struct {
	res   *transpile.Result
	stats []compile.Stats
}

// TranspileCache memoizes compiled circuits by CircuitKey. It is safe
// for concurrent use; the returned *transpile.Result is shared and must
// be treated as immutable (every consumer in this codebase already
// does).
type TranspileCache struct {
	mu     sync.Mutex
	m      map[CircuitKey]cacheEntry
	hits   int
	misses int
	// ctrs memoizes the labeled hit/miss counter pair per pipeline
	// hash: resolving a labeled counter builds its identity string, and
	// GetCompiled runs once per point of a sweep.
	ctrs map[string]*pipelineCounters
}

type pipelineCounters struct {
	hit, miss *telemetry.Counter
}

// NewTranspileCache returns an empty cache.
func NewTranspileCache() *TranspileCache {
	return &TranspileCache{
		m:    make(map[CircuitKey]cacheEntry),
		ctrs: make(map[string]*pipelineCounters),
	}
}

// countersFor resolves (and memoizes) the cache-event counters for one
// pipeline hash. Callers must hold c.mu.
func (c *TranspileCache) countersFor(pipeline string) *pipelineCounters {
	pc, ok := c.ctrs[pipeline]
	if !ok {
		pc = &pipelineCounters{
			hit:  cacheCounter("transpile", "hit", pipeline),
			miss: cacheCounter("transpile", "miss", pipeline),
		}
		c.ctrs[pipeline] = pc
	}
	return pc
}

// Get returns the cached circuit for key, calling build to construct it
// on the first request. Concurrent Gets for the same key build at most
// once; build must be pure (same key → same circuit).
func (c *TranspileCache) Get(key CircuitKey, build func() *transpile.Result) *transpile.Result {
	res, _, err := c.GetCompiled(key, func() (*transpile.Result, []compile.Stats, error) {
		return build(), nil, nil
	})
	if err != nil {
		// Unreachable: the adapter above never errors.
		panic("backend: " + err.Error())
	}
	return res
}

// GetCompiled is Get for pipeline builds: it memoizes the compiled
// circuit together with its per-pass stats and propagates build errors
// (a failed build is not cached).
func (c *TranspileCache) GetCompiled(key CircuitKey, build func() (*transpile.Result, []compile.Stats, error)) (*transpile.Result, []compile.Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		c.hits++
		c.countersFor(key.Pipeline).hit.Inc()
		return e.res, e.stats, nil
	}
	res, stats, err := build()
	if err != nil {
		return nil, nil, err
	}
	c.misses++
	c.countersFor(key.Pipeline).miss.Inc()
	c.m[key] = cacheEntry{res: res, stats: stats}
	return res, stats, nil
}

// cacheCounter resolves the shared cache-event counter. The pipeline
// label stays low-cardinality because a process compiles through at
// most a handful of distinct pass configurations (see the telemetry
// package's label rules); legacy non-pipeline builds report as "none".
func cacheCounter(cache, result, pipeline string) *telemetry.Counter {
	if pipeline == "" {
		pipeline = "none"
	}
	return telemetry.Default().Counter("qfarith_cache_events_total",
		telemetry.L("cache", cache), telemetry.L("result", result), telemetry.L("pipeline", pipeline))
}

// Stats reports the cache's hit and miss counts.
func (c *TranspileCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns how many circuits the cache holds.
func (c *TranspileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// PassStats aggregates the per-pass statistics across every compiled
// circuit the cache holds, summed by pass name in first-seen pipeline
// order — the sweep-level view a CLI summary table prints. Circuits
// compiled without a pipeline (legacy Get) contribute nothing.
func (c *TranspileCache) PassStats() []compile.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var order []string
	agg := make(map[string]*compile.Stats)
	for _, e := range c.m {
		for _, st := range e.stats {
			a, ok := agg[st.Pass]
			if !ok {
				order = append(order, st.Pass)
				cp := st
				agg[st.Pass] = &cp
				continue
			}
			a.OpsBefore += st.OpsBefore
			a.OpsAfter += st.OpsAfter
			a.OneQBefore += st.OneQBefore
			a.OneQAfter += st.OneQAfter
			a.TwoQBefore += st.TwoQBefore
			a.TwoQAfter += st.TwoQAfter
			a.DepthBefore += st.DepthBefore
			a.DepthAfter += st.DepthAfter
			a.Wall += st.Wall
			a.Segments += st.Segments
			a.Swaps += st.Swaps
		}
	}
	out := make([]compile.Stats, 0, len(order))
	for _, name := range order {
		out = append(out, *agg[name])
	}
	return out
}
