package backend

import (
	"sync"

	"qfarith/internal/transpile"
)

// CircuitKey identifies one transpiled circuit inside a TranspileCache:
// the circuit family plus every parameter that shapes its gate list. A
// figure panel revisits the identical (geometry, depth, arithmetic
// config) circuit once per error rate — the noise model varies but the
// circuit does not — so caching on this key removes all repeat
// transpilation from a sweep.
type CircuitKey struct {
	// Family names the circuit construction ("qfa", "qfm", ...).
	Family string
	// XBits, YBits are the operand register widths.
	XBits, YBits int
	// Depth is the AQFT approximation depth.
	Depth int
	// AddCut is the addition-step rotation cutoff (arith.Config.AddCut).
	AddCut int
}

// TranspileCache memoizes transpiled circuits by CircuitKey. It is safe
// for concurrent use; the returned *transpile.Result is shared and must
// be treated as immutable (every consumer in this codebase already
// does).
type TranspileCache struct {
	mu     sync.Mutex
	m      map[CircuitKey]*transpile.Result
	hits   int
	misses int
}

// NewTranspileCache returns an empty cache.
func NewTranspileCache() *TranspileCache {
	return &TranspileCache{m: make(map[CircuitKey]*transpile.Result)}
}

// Get returns the cached circuit for key, calling build to construct it
// on the first request. Concurrent Gets for the same key build at most
// once; build must be pure (same key → same circuit).
func (c *TranspileCache) Get(key CircuitKey, build func() *transpile.Result) *transpile.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	if res, ok := c.m[key]; ok {
		c.hits++
		return res
	}
	c.misses++
	res := build()
	c.m[key] = res
	return res
}

// Stats reports the cache's hit and miss counts.
func (c *TranspileCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns how many circuits the cache holds.
func (c *TranspileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
