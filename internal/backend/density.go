package backend

import (
	"context"
	"fmt"

	"qfarith/internal/density"
	"qfarith/internal/noise"
	"qfarith/internal/sim"
)

// DensityBackend evaluates point specs by exact density-matrix channel
// evolution (internal/density): every native gate's depolarizing channel
// is applied as the full Pauli mixture, so the output distribution is
// the true channel output with zero Monte Carlo variance. Cost is
// quadratic in state dimension, so the backend refuses circuits wider
// than density.MaxQubits; use it as ground truth for small registers and
// as the cross-check for the trajectory estimator.
type DensityBackend struct{}

// NewDensityBackend returns the exact density-matrix backend.
func NewDensityBackend() *DensityBackend { return &DensityBackend{} }

// Name implements Backend.
func (d *DensityBackend) Name() string { return "density" }

// Run implements Backend. Trajectories, Seed1 and Seed2 are ignored:
// the evolution is exact and deterministic.
func (d *DensityBackend) Run(ctx context.Context, spec PointSpec) (Distribution, Diagnostics, error) {
	if err := spec.validate(); err != nil {
		return nil, Diagnostics{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, Diagnostics{}, err
	}
	n := spec.Circuit.NumQubits
	if n > density.MaxQubits {
		return nil, Diagnostics{}, fmt.Errorf(
			"backend: density backend supports at most %d qubits, circuit has %d (use the trajectory backend)",
			density.MaxQubits, n)
	}

	// Error-free reference distribution via the statevector simulator.
	st := sim.NewState(n)
	if spec.Initial != nil {
		st.SetAmplitudes(spec.Initial)
	}
	for _, op := range spec.Circuit.Source {
		st.ApplyOp(op)
	}
	ideal := Distribution(st.RegisterProbs(spec.Measure))

	var rho *density.Matrix
	if spec.Initial != nil {
		rho = density.FromPure(spec.Initial)
	} else {
		rho = density.New(n)
	}
	density.RunNoisy(rho, spec.Circuit, spec.Model)
	dist := Distribution(rho.RegisterProbs(spec.Measure))

	// w0 / expected-errors diagnostics come from the trajectory engine's
	// per-gate bookkeeping; building one is O(gates), negligible next to
	// the density evolution itself.
	engine := noise.NewEngine(spec.Circuit, spec.Model)
	diag := Diagnostics{
		Backend:        d.Name(),
		NoErrorProb:    engine.NoErrorProb(),
		ExpectedErrors: engine.ExpectedErrors(),
		Ideal:          ideal,
	}
	return dist, diag, nil
}
