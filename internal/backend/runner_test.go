package backend_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qfarith/internal/backend"
	"qfarith/internal/experiment"
	"qfarith/internal/qft"
	"qfarith/internal/transpile"
)

func TestRunnerDoBoundsConcurrency(t *testing.T) {
	const workers = 3
	r := backend.NewRunner(backend.NewTrajectoryBackend(), workers)
	var cur, peak int64
	err := r.Do(context.Background(), 20, func(int) error {
		n := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Errorf("observed %d concurrent tasks, pool capacity %d", peak, workers)
	}
}

func TestRunnerDoRunsEveryIndexOnce(t *testing.T) {
	r := backend.NewRunner(backend.NewTrajectoryBackend(), 4)
	const n = 50
	counts := make([]int64, n)
	if err := r.Do(context.Background(), n, func(i int) error {
		atomic.AddInt64(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
}

func TestRunnerDoPropagatesFirstError(t *testing.T) {
	r := backend.NewRunner(backend.NewTrajectoryBackend(), 2)
	boom := errors.New("boom")
	var ran int64
	err := r.Do(context.Background(), 100, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran == 100 {
		t.Log("note: all tasks ran before the error was observed (possible but unlikely)")
	}
}

func TestRunnerDoCancellation(t *testing.T) {
	r := backend.NewRunner(backend.NewTrajectoryBackend(), 1)
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	done := make(chan error, 1)
	go func() {
		done <- r.Do(ctx, 1000, func(int) error {
			if atomic.AddInt64(&ran, 1) == 2 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Do did not return after cancellation — deadlock")
	}
	if got := atomic.LoadInt64(&ran); got >= 1000 {
		t.Errorf("all %d tasks ran despite cancellation", got)
	}
}

// TestRunnerNestedCoordinatorsNoDeadlock models the panel structure:
// many coordinator goroutines each Do-ing leaf tasks on one shared
// pool smaller than the coordinator count. Coordinators hold no slots,
// so this must complete.
func TestRunnerNestedCoordinatorsNoDeadlock(t *testing.T) {
	r := backend.NewRunner(backend.NewTrajectoryBackend(), 2)
	const coordinators = 16
	var total int64
	var wg sync.WaitGroup
	errs := make(chan error, coordinators)
	for c := 0; c < coordinators; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- r.Do(context.Background(), 5, func(int) error {
				atomic.AddInt64(&total, 1)
				return nil
			})
		}()
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("nested coordinators deadlocked on the shared pool")
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != coordinators*5 {
		t.Errorf("ran %d leaf tasks, want %d", total, coordinators*5)
	}
}

func TestRunnerRunRespectsCancelledContext(t *testing.T) {
	r := backend.NewRunner(backend.NewTrajectoryBackend(), 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.Run(ctx, smallSpec(2)); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestTranspileCache(t *testing.T) {
	cache := backend.NewTranspileCache()
	geo := experiment.AddGeometry(2, 3)
	builds := 0
	key := backend.CircuitKey{Family: "qfa", XBits: 2, YBits: 3, Depth: 2, AddCut: 99}
	build := func() *transpile.Result {
		builds++
		return geo.BuildCircuit(2)
	}
	a := cache.Get(key, build)
	b := cache.Get(key, build)
	if a != b {
		t.Error("cache returned distinct results for one key")
	}
	if builds != 1 {
		t.Errorf("build ran %d times, want 1", builds)
	}
	other := key
	other.Depth = qft.Full
	if c := cache.Get(other, func() *transpile.Result { return geo.BuildCircuit(qft.Full) }); c == a {
		t.Error("distinct keys shared a cache entry")
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 2)", hits, misses)
	}
	if cache.Len() != 2 {
		t.Errorf("Len = %d, want 2", cache.Len())
	}
}

func TestTranspileCacheConcurrentSingleBuild(t *testing.T) {
	cache := backend.NewTranspileCache()
	geo := experiment.AddGeometry(2, 3)
	var builds int64
	key := backend.CircuitKey{Family: "qfa", XBits: 2, YBits: 3, Depth: qft.Full}
	var wg sync.WaitGroup
	results := make([]*transpile.Result, 32)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = cache.Get(key, func() *transpile.Result {
				atomic.AddInt64(&builds, 1)
				return geo.BuildCircuit(qft.Full)
			})
		}(i)
	}
	wg.Wait()
	if builds != 1 {
		t.Errorf("concurrent Gets built %d times, want 1", builds)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent Gets returned distinct circuits")
		}
	}
}
