// Package backend is the unified execution layer: it owns how a single
// prepared circuit execution ("point spec") is evaluated under noise,
// behind a pluggable Backend interface. Three implementations ship:
//
//   - TrajectoryBackend — the stratified Pauli-trajectory mixture engine
//     (internal/noise), the default and the only choice at large widths;
//   - BatchTrajectoryBackend — the same mixture engine simulating
//     trajectories in structure-of-arrays batches ("trajectory-batch"),
//     bit-identical to TrajectoryBackend for equal seeds;
//   - DensityBackend — exact density-matrix channel evolution
//     (internal/density), quadratically more expensive but Monte-Carlo
//     free, usable as ground truth at small register widths.
//
// The package also provides a Runner (one bounded worker pool shared
// across every parallelism level of a sweep, with context cancellation)
// and a TranspileCache (build each distinct circuit once per process).
// Higher layers — internal/experiment, cmd/qfarith, the examples — pick
// a backend by name and submit work through a Runner; future scaling
// work (sharding, remote workers, batching) plugs in as new Backend
// implementations without touching the experiment layer.
package backend

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"qfarith/internal/noise"
	"qfarith/internal/transpile"
)

// Distribution is a measurement probability distribution over the
// outcomes of a measured register (index = outcome value).
type Distribution []float64

// PointSpec describes one circuit execution: a transpiled circuit, the
// noise model attached to its native gates, the prepared input state,
// and which qubits are measured. It is the unit of work a Backend
// evaluates; the experiment layer submits one PointSpec per operand
// instance of a plotted point.
type PointSpec struct {
	// Circuit is the transpiled circuit to execute. Backends treat it as
	// immutable, so specs sharing a cached *transpile.Result are safe to
	// run concurrently.
	Circuit *transpile.Result
	// Model is the depolarizing gate-noise model.
	Model noise.Model
	// Initial holds the prepared input amplitudes (length 2^NumQubits).
	// nil means the all-zeros basis state.
	Initial []complex128
	// Measure lists the measured qubits, LSB first. The returned
	// Distribution has length 2^len(Measure).
	Measure []int
	// Trajectories bounds the Monte Carlo effort of stochastic backends;
	// exact backends ignore it.
	Trajectories int
	// Seed1, Seed2 seed the RNG of stochastic backends (two-word PCG
	// seed); exact backends ignore them.
	Seed1, Seed2 uint64
}

// validate rejects malformed specs with a descriptive error.
func (s PointSpec) validate() error {
	if s.Circuit == nil {
		return fmt.Errorf("backend: PointSpec.Circuit is nil")
	}
	if len(s.Measure) == 0 {
		return fmt.Errorf("backend: PointSpec.Measure is empty")
	}
	if s.Initial != nil && len(s.Initial) != 1<<uint(s.Circuit.NumQubits) {
		return fmt.Errorf("backend: initial state has %d amplitudes, circuit has %d qubits",
			len(s.Initial), s.Circuit.NumQubits)
	}
	return nil
}

// Diagnostics reports execution metadata alongside a distribution.
type Diagnostics struct {
	// Backend is the name of the backend that produced the result.
	Backend string
	// NoErrorProb is w0, the probability that a shot sees no error
	// anywhere in the circuit under the spec's model.
	NoErrorProb float64
	// ExpectedErrors is the mean number of error events per shot.
	ExpectedErrors float64
	// Ideal is the error-free reference distribution (for fidelity
	// diagnostics), when the backend computes it as a by-product.
	Ideal Distribution
}

// Backend evaluates point specs. Implementations must be safe for
// concurrent Run calls: the Runner dispatches many specs onto one
// backend from multiple worker goroutines.
type Backend interface {
	// Name returns the registry name of the backend.
	Name() string
	// Run evaluates spec and returns the measured register's output
	// distribution. It honors ctx cancellation between units of work and
	// returns ctx.Err() if cancelled.
	Run(ctx context.Context, spec PointSpec) (Distribution, Diagnostics, error)
}

// DefaultName is the backend used when no name is given: the trajectory
// mixture engine, which reproduces the paper's figures.
const DefaultName = "trajectory"

var (
	registryMu sync.RWMutex
	registry   = map[string]func() Backend{
		"trajectory":       func() Backend { return NewTrajectoryBackend() },
		"trajectory-batch": func() Backend { return NewBatchTrajectoryBackend() },
		"density":          func() Backend { return NewDensityBackend() },
	}
)

// Register adds a backend constructor under name, replacing any
// previous registration. Each New call invokes the constructor, so
// backends may carry per-instance caches.
func Register(name string, factory func() Backend) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = factory
}

// New constructs the named backend ("" selects DefaultName).
func New(name string) (Backend, error) {
	if name == "" {
		name = DefaultName
	}
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (have %v)", name, Names())
	}
	return factory(), nil
}

// Names lists the registered backend names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
