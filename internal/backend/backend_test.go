package backend_test

import (
	"context"
	"math"
	"testing"

	"qfarith/internal/backend"
	"qfarith/internal/experiment"
	"qfarith/internal/noise"
	"qfarith/internal/qft"
)

// smallSpec builds a 5-qubit 2+3 adder instance spec: small enough for
// exact density evolution, noisy enough to exercise every path.
func smallSpec(trajectories int) backend.PointSpec {
	geo := experiment.AddGeometry(2, 3)
	res := geo.BuildCircuit(qft.Full)
	initial := make([]complex128, 1<<uint(geo.TotalQubits))
	// 1:2 instance — x = 2, y ∈ {1, 6}.
	initial[2|1<<2] = complex(1/math.Sqrt2, 0)
	initial[2|6<<2] = complex(1/math.Sqrt2, 0)
	return backend.PointSpec{
		Circuit:      res,
		Model:        noise.PaperModel(0.004, 0.02),
		Initial:      initial,
		Measure:      geo.OutReg,
		Trajectories: trajectories,
		Seed1:        101, Seed2: 202,
	}
}

func TestRegistry(t *testing.T) {
	names := backend.Names()
	if len(names) < 2 {
		t.Fatalf("Names() = %v, want at least trajectory and density", names)
	}
	for _, name := range names {
		b, err := backend.New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, b.Name())
		}
	}
	if b, err := backend.New(""); err != nil || b.Name() != backend.DefaultName {
		t.Errorf("New(\"\") = %v, %v; want default backend", b, err)
	}
	if _, err := backend.New("no-such-backend"); err == nil {
		t.Error("New(unknown) succeeded, want error")
	}
}

func TestSpecValidation(t *testing.T) {
	b := backend.NewTrajectoryBackend()
	ctx := context.Background()
	if _, _, err := b.Run(ctx, backend.PointSpec{}); err == nil {
		t.Error("nil circuit accepted")
	}
	spec := smallSpec(1)
	spec.Measure = nil
	if _, _, err := b.Run(ctx, spec); err == nil {
		t.Error("empty measure register accepted")
	}
	spec = smallSpec(1)
	spec.Initial = spec.Initial[:4]
	if _, _, err := b.Run(ctx, spec); err == nil {
		t.Error("wrong-length initial state accepted")
	}
}

func TestTrajectoryDeterministicAcrossRuns(t *testing.T) {
	spec := smallSpec(32)
	b := backend.NewTrajectoryBackend()
	d1, g1, err := b.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh backend (empty engine cache) must reproduce the identical
	// distribution from the same seeds.
	d2, g2, err := backend.NewTrajectoryBackend().Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("distributions differ at %d: %g vs %g", i, d1[i], d2[i])
		}
	}
	if g1.NoErrorProb != g2.NoErrorProb || g1.ExpectedErrors != g2.ExpectedErrors {
		t.Errorf("diagnostics differ: %+v vs %+v", g1, g2)
	}
}

func TestDensityRejectsWideCircuits(t *testing.T) {
	geo := experiment.PaperAddGeometry() // 15 qubits
	spec := backend.PointSpec{
		Circuit: geo.BuildCircuit(3),
		Measure: geo.OutReg,
	}
	if _, _, err := backend.NewDensityBackend().Run(context.Background(), spec); err == nil {
		t.Error("density backend accepted a 15-qubit circuit")
	}
}

func TestRunHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range backend.Names() {
		b, _ := backend.New(name)
		if _, _, err := b.Run(ctx, smallSpec(4)); err != context.Canceled {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestDensityMatchesTrajectory cross-validates the two backends: with a
// large trajectory budget the stratified mixture estimator must agree
// with exact density-matrix channel evolution — the first executable
// check of the Monte Carlo estimator against ground truth. The total
// variation distance shrinks as (1-w0)/sqrt(K); at K = 6000 and
// 1-w0 ≈ 0.5 the tolerance below sits several sigma out.
func TestDensityMatchesTrajectory(t *testing.T) {
	const trajectories = 6000
	spec := smallSpec(trajectories)

	exact, dDiag, err := backend.NewDensityBackend().Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	est, tDiag, err := backend.NewTrajectoryBackend().Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	// Both distributions normalize.
	for name, d := range map[string]backend.Distribution{"density": exact, "trajectory": est} {
		var sum float64
		for _, p := range d {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s distribution sums to %g", name, sum)
		}
	}

	// Shared diagnostics agree exactly (both derive from the same
	// per-gate error bookkeeping).
	if math.Abs(dDiag.NoErrorProb-tDiag.NoErrorProb) > 1e-12 {
		t.Errorf("w0 disagrees: %g vs %g", dDiag.NoErrorProb, tDiag.NoErrorProb)
	}

	var tv float64
	for i := range exact {
		tv += math.Abs(exact[i] - est[i])
	}
	tv /= 2
	if tv > 0.02 {
		t.Errorf("total variation distance %g between exact and estimated output, want <= 0.02", tv)
	}

	// The ideal (error-free) strata must agree to numerical precision —
	// both are deterministic statevector evolutions.
	for i := range dDiag.Ideal {
		if math.Abs(dDiag.Ideal[i]-tDiag.Ideal[i]) > 1e-9 {
			t.Fatalf("ideal distributions differ at %d: %g vs %g", i, dDiag.Ideal[i], tDiag.Ideal[i])
		}
	}
}

// TestBatchTrajectoryBitIdenticalToScalar pins the batched backend's
// core contract: for equal seeds, "trajectory-batch" returns the exact
// bytes "trajectory" returns — at automatic sizing and at several fixed
// batch widths, including widths above the trajectory count.
func TestBatchTrajectoryBitIdenticalToScalar(t *testing.T) {
	spec := smallSpec(48)
	want, wantDiag, err := backend.NewTrajectoryBackend().Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{0, 1, 2, 3, 8, 64} {
		bb := backend.NewBatchTrajectoryBackend()
		bb.SetBatchLanes(lanes)
		got, diag, err := bb.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		if diag.Backend != "trajectory-batch" {
			t.Fatalf("lanes=%d: diagnostics name %q", lanes, diag.Backend)
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("lanes=%d: dist[%d] = %g, scalar %g", lanes, i, got[i], want[i])
			}
			if math.Float64bits(wantDiag.Ideal[i]) != math.Float64bits(diag.Ideal[i]) {
				t.Fatalf("lanes=%d: ideal[%d] = %g, scalar %g", lanes, i, diag.Ideal[i], wantDiag.Ideal[i])
			}
		}
	}
}
