package backend

import (
	"context"
	"math/rand/v2"
	"sync"

	"qfarith/internal/noise"
	"qfarith/internal/sim"
	"qfarith/internal/transpile"
)

// TrajectoryBackend evaluates point specs with the stratified Pauli
// trajectory mixture engine (internal/noise): the no-error stratum is
// exact and the conditional (≥1 error) remainder is Monte Carlo over
// spec.Trajectories samples. It is the default backend and the one that
// reproduces the paper's per-shot noise semantics.
//
// The backend caches one noise.Engine per (circuit, model) pair, so the
// per-circuit precomputation (error probabilities, first-error CDF) is
// paid once per sweep point rather than once per instance.
type TrajectoryBackend struct {
	mu      sync.RWMutex
	engines map[engineKey]*noise.Engine
}

type engineKey struct {
	res   *transpile.Result
	model noise.Model
}

// NewTrajectoryBackend returns a trajectory backend with an empty
// engine cache.
func NewTrajectoryBackend() *TrajectoryBackend {
	return &TrajectoryBackend{engines: make(map[engineKey]*noise.Engine)}
}

// Name implements Backend.
func (t *TrajectoryBackend) Name() string { return "trajectory" }

// engine returns the cached trajectory engine for (res, model),
// building it on first use.
func (t *TrajectoryBackend) engine(res *transpile.Result, model noise.Model) *noise.Engine {
	key := engineKey{res: res, model: model}
	t.mu.RLock()
	e := t.engines[key]
	t.mu.RUnlock()
	if e != nil {
		return e
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e = t.engines[key]; e == nil {
		e = noise.NewEngine(res, model)
		t.engines[key] = e
	}
	return e
}

// Run implements Backend. The RNG stream is fully determined by
// (Seed1, Seed2), so equal specs give bit-identical distributions
// regardless of scheduling.
func (t *TrajectoryBackend) Run(ctx context.Context, spec PointSpec) (Distribution, Diagnostics, error) {
	if err := spec.validate(); err != nil {
		return nil, Diagnostics{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, Diagnostics{}, err
	}
	engine := t.engine(spec.Circuit, spec.Model)
	st := sim.NewState(spec.Circuit.NumQubits)
	initial := spec.Initial
	if initial == nil {
		initial = make([]complex128, st.Dim())
		initial[0] = 1
	}
	dist := make(Distribution, 1<<uint(len(spec.Measure)))
	ideal := make(Distribution, len(dist))
	rng := rand.New(rand.NewPCG(spec.Seed1, spec.Seed2))
	engine.MixtureInto(dist, st, initial, noise.MixtureOpts{
		Trajectories: spec.Trajectories,
		Measure:      spec.Measure,
		IdealOut:     ideal,
	}, rng)
	diag := Diagnostics{
		Backend:        t.Name(),
		NoErrorProb:    engine.NoErrorProb(),
		ExpectedErrors: engine.ExpectedErrors(),
		Ideal:          ideal,
	}
	return dist, diag, nil
}
