package backend

import (
	"container/list"
	"context"
	"math/rand/v2"
	"sync"

	"qfarith/internal/noise"
	"qfarith/internal/sim"
	"qfarith/internal/transpile"
)

// maxCachedEngines bounds the trajectory backend's engine cache. A
// figure sweep touches (circuits × error rates) engine keys; the
// largest paper panel needs well under this many live at once, and the
// LRU keeps a long-lived process (or a sweep over many custom rate
// grids) from accumulating one engine per key forever.
const maxCachedEngines = 64

// Engine-cache telemetry, resolved once: re-resolving a labeled
// counter builds its identity string, and engine() sits on the
// per-instance hot path.
var (
	engineCacheHit      = cacheCounter("engine", "hit", "")
	engineCacheMiss     = cacheCounter("engine", "miss", "")
	engineCacheEviction = cacheCounter("engine", "eviction", "")
)

// TrajectoryBackend evaluates point specs with the stratified Pauli
// trajectory mixture engine (internal/noise): the no-error stratum is
// exact and the conditional (≥1 error) remainder is Monte Carlo over
// spec.Trajectories samples. It is the default backend and the one that
// reproduces the paper's per-shot noise semantics.
//
// The backend caches noise engines per (circuit, model) pair in an LRU
// of maxCachedEngines entries, so the per-circuit precomputation (error
// probabilities, first-error CDF, fused program) is paid once per sweep
// point rather than once per instance, while the cache stays bounded.
type TrajectoryBackend struct {
	mu        sync.Mutex
	engines   map[engineKey]*list.Element
	order     *list.List // front = most recently used
	hits      int
	misses    int
	evictions int
}

type engineKey struct {
	res   *transpile.Result
	model noise.Model
}

type engineEntry struct {
	key    engineKey
	engine *noise.Engine
}

// NewTrajectoryBackend returns a trajectory backend with an empty
// engine cache.
func NewTrajectoryBackend() *TrajectoryBackend {
	return &TrajectoryBackend{
		engines: make(map[engineKey]*list.Element),
		order:   list.New(),
	}
}

// Name implements Backend.
func (t *TrajectoryBackend) Name() string { return "trajectory" }

// engine returns the cached trajectory engine for (res, model),
// building it on first use and evicting the least recently used entry
// once the cache exceeds maxCachedEngines.
func (t *TrajectoryBackend) engine(res *transpile.Result, model noise.Model) *noise.Engine {
	key := engineKey{res: res, model: model}
	t.mu.Lock()
	if el, ok := t.engines[key]; ok {
		t.order.MoveToFront(el)
		t.hits++
		e := el.Value.(*engineEntry).engine
		t.mu.Unlock()
		engineCacheHit.Inc()
		return e
	}
	t.misses++
	t.mu.Unlock()
	engineCacheMiss.Inc()
	// Build outside the lock: engine construction walks the whole
	// circuit, and concurrent Run calls for other keys shouldn't stall
	// behind it. A racing build for the same key just loses the insert.
	e := noise.NewEngine(res, model)
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.engines[key]; ok {
		t.order.MoveToFront(el)
		return el.Value.(*engineEntry).engine
	}
	t.engines[key] = t.order.PushFront(&engineEntry{key: key, engine: e})
	if t.order.Len() > maxCachedEngines {
		oldest := t.order.Back()
		t.order.Remove(oldest)
		delete(t.engines, oldest.Value.(*engineEntry).key)
		t.evictions++
		engineCacheEviction.Inc()
	}
	return e
}

// EngineCacheStats reports the engine cache's hit, miss, and eviction
// counts.
func (t *TrajectoryBackend) EngineCacheStats() (hits, misses, evictions int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits, t.misses, t.evictions
}

// EngineCacheLen returns how many engines the cache currently holds.
func (t *TrajectoryBackend) EngineCacheLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.order.Len()
}

// runScratch holds the |0...0> preparation buffer a Run call needs when
// the spec carries no explicit initial state.
type runScratch struct {
	initial []complex128
}

var runPool = sync.Pool{New: func() any { return new(runScratch) }}

// Run implements Backend. The RNG stream is fully determined by
// (Seed1, Seed2), so equal specs give bit-identical distributions
// regardless of scheduling. The statevector and preparation buffers are
// pooled; only the returned distributions are freshly allocated.
func (t *TrajectoryBackend) Run(ctx context.Context, spec PointSpec) (Distribution, Diagnostics, error) {
	return t.runWith(ctx, spec, t.Name(), 1)
}

// runWith evaluates spec through the mixture engine, simulating up to
// `batch` conditional trajectories at a time (batch <= 1 selects the
// scalar path; both paths are bit-identical for equal seeds).
func (t *TrajectoryBackend) runWith(ctx context.Context, spec PointSpec, name string, batch int) (Distribution, Diagnostics, error) {
	if err := spec.validate(); err != nil {
		return nil, Diagnostics{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, Diagnostics{}, err
	}
	engine := t.engine(spec.Circuit, spec.Model)
	st := sim.GetScratchState(spec.Circuit.NumQubits)
	defer sim.PutScratchState(st)
	initial := spec.Initial
	if initial == nil {
		sc := runPool.Get().(*runScratch)
		defer runPool.Put(sc)
		if cap(sc.initial) < st.Dim() {
			sc.initial = make([]complex128, st.Dim())
		}
		initial = sc.initial[:st.Dim()]
		for i := range initial {
			initial[i] = 0
		}
		initial[0] = 1
	}
	dist := make(Distribution, 1<<uint(len(spec.Measure)))
	ideal := make(Distribution, len(dist))
	rng := rand.New(rand.NewPCG(spec.Seed1, spec.Seed2))
	engine.MixtureBatchInto(dist, st, initial, noise.MixtureOpts{
		Trajectories: spec.Trajectories,
		Measure:      spec.Measure,
		IdealOut:     ideal,
	}, rng, batch)
	diag := Diagnostics{
		Backend:        name,
		NoErrorProb:    engine.NoErrorProb(),
		ExpectedErrors: engine.ExpectedErrors(),
		Ideal:          ideal,
	}
	return dist, diag, nil
}

// BatchTrajectoryBackend evaluates point specs with the same stratified
// mixture engine as TrajectoryBackend but simulates trajectories in
// structure-of-arrays batches (noise.MixtureBatchInto). Results are
// bit-identical to the scalar backend for equal seeds; only the
// wall-clock profile differs. It shares the engine LRU implementation
// (and its telemetry) through the embedded TrajectoryBackend.
type BatchTrajectoryBackend struct {
	*TrajectoryBackend
	// batch is the configured lane count; 0 selects the automatic
	// cache-sized width (sim.DefaultBatchLanes) per circuit.
	batch int
}

// NewBatchTrajectoryBackend returns a batched trajectory backend with
// an empty engine cache and automatic batch sizing.
func NewBatchTrajectoryBackend() *BatchTrajectoryBackend {
	return &BatchTrajectoryBackend{TrajectoryBackend: NewTrajectoryBackend()}
}

// Name implements Backend.
func (b *BatchTrajectoryBackend) Name() string { return "trajectory-batch" }

// SetBatchLanes implements BatchSizer: lanes > 0 fixes the batch width,
// 0 restores automatic sizing.
func (b *BatchTrajectoryBackend) SetBatchLanes(lanes int) {
	if lanes < 0 {
		lanes = 0
	}
	b.batch = lanes
}

// Run implements Backend.
func (b *BatchTrajectoryBackend) Run(ctx context.Context, spec PointSpec) (Distribution, Diagnostics, error) {
	batch := b.batch
	if batch == 0 && spec.Circuit != nil {
		batch = sim.DefaultBatchLanes(spec.Circuit.NumQubits)
	}
	return b.runWith(ctx, spec, b.Name(), batch)
}

// BatchSizer is implemented by backends whose trajectory batch width is
// configurable (the -batch CLI flag).
type BatchSizer interface {
	// SetBatchLanes fixes the number of trajectories simulated per
	// batch; 0 selects the backend's automatic sizing.
	SetBatchLanes(lanes int)
}

// EngineCacheStatser is implemented by backends that expose engine-LRU
// statistics (reporting layers print these without depending on the
// concrete backend type).
type EngineCacheStatser interface {
	EngineCacheStats() (hits, misses, evictions int)
	EngineCacheLen() int
}
