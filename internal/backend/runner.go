package backend

import (
	"context"
	"runtime"
	"sync"

	"qfarith/internal/telemetry"
)

// Runner telemetry, recorded into the process-wide default registry:
// how many tasks hold a worker slot right now, how many are queued
// waiting for one, and the latency distribution of leaf tasks. The
// handles are resolved once at init so the hot path pays only atomic
// ops (see the telemetry package's cardinality rules).
var (
	runnerInflight = telemetry.Default().Gauge("qfarith_runner_inflight")
	runnerWaiting  = telemetry.Default().Gauge("qfarith_runner_waiting")
	runnerTaskSec  = telemetry.Default().Histogram("qfarith_runner_task_seconds")
)

// Runner executes point specs on a Backend through one bounded worker
// pool. The pool is shared across every parallelism level that feeds
// it: a panel sweep fans out over grid points, each point fans out over
// operand instances, and all leaf tasks draw from the same slot budget,
// so total concurrent compute never exceeds Workers regardless of
// nesting. Coordinator goroutines (a panel waiting on its points, a
// point waiting on its instances) hold no slot while they wait, which
// makes arbitrary nesting deadlock-free.
//
// Cancellation: every Do call watches its context; cancelling stops new
// tasks from being scheduled and returns ctx.Err() once in-flight tasks
// drain.
type Runner struct {
	backend Backend
	slots   chan struct{}
	cache   *TranspileCache
}

// NewRunner returns a Runner over b with the given worker-pool size
// (workers <= 0 selects GOMAXPROCS) and a fresh transpile cache.
func NewRunner(b Backend, workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		backend: b,
		slots:   make(chan struct{}, workers),
		cache:   NewTranspileCache(),
	}
}

// Backend returns the runner's backend.
func (r *Runner) Backend() Backend { return r.backend }

// Workers returns the worker-pool capacity.
func (r *Runner) Workers() int { return cap(r.slots) }

// Cache returns the runner's transpile cache.
func (r *Runner) Cache() *TranspileCache { return r.cache }

// Run submits one spec to the backend through the pool: it acquires a
// worker slot (or returns early on cancellation), runs the spec, and
// releases the slot.
func (r *Runner) Run(ctx context.Context, spec PointSpec) (Distribution, Diagnostics, error) {
	runnerWaiting.Inc()
	select {
	case <-ctx.Done():
		runnerWaiting.Dec()
		return nil, Diagnostics{}, ctx.Err()
	case r.slots <- struct{}{}:
		runnerWaiting.Dec()
	}
	runnerInflight.Inc()
	sp := telemetry.StartSpan(runnerTaskSec)
	defer func() {
		sp.End()
		runnerInflight.Dec()
		<-r.slots
	}()
	return r.backend.Run(ctx, spec)
}

// Do runs fn(0..n-1) on the shared pool and waits for completion. Each
// invocation occupies one worker slot for its duration, so fn should be
// leaf compute (an instance simulation), not a coordinator that itself
// calls Do — coordinators should be plain goroutines. The first non-nil
// error (or ctx.Err() on cancellation) stops further scheduling and is
// returned after in-flight calls finish.
func (r *Runner) Do(ctx context.Context, n int, fn func(idx int) error) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for i := 0; i < n && !failed(); i++ {
		runnerWaiting.Inc()
		select {
		case <-ctx.Done():
			runnerWaiting.Dec()
			setErr(ctx.Err())
		case r.slots <- struct{}{}:
			runnerWaiting.Dec()
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				defer func() { <-r.slots }()
				runnerInflight.Inc()
				sp := telemetry.StartSpan(runnerTaskSec)
				err := fn(idx)
				sp.End()
				runnerInflight.Dec()
				if err != nil {
					setErr(err)
				}
			}(i)
			continue
		}
		break
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}
