// Package circuit provides the gate-list intermediate representation used
// by the QFT/arithmetic builders, the transpiler, and the simulator: an
// ordered sequence of gate applications on integer-indexed qubits, with
// composition, inversion, control-extension, counting, and rendering.
//
// Qubit indexing follows the simulator convention: qubit q corresponds to
// bit q of the basis-state index (qubit 0 is the least significant bit).
package circuit

import (
	"fmt"
	"strings"

	"qfarith/internal/gate"
)

// Op is a single gate application. Qubits holds the gate's qubit operands
// in gate order (controls first, target last). Only the first
// gate.Kind.Arity() entries of Qubits are meaningful.
type Op struct {
	Kind   gate.Kind
	Qubits [3]int
	Theta  float64
}

// NewOp builds an Op, validating arity.
func NewOp(k gate.Kind, theta float64, qubits ...int) Op {
	if len(qubits) != k.Arity() {
		panic(fmt.Sprintf("circuit: %s expects %d qubits, got %d", k, k.Arity(), len(qubits)))
	}
	var op Op
	op.Kind = k
	op.Theta = theta
	for i, q := range qubits {
		if q < 0 {
			panic(fmt.Sprintf("circuit: negative qubit %d", q))
		}
		// Arity is at most 3, so a pairwise scan is total — unlike a
		// bitmask, it catches duplicates at any qubit index.
		for _, prev := range qubits[:i] {
			if prev == q {
				panic(fmt.Sprintf("circuit: duplicate qubit %d in %s", q, k))
			}
		}
		op.Qubits[i] = q
	}
	return op
}

// Active returns the slice of meaningful qubit operands.
func (o Op) Active() []int { return o.Qubits[:o.Kind.Arity()] }

// String renders the op in OpenQASM-like syntax.
func (o Op) String() string {
	var sb strings.Builder
	sb.WriteString(o.Kind.Name())
	if o.Kind.Parameterized() {
		fmt.Fprintf(&sb, "(%g)", o.Theta)
	}
	sb.WriteByte(' ')
	for i, q := range o.Active() {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "q%d", q)
	}
	return sb.String()
}

// Circuit is an ordered gate list over NumQubits qubits.
type Circuit struct {
	NumQubits int
	Ops       []Op
}

// New returns an empty circuit over n qubits.
func New(n int) *Circuit {
	if n <= 0 {
		panic("circuit: need at least one qubit")
	}
	return &Circuit{NumQubits: n}
}

// Append adds a gate application, validating qubit bounds.
func (c *Circuit) Append(k gate.Kind, theta float64, qubits ...int) *Circuit {
	op := NewOp(k, theta, qubits...)
	for _, q := range op.Active() {
		if q >= c.NumQubits {
			panic(fmt.Sprintf("circuit: qubit %d out of range (have %d)", q, c.NumQubits))
		}
	}
	c.Ops = append(c.Ops, op)
	return c
}

// AppendOp adds a prevalidated op, checking bounds.
func (c *Circuit) AppendOp(op Op) *Circuit {
	for _, q := range op.Active() {
		if q >= c.NumQubits {
			panic(fmt.Sprintf("circuit: qubit %d out of range (have %d)", q, c.NumQubits))
		}
	}
	c.Ops = append(c.Ops, op)
	return c
}

// Compose appends all ops of other to c. Both circuits must share the
// qubit index space; other may span fewer qubits.
func (c *Circuit) Compose(other *Circuit) *Circuit {
	if other.NumQubits > c.NumQubits {
		panic("circuit: Compose with wider circuit")
	}
	c.Ops = append(c.Ops, other.Ops...)
	return c
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := New(c.NumQubits)
	out.Ops = append([]Op(nil), c.Ops...)
	return out
}

// Inverse returns the circuit implementing c's inverse unitary: ops
// reversed with each gate inverted.
func (c *Circuit) Inverse() *Circuit {
	out := New(c.NumQubits)
	out.Ops = make([]Op, len(c.Ops))
	for i, op := range c.Ops {
		ik, itheta := gate.Inverse(op.Kind, op.Theta)
		inv := op
		inv.Kind, inv.Theta = ik, itheta
		out.Ops[len(c.Ops)-1-i] = inv
	}
	return out
}

// Controlled returns a copy of c in which every gate gains one additional
// control on qubit ctrl. The result spans max(c.NumQubits, ctrl+1)
// qubits. Panics if any gate has no controlled form in the gate set or if
// ctrl already appears in a gate.
func (c *Circuit) Controlled(ctrl int) *Circuit {
	n := c.NumQubits
	if ctrl >= n {
		n = ctrl + 1
	}
	out := New(n)
	out.Ops = make([]Op, 0, len(c.Ops))
	for _, op := range c.Ops {
		ck, ok := gate.AddControl(op.Kind)
		if !ok {
			panic(fmt.Sprintf("circuit: no controlled form of %s in gate set", op.Kind))
		}
		if ck == gate.I { // controlled identity: drop
			continue
		}
		var q []int
		q = append(q, ctrl)
		for _, oq := range op.Active() {
			if oq == ctrl {
				panic(fmt.Sprintf("circuit: control qubit %d already used by %s", ctrl, op))
			}
			q = append(q, oq)
		}
		out.Ops = append(out.Ops, NewOp(ck, op.Theta, q...))
	}
	return out
}

// Remapped returns a copy of c with qubit i replaced by mapping[i]. The
// mapping must be defined for every qubit used by an op.
func (c *Circuit) Remapped(numQubits int, mapping []int) *Circuit {
	out := New(numQubits)
	out.Ops = make([]Op, 0, len(c.Ops))
	for _, op := range c.Ops {
		var q []int
		for _, oq := range op.Active() {
			if oq >= len(mapping) || mapping[oq] < 0 {
				panic(fmt.Sprintf("circuit: unmapped qubit %d in %s", oq, op))
			}
			q = append(q, mapping[oq])
		}
		out.Ops = append(out.Ops, NewOp(op.Kind, op.Theta, q...))
	}
	for _, op := range out.Ops {
		for _, q := range op.Active() {
			if q >= numQubits {
				panic(fmt.Sprintf("circuit: remapped qubit %d out of range %d", q, numQubits))
			}
		}
	}
	return out
}

// Counts tallies gates by kind.
func (c *Circuit) Counts() map[gate.Kind]int {
	out := make(map[gate.Kind]int)
	for _, op := range c.Ops {
		out[op.Kind]++
	}
	return out
}

// CountByArity returns (#1q, #2q, #3q) gate applications.
func (c *Circuit) CountByArity() (one, two, three int) {
	for _, op := range c.Ops {
		switch op.Kind.Arity() {
		case 1:
			one++
		case 2:
			two++
		case 3:
			three++
		}
	}
	return
}

// Depth returns the circuit depth: the length of the longest
// qubit-ordered chain of gates, computed with the usual as-soon-as-
// possible layering.
func (c *Circuit) Depth() int {
	level := make([]int, c.NumQubits)
	depth := 0
	for _, op := range c.Ops {
		l := 0
		for _, q := range op.Active() {
			if level[q] > l {
				l = level[q]
			}
		}
		l++
		for _, q := range op.Active() {
			level[q] = l
		}
		if l > depth {
			depth = l
		}
	}
	return depth
}

// String renders the whole gate list, one op per line.
func (c *Circuit) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %d qubits, %d ops\n", c.NumQubits, len(c.Ops))
	for _, op := range c.Ops {
		sb.WriteString(op.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
