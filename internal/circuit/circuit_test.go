package circuit_test

import (
	"math"
	"strings"
	"testing"

	"qfarith/internal/circuit"
	"qfarith/internal/gate"
)

func TestAppendAndCounts(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.H, 0, 0)
	c.Append(gate.CP, math.Pi/2, 0, 1)
	c.Append(gate.CP, math.Pi/4, 1, 2)
	c.Append(gate.CCP, math.Pi/8, 0, 1, 2)
	counts := c.Counts()
	if counts[gate.H] != 1 || counts[gate.CP] != 2 || counts[gate.CCP] != 1 {
		t.Errorf("counts = %v", counts)
	}
	one, two, three := c.CountByArity()
	if one != 1 || two != 2 || three != 1 {
		t.Errorf("arity counts %d/%d/%d", one, two, three)
	}
}

func TestAppendValidation(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanic("out of range", func() { circuit.New(2).Append(gate.H, 0, 5) })
	assertPanic("wrong arity", func() { circuit.New(2).Append(gate.CX, 0, 0) })
	assertPanic("duplicate qubit", func() { circuit.New(2).Append(gate.CX, 0, 1, 1) })
	assertPanic("negative qubit", func() { circuit.New(2).Append(gate.H, 0, -1) })
	assertPanic("zero qubits", func() { circuit.New(0) })
}

func TestInverseReversesAndInverts(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.H, 0, 0)
	c.Append(gate.S, 0, 1)
	c.Append(gate.CP, math.Pi/8, 0, 1)
	inv := c.Inverse()
	if len(inv.Ops) != 3 {
		t.Fatalf("inverse has %d ops", len(inv.Ops))
	}
	if inv.Ops[0].Kind != gate.CP || inv.Ops[0].Theta != -math.Pi/8 {
		t.Errorf("first inverse op = %v", inv.Ops[0])
	}
	if inv.Ops[1].Kind != gate.Sdg {
		t.Errorf("S inverse = %v", inv.Ops[1].Kind)
	}
	if inv.Ops[2].Kind != gate.H {
		t.Errorf("H inverse = %v", inv.Ops[2].Kind)
	}
}

func TestControlledMapsKinds(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.H, 0, 0)
	c.Append(gate.CP, math.Pi/2, 0, 1)
	c.Append(gate.X, 0, 2)
	cc := c.Controlled(3)
	if cc.NumQubits != 4 {
		t.Fatalf("controlled spans %d qubits", cc.NumQubits)
	}
	wantKinds := []gate.Kind{gate.CH, gate.CCP, gate.CX}
	for i, op := range cc.Ops {
		if op.Kind != wantKinds[i] {
			t.Errorf("op %d kind %s, want %s", i, op.Kind, wantKinds[i])
		}
		if op.Qubits[0] != 3 {
			t.Errorf("op %d control is %d, want 3", i, op.Qubits[0])
		}
	}
}

func TestControlledRejectsOverlapAndUncontrollable(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.H, 0, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for control qubit overlap")
			}
		}()
		c.Controlled(0)
	}()
	s := circuit.New(2)
	s.Append(gate.SWAP, 0, 0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for uncontrollable SWAP")
			}
		}()
		s.Controlled(2)
	}()
}

func TestControlledDropsIdentity(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.I, 0, 0)
	cc := c.Controlled(1)
	if len(cc.Ops) != 0 {
		t.Errorf("controlled identity should vanish, got %v", cc.Ops)
	}
}

func TestComposeAndClone(t *testing.T) {
	a := circuit.New(3)
	a.Append(gate.H, 0, 0)
	b := circuit.New(2)
	b.Append(gate.X, 0, 1)
	a.Compose(b)
	if len(a.Ops) != 2 {
		t.Fatalf("compose gave %d ops", len(a.Ops))
	}
	cl := a.Clone()
	cl.Append(gate.Z, 0, 2)
	if len(a.Ops) == len(cl.Ops) {
		t.Error("clone shares op slice with original")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic composing wider circuit")
			}
		}()
		b.Compose(circuit.New(5))
	}()
}

func TestRemapped(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.CX, 0, 0, 1)
	r := c.Remapped(4, []int{3, 1})
	if r.Ops[0].Qubits[0] != 3 || r.Ops[0].Qubits[1] != 1 {
		t.Errorf("remap wrong: %v", r.Ops[0])
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for unmapped qubit")
			}
		}()
		c.Remapped(4, []int{3})
	}()
}

func TestDepth(t *testing.T) {
	c := circuit.New(3)
	if c.Depth() != 0 {
		t.Error("empty circuit depth should be 0")
	}
	c.Append(gate.H, 0, 0) // layer 1
	c.Append(gate.H, 0, 1) // layer 1 (parallel)
	c.Append(gate.CX, 0, 0, 1)
	c.Append(gate.H, 0, 2) // parallel with everything
	if d := c.Depth(); d != 2 {
		t.Errorf("depth = %d, want 2", d)
	}
	c.Append(gate.CCP, math.Pi, 0, 1, 2)
	if d := c.Depth(); d != 3 {
		t.Errorf("depth = %d, want 3", d)
	}
}

func TestStringRendering(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.H, 0, 0)
	c.Append(gate.CP, 0.5, 0, 1)
	s := c.String()
	if !strings.Contains(s, "h q0") || !strings.Contains(s, "cp(0.5) q0,q1") {
		t.Errorf("rendering missing ops:\n%s", s)
	}
	op := circuit.NewOp(gate.CCP, 0.25, 2, 1, 0)
	if got := op.String(); got != "ccp(0.25) q2,q1,q0" {
		t.Errorf("op string = %q", got)
	}
}

func TestInverseIsInvolution(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.H, 0, 0)
	c.Append(gate.T, 0, 1)
	c.Append(gate.CP, 0.3, 0, 2)
	c.Append(gate.SX, 0, 1)
	double := c.Inverse().Inverse()
	if len(double.Ops) != len(c.Ops) {
		t.Fatal("double inverse changed op count")
	}
	for i := range c.Ops {
		if c.Ops[i] != double.Ops[i] {
			t.Errorf("op %d: %v != %v", i, c.Ops[i], double.Ops[i])
		}
	}
}

// TestNewOpDuplicateQubitsBeyond63 is the regression test for the old
// bitmask duplicate check, which silently skipped any qubit index >= 64
// and so accepted e.g. cx q[100],q[100] on wide circuits.
func TestNewOpDuplicateQubitsBeyond63(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanic("cx dup at 100", func() { circuit.NewOp(gate.CX, 0, 100, 100) })
	assertPanic("ccp dup at 64/64", func() { circuit.NewOp(gate.CCP, 0.5, 63, 64, 64) })
	assertPanic("ccx dup first/last", func() { circuit.NewOp(gate.CCX, 0, 200, 7, 200) })

	// Distinct high indices stay legal.
	op := circuit.NewOp(gate.CCX, 0, 63, 64, 200)
	if got := op.Active(); got[0] != 63 || got[1] != 64 || got[2] != 200 {
		t.Errorf("high qubit indices mangled: %v", got)
	}
}
