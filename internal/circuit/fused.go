package circuit

// DiagTerm is one phase factor of a fused run of diagonal gates: it
// multiplies every amplitude whose basis index matches the bit pattern
// (idx & Sel == Val) by Phase. A P/CP/CCP-like gate contributes a single
// term with Sel == Val (all selected bits must be 1); an RZ contributes
// two terms, one per target-bit value, so every amplitude still receives
// exactly one multiplication — the same floating-point operation the
// op-by-op kernels would have performed.
//
// Terms carry the index of the source op they were lowered from so a
// fused run can be split at any op boundary (the per-amplitude multiply
// sequence is unchanged by splitting, keeping partial application
// bit-exact with full application).
type DiagTerm struct {
	// Sel selects the basis-index bits the term conditions on; Val gives
	// the required values of those bits.
	Sel, Val uint64
	// Phase is the multiplier applied to matching amplitudes.
	Phase complex128
	// Src is the index of the source op this term lowers.
	Src int
}
