package qfarith

import (
	"fmt"

	"qfarith/internal/arith"
	"qfarith/internal/experiment"
	"qfarith/internal/metrics"
	"qfarith/internal/qint"
	"qfarith/internal/transpile"
)

// This file exposes the extension operations the paper names but defers
// (division, signed multiplication, modular addition) through the same
// Result-based façade as Add/Sub/Mul.

// Div simulates restoring division of y by the classical constant d:
// outcomes decompose as remainder (low y.Width+1 bits) and quotient
// (qw high bits). Success uses the combined (quotient, remainder)
// output string.
func Div(y QInt, d uint64, qw int, opts ...Option) Result {
	if d == 0 {
		panic("qfarith: division by zero")
	}
	o := buildOptions(opts)
	w := y.Width
	total := w + 1 + qw
	c := circuitNew(total)
	yreg := arith.Range(0, w+1)
	qreg := arith.Range(w+1, qw)
	arith.ConstDivGates(c, d, yreg, qreg, arith.Config{Depth: o.Depth, AddCut: arith.FullAdd})
	res := transpile.Transpile(c)

	// Initial state: y in the low w qubits, borrow + quotient at |0>.
	ext := qint.New(w+1, terms(y))
	pad := qint.NewBasis(qw, 0)
	initial := qint.Product(ext, pad)
	expected := make(map[int]bool)
	for _, v := range y.Values() {
		if uint64(v)/d >= 1<<uint(qw) {
			panic(fmt.Sprintf("qfarith: quotient of %d/%d does not fit %d bits", v, d, qw))
		}
		expected[v%int(d)|(v/int(d))<<uint(w+1)] = true
	}
	geo := experiment.Geometry{
		Op: experiment.OpAdd, TotalQubits: total,
		OutReg: arith.Range(0, total), OutBits: total,
	}
	return runResult(o, geo, res, initial, expected)
}

// SignedMul simulates two's-complement multiplication: operands and the
// (x.Width+y.Width)-bit product are read as signed integers. Expected
// outputs are the signed products re-encoded; use SignedOutcome to
// interpret sampled outcomes.
func SignedMul(x, y QInt, opts ...Option) Result {
	o := buildOptions(opts)
	n, m := x.Width, y.Width
	total := 2*n + 2*m
	c := circuitNew(total)
	z := arith.Range(0, n+m)
	yreg := arith.Range(n+m, m)
	xreg := arith.Range(n+2*m, n)
	arith.SignedQFMGates(c, xreg, yreg, z, arith.Config{Depth: o.Depth, AddCut: arith.FullAdd})
	res := transpile.Transpile(c)

	zq := qint.NewBasis(n+m, 0)
	initial := qint.Product(zq, y, x)
	expected := make(map[int]bool)
	for _, xv := range x.Values() {
		for _, yv := range y.Values() {
			p := qint.TwosComplement(xv, n) * qint.TwosComplement(yv, m)
			expected[qint.FromSigned(p, n+m)] = true
		}
	}
	geo := experiment.Geometry{
		Op: experiment.OpMul, TotalQubits: total,
		OutReg: z, OutBits: n + m,
	}
	return runResult(o, geo, res, initial, expected)
}

// SignedOutcome converts a raw outcome of SignedMul's product register
// into the signed integer it encodes.
func SignedOutcome(raw, bits int) int { return qint.TwosComplement(raw, bits) }

// ModAdd simulates (y + a) mod N via the Beauregard constant adder. The
// register is sized automatically (n+1 qubits with 2^n >= N, plus one
// ancilla); outcomes are residues.
func ModAdd(y QInt, a, n uint64, opts ...Option) Result {
	o := buildOptions(opts)
	w := 1
	for uint64(1)<<uint(w) < n {
		w++
	}
	w++ // overflow qubit
	if y.Width > w {
		panic(fmt.Sprintf("qfarith: operand register (%d qubits) exceeds modular register (%d)", y.Width, w))
	}
	for _, v := range y.Values() {
		if uint64(v) >= n {
			panic(fmt.Sprintf("qfarith: operand %d is not a residue mod %d", v, n))
		}
	}
	total := w + 1
	c := circuitNew(total)
	arith.ModAddConstGates(c, a%n, n, arith.Range(0, w), w, arith.Config{Depth: o.Depth, AddCut: arith.FullAdd})
	res := transpile.Transpile(c)
	ext := qint.New(w, terms(y))
	anc := qint.NewBasis(1, 0)
	initial := qint.Product(ext, anc)
	expected := make(map[int]bool)
	for _, v := range y.Values() {
		expected[int((uint64(v)+a)%n)] = true
	}
	geo := experiment.Geometry{
		Op: experiment.OpAdd, TotalQubits: total,
		OutReg: arith.Range(0, w), OutBits: w,
	}
	return runResult(o, geo, res, initial, expected)
}

// Fidelity returns the classical (Bhattacharyya) fidelity between the
// simulated noisy distribution and an ideal reference distribution —
// the smoother metric the paper's conclusions recommend at high noise.
func Fidelity(ideal, noisy []float64) float64 {
	return metrics.ClassicalFidelity(ideal, noisy)
}

// terms widens a QInt's terms to a larger register unchanged.
func terms(q QInt) []qint.Term { return append([]qint.Term(nil), q.Terms...) }
