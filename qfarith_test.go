package qfarith_test

import (
	"math"
	"testing"
	"testing/quick"

	"qfarith"
)

func TestAddNoiseless(t *testing.T) {
	res := qfarith.Add(qfarith.Basis(4, 9), qfarith.Basis(5, 17), qfarith.WithSeed(2))
	if !res.Success {
		t.Fatal("noiseless add failed")
	}
	want := 26
	if res.Counts[want] != 2048 {
		t.Fatalf("counts[%d] = %d, want all 2048", want, res.Counts[want])
	}
	if !res.Expected[want] || len(res.Expected) != 1 {
		t.Fatalf("expected set %v", res.Expected)
	}
}

func TestAddModularWrap(t *testing.T) {
	res := qfarith.Add(qfarith.Basis(4, 15), qfarith.Basis(4, 9))
	if !res.Expected[(15+9)&15] {
		t.Fatalf("expected set %v should contain the modular sum", res.Expected)
	}
	if !res.Success {
		t.Fatal("modular add failed")
	}
}

func TestAddSuperposed(t *testing.T) {
	x := qfarith.Uniform(4, 3, 12)
	y := qfarith.Uniform(5, 5, 20)
	res := qfarith.Add(x, y, qfarith.WithSeed(5))
	if len(res.Expected) != 4 {
		t.Fatalf("expected 4 sums, got %v", res.Expected)
	}
	if !res.Success {
		t.Fatal("noiseless superposed add failed")
	}
	// Each correct outcome should carry ≈ a quarter of the shots.
	for v := range res.Expected {
		if f := float64(res.Counts[v]) / 2048; math.Abs(f-0.25) > 0.08 {
			t.Errorf("outcome %d frequency %.3f, want ≈0.25", v, f)
		}
	}
}

func TestSub(t *testing.T) {
	res := qfarith.Sub(qfarith.Basis(4, 9), qfarith.Basis(5, 17))
	if !res.Success || !res.Expected[8] {
		t.Fatalf("17-9: success=%v expected=%v", res.Success, res.Expected)
	}
	// Negative difference wraps in two's complement.
	res = qfarith.Sub(qfarith.Basis(4, 9), qfarith.Basis(4, 2))
	if !res.Expected[(2-9)&15] {
		t.Fatalf("2-9 expected set %v", res.Expected)
	}
}

func TestMul(t *testing.T) {
	res := qfarith.Mul(qfarith.Basis(3, 6), qfarith.Basis(3, 7), qfarith.WithSeed(3))
	if !res.Success || !res.Expected[42] {
		t.Fatalf("6*7: success=%v expected=%v", res.Success, res.Expected)
	}
	if res.OutputBits != 6 {
		t.Fatalf("product register %d bits, want 6", res.OutputBits)
	}
}

func TestMulSuperposed(t *testing.T) {
	res := qfarith.Mul(qfarith.Uniform(3, 2, 5), qfarith.Basis(3, 3), qfarith.WithSeed(4))
	if !res.Expected[6] || !res.Expected[15] {
		t.Fatalf("expected set %v", res.Expected)
	}
	if !res.Success {
		t.Fatal("superposed mul failed")
	}
}

func TestNoiseDegradesAndDepthMatters(t *testing.T) {
	x := qfarith.Uniform(7, 19, 100)
	y := qfarith.Uniform(8, 7, 200)
	clean := qfarith.Add(x, y, qfarith.WithSeed(7))
	noisy := qfarith.Add(x, y, qfarith.WithSeed(7), qfarith.WithNoise(0.002, 0.02), qfarith.WithTrajectories(32))
	if !clean.Success {
		t.Fatal("clean 2:2 add failed")
	}
	cleanMin, noisyMin := minExpectedCount(clean), minExpectedCount(noisy)
	if noisyMin >= cleanMin {
		t.Errorf("noise did not reduce correct-output counts: %d vs %d", noisyMin, cleanMin)
	}
}

func minExpectedCount(r qfarith.Result) int {
	min := 1 << 30
	for v := range r.Expected {
		if r.Counts[v] < min {
			min = r.Counts[v]
		}
	}
	return min
}

func TestGateCountsExposed(t *testing.T) {
	res := qfarith.Add(qfarith.Basis(7, 1), qfarith.Basis(8, 2), qfarith.WithDepth(3))
	if res.Gates.Paper1q != 229 || res.Gates.Paper2q != 142 {
		t.Errorf("gate counts (%d, %d), want Table I (229, 142)", res.Gates.Paper1q, res.Gates.Paper2q)
	}
}

func TestDescribeAdder(t *testing.T) {
	info := qfarith.DescribeAdder(7, 8, qfarith.FullDepth)
	if info.Gates.Paper1q != 289 || info.Gates.Paper2q != 182 {
		t.Errorf("full QFA counts (%d, %d), want (289, 182)", info.Gates.Paper1q, info.Gates.Paper2q)
	}
	if !info.AQFTFull {
		t.Error("FullDepth should report AQFTFull")
	}
	if info.Qubits != 15 {
		t.Errorf("qubits = %d, want 15", info.Qubits)
	}
	if qfarith.DescribeAdder(7, 8, 2).AQFTFull {
		t.Error("depth 2 reported as full")
	}
}

func TestDescribeMultiplierTable(t *testing.T) {
	info := qfarith.DescribeMultiplier(4, 4, 2)
	if info.Gates.Paper1q != 1248 || info.Gates.Paper2q != 936 {
		t.Errorf("QFM d=2 counts (%d, %d), want (1248, 936)", info.Gates.Paper1q, info.Gates.Paper2q)
	}
}

func TestDescribeQFT(t *testing.T) {
	info := qfarith.DescribeQFT(8, qfarith.FullDepth)
	// 8 H + 28 CP -> 8 + 3*28 = 92 paper-1q, 56 CX.
	if info.Gates.Paper1q != 92 || info.Gates.Paper2q != 56 {
		t.Errorf("QFT counts (%d, %d), want (92, 56)", info.Gates.Paper1q, info.Gates.Paper2q)
	}
}

func TestResultDistributionNormalized(t *testing.T) {
	prop := func(seed uint64) bool {
		x := qfarith.Basis(3, int(seed%8))
		y := qfarith.Basis(4, int(seed%16))
		res := qfarith.Add(x, y, qfarith.WithSeed(seed), qfarith.WithNoise(0.01, 0.01), qfarith.WithTrajectories(4), qfarith.WithShots(128))
		var s float64
		for _, p := range res.Probs {
			s += p
		}
		total := 0
		for _, c := range res.Counts {
			total += c
		}
		return math.Abs(s-1) < 1e-9 && total == 128
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestAddPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when addend is wider than the sum register")
		}
	}()
	qfarith.Add(qfarith.Basis(5, 1), qfarith.Basis(4, 1))
}
