module qfarith

go 1.22
