package qfarith_test

// Integration tests spanning the full pipeline: circuit construction →
// transpilation → (routing) → noise simulation → sampling → metrics,
// plus interop paths (QASM round trips feeding the simulator, gate-based
// state preparation feeding arithmetic).

import (
	"math"
	"strings"
	"testing"

	"qfarith/internal/arith"
	"qfarith/internal/circuit"
	"qfarith/internal/experiment"
	"qfarith/internal/layout"
	"qfarith/internal/metrics"
	"qfarith/internal/noise"
	"qfarith/internal/qasm"
	"qfarith/internal/qft"
	"qfarith/internal/qint"
	"qfarith/internal/sim"
	"qfarith/internal/transpile"
)

// TestPreparedStateThroughAdder chains the gate-based initializer into
// the QFA: prepare both operands with qint.Prepare (no amplitude
// injection anywhere), add, and verify the output distribution.
func TestPreparedStateThroughAdder(t *testing.T) {
	a, w := 3, 4
	c := circuit.New(a + w)
	qint.PrepareOn(c, arith.Range(0, a), qint.NewBasis(a, 5))
	qint.PrepareOn(c, arith.Range(a, w), qint.NewUniform(w, 3, 9))
	arith.QFAGates(c, arith.Range(0, a), arith.Range(a, w), arith.DefaultConfig())
	st := sim.NewState(a + w)
	st.ApplyCircuit(c)
	probs := st.RegisterProbs(arith.Range(a, w))
	for _, want := range []int{(5 + 3) & 15, (5 + 9) & 15} {
		if math.Abs(probs[want]-0.5) > 1e-9 {
			t.Errorf("P(%d) = %g, want 0.5", want, probs[want])
		}
	}
}

// TestQASMRoundTripThroughNoiseEngine feeds a parsed-QASM circuit into
// the trajectory engine: export the paper's QFA, re-parse it, transpile,
// and confirm the engine reproduces Table I exposure and a successful
// noiseless instance.
func TestQASMRoundTripThroughNoiseEngine(t *testing.T) {
	src := arith.NewQFA(7, 8, arith.DefaultConfig())
	parsed, err := qasm.ParseString(qasm.Export(src))
	if err != nil {
		t.Fatal(err)
	}
	res := transpile.Transpile(parsed)
	if _, two := res.CountByArity(); two != 182 {
		t.Fatalf("round-tripped circuit has %d CX, want 182", two)
	}
	engine := noise.NewEngine(res, noise.Noiseless)
	st := sim.NewState(15)
	initial := make([]complex128, st.Dim())
	x, y := 77, 123
	initial[x|y<<7] = 1
	dist := make([]float64, 256)
	engine.MixtureInto(dist, st, initial, noise.MixtureOpts{Trajectories: 1, Measure: arith.Range(7, 8)}, nil)
	if math.Abs(dist[(x+y)&255]-1) > 1e-9 {
		t.Errorf("round-tripped QFA wrong: P(correct) = %g", dist[(x+y)&255])
	}
}

// TestRoutedNoisyPipelineEndToEnd is the full E7 stack on a small
// instance: build, transpile, route onto a ring, run noisy trajectories,
// sample shots, and score with the paper's metric.
func TestRoutedNoisyPipelineEndToEnd(t *testing.T) {
	cfg := experiment.PointConfig{
		Geometry: experiment.AddGeometry(2, 3),
		Depth:    qft.Full,
		Model:    noise.PaperModel(0.002, 0.005),
		OrderX:   1, OrderY: 2,
		Instances: 5, Shots: 512, Trajectories: 8,
		RowSeed: 31, PointSeed: 37,
	}
	r := experiment.RunRoutedPoint(cfg, layout.Ring(6))
	if r.Stats.Instances != 5 {
		t.Fatalf("instances %d", r.Stats.Instances)
	}
	if r.Stats.SuccessRate < 60 {
		t.Errorf("small routed adder at mild noise should mostly succeed: %.1f%%", r.Stats.SuccessRate)
	}
	if r.Stats.MeanFidelity <= 0 || r.Stats.MeanFidelity > 1+1e-9 {
		t.Errorf("mean fidelity out of range: %g", r.Stats.MeanFidelity)
	}
}

// TestFidelityTracksSuccessAcrossNoise checks the E2-style relationship
// between the two metrics end to end: fidelity decreases monotonically
// with the error rate and stays 1 in the noiseless limit.
func TestFidelityTracksSuccessAcrossNoise(t *testing.T) {
	prevFid := 1.1
	for _, p2 := range []float64{0, 0.01, 0.05} {
		model := noise.Noiseless
		if p2 > 0 {
			model = noise.PaperModel(0, p2)
		}
		cfg := experiment.PointConfig{
			Geometry: experiment.AddGeometry(3, 4),
			Depth:    qft.Full,
			Model:    model,
			OrderX:   1, OrderY: 1,
			Instances: 6, Shots: 256, Trajectories: 16,
			RowSeed: 5, PointSeed: 6,
		}
		r := experiment.RunPoint(cfg)
		if p2 == 0 && math.Abs(r.Stats.MeanFidelity-1) > 1e-9 {
			t.Errorf("noiseless fidelity %g", r.Stats.MeanFidelity)
		}
		if r.Stats.MeanFidelity >= prevFid {
			t.Errorf("fidelity not decreasing: %g at rate %g (prev %g)", r.Stats.MeanFidelity, p2, prevFid)
		}
		prevFid = r.Stats.MeanFidelity
	}
}

// TestSubThenAddRestoresOperands drives the public API end to end:
// subtraction is the exact inverse of addition at every depth.
func TestSubThenAddRestoresOperands(t *testing.T) {
	c := circuit.New(7)
	x := arith.Range(0, 3)
	y := arith.Range(3, 4)
	cfg := arith.Config{Depth: 2, AddCut: arith.FullAdd}
	arith.QFAGates(c, x, y, cfg)
	arith.SubGates(c, x, y, cfg)
	for xv := 0; xv < 8; xv++ {
		for yv := 0; yv < 16; yv++ {
			st := sim.NewState(7)
			st.SetBasis(xv | yv<<3)
			st.ApplyCircuit(c)
			if st.Probability(xv|yv<<3) < 1-1e-9 {
				t.Fatalf("add∘sub not identity at depth 2 for x=%d y=%d", xv, yv)
			}
		}
	}
}

// TestExperimentCSVFeedsReport ties the sweep runner to the report
// tooling the CLI uses.
func TestExperimentCSVFeedsReport(t *testing.T) {
	pc := experiment.PanelConfig{
		Geometry: experiment.AddGeometry(2, 3),
		Axis:     experiment.Axis1Q,
		OrderX:   1, OrderY: 1,
		Rates:  []float64{0, 0.05},
		Depths: []int{1, qft.Full},
		Budget: experiment.Budget{Instances: 3, Shots: 64, Trajectories: 4},
		Seed:   77,
	}
	res := experiment.RunPanel(pc, nil)
	rows, err := experiment.ParseCSV(res.CSV())
	if err != nil {
		t.Fatal(err)
	}
	rep := experiment.ReportFromCSV(rows)
	if !strings.Contains(rep, "qfa 1q-axis") {
		t.Errorf("report:\n%s", rep)
	}
	// Fidelity column must survive the round trip.
	hasFid := false
	for _, r := range rows {
		if r.Fidelity > 0 {
			hasFid = true
		}
	}
	if !hasFid {
		t.Error("fidelity lost in CSV round trip")
	}
}

// TestMitigationInsideMetricPipeline applies readout noise and its
// mitigation around the success metric.
func TestMitigationInsideMetricPipeline(t *testing.T) {
	geo := experiment.AddGeometry(3, 4)
	res := geo.BuildCircuit(qft.Full)
	engine := noise.NewEngine(res, noise.Noiseless)
	st := sim.NewState(geo.TotalQubits)
	initial := make([]complex128, st.Dim())
	x, y := 5, 9
	initial[x|y<<3] = 1
	dist := make([]float64, 16)
	engine.MixtureInto(dist, st, initial, noise.MixtureOpts{Trajectories: 1, Measure: geo.OutReg}, nil)
	noisy := noise.ApplyReadoutError(dist, 0.25)
	fixed, err := noise.MitigateReadout(noisy, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	correct := metrics.CorrectSums([]int{x}, []int{y}, 4)
	s := sim.NewSampler(1, 2)
	rawScore := metrics.Score(s.Counts(noisy, 2048), correct)
	fixedScore := metrics.Score(s.Counts(fixed, 2048), correct)
	if fixedScore.Margin <= rawScore.Margin {
		t.Errorf("mitigation did not improve margin: %d vs %d", fixedScore.Margin, rawScore.Margin)
	}
}
